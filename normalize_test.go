package o2

import (
	"strings"
	"testing"

	"o2/internal/ir"
	"o2/internal/obs"
	"o2/internal/race"
)

// TestNormalizeDefaults: a zero config gets Table 1 entries and the full
// O2 optimization set.
func TestNormalizeDefaults(t *testing.T) {
	n := Config{}.normalize()
	if entriesUnset(n.Entries) {
		t.Fatal("normalize left entries unset")
	}
	if n.Detector != race.O2Options() {
		t.Fatalf("zero Detector not upgraded to O2Options: %+v", n.Detector)
	}
}

// TestNormalizeKeepsExplicitDetector: a deliberately non-zero Detector
// (here: the naive baseline with one flag set) is NOT upgraded.
func TestNormalizeKeepsExplicitDetector(t *testing.T) {
	c := Config{Detector: race.Options{HBCache: true}}
	n := c.normalize()
	if n.Detector.RegionMerge || n.Detector.CanonicalLocksets || n.Detector.OSAFilter {
		t.Fatalf("explicit Detector was upgraded: %+v", n.Detector)
	}
	if !n.Detector.HBCache {
		t.Fatal("explicit HBCache flag lost")
	}
}

// TestNormalizeWorkersObsOrthogonal: Workers and Obs set on an otherwise
// zero Detector must not block the upgrade, and must survive it.
func TestNormalizeWorkersObsOrthogonal(t *testing.T) {
	reg := obs.New()
	c := Config{Detector: race.Options{Workers: 3, Obs: reg}}
	n := c.normalize()
	if n.Detector != (race.Options{RegionMerge: true, CanonicalLocksets: true, HBCache: true, OSAFilter: true, Workers: 3, Obs: reg}) {
		t.Fatalf("Workers/Obs-only Detector not upgraded correctly: %+v", n.Detector)
	}
}

// TestNormalizeTopLevelOverrides: top-level Workers and Obs override the
// Detector fields.
func TestNormalizeTopLevelOverrides(t *testing.T) {
	reg := obs.New()
	c := Config{Workers: 7, Obs: reg, Detector: race.Options{Workers: 2}}
	n := c.normalize()
	if n.Detector.Workers != 7 {
		t.Fatalf("top-level Workers not applied: %d", n.Detector.Workers)
	}
	if n.Detector.Obs != reg {
		t.Fatal("top-level Obs not applied")
	}
}

// TestNormalizeExplicitEmptyEntries: an explicitly empty slice disables
// that origin kind rather than triggering the defaults.
func TestNormalizeExplicitEmptyEntries(t *testing.T) {
	c := Config{Entries: ir.EntryConfig{ThreadEntries: []string{}}}
	n := c.normalize()
	if len(n.Entries.ThreadEntries) != 0 {
		t.Fatalf("explicit empty ThreadEntries replaced by defaults: %v", n.Entries.ThreadEntries)
	}
}

// TestNormalizeIdempotent: normalize(normalize(c)) == normalize(c) on the
// fingerprint projection.
func TestNormalizeIdempotent(t *testing.T) {
	c := DefaultConfig()
	c.Android = true
	once := c.normalize()
	twice := once.normalize()
	if once.Fingerprint() != twice.Fingerprint() {
		t.Fatal("normalize is not idempotent")
	}
}

// TestFingerprintSensitivity: the fingerprint must change with every
// report-affecting knob and ignore Workers/Obs.
func TestFingerprintSensitivity(t *testing.T) {
	base := DefaultConfig().Fingerprint()

	mutants := map[string]Config{
		"policy":    {Policy: Insensitive},
		"android":   func() Config { c := DefaultConfig(); c.Android = true; return c }(),
		"replicate": func() Config { c := DefaultConfig(); c.ReplicateEvents = true; return c }(),
		"detector":  {Detector: race.Options{HBCache: true}},
		"nohb":      func() Config { c := DefaultConfig(); c.Detector.NoHB = true; return c }(),
		"nolockset": func() Config { c := DefaultConfig(); c.Detector.NoLockset = true; return c }(),
		"budget":    func() Config { c := DefaultConfig(); c.StepBudget = 99; return c }(),
		"entries":   {Entries: ir.EntryConfig{ThreadEntries: []string{"go"}}},
	}
	for name, c := range mutants {
		if c.Fingerprint() == base {
			t.Errorf("%s change did not alter the fingerprint", name)
		}
	}

	same := DefaultConfig()
	same.Workers = 9
	same.Obs = obs.New()
	if same.Fingerprint() != base {
		t.Error("Workers/Obs changed the fingerprint; cache would needlessly miss")
	}
	if !strings.HasPrefix(base, "v2|") {
		t.Errorf("fingerprint not versioned: %q", base)
	}
}

// TestFingerprintEntryOrderInsensitive: entry lists are sets; order must
// not change the fingerprint.
func TestFingerprintEntryOrderInsensitive(t *testing.T) {
	a := Config{Entries: ir.EntryConfig{ThreadEntries: []string{"x", "y"}}}
	b := Config{Entries: ir.EntryConfig{ThreadEntries: []string{"y", "x"}}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("entry order changed the fingerprint")
	}
}
