module o2

go 1.22
