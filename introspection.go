package o2

import (
	"fmt"

	"o2/internal/obs"
	"o2/internal/pta"
	"o2/internal/race"
)

// This file assembles the RunStats Introspection section: per-origin
// cost attribution computed after the pipeline settles. The exact counts
// (call-graph nodes, SHB nodes/edges per kind, shared accesses,
// candidate pairs, races) come from the solved stages; wall-time and
// arena-byte attributions are proportional shares of the measured phase
// costs and are stripped by the deterministic projection. The top-K
// ranking is fully determined by the counts, so two runs of the same
// program produce byte-identical projections at any worker count.

// buildIntrospection aggregates per-origin costs from a finished Result.
// attr may be nil (no detection attribution collected); the pair/race
// fields are then zero.
func buildIntrospection(res *Result, attr *race.Attribution) *obs.Introspection {
	a := res.Analysis
	n := a.Origins.Len()
	in := &obs.Introspection{Schema: obs.IntrospectionSchema, Origins: n}
	if n == 0 {
		return in
	}

	costs := make([]obs.OriginCost, n)
	cg := a.OriginCGNodes()
	gc := res.Graph.CountByOrigin(n)
	var totalCG, totalNodes int64
	for i := range costs {
		c := &costs[i]
		c.ID = i
		c.Origin = a.Origins.Get(pta.OriginID(i)).String()
		c.CGNodes = cg[i]
		c.Segments = gc[i].Segments
		c.SHBNodes = gc[i].Nodes
		c.SHBEdges = gc[i].Edges
		c.NodeKinds = gc[i].ByKind
		totalCG += cg[i]
		totalNodes += gc[i].Nodes
	}
	for _, acc := range res.Sharing.Accesses {
		if int(acc.Origin) >= n {
			continue
		}
		costs[acc.Origin].Accesses++
		if acc.Write {
			costs[acc.Origin].Writes++
		}
	}
	var pairSum int64
	if attr != nil {
		for i := range costs {
			costs[i].Pairs = attr.Pairs[i]
			costs[i].HBQueries = attr.HBQueries[i]
			costs[i].Races = attr.Races[i]
			pairSum += attr.Pairs[i]
		}
	}

	in.TotalPairs = res.Report.PairsChecked
	in.PTAWallNS = int64(res.PTATime)
	in.SHBWallNS = int64(res.SHBTime)
	in.DetectWallNS = int64(res.DetectTime)
	in.ArenaBytes = res.Graph.MemBytes()

	// Proportional wall/byte shares: each phase's measured cost scaled by
	// the origin's fraction of the count that drives that phase (CG nodes
	// for pta, SHB nodes for shb and the graph arena, examined pairs for
	// detect). pairSum double-counts cross-origin pairs by construction,
	// which is the right denominator for per-origin shares.
	for i := range costs {
		c := &costs[i]
		if totalCG > 0 {
			c.PTAShareNS = in.PTAWallNS * c.CGNodes / totalCG
		}
		if totalNodes > 0 {
			c.SHBShareNS = in.SHBWallNS * c.SHBNodes / totalNodes
			c.ArenaBytes = in.ArenaBytes * c.SHBNodes / totalNodes
		}
		if pairSum > 0 {
			c.DetectShareNS = in.DetectWallNS * c.Pairs / pairSum
		}
	}
	in.TopK = obs.RankOrigins(costs)
	return in
}

// publishIntrospection mirrors the section's headline numbers into the
// registry as Prometheus-visible series: the origin count, the reach
// cache totals, and per-origin pairs/SHB-node/score gauges for the top-K
// (deterministic counts only — times stay in the JSON section, where the
// deterministic projection strips them).
func publishIntrospection(reg *obs.Registry, in *obs.Introspection) {
	if reg == nil || in == nil {
		return
	}
	in.ReachHits = reg.Counter("shb.reach_hits").Load()
	in.ReachMisses = reg.Counter("shb.reach_misses").Load()
	reg.SetGauge("introspect.origins", int64(in.Origins))
	for _, c := range in.TopK {
		prefix := fmt.Sprintf("introspect.o%d.", c.ID)
		reg.SetGauge(prefix+"pairs", c.Pairs)
		reg.SetGauge(prefix+"shb_nodes", c.SHBNodes)
		reg.SetGauge(prefix+"score", c.Score)
	}
}
