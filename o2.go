// Package o2 is a reproduction of "When Threads Meet Events: Efficient and
// Precise Static Race Detection with Origins" (PLDI 2021). It detects data
// races in multithreaded and event-driven minilang programs through the
// pipeline described in the paper:
//
//  1. origin-sensitive pointer analysis (OPA) — or a baseline context
//     policy (0-ctx, k-CFA, k-obj) for comparison;
//  2. origin-sharing analysis (OSA), computing the heap locations shared
//     across origins;
//  3. a static happens-before (SHB) graph over origin traces;
//  4. a hybrid happens-before + lockset race detector with the paper's
//     three sound optimizations.
//
// The entry points are AnalyzeSource (minilang text) and AnalyzeProgram
// (programmatically built IR).
package o2

import (
	"time"

	"o2/internal/deadlock"
	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/obs"
	"o2/internal/osa"
	"o2/internal/oversync"
	"o2/internal/pta"
	"o2/internal/race"
	"o2/internal/shb"
)

// Re-exported context policies for configuration convenience.
var (
	// Origins is the paper's 1-origin configuration (OPA).
	Origins = pta.Policy{Kind: pta.KOrigin, K: 1}
	// Insensitive is the 0-ctx baseline.
	Insensitive = pta.Policy{Kind: pta.Insensitive}
)

// CFA returns a k-call-site-sensitive policy.
func CFA(k int) pta.Policy { return pta.Policy{Kind: pta.KCFA, K: k} }

// Obj returns a k-object-sensitive policy.
func Obj(k int) pta.Policy { return pta.Policy{Kind: pta.KObj, K: k} }

// OriginsK returns a k-origin-sensitive policy for nested origins (§3.2,
// K-Origin-Sensitivity).
func OriginsK(k int) pta.Policy { return pta.Policy{Kind: pta.KOrigin, K: k} }

// Config configures a full analysis run.
type Config struct {
	// Policy selects the pointer-analysis context abstraction.
	Policy pta.Policy
	// Entries configures origin entry points (defaults to Table 1).
	Entries ir.EntryConfig
	// Android serializes event handlers with a global lock (§4.2).
	Android bool
	// ReplicateEvents treats event origins as concurrently re-entrant.
	ReplicateEvents bool
	// Detector toggles the engine optimizations; zero value is upgraded to
	// full O2 options.
	Detector race.Options
	// Workers sets the race-detection worker-pool size (0 = GOMAXPROCS,
	// 1 = sequential). The report is identical for every worker count.
	Workers int
	// StepBudget / TimeBudget bound the pointer analysis (0 = unlimited);
	// exceeding either aborts with pta.ErrBudget.
	StepBudget int64
	TimeBudget time.Duration
	// MaxSHBNodes bounds the SHB trace size (0 = unlimited).
	MaxSHBNodes int
	// Obs enables the observability layer: every phase runs under a span,
	// the pipeline publishes its counters into the registry, and
	// Result.RunStats carries the frozen report. Nil disables collection
	// at near-zero cost (see internal/obs).
	Obs *obs.Registry
}

// DefaultConfig is the paper's main configuration: 1-origin OPA with all
// detector optimizations. Event origins are not replicated by default;
// enable ReplicateEvents for servers whose handlers run concurrently
// (e.g. the Linux system-call model of §5.4).
func DefaultConfig() Config {
	return Config{
		Policy:   Origins,
		Entries:  ir.DefaultEntryConfig(),
		Detector: race.O2Options(),
	}
}

// Result bundles every stage's output and timing.
type Result struct {
	Prog     *ir.Program
	Analysis *pta.Analysis
	Sharing  *osa.Result
	Graph    *shb.Graph
	Report   *race.Report

	PTATime    time.Duration
	OSATime    time.Duration
	SHBTime    time.Duration
	DetectTime time.Duration

	// RunStats is the machine-readable run report (nil unless Config.Obs
	// was set): per-phase wall/CPU spans, PTA/OSA/SHB size counters,
	// cache hit rates and worker utilization.
	RunStats *obs.RunStats
}

// entriesUnset reports whether the config carries no entry-point
// configuration at all (then Table 1 defaults apply). An explicitly empty
// slice disables that origin kind instead.
func entriesUnset(e ir.EntryConfig) bool {
	return e.ThreadEntries == nil && e.EventEntries == nil &&
		e.StartMethods == nil && e.JoinMethods == nil
}

// Races returns the detected races.
func (r *Result) Races() []race.Race { return r.Report.Races }

// Deadlocks runs the lock-order deadlock analysis (a client of OPA and the
// SHB graph beyond race detection, §3).
func (r *Result) Deadlocks() *deadlock.Report {
	return deadlock.Analyze(r.Analysis, r.Graph)
}

// OverSync runs the over-synchronization analysis: lock regions guarding
// only origin-local data.
func (r *Result) OverSync() *oversync.Report {
	return oversync.Analyze(r.Analysis, r.Sharing, r.Graph)
}

// TotalTime is the end-to-end analysis time.
func (r *Result) TotalTime() time.Duration {
	return r.PTATime + r.OSATime + r.SHBTime + r.DetectTime
}

// AnalyzeSource compiles one minilang source and analyzes it.
func AnalyzeSource(filename, src string, cfg Config) (*Result, error) {
	entries := cfg.Entries
	if entriesUnset(entries) {
		entries = ir.DefaultEntryConfig()
	}
	prog, err := lang.Compile(filename, src, entries)
	if err != nil {
		return nil, err
	}
	return AnalyzeProgram(prog, cfg)
}

// AnalyzeProgram analyzes a finalized IR program.
func AnalyzeProgram(prog *ir.Program, cfg Config) (*Result, error) {
	entries := cfg.Entries
	if entriesUnset(entries) {
		entries = ir.DefaultEntryConfig()
	}
	if err := prog.Finalize(entries); err != nil {
		return nil, err
	}
	opts := cfg.Detector
	// The zero-value upgrade ignores Workers and Obs: a config that only
	// picks a worker count or a registry still gets the full optimization
	// set.
	base := opts
	base.Workers = 0
	base.Obs = nil
	if base == (race.Options{}) {
		opts = race.O2Options()
		opts.Workers = cfg.Detector.Workers
	}
	if cfg.Workers != 0 {
		opts.Workers = cfg.Workers
	}
	if cfg.Obs != nil {
		opts.Obs = cfg.Obs
	}

	root := cfg.Obs.StartSpan("analyze")
	t0 := time.Now()
	a := pta.New(prog, pta.Config{
		Policy:          cfg.Policy,
		Entries:         entries,
		ReplicateEvents: cfg.ReplicateEvents,
		StepBudget:      cfg.StepBudget,
		TimeBudget:      cfg.TimeBudget,
		Obs:             cfg.Obs,
	})
	if err := a.Solve(); err != nil {
		root.End()
		return nil, err
	}
	t1 := time.Now()
	sharing := osa.AnalyzeWith(a, cfg.Obs)
	t2 := time.Now()
	g := shb.Build(a, shb.Config{AndroidEvents: cfg.Android, MaxNodes: cfg.MaxSHBNodes, Obs: cfg.Obs})
	t3 := time.Now()
	rep := race.Detect(a, sharing, g, opts)
	t4 := time.Now()
	root.End()

	res := &Result{
		Prog:     prog,
		Analysis: a,
		Sharing:  sharing,
		Graph:    g,
		Report:   rep,

		PTATime:    t1.Sub(t0),
		OSATime:    t2.Sub(t1),
		SHBTime:    t3.Sub(t2),
		DetectTime: t4.Sub(t3),
	}
	if cfg.Obs != nil {
		res.RunStats = cfg.Obs.Snapshot()
	}
	return res, nil
}
