// Package o2 is a reproduction of "When Threads Meet Events: Efficient and
// Precise Static Race Detection with Origins" (PLDI 2021). It detects data
// races in multithreaded and event-driven minilang programs through the
// pipeline described in the paper:
//
//  1. origin-sensitive pointer analysis (OPA) — or a baseline context
//     policy (0-ctx, k-CFA, k-obj) for comparison;
//  2. origin-sharing analysis (OSA), computing the heap locations shared
//     across origins;
//  3. a static happens-before (SHB) graph over origin traces;
//  4. a hybrid happens-before + lockset race detector with the paper's
//     three sound optimizations.
//
// The canonical entry points are context-first: Analyze (programmatically
// built IR), AnalyzeSources / AnalyzeSourceCtx (minilang text as typed
// Source values), and AnalyzeCorpus (a streamed corpus of independent
// programs, analyzed in parallel with input-ordered emission).
// Cancellation and deadlines propagate into every pipeline stage.
// AnalyzeSource and AnalyzeProgram are thin context.Background legacy
// wrappers kept for convenience.
package o2

import (
	"context"
	"fmt"
	"sort"
	"time"

	"o2/internal/deadlock"
	"o2/internal/ir"
	"o2/internal/obs"
	"o2/internal/osa"
	"o2/internal/oversync"
	"o2/internal/pta"
	"o2/internal/race"
	"o2/internal/shb"
)

// Sentinel errors of the analysis pipeline. ErrBudget is returned when a
// step budget, the TimeBudget-derived deadline, or a caller-supplied
// context deadline is exceeded (errors.Is against pta.ErrBudget holds).
// ErrCanceled is returned when the caller's context is canceled
// mid-analysis (errors.Is against context.Canceled holds).
var (
	ErrBudget   = pta.ErrBudget
	ErrCanceled = pta.ErrCanceled
)

// Re-exported context policies for configuration convenience.
var (
	// Origins is the paper's 1-origin configuration (OPA).
	Origins = pta.Policy{Kind: pta.KOrigin, K: 1}
	// Insensitive is the 0-ctx baseline.
	Insensitive = pta.Policy{Kind: pta.Insensitive}
)

// CFA returns a k-call-site-sensitive policy.
func CFA(k int) pta.Policy { return pta.Policy{Kind: pta.KCFA, K: k} }

// Obj returns a k-object-sensitive policy.
func Obj(k int) pta.Policy { return pta.Policy{Kind: pta.KObj, K: k} }

// OriginsK returns a k-origin-sensitive policy for nested origins (§3.2,
// K-Origin-Sensitivity).
func OriginsK(k int) pta.Policy { return pta.Policy{Kind: pta.KOrigin, K: k} }

// PolicyByName resolves the CLI / service spelling of a context policy
// ("origin", "0ctx", "kcfa", "kobj") with depth k. Shared by cmd/o2 and
// the batch-analysis server so both accept the same configuration.
func PolicyByName(name string, k int) (pta.Policy, error) {
	if k <= 0 {
		k = 1
	}
	switch name {
	case "", "origin":
		return pta.Policy{Kind: pta.KOrigin, K: k}, nil
	case "0ctx":
		return pta.Policy{Kind: pta.Insensitive}, nil
	case "kcfa":
		return pta.Policy{Kind: pta.KCFA, K: k}, nil
	case "kobj":
		return pta.Policy{Kind: pta.KObj, K: k}, nil
	}
	return pta.Policy{}, fmt.Errorf("unknown context policy %q", name)
}

// Config configures a full analysis run.
type Config struct {
	// Policy selects the pointer-analysis context abstraction.
	Policy pta.Policy
	// Entries configures origin entry points (defaults to Table 1).
	Entries ir.EntryConfig
	// Android serializes event handlers with a global lock (§4.2).
	Android bool
	// ReplicateEvents treats event origins as concurrently re-entrant.
	ReplicateEvents bool
	// Detector toggles the engine optimizations; zero value is upgraded to
	// full O2 options.
	Detector race.Options
	// Workers sets the race-detection worker-pool size (0 = GOMAXPROCS,
	// 1 = sequential). The report is identical for every worker count.
	Workers int
	// StepBudget / TimeBudget bound the pointer analysis (0 = unlimited);
	// exceeding either aborts with pta.ErrBudget.
	StepBudget int64
	TimeBudget time.Duration
	// MaxSHBNodes bounds the SHB trace size (0 = unlimited).
	MaxSHBNodes int
	// Obs enables the observability layer: every phase runs under a span,
	// the pipeline publishes its counters into the registry, and
	// Result.RunStats carries the frozen report (including the per-origin
	// Introspection section). Nil disables collection at near-zero cost
	// (see internal/obs).
	Obs *obs.Registry
	// Progress, when set, receives live pipeline progress: phase
	// transitions from the driver and examined-pair/race counts flushed
	// from the detection hot loop on its cancel-poll stride. Readers call
	// Progress.Snapshot concurrently (see internal/obs). Progress never
	// alters results and, like Obs, is excluded from Fingerprint.
	Progress *obs.Progress
}

// DefaultConfig is the paper's main configuration: 1-origin OPA with all
// detector optimizations. Event origins are not replicated by default;
// enable ReplicateEvents for servers whose handlers run concurrently
// (e.g. the Linux system-call model of §5.4).
func DefaultConfig() Config {
	return Config{
		Policy:   Origins,
		Entries:  ir.DefaultEntryConfig(),
		Detector: race.O2Options(),
	}
}

// Result bundles every stage's output and timing.
type Result struct {
	Prog     *ir.Program
	Analysis *pta.Analysis
	Sharing  *osa.Result
	Graph    *shb.Graph
	Report   *race.Report

	PTATime    time.Duration
	OSATime    time.Duration
	SHBTime    time.Duration
	DetectTime time.Duration

	// RunStats is the machine-readable run report (nil unless Config.Obs
	// was set): per-phase wall/CPU spans, PTA/OSA/SHB size counters,
	// cache hit rates and worker utilization.
	RunStats *obs.RunStats

	// Inc reports per-unit summary reuse (nil unless the run went
	// through AnalyzeIncremental): units total/reused/recomputed, replay
	// errors, and whether the run fell back to whole-program compilation.
	Inc *IncStats
}

// entriesUnset reports whether the config carries no entry-point
// configuration at all (then Table 1 defaults apply). An explicitly empty
// slice disables that origin kind instead.
func entriesUnset(e ir.EntryConfig) bool {
	return e.ThreadEntries == nil && e.EventEntries == nil &&
		e.StartMethods == nil && e.JoinMethods == nil
}

// Races returns the detected races.
func (r *Result) Races() []race.Race { return r.Report.Races }

// Deadlocks runs the lock-order deadlock analysis (a client of OPA and the
// SHB graph beyond race detection, §3).
func (r *Result) Deadlocks() *deadlock.Report {
	return deadlock.Analyze(r.Analysis, r.Graph)
}

// OverSync runs the over-synchronization analysis: lock regions guarding
// only origin-local data.
func (r *Result) OverSync() *oversync.Report {
	return oversync.Analyze(r.Analysis, r.Sharing, r.Graph)
}

// TotalTime is the end-to-end analysis time.
func (r *Result) TotalTime() time.Duration {
	return r.PTATime + r.OSATime + r.SHBTime + r.DetectTime
}

// normalize resolves the config's defaulting rules into an explicit,
// ready-to-run form: unset entry points become the Table 1 defaults, a
// zero-value Detector (ignoring Workers and Obs, which are orthogonal
// knobs) is upgraded to the full O2 optimization set, and the top-level
// Workers and Obs fields override their Detector counterparts. normalize
// is idempotent; AnalyzeProgram used to inline this logic, which made the
// upgrade rules untestable in isolation.
func (c Config) normalize() Config {
	if entriesUnset(c.Entries) {
		c.Entries = ir.DefaultEntryConfig()
	}
	base := c.Detector
	base.Workers = 0
	base.Obs = nil
	base.Progress = nil
	base.Attr = nil
	if base == (race.Options{}) {
		workers := c.Detector.Workers
		obsReg := c.Detector.Obs
		prog := c.Detector.Progress
		attr := c.Detector.Attr
		c.Detector = race.O2Options()
		c.Detector.Workers = workers
		c.Detector.Obs = obsReg
		c.Detector.Progress = prog
		c.Detector.Attr = attr
	}
	if c.Workers != 0 {
		c.Detector.Workers = c.Workers
	}
	if c.Obs != nil {
		c.Detector.Obs = c.Obs
	}
	if c.Progress != nil {
		c.Detector.Progress = c.Progress
	}
	return c
}

// Fingerprint returns a stable string identifying every configuration
// field that can change the analysis report: policy, entry points, event
// treatment, detector optimizations and budgets. Worker count, the
// observability registry and the progress tracker are deliberately
// excluded — the report is identical for every worker count, and
// observability never alters results. The batch scheduler keys its
// result cache on (source hash, Fingerprint).
func (c Config) Fingerprint() string {
	n := c.normalize()
	d := n.Detector
	return fmt.Sprintf("v2|pol=%d.%d|e=%s|android=%t|rep=%t|det=%t%t%t%t%t%t|pb=%d|sb=%d|tb=%d|shb=%d",
		n.Policy.Kind, n.Policy.K, entriesFingerprint(n.Entries), n.Android, n.ReplicateEvents,
		d.RegionMerge, d.CanonicalLocksets, d.HBCache, d.OSAFilter, d.NoHB, d.NoLockset,
		d.PairBudget, n.StepBudget, int64(n.TimeBudget), n.MaxSHBNodes)
}

func entriesFingerprint(e ir.EntryConfig) string {
	part := func(ss []string) string {
		s := append([]string(nil), ss...)
		sort.Strings(s)
		return fmt.Sprint(s)
	}
	return part(e.ThreadEntries) + part(e.EventEntries) + part(e.StartMethods) +
		part(e.JoinMethods) + part(e.WaitMethods) + part(e.NotifyMethods) +
		part(e.LockFuncs) + part(e.UnlockFuncs) +
		part(e.WgAddMethods) + part(e.WgDoneMethods) + part(e.WgWaitMethods)
}

// AnalyzeSource is the legacy convenience wrapper over AnalyzeSourceCtx
// with context.Background(): no cancellation, no deadline beyond
// Config.TimeBudget. New code should call AnalyzeSourceCtx (or
// AnalyzeSources for multi-file programs) and pass a real context.
func AnalyzeSource(filename, src string, cfg Config) (*Result, error) {
	return AnalyzeSourceCtx(context.Background(), filename, src, cfg)
}

// AnalyzeSourceCtx compiles one minilang source and analyzes it under a
// context; see Analyze for the cancellation contract. It is the
// single-file form of AnalyzeSources, sharing its ErrCompile tagging of
// front-end failures.
func AnalyzeSourceCtx(ctx context.Context, filename, src string, cfg Config) (*Result, error) {
	return AnalyzeSources(ctx, []Source{{Name: filename, Bytes: []byte(src)}}, cfg)
}

// AnalyzeProgram is the legacy convenience wrapper over Analyze with
// context.Background(): no cancellation or deadline beyond
// Config.TimeBudget. New code should call Analyze and pass a real
// context.
func AnalyzeProgram(prog *ir.Program, cfg Config) (*Result, error) {
	return Analyze(context.Background(), prog, cfg)
}

// Analyze is the primary entry point: it runs the full pipeline (pointer
// analysis, origin-sharing, SHB construction, race detection) on a
// finalized IR program under a context. Cancellation propagates into
// every stage — the pta step loop, the OSA and SHB traversals and the
// race worker pool all poll the context and return within milliseconds of
// it ending. A canceled run returns (nil, ErrCanceled); an expired
// deadline returns (nil, ErrBudget). Config.TimeBudget is implemented as
// a derived context deadline covering the whole pipeline, so explicit
// budgets and caller deadlines share one mechanism.
func Analyze(ctx context.Context, prog *ir.Program, cfg Config) (*Result, error) {
	cfg = cfg.normalize()
	if cfg.TimeBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.TimeBudget)
		defer cancel()
	}
	if err := prog.Finalize(cfg.Entries); err != nil {
		return nil, err
	}

	root := cfg.Obs.StartSpan("analyze")
	defer root.End()
	// Phase floors for the progress percentage: entering a phase jumps to
	// its floor, and detect interpolates toward 100 by examined pairs.
	cfg.Progress.SetPhase("pta", 5)
	t0 := time.Now()
	a := pta.New(prog, pta.Config{
		Policy:          cfg.Policy,
		Entries:         cfg.Entries,
		ReplicateEvents: cfg.ReplicateEvents,
		StepBudget:      cfg.StepBudget,
		// TimeBudget is not forwarded: the derived deadline above bounds
		// the whole pipeline, not just the solver.
		Obs: cfg.Obs,
	})
	if err := a.SolveCtx(ctx); err != nil {
		return nil, err
	}
	if cfg.Obs != nil && cfg.Detector.Attr == nil {
		// Collect per-origin pair/HB/race counts for the Introspection
		// section whenever observability is on.
		cfg.Detector.Attr = race.NewAttribution(a.Origins.Len())
	}
	t1 := time.Now()
	cfg.Progress.SetPhase("osa", 45)
	sharing, err := osa.AnalyzeCtx(ctx, a, cfg.Obs)
	if err != nil {
		return nil, err
	}
	t2 := time.Now()
	cfg.Progress.SetPhase("shb", 55)
	g, err := shb.BuildCtx(ctx, a, shb.Config{AndroidEvents: cfg.Android, MaxNodes: cfg.MaxSHBNodes, Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	t3 := time.Now()
	cfg.Progress.SetPhase("detect", 65)
	rep, err := race.DetectCtx(ctx, a, sharing, g, cfg.Detector)
	if err != nil {
		return nil, err
	}
	t4 := time.Now()
	cfg.Progress.SetPhase("done", 100)
	root.End() // idempotent; close before snapshotting so the span is final

	res := &Result{
		Prog:     prog,
		Analysis: a,
		Sharing:  sharing,
		Graph:    g,
		Report:   rep,

		PTATime:    t1.Sub(t0),
		OSATime:    t2.Sub(t1),
		SHBTime:    t3.Sub(t2),
		DetectTime: t4.Sub(t3),
	}
	if cfg.Obs != nil {
		in := buildIntrospection(res, cfg.Detector.Attr)
		publishIntrospection(cfg.Obs, in)
		res.RunStats = cfg.Obs.Snapshot()
		res.RunStats.Introspection = in
	}
	return res, nil
}
