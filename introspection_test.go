package o2

import (
	"bytes"
	"testing"

	"o2/internal/ir"
	"o2/internal/obs"
	"o2/internal/workload"
)

func analyzePresetStats(t *testing.T, preset string) *obs.RunStats {
	t.Helper()
	p, ok := workload.ByName(preset)
	if !ok {
		t.Fatalf("preset %q missing", preset)
	}
	prog := workload.Build(p, ir.DefaultEntryConfig())
	cfg := DefaultConfig()
	cfg.Obs = obs.New()
	res, err := AnalyzeProgram(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.RunStats
}

// TestIntrospectionShape checks the attribution invariants the byte
// stability test cannot express: the schema stamp, a populated ranked
// top-K, and rank monotonicity.
func TestIntrospectionShape(t *testing.T) {
	in := analyzePresetStats(t, "avrora").Introspection
	if in == nil {
		t.Fatal("no introspection section with Obs configured")
	}
	if in.Schema != obs.IntrospectionSchema {
		t.Errorf("schema = %d, want %d", in.Schema, obs.IntrospectionSchema)
	}
	if in.Origins == 0 || len(in.TopK) == 0 {
		t.Fatalf("empty attribution: origins=%d topk=%d", in.Origins, len(in.TopK))
	}
	if len(in.TopK) > obs.IntrospectionTopK {
		t.Fatalf("top-K overflow: %d", len(in.TopK))
	}
	if in.TotalPairs == 0 {
		t.Error("no candidate pairs attributed")
	}
	for i := range in.TopK {
		c := &in.TopK[i]
		if c.Score != c.Pairs+c.SHBNodes+c.SHBEdges+c.CGNodes+c.Accesses {
			t.Errorf("origin %d score %d does not match its counts", c.ID, c.Score)
		}
		if i > 0 && in.TopK[i-1].Score < c.Score {
			t.Errorf("top-K not sorted at %d: %d < %d", i, in.TopK[i-1].Score, c.Score)
		}
		if c.Origin == "" {
			t.Errorf("origin %d has no label", c.ID)
		}
	}
	// The live section carries wall-time attribution; at least one origin
	// must have received a detect share (pairs were checked).
	var shared bool
	for _, c := range in.TopK {
		if c.DetectShareNS > 0 {
			shared = true
		}
	}
	if in.DetectWallNS > 0 && !shared {
		t.Error("detect wall time attributed to no origin")
	}
}

// TestIntrospectionByteStability runs the same workload twice at the
// default (parallel) worker count and requires byte-identical
// deterministic projections — the property CI leans on to diff
// introspection reports across runs.
func TestIntrospectionByteStability(t *testing.T) {
	first, err := analyzePresetStats(t, "avrora").Deterministic().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	second, err := analyzePresetStats(t, "avrora").Deterministic().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("deterministic projections differ across runs\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}
