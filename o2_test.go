package o2

import (
	"strings"
	"testing"

	"o2/internal/cases"
)

func analyze(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	res, err := AnalyzeSource("test.mini", src, cfg)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

const sharedCounter = `
class Counter { field count; }
class Worker {
  field c;
  Worker(c) { this.c = c; }
  run() {
    x = this.c;
    x.count = this;
  }
}
main {
  c = new Counter();
  w1 = new Worker(c);
  w2 = new Worker(c);
  w1.start();
  w2.start();
}
`

func TestSharedCounterRace(t *testing.T) {
	res := analyze(t, sharedCounter, DefaultConfig())
	if n := len(res.Races()); n != 1 {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("want 1 race, got %d", n)
	}
	r := res.Races()[0]
	if r.Key.Field != "count" {
		t.Errorf("race on field %q, want count", r.Key.Field)
	}
	if r.A.Origin == r.B.Origin {
		t.Errorf("race within one origin: %v vs %v", r.A, r.B)
	}
}

const lockedCounter = `
class Counter { field count; }
class Worker {
  field c;
  Worker(c) { this.c = c; }
  run() {
    x = this.c;
    sync (x) {
      x.count = this;
    }
  }
}
main {
  c = new Counter();
  w1 = new Worker(c);
  w2 = new Worker(c);
  w1.start();
  w2.start();
}
`

func TestLockedCounterNoRace(t *testing.T) {
	res := analyze(t, lockedCounter, DefaultConfig())
	if n := len(res.Races()); n != 0 {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("want 0 races, got %d", n)
	}
}

const joinedCounter = `
class Counter { field count; }
class Worker {
  field c;
  Worker(c) { this.c = c; }
  run() {
    x = this.c;
    x.count = this;
  }
}
main {
  c = new Counter();
  w1 = new Worker(c);
  w2 = new Worker(c);
  w1.start();
  w1.join();
  w2.start();
}
`

func TestJoinOrdersOrigins(t *testing.T) {
	res := analyze(t, joinedCounter, DefaultConfig())
	if n := len(res.Races()); n != 0 {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("want 0 races (join orders the threads), got %d", n)
	}
}

func TestMainVsThreadRace(t *testing.T) {
	src := `
class Counter { field count; }
class Worker {
  field c;
  Worker(c) { this.c = c; }
  run() { x = this.c; x.count = this; }
}
main {
  c = new Counter();
  w = new Worker(c);
  w.start();
  c.count = w;   // racy with the thread's write
}
`
	res := analyze(t, src, DefaultConfig())
	if n := len(res.Races()); n != 1 {
		t.Fatalf("want 1 race between main and thread, got %d", n)
	}
}

func TestMainBeforeStartNoRace(t *testing.T) {
	src := `
class Counter { field count; }
class Worker {
  field c;
  Worker(c) { this.c = c; }
  run() { x = this.c; x.count = this; }
}
main {
  c = new Counter();
  c.count = null;   // before start: ordered by the spawn edge
  w = new Worker(c);
  w.start();
}
`
	res := analyze(t, src, DefaultConfig())
	if n := len(res.Races()); n != 0 {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("want 0 races (write precedes spawn), got %d", n)
	}
}

// TestFigure2OriginPrecision checks the paper's running example: with
// origins, only the genuinely shared s.data write races; the per-origin
// Data and Box objects stay local. The 0-ctx baseline conflates them and
// reports more races.
func TestFigure2OriginPrecision(t *testing.T) {
	o2res := analyze(t, cases.Figure2, DefaultConfig())
	if n := len(o2res.Races()); n != 1 {
		for _, r := range o2res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("O2: want exactly 1 race (on s.data), got %d", n)
	}
	if f := o2res.Races()[0].Key.Field; f != "data" {
		t.Errorf("O2 race on field %q, want data", f)
	}

	cfg := DefaultConfig()
	cfg.Policy = Insensitive
	base := analyze(t, cases.Figure2, cfg)
	if len(base.Races()) <= len(o2res.Races()) {
		for _, r := range base.Races() {
			t.Logf("0-ctx: %s", r.String())
		}
		t.Errorf("0-ctx should report more races than O2: got %d vs %d",
			len(base.Races()), len(o2res.Races()))
	}
}

// TestFigure3ContextSwitch checks the context switch at origin
// allocations: the super constructor's Box allocation must yield one
// object per origin under OPA (no race), but a single falsely-shared
// object under 0-ctx (false race).
func TestFigure3ContextSwitch(t *testing.T) {
	o2res := analyze(t, cases.Figure3, DefaultConfig())
	if n := len(o2res.Races()); n != 0 {
		for _, r := range o2res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("O2: want 0 races (f is origin-local), got %d", n)
	}

	cfg := DefaultConfig()
	cfg.Policy = Insensitive
	base := analyze(t, cases.Figure3, cfg)
	if n := len(base.Races()); n == 0 {
		t.Errorf("0-ctx should report the false race on the conflated Box")
	}
}

// TestEventThreadRace exercises the thread×event interaction that origins
// unify: an event handler and a thread write the same location.
func TestEventThreadRace(t *testing.T) {
	src := `
class Stats { field hits; }
class Handler {
  field s;
  Handler(s) { this.s = s; }
  handleEvent(ev) {
    x = this.s;
    x.hits = ev;       // unprotected write from the event handler
  }
}
class Flusher {
  field s;
  Flusher(s) { this.s = s; }
  run() {
    x = this.s;
    sync (x) { x.hits = this; }   // locked write from the thread
  }
}
main {
  s = new Stats();
  h = new Handler(s);
  f = new Flusher(s);
  f.start();
  ev = new Event();
  h.handleEvent(ev);
}
`
	res := analyze(t, src, DefaultConfig())
	if n := len(res.Races()); n != 1 {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("want 1 thread-vs-event race, got %d", n)
	}
	r := res.Races()[0]
	kinds := map[string]bool{}
	kinds[res.Analysis.Origins.Get(r.A.Origin).Kind.String()] = true
	kinds[res.Analysis.Origins.Get(r.B.Origin).Kind.String()] = true
	if !kinds["thread"] || !kinds["event"] {
		t.Errorf("race should span a thread and an event origin, got %v", kinds)
	}
}

// TestAndroidModeSerializesEvents checks §4.2: with the Android global
// event lock, two handlers no longer race with each other, but a handler
// still races with a background thread.
func TestAndroidModeSerializesEvents(t *testing.T) {
	src := `
class Ctx { field app; }
class H1 {
  field c;
  H1(c) { this.c = c; }
  onReceive(ev) { x = this.c; x.app = ev; }
}
class H2 {
  field c;
  H2(c) { this.c = c; }
  onReceive(ev) { x = this.c; x.app = ev; }
}
class Bg {
  field c;
  Bg(c) { this.c = c; }
  run() { x = this.c; x.app = this; }
}
main {
  c = new Ctx();
  h1 = new H1(c);
  h2 = new H2(c);
  e = new Event();
  h1.onReceive(e);
  h2.onReceive(e);
  b = new Bg(c);
  b.start();
}
`
	cfg := DefaultConfig()
	cfg.Android = true
	res := analyze(t, src, cfg)
	for _, r := range res.Races() {
		ka := res.Analysis.Origins.Get(r.A.Origin).Kind
		kb := res.Analysis.Origins.Get(r.B.Origin).Kind
		if ka.String() == "event" && kb.String() == "event" {
			t.Errorf("event-event race should be suppressed in Android mode: %s", r.String())
		}
	}
	if len(res.Races()) == 0 {
		t.Errorf("thread-vs-event race should survive Android mode")
	}

	// Without Android mode, the two handlers do race with each other.
	plain := analyze(t, src, DefaultConfig())
	if len(plain.Races()) <= len(res.Races()) {
		t.Errorf("plain mode should report more races than Android mode: %d vs %d",
			len(plain.Races()), len(res.Races()))
	}
}

// TestLoopSpawnReplicatesOrigin checks §3.2: a thread allocated in a loop
// gets concurrent instances, so even a single textual write can race with
// itself across instances.
func TestLoopSpawnReplicatesOrigin(t *testing.T) {
	src := `
class Shared { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; x.v = this; }
}
main {
  s = new Shared();
  while (i < 10) {
    w = new W(s);
    w.start();
  }
}
`
	res := analyze(t, src, DefaultConfig())
	if n := len(res.Races()); n != 1 {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("want 1 self-race across loop instances, got %d", n)
	}

	// The same program with the write locked is race-free.
	locked := `
class Shared { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; sync (x) { x.v = this; } }
}
main {
  s = new Shared();
  while (i < 10) {
    w = new W(s);
    w.start();
  }
}
`
	res2 := analyze(t, locked, DefaultConfig())
	if n := len(res2.Races()); n != 0 {
		t.Fatalf("want 0 races with lock, got %d", n)
	}
}

// TestOriginAnnotation exercises §3.1's developer annotations: a
// customized user-level task system whose entry point matches no Table 1
// name is marked with the `origin` modifier and becomes a full origin.
func TestOriginAnnotation(t *testing.T) {
	src := `
class Pool { field queue; }
class Task {
  field p;
  Task(p) { this.p = p; }
  origin execute(arg) {            // annotated entry: not in Table 1
    x = this.p;
    x.queue = arg;                 // races across task instances
  }
}
main {
  p = new Pool();
  t1 = new Task(p);
  t2 = new Task(p);
  a = new Arg();
  t1.execute(a);
  t2.execute(a);
}
`
	res := analyze(t, src, DefaultConfig())
	threads := 0
	for _, org := range res.Analysis.Origins.Origins {
		if org.Kind.String() == "thread" {
			threads++
		}
	}
	if threads != 2 {
		t.Fatalf("annotated entries should create 2 origins, got %d", threads)
	}
	if n := len(res.Races()); n != 1 {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("want 1 race between annotated origins, got %d", n)
	}

	// Without the annotation the same program has a single origin and no
	// races (everything runs on main).
	plain := analyze(t, strings.Replace(src, "origin execute", "execute", 1), DefaultConfig())
	if n := len(plain.Races()); n != 0 {
		t.Fatalf("unannotated entry should run on main: got %d races", n)
	}
}
