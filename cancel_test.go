package o2

import (
	"context"
	"errors"
	"testing"
	"time"

	"o2/internal/cases"
	"o2/internal/lang"
	"o2/internal/workload"
)

// TestAnalyzeAlreadyCanceled: a context canceled before Analyze starts
// returns ErrCanceled without running any phase.
func TestAnalyzeAlreadyCanceled(t *testing.T) {
	prog, err := lang.Compile("fig2.mini", cases.Figure2, DefaultConfig().Entries)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Analyze(ctx, prog, DefaultConfig())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ErrCanceled must satisfy errors.Is(err, context.Canceled); got %v", err)
	}
}

// TestAnalyzeDeadlineIsBudget: an expired deadline maps onto ErrBudget —
// callers observe one error class for both TimeBudget and context
// deadlines.
func TestAnalyzeDeadlineIsBudget(t *testing.T) {
	prog, err := lang.Compile("fig2.mini", cases.Figure2, DefaultConfig().Entries)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = Analyze(ctx, prog, DefaultConfig())
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget for expired deadline, got %v", err)
	}
}

// TestTimeBudgetStillBudget: the legacy TimeBudget knob (now a derived
// context deadline) still aborts long runs with ErrBudget.
func TestTimeBudgetStillBudget(t *testing.T) {
	prog := workload.Build(workload.Scale(workload.Linux(), 4), DefaultConfig().Entries)
	cfg := DefaultConfig()
	cfg.TimeBudget = 5 * time.Millisecond
	_, err := Analyze(context.Background(), prog, cfg)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget from TimeBudget, got %v", err)
	}
}

// TestCancelMidSolve: canceling while the pointer analysis is running
// returns promptly (well under the 100ms bound) with ErrCanceled.
func TestCancelMidSolve(t *testing.T) {
	// linux preset: solve alone takes tens of milliseconds, so canceling
	// after 5ms lands inside the solver step loop.
	prog := workload.Build(workload.Linux(), DefaultConfig().Entries)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Analyze(ctx, prog, DefaultConfig())
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v (after %v)", err, elapsed)
	}
	if elapsed > 5*time.Millisecond+100*time.Millisecond {
		t.Fatalf("cancellation not prompt: returned after %v", elapsed)
	}
}

// TestCancelMidDetect: canceling while the race-detection pair loop is
// running (the longest phase on linux-x4) returns within 100ms.
func TestCancelMidDetect(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload")
	}
	// linux-x4: solve ≈ 130ms, detect ≈ seconds. Canceling at 500ms lands
	// firmly inside detection.
	prog := workload.Build(workload.Scale(workload.Linux(), 4), DefaultConfig().Entries)
	ctx, cancel := context.WithCancel(context.Background())
	var canceledAt time.Time
	go func() {
		time.Sleep(500 * time.Millisecond)
		canceledAt = time.Now()
		cancel()
	}()
	start := time.Now()
	_, err := Analyze(ctx, prog, DefaultConfig())
	end := time.Now()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v (after %v)", err, end.Sub(start))
	}
	if end.Sub(start) < 400*time.Millisecond {
		// The workload finished before the cancel fired — the test proved
		// nothing about mid-detect cancellation.
		t.Fatalf("workload too fast (%v); scale it up", end.Sub(start))
	}
	if lat := end.Sub(canceledAt); lat > 100*time.Millisecond {
		t.Fatalf("cancellation latency %v exceeds 100ms", lat)
	} else {
		t.Logf("cancellation latency %v", lat)
	}
}

// TestCancelMidDetectParallel: same as above with a worker pool, proving
// the canceled latch stops all workers.
func TestCancelMidDetectParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload")
	}
	prog := workload.Build(workload.Scale(workload.Linux(), 4), DefaultConfig().Entries)
	cfg := DefaultConfig()
	cfg.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	var canceledAt time.Time
	go func() {
		time.Sleep(500 * time.Millisecond)
		canceledAt = time.Now()
		cancel()
	}()
	start := time.Now()
	_, err := Analyze(ctx, prog, cfg)
	end := time.Now()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v (after %v)", err, end.Sub(start))
	}
	if end.Sub(start) < 400*time.Millisecond {
		t.Fatalf("workload too fast (%v); scale it up", end.Sub(start))
	}
	if lat := end.Sub(canceledAt); lat > 100*time.Millisecond {
		t.Fatalf("cancellation latency %v exceeds 100ms", lat)
	}
}

// TestAnalyzeSourceCtxCancel: the source-level entry point honors the
// context too (cancellation during analysis, after a successful compile).
func TestAnalyzeSourceCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AnalyzeSourceCtx(ctx, "fig2.mini", cases.Figure2, DefaultConfig())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestUncanceledRunUnaffected: a background context changes nothing — the
// Figure 2 race is still found.
func TestUncanceledRunUnaffected(t *testing.T) {
	res, err := AnalyzeSourceCtx(context.Background(), "fig2.mini", cases.Figure2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races()) != 1 {
		t.Fatalf("want 1 race on Figure 2, got %d", len(res.Races()))
	}
}
