// Tests of the streaming corpus pipeline: strict input-ordered emission
// with per-program failure isolation, result equality against the
// sequential path over the truth corpus, and the bounded-memory claim —
// peak live heap independent of corpus length.
package o2_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"o2"
	"o2/internal/report"
	"o2/internal/truth"
)

// genCorpusProgram builds the i-th synthetic program: two threads racing
// on a shared field (one guaranteed race), with a per-index class name so
// programs are distinct inputs rather than cache fodder.
func genCorpusProgram(i int) o2.Source {
	src := fmt.Sprintf(`
class S%[1]d { field data; }
class W%[1]d {
  field s;
  W%[1]d(s) { this.s = s; }
  run() { sh = this.s; sh.data = this; }
}
main {
  s = new S%[1]d();
  t1 = new W%[1]d(s);
  t2 = new W%[1]d(s);
  t1.start();
  t2.start();
}
`, i)
	return o2.Source{Name: fmt.Sprintf("gen-%04d.mini", i), Bytes: []byte(src)}
}

// genIter streams n generated programs, corrupting the ones whose index
// satisfies corrupt (nil = none). Programs are materialized one Next at
// a time — the iterator itself holds O(1) state, like a real corpus.
type genIter struct {
	n, i    int
	corrupt func(int) bool
}

func (g *genIter) Next() (o2.Source, bool, error) {
	if g.i >= g.n {
		return o2.Source{}, false, nil
	}
	src := genCorpusProgram(g.i)
	if g.corrupt != nil && g.corrupt(g.i) {
		src.Bytes = []byte("class { this is not minilang")
	}
	g.i++
	return src, true, nil
}

func corpusCfg(workers, window int) o2.CorpusConfig {
	return o2.CorpusConfig{Config: o2.DefaultConfig(), Workers: workers, Window: window}
}

// TestAnalyzeCorpusOrderedWithFailures drives a corpus with corrupt
// programs scattered through it: emission must stay strictly
// input-ordered, every corrupt program must surface as an isolated
// ErrCompile record, and every healthy program must still be analyzed.
func TestAnalyzeCorpusOrderedWithFailures(t *testing.T) {
	const n = 40
	corrupt := func(i int) bool { return i%7 == 3 }
	it := &genIter{n: n, corrupt: corrupt}

	var seen []o2.CorpusResult
	stats, err := o2.AnalyzeCorpus(context.Background(), it, corpusCfg(4, 4), func(cr o2.CorpusResult) error {
		seen = append(seen, cr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n || stats.Programs != n {
		t.Fatalf("emitted %d records, stats.Programs=%d, want %d", len(seen), stats.Programs, n)
	}
	wantFailed := 0
	for i, cr := range seen {
		if cr.Index != i {
			t.Fatalf("record %d carries index %d: emission is out of order", i, cr.Index)
		}
		if corrupt(i) {
			wantFailed++
			if cr.Err == nil || !errors.Is(cr.Err, o2.ErrCompile) {
				t.Fatalf("corrupt program %d: err = %v, want ErrCompile", i, cr.Err)
			}
			if cr.Result != nil {
				t.Fatalf("corrupt program %d carries a result", i)
			}
			continue
		}
		if cr.Err != nil {
			t.Fatalf("healthy program %d failed: %v", i, cr.Err)
		}
		if got := len(cr.Result.Races()); got != 1 {
			t.Fatalf("program %d: %d races, want 1", i, got)
		}
	}
	if stats.Failed != wantFailed {
		t.Fatalf("stats.Failed = %d, want %d", stats.Failed, wantFailed)
	}
	if stats.Races != n-wantFailed {
		t.Fatalf("stats.Races = %d, want %d", stats.Races, n-wantFailed)
	}
}

// TestAnalyzeCorpusMatchesSequential streams the whole truth corpus and
// checks every program's canonical race-key set against a sequential
// AnalyzeSources run under the same configuration — the stream must be a
// pure reordering of the eager path, never a different analysis.
func TestAnalyzeCorpusMatchesSequential(t *testing.T) {
	programs, err := truth.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	cfg := o2.DefaultConfig()
	cfg.Workers = 1

	want := make([][]report.RaceKey, len(programs))
	srcs := make([]o2.Source, len(programs))
	for i, p := range programs {
		srcs[i] = p.AsSource()
		res, err := o2.AnalyzeSources(context.Background(), []o2.Source{srcs[i]}, cfg)
		if err != nil {
			t.Fatalf("%s: sequential analysis: %v", p.Name, err)
		}
		want[i] = report.Canonical(res.Report, res.Analysis.Origins)
	}

	ccfg := corpusCfg(4, 3)
	ccfg.Config = cfg
	idx := 0
	_, err = o2.AnalyzeCorpus(context.Background(), o2.SliceSources(srcs), ccfg, func(cr o2.CorpusResult) error {
		if cr.Index != idx {
			t.Fatalf("emission order broken: got index %d at position %d", cr.Index, idx)
		}
		if cr.Err != nil {
			t.Fatalf("%s: streamed analysis failed: %v", cr.Name, cr.Err)
		}
		got := report.Canonical(cr.Result.Report, cr.Result.Analysis.Origins)
		if fmt.Sprint(got) != fmt.Sprint(want[idx]) {
			t.Fatalf("%s: streamed races %v != sequential %v", cr.Name, got, want[idx])
		}
		idx++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if idx != len(programs) {
		t.Fatalf("stream emitted %d of %d programs", idx, len(programs))
	}
}

// TestAnalyzeCorpusBoundedMemory streams a 1000-program corpus through a
// small window and samples the live heap along the way: peak live memory
// must stay bounded by the window, not grow with the corpus. The ceiling
// is deliberately generous (results are dropped after emit, so actual
// usage is a few MB) — the failure mode it guards against is retaining
// all thousand results, which costs an order of magnitude more.
func TestAnalyzeCorpusBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-program corpus")
	}
	const (
		n       = 1000
		ceiling = 64 << 20 // bytes of live heap
	)
	var ms runtime.MemStats
	var peak uint64
	sample := func() {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	sample() // baseline before the stream

	emitted := 0
	stats, err := o2.AnalyzeCorpus(context.Background(), &genIter{n: n}, corpusCfg(4, 4), func(cr o2.CorpusResult) error {
		if cr.Err != nil {
			return cr.Err
		}
		emitted++
		if emitted%100 == 0 {
			sample()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Programs != n || stats.Races != n {
		t.Fatalf("programs=%d races=%d, want %d/%d", stats.Programs, stats.Races, n, n)
	}
	sample()
	t.Logf("peak live heap %.1f MB over %d programs", float64(peak)/(1<<20), n)
	if peak > ceiling {
		t.Fatalf("peak live heap %d bytes exceeds %d: corpus is being retained", peak, ceiling)
	}
}

// TestAnalyzeCorpusIterError: an iterator failure is a stream failure —
// it aborts with the iterator's error, unlike a program failure.
func TestAnalyzeCorpusIterError(t *testing.T) {
	boom := errors.New("disk on fire")
	it := &errAfterIter{n: 5, err: boom}
	_, err := o2.AnalyzeCorpus(context.Background(), it, corpusCfg(2, 2), func(o2.CorpusResult) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the iterator's error", err)
	}
}

type errAfterIter struct {
	n, i int
	err  error
}

func (g *errAfterIter) Next() (o2.Source, bool, error) {
	if g.i >= g.n {
		return o2.Source{}, false, g.err
	}
	src := genCorpusProgram(g.i)
	g.i++
	return src, true, nil
}

// TestAnalyzeCorpusEmitError: an emit error cancels the remaining work
// and surfaces as the stream's error.
func TestAnalyzeCorpusEmitError(t *testing.T) {
	stop := errors.New("consumer full")
	_, err := o2.AnalyzeCorpus(context.Background(), &genIter{n: 50}, corpusCfg(4, 4), func(cr o2.CorpusResult) error {
		if cr.Index == 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want the emit error", err)
	}
}

// TestAnalyzeCorpusCancel: canceling the stream's context aborts it with
// ErrCanceled, matching Analyze's contract.
func TestAnalyzeCorpusCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	_, err := o2.AnalyzeCorpus(ctx, &genIter{n: 10_000}, corpusCfg(2, 2), func(cr o2.CorpusResult) error {
		if cr.Index == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, o2.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestAnalyzeCorpusProgramTimeout: a per-program deadline fails that
// program with ErrBudget and the stream keeps going.
func TestAnalyzeCorpusProgramTimeout(t *testing.T) {
	ccfg := corpusCfg(2, 2)
	ccfg.ProgramTimeout = time.Nanosecond
	got := 0
	stats, err := o2.AnalyzeCorpus(context.Background(), &genIter{n: 4}, ccfg, func(cr o2.CorpusResult) error {
		got++
		if cr.Err == nil || !errors.Is(cr.Err, o2.ErrBudget) {
			t.Fatalf("program %d: err = %v, want ErrBudget", cr.Index, cr.Err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 || stats.Failed != 4 {
		t.Fatalf("emitted=%d failed=%d, want 4/4", got, stats.Failed)
	}
}

// TestAnalyzeSourcesDuplicateName: duplicate source names are a compile
// error, typed ErrCompile like any other front-end failure.
func TestAnalyzeSourcesDuplicateName(t *testing.T) {
	src := genCorpusProgram(0)
	dup := []o2.Source{src, src}
	_, err := o2.AnalyzeSources(context.Background(), dup, o2.DefaultConfig())
	if !errors.Is(err, o2.ErrCompile) {
		t.Fatalf("err = %v, want ErrCompile", err)
	}
	if !strings.Contains(fmt.Sprint(err), "duplicate") {
		t.Fatalf("err = %v, want a duplicate-name message", err)
	}
}
