# Development and CI entry points.
#
#   make ci          vet + build + tests + race pass + coverage floors + bench gate
#   make test        go test ./...
#   make race        go test -race on the concurrency-critical packages
#   make cover       per-package coverage floors (obs/race/lockset)
#   make bench-gate  deterministic pipeline stats vs checked-in golden
#   make fuzz        short fuzz session on the minilang frontend
#   make bench       sequential-vs-parallel detection speedup benchmark
#
# The checked-in fuzz corpus under internal/lang/testdata/fuzz is replayed
# by the plain `go test` runs, so regressions on past findings fail `ci`.

GO ?= go
FUZZTIME ?= 30s

.PHONY: ci vet build test race cover bench-gate fuzz bench

ci: vet build test race cover bench-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages whose state is shared across detection workers; Workers ≥ 8
# paths are exercised by the tests in internal/race.
race:
	$(GO) test -race ./internal/race/ ./internal/shb/ ./internal/lockset/ ./internal/obs/

cover:
	./ci.sh cover

# Runs the three fixed gate presets at Workers=1 and compares the
# deterministic run stats (pairs checked, counters, hit rates, races)
# against internal/bench/testdata/bench_gate_golden.json. Regenerate the
# golden after an intentional change with:
#   $(GO) run ./cmd/o2bench -table gate -update-golden
bench-gate:
	./ci.sh bench-gate

fuzz:
	$(GO) test ./internal/lang/ -run FuzzCompile -fuzz FuzzCompile -fuzztime $(FUZZTIME)

bench:
	$(GO) test -run=NONE -bench=ParallelDetect -benchmem .
