# Development and CI entry points.
#
#   make ci        vet + build + tests + race-detector pass (what CI runs)
#   make test      go test ./...
#   make race      go test -race on the concurrency-critical packages
#   make fuzz      short fuzz session on the minilang frontend
#   make bench     sequential-vs-parallel detection speedup benchmark
#
# The checked-in fuzz corpus under internal/lang/testdata/fuzz is replayed
# by the plain `go test` runs, so regressions on past findings fail `ci`.

GO ?= go
FUZZTIME ?= 30s

.PHONY: ci vet build test race fuzz bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages whose state is shared across detection workers; Workers ≥ 8
# paths are exercised by the tests in internal/race.
race:
	$(GO) test -race ./internal/race/ ./internal/shb/ ./internal/lockset/

fuzz:
	$(GO) test ./internal/lang/ -run FuzzCompile -fuzz FuzzCompile -fuzztime $(FUZZTIME)

bench:
	$(GO) test -run=NONE -bench=ParallelDetect -benchmem .
