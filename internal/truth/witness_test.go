package truth

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"o2/internal/race"
)

var updateWitness = flag.Bool("update-witness", false, "rewrite the witness golden file")

// witnessSlice is the corpus slice the witness golden covers: the three
// figure patterns (thread, event and nested-origin races), a mixed
// thread×event program, a disjoint-lock program (exercising the lockset
// derivation with resolved names) and a replicated event handler
// (exercising the replicated-origin ordering verdict).
var witnessSlice = []string{
	"figure1_threads_events",
	"figure2_origins",
	"figure3_super_ctor",
	"mixed_thread_event",
	"lock_distinct_locks",
	"event_replicated",
}

func witnessReport(t *testing.T) []byte {
	t.Helper()
	progs, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Program{}
	for i := range progs {
		byName[progs[i].Name] = &progs[i]
	}
	report := map[string][]*race.Witness{}
	for _, name := range witnessSlice {
		p, ok := byName[name]
		if !ok {
			t.Fatalf("corpus program %q missing", name)
		}
		res, err := p.Analyze()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		report[name] = race.Witnesses(res.Analysis, res.Graph, res.Report)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestWitnessGolden pins the Witness JSON schema and its byte-stability
// over a slice of the oracle corpus: field names, verdict spellings,
// spawn chains and resolved lock names must match the checked-in golden
// exactly. Regenerate after a deliberate schema change with:
//
//	go test ./internal/truth -run WitnessGolden -args -update-witness
func TestWitnessGolden(t *testing.T) {
	got := witnessReport(t)
	path := filepath.Join("testdata", "witness_golden.json")
	if *updateWitness {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with `go test ./internal/truth -run WitnessGolden -args -update-witness`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("witness JSON drifted from %s\ngot:\n%s", path, got)
	}
}

// TestWitnessDeterministic runs the slice twice in-process and requires
// byte-identical output — the acceptance criterion behind the golden.
func TestWitnessDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	one := witnessReport(t)
	two := witnessReport(t)
	if !bytes.Equal(one, two) {
		t.Error("witness JSON differs across repeated runs")
	}
}
