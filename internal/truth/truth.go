// Package truth is the ground-truth oracle subsystem: a labeled corpus of
// minilang programs whose true races are known by construction, a scorer
// computing precision/recall/F1 of the analysis against those labels, and
// a metamorphic layer asserting that race-preserving program
// transformations leave the canonical race-report set invariant.
//
// The paper's headline claim is precision — an order of magnitude fewer
// false positives than SHB-only or lockset-only detection (§6, Tables
// 8–10) — and nothing in a performance gate can catch a precision
// regression. The corpus makes precision measurable: each program under
// corpus/ carries a .expect sidecar listing every true race as a
// canonical (location, line×line) key, labeled with the category of
// behavior it exercises (thread, event, mixed, array, figure patterns,
// the Table 10 false-positive categories, and known residual false
// positives). `o2 eval` and the bench gate score the tool against these
// labels; CI requires recall to stay 1.0 and precision to stay at or
// above the checked-in baseline.
package truth

import (
	"context"
	"embed"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"o2"
	"o2/internal/report"
)

//go:embed corpus
var corpusFS embed.FS

// baselineJSON is the checked-in precision baseline the CI gate compares
// against. Regenerate with `o2 eval -json > internal/truth/baseline.json`
// after a deliberate, reviewed precision change.
//
//go:embed baseline.json
var baselineJSON []byte

// Baseline returns the checked-in eval baseline.
func Baseline() (*EvalReport, error) { return ParseEval(baselineJSON) }

// Categories used by the corpus, in report order. A category groups
// programs by the behavior (or false-positive class) they exercise:
//
//	figure           the paper's Figure 1–3 motivating patterns
//	thread           plain multithreaded races
//	event            event-handler races (dispatch concurrency)
//	mixed            thread × event races
//	array            array-element races (the synthetic "*" field)
//	lock-protected   Table 10: accesses guarded by a common lock
//	join-ordered     Table 10: accesses ordered by start/join
//	origin-local     Table 10: per-origin data only OPA separates
//	event-serialized Table 10: handlers serialized by Android dispatch
//	known-fp         residual false positives the analysis is expected
//	                 to report (infeasible paths, unknown locks, value
//	                 protocols) — these programs keep the precision axis
//	                 honest
//	go-sync          Go-style message passing: channel send/recv/close,
//	                 select dispatch and WaitGroup barriers as HB edges,
//	                 including the racy misuse patterns from Uber's field
//	                 study (mutate-after-send, loop-variable capture,
//	                 mismatched Done/Wait)
var Categories = []string{
	"figure", "thread", "event", "mixed", "array",
	"lock-protected", "join-ordered", "origin-local", "event-serialized",
	"known-fp", "go-sync",
}

// Program is one labeled corpus entry.
type Program struct {
	// Name is the corpus file base name without extension.
	Name string
	// File is the source file name used for positions (Name + ".mini").
	File string
	// Source is the minilang text.
	Source string
	// Category labels the behavior the program exercises (see Categories).
	Category string
	// Android enables serialized event dispatch for this program.
	Android bool
	// Replicate treats event handlers as concurrently re-entrant.
	Replicate bool
	// Expected are the true races as canonical keys (identity fields only;
	// Pair is informational and never matched).
	Expected []report.RaceKey
}

// Config is the analysis configuration a corpus program is scored under:
// the paper's default O2 configuration plus the program's directives.
// Workers is pinned to 1 so eval runs are bit-deterministic end to end
// (the report itself is worker-count independent, but pinning keeps any
// future observability coupling out of the gate).
func (p *Program) Config() o2.Config {
	cfg := o2.DefaultConfig()
	cfg.Android = p.Android
	cfg.ReplicateEvents = p.Replicate
	cfg.Workers = 1
	return cfg
}

// Analyze runs the full pipeline on the program under its configuration.
func (p *Program) Analyze() (*o2.Result, error) {
	return o2.AnalyzeSourceCtx(context.Background(), p.File, p.Source, p.Config())
}

// AsSource returns the program in the typed form the streaming frontends
// consume.
func (p *Program) AsSource() o2.Source {
	return o2.Source{Name: p.File, Bytes: []byte(p.Source)}
}

// ActualKeys analyzes the program and returns the canonical race keys.
func (p *Program) ActualKeys() ([]report.RaceKey, error) {
	res, err := p.Analyze()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	return report.Canonical(res.Report, res.Analysis.Origins), nil
}

// Corpus loads the embedded oracle corpus, sorted by program name. Every
// .mini file must have a .expect sidecar and vice versa.
func Corpus() ([]Program, error) {
	entries, err := corpusFS.ReadDir("corpus")
	if err != nil {
		return nil, fmt.Errorf("truth: reading corpus: %w", err)
	}
	var names []string
	seen := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".mini"):
			names = append(names, strings.TrimSuffix(name, ".mini"))
		case strings.HasSuffix(name, ".expect"):
			seen[strings.TrimSuffix(name, ".expect")] = true
		default:
			return nil, fmt.Errorf("truth: unexpected corpus file %q", name)
		}
	}
	sort.Strings(names)
	var out []Program
	for _, name := range names {
		if !seen[name] {
			return nil, fmt.Errorf("truth: %s.mini has no .expect sidecar", name)
		}
		delete(seen, name)
		src, err := corpusFS.ReadFile("corpus/" + name + ".mini")
		if err != nil {
			return nil, err
		}
		exp, err := corpusFS.ReadFile("corpus/" + name + ".expect")
		if err != nil {
			return nil, err
		}
		p, err := parseExpect(name, string(exp))
		if err != nil {
			return nil, err
		}
		p.Source = string(src)
		out = append(out, p)
	}
	for name := range seen {
		return nil, fmt.Errorf("truth: %s.expect has no .mini source", name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("truth: corpus is empty")
	}
	return out, nil
}

// parseExpect parses a .expect sidecar:
//
//	# comments and blank lines are ignored
//	category: thread              (required, one of Categories)
//	android: true                 (optional directive)
//	replicate: true               (optional directive)
//	race <loc> @ <line> <line>    (one per true race; lines in the .mini
//	                               file, any order — keys are normalized)
//
// <loc> is the canonical location name: an instance field name, a
// "Class.field" static signature, or "*" for array elements.
func parseExpect(name, text string) (Program, error) {
	p := Program{Name: name, File: name + ".mini"}
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		errf := func(format string, args ...interface{}) error {
			return fmt.Errorf("%s.expect:%d: %s", name, i+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "category:"):
			p.Category = strings.TrimSpace(strings.TrimPrefix(line, "category:"))
			if !validCategory(p.Category) {
				return p, errf("unknown category %q", p.Category)
			}
		case strings.HasPrefix(line, "android:"):
			v, err := strconv.ParseBool(strings.TrimSpace(strings.TrimPrefix(line, "android:")))
			if err != nil {
				return p, errf("bad android directive: %v", err)
			}
			p.Android = v
		case strings.HasPrefix(line, "replicate:"):
			v, err := strconv.ParseBool(strings.TrimSpace(strings.TrimPrefix(line, "replicate:")))
			if err != nil {
				return p, errf("bad replicate directive: %v", err)
			}
			p.Replicate = v
		case strings.HasPrefix(line, "race "):
			key, err := parseRaceLine(p.File, strings.TrimPrefix(line, "race "))
			if err != nil {
				return p, errf("%v", err)
			}
			p.Expected = append(p.Expected, key)
		default:
			return p, errf("unrecognized line %q", line)
		}
	}
	if p.Category == "" {
		return p, fmt.Errorf("%s.expect: missing category directive", name)
	}
	p.Expected = report.Normalize(p.Expected)
	return p, nil
}

// parseRaceLine parses "<loc> @ <line> <line>".
func parseRaceLine(file, s string) (report.RaceKey, error) {
	var k report.RaceKey
	parts := strings.Fields(s)
	if len(parts) != 4 || parts[1] != "@" {
		return k, fmt.Errorf("want %q, got %q", "race <loc> @ <line> <line>", "race "+s)
	}
	l1, err1 := strconv.Atoi(parts[2])
	l2, err2 := strconv.Atoi(parts[3])
	if err1 != nil || err2 != nil || l1 <= 0 || l2 <= 0 {
		return k, fmt.Errorf("bad line pair %q %q", parts[2], parts[3])
	}
	return report.RaceKey{Loc: parts[0], AFile: file, ALine: l1, BFile: file, BLine: l2}, nil
}

func validCategory(c string) bool {
	for _, k := range Categories {
		if k == c {
			return true
		}
	}
	return false
}
