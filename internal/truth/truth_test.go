package truth

import (
	"strings"
	"testing"
)

// TestCorpusWellFormed: every program parses, carries a category, and the
// corpus exercises every declared category.
func TestCorpusWellFormed(t *testing.T) {
	corpus, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < 40 {
		t.Errorf("corpus has %d programs, want at least 40", len(corpus))
	}
	seen := map[string]int{}
	for i := range corpus {
		p := &corpus[i]
		seen[p.Category]++
		if _, err := p.Analyze(); err != nil {
			t.Errorf("%s does not analyze: %v", p.Name, err)
		}
	}
	for _, cat := range Categories {
		if seen[cat] == 0 {
			t.Errorf("category %q has no corpus programs", cat)
		}
	}
}

// TestEvalMeetsTargets is the precision/recall acceptance gate on the
// oracle corpus: recall 1.0 (no true race missed), precision >= 0.9, and
// no regression against the checked-in baseline.
func TestEvalMeetsTargets(t *testing.T) {
	rep, err := Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Recall != 1.0 {
		for _, ps := range rep.Programs {
			for _, m := range ps.Missing {
				t.Errorf("%s: missed true race %s", ps.Name, m)
			}
		}
		t.Fatalf("recall = %v, want 1.0", rep.Total.Recall)
	}
	if rep.Total.Precision < 0.9 {
		for _, ps := range rep.Programs {
			for _, s := range ps.Spurious {
				t.Errorf("%s: spurious race %s", ps.Name, s)
			}
		}
		t.Fatalf("precision = %v, want >= 0.9", rep.Total.Precision)
	}
	base, err := Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckAgainstBaseline(base); err != nil {
		t.Error(err)
	}
	// The baseline must be the *current* truth, not a stale snapshot: a
	// baseline looser than reality would mask precision regressions up to
	// the stale level.
	if base.Total != rep.Total {
		t.Errorf("baseline total %+v differs from current %+v; regenerate baseline.json",
			base.Total, rep.Total)
	}
}

// TestKnownFPsStayKnown pins the residual false positives: the known-fp
// programs must report exactly their documented spurious races. If one
// disappears, precision improved — move the program's comment and
// regenerate the baseline deliberately rather than silently.
func TestKnownFPsStayKnown(t *testing.T) {
	rep, err := Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"fp_infeasible_path": "slot @ fp_infeasible_path.mini:10 fp_infeasible_path.mini:10",
		"fp_unknown_lock":    "v @ fp_unknown_lock.mini:4 fp_unknown_lock.mini:4",
		"fp_flag_protocol":   "data @ fp_flag_protocol.mini:10 fp_flag_protocol.mini:23",
	}
	for _, ps := range rep.Programs {
		exp, ok := want[ps.Name]
		if !ok {
			continue
		}
		if got := strings.Join(ps.Spurious, ","); got != exp {
			t.Errorf("%s: spurious = %q, want %q", ps.Name, got, exp)
		}
		delete(want, ps.Name)
	}
	for name := range want {
		t.Errorf("known-fp program %s missing from eval", name)
	}
}

func TestParseExpectErrors(t *testing.T) {
	tests := []struct {
		name, text, wantErr string
	}{
		{"missing category", "race v @ 1 2\n", "missing category"},
		{"bad category", "category: nope\n", "unknown category"},
		{"bad race line", "category: thread\nrace v 1 2\n", "race <loc> @ <line> <line>"},
		{"bad line number", "category: thread\nrace v @ 0 2\n", "bad line pair"},
		{"junk line", "category: thread\nhello\n", "unrecognized line"},
		{"bad android", "category: thread\nandroid: maybe\n", "bad android directive"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := parseExpect("p", tt.text)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tt.wantErr)
			}
		})
	}
}

// TestParseExpectNormalizes: race lines may list positions in either
// order and duplicate each other; Expected comes out canonical.
func TestParseExpectNormalizes(t *testing.T) {
	p, err := parseExpect("p", "category: thread\nrace v @ 9 3\nrace v @ 3 9\n# comment\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Expected) != 1 {
		t.Fatalf("want 1 normalized race, got %d", len(p.Expected))
	}
	if got := p.Expected[0].Ident(); got != "v @ p.mini:3 p.mini:9" {
		t.Errorf("normalized ident = %q", got)
	}
}
