package truth

import (
	"strings"
	"testing"

	"o2/internal/report"
)

func key(loc string, a, b int) report.RaceKey {
	return report.RaceKey{Loc: loc, AFile: "t.mini", ALine: a, BFile: "t.mini", BLine: b}
}

func TestScoreProgram(t *testing.T) {
	tests := []struct {
		name       string
		expected   []report.RaceKey
		actual     []report.RaceKey
		tp, fp, fn int
		spurious   []string
		missing    []string
	}{
		{name: "empty both"},
		{
			name:     "exact match",
			expected: []report.RaceKey{key("v", 3, 7), key("w", 4, 4)},
			actual:   []report.RaceKey{key("v", 3, 7), key("w", 4, 4)},
			tp:       2,
		},
		{
			name:     "false positive only",
			actual:   []report.RaceKey{key("v", 3, 7)},
			fp:       1,
			spurious: []string{"v @ t.mini:3 t.mini:7"},
		},
		{
			name:     "false negative only",
			expected: []report.RaceKey{key("v", 3, 7)},
			fn:       1,
			missing:  []string{"v @ t.mini:3 t.mini:7"},
		},
		{
			name:     "mixed tp fp fn",
			expected: []report.RaceKey{key("v", 3, 7), key("w", 4, 4)},
			actual:   []report.RaceKey{key("v", 3, 7), key("x", 9, 9)},
			tp:       1, fp: 1, fn: 1,
			spurious: []string{"x @ t.mini:9 t.mini:9"},
			missing:  []string{"w @ t.mini:4 t.mini:4"},
		},
		{
			name:     "duplicate actuals count once",
			expected: []report.RaceKey{key("v", 3, 7)},
			actual:   []report.RaceKey{key("v", 3, 7), key("v", 3, 7), key("x", 9, 9), key("x", 9, 9)},
			tp:       1, fp: 1,
			spurious: []string{"x @ t.mini:9 t.mini:9"},
		},
		{
			name:     "duplicate expecteds count once",
			expected: []report.RaceKey{key("v", 3, 7), key("v", 3, 7)},
			fn:       1,
			missing:  []string{"v @ t.mini:3 t.mini:7"},
		},
		{
			name:     "pair difference is not a mismatch",
			expected: []report.RaceKey{key("v", 3, 7)},
			actual: []report.RaceKey{{
				Loc: "v", AFile: "t.mini", ALine: 3, BFile: "t.mini", BLine: 7,
				Pair: "thread-thread",
			}},
			tp: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ps := ScoreProgram("p", "thread", tt.expected, tt.actual)
			if ps.TP != tt.tp || ps.FP != tt.fp || ps.FN != tt.fn {
				t.Errorf("tp/fp/fn = %d/%d/%d, want %d/%d/%d",
					ps.TP, ps.FP, ps.FN, tt.tp, tt.fp, tt.fn)
			}
			if got := strings.Join(ps.Spurious, ","); got != strings.Join(tt.spurious, ",") {
				t.Errorf("spurious = %q, want %q", ps.Spurious, tt.spurious)
			}
			if got := strings.Join(ps.Missing, ","); got != strings.Join(tt.missing, ",") {
				t.Errorf("missing = %q, want %q", ps.Missing, tt.missing)
			}
		})
	}
}

func TestMkScoreEdges(t *testing.T) {
	tests := []struct {
		tp, fp, fn       int
		prec, recall, f1 float64
	}{
		{0, 0, 0, 1, 1, 1}, // vacuous program: perfect by convention
		{0, 2, 0, 0, 1, 0}, // only FPs: recall vacuously 1
		{0, 0, 2, 1, 0, 0}, // only FNs: precision vacuously 1
		{3, 1, 0, 0.75, 1, 0.8571},
		{1, 0, 1, 1, 0.5, 0.6667},
	}
	for _, tt := range tests {
		s := mkScore(tt.tp, tt.fp, tt.fn)
		if s.Precision != tt.prec || s.Recall != tt.recall || s.F1 != tt.f1 {
			t.Errorf("mkScore(%d,%d,%d) = %v/%v/%v, want %v/%v/%v",
				tt.tp, tt.fp, tt.fn, s.Precision, s.Recall, s.F1, tt.prec, tt.recall, tt.f1)
		}
	}
}

func TestBuildEvalAggregates(t *testing.T) {
	rep := BuildEval([]ProgramScore{
		{Name: "a", Category: "thread", TP: 2},
		{Name: "b", Category: "thread", TP: 1, FP: 1},
		{Name: "c", Category: "known-fp", FP: 2},
		{Name: "d", Category: "custom", TP: 1, FN: 1},
	})
	if rep.Schema != EvalSchemaVersion {
		t.Errorf("schema = %d", rep.Schema)
	}
	// Every canonical category appears (in Categories order, zeroed rows
	// for categories with no programs), extras appended after.
	var order []string
	byCat := map[string]CategoryScore{}
	for _, c := range rep.Categories {
		order = append(order, c.Category)
		byCat[c.Category] = c
	}
	want := strings.Join(Categories, ",") + ",custom"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("category order = %s, want %s", got, want)
	}
	th := byCat["thread"]
	if th.Programs != 2 || th.TP != 3 || th.FP != 1 || th.Precision != 0.75 {
		t.Errorf("thread agg = %+v", th)
	}
	// A canonical category with no programs reports an explicit zero row.
	if z := byCat["go-sync"]; z.Programs != 0 || z.TP != 0 || z.FP != 0 || z.FN != 0 {
		t.Errorf("empty category row = %+v, want zeroed", z)
	}
	if rep.Total.TP != 4 || rep.Total.FP != 3 || rep.Total.FN != 1 {
		t.Errorf("total = %+v", rep.Total)
	}
}

// TestEvalReportPinsAllCategories pins the full canonical category list
// in the EvalReport JSON: a category must appear in every report even
// when it scores zero findings, so a silently-dropped corpus slice (or
// a renamed category) fails loudly here and in the baseline diff.
func TestEvalReportPinsAllCategories(t *testing.T) {
	pinned := []string{
		"figure", "thread", "event", "mixed", "array",
		"lock-protected", "join-ordered", "origin-local", "event-serialized",
		"known-fp", "go-sync",
	}
	if got := strings.Join(Categories, ","); got != strings.Join(pinned, ",") {
		t.Fatalf("canonical category list changed:\n got %s\nwant %s\n(update this pin and regenerate baseline.json deliberately)", got, strings.Join(pinned, ","))
	}
	rep := BuildEval([]ProgramScore{{Name: "a", Category: "thread", TP: 1}})
	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	for _, cat := range pinned {
		if !strings.Contains(string(data), `"category": "`+cat+`"`) {
			t.Errorf("category %q missing from eval JSON", cat)
		}
	}
	if len(rep.Categories) != len(pinned) {
		t.Errorf("report has %d categories, want %d", len(rep.Categories), len(pinned))
	}
}

func TestParseEvalRoundTripAndSchema(t *testing.T) {
	rep := BuildEval([]ProgramScore{{Name: "a", Category: "thread", TP: 1}})
	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseEval(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Total.TP != 1 {
		t.Errorf("round trip lost data: %+v", back.Total)
	}
	if _, err := ParseEval([]byte(`{"schema": 999}`)); err == nil {
		t.Error("wrong schema must be rejected")
	}
	if _, err := ParseEval([]byte(`not json`)); err == nil {
		t.Error("bad JSON must be rejected")
	}
}

func TestCheckAgainstBaseline(t *testing.T) {
	base := BuildEval([]ProgramScore{
		{Name: "a", Category: "thread", TP: 3, FP: 1},
	})
	t.Run("equal passes", func(t *testing.T) {
		cur := BuildEval([]ProgramScore{{Name: "a", Category: "thread", TP: 3, FP: 1}})
		if err := cur.CheckAgainstBaseline(base); err != nil {
			t.Errorf("unexpected failure: %v", err)
		}
	})
	t.Run("improvement passes", func(t *testing.T) {
		cur := BuildEval([]ProgramScore{{Name: "a", Category: "thread", TP: 3}})
		if err := cur.CheckAgainstBaseline(base); err != nil {
			t.Errorf("unexpected failure: %v", err)
		}
	})
	t.Run("missed race fails with its identity", func(t *testing.T) {
		cur := BuildEval([]ProgramScore{
			{Name: "a", Category: "thread", TP: 2, FP: 1, FN: 1,
				Missing: []string{"v @ t.mini:3 t.mini:7"}},
		})
		err := cur.CheckAgainstBaseline(base)
		if err == nil || !strings.Contains(err.Error(), "a: v @ t.mini:3 t.mini:7") {
			t.Errorf("want recall failure naming the race, got %v", err)
		}
	})
	t.Run("precision drop fails", func(t *testing.T) {
		cur := BuildEval([]ProgramScore{{Name: "a", Category: "thread", TP: 3, FP: 2}})
		err := cur.CheckAgainstBaseline(base)
		if err == nil || !strings.Contains(err.Error(), "total precision") {
			t.Errorf("want total precision failure, got %v", err)
		}
	})
	t.Run("per-category drop fails even if total holds", func(t *testing.T) {
		base2 := BuildEval([]ProgramScore{
			{Name: "a", Category: "thread", TP: 3, FP: 1},
			{Name: "b", Category: "event", TP: 4},
		})
		cur := BuildEval([]ProgramScore{
			{Name: "a", Category: "thread", TP: 3},       // thread improves
			{Name: "b", Category: "event", TP: 4, FP: 1}, // event regresses
		})
		err := cur.CheckAgainstBaseline(base2)
		if err == nil || !strings.Contains(err.Error(), "category event") {
			t.Errorf("want event category failure, got %v", err)
		}
	})
	t.Run("new category not in baseline is ignored", func(t *testing.T) {
		cur := BuildEval([]ProgramScore{
			{Name: "a", Category: "thread", TP: 3, FP: 1},
			{Name: "z", Category: "array", TP: 1, FP: 1},
		})
		// Total drops below baseline, so this still fails, but only for the
		// total — the unknown category itself is not compared.
		err := cur.CheckAgainstBaseline(base)
		if err == nil || strings.Contains(err.Error(), "category array") {
			t.Errorf("unknown category must not be compared: %v", err)
		}
	})
}
