package truth

import (
	"fmt"

	"o2"
	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/report"
)

// The metamorphic layer: race-preserving source transformations. Each
// transform rewrites a parsed minilang file in a way that cannot change
// which races the program has at run time — renaming identifiers,
// reordering independent declarations, wrapping bodies in redundant
// blocks, permuting the registration order of independent origins. The
// analysis must therefore produce the *same canonical race-key set* for
// the transformed program, once positions are mapped back to the original
// source through the printer's line map. Any difference is a bug: either
// an unwanted sensitivity (output depends on declaration order or naming)
// or a latent nondeterminism.

// Transform is a named race-preserving rewrite of a parsed file.
type Transform struct {
	Name  string
	Apply func(f *lang.File, entries ir.EntryConfig)
}

// Transforms are the source-level metamorphic transformations, applied
// independently (not composed) by the suite. "pretty-print" is the
// identity transform: it checks that formatting alone (the substrate of
// all others) preserves the report.
func Transforms() []Transform {
	return []Transform{
		{Name: "pretty-print", Apply: func(f *lang.File, entries ir.EntryConfig) {}},
		{Name: "rename-idents", Apply: renameIdents},
		{Name: "reorder-decls", Apply: reorderDecls},
		{Name: "wrap-blocks", Apply: wrapBlocks},
		{Name: "permute-dispatch", Apply: permuteDispatch},
		{Name: "permute-select-arms", Apply: permuteSelectArms},
		{Name: "rename-channel-vars", Apply: renameChannelVars},
	}
}

// TransformedKeys applies one transform to the program's source, analyzes
// the canonical text under the program's own configuration, and returns
// the race keys with positions mapped back to the original source lines.
// The result is directly comparable (report.SameKeys) with the keys of
// the untransformed program.
func TransformedKeys(p *Program, tr Transform) ([]report.RaceKey, error) {
	f, err := lang.Parse(p.File, p.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	tr.Apply(f, ir.DefaultEntryConfig())
	text, lines := lang.Format(f)
	res, err := o2AnalyzeText(p, text)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", p.Name, tr.Name, err)
	}
	keys := report.Canonical(res.Report, res.Analysis.Origins)
	for i := range keys {
		a, okA := lines[keys[i].ALine]
		b, okB := lines[keys[i].BLine]
		if !okA || !okB {
			return nil, fmt.Errorf("%s/%s: race position %s has no original line",
				p.Name, tr.Name, keys[i].Ident())
		}
		keys[i].ALine, keys[i].BLine = a, b
	}
	return report.Normalize(keys), nil
}

// ---- rename-idents ----

// renameIdents renames every local variable, parameter and free function
// to a "_mr"-suffixed form. Class, field and method names are untouched:
// fields and statics name race locations, and method names carry entry
// semantics (run/start/handleEvent/...), so renaming them would change
// what is being compared rather than exercise name-independence.
func renameIdents(f *lang.File, entries ir.EntryConfig) {
	funcs := map[string]string{}
	for _, fd := range f.Funcs {
		if fd.Name != "main" {
			funcs[fd.Name] = fd.Name + "_mr"
		}
	}
	rename := func(fd *lang.FuncDecl) {
		locals := map[string]string{}
		for i, p := range fd.Params {
			locals[p] = p + "_mr"
			fd.Params[i] = p + "_mr"
		}
		// First pass: every assigned-to variable is a local.
		collectAssigned(fd.Body, func(name string) {
			locals[name] = name + "_mr"
		})
		rewriteLocals(fd, locals, funcs)
	}
	for _, fd := range f.Funcs {
		if r, ok := funcs[fd.Name]; ok {
			fd.Name = r
		}
		rename(fd)
	}
	for _, cd := range f.Classes {
		for _, m := range cd.Methods {
			rename(m)
		}
	}
}

// collectAssigned calls fn with the name of every variable assigned to
// in body, recursing into every nested block.
func collectAssigned(body []lang.Stmt, fn func(string)) {
	for _, s := range body {
		switch st := s.(type) {
		case *lang.AssignStmt:
			if v, ok := st.Lhs.(lang.VarRef); ok {
				fn(v.Name)
			}
		case *lang.SyncStmt:
			collectAssigned(st.Body, fn)
		case *lang.IfStmt:
			collectAssigned(st.Then, fn)
			collectAssigned(st.Else, fn)
		case *lang.WhileStmt:
			collectAssigned(st.Body, fn)
		case *lang.SelectStmt:
			for i := range st.Arms {
				collectAssigned(st.Arms[i].Body, fn)
			}
			collectAssigned(st.Default, fn)
		}
	}
}

// rewriteLocals substitutes local variable names per locals (and free
// function names per funcs) throughout fd's body, including select arm
// channels and operands.
func rewriteLocals(fd *lang.FuncDecl, locals, funcs map[string]string) {
	mapName := func(n string) string {
		if r, ok := locals[n]; ok {
			return r
		}
		return n
	}
	var rw func(body []lang.Stmt)
	rwExpr := func(e lang.Expr) lang.Expr {
		switch x := e.(type) {
		case lang.VarRef:
			return lang.VarRef{Name: mapName(x.Name)}
		case lang.FieldRef:
			return lang.FieldRef{Base: mapName(x.Base), Field: x.Field}
		case lang.IndexRef:
			return lang.IndexRef{Base: mapName(x.Base)}
		case lang.FuncAddrExpr:
			if r, ok := funcs[x.Name]; ok {
				return lang.FuncAddrExpr{Name: r}
			}
			return x
		default:
			return e
		}
	}
	rwCall := func(c *lang.CallExpr) {
		if c.Recv != "" && c.Recv != "this" {
			c.Recv = mapName(c.Recv)
		} else if c.Recv == "" {
			if r, ok := funcs[c.Method]; ok {
				c.Method = r
			}
		}
		for i := range c.Args {
			c.Args[i] = rwExpr(c.Args[i])
		}
	}
	rw = func(body []lang.Stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case *lang.AssignStmt:
				switch l := st.Lhs.(type) {
				case lang.VarRef:
					st.Lhs = lang.VarRef{Name: mapName(l.Name)}
				case lang.FieldRef:
					st.Lhs = lang.FieldRef{Base: mapName(l.Base), Field: l.Field}
				case lang.IndexRef:
					st.Lhs = lang.IndexRef{Base: mapName(l.Base)}
				}
				switch r := st.Rhs.(type) {
				case *lang.CallExpr:
					rwCall(r)
				case *lang.NewExpr:
					for i := range r.Args {
						r.Args[i] = rwExpr(r.Args[i])
					}
				default:
					st.Rhs = rwExpr(st.Rhs)
				}
			case *lang.CallStmt:
				rwCall(st.Call)
			case *lang.SyncStmt:
				st.Obj = mapName(st.Obj)
				rw(st.Body)
			case *lang.IfStmt:
				rw(st.Then)
				rw(st.Else)
			case *lang.WhileStmt:
				rw(st.Body)
			case *lang.SelectStmt:
				for i := range st.Arms {
					st.Arms[i].Ch = mapName(st.Arms[i].Ch)
					if st.Arms[i].Val != nil {
						st.Arms[i].Val = rwExpr(st.Arms[i].Val)
					}
					rw(st.Arms[i].Body)
				}
				rw(st.Default)
			case *lang.ReturnStmt:
				if st.Val != nil {
					st.Val = rwExpr(st.Val)
				}
			}
		}
	}
	rw(fd.Body)
}

// ---- reorder-decls ----

// reorderDecls reverses the order of class declarations, free functions
// and the methods within each class. Declaration order has no run-time
// meaning; it does, however, shift every allocation-site, call-site and
// object ID the analysis assigns, so this transform catches any report
// detail that leaks internal numbering.
func reorderDecls(f *lang.File, entries ir.EntryConfig) {
	reverse(f.Classes)
	reverse(f.Funcs)
	for _, cd := range f.Classes {
		reverse(cd.Methods)
	}
}

func reverse[T any](s []T) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// ---- wrap-blocks ----

// wrapBlocks wraps every body that contains no return statement in a
// redundant if-block. The lowering keeps both branches of an if, so the
// wrapped body is analyzed exactly as before — but every statement moves
// to a different printed line and nesting depth.
func wrapBlocks(f *lang.File, entries ir.EntryConfig) {
	wrap := func(fd *lang.FuncDecl) {
		if len(fd.Body) == 0 || hasReturn(fd.Body) {
			return
		}
		fd.Body = []lang.Stmt{lang.NewIfStmt(lang.Line(fd.Body[0]), fd.Body, nil)}
	}
	for _, fd := range f.Funcs {
		wrap(fd)
	}
	for _, cd := range f.Classes {
		for _, m := range cd.Methods {
			wrap(m)
		}
	}
}

func hasReturn(body []lang.Stmt) bool {
	for _, s := range body {
		switch st := s.(type) {
		case *lang.ReturnStmt:
			return true
		case *lang.SyncStmt:
			if hasReturn(st.Body) {
				return true
			}
		case *lang.IfStmt:
			if hasReturn(st.Then) || hasReturn(st.Else) {
				return true
			}
		case *lang.WhileStmt:
			if hasReturn(st.Body) {
				return true
			}
		case *lang.SelectStmt:
			for i := range st.Arms {
				if hasReturn(st.Arms[i].Body) {
					return true
				}
			}
			if hasReturn(st.Default) {
				return true
			}
		}
	}
	return false
}

// ---- permute-select-arms ----

// permuteSelectArms reverses the arm order of every select statement.
// Select dispatch is nondeterministic: which ready arm fires does not
// depend on the order the arms are written, so the canonical race set
// must be invariant under any arm permutation (the lowering guarantees
// this by emitting all guard operations before any arm body).
func permuteSelectArms(f *lang.File, entries ir.EntryConfig) {
	eachDecl(f, func(fd *lang.FuncDecl) { permuteSelectsIn(fd.Body) })
}

func permuteSelectsIn(body []lang.Stmt) {
	for _, s := range body {
		switch st := s.(type) {
		case *lang.SyncStmt:
			permuteSelectsIn(st.Body)
		case *lang.IfStmt:
			permuteSelectsIn(st.Then)
			permuteSelectsIn(st.Else)
		case *lang.WhileStmt:
			permuteSelectsIn(st.Body)
		case *lang.SelectStmt:
			reverse(st.Arms)
			for i := range st.Arms {
				permuteSelectsIn(st.Arms[i].Body)
			}
			permuteSelectsIn(st.Default)
		}
	}
}

// ---- rename-channel-vars ----

// renameChannelVars renames exactly the variables bound by a chan(...)
// builtin to a "_ch"-suffixed form, touching every reference: send/recv
// /close arguments, select arm guards, constructor arguments and field
// stores. Channel identity in the analysis is the abstract object, not
// the variable name, so the report must not move.
func renameChannelVars(f *lang.File, entries ir.EntryConfig) {
	eachDecl(f, func(fd *lang.FuncDecl) {
		locals := map[string]string{}
		var scan func(body []lang.Stmt)
		scan = func(body []lang.Stmt) {
			for _, s := range body {
				switch st := s.(type) {
				case *lang.AssignStmt:
					if v, ok := st.Lhs.(lang.VarRef); ok {
						if c, ok := st.Rhs.(*lang.CallExpr); ok && c.Recv == "" && c.Method == "chan" {
							locals[v.Name] = v.Name + "_ch"
						}
					}
				case *lang.SyncStmt:
					scan(st.Body)
				case *lang.IfStmt:
					scan(st.Then)
					scan(st.Else)
				case *lang.WhileStmt:
					scan(st.Body)
				case *lang.SelectStmt:
					for i := range st.Arms {
						scan(st.Arms[i].Body)
					}
					scan(st.Default)
				}
			}
		}
		scan(fd.Body)
		if len(locals) > 0 {
			rewriteLocals(fd, locals, nil)
		}
	})
}

// eachDecl visits every function and method declaration in the file.
func eachDecl(f *lang.File, fn func(*lang.FuncDecl)) {
	for _, fd := range f.Funcs {
		fn(fd)
	}
	for _, cd := range f.Classes {
		for _, m := range cd.Methods {
			fn(m)
		}
	}
}

// ---- permute-dispatch ----

// permuteDispatch reverses maximal runs of consecutive, independent
// origin-dispatch statements in main: thread starts, event-handler
// dispatches, pthread_create and event_register calls. Adjacent dispatches
// with no intervening statements are unordered with respect to every
// access in the program, so registration order must not show in the
// report.
func permuteDispatch(f *lang.File, entries ir.EntryConfig) {
	var main *lang.FuncDecl
	for _, fd := range f.Funcs {
		if fd.Name == "main" {
			main = fd
		}
	}
	if main == nil {
		return
	}
	body := main.Body
	i := 0
	for i < len(body) {
		if !dispatchStmt(body[i], entries) {
			i++
			continue
		}
		j := i
		for j < len(body) && dispatchStmt(body[j], entries) {
			j++
		}
		if j-i >= 2 && runIndependent(body[i:j]) {
			reverse(body[i:j])
		}
		i = j
	}
}

// dispatchStmt reports whether s only dispatches an origin: a start or
// event-entry method call, or a pthread_create/event_register builtin
// (possibly assigning its handle to a fresh variable).
func dispatchStmt(s lang.Stmt, entries ir.EntryConfig) bool {
	var call *lang.CallExpr
	switch st := s.(type) {
	case *lang.CallStmt:
		call = st.Call
	case *lang.AssignStmt:
		c, ok := st.Rhs.(*lang.CallExpr)
		if !ok {
			return false
		}
		if _, ok := st.Lhs.(lang.VarRef); !ok {
			return false
		}
		call = c
	default:
		return false
	}
	if call.Recv != "" {
		return entries.IsStart(call.Method) || entries.IsEventEntry(call.Method)
	}
	return call.Method == "pthread_create" || call.Method == "event_register"
}

// runIndependent reports whether no statement in the run reads a variable
// another statement in the run writes (handle variables must not feed a
// later dispatch in the same run).
func runIndependent(run []lang.Stmt) bool {
	writes := map[string]bool{}
	for _, s := range run {
		if st, ok := s.(*lang.AssignStmt); ok {
			v := st.Lhs.(lang.VarRef)
			if writes[v.Name] {
				return false // same handle written twice
			}
			writes[v.Name] = true
		}
	}
	for _, s := range run {
		var call *lang.CallExpr
		switch st := s.(type) {
		case *lang.CallStmt:
			call = st.Call
		case *lang.AssignStmt:
			call = st.Rhs.(*lang.CallExpr)
		}
		if call.Recv != "" && writes[call.Recv] {
			return false
		}
		for _, a := range call.Args {
			if v, ok := a.(lang.VarRef); ok && writes[v.Name] {
				return false
			}
		}
	}
	return true
}

// FormattedSource applies a transform and returns the canonical text it
// produces (for vacuity checks and debugging).
func FormattedSource(p *Program, tr Transform) (string, error) {
	f, err := lang.Parse(p.File, p.Source)
	if err != nil {
		return "", err
	}
	tr.Apply(f, ir.DefaultEntryConfig())
	text, _ := lang.Format(f)
	return text, nil
}

// o2AnalyzeText analyzes replacement source text under the program's
// configuration (same file name, so canonical keys stay comparable).
func o2AnalyzeText(p *Program, text string) (*o2.Result, error) {
	q := *p
	q.Source = text
	return q.Analyze()
}
