package truth

import (
	"fmt"
	"testing"

	"o2"
	"o2/internal/report"
	"o2/internal/workload"
)

func keySet(keys []report.RaceKey) string {
	s := ""
	for _, k := range keys {
		s += k.Ident() + "\n"
	}
	return s
}

// TestMetamorphicCorpus: every source transform leaves every corpus
// program's canonical race-key set identical (after mapping positions
// back to the original lines).
func TestMetamorphicCorpus(t *testing.T) {
	corpus, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	transforms := Transforms()
	for i := range corpus {
		p := &corpus[i]
		base, err := p.ActualKeys()
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range transforms {
			tr := tr
			t.Run(p.Name+"/"+tr.Name, func(t *testing.T) {
				got, err := TransformedKeys(p, tr)
				if err != nil {
					t.Fatal(err)
				}
				if !report.SameKeys(base, got) {
					t.Errorf("race set changed under %s:\n--- original ---\n%s--- transformed ---\n%s",
						tr.Name, keySet(base), keySet(got))
				}
			})
		}
	}
}

// TestTransformsNotVacuous: the rewrites must actually change the
// programs they claim to shake, or the suite proves nothing. Checked on
// representative corpus programs via the canonical text.
func TestTransformsNotVacuous(t *testing.T) {
	corpus, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Program{}
	for i := range corpus {
		byName[corpus[i].Name] = &corpus[i]
	}
	changed := func(t *testing.T, p *Program, tr Transform) bool {
		t.Helper()
		a, err := FormattedSource(p, Transforms()[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := FormattedSource(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		return a != b
	}
	cases := []struct{ program, transform string }{
		{"thread_counter", "rename-idents"},
		{"thread_counter", "reorder-decls"},
		{"thread_counter", "wrap-blocks"},
		{"thread_three", "permute-dispatch"},
		{"event_two_handlers", "permute-dispatch"},
		{"thread_pthread", "permute-dispatch"},
	}
	for _, c := range cases {
		p, ok := byName[c.program]
		if !ok {
			t.Fatalf("no corpus program %s", c.program)
		}
		var tr Transform
		for _, cand := range Transforms() {
			if cand.Name == c.transform {
				tr = cand
			}
		}
		if tr.Apply == nil {
			t.Fatalf("no transform %s", c.transform)
		}
		if !changed(t, p, tr) {
			t.Errorf("%s leaves %s textually unchanged — vacuous", c.transform, c.program)
		}
	}
}

// TestMetamorphicPresets: IR transforms leave the canonical race-key set
// of generated workload presets bit-identical. Three presets spanning the
// benchmark families (Dacapo, distributed, C-style).
func TestMetamorphicPresets(t *testing.T) {
	for _, name := range []string{"avrora", "zookeeper", "memcached"} {
		preset, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("no preset %s", name)
		}
		cfg := o2.DefaultConfig()
		cfg.Workers = 1
		base, err := PresetKeys(preset, IRTransforms()[0], cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(base) == 0 {
			t.Errorf("%s: no races — preset invariance check is vacuous", name)
		}
		for _, tr := range IRTransforms()[1:] {
			tr := tr
			t.Run(name+"/"+tr.Name, func(t *testing.T) {
				got, err := PresetKeys(preset, tr, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !report.SameKeys(base, got) {
					t.Errorf("race set changed under %s: %d keys vs %d\n--- base ---\n%s--- transformed ---\n%s",
						tr.Name, len(base), len(got), keySet(base), keySet(got))
				}
			})
		}
	}
}

// TestPermuteSpawnsNotVacuousOnPresets: the spawn permutation must find
// at least one run to reverse in at least one tested preset.
func TestPermuteSpawnsNotVacuousOnPresets(t *testing.T) {
	found := false
	for _, name := range []string{"avrora", "zookeeper", "memcached"} {
		preset, _ := workload.ByName(name)
		a := workload.BuildRaw(preset)
		b := workload.BuildRaw(preset)
		permuteSpawnBlocksIR(b)
		sa := fmt.Sprint(a.Main.Body)
		sb := fmt.Sprint(b.Main.Body)
		if sa != sb {
			found = true
		}
	}
	if !found {
		t.Error("permute-spawns changed no preset main body — vacuous")
	}
}
