package truth

import (
	"errors"
	"testing"
	"time"

	"o2"
	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/report"
)

// fuzzCfg bounds fuzz-driven analyses: mutated sources can nest origins
// arbitrarily deep, and an unbudgeted pointer analysis would turn that
// into a hang rather than a finding.
func fuzzCfg() o2.Config {
	cfg := o2.DefaultConfig()
	cfg.Workers = 1
	cfg.StepBudget = 500_000
	cfg.TimeBudget = 2 * time.Second
	return cfg
}

// budgetErr reports errors that mean "input too expensive", not "bug".
func budgetErr(err error) bool {
	return errors.Is(err, o2.ErrBudget) || errors.Is(err, o2.ErrCanceled)
}

// FuzzMetamorphic feeds arbitrary minilang sources through the
// metamorphic transforms: for any program that parses and analyzes within
// budget, every transform must preserve the canonical race-key set. The
// fuzzer hunts for programs where renaming, reordering, wrapping or
// dispatch permutation changes the report — each such input is an
// order-sensitivity bug in the pipeline.
func FuzzMetamorphic(f *testing.F) {
	corpus, err := Corpus()
	if err != nil {
		f.Fatal(err)
	}
	seeds := map[string]bool{
		"thread_counter": true, "event_two_handlers": true,
		"figure2_origins": true, "array_basic": true,
		"join_partial": true, "fp_flag_protocol": true,
		"gosync_select_arm_race": true, "gosync_chan_race_before_recv": true,
		"gosync_wg_fanin": true,
	}
	for i := range corpus {
		if p := &corpus[i]; seeds[p.Name] {
			for w := range Transforms() {
				f.Add(p.Source, byte(w))
			}
		}
	}
	f.Fuzz(func(t *testing.T, src string, which byte) {
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		file, err := lang.Parse("fuzz.mini", src)
		if err != nil {
			t.Skip("does not parse")
		}
		cfg := fuzzCfg()
		res, err := o2.AnalyzeSource("fuzz.mini", src, cfg)
		if err != nil {
			t.Skip("base program does not analyze") // semantic or budget error
		}
		base := report.Canonical(res.Report, res.Analysis.Origins)

		trs := Transforms()
		tr := trs[int(which)%len(trs)]
		tr.Apply(file, ir.DefaultEntryConfig())
		text, lines := lang.Format(file)
		tres, err := o2.AnalyzeSource("fuzz.mini", text, cfg)
		if err != nil {
			if budgetErr(err) {
				t.Skip("transformed program over budget")
			}
			// The base program analyzed fine; the transform (or the printer
			// underneath it) broke it. That is a real bug.
			t.Fatalf("transform %s broke the program: %v\n--- transformed ---\n%s", tr.Name, err, text)
		}
		got := report.Canonical(tres.Report, tres.Analysis.Origins)
		for i := range got {
			a, okA := lines[got[i].ALine]
			b, okB := lines[got[i].BLine]
			if !okA || !okB {
				t.Fatalf("transform %s: race %s has no original line", tr.Name, got[i].Ident())
			}
			got[i].ALine, got[i].BLine = a, b
		}
		got = report.Normalize(got)
		if !report.SameKeys(base, got) {
			t.Errorf("race set changed under %s:\n--- original keys ---\n%s--- transformed keys ---\n%s--- transformed source ---\n%s",
				tr.Name, keySet(base), keySet(got), text)
		}
	})
}
