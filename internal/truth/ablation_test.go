package truth

import (
	"fmt"
	"os"
	"testing"

	"o2"
	"o2/internal/report"
)

// Ablation golden tests: each analysis layer earns its place by being
// switched off. Disabling the layer that suppresses a false-positive
// category must make exactly the pinned spurious races reappear on the
// corpus programs of that category — if the ablated run reports the same
// set as the default run, the corpus never exercised the layer and the
// precision score for that category is vacuous.

// ablationCase pins the keys that appear under an ablated configuration
// but not under the default one.
type ablationCase struct {
	program string
	mutate  func(cfg *o2.Config)
	// reappear are the spurious race idents (report.RaceKey.Ident) the
	// ablated run must add relative to the default run.
	reappear []string
}

func ablations() []ablationCase {
	noLockset := func(cfg *o2.Config) { cfg.Detector.NoLockset = true }
	noHB := func(cfg *o2.Config) { cfg.Detector.NoHB = true }
	noAndroid := func(cfg *o2.Config) { cfg.Android = false }
	insensitive := func(cfg *o2.Config) { cfg.Policy = o2.Insensitive }
	return []ablationCase{
		// lock-protected: the hybrid lockset check is what suppresses these.
		{"lock_sync_both", noLockset, []string{
			"v @ lock_sync_both.mini:10 lock_sync_both.mini:10",
		}},
		{"lock_pthread_mutex", noLockset, []string{
			"v @ lock_pthread_mutex.mini:8 lock_pthread_mutex.mini:8",
		}},
		// join-ordered: the SHB happens-before check is what suppresses these.
		{"join_full", noHB, []string{
			"s @ join_full.mini:4 join_full.mini:6",
			"v @ join_full.mini:7 join_full.mini:15",
		}},
		{"join_two_phase", noHB, []string{
			"s @ join_two_phase.mini:4 join_two_phase.mini:6",
			"s @ join_two_phase.mini:12 join_two_phase.mini:14",
			"v @ join_two_phase.mini:7 join_two_phase.mini:15",
			"v @ join_two_phase.mini:7 join_two_phase.mini:25",
		}},
		{"join_partial", noHB, []string{
			"s @ join_partial.mini:7 join_partial.mini:9",
			"s @ join_partial.mini:15 join_partial.mini:17",
			"v @ join_partial.mini:10 join_partial.mini:28",
		}},
		// go-sync: the channel and WaitGroup HB edges are what suppress the
		// payload races; NoHB also drops spawn edges, so the constructor-vs-
		// run field handoffs reappear alongside them.
		{"gosync_chan_unbuffered_hb", noHB, []string{
			"c @ gosync_chan_unbuffered_hb.mini:5 gosync_chan_unbuffered_hb.mini:9",
			"d @ gosync_chan_unbuffered_hb.mini:5 gosync_chan_unbuffered_hb.mini:7",
			"v @ gosync_chan_unbuffered_hb.mini:8 gosync_chan_unbuffered_hb.mini:19",
		}},
		{"gosync_chan_close_hb", noHB, []string{
			"c @ gosync_chan_close_hb.mini:5 gosync_chan_close_hb.mini:9",
			"d @ gosync_chan_close_hb.mini:5 gosync_chan_close_hb.mini:7",
			"v @ gosync_chan_close_hb.mini:8 gosync_chan_close_hb.mini:19",
		}},
		{"gosync_wg_fanin", noHB, []string{
			"a @ gosync_wg_fanin.mini:12 gosync_wg_fanin.mini:38",
			"b @ gosync_wg_fanin.mini:23 gosync_wg_fanin.mini:39",
			"r @ gosync_wg_fanin.mini:9 gosync_wg_fanin.mini:11",
			"r @ gosync_wg_fanin.mini:20 gosync_wg_fanin.mini:22",
			"w @ gosync_wg_fanin.mini:9 gosync_wg_fanin.mini:13",
			"w @ gosync_wg_fanin.mini:20 gosync_wg_fanin.mini:24",
		}},
		{"gosync_select_ordered", noHB, []string{
			"a @ gosync_select_ordered.mini:11 gosync_select_ordered.mini:37",
			"b @ gosync_select_ordered.mini:22 gosync_select_ordered.mini:40",
			"c @ gosync_select_ordered.mini:8 gosync_select_ordered.mini:12",
			"c @ gosync_select_ordered.mini:19 gosync_select_ordered.mini:23",
			"g @ gosync_select_ordered.mini:8 gosync_select_ordered.mini:10",
			"g @ gosync_select_ordered.mini:19 gosync_select_ordered.mini:21",
		}},
		{"gosync_chan_ping_pong", noHB, []string{
			"c @ gosync_chan_ping_pong.mini:6 gosync_chan_ping_pong.mini:8",
			"d @ gosync_chan_ping_pong.mini:6 gosync_chan_ping_pong.mini:10",
			"r @ gosync_chan_ping_pong.mini:6 gosync_chan_ping_pong.mini:12",
			"v @ gosync_chan_ping_pong.mini:11 gosync_chan_ping_pong.mini:22",
			"v @ gosync_chan_ping_pong.mini:11 gosync_chan_ping_pong.mini:25",
		}},
		// event-serialized: the Android dispatch lock is what suppresses these.
		{"android_two_handlers", noAndroid, []string{
			"q @ android_two_handlers.mini:7 android_two_handlers.mini:15",
		}},
		{"android_static", noAndroid, []string{
			"Log.count @ android_static.mini:4 android_static.mini:9",
		}},
		// origin-local: origin-sensitive contexts are what separate these.
		{"local_per_origin", insensitive, []string{
			"p @ local_per_origin.mini:5 local_per_origin.mini:5",
			"p @ local_per_origin.mini:5 local_per_origin.mini:6",
		}},
		{"local_deep_chain", insensitive, []string{
			"p @ local_deep_chain.mini:5 local_deep_chain.mini:5",
		}},
		{"local_singleton", insensitive, []string{
			"p @ local_singleton.mini:14 local_singleton.mini:14",
		}},
	}
}

// ablatedKeys analyzes a corpus program under its configuration with one
// mutation applied.
func ablatedKeys(p *Program, mutate func(*o2.Config)) ([]report.RaceKey, error) {
	cfg := p.Config()
	mutate(&cfg)
	res, err := o2.AnalyzeSource(p.File, p.Source, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	return report.Canonical(res.Report, res.Analysis.Origins), nil
}

func corpusByName(t *testing.T) map[string]*Program {
	t.Helper()
	corpus, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Program{}
	for i := range corpus {
		byName[corpus[i].Name] = &corpus[i]
	}
	return byName
}

// TestAblationsReintroduceFPs: for each pinned case, the ablated run
// reports every default-run race plus exactly the pinned spurious ones.
func TestAblationsReintroduceFPs(t *testing.T) {
	byName := corpusByName(t)
	for _, c := range ablations() {
		c := c
		t.Run(c.program, func(t *testing.T) {
			p, ok := byName[c.program]
			if !ok {
				t.Fatalf("no corpus program %s", c.program)
			}
			base, err := p.ActualKeys()
			if err != nil {
				t.Fatal(err)
			}
			got, err := ablatedKeys(p, c.mutate)
			if err != nil {
				t.Fatal(err)
			}
			baseSet := map[string]bool{}
			for _, k := range base {
				baseSet[k.Ident()] = true
			}
			extra := map[string]bool{}
			for _, k := range got {
				if !baseSet[k.Ident()] {
					extra[k.Ident()] = true
				}
			}
			for _, k := range base {
				found := false
				for _, g := range got {
					if g.Ident() == k.Ident() {
						found = true
					}
				}
				if !found {
					t.Errorf("ablation dropped default-run race %s", k.Ident())
				}
			}
			want := map[string]bool{}
			for _, id := range c.reappear {
				want[id] = true
				if !extra[id] {
					t.Errorf("expected spurious race %s to reappear; extras: %v", id, keys(extra))
				}
			}
			for id := range extra {
				if !want[id] {
					t.Errorf("unexpected extra race %s under ablation", id)
				}
			}
		})
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestOSAFilterNeutralOnCorpus: OSAFilter is a performance optimization —
// restricting pair checking to origin-shared locations must not change any
// corpus report.
func TestOSAFilterNeutralOnCorpus(t *testing.T) {
	corpus, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for i := range corpus {
		p := &corpus[i]
		base, err := p.ActualKeys()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ablatedKeys(p, func(cfg *o2.Config) { cfg.Detector.OSAFilter = false })
		if err != nil {
			t.Fatal(err)
		}
		if !report.SameKeys(base, got) {
			t.Errorf("%s: OSAFilter=false changed the report:\n--- on ---\n%s--- off ---\n%s",
				p.Name, keySet(base), keySet(got))
		}
	}
}

// TestDumpAblations (TRUTH_DUMP=1) prints, for every ablation case, the
// keys the ablated run adds over the default run — the source of the
// pinned goldens above.
func TestDumpAblations(t *testing.T) {
	if os.Getenv("TRUTH_DUMP") == "" {
		t.Skip("set TRUTH_DUMP=1 to dump")
	}
	byName := corpusByName(t)
	for _, c := range ablations() {
		p := byName[c.program]
		base, err := p.ActualKeys()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ablatedKeys(p, c.mutate)
		if err != nil {
			t.Fatal(err)
		}
		baseSet := map[string]bool{}
		for _, k := range base {
			baseSet[k.Ident()] = true
		}
		fmt.Printf("== %s\n", c.program)
		for _, k := range got {
			if !baseSet[k.Ident()] {
				fmt.Printf("   + %s\n", k.Ident())
			}
		}
	}
}
