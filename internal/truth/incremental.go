package truth

import (
	"context"
	"fmt"

	"o2"
	"o2/internal/report"
	"o2/internal/summary"
)

// The incremental arm of the oracle: the corpus and the metamorphic
// transforms double as the equivalence suite for per-unit summary
// reuse. The contract under test is absolute — for any program and any
// edit, analyzing warm through the summary store must produce the
// byte-identical canonical race-key set a from-scratch analysis does,
// and the corpus labels must score identically (recall 1.0 included).

// IncrementalKeys analyzes the program through the incremental path
// against store, returning the canonical race keys and the reuse stats.
func (p *Program) IncrementalKeys(store *summary.Store) ([]report.RaceKey, *o2.IncStats, error) {
	return incrementalKeysText(p, p.Source, store)
}

// incrementalKeysText analyzes replacement source text for p through
// the incremental path (same file name, so keys stay comparable).
func incrementalKeysText(p *Program, text string, store *summary.Store) ([]report.RaceKey, *o2.IncStats, error) {
	res, err := o2.AnalyzeSourceIncremental(context.Background(), p.File, text, p.Config(), store)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	return report.Canonical(res.Report, res.Analysis.Origins), res.Inc, nil
}

// EvaluateIncremental scores the corpus through the incremental path
// under the same labels Evaluate uses. Each program is analyzed cold
// into a fresh per-unit store and then warm again from it; the *warm*
// run is scored, so the gate measures the replayed-summary report, not
// the freshly-lowered one. Divergence between the two runs, or a warm
// rerun of unchanged source that recomputes any unit, is an error
// rather than a score.
func EvaluateIncremental() (*EvalReport, error) {
	corpus, err := Corpus()
	if err != nil {
		return nil, err
	}
	var scores []ProgramScore
	for i := range corpus {
		p := &corpus[i]
		store := summary.NewStore(0)
		cold, _, err := p.IncrementalKeys(store)
		if err != nil {
			return nil, err
		}
		warm, st, err := p.IncrementalKeys(store)
		if err != nil {
			return nil, err
		}
		if !report.SameKeys(cold, warm) {
			return nil, fmt.Errorf("%s: warm incremental keys diverge from cold", p.Name)
		}
		if !st.Fallback && st.UnitsRecomputed != 0 {
			return nil, fmt.Errorf("%s: warm rerun of unchanged source recomputed %d/%d units",
				p.Name, st.UnitsRecomputed, st.UnitsTotal)
		}
		scores = append(scores, ScoreProgram(p.Name, p.Category, p.Expected, warm))
	}
	return BuildEval(scores), nil
}
