package truth

import (
	"fmt"
	"os"
	"testing"
)

// TestDumpActualKeys is a corpus-authoring aid, not an assertion: with
// TRUTH_DUMP=1 it prints every program's *actual* canonical race keys in
// .expect syntax so a human can diff them against the intended ground
// truth and spot both analysis surprises and labeling mistakes. It never
// writes files — the labels in the sidecars are hand-verified, not
// regenerated.
func TestDumpActualKeys(t *testing.T) {
	if os.Getenv("TRUTH_DUMP") == "" {
		t.Skip("set TRUTH_DUMP=1 to dump actual corpus race keys")
	}
	corpus, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for i := range corpus {
		p := &corpus[i]
		keys, err := p.ActualKeys()
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		fmt.Printf("## %s (%s)\n", p.Name, p.Category)
		for _, k := range keys {
			fmt.Printf("race %s @ %d %d  # %s\n", k.Loc, k.ALine, k.BLine, k.Pair)
		}
		if len(keys) == 0 {
			fmt.Println("# no races reported")
		}
		fmt.Println()
	}
}

// TestDumpEvalJSON prints the current eval report as JSON (the baseline
// format) with TRUTH_DUMP=1, for regenerating baseline.json after a
// deliberate precision change.
func TestDumpEvalJSON(t *testing.T) {
	if os.Getenv("TRUTH_DUMP") == "" {
		t.Skip("set TRUTH_DUMP=1 to dump the eval report")
	}
	rep, err := Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(string(data))
}
