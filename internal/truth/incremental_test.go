package truth

import (
	"context"
	"strings"
	"sync"
	"testing"

	"o2"
	"o2/internal/obs"
	"o2/internal/report"
	"o2/internal/summary"
)

// The incremental-vs-full equivalence harness. The invariant is exact:
// for every corpus program and every metamorphic edit, the canonical
// race-key set of a warm incremental analysis must be byte-identical to
// a from-scratch analysis of the same text. There is no tolerance — a
// single diverging key means a cached summary replayed into the wrong
// program.

func keyIdents(keys []report.RaceKey) string {
	ids := make([]string, len(keys))
	for i, k := range keys {
		ids[i] = k.Ident()
	}
	return strings.Join(ids, "\n")
}

// requireSameKeys asserts byte-identical canonical key sets.
func requireSameKeys(t *testing.T, what string, want, got []report.RaceKey) {
	t.Helper()
	if keyIdents(want) != keyIdents(got) {
		t.Errorf("%s: race sets differ\n--- full ---\n%s\n--- incremental ---\n%s",
			what, keyIdents(want), keyIdents(got))
	}
}

// TestIncrementalEquivalenceCorpus runs every corpus program cold and
// warm through the incremental path and checks both against the full
// pipeline. A warm rerun of unchanged source must reuse every unit.
func TestIncrementalEquivalenceCorpus(t *testing.T) {
	corpus, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for i := range corpus {
		p := &corpus[i]
		t.Run(p.Name, func(t *testing.T) {
			full, err := p.ActualKeys()
			if err != nil {
				t.Fatal(err)
			}
			store := summary.NewStore(0)
			cold, coldSt, err := p.IncrementalKeys(store)
			if err != nil {
				t.Fatal(err)
			}
			requireSameKeys(t, "cold", full, cold)
			if !coldSt.Fallback && coldSt.UnitsRecomputed != coldSt.UnitsTotal {
				t.Errorf("cold run on empty store reused units: %+v", coldSt)
			}
			warm, warmSt, err := p.IncrementalKeys(store)
			if err != nil {
				t.Fatal(err)
			}
			requireSameKeys(t, "warm", full, warm)
			if !warmSt.Fallback {
				if warmSt.UnitsRecomputed != 0 || warmSt.UnitsReused != warmSt.UnitsTotal {
					t.Errorf("warm rerun of unchanged source not fully reused: %+v", warmSt)
				}
				if warmSt.DirtyRatio() != 0 {
					t.Errorf("warm dirty ratio = %v, want 0", warmSt.DirtyRatio())
				}
			}
		})
	}
}

// TestIncrementalEquivalenceMetamorphic is the edit-sequence arm: for
// every program, seed the store cold on the original source, apply each
// metamorphic transform as the "edit", and compare a warm incremental
// analysis of the edited text against a from-scratch analysis of the
// same text. Both paths see identical input, so the keys must be
// byte-identical with no line mapping.
func TestIncrementalEquivalenceMetamorphic(t *testing.T) {
	corpus, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for i := range corpus {
		p := &corpus[i]
		t.Run(p.Name, func(t *testing.T) {
			// Seed from the canonical form: transforms emit canonical
			// text, so units untouched by the edit keep their digests
			// and genuinely replay from the store.
			canonical, err := FormattedSource(p, Transforms()[0])
			if err != nil {
				t.Fatal(err)
			}
			for _, tr := range Transforms() {
				store := summary.NewStore(0)
				if _, _, err := incrementalKeysText(p, canonical, store); err != nil {
					t.Fatalf("%s: cold seed: %v", tr.Name, err)
				}
				text, err := FormattedSource(p, tr)
				if err != nil {
					t.Fatalf("%s: %v", tr.Name, err)
				}
				res, err := o2AnalyzeText(p, text)
				if err != nil {
					t.Fatalf("%s: full analysis of edited text: %v", tr.Name, err)
				}
				full := report.Canonical(res.Report, res.Analysis.Origins)
				inc, st, err := incrementalKeysText(p, text, store)
				if err != nil {
					t.Fatalf("%s: warm incremental analysis: %v", tr.Name, err)
				}
				requireSameKeys(t, tr.Name, full, inc)
				if !st.Fallback && st.UnitsReused+st.UnitsRecomputed != st.UnitsTotal {
					t.Errorf("%s: unit accounting broken: %+v", tr.Name, st)
				}
				// Content digests are position-independent and fragment
				// lines are decl-relative, so edits that only reformat
				// or move declarations must replay every unit.
				if !st.Fallback && (tr.Name == "pretty-print" || tr.Name == "reorder-decls") &&
					st.UnitsReused != st.UnitsTotal {
					t.Errorf("%s: expected full reuse, got %+v", tr.Name, st)
				}
			}
		})
	}
}

// oneUnitEdit appends a redundant self-assignment line inside the body
// of the named method/function by textual insertion on the canonical
// form — a strictly local edit that dirties exactly one body unit.
func oneUnitEdit(t *testing.T, p *Program, marker string) string {
	t.Helper()
	text, err := FormattedSource(p, Transforms()[0]) // canonical pretty-print
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(text, "\n")
	for i, ln := range lines {
		if strings.Contains(ln, marker) {
			indent := ln[:len(ln)-len(strings.TrimLeft(ln, "\t"))]
			edited := append([]string{}, lines[:i+1]...)
			edited = append(edited, indent+"\txq_inc_edit = null;")
			edited = append(edited, lines[i+1:]...)
			return strings.Join(edited, "\n")
		}
	}
	t.Fatalf("marker %q not found in canonical source:\n%s", marker, text)
	return ""
}

// TestIncrementalOneUnitEdit is the acceptance criterion in miniature:
// a warm re-analysis after a one-unit edit must recompute strictly
// fewer units than the cold run, remain key-identical to a from-scratch
// run, and say so through the obs counters.
func TestIncrementalOneUnitEdit(t *testing.T) {
	corpus, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	var p *Program
	for i := range corpus {
		if corpus[i].Name == "thread_counter" {
			p = &corpus[i]
		}
	}
	if p == nil {
		t.Fatal("corpus program thread_counter missing")
	}
	canonical, err := FormattedSource(p, Transforms()[0])
	if err != nil {
		t.Fatal(err)
	}
	store := summary.NewStore(0)
	_, coldSt, err := incrementalKeysText(p, canonical, store)
	if err != nil {
		t.Fatal(err)
	}
	if coldSt.Fallback {
		t.Fatalf("thread_counter unexpectedly fell back: %s", coldSt.FallbackReason)
	}
	if coldSt.UnitsTotal < 3 {
		t.Fatalf("need a multi-unit program, got %d units", coldSt.UnitsTotal)
	}

	edited := oneUnitEdit(t, p, "main {")
	res, err := o2AnalyzeText(p, edited)
	if err != nil {
		t.Fatalf("full analysis of edited text: %v", err)
	}
	full := report.Canonical(res.Report, res.Analysis.Origins)

	reg := obs.New()
	cfg := p.Config()
	cfg.Obs = reg
	ires, err := o2.AnalyzeSourceIncremental(context.Background(), p.File, edited, cfg, store)
	if err != nil {
		t.Fatalf("warm incremental analysis: %v", err)
	}
	warm := report.Canonical(ires.Report, ires.Analysis.Origins)
	requireSameKeys(t, "one-unit edit", full, warm)

	st := ires.Inc
	if st.Fallback {
		t.Fatalf("one-unit edit fell back to full compilation: %s", st.FallbackReason)
	}
	if st.UnitsRecomputed >= coldSt.UnitsTotal {
		t.Errorf("warm edit recomputed %d units, cold total is %d — nothing was reused",
			st.UnitsRecomputed, coldSt.UnitsTotal)
	}
	if st.UnitsReused == 0 {
		t.Errorf("warm edit reused no units: %+v", st)
	}
	if r := st.DirtyRatio(); r <= 0 || r >= 1 {
		t.Errorf("dirty ratio %v, want in (0, 1)", r)
	}

	// The same facts must be visible through the observability layer:
	// RunStats carries the inc.* counters the scheduler and /metrics use.
	if ires.RunStats == nil {
		t.Fatal("RunStats missing despite Obs registry")
	}
	c := ires.RunStats.Counters
	if c["inc.units_total"] != int64(st.UnitsTotal) ||
		c["inc.units_reused"] != int64(st.UnitsReused) ||
		c["inc.units_recomputed"] != int64(st.UnitsRecomputed) {
		t.Errorf("obs counters disagree with IncStats: counters=%v stats=%+v", c, st)
	}
	if c["inc.units_recomputed"] >= c["inc.units_total"] {
		t.Errorf("obs counters: recomputed %d not strictly fewer than total %d",
			c["inc.units_recomputed"], c["inc.units_total"])
	}
}

// TestIncrementalConcurrentStore shares one summary store across
// concurrent warm re-analyses of several programs (run under -race in
// CI): every run must stay key-identical to the full pipeline while the
// store takes interleaved Get/Put traffic.
func TestIncrementalConcurrentStore(t *testing.T) {
	corpus, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{
		"thread_counter": true, "event_two_handlers": true,
		"figure2_origins": true, "mixed_thread_event": true,
	}
	var progs []*Program
	var fulls [][]report.RaceKey
	for i := range corpus {
		if p := &corpus[i]; names[p.Name] {
			full, err := p.ActualKeys()
			if err != nil {
				t.Fatal(err)
			}
			progs = append(progs, p)
			fulls = append(fulls, full)
		}
	}
	store := summary.NewStore(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		for i, p := range progs {
			wg.Add(1)
			go func(p *Program, full []report.RaceKey) {
				defer wg.Done()
				for round := 0; round < 3; round++ {
					got, _, err := p.IncrementalKeys(store)
					if err != nil {
						t.Errorf("%s: %v", p.Name, err)
						return
					}
					if keyIdents(full) != keyIdents(got) {
						t.Errorf("%s: concurrent warm run diverged from full", p.Name)
						return
					}
				}
			}(p, fulls[i])
		}
	}
	wg.Wait()
	if st := store.Stats(); st.Hits == 0 {
		t.Error("concurrent runs never hit the shared store")
	}
}

// TestIncrementalRecall is the hard gate on the incremental path: the
// corpus scored through warm summary replay must hold recall 1.0 and
// baseline precision, exactly like the full pipeline.
func TestIncrementalRecall(t *testing.T) {
	rep, err := EvaluateIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Recall != 1.0 {
		t.Fatalf("incremental path recall %.4f, want 1.0", rep.Total.Recall)
	}
	baseline, err := Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckAgainstBaseline(baseline); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalFallbackSound pins the fallback contract: with no
// store the incremental entry point still answers, marked as fallback,
// with the full pipeline's keys.
func TestIncrementalFallbackSound(t *testing.T) {
	corpus, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	p := &corpus[0]
	full, err := p.ActualKeys()
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := p.IncrementalKeys(nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameKeys(t, "nil store", full, got)
	if !st.Fallback || st.FallbackReason == "" {
		t.Errorf("nil store should report fallback, got %+v", st)
	}
	if st.DirtyRatio() != 1 {
		t.Errorf("fallback dirty ratio = %v, want 1", st.DirtyRatio())
	}
}
