package truth

import (
	"context"
	"strings"

	"o2"
	"o2/internal/ir"
	"o2/internal/report"
	"o2/internal/workload"
)

// IR-level metamorphic transforms, the analogue of the source transforms
// for generated workload programs (built directly as IR, so the source
// layer never sees them). Each rewrite happens on a raw (un-finalized)
// program: Finalize then assigns fresh site/instruction numbering, so the
// transforms deliberately shake every internal ID while leaving run-time
// behavior — and therefore the canonical race-key set — unchanged.

// IRTransform is a named race-preserving rewrite of a raw IR program.
type IRTransform struct {
	Name  string
	Apply func(p *ir.Program)
}

// IRTransforms returns the IR rewrites applied to workload presets.
func IRTransforms() []IRTransform {
	return []IRTransform{
		{Name: "identity", Apply: func(p *ir.Program) {}},
		{Name: "rename-vars", Apply: renameVarsIR},
		{Name: "reorder-funcs", Apply: reorderFuncsIR},
		{Name: "permute-spawns", Apply: permuteSpawnBlocksIR},
	}
}

// PresetKeys builds the preset, applies one IR transform, and returns the
// canonical race keys. Instruction positions are assigned at build time
// and travel with the instructions, so keys from different transforms of
// the same preset are directly comparable.
func PresetKeys(p workload.Preset, tr IRTransform, cfg o2.Config) ([]report.RaceKey, error) {
	prog := workload.BuildRaw(p)
	tr.Apply(prog)
	if err := prog.Finalize(cfg.Entries); err != nil {
		return nil, err
	}
	res, err := o2.Analyze(context.Background(), prog, cfg)
	if err != nil {
		return nil, err
	}
	return report.Canonical(res.Report, res.Analysis.Origins), nil
}

// renameVarsIR renames every local and parameter (except the receiver and
// compiler-generated "$" temporaries) — names must never reach the
// report.
func renameVarsIR(p *ir.Program) {
	for _, f := range p.Funcs {
		for _, v := range f.Locals {
			if v.Name == "this" || strings.HasPrefix(v.Name, "$") {
				continue
			}
			v.Name += "_mr"
		}
	}
}

// reorderFuncsIR reverses the function list. Finalize numbers allocation
// and call sites in Funcs order, so this shifts every site ID, object ID
// and origin ID in the program.
func reorderFuncsIR(p *ir.Program) {
	reverse(p.Funcs)
}

// permuteSpawnBlocksIR reverses maximal runs of adjacent spawn blocks in
// main: an (Alloc, start-Call) instruction pair per origin. Adjacent
// blocks have no intervening accesses, so spawn order cannot affect any
// happens-before relation.
func permuteSpawnBlocksIR(p *ir.Program) {
	if p.Main == nil {
		return
	}
	body := p.Main.Body
	type block struct{ start int } // index of the Alloc; Call is start+1
	isBlock := func(i int) (*ir.Alloc, bool) {
		if i+1 >= len(body) {
			return nil, false
		}
		al, ok := body[i].(*ir.Alloc)
		if !ok || al.Dst == nil || al.InLoop {
			return nil, false
		}
		call, ok := body[i+1].(*ir.Call)
		if !ok || call.Recv != al.Dst || call.Method != "start" || call.Dst != nil {
			return nil, false
		}
		return al, true
	}
	i := 0
	for i < len(body) {
		var run []block
		var allocs []*ir.Alloc
		dsts := map[*ir.Var]bool{}
		j := i
		for {
			al, ok := isBlock(j)
			if !ok {
				break
			}
			dsts[al.Dst] = true
			allocs = append(allocs, al)
			run = append(run, block{start: j})
			j += 2
		}
		independent := true
		for _, al := range allocs {
			for _, a := range al.Args {
				if dsts[a] && a != al.Dst {
					independent = false
				}
			}
		}
		if len(run) >= 2 && independent {
			// Reverse the run block-wise in place.
			perm := make([]ir.Instr, 0, len(run)*2)
			for k := len(run) - 1; k >= 0; k-- {
				perm = append(perm, body[run[k].start], body[run[k].start+1])
			}
			copy(body[i:], perm)
		}
		if j == i {
			j = i + 1
		}
		i = j
	}
}
