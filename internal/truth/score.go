package truth

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"o2/internal/report"
)

// EvalSchemaVersion versions the eval report layout. Bump on any
// incompatible change so downstream consumers (CI, dashboards) can detect
// drift instead of misreading fields.
const EvalSchemaVersion = 1

// Score is a precision/recall aggregate.
type Score struct {
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

func mkScore(tp, fp, fn int) Score {
	s := Score{TP: tp, FP: fp, FN: fn, Precision: 1, Recall: 1}
	if tp+fp > 0 {
		s.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		s.Recall = float64(tp) / float64(tp+fn)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	// Round to a fixed number of decimals so the JSON rendering is stable
	// and diffable regardless of float formatting quirks.
	s.Precision = round4(s.Precision)
	s.Recall = round4(s.Recall)
	s.F1 = round4(s.F1)
	return s
}

func round4(f float64) float64 { return math.Round(f*1e4) / 1e4 }

// ProgramScore is one corpus program's outcome: matched counts plus the
// spurious (reported but not expected) and missing (expected but not
// reported) race identities, for debuggable gate failures.
type ProgramScore struct {
	Name     string   `json:"name"`
	Category string   `json:"category"`
	TP       int      `json:"tp"`
	FP       int      `json:"fp"`
	FN       int      `json:"fn"`
	Spurious []string `json:"spurious,omitempty"`
	Missing  []string `json:"missing,omitempty"`
}

// CategoryScore aggregates all programs of one category.
type CategoryScore struct {
	Category string `json:"category"`
	Programs int    `json:"programs"`
	Score
}

// EvalReport is the versioned, machine-readable precision/recall report
// (the eval analogue of obs.RunStats): per-program outcomes, per-category
// aggregates in Categories order, and the corpus-wide total.
type EvalReport struct {
	Schema     int             `json:"schema"`
	Programs   []ProgramScore  `json:"programs"`
	Categories []CategoryScore `json:"categories"`
	Total      Score           `json:"total"`
}

// ScoreProgram matches an actual canonical key set against the expected
// one. Both sets are matched by key identity (location + position pair);
// the informational origin Pair never participates. Duplicate keys in
// either input collapse (Canonical and Normalize already dedup; stray
// duplicates must not double-count).
func ScoreProgram(name, category string, expected, actual []report.RaceKey) ProgramScore {
	exp := map[string]bool{}
	for _, k := range expected {
		exp[k.Ident()] = true
	}
	act := map[string]bool{}
	for _, k := range actual {
		act[k.Ident()] = true
	}
	ps := ProgramScore{Name: name, Category: category}
	seen := map[string]bool{}
	for _, k := range actual {
		id := k.Ident()
		if seen[id] {
			continue // duplicate report: count once
		}
		seen[id] = true
		if exp[id] {
			ps.TP++
		} else {
			ps.FP++
			ps.Spurious = append(ps.Spurious, id)
		}
	}
	seen = map[string]bool{}
	for _, k := range expected {
		id := k.Ident()
		if seen[id] {
			continue
		}
		seen[id] = true
		if !act[id] {
			ps.FN++
			ps.Missing = append(ps.Missing, id)
		}
	}
	return ps
}

// BuildEval aggregates program scores into the versioned report. Every
// canonical category appears in Categories order — including categories
// with zero programs or zero findings, which report an explicit zeroed
// row instead of silently vanishing (a gate that never sees a category
// cannot notice its corpus slice was dropped); programs keep their
// given order (the corpus is sorted by name).
func BuildEval(programs []ProgramScore) *EvalReport {
	r := &EvalReport{Schema: EvalSchemaVersion, Programs: programs}
	type agg struct{ tp, fp, fn, n int }
	byCat := map[string]*agg{}
	var ttp, tfp, tfn int
	for _, ps := range programs {
		a := byCat[ps.Category]
		if a == nil {
			a = &agg{}
			byCat[ps.Category] = a
		}
		a.tp += ps.TP
		a.fp += ps.FP
		a.fn += ps.FN
		a.n++
		ttp += ps.TP
		tfp += ps.FP
		tfn += ps.FN
	}
	for _, cat := range Categories {
		a := byCat[cat]
		if a == nil {
			a = &agg{}
		}
		r.Categories = append(r.Categories, CategoryScore{
			Category: cat, Programs: a.n, Score: mkScore(a.tp, a.fp, a.fn),
		})
		delete(byCat, cat)
	}
	// Categories outside the canonical list (possible for synthetic scorer
	// inputs) are appended in name order for determinism.
	if len(byCat) > 0 {
		var extra []string
		for cat := range byCat {
			extra = append(extra, cat)
		}
		sort.Strings(extra)
		for _, cat := range extra {
			a := byCat[cat]
			r.Categories = append(r.Categories, CategoryScore{
				Category: cat, Programs: a.n, Score: mkScore(a.tp, a.fp, a.fn),
			})
		}
	}
	r.Total = mkScore(ttp, tfp, tfn)
	return r
}

// Evaluate runs the full pipeline over the embedded corpus and scores
// every program against its labels.
func Evaluate() (*EvalReport, error) {
	corpus, err := Corpus()
	if err != nil {
		return nil, err
	}
	var scores []ProgramScore
	for i := range corpus {
		p := &corpus[i]
		actual, err := p.ActualKeys()
		if err != nil {
			return nil, err
		}
		scores = append(scores, ScoreProgram(p.Name, p.Category, p.Expected, actual))
	}
	return BuildEval(scores), nil
}

// MarshalIndent renders the report as stable, diffable JSON.
func (r *EvalReport) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ParseEval parses a JSON eval report (baseline files).
func ParseEval(data []byte) (*EvalReport, error) {
	var r EvalReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("truth: bad eval report: %w", err)
	}
	if r.Schema != EvalSchemaVersion {
		return nil, fmt.Errorf("truth: eval report schema %d, want %d", r.Schema, EvalSchemaVersion)
	}
	return &r, nil
}

// CheckAgainstBaseline enforces the precision gate. Recall must be
// exactly 1.0 — a missed true race is a soundness regression of the
// reproduction on its own corpus and fails regardless of the baseline.
// Total precision and every per-category precision must be at or above
// the baseline's (tiny epsilon for the rounded floats). Precision
// *improvements* pass; refresh the baseline to lock them in.
func (r *EvalReport) CheckAgainstBaseline(baseline *EvalReport) error {
	const eps = 1e-9
	var problems []string
	if r.Total.Recall < 1.0 {
		var missing []string
		for _, ps := range r.Programs {
			for _, m := range ps.Missing {
				missing = append(missing, ps.Name+": "+m)
			}
		}
		problems = append(problems,
			fmt.Sprintf("recall %.4f < 1.0, missed true races:\n    %s",
				r.Total.Recall, strings.Join(missing, "\n    ")))
	}
	if r.Total.Precision < baseline.Total.Precision-eps {
		problems = append(problems, fmt.Sprintf("total precision %.4f below baseline %.4f",
			r.Total.Precision, baseline.Total.Precision))
	}
	base := map[string]CategoryScore{}
	for _, c := range baseline.Categories {
		if c.Programs == 0 {
			continue // zeroed row: its precision 1.0 is vacuous, not achieved
		}
		base[c.Category] = c
	}
	for _, c := range r.Categories {
		b, ok := base[c.Category]
		if !ok {
			continue
		}
		if c.Precision < b.Precision-eps {
			problems = append(problems, fmt.Sprintf("category %s precision %.4f below baseline %.4f",
				c.Category, c.Precision, b.Precision))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("eval gate failed:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}
