package truth

import (
	"context"
	"strings"
	"testing"

	"o2"
	"o2/internal/report"
	"o2/internal/summary"
)

// insertEdit applies one textual single-unit edit to src: a statement
// inserted after the target-th block-opening line (a null store, a
// self-copy, or a bare return), or a fresh free function appended to
// the file (a declaration-environment change). The edited text may not
// parse — callers skip those inputs; edits need not preserve races,
// because the oracle compares two analyses of the *same* edited text.
func insertEdit(src string, editKind, target byte) (string, bool) {
	stmt := ""
	switch editKind % 4 {
	case 0:
		stmt = "xq_fz = null;"
	case 1:
		stmt = "xq_fz = xq_fz;"
	case 2:
		stmt = "return;"
	case 3:
		return src + "\nfunc zq_fz(p) {\n\tp.zqf = null;\n}\n", true
	}
	lines := strings.Split(src, "\n")
	var sites []int
	for i, ln := range lines {
		if strings.HasSuffix(strings.TrimSpace(ln), "{") {
			sites = append(sites, i)
		}
	}
	if len(sites) == 0 {
		return "", false
	}
	at := sites[int(target)%len(sites)]
	indent := lines[at][:len(lines[at])-len(strings.TrimLeft(lines[at], " \t"))]
	out := make([]string, 0, len(lines)+1)
	out = append(out, lines[:at+1]...)
	out = append(out, indent+"\t"+stmt)
	out = append(out, lines[at+1:]...)
	return strings.Join(out, "\n"), true
}

// FuzzIncremental hunts for divergence between the incremental and full
// pipelines: for any source that parses and analyzes within budget, a
// cold incremental run must produce the same canonical race keys as a
// from-scratch run; and after a random single-unit edit, a *warm*
// incremental run reusing the cold store must match a from-scratch run
// of the edited text. Any mismatch is a summary-reuse soundness bug —
// a cached fragment replayed into a program it no longer belongs to.
func FuzzIncremental(f *testing.F) {
	corpus, err := Corpus()
	if err != nil {
		f.Fatal(err)
	}
	seeds := map[string]bool{
		"thread_counter": true, "event_two_handlers": true,
		"figure2_origins": true, "mixed_thread_event": true,
		"lock_partial": true, "array_basic": true,
		"gosync_chan_ping_pong": true, "gosync_select_ordered": true,
		"gosync_uber_double_done": true,
	}
	for i := range corpus {
		if p := &corpus[i]; seeds[p.Name] {
			for kind := byte(0); kind < 4; kind++ {
				f.Add(p.Source, kind, byte(i))
			}
		}
	}
	f.Fuzz(func(t *testing.T, src string, editKind, target byte) {
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		cfg := fuzzCfg()
		full, err := o2.AnalyzeSource("fuzz.mini", src, cfg)
		if err != nil {
			t.Skip("base program does not analyze")
		}
		base := report.Canonical(full.Report, full.Analysis.Origins)

		store := summary.NewStore(0)
		cold, err := o2.AnalyzeSourceIncremental(context.Background(), "fuzz.mini", src, cfg, store)
		if err != nil {
			if budgetErr(err) {
				t.Skip("incremental run over budget")
			}
			t.Fatalf("full analysis succeeded but incremental failed: %v\n--- source ---\n%s", err, src)
		}
		coldKeys := report.Canonical(cold.Report, cold.Analysis.Origins)
		if !report.SameKeys(base, coldKeys) {
			t.Errorf("cold incremental diverges from full:\n--- full ---\n%s--- incremental ---\n%s--- source ---\n%s",
				keySet(base), keySet(coldKeys), src)
		}

		edited, ok := insertEdit(src, editKind, target)
		if !ok {
			return
		}
		efull, err := o2.AnalyzeSource("fuzz.mini", edited, cfg)
		if err != nil {
			t.Skip("edited program does not analyze") // parse, semantic or budget error
		}
		ebase := report.Canonical(efull.Report, efull.Analysis.Origins)
		warm, err := o2.AnalyzeSourceIncremental(context.Background(), "fuzz.mini", edited, cfg, store)
		if err != nil {
			if budgetErr(err) {
				t.Skip("warm incremental run over budget")
			}
			t.Fatalf("full analysis of edited text succeeded but warm incremental failed: %v\n--- edited ---\n%s", err, edited)
		}
		warmKeys := report.Canonical(warm.Report, warm.Analysis.Origins)
		if !report.SameKeys(ebase, warmKeys) {
			t.Errorf("warm incremental diverges from full after edit (kind %d):\n--- full ---\n%s--- incremental ---\n%s--- edited ---\n%s",
				editKind%4, keySet(ebase), keySet(warmKeys), edited)
		}
		if st := warm.Inc; st != nil && !st.Fallback && st.UnitsReused+st.UnitsRecomputed != st.UnitsTotal {
			t.Errorf("unit accounting broken: %+v", st)
		}
	})
}
