// Package lang implements minilang, the small Java-like input language of
// the reproduction. Minilang provides exactly the constructs the paper's
// analyses reason about: classes with single inheritance and virtual
// dispatch, instance and static fields, arrays, threads (classes with a
// thread entry method, started via start()/join()), event handlers
// (classes with an event entry method, invoked by dispatch), and
// synchronized blocks. Conditions of if/while are parsed but not analyzed;
// both branches are retained, matching the flow-insensitive analyses.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tPunct   // one of ( ) { } [ ] ; , = .
	tKeyword // class extends field static main func new sync if else while return null
)

type token struct {
	kind tokKind
	text string
	line int
}

var keywords = map[string]bool{
	"class": true, "extends": true, "field": true, "static": true,
	"main": true, "func": true, "new": true, "sync": true,
	"if": true, "else": true, "while": true, "return": true, "null": true,
	"super": true, "volatile": true, "origin": true,
	"select": true, "default": true,
}

type lexer struct {
	src  string
	file string
	pos  int
	line int
	toks []token
}

// lex tokenizes src, reporting the first lexical error.
func lex(file, src string) ([]token, error) {
	l := &lexer{src: src, file: file, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= len(l.src) {
				return nil, fmt.Errorf("%s:%d: unterminated block comment", l.file, l.line)
			}
			l.pos += 2
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			text := l.src[start:l.pos]
			kind := tIdent
			if keywords[text] {
				kind = tKeyword
			}
			l.toks = append(l.toks, token{kind, text, l.line})
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.toks = append(l.toks, token{tInt, l.src[start:l.pos], l.line})
		case strings.ContainsRune("(){}[];,=.!<>&|+-*%", rune(c)):
			// Comparison/logic/arithmetic characters only appear inside
			// (ignored) conditions and indices; the parser skips them.
			l.toks = append(l.toks, token{tPunct, string(c), l.line})
			l.pos++
		case c == '"':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '"' {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("%s:%d: unterminated string", l.file, l.line)
			}
			l.pos++
			l.toks = append(l.toks, token{tInt, l.src[start:l.pos], l.line}) // strings act as opaque literals
		default:
			return nil, fmt.Errorf("%s:%d: unexpected character %q", l.file, l.line, c)
		}
	}
	l.toks = append(l.toks, token{tEOF, "", l.line})
	return l.toks, nil
}

func isIdentStart(c rune) bool { return c == '_' || c == '$' || unicode.IsLetter(c) }
func isIdentPart(c rune) bool  { return isIdentStart(c) || unicode.IsDigit(c) }
