package lang_test

import (
	"fmt"
	"strings"
	"testing"

	"o2/internal/cases"
	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/osa"
	"o2/internal/pta"
	"o2/internal/race"
	"o2/internal/shb"
)

// fuzzSeeds are well-formed minilang programs covering the surface the
// examples/ directory exercises: threads, joins, locks, events, loops,
// inheritance, statics, arrays, pthread-style free functions and
// condition variables. The cases package contributes the paper's figure
// and case-study sources on top.
var fuzzSeeds = []string{
	// examples/quickstart: workers, a lock and a joined epilogue.
	`
class Counter { field value; }
class Worker {
  field c;
  Worker(c) { this.c = c; }
  run() {
    x = this.c;
    x.value = this;
  }
}
class SafeWorker {
  field c; field lock;
  SafeWorker(c, l) { this.c = c; this.lock = l; }
  run() {
    x = this.c;
    l = this.lock;
    sync (l) { x.guarded = this; }
  }
}
main {
  c = new Counter();
  l = new Lock();
  w1 = new Worker(c);
  w2 = new Worker(c);
  s1 = new SafeWorker(c, l);
  s2 = new SafeWorker(c, l);
  w1.start();
  w2.start();
  s1.start();
  s2.start();
  w1.join();
  w2.join();
  c.value = null;
}
`,
	// examples/eventapp shape: event handlers next to threads.
	`
class Store { field data; }
class Handler {
  field s;
  Handler(s) { this.s = s; }
  handleEvent() { x = this.s; x.data = this; }
}
class Loader {
  field s;
  Loader(s) { this.s = s; }
  run() { x = this.s; x.data = this; }
}
main {
  s = new Store();
  h = new Handler(s);
  t = new Loader(s);
  h.post();
  t.start();
}
`,
	// examples/cserver shape: pthread-style free functions and statics.
	`
class Stats { static field hits; }
class Data { field buf; }
func worker(arg) {
  arg.buf = arg;
  Stats.hits = arg;
}
main {
  d = new Data();
  fp = &worker;
  h1 = pthread_create(fp, d);
  h2 = pthread_create(fp, d);
  pthread_join(h1);
  r = Stats.hits;
}
`,
	// Loop spawns, arrays, while and if statements, wait/notify.
	`
class Buf { field slots; }
class Producer {
  field b; field cv;
  Producer(b, c) { this.b = b; this.cv = c; }
  run() {
    x = this.b;
    x[0] = this;
    c = this.cv;
    c.notify();
  }
}
class Consumer {
  field b; field cv;
  Consumer(b, c) { this.b = b; this.cv = c; }
  run() {
    c = this.cv;
    c.wait();
    x = this.b;
    r = x[0];
  }
}
main {
  b = new Buf();
  c = new Cond();
  while (i) {
    p = new Producer(b, c);
    p.start();
  }
  q = new Consumer(b, c);
  q.start();
  if (i) { r = b.slots; } else { b.slots = null; }
}
`,
	// Inheritance with super() constructors (the Figure 3 pattern).
	`
class Base {
  field box;
  Base() { this.box = new Box(); }
}
class Sub extends Base {
  Sub() { super(); }
  run() { b = this.box; b.v = this; }
}
class Box { field v; }
main {
  s1 = new Sub();
  s2 = new Sub();
  s1.start();
  s2.start();
}
`,
	// Channels, select and WaitGroup barriers (the go-sync surface).
	`
class WaitGroup { }
class Data { field v; }
class Worker {
  field d; field c; field g;
  Worker(d, c, g) { this.d = d; this.c = c; this.g = g; }
  run() {
    x = this.d;
    x.v = this;
    k = this.c;
    send(k, x);
    w = this.g;
    w.Done();
  }
}
main {
  d = new Data();
  c = chan();
  e = chan(2);
  wg = new WaitGroup();
  wg.Add(1);
  w = new Worker(d, c, wg);
  w.start();
  select {
  recv(c) {
    d.v = null;
  }
  send(e, d) {
    q = d.v;
  }
  default {
    close(e);
  }
  }
  wg.Wait();
  r = recv(c);
}
`,
	// Degenerate but valid inputs.
	"main { }",
	"// only a comment\nmain { x = null; }",
	// Malformed inputs the frontend must reject with a positioned error.
	"class {",
	"main { sync }",
	"main { x = ; }",
	"/* unterminated",
	"\"unterminated",
	"class C } main {}",
	"main { x.y.z = 1; }",
	"func f( { }",
	// Malformed channel/select inputs.
	"main { select }",
	"main { select { foo(c) { } } }",
	"main { select { default { } default { } } }",
	"main { c = chan(x); }",
	"main { c = chan(-1); }",
	"main { send(c); }",
}

// manyLocksSeed builds a program with 72 distinct lock allocation sites:
// canonical lock IDs then run past 64, pushing locksets into the bitset
// spill representation (lockset's hi words beyond the inline lo word).
// The final nested sync pairs the last lock with the first, so one
// lockset spans both the inline word and a spill word. A second thread
// writes the box unguarded to keep the detection stages non-trivial.
func manyLocksSeed() string {
	var sb strings.Builder
	sb.WriteString(`
class Box { field v; }
class Writer {
  field b;
  Writer(b) { this.b = b; }
  run() { x = this.b; x.v = this; }
}
main {
  box = new Box();
  w = new Writer(box);
  w.start();
`)
	for i := 0; i < 72; i++ {
		fmt.Fprintf(&sb, "  l%d = new Lock();\n  sync (l%d) { box.v = l%d; }\n", i, i, i)
	}
	sb.WriteString("  sync (l71) { sync (l0) { box.v = null; } }\n}\n")
	return sb.String()
}

// TestManyLocksSeedSpills pins the premise of the >64-lock fuzz seed:
// the compiled program's locksets really contain canonical lock IDs past
// the inline bitset word (>= 64), so replaying the corpus exercises the
// lockset spill path, and at least one lockset holds two locks spanning
// the inline and spill words (the nested sync).
func TestManyLocksSeedSpills(t *testing.T) {
	entries := ir.DefaultEntryConfig()
	prog, err := lang.Compile("many_locks.mini", manyLocksSeed(), entries)
	if err != nil {
		t.Fatalf("seed does not compile: %v", err)
	}
	a := pta.New(prog, pta.Config{Policy: pta.Policy{Kind: pta.KOrigin, K: 1}, Entries: entries})
	if err := a.Solve(); err != nil {
		t.Fatalf("seed does not solve: %v", err)
	}
	g := shb.Build(a, shb.Config{})
	maxLock := uint32(0)
	spanning := false
	for _, n := range g.Nodes {
		set := g.Locksets.Set(n.Locks)
		lo, hi := false, false
		for _, l := range set {
			if l > maxLock {
				maxLock = l
			}
			if l < 64 {
				lo = true
			} else {
				hi = true
			}
		}
		if lo && hi {
			spanning = true
		}
	}
	if maxLock < 64 {
		t.Fatalf("max canonical lock ID = %d, want >= 64 (spill path untouched)", maxLock)
	}
	if !spanning {
		t.Fatal("no lockset spans the inline and spill words")
	}
}

// FuzzCompile fuzzes the whole minilang frontend (lexer, parser,
// lowering, finalization). Invariants: Compile never panics; a rejected
// input's error names the source position (file, usually file:line); an
// accepted input's program analyzes end to end without crashing under
// small step, node and pair budgets.
func FuzzCompile(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Add(manyLocksSeed())
	f.Add(cases.Figure2)
	f.Add(cases.Figure3)
	for _, c := range cases.Table10 {
		f.Add(c.Source)
	}
	for _, c := range cases.FalsePositives {
		f.Add(c.Source)
	}

	entries := ir.DefaultEntryConfig()
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.Compile("fuzz.mini", src, entries)
		if err != nil {
			// Frontend errors must be positioned; whole-program shape
			// errors (e.g. a missing main) carry the "ir:" prefix instead.
			msg := err.Error()
			if !strings.Contains(msg, "fuzz.mini") && !strings.HasPrefix(msg, "ir:") {
				t.Errorf("error lacks source position: %v", err)
			}
			return
		}
		// Accepted inputs must analyze without crashing. Budgets keep
		// adversarial inputs (deep call meshes, huge loops) bounded; a
		// budget error is a valid outcome, a panic is not.
		a := pta.New(prog, pta.Config{
			Policy:     pta.Policy{Kind: pta.KOrigin, K: 1},
			Entries:    entries,
			StepBudget: 200_000,
		})
		if err := a.Solve(); err != nil {
			return
		}
		sh := osa.Analyze(a)
		g := shb.Build(a, shb.Config{MaxNodes: 100_000})
		opts := race.O2Options()
		opts.PairBudget = 500_000
		opts.Workers = 2
		race.Detect(a, sh, g, opts)
	})
}
