package lang

import (
	"fmt"
	"sort"
	"strconv"

	"o2/internal/ir"
)

// Compile parses and lowers a single minilang source into a finalized IR
// program ready for analysis.
func Compile(file, src string, entries ir.EntryConfig) (*ir.Program, error) {
	return CompileFiles(map[string]string{file: src}, entries)
}

// CompileFiles parses and lowers several minilang sources into one program.
func CompileFiles(files map[string]string, entries ir.EntryConfig) (*ir.Program, error) {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	var asts []*File
	for _, n := range names {
		f, err := Parse(n, files[n])
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	sh, err := Declare(asts, entries)
	if err != nil {
		return nil, err
	}
	for _, f := range asts {
		for _, cd := range f.Classes {
			for _, md := range cd.Methods {
				if err := sh.LowerMethod(f.Name, cd.Name, md); err != nil {
					return nil, err
				}
			}
		}
		for _, fd := range f.Funcs {
			if err := sh.LowerFunc(f.Name, fd); err != nil {
				return nil, err
			}
		}
	}
	if err := sh.prog.Finalize(entries); err != nil {
		return nil, err
	}
	return sh.prog, nil
}

type lowerer struct {
	prog    *ir.Program
	entries ir.EntryConfig
	statics map[string]bool // "Class.field" -> static
	freeFns map[string]*ir.Func
	file    string
	tmp     int // per-body temp counter (reset in lowerBody)
}

func (lw *lowerer) lowerBody(fn *ir.Func, fd *FuncDecl) error {
	// Temps are numbered per body, not per program, so that a body
	// lowered in isolation (incremental per-unit compilation) is
	// instruction-identical to the same body lowered as part of the
	// whole program. Variable identity is per-function in the IR, so
	// reusing $t1 across bodies never collides.
	lw.tmp = 0
	b := ir.NewB(fn)
	b.At(ir.Pos{File: lw.file, Line: fd.Line})
	return lw.stmts(b, fd.Body)
}

func (lw *lowerer) stmts(b *ir.B, ss []Stmt) error {
	for _, s := range ss {
		if err := lw.stmt(b, s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(b *ir.B, s Stmt) error {
	b.Line(s.stmtLine())
	switch s := s.(type) {
	case *AssignStmt:
		return lw.assign(b, s)
	case *CallStmt:
		return lw.call(b, "", s.Call, s.Line)
	case *SyncStmt:
		b.Lock(s.Obj)
		if err := lw.stmts(b, s.Body); err != nil {
			return err
		}
		b.Line(s.Line).Unlock(s.Obj)
		return nil
	case *IfStmt:
		// Both branches are retained in sequence: sound for the
		// flow-insensitive pointer analysis and an over-approximation of
		// the access trace for the SHB graph.
		if err := lw.stmts(b, s.Then); err != nil {
			return err
		}
		return lw.stmts(b, s.Else)
	case *WhileStmt:
		var err error
		b.InLoop(func() { err = lw.stmts(b, s.Body) })
		return err
	case *SelectStmt:
		// Ops-first lowering: every arm's guard operation is emitted (in
		// arm order) before any arm body, then the bodies in arm order,
		// then the default body. Flow-insensitively every guard may fire
		// (nondeterministic handler dispatch, like event-loop origins),
		// and keeping the guard ops adjacent — no data access interleaves
		// them — makes the canonical race set invariant under arm
		// permutation.
		for _, arm := range s.Arms {
			b.Line(arm.Line)
			if arm.Send {
				val := lw.operands(b, []Expr{arm.Val})[0]
				b.Send(arm.Ch, val)
			} else {
				b.Recv("", arm.Ch)
			}
		}
		for _, arm := range s.Arms {
			if err := lw.stmts(b, arm.Body); err != nil {
				return err
			}
		}
		return lw.stmts(b, s.Default)
	case *ReturnStmt:
		switch v := s.Val.(type) {
		case nil:
			b.Ret("")
		case VarRef:
			b.Ret(v.Name)
		default:
			b.Ret("") // literal returns carry no pointers
		}
		return nil
	}
	return fmt.Errorf("%s:%d: unhandled statement %T", lw.file, s.stmtLine(), s)
}

func (lw *lowerer) assign(b *ir.B, s *AssignStmt) error {
	// Evaluate the RHS into a variable name.
	var src string
	switch rhs := s.Rhs.(type) {
	case VarRef:
		src = rhs.Name
	case NullLit:
		src = "$null"
	case IntLit:
		src = lw.temp() // opaque literal: a fresh variable with empty points-to
	case FieldRef:
		src = lw.temp()
		if lw.isClass(rhs.Base) {
			b.LoadStatic(src, lw.prog.Classes[rhs.Base], rhs.Field)
		} else {
			b.Load(src, rhs.Base, rhs.Field)
		}
	case IndexRef:
		src = lw.temp()
		b.LoadIdx(src, rhs.Base)
	case *NewExpr:
		src = lw.temp()
		cls := lw.prog.Class(rhs.Class) // auto-declare library classes
		b.New(src, cls, lw.operands(b, rhs.Args)...)
	case *CallExpr:
		src = lw.temp()
		if err := lw.call(b, src, rhs, s.Line); err != nil {
			return err
		}
	case StaticRef:
		src = lw.temp()
		b.LoadStatic(src, lw.prog.Classes[rhs.Class], rhs.Field)
	case FuncAddrExpr:
		fn := lw.freeFns[rhs.Name]
		if fn == nil {
			return fmt.Errorf("%s:%d: &%s: no such function", lw.file, s.Line, rhs.Name)
		}
		src = lw.temp()
		b.AddrOf(src, fn)
	default:
		return fmt.Errorf("%s:%d: unhandled rhs %T", lw.file, s.Line, rhs)
	}

	switch lhs := s.Lhs.(type) {
	case VarRef:
		b.Copy(lhs.Name, src)
	case FieldRef:
		if lw.isClass(lhs.Base) {
			b.StoreStatic(lw.prog.Classes[lhs.Base], lhs.Field, src)
		} else {
			b.Store(lhs.Base, lhs.Field, src)
		}
	case IndexRef:
		b.StoreIdx(lhs.Base, src)
	case StaticRef:
		b.StoreStatic(lw.prog.Classes[lhs.Class], lhs.Field, src)
	default:
		return fmt.Errorf("%s:%d: unhandled lhs %T", lw.file, s.Line, lhs)
	}
	return nil
}

func (lw *lowerer) call(b *ir.B, dst string, c *CallExpr, line int) error {
	args := lw.operands(b, c.Args)
	if c.Method == "$super" {
		cls := b.F.Class
		if cls == nil || cls.Super == nil {
			return fmt.Errorf("%s:%d: super() outside a subclass constructor", lw.file, line)
		}
		init := cls.Super.Lookup("init")
		if init == nil {
			return fmt.Errorf("%s:%d: superclass %s has no constructor", lw.file, line, cls.Super.Name)
		}
		b.SuperCall(init, args...)
		return nil
	}
	if c.Recv == "" {
		switch c.Method {
		case "pthread_create":
			// handle = pthread_create(fp, arg): fp must be a function
			// pointer variable or &name.
			if len(args) != 2 {
				return fmt.Errorf("%s:%d: pthread_create expects (fp, arg)", lw.file, line)
			}
			if dst == "" {
				dst = lw.temp()
			}
			b.PthreadCreate(dst, args[0], args[1])
			return nil
		case "pthread_join":
			if len(args) != 1 {
				return fmt.Errorf("%s:%d: pthread_join expects (handle)", lw.file, line)
			}
			b.PthreadJoin(args[0])
			return nil
		case "event_register":
			if len(args) != 2 {
				return fmt.Errorf("%s:%d: event_register expects (fp, arg)", lw.file, line)
			}
			b.EventRegister(args[0], args[1])
			return nil
		case "chan":
			// c = chan(cap): cap must be a non-negative integer literal;
			// chan() is unbuffered.
			capacity := 0
			switch len(c.Args) {
			case 0:
			case 1:
				lit, ok := c.Args[0].(IntLit)
				if !ok {
					return fmt.Errorf("%s:%d: chan capacity must be an integer literal", lw.file, line)
				}
				n, err := strconv.Atoi(lit.Text)
				if err != nil || n < 0 {
					return fmt.Errorf("%s:%d: bad chan capacity %q", lw.file, line, lit.Text)
				}
				capacity = n
			default:
				return fmt.Errorf("%s:%d: chan expects at most one capacity argument", lw.file, line)
			}
			if dst == "" {
				dst = lw.temp()
			}
			b.ChanMake(dst, capacity)
			return nil
		case "send":
			if len(args) != 2 {
				return fmt.Errorf("%s:%d: send expects (chan, value)", lw.file, line)
			}
			b.Send(args[0], args[1])
			return nil
		case "recv":
			if len(args) != 1 {
				return fmt.Errorf("%s:%d: recv expects (chan)", lw.file, line)
			}
			b.Recv(dst, args[0])
			return nil
		case "close":
			if len(args) != 1 {
				return fmt.Errorf("%s:%d: close expects (chan)", lw.file, line)
			}
			b.CloseChan(args[0])
			return nil
		}
		// pthread mutexes and the paper's "customized locks through
		// configurations": configured free-function names lower straight
		// to monitor operations on their first argument.
		if lw.entries.IsLockFunc(c.Method) && len(args) == 1 {
			b.Lock(args[0])
			return nil
		}
		if lw.entries.IsUnlockFunc(c.Method) && len(args) == 1 {
			b.Unlock(args[0])
			return nil
		}
		if fn := lw.freeFns[c.Method]; fn != nil {
			b.CallStatic(dst, fn, args...)
			return nil
		}
		// Not a declared function: an indirect call through a function
		// pointer variable of that name.
		b.CallIndirect(dst, c.Method, args...)
		return nil
	}
	if lw.isClass(c.Recv) {
		return fmt.Errorf("%s:%d: static method calls are not supported (%s.%s)", lw.file, line, c.Recv, c.Method)
	}
	b.Call(dst, c.Recv, c.Method, args...)
	return nil
}

func (lw *lowerer) operands(b *ir.B, es []Expr) []string {
	out := make([]string, len(es))
	for i, e := range es {
		switch e := e.(type) {
		case VarRef:
			out[i] = e.Name
		case NullLit:
			out[i] = "$null"
		case IntLit:
			out[i] = lw.temp()
		default:
			out[i] = lw.temp()
		}
	}
	return out
}

func (lw *lowerer) isClass(name string) bool {
	_, ok := lw.prog.Classes[name]
	return ok
}

func (lw *lowerer) temp() string {
	lw.tmp++
	return fmt.Sprintf("$t%d", lw.tmp)
}
