package lang

import "fmt"

// Parse parses minilang source into an AST. file is used for positions.
func Parse(file, src string) (*File, error) {
	toks, err := lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	f := &File{Name: file}
	for !p.at(tEOF, "") {
		switch {
		case p.at(tKeyword, "class"):
			cd, err := p.classDecl()
			if err != nil {
				return nil, err
			}
			f.Classes = append(f.Classes, cd)
		case p.at(tKeyword, "func"):
			p.next()
			fd, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fd)
		case p.at(tKeyword, "main"):
			line := p.cur().line
			p.next()
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, &FuncDecl{Name: "main", Body: body, Line: line})
		default:
			return nil, p.errf("expected class, func, or main, got %q", p.cur().text)
		}
	}
	return f, nil
}

type parser struct {
	file string
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

// next consumes and returns the current token; it never advances past EOF,
// so error paths that keep consuming stay in bounds.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokKind]string{tIdent: "identifier", tInt: "literal"}[k]
	}
	return token{}, p.errf("expected %q, got %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", p.file, p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) classDecl() (*ClassDecl, error) {
	line := p.cur().line
	p.next() // class
	name, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	cd := &ClassDecl{Name: name.text, Line: line}
	if p.accept(tKeyword, "extends") {
		sup, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		cd.Super = sup.text
	}
	if _, err := p.expect(tPunct, "{"); err != nil {
		return nil, err
	}
	for !p.accept(tPunct, "}") {
		switch {
		case p.at(tKeyword, "static") || p.at(tKeyword, "volatile") || p.at(tKeyword, "field"):
			static, volatile := false, false
			for {
				if p.accept(tKeyword, "static") {
					static = true
					continue
				}
				if p.accept(tKeyword, "volatile") {
					volatile = true
					continue
				}
				break
			}
			if _, err := p.expect(tKeyword, "field"); err != nil {
				return nil, err
			}
			fl, err := p.fieldRest(static, volatile)
			if err != nil {
				return nil, err
			}
			cd.Fields = append(cd.Fields, fl...)
		case p.at(tIdent, "") || p.at(tKeyword, "origin"):
			annotated := p.accept(tKeyword, "origin")
			m, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			m.Origin = annotated
			if m.Name == cd.Name { // constructor
				m.Name = "init"
			}
			cd.Methods = append(cd.Methods, m)
		default:
			return nil, p.errf("expected member declaration, got %q", p.cur().text)
		}
	}
	return cd, nil
}

func (p *parser) fieldRest(static, volatile bool) ([]FieldDecl, error) {
	var out []FieldDecl
	for {
		name, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		out = append(out, FieldDecl{Name: name.text, Static: static, Volatile: volatile, Line: name.line})
		if p.accept(tPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tPunct, ";"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	name, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	fd := &FuncDecl{Name: name.text, Line: name.line}
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	for !p.accept(tPunct, ")") {
		prm, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		fd.Params = append(fd.Params, prm.text)
		if !p.at(tPunct, ")") {
			if _, err := p.expect(tPunct, ","); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tPunct, "{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept(tPunct, "}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) stmt() (Stmt, error) {
	line := p.cur().line
	switch {
	case p.at(tKeyword, "sync"):
		p.next()
		if _, err := p.expect(tPunct, "("); err != nil {
			return nil, err
		}
		obj, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &SyncStmt{stmtBase{line}, obj.text, body}, nil

	case p.at(tKeyword, "if"):
		p.next()
		if err := p.skipBalanced("(", ")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{stmtBase: stmtBase{line}, Then: then}
		if p.accept(tKeyword, "else") {
			if p.at(tKeyword, "if") {
				es, err := p.stmt()
				if err != nil {
					return nil, err
				}
				st.Else = []Stmt{es}
			} else {
				els, err := p.block()
				if err != nil {
					return nil, err
				}
				st.Else = els
			}
		}
		return st, nil

	case p.at(tKeyword, "while"):
		p.next()
		if err := p.skipBalanced("(", ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{stmtBase{line}, body}, nil

	case p.at(tKeyword, "select"):
		p.next()
		if _, err := p.expect(tPunct, "{"); err != nil {
			return nil, err
		}
		st := &SelectStmt{stmtBase: stmtBase{line}}
		for !p.accept(tPunct, "}") {
			if p.at(tKeyword, "default") {
				if st.HasDefault {
					return nil, p.errf("duplicate default arm")
				}
				p.next()
				body, err := p.block()
				if err != nil {
					return nil, err
				}
				st.Default, st.HasDefault = body, true
				continue
			}
			armLine := p.cur().line
			op, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			arm := SelectArm{Line: armLine}
			switch op.text {
			case "recv":
				if _, err := p.expect(tPunct, "("); err != nil {
					return nil, err
				}
				ch, err := p.expect(tIdent, "")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tPunct, ")"); err != nil {
					return nil, err
				}
				arm.Ch = ch.text
			case "send":
				arm.Send = true
				if _, err := p.expect(tPunct, "("); err != nil {
					return nil, err
				}
				ch, err := p.expect(tIdent, "")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tPunct, ","); err != nil {
					return nil, err
				}
				v, err := p.operand()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tPunct, ")"); err != nil {
					return nil, err
				}
				arm.Ch, arm.Val = ch.text, v
			default:
				return nil, p.errf("expected recv, send, or default select arm, got %q", op.text)
			}
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			arm.Body = body
			st.Arms = append(st.Arms, arm)
		}
		return st, nil

	case p.at(tKeyword, "return"):
		p.next()
		st := &ReturnStmt{stmtBase: stmtBase{line}}
		if !p.at(tPunct, ";") {
			e, err := p.operand()
			if err != nil {
				return nil, err
			}
			st.Val = e
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return st, nil

	case p.at(tKeyword, "super"):
		p.next()
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return &CallStmt{stmtBase{line}, &CallExpr{Recv: "this", Method: "$super", Args: args}}, nil

	case p.at(tIdent, ""):
		return p.assignOrCall(line)
	}
	return nil, p.errf("expected statement, got %q", p.cur().text)
}

func (p *parser) assignOrCall(line int) (Stmt, error) {
	base := p.next().text
	switch {
	case p.accept(tPunct, "."):
		name, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		if p.at(tPunct, "(") {
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			call := &CallExpr{Recv: base, Method: name.text, Args: args}
			if _, err := p.expect(tPunct, ";"); err != nil {
				return nil, err
			}
			return &CallStmt{stmtBase{line}, call}, nil
		}
		lhs := FieldRef{base, name.text}
		return p.finishAssign(line, lhs)
	case p.at(tPunct, "["):
		if err := p.skipBalanced("[", "]"); err != nil {
			return nil, err
		}
		return p.finishAssign(line, IndexRef{base})
	case p.at(tPunct, "("):
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return &CallStmt{stmtBase{line}, &CallExpr{Method: base, Args: args}}, nil
	default:
		return p.finishAssign(line, VarRef{base})
	}
}

func (p *parser) finishAssign(line int, lhs LValue) (Stmt, error) {
	if _, err := p.expect(tPunct, "="); err != nil {
		return nil, err
	}
	rhs, err := p.rhs()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ";"); err != nil {
		return nil, err
	}
	return &AssignStmt{stmtBase{line}, lhs, rhs}, nil
}

func (p *parser) rhs() (Expr, error) {
	switch {
	case p.at(tPunct, "&"):
		p.next()
		name, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		return FuncAddrExpr{name.text}, nil
	case p.at(tKeyword, "new"):
		p.next()
		cls, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		return &NewExpr{cls.text, args}, nil
	case p.at(tKeyword, "null"):
		p.next()
		return NullLit{}, nil
	case p.at(tInt, ""):
		return IntLit{p.next().text}, nil
	case p.at(tIdent, ""):
		base := p.next().text
		switch {
		case p.accept(tPunct, "."):
			name, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			if p.at(tPunct, "(") {
				args, err := p.args()
				if err != nil {
					return nil, err
				}
				return &CallExpr{Recv: base, Method: name.text, Args: args}, nil
			}
			return FieldRef{base, name.text}, nil
		case p.at(tPunct, "["):
			if err := p.skipBalanced("[", "]"); err != nil {
				return nil, err
			}
			return IndexRef{base}, nil
		case p.at(tPunct, "("):
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Method: base, Args: args}, nil
		default:
			return VarRef{base}, nil
		}
	}
	return nil, p.errf("expected expression, got %q", p.cur().text)
}

func (p *parser) operand() (Expr, error) {
	switch {
	case p.at(tKeyword, "null"):
		p.next()
		return NullLit{}, nil
	case p.at(tInt, ""):
		return IntLit{p.next().text}, nil
	case p.at(tIdent, ""):
		return VarRef{p.next().text}, nil
	}
	return nil, p.errf("expected operand, got %q", p.cur().text)
}

func (p *parser) args() ([]Expr, error) {
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	var out []Expr
	for !p.accept(tPunct, ")") {
		e, err := p.operand()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.at(tPunct, ")") {
			if _, err := p.expect(tPunct, ","); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// skipBalanced consumes an open token and everything up to its matching
// close token; used for (ignored) conditions and array indices.
func (p *parser) skipBalanced(open, close string) error {
	if _, err := p.expect(tPunct, open); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.next()
		switch {
		case t.kind == tEOF:
			return p.errf("unbalanced %q", open)
		case t.kind == tPunct && t.text == open:
			depth++
		case t.kind == tPunct && t.text == close:
			depth--
		}
	}
	return nil
}
