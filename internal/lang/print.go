package lang

import (
	"fmt"
	"sort"
	"strings"
)

// Format renders a parsed file back to canonical minilang text: one
// declaration or statement per line, tab indentation, `(0)` for the
// ignored if/while conditions and `[0]` for the ignored array indices.
// The returned map sends each printed line number (1-based) back to the
// source line of the construct printed there, so analysis positions
// obtained from the formatted text can be translated to positions in the
// original source. Every IR instruction position derives from a statement
// line (see lower.go), so mapping statement lines is sufficient.
//
// Format(Parse(Format(f))) is a fixed point: the canonical text reparses
// to an AST that formats to the same text.
func Format(f *File) (string, map[int]int) {
	p := &printer{lines: map[int]int{}}
	for _, cd := range f.Classes {
		p.class(cd)
	}
	for _, fd := range f.Funcs {
		p.fileFunc(fd)
	}
	return p.b.String(), p.lines
}

// FormatClassShell renders a class declaration's shell — header, field
// declarations and method signatures, but no method bodies — as
// canonical text. Incremental analysis digests it as the content of a
// class unit: two classes with the same shell text declare the same
// fields, statics, volatiles, super edge and method set. Method
// signatures print in sorted order because method resolution is by
// name: reordering methods must not dirty the shell.
func FormatClassShell(cd *ClassDecl) (string, map[int]int) {
	p := &printer{lines: map[int]int{}}
	head := "class " + cd.Name
	if cd.Super != "" {
		head += " extends " + cd.Super
	}
	p.emit(cd.Line, 0, head+" {")
	for _, fl := range cd.Fields {
		mods := ""
		if fl.Static {
			mods += "static "
		}
		if fl.Volatile {
			mods += "volatile "
		}
		p.emit(fl.Line, 1, mods+"field "+fl.Name+";")
	}
	sigs := make([]string, 0, len(cd.Methods))
	for _, m := range cd.Methods {
		head := ""
		if m.Origin {
			head = "origin "
		}
		sigs = append(sigs, fmt.Sprintf("%s%s(%s);", head, m.Name, strings.Join(m.Params, ", ")))
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		p.emit(0, 1, sig)
	}
	p.emit(0, 0, "}")
	return p.b.String(), p.lines
}

// FormatMethodDecl renders one method declaration (header and body) as
// canonical text, with the printed-line→source-line map. The unit layer
// digests the text together with the line offsets so that a cached
// instruction fragment is only reused when positions replay exactly.
func FormatMethodDecl(md *FuncDecl) (string, map[int]int) {
	p := &printer{lines: map[int]int{}}
	head := ""
	if md.Origin {
		head = "origin "
	}
	p.emit(md.Line, 0, fmt.Sprintf("%s%s(%s) {", head, md.Name, strings.Join(md.Params, ", ")))
	p.stmts(md.Body, 1)
	p.emit(0, 0, "}")
	return p.b.String(), p.lines
}

// FormatFuncDecl renders one free-function declaration as canonical
// text, with the printed-line→source-line map (see FormatMethodDecl).
func FormatFuncDecl(fd *FuncDecl) (string, map[int]int) {
	p := &printer{lines: map[int]int{}}
	p.fileFunc(fd)
	return p.b.String(), p.lines
}

type printer struct {
	b     strings.Builder
	line  int         // last printed line number (1-based)
	lines map[int]int // printed line -> original source line
}

// emit writes one line at the given indent depth, recording the mapping to
// the construct's original source line (0 = no mapping, e.g. a closing
// brace).
func (p *printer) emit(orig, depth int, text string) {
	p.line++
	if orig != 0 {
		p.lines[p.line] = orig
	}
	for i := 0; i < depth; i++ {
		p.b.WriteByte('\t')
	}
	p.b.WriteString(text)
	p.b.WriteByte('\n')
}

func (p *printer) class(cd *ClassDecl) {
	head := "class " + cd.Name
	if cd.Super != "" {
		head += " extends " + cd.Super
	}
	p.emit(cd.Line, 0, head+" {")
	for _, fl := range cd.Fields {
		mods := ""
		if fl.Static {
			mods += "static "
		}
		if fl.Volatile {
			mods += "volatile "
		}
		p.emit(fl.Line, 1, mods+"field "+fl.Name+";")
	}
	for _, m := range cd.Methods {
		head := ""
		if m.Origin {
			head = "origin "
		}
		p.emit(m.Line, 1, fmt.Sprintf("%s%s(%s) {", head, m.Name, strings.Join(m.Params, ", ")))
		p.stmts(m.Body, 2)
		p.emit(0, 1, "}")
	}
	p.emit(0, 0, "}")
}

func (p *printer) fileFunc(fd *FuncDecl) {
	if fd.Name == "main" {
		p.emit(fd.Line, 0, "main {")
	} else {
		p.emit(fd.Line, 0, fmt.Sprintf("func %s(%s) {", fd.Name, strings.Join(fd.Params, ", ")))
	}
	p.stmts(fd.Body, 1)
	p.emit(0, 0, "}")
}

func (p *printer) stmts(body []Stmt, depth int) {
	for _, s := range body {
		p.stmt(s, depth)
	}
}

func (p *printer) stmt(s Stmt, depth int) {
	switch st := s.(type) {
	case *AssignStmt:
		p.emit(st.Line, depth, lvalue(st.Lhs)+" = "+expr(st.Rhs)+";")
	case *CallStmt:
		if st.Call.Method == "$super" {
			p.emit(st.Line, depth, "super"+argList(st.Call.Args)+";")
			return
		}
		p.emit(st.Line, depth, expr(st.Call)+";")
	case *SyncStmt:
		p.emit(st.Line, depth, "sync ("+st.Obj+") {")
		p.stmts(st.Body, depth+1)
		p.emit(0, depth, "}")
	case *IfStmt:
		p.emit(st.Line, depth, "if (0) {")
		p.stmts(st.Then, depth+1)
		if len(st.Else) > 0 {
			p.emit(0, depth, "} else {")
			p.stmts(st.Else, depth+1)
		}
		p.emit(0, depth, "}")
	case *WhileStmt:
		p.emit(st.Line, depth, "while (0) {")
		p.stmts(st.Body, depth+1)
		p.emit(0, depth, "}")
	case *SelectStmt:
		p.emit(st.Line, depth, "select {")
		for _, arm := range st.Arms {
			if arm.Send {
				p.emit(arm.Line, depth, "send("+arm.Ch+", "+expr(arm.Val)+") {")
			} else {
				p.emit(arm.Line, depth, "recv("+arm.Ch+") {")
			}
			p.stmts(arm.Body, depth+1)
			p.emit(0, depth, "}")
		}
		if st.HasDefault {
			p.emit(0, depth, "default {")
			p.stmts(st.Default, depth+1)
			p.emit(0, depth, "}")
		}
		p.emit(0, depth, "}")
	case *ReturnStmt:
		if st.Val == nil {
			p.emit(st.Line, depth, "return;")
		} else {
			p.emit(st.Line, depth, "return "+expr(st.Val)+";")
		}
	default:
		panic(fmt.Sprintf("lang.Format: unknown statement %T", s))
	}
}

func lvalue(lv LValue) string {
	switch v := lv.(type) {
	case VarRef:
		return v.Name
	case FieldRef:
		return v.Base + "." + v.Field
	case IndexRef:
		return v.Base + "[0]"
	case StaticRef:
		return v.Class + "." + v.Field
	}
	panic(fmt.Sprintf("lang.Format: unknown lvalue %T", lv))
}

func expr(e Expr) string {
	switch v := e.(type) {
	case VarRef:
		return v.Name
	case FieldRef:
		return v.Base + "." + v.Field
	case IndexRef:
		return v.Base + "[0]"
	case StaticRef:
		return v.Class + "." + v.Field
	case *NewExpr:
		return "new " + v.Class + argList(v.Args)
	case *CallExpr:
		if v.Recv != "" {
			return v.Recv + "." + v.Method + argList(v.Args)
		}
		return v.Method + argList(v.Args)
	case FuncAddrExpr:
		return "&" + v.Name
	case NullLit:
		return "null"
	case IntLit:
		return v.Text
	}
	panic(fmt.Sprintf("lang.Format: unknown expression %T", e))
}

func argList(args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = expr(a)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
