package lang

// AST node types for minilang. The grammar is deliberately statement-
// oriented: every expression position accepts only simple operands
// (identifier, this, null, integer literal), so lowering to IR needs no
// temporaries beyond those for literals.

// File is a parsed compilation unit.
type File struct {
	Name    string
	Classes []*ClassDecl
	Funcs   []*FuncDecl // free functions, including main
}

// ClassDecl declares a class.
type ClassDecl struct {
	Name    string
	Super   string // "" if none
	Fields  []FieldDecl
	Methods []*FuncDecl
	Line    int
}

// FieldDecl declares an instance or static field.
type FieldDecl struct {
	Name     string
	Static   bool
	Volatile bool
	Line     int
}

// FuncDecl declares a method, constructor (name "init"), free function, or
// main.
type FuncDecl struct {
	Name   string
	Params []string
	Body   []Stmt
	// Origin marks an annotated origin entry ("origin m(...) { ... }").
	Origin bool
	Line   int
}

// Stmt is a minilang statement.
type Stmt interface{ stmtLine() int }

type stmtBase struct{ Line int }

func (s stmtBase) stmtLine() int { return s.Line }

// AssignStmt is "lhs = rhs;".
type AssignStmt struct {
	stmtBase
	Lhs LValue
	Rhs Expr
}

// CallStmt is a call in statement position.
type CallStmt struct {
	stmtBase
	Call *CallExpr
}

// SyncStmt is "sync (x) { body }".
type SyncStmt struct {
	stmtBase
	Obj  string
	Body []Stmt
}

// IfStmt is "if (...) { Then } [else { Else }]"; the condition is ignored.
type IfStmt struct {
	stmtBase
	Then, Else []Stmt
}

// WhileStmt is "while (...) { Body }"; the condition is ignored. Origin
// allocations inside the body are marked as loop allocations.
type WhileStmt struct {
	stmtBase
	Body []Stmt
}

// SelectArm is one guarded arm of a select statement: a channel operation
// ("recv(c)" or "send(c, v)") and the body executed when it fires.
type SelectArm struct {
	Line int
	Send bool   // true for send(Ch, Val) guards, false for recv(Ch)
	Ch   string // channel variable name
	Val  Expr   // send operand; nil for recv arms
	Body []Stmt
}

// SelectStmt is "select { arm* [default { ... }] }": a nondeterministic
// choice among channel operations. Like if/while branches, every arm is
// retained by the flow-insensitive lowering (nondeterministic handler
// dispatch); the default body is retained too.
type SelectStmt struct {
	stmtBase
	Arms       []SelectArm
	Default    []Stmt
	HasDefault bool
}

// ReturnStmt is "return [x];".
type ReturnStmt struct {
	stmtBase
	Val Expr // nil for void
}

// LValue is an assignable location.
type LValue interface{ lvalue() }

// VarRef names a local variable or parameter.
type VarRef struct{ Name string }

// FieldRef is base.field (base is an identifier or this).
type FieldRef struct{ Base, Field string }

// IndexRef is base[...] (the index expression is ignored).
type IndexRef struct{ Base string }

// StaticRef is Class.field where Class names a declared class.
type StaticRef struct{ Class, Field string }

func (VarRef) lvalue()    {}
func (FieldRef) lvalue()  {}
func (IndexRef) lvalue()  {}
func (StaticRef) lvalue() {}

// Expr is a right-hand side.
type Expr interface{ expr() }

// NewExpr is "new C(args)".
type NewExpr struct {
	Class string
	Args  []Expr
}

// CallExpr is "recv.method(args)" (Recv != "") or "fn(args)" (Recv == "").
type CallExpr struct {
	Recv   string
	Method string
	Args   []Expr
}

// FuncAddrExpr is "&f": the address of a free function.
type FuncAddrExpr struct{ Name string }

// NullLit is the null literal; it points to nothing.
type NullLit struct{}

// IntLit is an integer (or string) literal; opaque to the analysis.
type IntLit struct{ Text string }

func (VarRef) expr()       {}
func (FieldRef) expr()     {}
func (IndexRef) expr()     {}
func (StaticRef) expr()    {}
func (*NewExpr) expr()     {}
func (FuncAddrExpr) expr() {}
func (*CallExpr) expr()    {}
func (NullLit) expr()      {}
func (IntLit) expr()       {}

// Line returns a statement's source line (for tools outside the package;
// the interface method is unexported).
func Line(s Stmt) int { return s.stmtLine() }

// NewIfStmt builds an if statement at the given line. The frontend's
// conditions are ignored by the analysis, so none is taken; this exists
// for AST-rewriting tools (the metamorphic suite wraps bodies in
// redundant blocks).
func NewIfStmt(line int, then, els []Stmt) *IfStmt {
	return &IfStmt{stmtBase: stmtBase{Line: line}, Then: then, Else: els}
}
