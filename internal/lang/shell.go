package lang

import (
	"fmt"

	"o2/internal/ir"
)

// Shell is the declaration skeleton of a program: every class (with its
// fields, statics, volatiles and super edge) and every method/function
// shell is declared, but no body has been lowered yet. It is the
// substrate of per-unit incremental compilation — dirty units lower
// their bodies through LowerMethod/LowerFunc while clean units replay
// cached instruction fragments into the same shells — and CompileFiles
// is itself built on it, so the two paths share one lowering.
type Shell struct {
	prog    *ir.Program
	entries ir.EntryConfig
	statics map[string]bool
	freeFns map[string]*ir.Func
}

// Declare runs the declaration pass over the parsed files: classes,
// fields and method/function shells are created so that all references
// resolve regardless of declaration order, and the inheritance graph is
// checked for cycles. Bodies are not lowered.
func Declare(asts []*File, entries ir.EntryConfig) (*Shell, error) {
	sh := &Shell{
		prog:    ir.NewProgram(),
		entries: entries,
		statics: map[string]bool{},
		freeFns: map[string]*ir.Func{},
	}
	for _, f := range asts {
		for _, cd := range f.Classes {
			c := sh.prog.Class(cd.Name)
			if cd.Super != "" {
				c.Super = sh.prog.Class(cd.Super)
			}
			for _, fd := range cd.Fields {
				if fd.Static {
					sig := cd.Name + "." + fd.Name
					sh.statics[sig] = true
					sh.prog.Statics = append(sh.prog.Statics, sig)
					if fd.Volatile {
						sh.prog.VolatileStatics[sig] = true
					}
				} else {
					c.Fields = append(c.Fields, fd.Name)
					if fd.Volatile {
						c.Volatiles[fd.Name] = true
					}
				}
			}
			for _, md := range cd.Methods {
				if c.Methods[md.Name] != nil {
					return nil, fmt.Errorf("%s: duplicate method %s.%s", f.Name, cd.Name, md.Name)
				}
				fn := sh.prog.NewFunc(c, md.Name, md.Params...)
				fn.OriginEntry = md.Origin
			}
		}
		for _, fd := range f.Funcs {
			if sh.freeFns[fd.Name] != nil {
				return nil, fmt.Errorf("%s: duplicate function %s", f.Name, fd.Name)
			}
			sh.freeFns[fd.Name] = sh.prog.NewFunc(nil, fd.Name, fd.Params...)
		}
	}
	// The Super chains must be acyclic: field/volatile lookups and method
	// resolution walk them to nil.
	for _, f := range asts {
		for _, cd := range f.Classes {
			seen := map[string]bool{}
			for c := sh.prog.Class(cd.Name); c != nil; c = c.Super {
				if seen[c.Name] {
					return nil, fmt.Errorf("%s:%d: inheritance cycle through class %s", f.Name, cd.Line, c.Name)
				}
				seen[c.Name] = true
			}
		}
	}
	return sh, nil
}

// Prog returns the program under construction. It is not finalized;
// call Finalize after all bodies are lowered or replayed.
func (sh *Shell) Prog() *ir.Program { return sh.prog }

// FreeFunc returns the shell of a declared free function, or nil.
func (sh *Shell) FreeFunc(name string) *ir.Func { return sh.freeFns[name] }

// Method returns the shell of a declared method, or nil.
func (sh *Shell) Method(class, name string) *ir.Func {
	c := sh.prog.Classes[class]
	if c == nil {
		return nil
	}
	return c.Methods[name]
}

// FuncByName resolves a qualified function name ("f" or "C.m") to its
// shell. Fragment replay links call targets through it.
func (sh *Shell) FuncByName(qname string) *ir.Func {
	for _, fn := range sh.prog.Funcs {
		if fn.Name == qname {
			return fn
		}
	}
	return nil
}

// LowerMethod lowers one method body into its declared shell. Temp
// variables are numbered per body, so lowering a body in isolation
// produces exactly the instructions whole-program compilation would.
func (sh *Shell) LowerMethod(file, class string, md *FuncDecl) error {
	c := sh.prog.Classes[class]
	if c == nil || c.Methods[md.Name] == nil {
		return fmt.Errorf("%s: method %s.%s not declared", file, class, md.Name)
	}
	lw := &lowerer{prog: sh.prog, entries: sh.entries, statics: sh.statics, freeFns: sh.freeFns, file: file}
	return lw.lowerBody(c.Methods[md.Name], md)
}

// LowerFunc lowers one free-function body into its declared shell.
func (sh *Shell) LowerFunc(file string, fd *FuncDecl) error {
	fn := sh.freeFns[fd.Name]
	if fn == nil {
		return fmt.Errorf("%s: function %s not declared", file, fd.Name)
	}
	lw := &lowerer{prog: sh.prog, entries: sh.entries, statics: sh.statics, freeFns: sh.freeFns, file: file}
	return lw.lowerBody(fn, fd)
}
