package lang

import (
	"strings"
	"testing"

	"o2/internal/ir"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := Compile("test.mini", src, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("t", `class Foo { field x; } // comment
/* block
comment */ main { x = new Foo(); }`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		if tok.kind == tEOF {
			break
		}
		kinds = append(kinds, tok.text)
	}
	want := []string{"class", "Foo", "{", "field", "x", ";", "}", "main", "{", "x", "=", "new", "Foo", "(", ")", ";", "}"}
	if strings.Join(kinds, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v", kinds)
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := lex("t", "a\nb\n\nc")
	if err != nil {
		t.Fatal(err)
	}
	lines := []int{1, 2, 4}
	for i, want := range lines {
		if toks[i].line != want {
			t.Errorf("token %d on line %d, want %d", i, toks[i].line, want)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"/* unterminated", `"unterminated`, "class @"} {
		if _, err := lex("t", src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestParseClassForms(t *testing.T) {
	f, err := Parse("t", `
class A extends B {
  field x, y;
  static field g;
  A(v) { this.x = v; }
  m(p, q) { return p; }
}
main { a = new A(null); }
func helper(z) { return z; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Classes) != 1 || len(f.Funcs) != 2 {
		t.Fatalf("decls: %d classes, %d funcs", len(f.Classes), len(f.Funcs))
	}
	cd := f.Classes[0]
	if cd.Super != "B" {
		t.Errorf("super = %q", cd.Super)
	}
	if len(cd.Fields) != 3 || !cd.Fields[2].Static {
		t.Errorf("fields = %+v", cd.Fields)
	}
	if len(cd.Methods) != 2 || cd.Methods[0].Name != "init" {
		t.Errorf("constructor should be renamed to init: %+v", cd.Methods[0])
	}
	if cd.Methods[1].Params[1] != "q" {
		t.Errorf("method params = %v", cd.Methods[1].Params)
	}
}

func TestParseStatementForms(t *testing.T) {
	f, err := Parse("t", `
main {
  x = new C();
  y = x;
  z = x.f;
  x.f = z;
  a = x[i + 1];
  x[j * 2] = a;
  r = x.m(a, null, 3);
  x.m(a);
  free(a);
  sync (x) { x.f = a; }
  if (a == null && b > 0) { y = a; } else if (c) { y = x; } else { y = z; }
  while (i < 10) { w = new C(); }
  return r;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	stmts := f.Funcs[0].Body
	if len(stmts) != 13 {
		t.Fatalf("got %d statements", len(stmts))
	}
	if _, ok := stmts[9].(*SyncStmt); !ok {
		t.Errorf("stmt 9 = %T, want sync", stmts[9])
	}
	ifs, ok := stmts[10].(*IfStmt)
	if !ok || len(ifs.Else) != 1 {
		t.Errorf("stmt 10 = %T (else chain broken)", stmts[10])
	}
	if _, ok := stmts[11].(*WhileStmt); !ok {
		t.Errorf("stmt 11 = %T, want while", stmts[11])
	}
	if _, ok := stmts[12].(*ReturnStmt); !ok {
		t.Errorf("stmt 12 = %T, want return", stmts[12])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`main { x = ; }`,
		`main { x.f; }`,
		`class { }`,
		`main { sync x { } }`,
		`main { if (a { } }`,
		`xyz`,
		`main { x = new; }`,
	}
	for _, src := range bad {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestLowerBasicShapes(t *testing.T) {
	prog := compile(t, `
class Box { field v; }
main {
  b = new Box();
  b.v = null;
  x = b.v;
  b[0] = x;
  y = b[1];
}
`)
	main := prog.Main
	var kinds []string
	for _, in := range main.Body {
		kinds = append(kinds, strings.SplitN(in.String(), " ", 2)[0])
	}
	if prog.NumAllocSites != 1 {
		t.Errorf("want 1 alloc site, got %d", prog.NumAllocSites)
	}
	hasLoad, hasStore, hasIdx := false, false, false
	for _, in := range main.Body {
		switch in.(type) {
		case *ir.LoadField:
			hasLoad = true
		case *ir.StoreField:
			hasStore = true
		case *ir.StoreIndex:
			hasIdx = true
		}
	}
	if !hasLoad || !hasStore || !hasIdx {
		t.Errorf("lowering missing forms: %v", kinds)
	}
}

func TestLowerStatics(t *testing.T) {
	prog := compile(t, `
class G { static field cfg; }
main {
  x = new Obj();
  G.cfg = x;
  y = G.cfg;
}
`)
	var loads, stores int
	for _, in := range prog.Main.Body {
		switch in := in.(type) {
		case *ir.LoadStatic:
			loads++
			if in.Class.Name != "G" || in.Field != "cfg" {
				t.Errorf("bad static load %v", in)
			}
		case *ir.StoreStatic:
			stores++
		}
	}
	if loads != 1 || stores != 1 {
		t.Errorf("statics lowered: %d loads, %d stores", loads, stores)
	}
	if len(prog.Statics) != 1 || prog.Statics[0] != "G.cfg" {
		t.Errorf("Statics = %v", prog.Statics)
	}
}

func TestLowerSuperCall(t *testing.T) {
	prog := compile(t, `
class A { field f; A() { this.f = null; } }
class B extends A { B() { super(); } }
main { b = new B(); }
`)
	bInit := prog.Classes["B"].Methods["init"]
	found := false
	for _, in := range bInit.Body {
		if c, ok := in.(*ir.Call); ok && c.Static != nil && c.Recv != nil {
			if c.Static != prog.Classes["A"].Methods["init"] {
				t.Errorf("super resolves to %v", c.Static)
			}
			found = true
		}
	}
	if !found {
		t.Errorf("super() call not lowered")
	}
}

func TestLowerSuperErrors(t *testing.T) {
	_, err := Compile("t", `class A { A() { super(); } } main { }`, ir.DefaultEntryConfig())
	if err == nil {
		t.Errorf("super() without superclass should fail")
	}
	// A call to an undeclared name lowers to an indirect call through a
	// function-pointer variable (C-style); it compiles, and a variable that
	// never receives a function pointer simply resolves no targets.
	prog, err := Compile("t", `main { f(); }`, ir.DefaultEntryConfig())
	if err != nil {
		t.Errorf("indirect call should compile: %v", err)
	}
	indirect := false
	for _, in := range prog.Main.Body {
		if c, ok := in.(*ir.Call); ok && c.Indirect != nil {
			indirect = true
		}
	}
	if !indirect {
		t.Errorf("unknown callee should lower to an indirect call")
	}
}

func TestLowerWhileMarksLoopAllocs(t *testing.T) {
	prog := compile(t, `
class W { run() { } }
main {
  while (1) { w = new W(); w.start(); }
  v = new W();
}
`)
	var loopAlloc, plainAlloc *ir.Alloc
	for _, in := range prog.Main.Body {
		if a, ok := in.(*ir.Alloc); ok {
			if a.InLoop {
				loopAlloc = a
			} else {
				plainAlloc = a
			}
		}
	}
	if loopAlloc == nil || plainAlloc == nil {
		t.Fatalf("loop marking wrong: loop=%v plain=%v", loopAlloc, plainAlloc)
	}
}

func TestLowerBothBranchesKept(t *testing.T) {
	prog := compile(t, `
class C { field a, b; }
main {
  c = new C();
  if (x) { c.a = null; } else { c.b = null; }
}
`)
	stores := 0
	for _, in := range prog.Main.Body {
		if _, ok := in.(*ir.StoreField); ok {
			stores++
		}
	}
	if stores != 2 {
		t.Errorf("both branches should lower: %d stores", stores)
	}
}

func TestCompileFilesMergesAndOrders(t *testing.T) {
	prog, err := CompileFiles(map[string]string{
		"b.mini": `main { c = new C(); c.go2(); }`,
		"a.mini": `class C { go2() { } }`,
	}, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if prog.Main == nil || prog.Classes["C"] == nil {
		t.Fatalf("cross-file references unresolved")
	}
	// Duplicate function across files must fail.
	_, err = CompileFiles(map[string]string{
		"a.mini": `func f() { } main { f(); }`,
		"b.mini": `func f() { }`,
	}, ir.DefaultEntryConfig())
	if err == nil {
		t.Errorf("duplicate function should fail")
	}
}

func TestLowerLiteralsAreOpaque(t *testing.T) {
	prog := compile(t, `
class C { field v; }
main {
  c = new C();
  c.v = 42;
  c.v = "hello";
  c.v = null;
}
`)
	stores := 0
	for _, in := range prog.Main.Body {
		if _, ok := in.(*ir.StoreField); ok {
			stores++
		}
	}
	if stores != 3 {
		t.Errorf("literal stores lowered: %d", stores)
	}
}

func TestAutoDeclaredLibraryClasses(t *testing.T) {
	prog := compile(t, `main { x = new SomethingNew(); }`)
	if prog.Classes["SomethingNew"] == nil {
		t.Errorf("new of undeclared class should auto-declare it")
	}
}

func TestPositionsSurviveLowering(t *testing.T) {
	prog := compile(t, `class C { field v; }
main {
  c = new C();
  c.v = null;
}`)
	for _, in := range prog.Main.Body {
		if s, ok := in.(*ir.StoreField); ok {
			if s.Pos().Line != 4 || s.Pos().File != "test.mini" {
				t.Errorf("store position = %v", s.Pos())
			}
		}
	}
}

func TestVolatileFieldsParse(t *testing.T) {
	prog := compile(t, `
class C {
  volatile field flag;
  static volatile field g;
  field plain;
}
main { c = new C(); }
`)
	c := prog.Classes["C"]
	if !c.IsVolatile("flag") {
		t.Errorf("flag should be volatile")
	}
	if c.IsVolatile("plain") {
		t.Errorf("plain should not be volatile")
	}
	if !prog.VolatileStatics["C.g"] {
		t.Errorf("C.g should be a volatile static")
	}
}

func TestVolatileInheritance(t *testing.T) {
	prog := compile(t, `
class A { volatile field state; }
class B extends A { }
main { b = new B(); }
`)
	if !prog.Classes["B"].IsVolatile("state") {
		t.Errorf("volatile must be visible through inheritance")
	}
}

func TestModifierOrderIrrelevant(t *testing.T) {
	prog := compile(t, `
class C {
  volatile static field a;
  static volatile field b;
}
main { c = new C(); }
`)
	if !prog.VolatileStatics["C.a"] || !prog.VolatileStatics["C.b"] {
		t.Errorf("modifier order should not matter: %v", prog.VolatileStatics)
	}
}

// TestParserNeverPanics feeds random token soup to the parser: errors are
// fine, panics are not.
func TestParserNeverPanics(t *testing.T) {
	words := []string{
		"class", "extends", "field", "static", "volatile", "origin", "main",
		"func", "new", "sync", "if", "else", "while", "return", "null",
		"super", "x", "y", "Foo", "run", "(", ")", "{", "}", "[", "]",
		";", ",", "=", ".", "&", "42", `"s"`,
	}
	rng := newRand(1234567)
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng()%60
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(words[rng()%len(words)])
			sb.WriteByte(' ')
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", src, r)
				}
			}()
			_, _ = Parse("fuzz", src)
		}()
	}
}

// TestLowerNeverPanicsOnParsables lowers every random program that
// happens to parse; lowering errors are fine, panics are not.
func TestLowerNeverPanicsOnParsables(t *testing.T) {
	words := []string{
		"class Foo { field v; run() { } }", "main { x = new Foo(); }",
		"main { x = y; }", "func f(a) { return a; }",
		"class B extends Foo { B() { super(); } }",
	}
	rng := newRand(99)
	for trial := 0; trial < 200; trial++ {
		var sb strings.Builder
		for i := 0; i < 1+rng()%4; i++ {
			sb.WriteString(words[rng()%len(words)])
			sb.WriteByte('\n')
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("lowering panicked on %q: %v", src, r)
				}
			}()
			_, _ = Compile("fuzz", src, ir.DefaultEntryConfig())
		}()
	}
}

// newRand is a tiny deterministic PRNG to keep the fuzz corpora stable.
func newRand(seed uint64) func() int {
	s := seed
	return func() int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % (1 << 31))
	}
}
