package lang

import (
	"strings"
	"testing"

	"o2/internal/ir"
)

const printSrc = `// leading comment
class Counter extends Base {
	field n; static field total;
	volatile field flag;
	Counter(m) { super(m); this.n = m; }
	origin run() {
		sync (this) { this.n = 1; }
		if (this.n > 0) { this.n = 2; } else if (1) { this.n = 3; }
		while (this.n < 10) { arr[this.n] = 1; }
		return;
	}
	get() { return n; }
}
class Base { field b; Base(x) { this.b = x; } }
func helper(a, b) { a.n = b; Counter.total = 1; }
main {
	c = new Counter(5);
	c.start();
	s = "str lit";
	f = &helper;
	x = null;
	c.join();
}
`

// TestFormatFixedPoint: formatting is canonical — parse→format→parse→format
// must reproduce the same text.
func TestFormatFixedPoint(t *testing.T) {
	f, err := Parse("p.mini", printSrc)
	if err != nil {
		t.Fatal(err)
	}
	text1, _ := Format(f)
	f2, err := Parse("p.mini", text1)
	if err != nil {
		t.Fatalf("formatted text does not reparse: %v\n%s", err, text1)
	}
	text2, _ := Format(f2)
	if text1 != text2 {
		t.Errorf("Format is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

// TestFormatLineMap: every statement line in the formatted text must map
// back to the line of the corresponding statement in the original source.
func TestFormatLineMap(t *testing.T) {
	f, err := Parse("p.mini", printSrc)
	if err != nil {
		t.Fatal(err)
	}
	text, lines := Format(f)
	f2, err := Parse("p.mini", text)
	if err != nil {
		t.Fatal(err)
	}
	var orig, printed []int
	collectStmtLines(f, &orig)
	collectStmtLines(f2, &printed)
	if len(orig) != len(printed) {
		t.Fatalf("statement count changed: %d vs %d", len(orig), len(printed))
	}
	for i := range printed {
		if got := lines[printed[i]]; got != orig[i] {
			t.Errorf("stmt %d: printed line %d maps to %d, want %d", i, printed[i], got, orig[i])
		}
	}
}

func collectStmtLines(f *File, out *[]int) {
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, s := range body {
			*out = append(*out, s.stmtLine())
			switch st := s.(type) {
			case *SyncStmt:
				walk(st.Body)
			case *IfStmt:
				walk(st.Then)
				walk(st.Else)
			case *WhileStmt:
				walk(st.Body)
			}
		}
	}
	for _, cd := range f.Classes {
		for _, m := range cd.Methods {
			walk(m.Body)
		}
	}
	for _, fd := range f.Funcs {
		walk(fd.Body)
	}
}

// TestFormatCompiles: the canonical text compiles like the original.
func TestFormatCompiles(t *testing.T) {
	f, err := Parse("p.mini", printSrc)
	if err != nil {
		t.Fatal(err)
	}
	text, _ := Format(f)
	if !strings.Contains(text, "super(m);") || !strings.Contains(text, "main {") {
		t.Fatalf("canonical text lost constructs:\n%s", text)
	}
	if _, err := Compile("p.mini", text, ir.DefaultEntryConfig()); err != nil {
		t.Fatalf("formatted text does not compile: %v\n%s", err, text)
	}
}
