package sched

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lru is the bounded result cache: a classic map + intrusive-list LRU
// guarded by one mutex. Values are *Summary snapshots of completed jobs;
// capacity is a fixed entry count (summaries are small — the scheduler
// never retains full analysis states). Hit/miss/eviction counters feed
// GET /statsz and the bench gate's batch section.
type lru struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type lruEntry struct {
	key string
	sum *Summary
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached summary and promotes the entry. The miss counter
// is NOT bumped here — Submit counts a miss only when it goes on to run
// the job, so racing submissions of the same program do not double-count.
func (c *lru) get(key string) (*Summary, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*lruEntry).sum, true
}

func (c *lru) miss() { c.misses.Add(1) }

// put inserts or refreshes an entry, evicting the least recently used
// entry when over capacity.
func (c *lru) put(key string, sum *Summary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).sum = sum
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, sum: sum})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions.Add(1)
	}
}

func (c *lru) stats() (hits, misses, evictions int64, entries int) {
	c.mu.Lock()
	entries = c.ll.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), entries
}
