package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"o2"
)

const racySrc = `
class S { field data; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { sh = this.s; sh.data = this; }
}
main {
  s = new S();
  t1 = new W(s);
  t2 = new W(s);
  t1.start();
  t2.start();
}
`

const cleanSrc = `
class S { field data; }
class M { }
class W {
  field s; field m;
  W(s, m) { this.s = s; this.m = m; }
  run() { l = this.m; sync (l) { sh = this.s; sh.data = this; } }
}
main {
  s = new S();
  m = new M();
  t1 = new W(s, m);
  t2 = new W(s, m);
  t1.start();
  t2.start();
}
`

// genSource builds a program with n distinct racy thread classes — large
// enough that a cold analysis dwarfs a cache lookup.
func genSource(n int) string {
	var b strings.Builder
	b.WriteString("class S { field data; }\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "class W%d { field s; W%d(s) { this.s = s; } run() { sh = this.s; sh.data = this; } }\n", i, i)
	}
	b.WriteString("main {\n  s = new S();\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  t%d = new W%d(s);\n  t%d.start();\n", i, i, i)
	}
	b.WriteString("}\n")
	return b.String()
}

func req(src string) Request {
	return Request{Files: map[string]string{"in.mini": src}, Config: o2.DefaultConfig()}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
}

func TestSubmitAndResult(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(req(racySrc))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != Done {
		t.Fatalf("state = %s, err = %v", j.State(), j.Err())
	}
	if got := len(j.Summary().Races); got != 1 {
		t.Fatalf("want 1 race, got %d", got)
	}
	if j.Summary().Cached {
		t.Fatal("first run must not be cache-served")
	}

	clean, err := s.Submit(req(cleanSrc))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, clean)
	if got := len(clean.Summary().Races); got != 0 {
		t.Fatalf("clean program reported %d races", got)
	}
}

func TestParseErrorClassified(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(req("class { this is not minilang"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != Failed {
		t.Fatalf("state = %s", j.State())
	}
	if !errors.Is(j.Err(), ErrParse) || j.ErrKind() != KindParse {
		t.Fatalf("want ErrParse/KindParse, got %v / %s", j.Err(), j.ErrKind())
	}
}

func TestCacheHitMissEviction(t *testing.T) {
	s := New(Options{Workers: 1, CacheEntries: 2})
	defer s.Shutdown(context.Background())

	run := func(src string) *Job {
		j, err := s.Submit(req(src))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		return j
	}

	a1 := run(racySrc)
	if a1.Summary().Cached {
		t.Fatal("cold run flagged cached")
	}
	a2 := run(racySrc)
	if !a2.Summary().Cached {
		t.Fatal("identical resubmission missed the cache")
	}
	if len(a2.Summary().Races) != len(a1.Summary().Races) {
		t.Fatal("cached summary differs from cold summary")
	}

	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}

	// Fill the 2-entry cache past capacity: racy, clean, gen → racy evicted.
	run(cleanSrc)
	run(genSource(3))
	if st := s.Stats(); st.CacheEvictions != 1 || st.CacheEntries != 2 {
		t.Fatalf("evictions/entries = %d/%d, want 1/2", st.CacheEvictions, st.CacheEntries)
	}
	if a3 := run(racySrc); a3.Summary().Cached {
		t.Fatal("evicted entry still served from cache")
	}
}

// TestCacheKeyConfigCollision: identical sources with different
// report-affecting configs must NOT share a cache entry, while
// report-neutral knobs (Workers, stats) must.
func TestCacheKeyConfigCollision(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Shutdown(context.Background())

	run := func(r Request) *Job {
		j, err := s.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		return j
	}

	base := req(racySrc)
	run(base)

	insensitive := req(racySrc)
	insensitive.Config.Policy = o2.Insensitive
	if j := run(insensitive); j.Summary().Cached {
		t.Fatal("different policy hit the origin-policy cache entry")
	}

	android := req(racySrc)
	android.Config.Android = true
	if j := run(android); j.Summary().Cached {
		t.Fatal("Android mode hit the non-Android cache entry")
	}

	workers := req(racySrc)
	workers.Config.Workers = 4
	if j := run(workers); !j.Summary().Cached {
		t.Fatal("worker count (report-neutral) caused a cache miss")
	}

	// Different filename, same content: a distinct program (positions
	// differ in the report), so it must miss.
	renamed := Request{Files: map[string]string{"other.mini": racySrc}, Config: o2.DefaultConfig()}
	if j := run(renamed); j.Summary().Cached {
		t.Fatal("renamed file hit the cache despite differing positions")
	}
}

// TestCacheWarmHitSpeedup asserts the headline cache property: a warm hit
// is at least 100× faster than the cold analysis it replaces.
func TestCacheWarmHitSpeedup(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Shutdown(context.Background())

	big := genSource(640)
	r := Request{Files: map[string]string{"big.mini": big}, Config: o2.DefaultConfig()}

	t0 := time.Now()
	j1, err := s.Submit(r)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	cold := time.Since(t0)
	if j1.State() != Done {
		t.Fatalf("cold run failed: %v", j1.Err())
	}

	// Best-of-5 warm submissions, to keep scheduler jitter out of the
	// ratio.
	warm := time.Hour
	for i := 0; i < 5; i++ {
		t1 := time.Now()
		j2, err := s.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j2)
		if d := time.Since(t1); d < warm {
			warm = d
		}
		if !j2.Summary().Cached {
			t.Fatal("resubmission missed the cache")
		}
	}
	if cold < 100*warm {
		t.Fatalf("warm hit not ≥100× faster: cold=%v warm=%v (%.0fx)", cold, warm, float64(cold)/float64(warm))
	}
	t.Logf("cold=%v warm=%v speedup=%.0fx", cold, warm, float64(cold)/float64(warm))
}

func TestBackpressure(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	defer s.Shutdown(context.Background())

	// Occupy the single worker with a long job, then fill the queue.
	long := Request{Files: map[string]string{"big.mini": genSource(320)}, Config: o2.DefaultConfig()}
	j1, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	// One of the next submissions lands in the queue; once both the worker
	// and the queue slot are taken, Submit must reject with ErrQueueFull.
	var sawFull bool
	for i := 0; i < 10 && !sawFull; i++ {
		_, err := s.Submit(req(racySrc))
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("queue never exerted backpressure")
	}
	if s.Stats().Rejected == 0 {
		t.Fatal("rejected counter not bumped")
	}
	waitDone(t, j1)
}

func TestCancelQueuedJob(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4, CacheEntries: -1})
	defer s.Shutdown(context.Background())

	blocker, err := s.Submit(Request{Files: map[string]string{"big.mini": genSource(320)}, Config: o2.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(req(racySrc))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(queued.ID) {
		t.Fatal("Cancel(queued) = false")
	}
	waitDone(t, queued)
	if queued.State() != Canceled || queued.ErrKind() != KindCanceled {
		t.Fatalf("state=%s kind=%s", queued.State(), queued.ErrKind())
	}
	waitDone(t, blocker)
	if blocker.State() != Done {
		t.Fatalf("blocker state=%s err=%v", blocker.State(), blocker.Err())
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := New(Options{Workers: 1, CacheEntries: -1})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(Request{Files: map[string]string{"big.mini": genSource(320)}, Config: o2.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for it to leave the queue.
	for j.State() == Queued {
		time.Sleep(time.Millisecond)
	}
	if !s.Cancel(j.ID) {
		t.Fatal("Cancel(running) = false")
	}
	waitDone(t, j)
	if j.State() != Canceled {
		t.Fatalf("state=%s err=%v", j.State(), j.Err())
	}
	if !errors.Is(j.Err(), o2.ErrCanceled) {
		t.Fatalf("err=%v, want ErrCanceled", j.Err())
	}
}

func TestJobTimeoutIsBudget(t *testing.T) {
	s := New(Options{Workers: 1, CacheEntries: -1})
	defer s.Shutdown(context.Background())

	r := Request{Files: map[string]string{"big.mini": genSource(320)}, Config: o2.DefaultConfig(), Timeout: time.Millisecond}
	j, err := s.Submit(r)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != Failed || j.ErrKind() != KindBudget {
		t.Fatalf("state=%s kind=%s err=%v", j.State(), j.ErrKind(), j.Err())
	}
}

func TestShutdownDrains(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 16, CacheEntries: -1})
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(req(racySrc))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s not finished after drain", j.ID)
		}
		if j.State() != Done {
			t.Fatalf("job %s state=%s err=%v", j.ID, j.State(), j.Err())
		}
	}
	if _, err := s.Submit(req(racySrc)); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Submit after shutdown: %v, want ErrShutdown", err)
	}
}

func TestShutdownDeadlineCancels(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 16, CacheEntries: -1})
	j, err := s.Submit(Request{Files: map[string]string{"big.mini": genSource(320)}, Config: o2.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	for j.State() == Queued {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	// The hard stop canceled the running job; it must still have drained.
	select {
	case <-j.Done():
	default:
		t.Fatal("running job not finished after hard shutdown")
	}
	if j.State() != Canceled {
		t.Fatalf("state=%s err=%v", j.State(), j.Err())
	}
}

func TestWaitAndGet(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(req(racySrc))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Wait(context.Background(), j.ID)
	if err != nil || got != j {
		t.Fatalf("Wait = %v, %v", got, err)
	}
	if _, err := s.Get("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Get(unknown) = %v", err)
	}
	if _, err := s.Wait(context.Background(), "nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Wait(unknown) = %v", err)
	}
}

func TestClassify(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want ErrKind
	}{
		{nil, KindNone},
		{fmt.Errorf("%w: boom", ErrParse), KindParse},
		{o2.ErrBudget, KindBudget},
		{o2.ErrCanceled, KindCanceled},
		{context.Canceled, KindCanceled},
		{errors.New("disk on fire"), KindInternal},
	} {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %s, want %s", tc.err, got, tc.want)
		}
	}
}

// TestSchedulerStress hammers a small scheduler from many goroutines with
// a mix of cached, uncached, canceled and rejected submissions. Run under
// -race in CI.
func TestSchedulerStress(t *testing.T) {
	s := New(Options{Workers: 4, QueueDepth: 8, CacheEntries: 4})
	sources := []string{racySrc, cleanSrc, genSource(2), genSource(3), genSource(4), genSource(5)}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				j, err := s.Submit(req(sources[(g+i)%len(sources)]))
				if errors.Is(err, ErrQueueFull) {
					time.Sleep(time.Millisecond)
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				if i%7 == 0 {
					s.Cancel(j.ID)
				}
				if i%3 == 0 {
					waitDone(t, j)
				}
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Completed == 0 {
		t.Fatal("stress run completed nothing")
	}
	t.Logf("stress: %+v", st)
}

func TestSubmitSources(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(Request{
		Sources: []o2.Source{{Name: "in.mini", Bytes: []byte(racySrc)}},
		Config:  o2.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.Label != "in.mini" {
		t.Fatalf("label = %q, want the source name", j.Label)
	}
	waitDone(t, j)
	if j.State() != Done || len(j.Summary().Races) != 1 {
		t.Fatalf("state=%s races=%d err=%v", j.State(), len(j.Summary().Races), j.Err())
	}

	_, err = s.Submit(Request{
		Sources: []o2.Source{
			{Name: "a.mini", Bytes: []byte(racySrc)},
			{Name: "a.mini", Bytes: []byte(cleanSrc)},
		},
		Config: o2.DefaultConfig(),
	})
	if !errors.Is(err, ErrParse) {
		t.Fatalf("duplicate source names: err = %v, want ErrParse", err)
	}
}

// fullQueue builds a 1-worker, depth-1 scheduler whose worker is pinned
// on a long job and whose queue token is held by a second job, so any
// further admission must wait.
func fullQueue(t *testing.T) (*Scheduler, *Job, *Job) {
	t.Helper()
	s := New(Options{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	blocker, err := s.Submit(Request{Files: map[string]string{"big.mini": genSource(320)}, Config: o2.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	for blocker.State() == Queued {
		time.Sleep(time.Millisecond)
	}
	filler, err := s.Submit(req(racySrc))
	if err != nil {
		t.Fatal(err)
	}
	return s, blocker, filler
}

func TestSubmitWaitBlocksThenAdmits(t *testing.T) {
	s, blocker, filler := fullQueue(t)
	defer s.Shutdown(context.Background())

	// A deadline-bound SubmitWait on a full queue gives up with the
	// context's error — not ErrQueueFull, which is Submit's signal.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.SubmitWait(ctx, req(cleanSrc)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SubmitWait(full queue, deadline) = %v, want DeadlineExceeded", err)
	}

	done := make(chan *Job, 1)
	go func() {
		j, err := s.SubmitWait(context.Background(), req(cleanSrc))
		if err != nil {
			t.Error(err)
		}
		done <- j
	}()
	select {
	case <-done:
		if blocker.State() == Running {
			t.Fatal("SubmitWait returned while the queue was full")
		}
	case <-time.After(20 * time.Millisecond):
	}
	waitDone(t, blocker)
	var waited *Job
	select {
	case waited = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SubmitWait never unblocked after the queue drained")
	}
	if waited == nil {
		t.Fatal("SubmitWait returned a nil job")
	}
	waitDone(t, filler)
	waitDone(t, waited)
	if waited.State() != Done {
		t.Fatalf("waited job state=%s err=%v", waited.State(), waited.Err())
	}
}

func TestSubmitWaitShutdownUnblocks(t *testing.T) {
	s, _, _ := fullQueue(t)

	errc := make(chan error, 1)
	go func() {
		_, err := s.SubmitWait(context.Background(), req(cleanSrc))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, ErrShutdown) {
		t.Fatalf("SubmitWait during shutdown = %v, want ErrShutdown", err)
	}
}
