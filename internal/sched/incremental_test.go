package sched

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// editOneBody returns src with one extra statement inside the first
// run() body — a one-unit edit as the scheduler's clients would make it.
func editOneBody(src string) string {
	return strings.Replace(src, "run() {", "run() { zq = null;", 1)
}

// TestIncrementalTwoLevelCache pins the cache layering: an identical
// resubmission is served by the whole-program cache without touching the
// unit store, while an edited resubmission misses the front cache and
// replays clean units out of the store.
func TestIncrementalTwoLevelCache(t *testing.T) {
	s := New(Options{Workers: 1, Incremental: true})
	defer s.Shutdown(context.Background())

	src := genSource(4)
	j1, err := s.Submit(req(src))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	if j1.Err() != nil {
		t.Fatal(j1.Err())
	}
	sum := j1.Summary()
	if sum.Inc == nil {
		t.Fatal("incremental scheduler produced no IncStats")
	}
	if sum.Inc.Fallback {
		t.Fatalf("cold run fell back: %s", sum.Inc.FallbackReason)
	}
	cold := s.Stats()
	if cold.UnitMisses == 0 || cold.UnitEntries == 0 {
		t.Fatalf("cold run did not populate the unit store: %+v", cold)
	}

	// Identical resubmission: whole-program hit, unit store untouched.
	j2, err := s.Submit(req(src))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if !j2.Summary().Cached {
		t.Error("identical resubmission should hit the result cache")
	}
	afterHit := s.Stats()
	if afterHit.UnitHits != cold.UnitHits || afterHit.UnitMisses != cold.UnitMisses {
		t.Errorf("whole-program hit touched the unit store: %+v -> %+v", cold, afterHit)
	}

	// Edited resubmission: front cache misses, clean units replay.
	j3, err := s.Submit(req(editOneBody(src)))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j3)
	if j3.Err() != nil {
		t.Fatal(j3.Err())
	}
	sum3 := j3.Summary()
	if sum3.Cached {
		t.Error("edited resubmission must not hit the result cache")
	}
	if sum3.Inc == nil || sum3.Inc.Fallback {
		t.Fatalf("edited resubmission fell back: %+v", sum3.Inc)
	}
	if sum3.Inc.UnitsReused == 0 {
		t.Errorf("edited resubmission reused no units: %+v", sum3.Inc)
	}
	if sum3.Inc.UnitsRecomputed >= sum3.Inc.UnitsTotal {
		t.Errorf("edited resubmission recomputed everything: %+v", sum3.Inc)
	}
	warm := s.Stats()
	if warm.UnitHits <= afterHit.UnitHits {
		t.Errorf("unit store hits did not grow on warm re-analysis: %+v -> %+v", afterHit, warm)
	}
	// The edit is inert, so the replayed-summary report must find the
	// same races the cold run did.
	if len(sum3.Races) != len(sum.Races) {
		t.Errorf("inert edit changed race count: %d -> %d", len(sum.Races), len(sum3.Races))
	}
}

// TestIncrementalParseErrorClassified: compile failures on the
// incremental path must classify as parse errors, same as the
// whole-program path.
func TestIncrementalParseErrorClassified(t *testing.T) {
	s := New(Options{Workers: 1, Incremental: true})
	defer s.Shutdown(context.Background())
	j, err := s.Submit(req("class {"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if kind := j.ErrKind(); kind != KindParse {
		t.Errorf("error kind = %q, want %q (err: %v)", kind, KindParse, j.Err())
	}
}

// TestIncrementalConcurrentJobs hammers one incremental scheduler with
// concurrent submissions of several distinct programs and their edits
// (run under -race in CI): the shared unit store takes interleaved
// traffic from all workers, and every result must match the race count
// of its program's cold run.
func TestIncrementalConcurrentJobs(t *testing.T) {
	s := New(Options{Workers: 4, QueueDepth: 256, CacheEntries: -1, Incremental: true})
	defer s.Shutdown(context.Background())

	srcs := []string{genSource(2), genSource(3), genSource(4)}
	want := make([]int, len(srcs))
	for i, src := range srcs {
		j, err := s.Submit(req(src))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if j.Err() != nil {
			t.Fatal(j.Err())
		}
		want[i] = len(j.Summary().Races)
	}

	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for i, src := range srcs {
			wg.Add(1)
			go func(i int, src string) {
				defer wg.Done()
				j, err := s.Submit(req(src))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				waitDone(t, j)
				if j.Err() != nil {
					t.Errorf("job: %v", j.Err())
					return
				}
				if got := len(j.Summary().Races); got != want[i] {
					t.Errorf("program %d: concurrent warm run found %d races, want %d", i, got, want[i])
				}
			}(i, src)
		}
	}
	wg.Wait()
	if st := s.Stats(); st.UnitHits == 0 {
		t.Error("concurrent warm runs never hit the unit store")
	}
}

// TestCacheKeySchemaPrefix guards the schema constant's presence in the
// whole-program key: the key must be stable for identical requests and
// distinct across sources (the schema itself can only vary across
// binaries, so stability is what is testable here).
func TestCacheKeySchemaPrefix(t *testing.T) {
	a, b := req(racySrc), req(racySrc)
	if cacheKey(a) != cacheKey(b) {
		t.Error("identical requests must share a cache key")
	}
	if cacheKey(req(racySrc)) == cacheKey(req(cleanSrc)) {
		t.Error("different sources must not share a cache key")
	}
}
