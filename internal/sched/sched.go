// Package sched is the batch-analysis job scheduler: a bounded worker
// pool that runs full O2 pipelines as jobs, with per-job context
// deadlines and cancellation, an admission queue with backpressure, a
// graceful shutdown that drains in-flight jobs, and an LRU result cache
// keyed by (source hash, config fingerprint) so repeated submissions of
// unchanged programs complete in microseconds. It is the engine behind
// `o2 serve` and `o2 batch` — the RacerD-style deployment shape of a
// static race detector analyzing many compilation units concurrently.
package sched

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"o2"
	"o2/internal/obs"
	"o2/internal/race"
	"o2/internal/summary"
)

// Sentinel errors of the scheduler.
var (
	// ErrQueueFull is returned by Submit when the admission queue is at
	// capacity — the backpressure signal. Callers should retry later
	// (HTTP clients see 429).
	ErrQueueFull = errors.New("sched: admission queue full")
	// ErrShutdown is returned by Submit after Shutdown started.
	ErrShutdown = errors.New("sched: scheduler is shut down")
	// ErrParse wraps minilang compile errors so clients can branch on the
	// failure class without string matching.
	ErrParse = errors.New("sched: parse error")
	// ErrUnknownJob is returned for job IDs the scheduler has never seen.
	ErrUnknownJob = errors.New("sched: unknown job")
)

// ErrKind classifies a job failure for exit codes and HTTP responses.
type ErrKind string

const (
	KindNone     ErrKind = ""         // no error
	KindParse    ErrKind = "parse"    // minilang compile error
	KindBudget   ErrKind = "budget"   // step/time budget or deadline exhausted
	KindCanceled ErrKind = "canceled" // job canceled (explicitly or by shutdown)
	KindInternal ErrKind = "internal" // anything else
)

// Classify maps an analysis error onto its ErrKind.
func Classify(err error) ErrKind {
	switch {
	case err == nil:
		return KindNone
	case errors.Is(err, ErrParse), errors.Is(err, o2.ErrCompile):
		return KindParse
	case errors.Is(err, o2.ErrBudget):
		return KindBudget
	case errors.Is(err, o2.ErrCanceled), errors.Is(err, context.Canceled):
		return KindCanceled
	}
	return KindInternal
}

// State is a job's lifecycle state.
type State string

const (
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"   // analysis completed (races or not)
	Failed   State = "failed" // parse error, budget, internal error
	Canceled State = "canceled"
)

// Options configures a Scheduler.
type Options struct {
	// Workers is the worker-pool size (number of concurrently running
	// jobs). 0 defaults to GOMAXPROCS.
	Workers int
	// QueueDepth is the admission-queue capacity; submissions beyond it
	// fail with ErrQueueFull. 0 defaults to 64.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (0 defaults to 128,
	// negative disables caching).
	CacheEntries int
	// DefaultTimeout is the per-job deadline applied when the request
	// carries none (0 = no deadline).
	DefaultTimeout time.Duration
	// CollectStats gives every job its own obs.Registry and attaches the
	// frozen RunStats report to the job summary.
	CollectStats bool
	// Incremental routes jobs through per-unit summary reuse: behind the
	// whole-program result cache sits a shared unit-summary store, so a
	// resubmission with one edited function replays every clean unit and
	// lowers only the dirty ones. Reports are identical to the full
	// pipeline by construction.
	Incremental bool
	// UnitCacheEntries bounds the per-unit summary store when Incremental
	// is set (0 defaults to summary.DefaultStoreEntries).
	UnitCacheEntries int
	// Log receives structured job-lifecycle events (submit, cache hit,
	// start, finish) with job/request IDs. Nil disables logging — every
	// log site is a single nil check, mirroring the obs layer's design.
	Log *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 128
	}
	return o
}

// Request is one analysis submission: a set of minilang sources plus the
// analysis configuration. The Config's Obs field is ignored (jobs get
// their own registry when Options.CollectStats is set).
type Request struct {
	// Files maps filename to minilang source; all files compile into one
	// program.
	Files map[string]string
	// Sources is the typed alternative to Files (the o2.Source form every
	// frontend shares); when set and Files is nil, the sources become the
	// program's files. Duplicate names are a parse error at submission.
	Sources []o2.Source
	// Config is the analysis configuration.
	Config o2.Config
	// Timeout overrides Options.DefaultTimeout for this job (0 = use the
	// scheduler default).
	Timeout time.Duration
	// Label is a caller-chosen display name (defaults to the first file).
	Label string
	// RequestID is the originating HTTP request's ID (empty for direct
	// submissions). It is propagated into the job's context (see
	// RequestIDFrom), carried on the Job, echoed in views and attached to
	// every log event, so a trace can be followed end to end.
	RequestID string
}

// requestIDKey is the context key carrying the originating request ID.
type requestIDKey struct{}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the request ID threaded through a job's context
// ("" when absent) — available to any pipeline stage run under the job.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// RaceAccess is one side of a reported race, rendered for transport.
type RaceAccess struct {
	Op     string `json:"op"`
	Pos    string `json:"pos"`
	Fn     string `json:"fn"`
	Origin string `json:"origin"`
}

// RaceInfo is one reported race, rendered for transport, with the full
// machine-readable witness (spawn chains, lockset derivation, HB-absence
// evidence) so API clients can triage without re-running the analysis.
type RaceInfo struct {
	Location string        `json:"location"`
	A        RaceAccess    `json:"a"`
	B        RaceAccess    `json:"b"`
	Witness  *race.Witness `json:"witness,omitempty"`
}

// Summary is a job's result: the race report projected onto plain data
// (the full o2.Result holds the whole points-to state and is not retained
// by the scheduler), phase timings, and the observability report.
type Summary struct {
	Races    []RaceInfo    `json:"races"`
	TimedOut bool          `json:"timed_out,omitempty"` // pair budget tripped: races are a lower bound
	PTANS    int64         `json:"pta_ns"`
	OSANS    int64         `json:"osa_ns"`
	SHBNS    int64         `json:"shb_ns"`
	DetectNS int64         `json:"detect_ns"`
	TotalNS  int64         `json:"total_ns"`
	Stats    *obs.RunStats `json:"stats,omitempty"`
	// Cached reports that this summary was served from the result cache;
	// the timings are those of the original (cold) run.
	Cached bool `json:"cached,omitempty"`
	// Inc reports per-unit summary reuse when the scheduler runs
	// incrementally (nil on the whole-program path).
	Inc *o2.IncStats `json:"incremental,omitempty"`
}

func summarize(res *o2.Result) *Summary {
	s := &Summary{
		Races:    []RaceInfo{},
		TimedOut: res.Report.TimedOut,
		PTANS:    int64(res.PTATime),
		OSANS:    int64(res.OSATime),
		SHBNS:    int64(res.SHBTime),
		DetectNS: int64(res.DetectTime),
		TotalNS:  int64(res.TotalTime()),
		Stats:    res.RunStats,
		Inc:      res.Inc,
	}
	races := res.Races()
	for i := range races {
		r := &races[i]
		mk := func(write bool, pos, fn string, origin string) RaceAccess {
			op := "read"
			if write {
				op = "write"
			}
			return RaceAccess{Op: op, Pos: pos, Fn: fn, Origin: origin}
		}
		s.Races = append(s.Races, RaceInfo{
			Location: r.Key.String(),
			A:        mk(r.A.Write, r.A.Pos.String(), r.A.Fn, res.Analysis.Origins.Get(r.A.Origin).String()),
			B:        mk(r.B.Write, r.B.Pos.String(), r.B.Fn, res.Analysis.Origins.Get(r.B.Origin).String()),
			Witness:  race.BuildWitness(res.Analysis, res.Graph, r),
		})
	}
	return s
}

// withCached returns a shallow copy flagged as cache-served.
func (s *Summary) withCached() *Summary {
	cp := *s
	cp.Cached = true
	return &cp
}

// Job is one scheduled analysis. All accessors are safe for concurrent
// use; Done() closes when the job reaches a terminal state.
type Job struct {
	ID    string
	Label string
	// RequestID is the originating HTTP request ID ("" for direct
	// submissions), echoed in views so API clients can correlate a job
	// with the request that created it.
	RequestID string

	mu       sync.Mutex
	state    State
	summary  *Summary
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
	done     chan struct{}
	progress *obs.Progress
}

// Progress returns the job's live progress tracker (nil until the job
// starts running; obs.Progress is nil-safe, so callers may snapshot the
// result unconditionally).
func (j *Job) Progress() *obs.Progress {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.progress
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Summary returns the result summary (nil until Done).
func (j *Job) Summary() *Summary {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.summary
}

// Err returns the terminal error (nil while running or on success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ErrKind returns the classified failure kind.
func (j *Job) ErrKind() ErrKind { return Classify(j.Err()) }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wall returns queued→finished wall time (running time if not finished).
func (j *Job) Wall() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished.IsZero() {
		return time.Since(j.created)
	}
	return j.finished.Sub(j.created)
}

func (j *Job) finish(state State, sum *Summary, err error) {
	j.mu.Lock()
	if j.state == Done || j.state == Failed || j.state == Canceled {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.summary = sum
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// View is a transportable snapshot of a job.
type View struct {
	ID        string   `json:"id"`
	Label     string   `json:"label,omitempty"`
	RequestID string   `json:"request_id,omitempty"`
	State     State    `json:"state"`
	Error     string   `json:"error,omitempty"`
	ErrKind   ErrKind  `json:"error_kind,omitempty"`
	WallNS    int64    `json:"wall_ns"`
	Summary   *Summary `json:"summary,omitempty"`
	RaceCnt   int      `json:"race_count"`
	Finished  bool     `json:"finished"`
}

// View snapshots the job for transport.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{ID: j.ID, Label: j.Label, RequestID: j.RequestID, State: j.state, Summary: j.summary}
	if j.err != nil {
		v.Error = j.err.Error()
		v.ErrKind = Classify(j.err)
	}
	if j.summary != nil {
		v.RaceCnt = len(j.summary.Races)
	}
	if j.finished.IsZero() {
		v.WallNS = int64(time.Since(j.created))
	} else {
		v.WallNS = int64(j.finished.Sub(j.created))
		v.Finished = true
	}
	return v
}

// Stats is a point-in-time snapshot of scheduler health, served by
// GET /statsz.
type Stats struct {
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queue_depth"`
	QueueLen   int   `json:"queue_len"`
	InFlight   int64 `json:"in_flight"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`

	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	CacheEntries   int   `json:"cache_entries"`

	// Unit* mirror the per-unit summary store (all zero unless the
	// scheduler runs with Options.Incremental). A unit miss is exactly a
	// dirty unit, so UnitMisses/(UnitHits+UnitMisses) is the fleet-wide
	// dirty ratio.
	UnitHits      int64 `json:"unit_hits,omitempty"`
	UnitMisses    int64 `json:"unit_misses,omitempty"`
	UnitEvictions int64 `json:"unit_evictions,omitempty"`
	UnitEntries   int   `json:"unit_entries,omitempty"`
}

// Scheduler is the bounded-worker batch analysis service.
type Scheduler struct {
	opts  Options
	queue chan *Job
	// sem is the admission semaphore: exactly one token is held per
	// queued job (released when a worker dequeues it), so a queue send
	// under a token never blocks. Submit tries the token non-blocking
	// (ErrQueueFull backpressure); SubmitWait blocks on it — the
	// submit-side flow control the streaming frontends rely on.
	sem  chan struct{}
	stop chan struct{} // closed by Shutdown to unblock SubmitWait

	mu     sync.Mutex
	jobs   map[string]*Job
	reqs   map[string]Request // pending request payloads, removed once run
	order  []string
	closed bool
	seq    int64

	cache *lru
	units *summary.Store // per-unit summaries behind the result cache; nil unless Options.Incremental
	wg    sync.WaitGroup

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	rejected  atomic.Int64
	inFlight  atomic.Int64
}

// New creates a scheduler and starts its worker pool.
func New(opts Options) *Scheduler {
	opts = opts.withDefaults()
	s := &Scheduler{
		opts:  opts,
		queue: make(chan *Job, opts.QueueDepth),
		sem:   make(chan struct{}, opts.QueueDepth),
		stop:  make(chan struct{}),
		jobs:  map[string]*Job{},
		reqs:  map[string]Request{},
	}
	if opts.CacheEntries > 0 {
		s.cache = newLRU(opts.CacheEntries)
	}
	if opts.Incremental {
		s.units = summary.NewStore(opts.UnitCacheEntries)
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// cacheKey derives the result-cache key: the summary schema version,
// then the SHA-256 of the sorted (filename, source) pairs combined with
// the config fingerprint. Two requests collide only if both the full
// source hash and every report-affecting config field agree. The schema
// version sits in front of the whole-program key for the same reason it
// sits inside every per-unit key: a binary with a different summary
// format must never serve results cached by an older one.
func cacheKey(req Request) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema:%d:", summary.Schema)
	names := make([]string, 0, len(req.Files))
	for n := range req.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "%d:%s:%d:", len(n), n, len(req.Files[n]))
		h.Write([]byte(req.Files[n]))
	}
	h.Write([]byte(req.Config.Fingerprint()))
	return hex.EncodeToString(h.Sum(nil))
}

// Submit admits a job. It never blocks: a full queue returns ErrQueueFull
// (backpressure), a shut-down scheduler returns ErrShutdown. A result-
// cache hit completes the job immediately — without entering the queue —
// in microseconds.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	return s.submit(context.Background(), req, false)
}

// SubmitWait admits a job like Submit, but blocks while the admission
// queue is full until space frees, ctx ends (returning ctx's error), or
// the scheduler shuts down. It is the submit-side flow control of the
// streaming frontends: a corpus producer calls SubmitWait in a loop and
// the bounded queue throttles it to the workers' pace instead of
// forcing a retry loop around ErrQueueFull.
func (s *Scheduler) SubmitWait(ctx context.Context, req Request) (*Job, error) {
	return s.submit(ctx, req, true)
}

func (s *Scheduler) submit(ctx context.Context, req Request, wait bool) (*Job, error) {
	if len(req.Files) == 0 && len(req.Sources) > 0 {
		files := make(map[string]string, len(req.Sources))
		for _, src := range req.Sources {
			if _, dup := files[src.Name]; dup {
				return nil, fmt.Errorf("%w: duplicate source %q", ErrParse, src.Name)
			}
			files[src.Name] = string(src.Bytes)
		}
		req.Files = files
	}
	if len(req.Files) == 0 {
		return nil, fmt.Errorf("%w: no files", ErrParse)
	}
	if req.Label == "" {
		names := make([]string, 0, len(req.Files))
		for n := range req.Files {
			names = append(names, n)
		}
		sort.Strings(names)
		req.Label = names[0]
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, ErrShutdown
	}
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("job-%06d", s.seq),
		Label:     req.Label,
		RequestID: req.RequestID,
		state:     Queued,
		created:   time.Now(),
		done:      make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()

	// Cache lookup before admission: a hit never consumes a worker or a
	// queue token. A second lookup happens at dispatch (runJob) so that
	// identical requests submitted back-to-back — before the first one
	// finished — still hit once the first result lands. Misses are
	// counted there, when a job actually runs.
	if s.cache != nil {
		if sum, ok := s.cache.get(cacheKey(req)); ok {
			s.submitted.Add(1)
			s.completed.Add(1)
			j.finish(Done, sum.withCached(), nil)
			s.log("job cache hit", j, "races", len(sum.Races))
			return j, nil
		}
	}

	// Acquire an admission token; holding one guarantees queue space.
	drop := func(err error) (*Job, error) {
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, err
	}
	if wait {
		select {
		case s.sem <- struct{}{}:
		case <-s.stop:
			return drop(ErrShutdown)
		case <-ctx.Done():
			return drop(ctx.Err())
		}
	} else {
		select {
		case s.sem <- struct{}{}:
		default:
			return drop(ErrQueueFull)
		}
	}

	s.mu.Lock()
	if s.closed { // Shutdown raced the token acquisition
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		<-s.sem // hand the token back
		s.rejected.Add(1)
		return nil, ErrShutdown
	}
	s.reqs[j.ID] = req
	s.queue <- j // never blocks: one token per queued job
	s.mu.Unlock()
	s.submitted.Add(1)
	s.log("job queued", j, "files", len(req.Files))
	return j, nil
}

// Get returns a job by ID.
func (s *Scheduler) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// Wait blocks until the job finishes or ctx ends.
func (s *Scheduler) Wait(ctx context.Context, id string) (*Job, error) {
	j, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.Done():
		return j, nil
	case <-ctx.Done():
		return j, ctx.Err()
	}
}

// Cancel cancels a job: a queued job is marked canceled before it runs, a
// running job's context is canceled (the pipeline returns within
// milliseconds). Returns false for unknown or already-finished jobs.
func (s *Scheduler) Cancel(id string) bool {
	j, err := s.Get(id)
	if err != nil {
		return false
	}
	j.mu.Lock()
	switch j.state {
	case Queued:
		j.state = Canceled
		j.err = o2.ErrCanceled
		j.finished = time.Now()
		j.mu.Unlock()
		close(j.done)
		s.canceled.Add(1)
		return true
	case Running:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	}
	j.mu.Unlock()
	return false
}

// Jobs returns snapshots of every known job in submission order.
func (s *Scheduler) Jobs() []View {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]View, len(jobs))
	for i, j := range jobs {
		out[i] = j.View()
	}
	return out
}

// log emits a structured job-lifecycle event when a logger is
// configured. Every record carries the job ID, label and (when present)
// the originating request ID; extra attrs follow slog's key/value
// convention.
func (s *Scheduler) log(msg string, j *Job, args ...any) {
	if s.opts.Log == nil {
		return
	}
	attrs := make([]any, 0, 6+len(args))
	attrs = append(attrs, "job", j.ID, "label", j.Label)
	if j.RequestID != "" {
		attrs = append(attrs, "request_id", j.RequestID)
	}
	attrs = append(attrs, args...)
	s.opts.Log.Info(msg, attrs...)
}

// StateCounts returns the number of known jobs in each lifecycle state —
// the `o2_sched_jobs{state="..."}` gauge behind GET /metrics.
func (s *Scheduler) StateCounts() map[State]int {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	counts := map[State]int{Queued: 0, Running: 0, Done: 0, Failed: 0, Canceled: 0}
	for _, j := range jobs {
		counts[j.State()]++
	}
	return counts
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() Stats {
	st := Stats{
		Workers:    s.opts.Workers,
		QueueDepth: s.opts.QueueDepth,
		QueueLen:   len(s.queue),
		InFlight:   s.inFlight.Load(),
		Submitted:  s.submitted.Load(),
		Completed:  s.completed.Load(),
		Failed:     s.failed.Load(),
		Canceled:   s.canceled.Load(),
		Rejected:   s.rejected.Load(),
	}
	if s.cache != nil {
		hits, misses, evictions, entries := s.cache.stats()
		st.CacheHits, st.CacheMisses, st.CacheEvictions, st.CacheEntries = hits, misses, evictions, entries
	}
	if s.units != nil {
		ust := s.units.Stats()
		st.UnitHits, st.UnitMisses, st.UnitEvictions, st.UnitEntries =
			ust.Hits, ust.Misses, ust.Evictions, ust.Entries
	}
	return st
}

// Shutdown stops admission and drains: queued and running jobs finish
// normally. If ctx ends before the drain completes, every remaining job
// is canceled and Shutdown waits for the (now fast) drain, returning the
// context's error.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	close(s.stop)
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	// Hard stop: cancel everything still alive, then wait out the drain.
	s.mu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	s.mu.Unlock()
	<-drained
	return ctx.Err()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		<-s.sem // dequeue releases the admission token
		s.mu.Lock()
		req, ok := s.reqs[j.ID]
		delete(s.reqs, j.ID)
		s.mu.Unlock()
		if !ok || j.State() != Queued {
			continue // canceled while queued
		}
		s.runJob(j, req)
	}
}

func (s *Scheduler) runJob(j *Job, req Request) {
	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.opts.DefaultTimeout
	}
	ctx, cancel := context.WithCancel(context.Background())
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	}
	defer cancel()
	// Thread the originating request ID into the pipeline's context so any
	// stage (and its logs) can be correlated with the HTTP request.
	ctx = WithRequestID(ctx, req.RequestID)

	prog := obs.NewProgress()
	j.mu.Lock()
	if j.state != Queued {
		j.mu.Unlock()
		return
	}
	j.state = Running
	j.started = time.Now()
	j.cancel = cancel
	j.progress = prog
	j.mu.Unlock()
	s.log("job started", j)

	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	key := cacheKey(req)
	if s.cache != nil {
		if sum, ok := s.cache.get(key); ok {
			s.completed.Add(1)
			j.finish(Done, sum.withCached(), nil)
			return
		}
		s.cache.miss()
	}

	cfg := req.Config
	if s.opts.CollectStats {
		cfg.Obs = obs.New()
	} else {
		cfg.Obs = nil
	}
	cfg.Progress = prog

	var res *o2.Result
	var err error
	if s.units != nil {
		// Incremental: the whole-program cache above already missed, so
		// replay clean units out of the shared summary store and lower
		// only the dirty ones. Compile errors surface as o2.ErrCompile,
		// which Classify maps to the parse kind.
		res, err = o2.AnalyzeIncremental(ctx, req.Files, cfg, s.units)
	} else {
		res, err = o2.AnalyzeSources(ctx, sourcesOf(req.Files), cfg)
	}
	if errors.Is(err, o2.ErrCompile) {
		// Keep the scheduler's own parse sentinel on the job so clients
		// branching on ErrParse keep working across both pipelines.
		err = fmt.Errorf("%w: %v", ErrParse, err)
	}
	switch Classify(err) {
	case KindNone:
		sum := summarize(res)
		if s.cache != nil {
			s.cache.put(key, sum)
		}
		s.completed.Add(1)
		j.finish(Done, sum, nil)
		s.log("job done", j, "races", len(sum.Races), "wall", j.Wall())
	case KindCanceled:
		s.canceled.Add(1)
		j.finish(Canceled, nil, err)
		s.log("job canceled", j, "wall", j.Wall())
	default:
		s.failed.Add(1)
		j.finish(Failed, nil, err)
		s.log("job failed", j, "kind", string(Classify(err)), "error", err, "wall", j.Wall())
	}
}

// sourcesOf lowers a Files map onto the canonical typed form, in sorted
// name order so the resulting program is deterministic.
func sourcesOf(files map[string]string) []o2.Source {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	srcs := make([]o2.Source, 0, len(names))
	for _, n := range names {
		srcs = append(srcs, o2.Source{Name: n, Bytes: []byte(files[n])})
	}
	return srcs
}
