package race

import (
	"fmt"
	"sort"
	"strings"

	"o2/internal/lockset"
	"o2/internal/pta"
	"o2/internal/shb"
)

// Explain renders a witness for a reported race: where each origin was
// spawned, what locks each access held, and why neither access happens
// before the other. This is the report a developer reads to judge the
// warning, mirroring the per-race discussions of the paper's §5.4. The
// text is a rendering of the structured Witness (see BuildWitness), so
// the human and machine reports can never disagree.
func Explain(a *pta.Analysis, g *shb.Graph, r *Race) string {
	return BuildWitness(a, g, r).Text()
}

// Text renders the witness as the human-readable explanation.
func (w *Witness) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "race on %s\n", w.Location)
	explainSide(&sb, "first ", w.A)
	explainSide(&sb, "second", w.B)

	switch w.Locks.Verdict {
	case LocksNone:
		sb.WriteString("  locks: neither access holds any lock\n")
	case LocksUnprotected:
		sb.WriteString("  locks: one access is unprotected\n")
	default:
		fmt.Fprintf(&sb, "  locks: disjoint locksets %v vs %v — no common lock\n",
			w.Locks.A, w.Locks.B)
	}

	switch w.Ordering.Verdict {
	case OrderReplicated:
		sb.WriteString("  ordering: both accesses run in concurrent instances of a replicated origin\n")
	case OrderNoHBPath:
		sb.WriteString("  ordering: no happens-before path in either direction (no join, no start ordering,\n")
		sb.WriteString("            no notify→wait edge connects the two accesses)\n")
	default:
		sb.WriteString("  ordering: partially ordered (reported due to replication)\n")
	}
	if len(w.Ordering.SyncEdges) > 0 {
		sb.WriteString("            sync edges between the racing origins (none orders both accesses):\n")
		for _, e := range w.Ordering.SyncEdges {
			fmt.Fprintf(&sb, "              %s\n", e)
		}
	}
	return sb.String()
}

func explainSide(w *strings.Builder, label string, acc WitnessAccess) {
	fmt.Fprintf(w, "  %s: %s at %s in %s\n", label, acc.Op, acc.Pos, acc.Fn)
	if acc.Origin.Kind == "main" {
		fmt.Fprintf(w, "          on the main origin\n")
		return
	}
	fmt.Fprintf(w, "          on %s origin %s (spawned at %s) attrs=%s\n",
		acc.Origin.Kind, acc.Origin.Name, acc.Origin.SpawnPos, acc.Origin.Attrs)
}

// lockNames resolves lock object IDs to their rendered names, sorted so
// witness text and JSON are byte-stable across runs. The Android
// event-loop sentinel is not a heap object and gets a symbolic name.
func lockNames(a *pta.Analysis, objs []uint32) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		if o == lockset.GlobalEventLock {
			out[i] = "<android-event-loop>"
			continue
		}
		out[i] = a.ObjString(pta.ObjID(o))
	}
	sort.Strings(out)
	return out
}

func op(write bool) string {
	if write {
		return "write"
	}
	return "read"
}
