package race

import (
	"fmt"
	"strings"

	"o2/internal/pta"
	"o2/internal/shb"
)

// Explain renders a witness for a reported race: where each origin was
// spawned, what locks each access held, and why neither access happens
// before the other. This is the report a developer reads to judge the
// warning, mirroring the per-race discussions of the paper's §5.4.
func Explain(a *pta.Analysis, g *shb.Graph, r *Race) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "race on %s\n", r.Key)
	explainSide(&sb, a, g, "first ", r.A)
	explainSide(&sb, a, g, "second", r.B)

	na, nb := &g.Nodes[r.A.Node], &g.Nodes[r.B.Node]
	la, lb := g.Locksets.Set(na.Locks), g.Locksets.Set(nb.Locks)
	switch {
	case len(la) == 0 && len(lb) == 0:
		sb.WriteString("  locks: neither access holds any lock\n")
	case len(la) == 0 || len(lb) == 0:
		sb.WriteString("  locks: one access is unprotected\n")
	default:
		fmt.Fprintf(&sb, "  locks: disjoint locksets %v vs %v — no common lock\n",
			lockNames(a, la), lockNames(a, lb))
	}

	sa, sb2 := na.Seg, nb.Seg
	switch {
	case sa == sb2 && a.Origins.Get(g.Origin(r.A.Node)).Replicated:
		sb.WriteString("  ordering: both accesses run in concurrent instances of a replicated origin\n")
	case !g.HappensBefore(r.A.Node, r.B.Node) && !g.HappensBefore(r.B.Node, r.A.Node):
		sb.WriteString("  ordering: no happens-before path in either direction (no join, no start ordering,\n")
		sb.WriteString("            no notify→wait edge connects the two accesses)\n")
	default:
		sb.WriteString("  ordering: partially ordered (reported due to replication)\n")
	}
	return sb.String()
}

func explainSide(w *strings.Builder, a *pta.Analysis, g *shb.Graph, label string, acc Access) {
	org := a.Origins.Get(acc.Origin)
	kind := org.Kind.String()
	fmt.Fprintf(w, "  %s: %s at %s in %s\n", label, op(acc.Write), acc.Pos, acc.Fn)
	switch {
	case org.ID == pta.MainOrigin:
		fmt.Fprintf(w, "          on the main origin\n")
	default:
		fmt.Fprintf(w, "          on %s origin %s (spawned at %s) attrs=%s\n",
			kind, org, org.Pos, a.OriginAttrs(org.ID))
	}
}

func lockNames(a *pta.Analysis, objs []uint32) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = a.ObjString(pta.ObjID(o))
	}
	return out
}

func op(write bool) string {
	if write {
		return "write"
	}
	return "read"
}
