// Package race implements O2's static data race detection engine (§4): a
// hybrid happens-before + lockset analysis over the SHB graph, restricted
// to OSA's origin-shared locations, with the paper's three sound
// optimizations — integer-ID intra-origin happens-before, canonical
// lockset IDs with cached intersections, and lock-region merging. Each
// optimization can be disabled for the ablation benchmarks; disabling all
// of them (plus the OSA filter) yields the D4-style naive baseline.
package race

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"o2/internal/ir"
	"o2/internal/lockset"
	"o2/internal/obs"
	"o2/internal/osa"
	"o2/internal/pta"
	"o2/internal/shb"
)

// Options toggles the engine's optimizations (all true = full O2).
type Options struct {
	// RegionMerge merges accesses to the same location within one lock
	// region into a representative access (§4.1 third optimization).
	RegionMerge bool
	// CanonicalLocksets uses canonical lockset IDs with cached
	// intersections; when false, locksets are intersected element-wise on
	// every check (§4.1 second optimization).
	CanonicalLocksets bool
	// HBCache caches cross-origin reachability frontiers; when false every
	// pair does a fresh graph traversal (§4.1 first optimization — the
	// intra-origin integer comparison itself is structural and stays).
	HBCache bool
	// OSAFilter restricts checking to OSA's origin-shared locations; when
	// false all locations with accesses from two segments are checked.
	OSAFilter bool
	// NoHB disables the happens-before ordering check entirely (beyond
	// NoHB≠!HBCache: HBCache merely switches the query implementation).
	// Every cross-segment candidate pair then races unless lock-protected —
	// the lockset-only ablation used by the Table 10 category tests to show
	// which analysis suppresses which false-positive class. Unsound as a
	// detector configuration; never enabled by O2Options or NaiveOptions.
	NoHB bool
	// NoLockset disables the common-lock check: lock-protected pairs are
	// reported unless happens-before ordered — the HB-only ablation.
	NoLockset bool
	// PairBudget bounds the number of candidate pairs examined (0 =
	// unlimited); exceeding it stops detection and sets Report.TimedOut —
	// the analogue of the paper's ">4h" detection cells. The budget is a
	// single shared atomic counter, so it bounds the total work across all
	// workers in parallel mode.
	PairBudget int64
	// Workers sets the detection worker-pool size: per-location candidate
	// groups are sharded across Workers goroutines. 0 defaults to
	// GOMAXPROCS; 1 runs the sequential path. For a fixed input the report
	// is identical for every worker count (see Detect).
	Workers int
	// Obs receives the detection span (with one child span per worker
	// shard), the work counters and the worker-utilization gauges. Nil
	// disables observability; the pairwise hot loop then costs the same
	// as an uninstrumented build (see BenchmarkParallelDetectObs).
	Obs *obs.Registry
	// Progress, when set, receives live detection progress: the total
	// candidate-pair estimate up front, then examined-pair and race
	// counts flushed on the cancelStride tick (never per pair). Nil
	// disables progress; like Obs, the disabled hot path is one branch
	// per stride.
	Progress *obs.Progress
	// Attr, when set, receives per-origin pair/HB-query/race counts for
	// the driver's Introspection section (see NewAttribution). Nil
	// disables attribution.
	Attr *Attribution
}

// Attribution accumulates per-origin detection counts, indexed by
// pta.OriginID: candidate pairs and happens-before queries involving
// each origin (a pair counts once per distinct participating origin) and
// deduplicated races. Counts merge additively from worker-local tallies,
// so they are identical at any worker count. Allocate with
// NewAttribution sized to the origin table.
type Attribution struct {
	Pairs     []int64
	HBQueries []int64
	// Races is updated only on the (single-threaded) merge path, in
	// deterministic group order.
	Races []int64

	mu sync.Mutex // guards Pairs/HBQueries during worker merges
}

// NewAttribution returns an attribution sink for numOrigins origins.
func NewAttribution(numOrigins int) *Attribution {
	return &Attribution{
		Pairs:     make([]int64, numOrigins),
		HBQueries: make([]int64, numOrigins),
		Races:     make([]int64, numOrigins),
	}
}

// merge folds one worker-local tally in under the lock.
func (at *Attribution) merge(t *originTally) {
	if at == nil || t == nil {
		return
	}
	at.mu.Lock()
	for i, v := range t.pairs {
		at.Pairs[i] += v
	}
	for i, v := range t.hbq {
		at.HBQueries[i] += v
	}
	at.mu.Unlock()
}

// originTally is one worker's private per-origin counters; merged into
// the shared Attribution when the worker exits, so the hot loop touches
// no shared state.
type originTally struct {
	pairs, hbq []int64
}

func (opt *Options) newTally() *originTally {
	if opt.Attr == nil {
		return nil
	}
	return &originTally{
		pairs: make([]int64, len(opt.Attr.Pairs)),
		hbq:   make([]int64, len(opt.Attr.HBQueries)),
	}
}

// tallyPair credits a pair to each distinct participating origin.
func tallyPair(cnt []int64, g *shb.Graph, an, bn int) {
	oa, ob := g.Origin(an), g.Origin(bn)
	if int(oa) < len(cnt) {
		cnt[oa]++
	}
	if ob != oa && int(ob) < len(cnt) {
		cnt[ob]++
	}
}

// O2Options is the full-optimization configuration.
func O2Options() Options {
	return Options{RegionMerge: true, CanonicalLocksets: true, HBCache: true, OSAFilter: true}
}

// NaiveOptions is the D4-style baseline: pairwise checking with no
// representative merging, no canonical lockset cache and no HB cache.
func NaiveOptions() Options { return Options{} }

// Access describes one side of a race.
type Access struct {
	Node   int
	Origin pta.OriginID
	Write  bool
	Pos    ir.Pos
	Fn     string
}

func (a Access) String() string {
	op := "read"
	if a.Write {
		op = "write"
	}
	return fmt.Sprintf("%s at %s in %s [origin O%d]", op, a.Pos, a.Fn, a.Origin)
}

// Race is a reported data race on a memory location.
type Race struct {
	Key  osa.Key
	A, B Access
}

func (r *Race) String() string {
	return fmt.Sprintf("race on %s:\n  %s\n  %s", r.Key, r.A, r.B)
}

// Report is the detection result with work counters for the benchmarks.
type Report struct {
	Races []Race
	// PairsChecked counts candidate pairs examined after grouping.
	PairsChecked int64
	// HBQueries and LockChecks count the underlying relation queries.
	HBQueries  int64
	LockChecks int64
	// AccessNodes and Representatives count nodes before and after
	// lock-region merging.
	AccessNodes     int
	Representatives int
	// Groups counts candidate locations (post-filter).
	Groups int
	// Per-optimization skip counters: candidates removed before pairwise
	// checking (FilteredOSA by the OSA filter, FilteredVolatile as
	// synchronization accesses, MergedRegion by lock-region merging) and
	// pairs skipped inside the pairwise loop (read/read pairs and
	// same-segment ordered pairs).
	FilteredOSA      int64
	FilteredVolatile int64
	MergedRegion     int64
	SkippedReadRead  int64
	SkippedSameSeg   int64
	// TimedOut reports that the PairBudget was exhausted; Races is then a
	// lower bound on the full result. The bound is consistent in both
	// sequential and parallel modes: every candidate group that finished
	// before the budget tripped contributes all of its races (no completed
	// worker's results are dropped), the group in which the budget tripped
	// contributes the races found up to that point, and PairsChecked never
	// exceeds PairBudget.
	TimedOut bool
	Elapsed  time.Duration
}

// Detect runs race detection over a solved analysis, its sharing result
// and SHB graph. With Options.Workers > 1 the per-location candidate
// groups are sharded across a worker pool; the merged report is identical
// to the sequential one for any worker count (groups are merged back in
// sorted key order, so global dedup sees races in the same order the
// sequential pass would). Detect only reads the analysis and graph, so
// concurrent Detect calls on the same solved inputs are safe.
func Detect(a *pta.Analysis, sharing *osa.Result, g *shb.Graph, opt Options) *Report {
	rep, _ := DetectCtx(context.Background(), a, sharing, g, opt)
	return rep
}

// DetectCtx is Detect under a context. pta.WatchCancel bridges the
// context's end into an atomic latch that the pairwise loop polls every
// cancelStride iterations and the group-claim loop polls between groups —
// so cancellation stops detection within one stride of pair checks
// (microseconds), in both sequential and parallel modes. The partial
// report is returned alongside pta.ErrCanceled (or pta.ErrBudget when the
// context deadline expired); it is a valid lower bound but not the full
// result.
func DetectCtx(ctx context.Context, a *pta.Analysis, sharing *osa.Result, g *shb.Graph, opt Options) (*Report, error) {
	sp := opt.Obs.StartSpan("detect")
	start := time.Now()
	rep := &Report{}
	bud := &pairBudget{limit: opt.PairBudget}
	latch, stopWatch := pta.WatchCancel(ctx)
	bud.latch = latch
	defer stopWatch()
	grp := collect(a, g, sharing, opt, rep, bud)
	if opt.Progress != nil {
		// The pairwise loop over group i iterates n·(n+1)/2 ticks — the
		// exact denominator of the examined-pair progress fraction.
		var total int64
		for i := range grp.keys {
			n := int64(grp.off[i+1] - grp.off[i])
			total += n * (n + 1) / 2
		}
		opt.Progress.SetPairsTotal(total)
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(grp.keys) {
		workers = len(grp.keys)
	}
	var busyNS int64
	if workers > 1 {
		busyNS = detectParallel(a, g, opt, rep, grp, bud, workers, sp)
	} else {
		workers = 1
		detectSequential(a, g, opt, rep, grp, bud)
	}
	rep.TimedOut = bud.isTripped()
	rep.Groups = len(grp.keys)
	sort.Slice(rep.Races, func(i, j int) bool { return raceLess(&rep.Races[i], &rep.Races[j]) })
	rep.Elapsed = time.Since(start)
	if workers == 1 {
		busyNS = int64(rep.Elapsed)
	}
	rep.recordObs(opt.Obs, workers, busyNS)
	sp.End()
	if err := ctx.Err(); err != nil {
		return rep, pta.CtxErr(err)
	}
	return rep, nil
}

// recordObs publishes the report's work counters and the worker-pool
// utilization into the registry (no-op when disabled).
func (rep *Report) recordObs(reg *obs.Registry, workers int, busyNS int64) {
	if reg == nil {
		return
	}
	reg.Counter("race.pairs_checked").Set(rep.PairsChecked)
	reg.Counter("race.hb_queries").Set(rep.HBQueries)
	reg.Counter("race.lock_checks").Set(rep.LockChecks)
	reg.Counter("race.skipped_read_read").Set(rep.SkippedReadRead)
	reg.Counter("race.skipped_same_seg").Set(rep.SkippedSameSeg)
	reg.Counter("race.filtered_osa").Set(rep.FilteredOSA)
	reg.Counter("race.filtered_volatile").Set(rep.FilteredVolatile)
	reg.Counter("race.merged_region").Set(rep.MergedRegion)
	reg.SetGauge("race.access_nodes", int64(rep.AccessNodes))
	reg.SetGauge("race.representatives", int64(rep.Representatives))
	reg.SetGauge("race.groups", int64(rep.Groups))
	reg.SetGauge("race.races", int64(len(rep.Races)))
	if rep.TimedOut {
		reg.SetGauge("race.timed_out", 1)
	}
	reg.SetGauge("race.workers", int64(workers))
	reg.SetGauge("race.worker_busy_ns", busyNS)
	reg.SetGauge("race.detect_wall_ns", int64(rep.Elapsed))
}

// detectSequential is the Workers == 1 path: groups are checked one after
// another in sorted key order, stopping at the first budget trip. One
// racePair buffer is reused across every group (each group's view is
// materialized by mergeGroup before the next check overwrites it), so the
// steady-state loop allocates nothing.
func detectSequential(a *pta.Analysis, g *shb.Graph, opt Options, rep *Report, grp *grouped, bud *pairBudget) {
	seen := map[raceSig]bool{}
	var buf []racePair
	tally := opt.newTally()
	for i, k := range grp.keys {
		if bud.stopped() {
			break
		}
		var gr groupResult
		gr, buf = checkGroup(a, g, k, grp.group(i), opt, bud, buf[:0], tally)
		mergeGroup(rep, g, k, &gr, seen, opt.Attr, opt.Progress)
	}
	opt.Attr.merge(tally)
}

// racePair is a racing access pair in compact form: the two SHB node IDs.
// The hot loop appends these (8 bytes, into a reused arena) instead of
// materialized Race structs (~170 bytes of strings and positions each,
// >90% of which the cross-group dedup would discard); mergeGroup expands
// only the pairs whose signature is unseen.
type racePair struct {
	a, b int32
}

// groupResult is the outcome of checking one candidate group. Each worker
// accumulates into its own groupResult, so the hot loop touches no shared
// counters except the budget reservation.
type groupResult struct {
	rp          []racePair // racing pairs, a view into the caller's arena
	pairs       int64
	hbq         int64
	locks       int64
	skipRR      int64 // read/read pairs skipped
	skipSameSeg int64 // same-segment (trace-ordered) pairs skipped
	reps        int
}

// mergeGroup folds one group's result into the report, deduplicating
// races by signature in encounter order and materializing a Race struct
// only for the first pair of each signature. It runs single-threaded (the
// sequential loop or the parallel streaming merger) in deterministic
// group order, so the attribution and progress race counts it updates
// are deterministic too.
func mergeGroup(rep *Report, g *shb.Graph, k osa.Key, gr *groupResult, seen map[raceSig]bool, attr *Attribution, prog *obs.Progress) {
	rep.Representatives += gr.reps
	rep.PairsChecked += gr.pairs
	rep.HBQueries += gr.hbq
	rep.LockChecks += gr.locks
	rep.SkippedReadRead += gr.skipRR
	rep.SkippedSameSeg += gr.skipSameSeg
	newRaces := int64(0)
	for _, p := range gr.rp {
		sig := sigOfNodes(g, k, int(p.a), int(p.b))
		if !seen[sig] {
			seen[sig] = true
			rep.Races = append(rep.Races, Race{Key: k, A: accessNode(g, int(p.a)), B: accessNode(g, int(p.b))})
			newRaces++
			if attr != nil {
				tallyPair(attr.Races, g, int(p.a), int(p.b))
			}
		}
	}
	if newRaces > 0 {
		prog.AddRaces(newRaces)
	}
}

// cancelStride is the number of hot-loop iterations between cancellation
// polls in checkGroup and collect (power of two, so the stride test is one
// AND). A pair check costs on the order of 100ns — even 50× slower under
// the race detector, one stride is well under a millisecond, keeping the
// context-end-to-exit latency far inside the <100ms guarantee pinned by
// TestCancelMidDetect and TestCancelLatchAgreesWithPairBudget. The poll
// itself is one atomic load (~0.4ns), so the stride's amortized cost is
// unmeasurable.
const cancelStride = 64

// checkGroup runs the pairwise hybrid HB × lockset check over one
// location's representative accesses. It reads only immutable analysis and
// graph state (the SHB reach cache and the lockset table are internally
// synchronized), so any number of checkGroup calls may run concurrently.
//
// Racing pairs are appended to buf (the caller's arena) in iteration
// order; the returned result's rp field is the view buf[lo:len:len] and
// the grown arena is returned for reuse. The view stays valid while the
// caller appends to the arena afterwards: later appends write past the
// view's capacity (or into a reallocated array), never into it.
func checkGroup(a *pta.Analysis, g *shb.Graph, k osa.Key, accs []acc, opt Options, bud *pairBudget, buf []racePair, tally *originTally) (groupResult, []racePair) {
	gr := groupResult{reps: len(accs)}
	lo := len(buf)
	tick, flushed := 0, 0
	for i := 0; i < len(accs); i++ {
		for j := i; j < len(accs); j++ {
			tick++
			if tick&(cancelStride-1) == 0 {
				// The cancel-poll stride doubles as the progress flush
				// point: examined-pair deltas are batched locally so the
				// hot loop never touches the shared Progress per pair.
				if opt.Progress != nil {
					opt.Progress.AddPairs(int64(tick - flushed))
					flushed = tick
				}
				if bud.canceled() {
					gr.rp = buf[lo:len(buf):len(buf)]
					return gr, buf
				}
			}
			x, y := accs[i], accs[j]
			if i == j && !selfRace(a, g, x) {
				continue
			}
			if !x.write && !y.write {
				gr.skipRR++
				continue
			}
			sx, sy := g.Nodes[x.node].Seg, g.Nodes[y.node].Seg
			if sx == sy && i != j && !a.Origins.Get(g.Origin(x.node)).Replicated {
				// Same origin instance: ordered by the trace.
				gr.skipSameSeg++
				continue
			}
			if !bud.take() {
				flushProgress(opt.Progress, tick, flushed)
				gr.rp = buf[lo:len(buf):len(buf)]
				return gr, buf
			}
			gr.pairs++
			if tally != nil {
				tallyPair(tally.pairs, g, x.node, y.node)
			}
			if !opt.NoLockset && commonLock(g, x, y, opt, &gr) {
				continue
			}
			if !opt.NoHB && sx != sy {
				gr.hbq++
				if tally != nil {
					tallyPair(tally.hbq, g, x.node, y.node)
				}
				ordered := false
				if opt.HBCache {
					ordered = g.HappensBefore(x.node, y.node) || g.HappensBefore(y.node, x.node)
				} else {
					ordered = g.HappensBeforeNoCache(x.node, y.node) || g.HappensBeforeNoCache(y.node, x.node)
				}
				if ordered {
					continue
				}
			}
			buf = append(buf, racePair{int32(x.node), int32(y.node)})
		}
	}
	flushProgress(opt.Progress, tick, flushed)
	gr.rp = buf[lo:len(buf):len(buf)]
	return gr, buf
}

// flushProgress publishes the unflushed examined-pair delta on group exit.
func flushProgress(p *obs.Progress, tick, flushed int) {
	if p != nil && tick != flushed {
		p.AddPairs(int64(tick - flushed))
	}
}

type acc struct {
	node  int
	write bool
}

// mergeKey identifies a lock-region representative within one candidate
// group. Keying on the dense group index instead of the osa.Key keeps the
// dedup in ONE flat map (no per-key sub-map allocation) and hashes an
// integer instead of two strings.
type mergeKey struct {
	grp    int32
	seg    shb.SegID
	write  bool
	locks  lockset.ID
	region int32
}

// grouped is the candidate groups in a flat arena: group i's accesses are
// accs[off[i]:off[i+1]], node-ID ascending, with keys sorted by keyLess.
// Compared to the previous map[osa.Key][]acc it is built with a constant
// number of allocations (two maps, five slices) instead of one map entry
// plus slice growth per location — collect dominated the detect phase's
// allocation profile (~87% of allocs/op on the zookeeper preset).
type grouped struct {
	keys []osa.Key
	accs []acc
	off  []int32
}

func (gr *grouped) group(i int) []acc { return gr.accs[gr.off[i]:gr.off[i+1]:gr.off[i+1]] }

// collect groups SHB access nodes by location, applying the OSA filter and
// lock-region merging. Volatile locations are synchronization, not data
// (§4.3 extension: atomics), and are never candidates.
//
// Locations are interned into dense group indices in first-seen (node-ID)
// order; a second pass scatters the surviving accesses into the flat
// arena in sorted-key group order, preserving node order within each
// group — exactly the iteration order the previous map-of-slices
// representation gave the detectors.
func collect(a *pta.Analysis, g *shb.Graph, sharing *osa.Result, opt Options, rep *Report, bud *pairBudget) *grouped {
	idx := map[osa.Key]int32{} // location → dense group index, first-seen order
	var keys []osa.Key
	type tmpAcc struct {
		grp int32
		a   acc
	}
	var tmp []tmpAcc
	var merged map[mergeKey]bool
	if opt.RegionMerge {
		merged = map[mergeKey]bool{}
	}
	for id := range g.Nodes {
		if id&(cancelStride-1) == 0 && bud.canceled() {
			// Canceled mid-collect: stop grouping — the detectors will stop
			// claiming immediately and the partial report stays a valid
			// lower bound.
			break
		}
		n := &g.Nodes[id]
		if n.Kind != shb.NRead && n.Kind != shb.NWrite {
			continue
		}
		if opt.OSAFilter && !sharing.IsShared(n.Key) {
			rep.FilteredOSA++
			continue
		}
		if isVolatile(a, n.Key) {
			rep.FilteredVolatile++
			continue
		}
		rep.AccessNodes++
		w := n.Kind == shb.NWrite
		gi, ok := idx[n.Key]
		if !ok {
			gi = int32(len(keys))
			idx[n.Key] = gi
			keys = append(keys, n.Key)
		}
		if opt.RegionMerge && n.Region != 0 {
			mk := mergeKey{gi, n.Seg, w, n.Locks, n.Region}
			if merged[mk] {
				rep.MergedRegion++
				continue // merged into the region's representative access
			}
			merged[mk] = true
		}
		tmp = append(tmp, tmpAcc{gi, acc{id, w}})
	}

	// Sort groups by key and scatter the accesses into the arena.
	counts := make([]int32, len(keys))
	for i := range tmp {
		counts[tmp[i].grp]++
	}
	order := make([]int32, len(keys))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return keyLess(keys[order[i]], keys[order[j]]) })
	out := &grouped{
		keys: make([]osa.Key, len(keys)),
		accs: make([]acc, len(tmp)),
		off:  make([]int32, len(keys)+1),
	}
	pos := make([]int32, len(keys)) // dense group index → sorted position
	for si, gi := range order {
		pos[gi] = int32(si)
		out.keys[si] = keys[gi]
		out.off[si+1] = out.off[si] + counts[gi]
	}
	cur := make([]int32, len(keys))
	copy(cur, out.off[:len(keys)])
	for i := range tmp {
		p := pos[tmp[i].grp]
		out.accs[cur[p]] = tmp[i].a
		cur[p]++
	}
	return out
}

// isVolatile reports whether the location has atomic access semantics.
func isVolatile(a *pta.Analysis, k osa.Key) bool {
	if k.Static != "" {
		return a.Prog.VolatileStatics[k.Static]
	}
	if k.Obj == 0 {
		return false
	}
	return a.Obj(k.Obj).Class().IsVolatile(k.Field)
}

// selfRace reports whether a single access can race with itself: a write
// executed by two concurrent instances of a replicated origin.
func selfRace(a *pta.Analysis, g *shb.Graph, x acc) bool {
	return x.write && a.Origins.Get(g.Origin(x.node)).Replicated
}

func commonLock(g *shb.Graph, x, y acc, opt Options, gr *groupResult) bool {
	gr.locks++
	nx, ny := &g.Nodes[x.node], &g.Nodes[y.node]
	if opt.CanonicalLocksets {
		return g.Locksets.Intersects(nx.Locks, ny.Locks)
	}
	return lockset.IntersectSorted(g.Locksets.Set(nx.Locks), g.Locksets.Set(ny.Locks))
}

func access(g *shb.Graph, x acc) Access {
	n := &g.Nodes[x.node]
	return Access{
		Node:   x.node,
		Origin: g.Origin(x.node),
		Write:  x.write,
		Pos:    n.Instr.Pos(),
		Fn:     n.Fn.Name,
	}
}

// accessNode materializes an Access from a bare node ID; the write flag is
// recomputed from the node kind, which is exactly how collect derived it.
func accessNode(g *shb.Graph, node int) Access {
	return access(g, acc{node, g.Nodes[node].Kind == shb.NWrite})
}

// sigOfNodes is sigOf computed directly from a compact pair, without
// materializing the Race.
func sigOfNodes(g *shb.Graph, k osa.Key, a, b int) raceSig {
	field := k.Field
	if k.Static != "" {
		field = k.Static
	}
	pa, pb := g.Nodes[a].Instr.Pos(), g.Nodes[b].Instr.Pos()
	if posLess(pb, pa) {
		pa, pb = pb, pa
	}
	return raceSig{field, pa, pb}
}

type raceSig struct {
	field string
	aPos  ir.Pos
	bPos  ir.Pos
}

// sigOf dedups races by location field and the unordered source-position
// pair, so one source-level race is reported once regardless of how many
// abstract objects or origin pairs exhibit it.
func sigOf(r *Race) raceSig {
	field := r.Key.Field
	if r.Key.Static != "" {
		field = r.Key.Static
	}
	a, b := r.A.Pos, r.B.Pos
	if posLess(b, a) {
		a, b = b, a
	}
	return raceSig{field, a, b}
}

func posLess(a, b ir.Pos) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	return a.Line < b.Line
}

func keyLess(a, b osa.Key) bool {
	if a.Obj != b.Obj {
		return a.Obj < b.Obj
	}
	if a.Field != b.Field {
		return a.Field < b.Field
	}
	return a.Static < b.Static
}

func raceLess(a, b *Race) bool {
	sa, sb := sigOf(a), sigOf(b)
	if sa.field != sb.field {
		return sa.field < sb.field
	}
	if sa.aPos != sb.aPos {
		return posLess(sa.aPos, sb.aPos)
	}
	return posLess(sa.bPos, sb.bPos)
}
