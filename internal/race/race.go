// Package race implements O2's static data race detection engine (§4): a
// hybrid happens-before + lockset analysis over the SHB graph, restricted
// to OSA's origin-shared locations, with the paper's three sound
// optimizations — integer-ID intra-origin happens-before, canonical
// lockset IDs with cached intersections, and lock-region merging. Each
// optimization can be disabled for the ablation benchmarks; disabling all
// of them (plus the OSA filter) yields the D4-style naive baseline.
package race

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"o2/internal/ir"
	"o2/internal/lockset"
	"o2/internal/obs"
	"o2/internal/osa"
	"o2/internal/pta"
	"o2/internal/shb"
)

// Options toggles the engine's optimizations (all true = full O2).
type Options struct {
	// RegionMerge merges accesses to the same location within one lock
	// region into a representative access (§4.1 third optimization).
	RegionMerge bool
	// CanonicalLocksets uses canonical lockset IDs with cached
	// intersections; when false, locksets are intersected element-wise on
	// every check (§4.1 second optimization).
	CanonicalLocksets bool
	// HBCache caches cross-origin reachability frontiers; when false every
	// pair does a fresh graph traversal (§4.1 first optimization — the
	// intra-origin integer comparison itself is structural and stays).
	HBCache bool
	// OSAFilter restricts checking to OSA's origin-shared locations; when
	// false all locations with accesses from two segments are checked.
	OSAFilter bool
	// NoHB disables the happens-before ordering check entirely (beyond
	// NoHB≠!HBCache: HBCache merely switches the query implementation).
	// Every cross-segment candidate pair then races unless lock-protected —
	// the lockset-only ablation used by the Table 10 category tests to show
	// which analysis suppresses which false-positive class. Unsound as a
	// detector configuration; never enabled by O2Options or NaiveOptions.
	NoHB bool
	// NoLockset disables the common-lock check: lock-protected pairs are
	// reported unless happens-before ordered — the HB-only ablation.
	NoLockset bool
	// PairBudget bounds the number of candidate pairs examined (0 =
	// unlimited); exceeding it stops detection and sets Report.TimedOut —
	// the analogue of the paper's ">4h" detection cells. The budget is a
	// single shared atomic counter, so it bounds the total work across all
	// workers in parallel mode.
	PairBudget int64
	// Workers sets the detection worker-pool size: per-location candidate
	// groups are sharded across Workers goroutines. 0 defaults to
	// GOMAXPROCS; 1 runs the sequential path. For a fixed input the report
	// is identical for every worker count (see Detect).
	Workers int
	// Obs receives the detection span (with one child span per worker
	// shard), the work counters and the worker-utilization gauges. Nil
	// disables observability; the pairwise hot loop then costs the same
	// as an uninstrumented build (see BenchmarkParallelDetectObs).
	Obs *obs.Registry
}

// O2Options is the full-optimization configuration.
func O2Options() Options {
	return Options{RegionMerge: true, CanonicalLocksets: true, HBCache: true, OSAFilter: true}
}

// NaiveOptions is the D4-style baseline: pairwise checking with no
// representative merging, no canonical lockset cache and no HB cache.
func NaiveOptions() Options { return Options{} }

// Access describes one side of a race.
type Access struct {
	Node   int
	Origin pta.OriginID
	Write  bool
	Pos    ir.Pos
	Fn     string
}

func (a Access) String() string {
	op := "read"
	if a.Write {
		op = "write"
	}
	return fmt.Sprintf("%s at %s in %s [origin O%d]", op, a.Pos, a.Fn, a.Origin)
}

// Race is a reported data race on a memory location.
type Race struct {
	Key  osa.Key
	A, B Access
}

func (r *Race) String() string {
	return fmt.Sprintf("race on %s:\n  %s\n  %s", r.Key, r.A, r.B)
}

// Report is the detection result with work counters for the benchmarks.
type Report struct {
	Races []Race
	// PairsChecked counts candidate pairs examined after grouping.
	PairsChecked int64
	// HBQueries and LockChecks count the underlying relation queries.
	HBQueries  int64
	LockChecks int64
	// AccessNodes and Representatives count nodes before and after
	// lock-region merging.
	AccessNodes     int
	Representatives int
	// Groups counts candidate locations (post-filter).
	Groups int
	// Per-optimization skip counters: candidates removed before pairwise
	// checking (FilteredOSA by the OSA filter, FilteredVolatile as
	// synchronization accesses, MergedRegion by lock-region merging) and
	// pairs skipped inside the pairwise loop (read/read pairs and
	// same-segment ordered pairs).
	FilteredOSA      int64
	FilteredVolatile int64
	MergedRegion     int64
	SkippedReadRead  int64
	SkippedSameSeg   int64
	// TimedOut reports that the PairBudget was exhausted; Races is then a
	// lower bound on the full result. The bound is consistent in both
	// sequential and parallel modes: every candidate group that finished
	// before the budget tripped contributes all of its races (no completed
	// worker's results are dropped), the group in which the budget tripped
	// contributes the races found up to that point, and PairsChecked never
	// exceeds PairBudget.
	TimedOut bool
	Elapsed  time.Duration
}

// Detect runs race detection over a solved analysis, its sharing result
// and SHB graph. With Options.Workers > 1 the per-location candidate
// groups are sharded across a worker pool; the merged report is identical
// to the sequential one for any worker count (groups are merged back in
// sorted key order, so global dedup sees races in the same order the
// sequential pass would). Detect only reads the analysis and graph, so
// concurrent Detect calls on the same solved inputs are safe.
func Detect(a *pta.Analysis, sharing *osa.Result, g *shb.Graph, opt Options) *Report {
	rep, _ := DetectCtx(context.Background(), a, sharing, g, opt)
	return rep
}

// DetectCtx is Detect under a context. A watcher goroutine latches the
// context's end into the shared budget flag, which every worker already
// consults once per candidate pair — so cancellation stops the pairwise
// loop within a handful of pair checks, in both sequential and parallel
// modes. The partial report is returned alongside pta.ErrCanceled (or
// pta.ErrBudget when the context deadline expired); it is a valid lower
// bound but not the full result.
func DetectCtx(ctx context.Context, a *pta.Analysis, sharing *osa.Result, g *shb.Graph, opt Options) (*Report, error) {
	sp := opt.Obs.StartSpan("detect")
	start := time.Now()
	rep := &Report{}
	groups := collect(a, g, sharing, opt, rep)

	keys := make([]osa.Key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(keys) {
		workers = len(keys)
	}
	bud := &pairBudget{limit: opt.PairBudget}
	if ctx.Done() != nil {
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-ctx.Done():
				bud.cancel()
			case <-stopWatch:
			}
		}()
	}
	var busyNS int64
	if workers > 1 {
		busyNS = detectParallel(a, g, opt, rep, groups, keys, bud, workers, sp)
	} else {
		workers = 1
		detectSequential(a, g, opt, rep, groups, keys, bud)
	}
	rep.TimedOut = bud.isTripped()
	rep.Groups = len(keys)
	sort.Slice(rep.Races, func(i, j int) bool { return raceLess(&rep.Races[i], &rep.Races[j]) })
	rep.Elapsed = time.Since(start)
	if workers == 1 {
		busyNS = int64(rep.Elapsed)
	}
	rep.recordObs(opt.Obs, workers, busyNS)
	sp.End()
	if err := ctx.Err(); err != nil {
		return rep, pta.CtxErr(err)
	}
	return rep, nil
}

// recordObs publishes the report's work counters and the worker-pool
// utilization into the registry (no-op when disabled).
func (rep *Report) recordObs(reg *obs.Registry, workers int, busyNS int64) {
	if reg == nil {
		return
	}
	reg.Counter("race.pairs_checked").Set(rep.PairsChecked)
	reg.Counter("race.hb_queries").Set(rep.HBQueries)
	reg.Counter("race.lock_checks").Set(rep.LockChecks)
	reg.Counter("race.skipped_read_read").Set(rep.SkippedReadRead)
	reg.Counter("race.skipped_same_seg").Set(rep.SkippedSameSeg)
	reg.Counter("race.filtered_osa").Set(rep.FilteredOSA)
	reg.Counter("race.filtered_volatile").Set(rep.FilteredVolatile)
	reg.Counter("race.merged_region").Set(rep.MergedRegion)
	reg.SetGauge("race.access_nodes", int64(rep.AccessNodes))
	reg.SetGauge("race.representatives", int64(rep.Representatives))
	reg.SetGauge("race.groups", int64(rep.Groups))
	reg.SetGauge("race.races", int64(len(rep.Races)))
	if rep.TimedOut {
		reg.SetGauge("race.timed_out", 1)
	}
	reg.SetGauge("race.workers", int64(workers))
	reg.SetGauge("race.worker_busy_ns", busyNS)
	reg.SetGauge("race.detect_wall_ns", int64(rep.Elapsed))
}

// detectSequential is the Workers == 1 path: groups are checked one after
// another in sorted key order, stopping at the first budget trip.
func detectSequential(a *pta.Analysis, g *shb.Graph, opt Options, rep *Report, groups map[osa.Key][]acc, keys []osa.Key, bud *pairBudget) {
	seen := map[raceSig]bool{}
	for _, k := range keys {
		if bud.stopped() {
			break
		}
		gr := checkGroup(a, g, k, groups[k], opt, bud)
		mergeGroup(rep, &gr, seen)
	}
}

// groupResult is the outcome of checking one candidate group. Each worker
// accumulates into its own groupResult, so the hot loop touches no shared
// counters except the budget reservation.
type groupResult struct {
	races       []Race
	pairs       int64
	hbq         int64
	locks       int64
	skipRR      int64 // read/read pairs skipped
	skipSameSeg int64 // same-segment (trace-ordered) pairs skipped
	reps        int
}

// mergeGroup folds one group's result into the report, deduplicating
// races by signature in encounter order.
func mergeGroup(rep *Report, gr *groupResult, seen map[raceSig]bool) {
	rep.Representatives += gr.reps
	rep.PairsChecked += gr.pairs
	rep.HBQueries += gr.hbq
	rep.LockChecks += gr.locks
	rep.SkippedReadRead += gr.skipRR
	rep.SkippedSameSeg += gr.skipSameSeg
	for i := range gr.races {
		sig := sigOf(&gr.races[i])
		if !seen[sig] {
			seen[sig] = true
			rep.Races = append(rep.Races, gr.races[i])
		}
	}
}

// checkGroup runs the pairwise hybrid HB × lockset check over one
// location's representative accesses. It reads only immutable analysis and
// graph state (the SHB reach cache and the lockset intersection cache are
// internally synchronized), so any number of checkGroup calls may run
// concurrently.
func checkGroup(a *pta.Analysis, g *shb.Graph, k osa.Key, accs []acc, opt Options, bud *pairBudget) groupResult {
	gr := groupResult{reps: len(accs)}
	for i := 0; i < len(accs); i++ {
		for j := i; j < len(accs); j++ {
			x, y := accs[i], accs[j]
			if i == j && !selfRace(a, g, x) {
				continue
			}
			if !x.write && !y.write {
				gr.skipRR++
				continue
			}
			sx, sy := g.Nodes[x.node].Seg, g.Nodes[y.node].Seg
			if sx == sy && i != j && !a.Origins.Get(g.Origin(x.node)).Replicated {
				// Same origin instance: ordered by the trace.
				gr.skipSameSeg++
				continue
			}
			if !bud.take() {
				return gr
			}
			gr.pairs++
			if !opt.NoLockset && commonLock(g, x, y, opt, &gr) {
				continue
			}
			if !opt.NoHB && sx != sy {
				gr.hbq++
				ordered := false
				if opt.HBCache {
					ordered = g.HappensBefore(x.node, y.node) || g.HappensBefore(y.node, x.node)
				} else {
					ordered = g.HappensBeforeNoCache(x.node, y.node) || g.HappensBeforeNoCache(y.node, x.node)
				}
				if ordered {
					continue
				}
			}
			gr.races = append(gr.races, Race{Key: k, A: access(g, x), B: access(g, y)})
		}
	}
	return gr
}

type acc struct {
	node  int
	write bool
}

type mergeKey struct {
	seg    shb.SegID
	write  bool
	locks  lockset.ID
	region int32
}

// collect groups SHB access nodes by location, applying the OSA filter and
// lock-region merging. Volatile locations are synchronization, not data
// (§4.3 extension: atomics), and are never candidates.
func collect(a *pta.Analysis, g *shb.Graph, sharing *osa.Result, opt Options, rep *Report) map[osa.Key][]acc {
	groups := map[osa.Key][]acc{}
	merged := map[osa.Key]map[mergeKey]bool{}
	for id := range g.Nodes {
		n := &g.Nodes[id]
		if n.Kind != shb.NRead && n.Kind != shb.NWrite {
			continue
		}
		if opt.OSAFilter && !sharing.IsShared(n.Key) {
			rep.FilteredOSA++
			continue
		}
		if isVolatile(a, n.Key) {
			rep.FilteredVolatile++
			continue
		}
		rep.AccessNodes++
		w := n.Kind == shb.NWrite
		if opt.RegionMerge && n.Region != 0 {
			mk := mergeKey{n.Seg, w, n.Locks, n.Region}
			m := merged[n.Key]
			if m == nil {
				m = map[mergeKey]bool{}
				merged[n.Key] = m
			}
			if m[mk] {
				rep.MergedRegion++
				continue // merged into the region's representative access
			}
			m[mk] = true
		}
		groups[n.Key] = append(groups[n.Key], acc{id, w})
	}
	return groups
}

// isVolatile reports whether the location has atomic access semantics.
func isVolatile(a *pta.Analysis, k osa.Key) bool {
	if k.Static != "" {
		return a.Prog.VolatileStatics[k.Static]
	}
	if k.Obj == 0 {
		return false
	}
	return a.Obj(k.Obj).Class().IsVolatile(k.Field)
}

// selfRace reports whether a single access can race with itself: a write
// executed by two concurrent instances of a replicated origin.
func selfRace(a *pta.Analysis, g *shb.Graph, x acc) bool {
	return x.write && a.Origins.Get(g.Origin(x.node)).Replicated
}

func commonLock(g *shb.Graph, x, y acc, opt Options, gr *groupResult) bool {
	gr.locks++
	nx, ny := &g.Nodes[x.node], &g.Nodes[y.node]
	if opt.CanonicalLocksets {
		return g.Locksets.Intersects(nx.Locks, ny.Locks)
	}
	return lockset.IntersectSorted(g.Locksets.Set(nx.Locks), g.Locksets.Set(ny.Locks))
}

func access(g *shb.Graph, x acc) Access {
	n := &g.Nodes[x.node]
	return Access{
		Node:   x.node,
		Origin: g.Origin(x.node),
		Write:  x.write,
		Pos:    n.Instr.Pos(),
		Fn:     n.Fn.Name,
	}
}

type raceSig struct {
	field string
	aPos  ir.Pos
	bPos  ir.Pos
}

// sigOf dedups races by location field and the unordered source-position
// pair, so one source-level race is reported once regardless of how many
// abstract objects or origin pairs exhibit it.
func sigOf(r *Race) raceSig {
	field := r.Key.Field
	if r.Key.Static != "" {
		field = r.Key.Static
	}
	a, b := r.A.Pos, r.B.Pos
	if posLess(b, a) {
		a, b = b, a
	}
	return raceSig{field, a, b}
}

func posLess(a, b ir.Pos) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	return a.Line < b.Line
}

func keyLess(a, b osa.Key) bool {
	if a.Obj != b.Obj {
		return a.Obj < b.Obj
	}
	if a.Field != b.Field {
		return a.Field < b.Field
	}
	return a.Static < b.Static
}

func raceLess(a, b *Race) bool {
	sa, sb := sigOf(a), sigOf(b)
	if sa.field != sb.field {
		return sa.field < sb.field
	}
	if sa.aPos != sb.aPos {
		return posLess(sa.aPos, sb.aPos)
	}
	return posLess(sa.bPos, sb.bPos)
}
