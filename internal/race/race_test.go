package race_test

import (
	"testing"

	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/osa"
	"o2/internal/pta"
	"o2/internal/race"
	"o2/internal/shb"
	"o2/internal/workload"
)

func detect(t *testing.T, src string, pol pta.Policy, opts race.Options, android bool) (*pta.Analysis, *race.Report) {
	t.Helper()
	prog, err := lang.Compile("t.mini", src, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatal(err)
	}
	return detectProg(t, prog, pol, opts, android)
}

func detectProg(t *testing.T, prog *ir.Program, pol pta.Policy, opts race.Options, android bool) (*pta.Analysis, *race.Report) {
	t.Helper()
	a := pta.New(prog, pta.Config{Policy: pol, Entries: ir.DefaultEntryConfig()})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	sh := osa.Analyze(a)
	g := shb.Build(a, shb.Config{AndroidEvents: android})
	return a, race.Detect(a, sh, g, opts)
}

func opa() pta.Policy { return pta.Policy{Kind: pta.KOrigin, K: 1} }

const twoWriters = `
class S { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; x.v = this; }
}
main {
  s = new S();
  w1 = new W(s);
  w2 = new W(s);
  w1.start();
  w2.start();
}
`

func TestBasicWriteWriteRace(t *testing.T) {
	_, rep := detect(t, twoWriters, opa(), race.O2Options(), false)
	if len(rep.Races) != 1 {
		t.Fatalf("want 1 race, got %d", len(rep.Races))
	}
	r := rep.Races[0]
	if !r.A.Write || !r.B.Write {
		t.Errorf("both sides should be writes")
	}
	if r.A.Origin == r.B.Origin {
		t.Errorf("race within a single origin instance")
	}
}

func TestReadReadNoRace(t *testing.T) {
	_, rep := detect(t, `
class S { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; r = x.v; }
}
main {
  s = new S();
  s.v = null;
  w1 = new W(s);
  w2 = new W(s);
  w1.start();
  w2.start();
}
`, opa(), race.O2Options(), false)
	if len(rep.Races) != 0 {
		t.Fatalf("read-read is not a race: got %d", len(rep.Races))
	}
}

func TestCommonLockSuppresses(t *testing.T) {
	_, rep := detect(t, `
class S { field v; }
class W {
  field s; field l;
  W(s, l) { this.s = s; this.l = l; }
  run() {
    x = this.s;
    k = this.l;
    sync (k) { x.v = this; }
  }
}
main {
  s = new S();
  l = new L();
  w1 = new W(s, l);
  w2 = new W(s, l);
  w1.start();
  w2.start();
}
`, opa(), race.O2Options(), false)
	if len(rep.Races) != 0 {
		t.Fatalf("common lock must suppress the race: got %d", len(rep.Races))
	}
}

func TestDifferentLocksStillRace(t *testing.T) {
	_, rep := detect(t, `
class S { field v; }
class W {
  field s; field l;
  W(s, l) { this.s = s; this.l = l; }
  run() {
    x = this.s;
    k = this.l;
    sync (k) { x.v = this; }
  }
}
main {
  s = new S();
  l1 = new L();
  l2 = new L();
  w1 = new W(s, l1);
  w2 = new W(s, l2);
  w1.start();
  w2.start();
}
`, opa(), race.O2Options(), false)
	if len(rep.Races) != 1 {
		t.Fatalf("different locks do not protect: got %d races", len(rep.Races))
	}
}

// All optimization configurations must report the same races — the §4.1
// optimizations are sound.
func TestOptimizationsSoundOnPresets(t *testing.T) {
	entries := ir.DefaultEntryConfig()
	variants := []race.Options{
		race.O2Options(),
		{RegionMerge: false, CanonicalLocksets: true, HBCache: true, OSAFilter: true},
		{RegionMerge: true, CanonicalLocksets: false, HBCache: true, OSAFilter: true},
		{RegionMerge: true, CanonicalLocksets: true, HBCache: false, OSAFilter: true},
		{RegionMerge: true, CanonicalLocksets: true, HBCache: true, OSAFilter: false},
		race.NaiveOptions(),
	}
	for _, name := range []string{"avrora", "lusearch", "memcached"} {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("preset %s missing", name)
		}
		prog := workload.Build(p, entries)
		a := pta.New(prog, pta.Config{Policy: opa(), Entries: entries})
		if err := a.Solve(); err != nil {
			t.Fatal(err)
		}
		sh := osa.Analyze(a)
		g := shb.Build(a, shb.Config{})
		want := -1
		for vi, opts := range variants {
			rep := race.Detect(a, sh, g, opts)
			if want == -1 {
				want = len(rep.Races)
				continue
			}
			if len(rep.Races) != want {
				t.Errorf("%s: variant %d reports %d races, want %d", name, vi, len(rep.Races), want)
			}
		}
	}
}

func TestRegionMergeReducesWork(t *testing.T) {
	src := `
class S { field v; }
class W {
  field s; field l;
  W(s, l) { this.s = s; this.l = l; }
  run() {
    x = this.s;
    k = this.l;
    sync (k) {
      x.v = this; x.v = this; x.v = this; x.v = this;
    }
  }
}
main {
  s = new S();
  l = new L();
  w1 = new W(s, l);
  w2 = new W(s, l);
  w1.start();
  w2.start();
}
`
	_, full := detect(t, src, opa(), race.O2Options(), false)
	noMerge := race.O2Options()
	noMerge.RegionMerge = false
	_, plain := detect(t, src, opa(), noMerge, false)
	if full.Representatives >= plain.Representatives {
		t.Errorf("merging should reduce representatives: %d vs %d",
			full.Representatives, plain.Representatives)
	}
	if len(full.Races) != len(plain.Races) {
		t.Errorf("merging changed the verdict: %d vs %d", len(full.Races), len(plain.Races))
	}
}

func TestPairBudgetStopsDetection(t *testing.T) {
	entries := ir.DefaultEntryConfig()
	p, _ := workload.ByName("zookeeper")
	prog := workload.Build(p, entries)
	a := pta.New(prog, pta.Config{Policy: pta.Policy{Kind: pta.Insensitive}, Entries: entries})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	sh := osa.Analyze(a)
	g := shb.Build(a, shb.Config{})
	opts := race.O2Options()
	opts.PairBudget = 100
	rep := race.Detect(a, sh, g, opts)
	if !rep.TimedOut {
		t.Errorf("tiny budget should time out")
	}
	if rep.PairsChecked > 100 {
		t.Errorf("budget exceeded: %d pairs", rep.PairsChecked)
	}
}

func TestSelfRaceOnReplicatedOriginFlag(t *testing.T) {
	// Under 0-ctx the loop origin carries the replication flag, so its
	// single write self-races.
	_, rep := detect(t, `
class S { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; x.v = this; }
}
main {
  s = new S();
  while (i) {
    w = new W(s);
    w.start();
  }
}
`, pta.Policy{Kind: pta.Insensitive}, race.O2Options(), false)
	if len(rep.Races) != 1 {
		t.Fatalf("replicated origin should self-race: got %d", len(rep.Races))
	}
	r := rep.Races[0]
	if r.A.Pos != r.B.Pos {
		t.Errorf("self-race should report the same site twice")
	}
}

func TestRaceReportDeterminism(t *testing.T) {
	entries := ir.DefaultEntryConfig()
	p, _ := workload.ByName("tomcat")
	prog := workload.Build(p, entries)
	_, rep1 := detectProg(t, prog, opa(), race.O2Options(), false)
	_, rep2 := detectProg(t, prog, opa(), race.O2Options(), false)
	if len(rep1.Races) != len(rep2.Races) {
		t.Fatalf("nondeterministic race counts: %d vs %d", len(rep1.Races), len(rep2.Races))
	}
	for i := range rep1.Races {
		a, b := rep1.Races[i], rep2.Races[i]
		if a.A.Pos != b.A.Pos || a.B.Pos != b.B.Pos {
			t.Fatalf("race %d ordering differs: %v vs %v", i, a, b)
		}
	}
}

func TestMainEpilogueOrderedByJoin(t *testing.T) {
	_, rep := detect(t, `
class S { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; x.v = this; }
}
main {
  s = new S();
  w1 = new W(s);
  w2 = new W(s);
  w1.start();
  w2.start();
  w1.join();
  w2.join();
  s.v = null;
}
`, opa(), race.O2Options(), false)
	// Worker-vs-worker race remains; main's epilogue write is ordered.
	if len(rep.Races) != 1 {
		t.Fatalf("want only the worker-worker race, got %d", len(rep.Races))
	}
	for _, r := range rep.Races {
		if r.A.Origin == pta.MainOrigin || r.B.Origin == pta.MainOrigin {
			t.Errorf("main epilogue should be ordered by the joins: %s", r.String())
		}
	}
}

type shbRun struct {
	graph  *shb.Graph
	report *race.Report
}

func detectSHB(t *testing.T, src string) (*pta.Analysis, shbRun) {
	return detectSHBWith(t, src, opa())
}

func detectSHBWith(t *testing.T, src string, pol pta.Policy) (*pta.Analysis, shbRun) {
	t.Helper()
	prog, err := lang.Compile("t.mini", src, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := pta.New(prog, pta.Config{Policy: pol, Entries: ir.DefaultEntryConfig()})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	sh := osa.Analyze(a)
	g := shb.Build(a, shb.Config{})
	return a, shbRun{g, race.Detect(a, sh, g, race.O2Options())}
}

func detectAndroidSHB(t *testing.T, src string) (*pta.Analysis, shbRun) {
	t.Helper()
	prog, err := lang.Compile("t.mini", src, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := pta.New(prog, pta.Config{Policy: opa(), Entries: ir.DefaultEntryConfig()})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	sh := osa.Analyze(a)
	g := shb.Build(a, shb.Config{AndroidEvents: true})
	return a, shbRun{g, race.Detect(a, sh, g, race.O2Options())}
}
