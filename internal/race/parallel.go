package race

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"o2/internal/obs"
	"o2/internal/osa"
	"o2/internal/pta"
	"o2/internal/shb"
)

// pairBudget is the shared atomic candidate-pair budget. Every worker
// reserves one unit per pair via take before checking it, so the total
// number of pairs examined never exceeds limit regardless of the worker
// count. A limit of 0 means unlimited. The budget doubles as the
// cancellation latch: DetectCtx's context watcher sets canceled, and the
// per-pair reservation that every worker already performs observes it —
// no extra synchronization appears in the hot loop.
type pairBudget struct {
	limit    int64
	used     atomic.Int64
	tripped  atomic.Bool
	canceled atomic.Bool
}

// take reserves one pair. It returns false once the budget is exhausted
// or detection is canceled, marking the budget as tripped on exhaustion;
// a failed reservation is rolled back so used never exceeds limit.
func (b *pairBudget) take() bool {
	if b.canceled.Load() {
		return false
	}
	if b.limit <= 0 {
		return true
	}
	if b.tripped.Load() {
		return false
	}
	if b.used.Add(1) > b.limit {
		b.tripped.Store(true)
		b.used.Add(-1)
		return false
	}
	return true
}

// cancel latches context cancellation into the budget; every subsequent
// take fails and workers stop claiming groups.
func (b *pairBudget) cancel() { b.canceled.Store(true) }

func (b *pairBudget) isTripped() bool { return b.tripped.Load() }

// stopped reports whether detection should claim no further groups,
// either because the pair budget tripped or the context ended.
func (b *pairBudget) stopped() bool { return b.tripped.Load() || b.canceled.Load() }

// detectParallel shards the sorted candidate groups across workers.
// Workers claim group indices from a shared atomic cursor and write each
// result into its own slot, so the only cross-worker state in the hot loop
// is the budget counter and the internally synchronized HB/lockset caches.
// The merge then replays the results in sorted key order, which makes the
// cross-group race dedup see candidates in exactly the sequential
// encounter order — the parallel report is byte-identical to Workers == 1
// whenever the budget does not trip, and a consistent lower bound when it
// does (finished groups keep all their races).
// It returns the summed busy time of all workers (0 when observability is
// disabled), which Detect turns into the worker-utilization gauge: a
// worker is busy from pool entry until it runs out of groups, so the
// ratio busy/(workers × wall) exposes shard imbalance.
func detectParallel(a *pta.Analysis, g *shb.Graph, opt Options, rep *Report, groups map[osa.Key][]acc, keys []osa.Key, bud *pairBudget, workers int, sp *obs.Span) int64 {
	results := make([]groupResult, len(keys))
	var next atomic.Int64
	var busyNS atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var ws *obs.Span
			if sp != nil {
				ws = sp.Child(fmt.Sprintf("worker-%02d", w))
				start := time.Now()
				defer func() {
					busyNS.Add(int64(time.Since(start)))
					ws.End()
				}()
			}
			for {
				if bud.stopped() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(keys) {
					return
				}
				results[i] = checkGroup(a, g, keys[i], groups[keys[i]], opt, bud)
			}
		}(w)
	}
	wg.Wait()
	seen := map[raceSig]bool{}
	for i := range results {
		mergeGroup(rep, &results[i], seen)
	}
	return busyNS.Load()
}
