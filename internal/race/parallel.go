package race

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"o2/internal/obs"
	"o2/internal/pta"
	"o2/internal/ring"
	"o2/internal/shb"
)

// pairBudget is the shared atomic candidate-pair budget. Every worker
// reserves one unit per pair via take before checking it, so the total
// number of pairs examined never exceeds limit regardless of the worker
// count. A limit of 0 means unlimited. Cancellation rides alongside as a
// pta.Latch bridged from the detect context: checkGroup polls it on a
// stride (cancelStride iterations) and the group-claim loop polls it via
// stopped, so the two mechanisms always agree — a tripped latch stops the
// pair loop within one stride and stops group claiming at the next claim,
// without marking the budget as tripped (TimedOut stays false on pure
// cancellation; see TestCancelLatchAgreesWithPairBudget).
type pairBudget struct {
	limit   int64
	used    atomic.Int64
	tripped atomic.Bool
	latch   *pta.Latch // trips when the detect context ends; nil when not cancellable
}

// take reserves one pair. It returns false once the budget is exhausted,
// marking it as tripped; a failed reservation is rolled back so used never
// exceeds limit. With no limit it is a single branch.
func (b *pairBudget) take() bool {
	if b.limit <= 0 {
		return true
	}
	if b.tripped.Load() {
		return false
	}
	if b.used.Add(1) > b.limit {
		b.tripped.Store(true)
		b.used.Add(-1)
		return false
	}
	return true
}

// canceled reports whether the detect context ended: one atomic load (a
// nil compare when the context was never cancellable).
func (b *pairBudget) canceled() bool { return b.latch.Tripped() }

func (b *pairBudget) isTripped() bool { return b.tripped.Load() }

// stopped reports whether detection should claim no further groups,
// either because the pair budget tripped or the context ended.
func (b *pairBudget) stopped() bool { return b.tripped.Load() || b.latch.Tripped() }

// detectParallel shards the sorted candidate groups across workers.
// Workers claim group indices from a shared atomic cursor, write each
// result into its own slot and push the finished index onto a bounded
// lock-free ring — the completion feed. The caller consumes the ring and
// merges the contiguous done-prefix in sorted key order as results arrive,
// so the deterministic merge streams alongside detection instead of
// waiting behind a wg.Wait barrier, with no per-item allocation (a channel
// feed would take a lock and may park a goroutine per send). Because
// merging replays results in index order, the cross-group race dedup sees
// candidates in exactly the sequential encounter order — the parallel
// report is byte-identical to Workers == 1 whenever the budget does not
// trip, and a consistent lower bound when it does (finished groups keep
// all their races).
// It returns the summed busy time of all workers (0 when observability is
// disabled), which Detect turns into the worker-utilization gauge: a
// worker is busy from pool entry until it runs out of groups, so the
// ratio busy/(workers × wall) exposes shard imbalance.
func detectParallel(a *pta.Analysis, g *shb.Graph, opt Options, rep *Report, grp *grouped, bud *pairBudget, workers int, sp *obs.Span) int64 {
	keys := grp.keys
	results := make([]groupResult, len(keys))
	// Capacity covers every group index, so Push below can never find the
	// ring full: each index is pushed at most once.
	feed := ring.New[int32](len(keys))
	var next atomic.Int64
	var busyNS atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var ws *obs.Span
			if sp != nil {
				ws = sp.Child(fmt.Sprintf("worker-%02d", w))
				start := time.Now()
				defer func() {
					busyNS.Add(int64(time.Since(start)))
					ws.End()
				}()
			}
			// Per-worker racePair arena: checkGroup results hold views
			// into it. Never reset — a published view may still be unread
			// by the merger; later appends only write past every
			// published view's capacity (see checkGroup).
			var buf []racePair
			// Per-worker origin tally, merged additively on exit so the
			// attribution totals are worker-count independent.
			tally := opt.newTally()
			defer opt.Attr.merge(tally)
			for {
				if bud.stopped() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(keys) {
					return
				}
				results[i], buf = checkGroup(a, g, keys[i], grp.group(i), opt, bud, buf, tally)
				feed.Push(int32(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// Streaming merge: pop completed indices, extend the merged prefix.
	completed := make([]bool, len(keys))
	seen := map[raceSig]bool{}
	nextMerge := 0
	drained := false
	for nextMerge < len(keys) {
		if i, ok := feed.Pop(); ok {
			completed[i] = true
			for nextMerge < len(keys) && completed[nextMerge] {
				mergeGroup(rep, g, keys[nextMerge], &results[nextMerge], seen, opt.Attr, opt.Progress)
				nextMerge++
			}
			continue
		}
		if drained {
			// Workers exited early (budget trip or cancellation) without
			// pushing their remaining claims: merge the rest in order —
			// unchecked groups hold zero results, so this is exactly the
			// sequential stop-at-trip semantics.
			for ; nextMerge < len(keys); nextMerge++ {
				mergeGroup(rep, g, keys[nextMerge], &results[nextMerge], seen, opt.Attr, opt.Progress)
			}
			break
		}
		select {
		case <-done:
			drained = true // one more drain pass, then finish
		default:
			runtime.Gosched()
		}
	}
	// The merge can complete while the last workers are still between
	// their final feed.Push and returning; wait for them so the deferred
	// per-worker tally merges (and busy-time adds) are all visible before
	// the caller reads Attr or the utilization gauge.
	wg.Wait()
	return busyNS.Load()
}
