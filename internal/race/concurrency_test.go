package race_test

import (
	"sync"
	"testing"

	"o2/internal/race"
)

// TestParallelDetectHighWorkerCounts runs detection on a large generated
// workload with worker counts well above GOMAXPROCS. Run under
// `go test -race` this exercises the sharded SHB reachability cache, the
// lockset intersection cache and the shared pair-budget atomics.
func TestParallelDetectHighWorkerCounts(t *testing.T) {
	a, sh, g := solvePreset(t, "zookeeper")
	seqOpts := race.O2Options()
	seqOpts.Workers = 1
	seq := race.Detect(a, sh, g, seqOpts)
	for _, w := range []int{8, 16, 32} {
		opts := race.O2Options()
		opts.Workers = w
		rep := race.Detect(a, sh, g, opts)
		sameReport(t, "zookeeper", seq, rep)
	}
}

// TestConcurrentDetectSharedInputs stress-tests cache reuse: several
// goroutines run Detect concurrently on the same solved analysis and SHB
// graph, each itself parallel, and must all produce the sequential report.
// The reachability and lockset caches are shared mutable state between
// the calls, so this proves they are safe for reuse.
func TestConcurrentDetectSharedInputs(t *testing.T) {
	a, sh, g := solvePreset(t, "hdfs")
	seqOpts := race.O2Options()
	seqOpts.Workers = 1
	seq := race.Detect(a, sh, g, seqOpts)

	const callers = 6
	reports := make([]*race.Report, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := race.O2Options()
			opts.Workers = 4
			// Alternate option sets so different cache paths overlap.
			if i%2 == 1 {
				opts.RegionMerge = false
			}
			reports[i] = race.Detect(a, sh, g, opts)
		}(i)
	}
	wg.Wait()
	for i, rep := range reports {
		if i%2 == 1 {
			// Different options change counters but never the verdict.
			if len(rep.Races) != len(seq.Races) {
				t.Errorf("caller %d: %d races, want %d", i, len(rep.Races), len(seq.Races))
			}
			continue
		}
		sameReport(t, "hdfs/concurrent", seq, rep)
	}
}

// raceSet keys a report's races by location and unordered position pair.
func raceSet(rep *race.Report) map[string]bool {
	m := make(map[string]bool, len(rep.Races))
	for i := range rep.Races {
		r := &rep.Races[i]
		a, b := r.A.Pos.String(), r.B.Pos.String()
		if b < a {
			a, b = b, a
		}
		m[r.Key.String()+"|"+a+"|"+b] = true
	}
	return m
}

// TestTimeoutLowerBoundBothModes pins the PairBudget semantics: when the
// budget trips mid-detection, TimedOut is set, PairsChecked never exceeds
// the budget, and the reported races are a subset of the full result — in
// both sequential and parallel modes (completed workers' races are kept).
func TestTimeoutLowerBoundBothModes(t *testing.T) {
	a, sh, g := solvePreset(t, "zookeeper")
	fullOpts := race.O2Options()
	fullOpts.Workers = 1
	full := race.Detect(a, sh, g, fullOpts)
	if full.TimedOut {
		t.Fatal("unbudgeted run must not time out")
	}
	fullSet := raceSet(full)
	budget := full.PairsChecked / 3
	if budget == 0 {
		t.Fatalf("preset too small: %d pairs", full.PairsChecked)
	}

	for _, w := range []int{1, 4, 8} {
		opts := race.O2Options()
		opts.Workers = w
		opts.PairBudget = budget
		rep := race.Detect(a, sh, g, opts)
		if !rep.TimedOut {
			t.Errorf("workers=%d: budget %d of %d pairs should time out", w, budget, full.PairsChecked)
		}
		if rep.PairsChecked > budget {
			t.Errorf("workers=%d: PairsChecked %d exceeds budget %d", w, rep.PairsChecked, budget)
		}
		if len(rep.Races) == 0 {
			t.Errorf("workers=%d: truncated run should still report completed groups' races", w)
		}
		for key := range raceSet(rep) {
			if !fullSet[key] {
				t.Errorf("workers=%d: race %s not in the full result (not a lower bound)", w, key)
			}
		}
	}
}

// TestBudgetExactBoundary asserts a budget equal to the total pair count
// does not trip: the budget is a bound on work, not a strict limit that
// must always fire.
func TestBudgetExactBoundary(t *testing.T) {
	a, sh, g := solvePreset(t, "avrora")
	fullOpts := race.O2Options()
	fullOpts.Workers = 1
	full := race.Detect(a, sh, g, fullOpts)
	for _, w := range []int{1, 8} {
		opts := race.O2Options()
		opts.Workers = w
		opts.PairBudget = full.PairsChecked
		rep := race.Detect(a, sh, g, opts)
		if rep.TimedOut {
			t.Errorf("workers=%d: exact budget should not trip", w)
		}
		if rep.PairsChecked != full.PairsChecked {
			t.Errorf("workers=%d: PairsChecked %d, want %d", w, rep.PairsChecked, full.PairsChecked)
		}
	}
}
