package race_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"o2/internal/ir"
	"o2/internal/osa"
	"o2/internal/pta"
	"o2/internal/race"
	"o2/internal/shb"
	"o2/internal/workload"
)

func solveScaled(t *testing.T, name string, factor int) (*pta.Analysis, *osa.Result, *shb.Graph) {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("preset %s missing", name)
	}
	entries := ir.DefaultEntryConfig()
	prog := workload.Build(workload.Scale(p, factor), entries)
	a := pta.New(prog, pta.Config{Policy: opa(), Entries: entries})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	sh := osa.Analyze(a)
	g := shb.Build(a, shb.Config{})
	return a, sh, g
}

// TestCancelLatchAgreesWithPairBudget pins the contract between the two
// stop mechanisms sharing the detect hot loop: the atomic cancel latch
// (bridged from the context, polled every cancelStride pairs) and the
// pair-budget trip (polled on every reservation).
//
//   - Cancellation must stop detection within the stride — well under the
//     100ms PR-3 guarantee — and must NOT mark the report TimedOut, which
//     is reserved for budget exhaustion.
//   - A tripped pair budget must mark TimedOut and must NOT surface as a
//     cancellation error.
func TestCancelLatchAgreesWithPairBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload")
	}
	// linux-x4: sequential detect runs for seconds, so a 50ms cancel lands
	// firmly inside the pairwise loop.
	a, sh, g := solveScaled(t, "linux", 4)

	for _, workers := range []int{1, 4} {
		opts := race.O2Options()
		opts.Workers = workers

		ctx, cancel := context.WithCancel(context.Background())
		var canceledAt time.Time
		go func() {
			time.Sleep(50 * time.Millisecond)
			canceledAt = time.Now()
			cancel()
		}()
		rep, err := race.DetectCtx(ctx, a, sh, g, opts)
		end := time.Now()
		if !errors.Is(err, pta.ErrCanceled) {
			t.Fatalf("workers=%d: want ErrCanceled, got %v", workers, err)
		}
		if rep.TimedOut {
			t.Errorf("workers=%d: cancellation must not trip the pair budget (TimedOut)", workers)
		}
		if lat := end.Sub(canceledAt); lat > 100*time.Millisecond {
			t.Errorf("workers=%d: cancellation latency %v exceeds 100ms (stride too long?)", workers, lat)
		} else {
			t.Logf("workers=%d: cancellation latency %v", workers, lat)
		}

		// Budget trip without cancellation: TimedOut, no error, and the
		// reservation counter respects the limit exactly.
		opts.PairBudget = 1000
		rep, err = race.DetectCtx(context.Background(), a, sh, g, opts)
		if err != nil {
			t.Fatalf("workers=%d: budget trip must not error, got %v", workers, err)
		}
		if !rep.TimedOut {
			t.Errorf("workers=%d: exhausted pair budget must set TimedOut", workers)
		}
		if rep.PairsChecked > opts.PairBudget {
			t.Errorf("workers=%d: PairsChecked %d exceeds budget %d", workers, rep.PairsChecked, opts.PairBudget)
		}
	}
}
