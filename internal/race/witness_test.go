package race_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"o2/internal/race"
)

// TestWitnessUnlocked checks the structured evidence for the plain
// two-writer race: both sides unlocked, no HB path, thread origins with a
// spawn chain ending at main, and the text rendering derived from the
// same witness.
func TestWitnessUnlocked(t *testing.T) {
	a, rep := detectSHB(t, twoWriters)
	if len(rep.report.Races) != 1 {
		t.Fatalf("setup: %d races", len(rep.report.Races))
	}
	w := race.BuildWitness(a, rep.graph, &rep.report.Races[0])
	if w.Schema != race.WitnessSchema {
		t.Errorf("schema = %d, want %d", w.Schema, race.WitnessSchema)
	}
	if w.Locks.Verdict != race.LocksNone || len(w.Locks.A) != 0 || len(w.Locks.Common) != 0 {
		t.Errorf("locks evidence = %+v, want both-unlocked", w.Locks)
	}
	if w.Ordering.Verdict != race.OrderNoHBPath || w.Ordering.HBAtoB || w.Ordering.HBBtoA {
		t.Errorf("ordering evidence = %+v, want no-hb-path", w.Ordering)
	}
	for _, side := range []race.WitnessAccess{w.A, w.B} {
		if side.Origin.Kind != "thread" {
			t.Errorf("origin kind = %q, want thread", side.Origin.Kind)
		}
		if side.Origin.SpawnPos == "" {
			t.Errorf("origin %s missing spawn pos", side.Origin.Name)
		}
		n := len(side.Origin.SpawnChain)
		if n < 2 || !strings.Contains(side.Origin.SpawnChain[n-1].Origin, "main") {
			t.Errorf("spawn chain %+v should end at main", side.Origin.SpawnChain)
		}
		if side.Origin.SpawnChain[0].Origin != side.Origin.Name {
			t.Errorf("spawn chain %+v should start at the access origin %s",
				side.Origin.SpawnChain, side.Origin.Name)
		}
	}
	if got := race.Explain(a, rep.graph, &rep.report.Races[0]); got != w.Text() {
		t.Errorf("Explain and Witness.Text disagree:\n%s\nvs\n%s", got, w.Text())
	}
}

// TestWitnessDisjointLocks checks the lockset derivation: resolved lock
// names on both sides, sorted, with an explicitly empty intersection.
func TestWitnessDisjointLocks(t *testing.T) {
	prog := `
class S { field v; }
class W {
  field s; field l;
  W(s, l) { this.s = s; this.l = l; }
  run() {
    x = this.s;
    k = this.l;
    sync (k) { x.v = this; }
  }
}
main {
  s = new S();
  l1 = new LockA();
  l2 = new LockB();
  w1 = new W(s, l1);
  w2 = new W(s, l2);
  w1.start();
  w2.start();
}
`
	a, rep := detectSHB(t, prog)
	if len(rep.report.Races) != 1 {
		t.Fatalf("setup: %d races", len(rep.report.Races))
	}
	w := race.BuildWitness(a, rep.graph, &rep.report.Races[0])
	if w.Locks.Verdict != race.LocksDisjoint {
		t.Fatalf("verdict = %q, want disjoint: %+v", w.Locks.Verdict, w.Locks)
	}
	if len(w.Locks.A) == 0 || len(w.Locks.B) == 0 {
		t.Fatalf("lock names missing: %+v", w.Locks)
	}
	if len(w.Locks.Common) != 0 {
		t.Fatalf("common locks %v on a reported race", w.Locks.Common)
	}
	names := strings.Join(w.Locks.A, "") + strings.Join(w.Locks.B, "")
	if !strings.Contains(names, "LockA") || !strings.Contains(names, "LockB") {
		t.Errorf("lock names not resolved to classes: %+v", w.Locks)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	// Empty lists marshal as [], never null — consumers need no nil checks.
	if bytes.Contains(data, []byte("null")) {
		t.Errorf("witness JSON contains null:\n%s", data)
	}
}

// TestWitnessJSONStable pins byte-stability: two analyses of the same
// source produce byte-identical witness JSON (sorted lock names, sorted
// attr object sets, no map iteration anywhere).
func TestWitnessJSONStable(t *testing.T) {
	render := func() string {
		a, rep := detectSHB(t, twoWriters)
		var all []byte
		for i := range rep.report.Races {
			data, err := race.BuildWitness(a, rep.graph, &rep.report.Races[i]).MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, data...)
		}
		return string(all)
	}
	if one, two := render(), render(); one != two {
		t.Errorf("witness JSON differs across runs:\n%s\nvs\n%s", one, two)
	}
}

// TestWitnessAndroidEventLock: in Android mode event handlers hold the
// sentinel event-loop lock, which is not a heap object. The witness must
// render it symbolically instead of dereferencing object 0 (regression:
// BuildWitness crashed on thread-vs-event races under -android).
func TestWitnessAndroidEventLock(t *testing.T) {
	prog := `
class G { static field v; }
class W {
  W() { }
  run() { c = G.v; }
}
class H {
  H() { }
  onReceive(ev) { G.v = ev; }
}
main {
  w = new W();
  w.start();
  h = new H();
  ev = new Ev();
  h.onReceive(ev);
}
`
	a, rep := detectAndroidSHB(t, prog)
	if len(rep.report.Races) == 0 {
		t.Fatal("setup: no thread-vs-event race reported")
	}
	for i := range rep.report.Races {
		w := race.BuildWitness(a, rep.graph, &rep.report.Races[i])
		found := false
		for _, n := range append(append([]string{}, w.Locks.A...), w.Locks.B...) {
			if n == "<android-event-loop>" {
				found = true
			}
		}
		if !found {
			t.Errorf("race %d: event side does not name the event-loop sentinel: %+v", i, w.Locks)
		}
		if w.Text() == "" {
			t.Errorf("race %d: empty text rendering", i)
		}
	}
}
