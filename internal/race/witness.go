package race

import (
	"encoding/json"
	"fmt"
	"sort"

	"o2/internal/pta"
	"o2/internal/shb"
)

// WitnessSchema identifies the Witness JSON layout. Bump it on any field
// rename or semantic change; downstream triage tooling keys on it, like
// RunStats' SchemaVersion.
const WitnessSchema = 1

// Witness is the machine-readable evidence behind a reported race: who
// accesses the location (with the full origin spawn chain), what locks
// each side holds (with resolved lock names and their intersection), and
// why neither access happens before the other. It is the structured form
// of the report a developer triages — Uber's field study of Go races
// found reports actionable only when they carry this provenance — and it
// backs the text rendering of Explain, the `o2 analyze -explain-json`
// output and the witnesses embedded in batch-server job results. All
// slices are sorted and the struct contains no maps, so marshaling a
// witness is byte-stable for a fixed analysis.
type Witness struct {
	Schema   int           `json:"schema"`
	Location string        `json:"location"`
	A        WitnessAccess `json:"a"`
	B        WitnessAccess `json:"b"`
	Locks    LockEvidence  `json:"locks"`
	Ordering OrderEvidence `json:"ordering"`
}

// WitnessAccess is one side of the race.
type WitnessAccess struct {
	Op     string     `json:"op"` // "read" or "write"
	Pos    string     `json:"pos"`
	Fn     string     `json:"fn"`
	Origin OriginInfo `json:"origin"`
}

// OriginInfo describes the origin executing an access, §3.1's user-facing
// abstraction: its kind, spawn site, attribute pointers and the chain of
// origins that (transitively) spawned it, ending at main.
type OriginInfo struct {
	ID         uint32      `json:"id"`
	Kind       string      `json:"kind"` // "main", "thread", "event"
	Name       string      `json:"name"` // e.g. O2(thread run@site1)
	SpawnPos   string      `json:"spawn_pos,omitempty"`
	Attrs      string      `json:"attrs,omitempty"`
	Replicated bool        `json:"replicated,omitempty"`
	SpawnChain []SpawnStep `json:"spawn_chain"`
}

// SpawnStep is one link of the spawn chain, leaf origin first, main last.
type SpawnStep struct {
	Origin string `json:"origin"`
	Pos    string `json:"pos,omitempty"`
}

// Lock verdicts of LockEvidence.
const (
	LocksNone        = "both-unlocked"   // neither access holds any lock
	LocksUnprotected = "one-unprotected" // exactly one side holds locks
	LocksDisjoint    = "disjoint"        // both hold locks, no common lock
)

// LockEvidence is the lockset derivation: the resolved (sorted) lock
// names held at each access, their intersection (empty for every true
// race) and the verdict naming which protection failure applies.
type LockEvidence struct {
	A       []string `json:"a"`
	B       []string `json:"b"`
	Common  []string `json:"common"`
	Verdict string   `json:"verdict"`
}

// Ordering verdicts of OrderEvidence.
const (
	OrderReplicated = "replicated-origin" // concurrent instances of one replicated origin
	OrderNoHBPath   = "no-hb-path"        // no happens-before path in either direction
	OrderPartial    = "partially-ordered" // ordered pairwise, reported due to replication
)

// OrderEvidence is the happens-before-absence evidence: the raw HB
// queries in both directions, the segment relation, the replication flag
// and the verdict naming why the accesses are concurrent. SyncEdges
// lists the message-passing HB edges (notify→wait, channel send→recv /
// rendezvous / close→recv, WaitGroup Done→Wait) that run directly
// between the two racing segments: evidence that the origins do
// synchronize, just not in a way that orders these two accesses. Spawn
// and join edges are deliberately excluded — the spawn chain and the
// verdict text already narrate those.
type OrderEvidence struct {
	HBAtoB      bool     `json:"hb_a_to_b"`
	HBBtoA      bool     `json:"hb_b_to_a"`
	SameSegment bool     `json:"same_segment"`
	Replicated  bool     `json:"replicated_origin"`
	Verdict     string   `json:"verdict"`
	SyncEdges   []string `json:"sync_edges,omitempty"`
}

// BuildWitness derives the full witness for a reported race from the
// solved analysis and SHB graph. It only reads immutable analysis state,
// so witnesses for many races may be built concurrently.
func BuildWitness(a *pta.Analysis, g *shb.Graph, r *Race) *Witness {
	na, nb := &g.Nodes[r.A.Node], &g.Nodes[r.B.Node]
	la := lockNames(a, g.Locksets.Set(na.Locks))
	lb := lockNames(a, g.Locksets.Set(nb.Locks))

	w := &Witness{
		Schema:   WitnessSchema,
		Location: r.Key.String(),
		A:        witnessAccess(a, r.A),
		B:        witnessAccess(a, r.B),
		Locks: LockEvidence{
			A:      la,
			B:      lb,
			Common: intersectSorted(la, lb),
		},
	}
	switch {
	case len(la) == 0 && len(lb) == 0:
		w.Locks.Verdict = LocksNone
	case len(la) == 0 || len(lb) == 0:
		w.Locks.Verdict = LocksUnprotected
	default:
		w.Locks.Verdict = LocksDisjoint
	}

	ord := OrderEvidence{
		HBAtoB:      g.HappensBefore(r.A.Node, r.B.Node),
		HBBtoA:      g.HappensBefore(r.B.Node, r.A.Node),
		SameSegment: na.Seg == nb.Seg,
		Replicated:  a.Origins.Get(g.Origin(r.A.Node)).Replicated,
		SyncEdges:   syncEdges(g, na.Seg, nb.Seg),
	}
	switch {
	case ord.SameSegment && ord.Replicated:
		ord.Verdict = OrderReplicated
	case !ord.HBAtoB && !ord.HBBtoA:
		ord.Verdict = OrderNoHBPath
	default:
		ord.Verdict = OrderPartial
	}
	w.Ordering = ord
	return w
}

// Witnesses builds one witness per reported race, in report order.
func Witnesses(a *pta.Analysis, g *shb.Graph, rep *Report) []*Witness {
	out := make([]*Witness, len(rep.Races))
	for i := range rep.Races {
		out[i] = BuildWitness(a, g, &rep.Races[i])
	}
	return out
}

// MarshalIndent renders the witness as stable, human-diffable JSON.
func (w *Witness) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(w, "", "  ")
}

func witnessAccess(a *pta.Analysis, acc Access) WitnessAccess {
	org := a.Origins.Get(acc.Origin)
	info := OriginInfo{
		ID:         uint32(org.ID),
		Kind:       org.Kind.String(),
		Name:       org.String(),
		Attrs:      a.OriginAttrs(org.ID),
		Replicated: org.Replicated,
		SpawnChain: spawnChain(a, org.ID),
	}
	if org.ID != pta.MainOrigin {
		info.SpawnPos = org.Pos.String()
	}
	return WitnessAccess{Op: op(acc.Write), Pos: acc.Pos.String(), Fn: acc.Fn, Origin: info}
}

// spawnChain walks Parent links from the access's origin to main, leaf
// first. The bound guards against malformed parent links.
func spawnChain(a *pta.Analysis, id pta.OriginID) []SpawnStep {
	var chain []SpawnStep
	for range a.Origins.Origins {
		org := a.Origins.Get(id)
		step := SpawnStep{Origin: org.String()}
		if org.ID != pta.MainOrigin {
			step.Pos = org.Pos.String()
		}
		chain = append(chain, step)
		if org.ID == pta.MainOrigin {
			return chain
		}
		id = org.Parent
	}
	return chain
}

// syncEdgeKinds labels an inter-origin HB edge by its endpoint node
// kinds. Only message-passing edges are named; spawn and join edges map
// to nothing and are skipped by syncEdges.
var syncEdgeKinds = map[[2]shb.NodeKind]string{
	{shb.NNotify, shb.NWait}:        "notify-wait",
	{shb.NChanSend, shb.NChanRecv}:  "chan-send-recv",
	{shb.NChanRecv, shb.NChanSend}:  "chan-rendezvous",
	{shb.NChanClose, shb.NChanRecv}: "chan-close-recv",
	{shb.NWgDone, shb.NWgWait}:      "wg-done-wait",
}

// syncEdges collects the message-passing HB edges running directly
// between the two racing segments, rendered "kind from-pos -> to-pos",
// deduplicated (replayed call contexts can revisit one source edge) and
// sorted for byte-stable JSON. nil when the accesses share a segment or
// no such edge exists, so the field marshals away and witnesses for
// spawn/join-only programs are unchanged.
func syncEdges(g *shb.Graph, segA, segB shb.SegID) []string {
	if segA == segB {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	collect := func(from, to shb.SegID) {
		for _, e := range g.OutEdges(from) {
			if g.Nodes[e.To].Seg != to {
				continue
			}
			kind, ok := syncEdgeKinds[[2]shb.NodeKind{g.Nodes[e.From].Kind, g.Nodes[e.To].Kind}]
			if !ok {
				continue
			}
			s := fmt.Sprintf("%s %s -> %s", kind, g.Nodes[e.From].Instr.Pos(), g.Nodes[e.To].Instr.Pos())
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	collect(segA, segB)
	collect(segB, segA)
	sort.Strings(out)
	return out
}

// intersectSorted intersects two sorted string slices. The result is
// never nil so the JSON always carries an explicit (possibly empty) list.
func intersectSorted(a, b []string) []string {
	out := []string{}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
