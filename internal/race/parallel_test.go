package race_test

import (
	"reflect"
	"testing"

	"o2/internal/ir"
	"o2/internal/osa"
	"o2/internal/pta"
	"o2/internal/race"
	"o2/internal/shb"
	"o2/internal/workload"
)

// ablationVariants are the four optimization combinations the ablation
// benchmarks compare: full O2 and each §4.1 optimization disabled alone.
var ablationVariants = map[string]race.Options{
	"full":        race.O2Options(),
	"noRegions":   {RegionMerge: false, CanonicalLocksets: true, HBCache: true, OSAFilter: true},
	"noCanonLock": {RegionMerge: true, CanonicalLocksets: false, HBCache: true, OSAFilter: true},
	"noHBCache":   {RegionMerge: true, CanonicalLocksets: true, HBCache: false, OSAFilter: true},
}

// differentialPresets are the seeded workload programs the parallel
// detector is differenced against the sequential one on: a cross-section
// of every preset family (Dacapo-style, Android-style, distributed,
// C-style).
var differentialPresets = []string{
	"avrora", "batik", "eclipse", "h2", "jython", "luindex", "lusearch",
	"pmd", "sunflow", "tomcat", "tradebeans", "xalan",
	"connectbot", "sipdroid", "tasks", "vlc",
	"hdfs", "zookeeper",
	"memcached", "redis",
}

func solvePreset(t *testing.T, name string) (*pta.Analysis, *osa.Result, *shb.Graph) {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("preset %s missing", name)
	}
	entries := ir.DefaultEntryConfig()
	prog := workload.Build(p, entries)
	a := pta.New(prog, pta.Config{Policy: opa(), Entries: entries})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	sh := osa.Analyze(a)
	g := shb.Build(a, shb.Config{})
	return a, sh, g
}

// sameReport asserts that two reports agree on everything the detector
// computes deterministically: the exact race list and every work counter.
func sameReport(t *testing.T, label string, seq, par *race.Report) {
	t.Helper()
	if !reflect.DeepEqual(seq.Races, par.Races) {
		t.Errorf("%s: race lists differ (%d vs %d races)", label, len(seq.Races), len(par.Races))
		return
	}
	if seq.Representatives != par.Representatives {
		t.Errorf("%s: Representatives %d vs %d", label, seq.Representatives, par.Representatives)
	}
	if seq.AccessNodes != par.AccessNodes {
		t.Errorf("%s: AccessNodes %d vs %d", label, seq.AccessNodes, par.AccessNodes)
	}
	if seq.PairsChecked != par.PairsChecked {
		t.Errorf("%s: PairsChecked %d vs %d", label, seq.PairsChecked, par.PairsChecked)
	}
	if seq.HBQueries != par.HBQueries {
		t.Errorf("%s: HBQueries %d vs %d", label, seq.HBQueries, par.HBQueries)
	}
	if seq.LockChecks != par.LockChecks {
		t.Errorf("%s: LockChecks %d vs %d", label, seq.LockChecks, par.LockChecks)
	}
	if seq.TimedOut != par.TimedOut {
		t.Errorf("%s: TimedOut %v vs %v", label, seq.TimedOut, par.TimedOut)
	}
}

// TestParallelDifferential asserts that the parallel detector produces a
// report identical to the sequential one on every seeded workload program,
// for every ablation option combination and several worker counts.
func TestParallelDifferential(t *testing.T) {
	names := differentialPresets
	if testing.Short() {
		names = names[:6]
	}
	for _, name := range names {
		a, sh, g := solvePreset(t, name)
		for vname, opts := range ablationVariants {
			seqOpts := opts
			seqOpts.Workers = 1
			seq := race.Detect(a, sh, g, seqOpts)
			for _, w := range []int{4, 8} {
				parOpts := opts
				parOpts.Workers = w
				par := race.Detect(a, sh, g, parOpts)
				sameReport(t, name+"/"+vname, seq, par)
			}
		}
	}
}

// TestParallelDifferentialAblationSoundness extends the existing
// soundness check: the naive baseline and the OSA-filter-off variant must
// also agree between sequential and parallel execution.
func TestParallelDifferentialAblationSoundness(t *testing.T) {
	extra := map[string]race.Options{
		"naive": race.NaiveOptions(),
		"noOSA": {RegionMerge: true, CanonicalLocksets: true, HBCache: true, OSAFilter: false},
	}
	for _, name := range []string{"avrora", "memcached"} {
		a, sh, g := solvePreset(t, name)
		for vname, opts := range extra {
			seqOpts := opts
			seqOpts.Workers = 1
			seq := race.Detect(a, sh, g, seqOpts)
			parOpts := opts
			parOpts.Workers = 8
			par := race.Detect(a, sh, g, parOpts)
			sameReport(t, name+"/"+vname, seq, par)
		}
	}
}

// TestWorkersZeroDefaultsToParallel asserts the GOMAXPROCS default also
// matches the sequential report (the common caller path sets Workers = 0).
func TestWorkersZeroDefaultsToParallel(t *testing.T) {
	a, sh, g := solvePreset(t, "tomcat")
	seqOpts := race.O2Options()
	seqOpts.Workers = 1
	seq := race.Detect(a, sh, g, seqOpts)
	def := race.Detect(a, sh, g, race.O2Options())
	sameReport(t, "tomcat/default", seq, def)
}
