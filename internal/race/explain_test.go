package race_test

import (
	"strings"
	"testing"

	"o2/internal/pta"
	"o2/internal/race"
)

func TestExplainUnlockedRace(t *testing.T) {
	prog := `
class S { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; x.v = this; }
}
main {
  s = new S();
  w1 = new W(s);
  w2 = new W(s);
  w1.start();
  w2.start();
}
`
	a, rep := detectSHB(t, prog)
	if len(rep.report.Races) != 1 {
		t.Fatalf("setup: %d races", len(rep.report.Races))
	}
	out := race.Explain(a, rep.graph, &rep.report.Races[0])
	for _, want := range []string{
		"race on", "thread origin", "spawned at", "attrs=",
		"neither access holds any lock", "no happens-before path",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
}

func TestExplainDisjointLocks(t *testing.T) {
	prog := `
class S { field v; }
class W {
  field s; field l;
  W(s, l) { this.s = s; this.l = l; }
  run() {
    x = this.s;
    k = this.l;
    sync (k) { x.v = this; }
  }
}
main {
  s = new S();
  l1 = new LockA();
  l2 = new LockB();
  w1 = new W(s, l1);
  w2 = new W(s, l2);
  w1.start();
  w2.start();
}
`
	a, rep := detectSHB(t, prog)
	if len(rep.report.Races) != 1 {
		t.Fatalf("setup: %d races", len(rep.report.Races))
	}
	out := race.Explain(a, rep.graph, &rep.report.Races[0])
	if !strings.Contains(out, "disjoint locksets") {
		t.Errorf("explanation should name the disjoint locks:\n%s", out)
	}
}

func TestExplainReplicatedOrigin(t *testing.T) {
	prog := `
class S { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; x.v = this; }
}
main {
  s = new S();
  while (i) {
    w = new W(s);
    w.start();
  }
}
`
	// Under 0-ctx the twin is a replication flag: the explanation names it.
	a, rep := detectSHBWith(t, prog, pta.Policy{Kind: pta.Insensitive})
	if len(rep.report.Races) != 1 {
		t.Fatalf("setup: %d races", len(rep.report.Races))
	}
	out := race.Explain(a, rep.graph, &rep.report.Races[0])
	if !strings.Contains(out, "concurrent instances of a replicated origin") {
		t.Errorf("explanation should mention replication:\n%s", out)
	}
}
