package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title: "Demo",
		Cols:  []string{"App", "Time", "N"},
		Note:  "a note",
	}
	tb.Add("avrora", 1500*time.Millisecond, 42)
	tb.Add("a-much-longer-name", 2.5, "✓")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Demo", "App", "avrora", "1.5s", "42", "2.50", "a note", "✓"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header, separator, and rows must align on the first column width.
	hdr := lines[2] // after title and ===
	sep := lines[3]
	if len(sep) < len("a-much-longer-name") {
		t.Errorf("separator not sized to widest cell: %q", sep)
	}
	if !strings.HasPrefix(hdr, "App") {
		t.Errorf("header = %q", hdr)
	}
}

func TestDur(t *testing.T) {
	cases := map[time.Duration]string{
		1500 * time.Microsecond: "1.5ms",
		12 * time.Second:        "12.0s",
		11 * time.Minute:        "11.0min",
		-time.Second:            "-",
	}
	for d, want := range cases {
		if got := Dur(d); got != want {
			t.Errorf("Dur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestSpeedup(t *testing.T) {
	cases := []struct {
		base, other time.Duration
		want        string
	}{
		{time.Second, 20 * time.Second, "20x"},
		{time.Second, 3 * time.Second, "3.0x"},
		{time.Second, 1500 * time.Millisecond, "+50%"},
		{time.Second, 500 * time.Millisecond, "-50%"},
		{0, time.Second, "-"},
	}
	for _, c := range cases {
		if got := Speedup(c.base, c.other); got != c.want {
			t.Errorf("Speedup(%v,%v) = %q, want %q", c.base, c.other, got, c.want)
		}
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(100, 23); got != "77.0%" {
		t.Errorf("Reduction = %q", got)
	}
	if got := Reduction(0, 5); got != "-" {
		t.Errorf("Reduction with zero base = %q", got)
	}
}
