// Package report renders the reproduction's tables and race reports as
// aligned text, mirroring the layout of the paper's evaluation tables.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"
	"unicode/utf8"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
}

// Add appends a row; values are stringified with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = Dur(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && utf8.RuneCountInString(cell) > widths[i] {
				widths[i] = utf8.RuneCountInString(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Dur formats a duration compactly (ms below 10s, else seconds).
func Dur(d time.Duration) string {
	switch {
	case d < 0:
		return "-"
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	case d < 10*time.Minute:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	}
}

// Speedup formats "a vs b" as a slowdown/speedup annotation in the paper's
// style: positive percentages for slowdowns below 10x, "N.Nx" beyond.
func Speedup(base, other time.Duration) string {
	if base <= 0 || other <= 0 {
		return "-"
	}
	ratio := float64(other) / float64(base)
	switch {
	case ratio >= 10:
		return fmt.Sprintf("%.0fx", ratio)
	case ratio >= 2:
		return fmt.Sprintf("%.1fx", ratio)
	case ratio >= 1:
		return fmt.Sprintf("+%.0f%%", (ratio-1)*100)
	default:
		return fmt.Sprintf("-%.0f%%", (1-ratio)*100)
	}
}

// Reduction formats the paper's red percentages: how much smaller n is
// than base.
func Reduction(base, n int) string {
	if base <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(base-n)/float64(base))
}
