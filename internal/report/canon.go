package report

import (
	"fmt"
	"sort"

	"o2/internal/pta"
	"o2/internal/race"
)

// RaceKey is the canonical, order-independent identity of a reported race:
// the location's source-level name, the unordered source-position pair
// (normalized so A ≤ B), and the origin kind pair. The detector's raw
// report can present the two accesses of a race in either order and — in
// array cases where several abstract objects collapse onto the synthetic
// "*" field — keyed by whichever abstract object the instruction ordering
// visited first. Scoring against a ground-truth corpus and metamorphic
// report comparison both need a representation where none of that shows
// through, which is what Canonical computes.
//
// Identity (Ident, sorting, equality for scoring) is the triple
// (Loc, A position, B position). Pair is carried for display and the
// `.expect` sidecars' readability but excluded from identity: the
// detector deduplicates races by (location, position pair) keeping the
// first origin pair encountered, so Pair can legitimately flip between
// equivalent runs (e.g. after a declaration reorder) while the race
// itself is unchanged.
type RaceKey struct {
	// Loc is the source-level location name: the instance field name, the
	// "Class.field" static signature, or "*" for array element accesses.
	Loc string `json:"loc"`
	// AFile:ALine / BFile:BLine are the two access positions with
	// (AFile, ALine) ≤ (BFile, BLine).
	AFile string `json:"a_file"`
	ALine int    `json:"a_line"`
	BFile string `json:"b_file"`
	BLine int    `json:"b_line"`
	// Pair is the unordered origin kind pair, e.g. "main-thread" or
	// "event-event" (kinds sorted lexicographically). Informational only.
	Pair string `json:"pair"`
}

// Ident is the race's identity string: location and normalized position
// pair, without the informational origin pair.
func (k RaceKey) Ident() string {
	return fmt.Sprintf("%s @ %s:%d %s:%d", k.Loc, k.AFile, k.ALine, k.BFile, k.BLine)
}

func (k RaceKey) String() string {
	return fmt.Sprintf("%s (%s)", k.Ident(), k.Pair)
}

// less orders keys by identity: location, then A position, then B
// position. Pair never participates.
func (k RaceKey) less(o RaceKey) bool {
	if k.Loc != o.Loc {
		return k.Loc < o.Loc
	}
	if k.AFile != o.AFile {
		return k.AFile < o.AFile
	}
	if k.ALine != o.ALine {
		return k.ALine < o.ALine
	}
	if k.BFile != o.BFile {
		return k.BFile < o.BFile
	}
	return k.BLine < o.BLine
}

// sameIdent reports whether two keys have the same identity (ignoring
// Pair).
func (k RaceKey) sameIdent(o RaceKey) bool {
	return k.Loc == o.Loc && k.AFile == o.AFile && k.ALine == o.ALine &&
		k.BFile == o.BFile && k.BLine == o.BLine
}

// Canonical projects a race report onto its canonical key set: one RaceKey
// per distinct (location, position pair), sorted, with positions
// normalized. The origin table resolves each access's origin kind for the
// informational Pair field; it may be nil, in which case Pair is empty.
func Canonical(rep *race.Report, origins *pta.OriginTable) []RaceKey {
	if rep == nil {
		return nil
	}
	keys := make([]RaceKey, 0, len(rep.Races))
	for i := range rep.Races {
		keys = append(keys, CanonicalRace(&rep.Races[i], origins))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	// Dedup by identity; the detector already dedups by signature, so this
	// only collapses keys that differ in the informational Pair.
	out := keys[:0]
	for _, k := range keys {
		if len(out) > 0 && out[len(out)-1].sameIdent(k) {
			continue
		}
		out = append(out, k)
	}
	return out
}

// CanonicalRace computes the canonical key of a single race.
func CanonicalRace(r *race.Race, origins *pta.OriginTable) RaceKey {
	loc := r.Key.Field
	if r.Key.Static != "" {
		loc = r.Key.Static
	}
	k := RaceKey{
		Loc:   loc,
		AFile: r.A.Pos.File, ALine: r.A.Pos.Line,
		BFile: r.B.Pos.File, BLine: r.B.Pos.Line,
	}
	ka, kb := originKind(origins, r.A.Origin), originKind(origins, r.B.Origin)
	if k.BFile < k.AFile || (k.BFile == k.AFile && k.BLine < k.ALine) {
		k.AFile, k.ALine, k.BFile, k.BLine = k.BFile, k.BLine, k.AFile, k.ALine
		ka, kb = kb, ka
	}
	if kb < ka {
		ka, kb = kb, ka
	}
	if ka != "" {
		k.Pair = ka + "-" + kb
	}
	return k
}

func originKind(origins *pta.OriginTable, id pta.OriginID) string {
	if origins == nil {
		return ""
	}
	return origins.Get(id).Kind.String()
}

// Normalize re-canonicalizes keys whose positions were rewritten after
// Canonical ran (e.g. mapped from a transformed program's lines back to
// the original source): each key's position pair is re-normalized to
// A ≤ B, the set is re-sorted and deduplicated by identity.
func Normalize(keys []RaceKey) []RaceKey {
	out := make([]RaceKey, 0, len(keys))
	for _, k := range keys {
		if k.BFile < k.AFile || (k.BFile == k.AFile && k.BLine < k.ALine) {
			k.AFile, k.ALine, k.BFile, k.BLine = k.BFile, k.BLine, k.AFile, k.ALine
		}
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	dedup := out[:0]
	for _, k := range out {
		if len(dedup) > 0 && dedup[len(dedup)-1].sameIdent(k) {
			continue
		}
		dedup = append(dedup, k)
	}
	return dedup
}

// SameKeys reports whether two canonical key sets are identical (by
// identity, ignoring the informational Pair). Both inputs must already be
// canonical (sorted, deduped), as produced by Canonical.
func SameKeys(a, b []RaceKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].sameIdent(b[i]) {
			return false
		}
	}
	return true
}
