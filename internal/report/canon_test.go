package report

import (
	"testing"

	"o2/internal/ir"
	"o2/internal/osa"
	"o2/internal/race"
)

func mkRace(loc string, static bool, aLine, bLine int) race.Race {
	k := osa.Key{Obj: 1, Field: loc}
	if static {
		k = osa.Key{Static: loc}
	}
	return race.Race{
		Key: k,
		A:   race.Access{Pos: ir.Pos{File: "p.mini", Line: aLine}},
		B:   race.Access{Pos: ir.Pos{File: "p.mini", Line: bLine}},
	}
}

func TestCanonicalNormalizesAndSorts(t *testing.T) {
	rep := &race.Report{Races: []race.Race{
		mkRace("y", false, 9, 4),  // reversed positions
		mkRace("x", false, 7, 3),  // reversed positions
		mkRace("C.s", true, 2, 8), // static, already ordered
		mkRace("*", false, 5, 5),  // array self-race, equal lines
	}}
	keys := Canonical(rep, nil)
	want := []string{
		"* @ p.mini:5 p.mini:5",
		"C.s @ p.mini:2 p.mini:8",
		"x @ p.mini:3 p.mini:7",
		"y @ p.mini:4 p.mini:9",
	}
	if len(keys) != len(want) {
		t.Fatalf("got %d keys, want %d: %v", len(keys), len(want), keys)
	}
	for i, w := range want {
		if keys[i].Ident() != w {
			t.Errorf("key %d = %q, want %q", i, keys[i].Ident(), w)
		}
	}
}

func TestCanonicalDedupsAcrossObjects(t *testing.T) {
	// Two abstract objects exhibiting the same source-level array race must
	// collapse onto one canonical key.
	a := mkRace("*", false, 3, 6)
	b := mkRace("*", false, 6, 3)
	b.Key.Obj = 2
	rep := &race.Report{Races: []race.Race{a, b}}
	keys := Canonical(rep, nil)
	if len(keys) != 1 {
		t.Fatalf("got %d keys, want 1: %v", len(keys), keys)
	}
	if got := keys[0].Ident(); got != "* @ p.mini:3 p.mini:6" {
		t.Errorf("key = %q", got)
	}
}

func TestCanonicalNilReport(t *testing.T) {
	if keys := Canonical(nil, nil); keys != nil {
		t.Fatalf("nil report: got %v", keys)
	}
}

func TestSameKeysIgnoresPair(t *testing.T) {
	a := []RaceKey{{Loc: "x", AFile: "f", ALine: 1, BFile: "f", BLine: 2, Pair: "main-thread"}}
	b := []RaceKey{{Loc: "x", AFile: "f", ALine: 1, BFile: "f", BLine: 2, Pair: "thread-thread"}}
	if !SameKeys(a, b) {
		t.Error("SameKeys must ignore the informational Pair")
	}
	c := []RaceKey{{Loc: "x", AFile: "f", ALine: 1, BFile: "f", BLine: 3}}
	if SameKeys(a, c) {
		t.Error("SameKeys must distinguish positions")
	}
	if SameKeys(a, nil) {
		t.Error("SameKeys must distinguish lengths")
	}
}

func TestRaceKeyStringIncludesPair(t *testing.T) {
	k := RaceKey{Loc: "x", AFile: "f", ALine: 1, BFile: "f", BLine: 2, Pair: "event-thread"}
	if got, want := k.String(), "x @ f:1 f:2 (event-thread)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
