package shb_test

import (
	"math/rand"
	"testing"

	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/osa"
	"o2/internal/pta"
	"o2/internal/shb"
)

func build(t *testing.T, src string, cfg shb.Config) (*pta.Analysis, *shb.Graph) {
	t.Helper()
	prog, err := lang.Compile("t.mini", src, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := pta.New(prog, pta.Config{Policy: pta.Policy{Kind: pta.KOrigin, K: 1}, Entries: ir.DefaultEntryConfig()})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	return a, shb.Build(a, cfg)
}

const spawnJoin = `
class S { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; x.v = this; }
}
main {
  s = new S();
  s.v = null;
  w = new W(s);
  w.start();
  w.join();
  s.v = null;
}
`

func TestSegmentsAndNodeOrder(t *testing.T) {
	a, g := build(t, spawnJoin, shb.Config{})
	if len(g.Segs) != 2 {
		t.Fatalf("want 2 segments (main + worker), got %d", len(g.Segs))
	}
	_ = a
	for _, seg := range g.Segs {
		last := -1
		for id := seg.First; id <= seg.Last; id++ {
			if g.Nodes[id].Seg != seg.ID {
				t.Fatalf("node %d claims wrong segment", id)
			}
			if id <= last {
				t.Fatalf("node IDs not increasing")
			}
			last = id
		}
	}
}

func TestSpawnAndJoinEdges(t *testing.T) {
	_, g := build(t, spawnJoin, shb.Config{})
	var mainSeg, workSeg *shb.Segment
	for _, s := range g.Segs {
		if s.Origin == pta.MainOrigin {
			mainSeg = s
		} else {
			workSeg = s
		}
	}
	outMain := g.OutEdges(mainSeg.ID)
	if len(outMain) != 1 {
		t.Fatalf("main should have 1 spawn edge, got %d", len(outMain))
	}
	if to := outMain[0].To; to != workSeg.First {
		t.Errorf("spawn edge targets %d, want worker First %d", to, workSeg.First)
	}
	outWork := g.OutEdges(workSeg.ID)
	if len(outWork) != 1 {
		t.Fatalf("worker should have 1 join edge, got %d", len(outWork))
	}
	if from := outWork[0].From; from != workSeg.Last {
		t.Errorf("join edge leaves %d, want worker Last %d", from, workSeg.Last)
	}
}

// HB truth table for the spawn/join program: main's first write precedes
// the worker's (through start); the worker's precedes main's last (through
// join).
func TestHappensBeforeThroughSpawnAndJoin(t *testing.T) {
	_, g := build(t, spawnJoin, shb.Config{})
	var preWrite, workWrite, postWrite int = -1, -1, -1
	for id, n := range g.Nodes {
		if n.Kind != shb.NWrite || n.Key.Field != "v" {
			continue
		}
		switch {
		case g.Origin(id) != pta.MainOrigin:
			workWrite = id
		case preWrite == -1:
			preWrite = id
		default:
			postWrite = id
		}
	}
	if preWrite < 0 || workWrite < 0 || postWrite < 0 {
		t.Fatalf("missing writes: %d %d %d", preWrite, workWrite, postWrite)
	}
	if !g.HappensBefore(preWrite, workWrite) {
		t.Errorf("pre-spawn write must happen before the worker write")
	}
	if !g.HappensBefore(workWrite, postWrite) {
		t.Errorf("worker write must happen before the post-join write")
	}
	if g.HappensBefore(workWrite, preWrite) || g.HappensBefore(postWrite, workWrite) {
		t.Errorf("HB must be antisymmetric here")
	}
	if !g.HappensBefore(preWrite, postWrite) {
		t.Errorf("intra-segment integer HB broken")
	}
}

func TestNoHBBetweenSiblingThreads(t *testing.T) {
	_, g := build(t, `
class S { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; x.v = this; }
}
main {
  s = new S();
  w1 = new W(s);
  w2 = new W(s);
  w1.start();
  w2.start();
}
`, shb.Config{})
	var writes []int
	for id, n := range g.Nodes {
		if n.Kind == shb.NWrite && n.Key.Field == "v" && g.Origin(id) != pta.MainOrigin {
			writes = append(writes, id)
		}
	}
	if len(writes) != 2 {
		t.Fatalf("want 2 worker writes, got %d", len(writes))
	}
	if g.HappensBefore(writes[0], writes[1]) || g.HappensBefore(writes[1], writes[0]) {
		t.Errorf("sibling threads must be unordered")
	}
}

func TestLocksetsAndRegions(t *testing.T) {
	_, g := build(t, `
class S { field a; field b; }
class W {
  field s; field l;
  W(s, l) { this.s = s; this.l = l; }
  run() {
    x = this.s;
    k = this.l;
    x.a = this;
    sync (k) {
      x.a = this;
      x.b = this;
    }
    sync (k) {
      x.b = this;
    }
  }
}
main {
  s = new S();
  l = new L();
  w = new W(s, l);
  w.start();
}
`, shb.Config{})
	var unlocked, locked []shb.Node
	regions := map[int32]bool{}
	for id, n := range g.Nodes {
		if n.Kind != shb.NWrite || g.Origin(id) == pta.MainOrigin {
			continue
		}
		if n.Locks == 0 {
			unlocked = append(unlocked, n)
		} else {
			locked = append(locked, n)
			regions[n.Region] = true
		}
	}
	if len(unlocked) != 1 {
		t.Errorf("want 1 unlocked write, got %d", len(unlocked))
	}
	if len(locked) != 3 {
		t.Errorf("want 3 locked writes, got %d", len(locked))
	}
	if len(regions) != 2 {
		t.Errorf("two sync blocks should create two region instances, got %d", len(regions))
	}
	for _, n := range locked {
		if len(g.Locksets.Set(n.Locks)) != 1 {
			t.Errorf("locked write lockset = %v", g.Locksets.Set(n.Locks))
		}
	}
}

func TestNestedLocks(t *testing.T) {
	_, g := build(t, `
class S { field v; }
main {
  s = new S();
  l1 = new L();
  l2 = new L();
  sync (l1) {
    sync (l2) {
      s.v = null;
    }
  }
}
`, shb.Config{})
	for _, n := range g.Nodes {
		if n.Kind == shb.NWrite && n.Key.Field == "v" {
			if len(g.Locksets.Set(n.Locks)) != 2 {
				t.Errorf("nested sync should hold both locks: %v", g.Locksets.Set(n.Locks))
			}
		}
	}
}

func TestAndroidGlobalEventLock(t *testing.T) {
	src := `
class S { field v; }
class H {
  field s;
  H(s) { this.s = s; }
  onReceive(ev) { x = this.s; x.v = ev; }
}
main {
  s = new S();
  h = new H(s);
  ev = new Ev();
  h.onReceive(ev);
}
`
	_, plain := build(t, src, shb.Config{})
	_, android := build(t, src, shb.Config{AndroidEvents: true})
	handlerLocked := func(g *shb.Graph) bool {
		for id, n := range g.Nodes {
			if n.Kind == shb.NWrite && n.Key.Field == "v" && g.Origin(id) != pta.MainOrigin {
				return n.Locks != 0
			}
		}
		return false
	}
	if handlerLocked(plain) {
		t.Errorf("plain mode must not add the event lock")
	}
	if !handlerLocked(android) {
		t.Errorf("Android mode must serialize handlers with the global lock")
	}
}

func TestMaxNodesTruncation(t *testing.T) {
	_, g := build(t, spawnJoin, shb.Config{MaxNodes: 3})
	if len(g.Nodes) > 4 {
		t.Errorf("MaxNodes not honored: %d nodes", len(g.Nodes))
	}
}

// Property: the cached and uncached reachability agree on random node
// pairs of a nontrivial graph.
func TestHBCacheAgreesWithUncached(t *testing.T) {
	_, g := build(t, `
class S { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() {
    x = this.s;
    x.v = this;
    c = new Child(x);
    c.start();
  }
}
class Child {
  field s;
  Child(s) { this.s = s; }
  run() { x = this.s; x.v = this; }
}
main {
  s = new S();
  w1 = new W(s);
  w2 = new W(s);
  w1.start();
  w2.start();
  w1.join();
  s.v = null;
}
`, shb.Config{})
	rng := rand.New(rand.NewSource(11))
	n := len(g.Nodes)
	if n < 5 {
		t.Fatalf("graph too small: %d", n)
	}
	for i := 0; i < 2000; i++ {
		x, y := rng.Intn(n), rng.Intn(n)
		if g.HappensBefore(x, y) != g.HappensBeforeNoCache(x, y) {
			t.Fatalf("cache disagrees on (%d,%d)", x, y)
		}
	}
}

// Accesses recorded in the SHB trace must agree with OSA's access keys.
func TestSHBKeysConsistentWithOSA(t *testing.T) {
	a, g := build(t, spawnJoin, shb.Config{})
	sh := osa.Analyze(a)
	keys := map[osa.Key]bool{}
	for _, acc := range sh.Accesses {
		keys[acc.Key] = true
	}
	for _, n := range g.Nodes {
		if n.Kind == shb.NRead || n.Kind == shb.NWrite {
			if !keys[n.Key] {
				t.Errorf("SHB access %v unknown to OSA", n.Key)
			}
		}
	}
}

func TestWaitNotifyNodesAndEdges(t *testing.T) {
	_, g := build(t, `
class Cond { }
class P {
  field c;
  P(c) { this.c = c; }
  run() { x = this.c; x.notify(); }
}
class C {
  field c;
  C(c) { this.c = c; }
  run() { x = this.c; x.wait(); }
}
main {
  cv = new Cond();
  p = new P(cv);
  q = new C(cv);
  p.start();
  q.start();
}
`, shb.Config{})
	var notifyNode, waitNode = -1, -1
	for id, n := range g.Nodes {
		switch n.Kind {
		case shb.NNotify:
			notifyNode = id
		case shb.NWait:
			waitNode = id
		}
	}
	if notifyNode < 0 || waitNode < 0 {
		t.Fatalf("missing wait/notify nodes")
	}
	if !g.HappensBefore(notifyNode, waitNode) {
		t.Errorf("notify must happen before the matching wait")
	}
	if g.HappensBefore(waitNode, notifyNode) {
		t.Errorf("wait must not happen before notify")
	}
}
