// Package shb builds the static happens-before (SHB) graph of §4 /
// Table 4. Each origin's code is replayed as a linear trace of read,
// write, lock, unlock, entry and join nodes; node IDs increase
// monotonically so that the intra-origin happens-before relation is a
// constant-time integer comparison (the paper's first optimization).
// Only inter-origin edges (spawn: entry ⇒ origin_first, and join:
// origin_last ⇒ join) are materialized.
//
// An origin may be started from more than one program point (or, for
// non-origin context policies, under more than one entry context); each
// distinct start becomes a Segment — an origin instance trace. Accesses in
// different segments are ordered only through inter-origin edges; accesses
// in the same segment of a replicated origin are treated as concurrent
// instances by the race detector.
package shb

import (
	"context"
	"fmt"
	"sort"
	"unsafe"

	"o2/internal/ir"
	"o2/internal/lockset"
	"o2/internal/obs"
	"o2/internal/osa"
	"o2/internal/pta"
)

// NodeKind classifies SHB nodes.
type NodeKind uint8

const (
	NRead NodeKind = iota
	NWrite
	NLock
	NUnlock
	NEntry // origin-entry invocation in the parent (spawn point)
	NJoin
	NWait      // condition wait on an object
	NNotify    // condition notify on an object
	NChanSend  // channel send
	NChanRecv  // channel receive
	NChanClose // channel close
	NWgAdd     // WaitGroup Add (barrier arm; no edges of its own)
	NWgDone    // WaitGroup Done
	NWgWait    // WaitGroup Wait
)

func (k NodeKind) String() string {
	return [...]string{
		"read", "write", "lock", "unlock", "entry", "join", "wait", "notify",
		"chan-send", "chan-recv", "chan-close", "wg-add", "wg-done", "wg-wait",
	}[k]
}

// SegID identifies a segment (origin instance trace).
type SegID int32

// Node is one SHB node. Its ID is its index in Graph.Nodes; IDs within a
// segment are strictly increasing in trace order.
type Node struct {
	Kind   NodeKind
	Seg    SegID
	Key    osa.Key // memory location for NRead/NWrite; lock object for NLock/NUnlock
	Locks  lockset.ID
	Region int32 // innermost lock-region instance (0 = outside any region)
	Instr  ir.Instr
	Fn     *ir.Func
}

// Segment is the trace of one origin instance.
type Segment struct {
	ID     SegID
	Origin pta.OriginID
	Entry  pta.FnCtxID
	First  int // first node ID (== Last+1 when the trace is empty)
	Last   int // last node ID (inclusive); First-1 when empty
}

// Edge is an inter-origin happens-before edge from node From to node To.
type Edge struct {
	From, To int
}

// Graph is the SHB graph.
type Graph struct {
	Nodes    []Node
	Segs     []*Segment
	Locksets *lockset.Table
	// out[seg] lists inter-origin edges leaving the segment, ordered by
	// construction (node IDs ascending within a segment's build).
	out map[SegID][]Edge
	in  map[SegID][]Edge
	a   *pta.Analysis
	// reach caches cross-segment reachability frontiers per (segment,
	// outgoing-edge suffix index), sharded and single-flight so concurrent
	// detection workers share one traversal per frontier; see reach.go.
	reach reachCache
	// reachHits/reachMisses count frontier cache queries when observability
	// is enabled (nil counters otherwise; Counter methods are nil-safe).
	reachHits   *obs.Counter
	reachMisses *obs.Counter
	// Regions counts lock-region instances created.
	Regions int32
}

// Config controls SHB construction.
type Config struct {
	// AndroidEvents serializes all event-handler origins with a global
	// lock (§4.2), modeling the Android main thread's event loop.
	AndroidEvents bool
	// MaxNodes bounds trace size as a safety valve for generated
	// workloads (0 = unlimited).
	MaxNodes int
	// Obs receives the build span, the graph-size gauges and the
	// reach/lockset cache counters (nil = disabled).
	Obs *obs.Registry
}

// Build constructs the SHB graph from a solved pointer analysis.
func Build(a *pta.Analysis, cfg Config) *Graph {
	g, _ := BuildCtx(context.Background(), a, cfg)
	return g
}

// BuildCtx is Build under a context. The trace walk polls the context
// between segments and every few thousand emitted instructions, so an
// ended context aborts construction promptly; the partial graph is
// returned alongside pta.ErrCanceled (or pta.ErrBudget for an expired
// deadline) and must not be used for detection.
func BuildCtx(ctx context.Context, a *pta.Analysis, cfg Config) (*Graph, error) {
	sp := cfg.Obs.StartSpan("shb")
	defer sp.End()
	g := &Graph{
		Locksets: lockset.NewTable(),
		out:      map[SegID][]Edge{},
		in:       map[SegID][]Edge{},
		a:        a,
	}
	g.Locksets.Bind(cfg.Obs)
	g.reachHits = cfg.Obs.Counter("shb.reach_hits")
	g.reachMisses = cfg.Obs.Counter("shb.reach_misses")
	b := &builder{a: a, g: g, cfg: cfg, segIdx: map[segKey]SegID{}, ctx: ctx}
	b.latch, b.stopWatch = pta.WatchCancel(ctx)
	defer b.stopWatch()
	main := a.MainNode()
	b.segment(main, pta.MainOrigin)
	for len(b.queue) > 0 {
		if b.latch.Tripped() {
			b.ctxErr = pta.CtxErr(b.ctx.Err())
			break
		}
		s := b.queue[0]
		b.queue = b.queue[1:]
		b.buildSegment(s)
		if b.ctxErr != nil {
			break
		}
	}
	if b.ctxErr != nil {
		return g, b.ctxErr
	}
	// Resolve pending joins now that every segment's Last is known.
	for _, pj := range b.joins {
		for _, seg := range g.Segs {
			if seg.Origin == pj.origin && seg.Last >= seg.First {
				g.addEdge(seg.Last, pj.node)
			}
		}
	}
	g.connectCondVars()
	g.connectChannels()
	g.connectWaitGroups()
	// Inter-origin edges were appended out of order (joins, notifies,
	// channel and WaitGroup barriers); reachability requires each segment's
	// out-list sorted by source node. To is the tie-breaker so the order of
	// edges sharing a source is independent of map iteration order.
	for segID := range g.out {
		es := g.out[segID]
		sort.Slice(es, func(i, j int) bool {
			if es[i].From != es[j].From {
				return es[i].From < es[j].From
			}
			return es[i].To < es[j].To
		})
	}
	if cfg.Obs != nil {
		edges := 0
		for _, es := range g.out {
			edges += len(es)
		}
		cfg.Obs.SetGauge("shb.nodes", int64(len(g.Nodes)))
		cfg.Obs.SetGauge("shb.edges", int64(edges))
		cfg.Obs.SetGauge("shb.segments", int64(len(g.Segs)))
		cfg.Obs.SetGauge("shb.regions", int64(g.Regions))
		cfg.Obs.SetGauge("shb.locksets", int64(g.Locksets.Len()))
		// Distributions behind precision and reachability cost: how many
		// inter-origin edges leave each segment, and how large the interned
		// locksets are (big locksets mean expensive intersections and weak
		// lock discipline).
		fanout := cfg.Obs.Histogram("shb.segment_fanout", obs.SizeBuckets)
		for _, seg := range g.Segs {
			fanout.Observe(float64(len(g.out[seg.ID])))
		}
		lsize := cfg.Obs.Histogram("shb.lockset_size", obs.SizeBuckets)
		for id := 0; id < g.Locksets.Len(); id++ {
			lsize.Observe(float64(len(g.Locksets.Set(lockset.ID(id)))))
		}
	}
	return g, nil
}

// connectCondVars adds the condition-variable happens-before edges: every
// notify on an object precedes every wait on the same object in a
// different segment (the static over-approximation of signal delivery).
func (g *Graph) connectCondVars() {
	waits := map[pta.ObjID][]int{}
	notifies := map[pta.ObjID][]int{}
	for id, n := range g.Nodes {
		switch n.Kind {
		case NWait:
			waits[n.Key.Obj] = append(waits[n.Key.Obj], id)
		case NNotify:
			notifies[n.Key.Obj] = append(notifies[n.Key.Obj], id)
		}
	}
	for obj, ns := range notifies {
		for _, nn := range ns {
			for _, wn := range waits[obj] {
				if g.Nodes[nn].Seg != g.Nodes[wn].Seg {
					g.addEdge(nn, wn)
				}
			}
		}
	}
}

// connectChannels adds the channel happens-before edges of Fava/Steffen's
// semantics, statically over-approximated:
//
//   - every send on a channel happens-before every receive on the same
//     channel in a different segment (send_i → recv_i collapses to
//     send → recv once indices are abstracted away);
//   - for unbuffered channels (cap 0) the rendezvous also orders the
//     receive before the send's continuation (recv → send), so code before
//     either endpoint happens-before code after the other;
//   - every close happens-before every receive on the same channel in a
//     different segment (receives from a closed channel observe the close,
//     a broadcast ordering).
//
// The bounded-queue backpressure rule recv_{i-cap} → send_i is deliberately
// NOT materialized for cap ≥ 1: with send/recv indices abstracted to one
// node set it would degenerate to recv → send on every buffered channel,
// claiming orderings a buffered send does not provide and hiding real
// races. The rule is kept only where the static abstraction is exact —
// cap = 0, where i-cap = i is the rendezvous itself.
func (g *Graph) connectChannels() {
	sends := map[pta.ObjID][]int{}
	recvs := map[pta.ObjID][]int{}
	closes := map[pta.ObjID][]int{}
	for id, n := range g.Nodes {
		switch n.Kind {
		case NChanSend:
			sends[n.Key.Obj] = append(sends[n.Key.Obj], id)
		case NChanRecv:
			recvs[n.Key.Obj] = append(recvs[n.Key.Obj], id)
		case NChanClose:
			closes[n.Key.Obj] = append(closes[n.Key.Obj], id)
		}
	}
	for obj, ss := range sends {
		rendezvous := g.a.Obj(obj).Cap == 0
		for _, sn := range ss {
			for _, rn := range recvs[obj] {
				if g.Nodes[sn].Seg == g.Nodes[rn].Seg {
					continue
				}
				g.addEdge(sn, rn)
				if rendezvous {
					g.addEdge(rn, sn)
				}
			}
		}
	}
	for obj, cs := range closes {
		for _, cn := range cs {
			for _, rn := range recvs[obj] {
				if g.Nodes[cn].Seg != g.Nodes[rn].Seg {
					g.addEdge(cn, rn)
				}
			}
		}
	}
}

// connectWaitGroups adds the barrier edges: every Done on a WaitGroup
// object happens-before the resumption of every Wait on the same object in
// a different segment — Wait joins the happens-before of all matched
// Dones. Add nodes participate in the trace (they bump the sync clock) but
// carry no edges: the counter value is not tracked statically.
func (g *Graph) connectWaitGroups() {
	dones := map[pta.ObjID][]int{}
	waits := map[pta.ObjID][]int{}
	for id, n := range g.Nodes {
		switch n.Kind {
		case NWgDone:
			dones[n.Key.Obj] = append(dones[n.Key.Obj], id)
		case NWgWait:
			waits[n.Key.Obj] = append(waits[n.Key.Obj], id)
		}
	}
	for obj, ds := range dones {
		for _, dn := range ds {
			for _, wn := range waits[obj] {
				if g.Nodes[dn].Seg != g.Nodes[wn].Seg {
					g.addEdge(dn, wn)
				}
			}
		}
	}
}

func (g *Graph) addEdge(from, to int) {
	e := Edge{from, to}
	fs := g.Nodes[from].Seg
	ts := g.Nodes[to].Seg
	g.out[fs] = append(g.out[fs], e)
	g.in[ts] = append(g.in[ts], e)
}

// OutEdges returns the inter-origin edges leaving seg.
func (g *Graph) OutEdges(seg SegID) []Edge { return g.out[seg] }

// Seg returns a segment by ID.
func (g *Graph) Seg(id SegID) *Segment { return g.Segs[id] }

// Origin returns the origin of a node.
func (g *Graph) Origin(n int) pta.OriginID { return g.Segs[g.Nodes[n].Seg].Origin }

// OriginGraphCost is the share of the graph owned by one origin, used by
// the driver's Introspection section.
type OriginGraphCost struct {
	Nodes    int64
	Edges    int64 // inter-origin edges leaving this origin's segments
	Segments int64
	ByKind   map[string]int64 // node counts keyed by NodeKind.String()
}

// CountByOrigin aggregates graph size per origin, indexed by OriginID up
// to numOrigins. The scan is deterministic (slice order, not map order).
func (g *Graph) CountByOrigin(numOrigins int) []OriginGraphCost {
	out := make([]OriginGraphCost, numOrigins)
	for _, nd := range g.Nodes {
		o := g.Segs[nd.Seg].Origin
		if int(o) >= numOrigins {
			continue
		}
		c := &out[o]
		c.Nodes++
		if c.ByKind == nil {
			c.ByKind = map[string]int64{}
		}
		c.ByKind[nd.Kind.String()]++
	}
	for _, seg := range g.Segs {
		if int(seg.Origin) >= numOrigins {
			continue
		}
		out[seg.Origin].Segments++
		out[seg.Origin].Edges += int64(len(g.out[seg.ID]))
	}
	return out
}

// MemBytes estimates the graph's arena footprint: node, edge (out + in
// mirrors) and segment storage. It deliberately ignores map headers and
// the lockset table, which are small next to the node arena.
func (g *Graph) MemBytes() int64 {
	bytes := int64(len(g.Nodes)) * int64(unsafe.Sizeof(Node{}))
	for _, es := range g.out {
		bytes += 2 * int64(len(es)) * int64(unsafe.Sizeof(Edge{}))
	}
	bytes += int64(len(g.Segs)) * int64(unsafe.Sizeof(Segment{}))
	return bytes
}

func (g *Graph) String() string {
	return fmt.Sprintf("shb{%d nodes, %d segments, %d locksets}", len(g.Nodes), len(g.Segs), g.Locksets.Len())
}

type segKey struct {
	entry  pta.FnCtxID
	origin pta.OriginID
}

type pendingJoin struct {
	origin pta.OriginID
	node   int
}

type builder struct {
	a         *pta.Analysis
	g         *Graph
	cfg       Config
	segIdx    map[segKey]SegID
	queue     []*Segment
	joins     []pendingJoin
	ctx       context.Context
	latch     *pta.Latch // trips when ctx ends; nil when not cancellable
	stopWatch func()
	ctxErr    error

	// per-segment walk state
	cur         *Segment
	lockStack   []lockFrame
	lockScratch []uint32 // currentLockset's reused flatten buffer
	onStack     map[pta.FnCtxID]bool
	// walked caps trace expansion: a contexted function is replayed again
	// only if the segment's synchronization state (spawns, joins, locks)
	// changed since its last replay. A call mesh would otherwise expand
	// the trace exponentially (fanout^depth); under unchanged sync state a
	// replay emits nodes with identical happens-before and lockset
	// signatures, which the race engine merges or dedups anyway.
	walked    map[pta.FnCtxID]int64
	syncClock int64
	truncated bool
}

type lockFrame struct {
	objs   []uint32
	region int32
}

// segment interns (entry, origin) and queues it for building. Spawn edges
// into a segment not yet built target its First node, which is resolved
// when the segment is created because segments are built strictly in FIFO
// order after reservation.
func (b *builder) segment(entry pta.FnCtxID, origin pta.OriginID) SegID {
	k := segKey{entry, origin}
	if id, ok := b.segIdx[k]; ok {
		return id
	}
	id := SegID(len(b.g.Segs))
	s := &Segment{ID: id, Origin: origin, Entry: entry, First: -1, Last: -2}
	b.g.Segs = append(b.g.Segs, s)
	b.segIdx[k] = id
	b.queue = append(b.queue, s)
	return id
}

func (b *builder) buildSegment(s *Segment) {
	b.cur = s
	b.lockStack = b.lockStack[:0]
	b.onStack = map[pta.FnCtxID]bool{}
	b.walked = map[pta.FnCtxID]int64{}
	b.syncClock = 1
	b.truncated = false
	s.First = len(b.g.Nodes)
	if b.cfg.AndroidEvents && b.a.Origins.Get(s.Origin).Kind == pta.KindEvent {
		// The Android event loop serializes handlers: model it as a global
		// lock held for the whole handler (§4.2).
		b.lockStack = append(b.lockStack, lockFrame{objs: []uint32{lockset.GlobalEventLock}, region: b.newRegion()})
	}
	b.walk(s.Entry)
	s.Last = len(b.g.Nodes) - 1
	if s.Last < s.First {
		// Empty trace: keep First at -1 so spawn edges into this segment
		// stay unresolved rather than aliasing an unrelated node.
		s.First, s.Last = -1, -2
	}
	// Resolve pending spawn edges into this segment.
	for i, e := range b.g.in[s.ID] {
		if e.To == -1 {
			if s.First <= s.Last {
				b.g.in[s.ID][i].To = s.First
				b.fixOut(e.From, s.ID)
			}
		}
	}
}

func (b *builder) fixOut(from int, target SegID) {
	fs := b.g.Nodes[from].Seg
	for i, e := range b.g.out[fs] {
		if e.From == from && e.To == -1 {
			// match by target segment via the in-list entry
			b.g.out[fs][i].To = b.g.Segs[target].First
			return
		}
	}
}

func (b *builder) newRegion() int32 {
	b.g.Regions++
	return b.g.Regions
}

func (b *builder) currentLockset() (lockset.ID, int32) {
	if len(b.lockStack) == 0 {
		return lockset.Empty, 0
	}
	// Flatten into the reused scratch buffer; Canon copies what it needs,
	// so handing it the same backing array every node is safe. This runs
	// once per emitted node and allocated a fresh slice before.
	objs := b.lockScratch[:0]
	for _, f := range b.lockStack {
		objs = append(objs, f.objs...)
	}
	b.lockScratch = objs[:0]
	return b.g.Locksets.Canon(objs), b.lockStack[len(b.lockStack)-1].region
}

func (b *builder) node(kind NodeKind, key osa.Key, in ir.Instr, fn *ir.Func) int {
	ls, region := b.currentLockset()
	id := len(b.g.Nodes)
	b.g.Nodes = append(b.g.Nodes, Node{
		Kind: kind, Seg: b.cur.ID, Key: key, Locks: ls, Region: region, Instr: in, Fn: fn,
	})
	return id
}

func (b *builder) full() bool {
	if b.cfg.MaxNodes > 0 && len(b.g.Nodes) >= b.cfg.MaxNodes {
		b.truncated = true
	}
	// Piggyback the cancellation poll on the per-instruction size check:
	// an ended context truncates the walk exactly like a full trace, and
	// BuildCtx turns the recorded error into its return value. The latch
	// makes the poll one atomic load, so it runs every instruction.
	if !b.truncated && b.ctxErr == nil && b.latch.Tripped() {
		b.ctxErr = pta.CtxErr(b.ctx.Err())
	}
	return b.truncated || b.ctxErr != nil
}

// walk replays the instructions of a contexted function into the current
// segment, inlining same-origin callees in statement order (rule ⑦'s
// call/return HB edges collapse into trace adjacency). Recursion is cut at
// functions already on the walk stack.
func (b *builder) walk(fn pta.FnCtxID) {
	if b.onStack[fn] || b.walked[fn] == b.syncClock || b.full() {
		return
	}
	b.onStack[fn] = true
	b.walked[fn] = b.syncClock
	defer delete(b.onStack, fn)
	fc := b.a.CG.Get(fn)
	ctx := fc.Ctx
	for idx, in := range fc.Fn.Body {
		if b.full() {
			return
		}
		switch in := in.(type) {
		case *ir.LoadField:
			b.accesses(NRead, fc, in, in.Obj, in.Field)
		case *ir.StoreField:
			b.accesses(NWrite, fc, in, in.Obj, in.Field)
		case *ir.LoadIndex:
			b.accesses(NRead, fc, in, in.Arr, ir.ArrayField)
		case *ir.StoreIndex:
			b.accesses(NWrite, fc, in, in.Arr, ir.ArrayField)
		case *ir.LoadStatic:
			b.node(NRead, osa.Key{Static: in.Class.Name + "." + in.Field}, in, fc.Fn)
		case *ir.StoreStatic:
			b.node(NWrite, osa.Key{Static: in.Class.Name + "." + in.Field}, in, fc.Fn)
		case *ir.MonitorEnter:
			objs := b.a.PointsTo(in.Obj, ctx).Slice()
			// The lock node carries the region it opens (its lockset is
			// still the set held *before* acquiring).
			region := b.newRegion()
			id := b.node(NLock, osa.Key{}, in, fc.Fn)
			b.g.Nodes[id].Region = region
			b.lockStack = append(b.lockStack, lockFrame{objs: objs, region: region})
			b.syncClock++
		case *ir.MonitorExit:
			if n := len(b.lockStack); n > 0 {
				b.lockStack = b.lockStack[:n-1]
			}
			b.node(NUnlock, osa.Key{}, in, fc.Fn)
			b.syncClock++
		case *ir.ChanSend:
			// Channel operations create inter-origin edges, so the sync
			// clock advances: a callee replayed after a send can carry new
			// happens-before and must not dedup against its pre-send replay.
			b.syncClock++
			b.chanNode(NChanSend, fc, in, in.Ch)
		case *ir.ChanRecv:
			b.syncClock++
			b.chanNode(NChanRecv, fc, in, in.Ch)
		case *ir.ChanClose:
			b.syncClock++
			b.chanNode(NChanClose, fc, in, in.Ch)
		case *ir.Call, *ir.Alloc:
			if c, ok := in.(*ir.Call); ok && c.Recv != nil && c.Static == nil {
				ent := b.a.Cfg.Entries
				switch {
				case ent.IsWait(c.Method):
					// Rule for condition waits: a notify on the same object
					// happens-before the resumption modeled by this node.
					b.syncClock++
					b.condNode(NWait, fc, c)
					continue
				case ent.IsNotify(c.Method):
					b.syncClock++
					b.condNode(NNotify, fc, c)
					continue
				}
				if kind, ok := wgKind(ent, c.Method); ok && len(b.a.CG.EdgesAt(fn, idx)) == 0 {
					// WaitGroup barrier: the call resolved to no user-defined
					// target (the receiver is an ambient WaitGroup object),
					// so model it as a barrier node. Classes defining real
					// Add/Done/Wait methods dispatch normally above.
					b.syncClock++
					b.wgNode(kind, fc, c)
					continue
				}
			}
			for _, e := range b.a.CG.EdgesAt(fn, idx) {
				switch e.Kind {
				case pta.EdgeCall, pta.EdgeInit:
					b.walk(e.Callee)
				case pta.EdgeSpawn:
					b.syncClock++
					ent := b.node(NEntry, osa.Key{}, in.(ir.Instr), fc.Fn)
					child := b.segment(e.Callee, e.Origin)
					// Target First may be unknown yet (-1); resolved when
					// the child segment is built.
					first := b.g.Segs[child].First
					b.g.out[b.cur.ID] = append(b.g.out[b.cur.ID], Edge{ent, first})
					b.g.in[child] = append(b.g.in[child], Edge{ent, first})
					if first >= 0 {
						// already built: fix the out entry we just added
						b.g.out[b.cur.ID][len(b.g.out[b.cur.ID])-1].To = first
					}
				case pta.EdgeJoin:
					b.syncClock++
					jn := b.node(NJoin, osa.Key{}, in.(ir.Instr), fc.Fn)
					b.joins = append(b.joins, pendingJoin{e.Origin, jn})
				}
			}
		}
	}
}

// condNode records a wait/notify node per object the receiver may point
// to; Build connects notify → wait afterwards.
func (b *builder) condNode(kind NodeKind, fc pta.FnCtx, in *ir.Call) {
	pts := b.a.PointsTo(in.Recv, fc.Ctx)
	pts.ForEach(func(o uint32) {
		b.node(kind, osa.Key{Obj: pta.ObjID(o), Field: "$monitor"}, in, fc.Fn)
	})
}

// wgKind classifies a WaitGroup method name, if it is one.
func wgKind(ent ir.EntryConfig, method string) (NodeKind, bool) {
	switch {
	case ent.IsWgAdd(method):
		return NWgAdd, true
	case ent.IsWgDone(method):
		return NWgDone, true
	case ent.IsWgWait(method):
		return NWgWait, true
	}
	return 0, false
}

// wgNode records a WaitGroup barrier node per object the receiver may
// point to; Build connects Done → Wait afterwards.
func (b *builder) wgNode(kind NodeKind, fc pta.FnCtx, in *ir.Call) {
	pts := b.a.PointsTo(in.Recv, fc.Ctx)
	pts.ForEach(func(o uint32) {
		b.node(kind, osa.Key{Obj: pta.ObjID(o), Field: "$wg"}, in, fc.Fn)
	})
}

// chanNode records a channel-operation node per channel object the operand
// may point to; Build connects the channel edges afterwards.
func (b *builder) chanNode(kind NodeKind, fc pta.FnCtx, in ir.Instr, ch *ir.Var) {
	pts := b.a.PointsTo(ch, fc.Ctx)
	pts.ForEach(func(o uint32) {
		if b.a.Obj(pta.ObjID(o)).Kind != pta.ObjChan {
			return
		}
		b.node(kind, osa.Key{Obj: pta.ObjID(o), Field: "$chan"}, in, fc.Fn)
	})
}

func (b *builder) accesses(kind NodeKind, fc pta.FnCtx, in ir.Instr, basev *ir.Var, field string) {
	pts := b.a.PointsTo(basev, fc.Ctx)
	pts.ForEach(func(o uint32) {
		b.node(kind, osa.Key{Obj: pta.ObjID(o), Field: field}, in, fc.Fn)
	})
}
