package shb

import (
	"math"
	"sort"
)

type reachKey struct {
	seg SegID
	idx int // index of the first usable outgoing edge
}

// HappensBefore reports whether node x happens before node y. Within a
// segment this is the constant-time integer comparison of the paper's
// first optimization; across segments it is reachability over the
// inter-origin edges, with the frontier cached per (segment, edge-suffix).
func (g *Graph) HappensBefore(x, y int) bool {
	return g.happensBefore(x, y, true)
}

// HappensBeforeNoCache is the uncached variant used by the naive baseline.
func (g *Graph) HappensBeforeNoCache(x, y int) bool {
	return g.happensBefore(x, y, false)
}

func (g *Graph) happensBefore(x, y int, useCache bool) bool {
	sx, sy := g.Nodes[x].Seg, g.Nodes[y].Seg
	if sx == sy {
		return x < y
	}
	f := g.frontier(sx, x, useCache)
	return f[sy] <= y
}

// frontier computes, for every segment, the minimum node position
// reachable from (seg, pos) via inter-origin edges. Unreachable segments
// map to math.MaxInt.
func (g *Graph) frontier(seg SegID, pos int, useCache bool) []int {
	edges := g.out[seg]
	idx := sort.Search(len(edges), func(i int) bool { return edges[i].From >= pos })
	key := reachKey{seg, idx}
	if useCache {
		if f, ok := g.reachCache[key]; ok {
			return f
		}
	}
	f := make([]int, len(g.Segs))
	for i := range f {
		f[i] = math.MaxInt
	}
	// Work from (seg, pos): an outgoing edge (from → to) is usable when
	// from is at or after the minimum reached position in its segment.
	min := map[SegID]int{seg: pos}
	f[seg] = math.MaxInt // x does not happen before earlier nodes of its own segment here
	wl := []SegID{seg}
	for len(wl) > 0 {
		s := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		p := min[s]
		es := g.out[s]
		i := sort.Search(len(es), func(i int) bool { return es[i].From >= p })
		for ; i < len(es); i++ {
			to := es[i].To
			if to < 0 {
				continue
			}
			ts := g.Nodes[to].Seg
			if to < f[ts] {
				f[ts] = to
			}
			if cur, ok := min[ts]; !ok || to < cur {
				min[ts] = to
				wl = append(wl, ts)
			}
		}
	}
	if useCache {
		g.reachCache[key] = f
	}
	return f
}
