package shb

import (
	"math"
	"sort"
	"sync"
)

type reachKey struct {
	seg SegID
	idx int // index of the first usable outgoing edge
}

// reachCache is a sharded, single-flight cache of reachability frontiers.
// Sharding keeps lock contention low when many detection workers query
// happens-before concurrently; the per-entry sync.Once guarantees one
// traversal populates a frontier no matter how many goroutines race to
// the same key, and every caller then shares the immutable slice.
type reachCache struct {
	shards [reachShards]reachShard
}

const reachShards = 32

type reachShard struct {
	mu sync.Mutex
	m  map[reachKey]*frontierEntry
}

type frontierEntry struct {
	once sync.Once
	f    []int
}

// entry interns the cache slot for key, creating it under the shard lock.
// The frontier itself is computed outside the lock via entry.once.
func (c *reachCache) entry(key reachKey) *frontierEntry {
	s := &c.shards[(uint32(key.seg)*31+uint32(key.idx))%reachShards]
	s.mu.Lock()
	e := s.m[key]
	if e == nil {
		if s.m == nil {
			s.m = map[reachKey]*frontierEntry{}
		}
		e = &frontierEntry{}
		s.m[key] = e
	}
	s.mu.Unlock()
	return e
}

// HappensBefore reports whether node x happens before node y. Within a
// segment this is the constant-time integer comparison of the paper's
// first optimization; across segments it is reachability over the
// inter-origin edges, with the frontier cached per (segment, edge-suffix).
// Safe for concurrent use once the graph is built.
func (g *Graph) HappensBefore(x, y int) bool {
	return g.happensBefore(x, y, true)
}

// HappensBeforeNoCache is the uncached variant used by the naive baseline.
// It allocates a fresh frontier per query and is likewise safe for
// concurrent use.
func (g *Graph) HappensBeforeNoCache(x, y int) bool {
	return g.happensBefore(x, y, false)
}

func (g *Graph) happensBefore(x, y int, useCache bool) bool {
	sx, sy := g.Nodes[x].Seg, g.Nodes[y].Seg
	if sx == sy {
		return x < y
	}
	f := g.frontier(sx, x, useCache)
	return f[sy] <= y
}

// frontier returns, for every segment, the minimum node position reachable
// from (seg, pos) via inter-origin edges. The result depends on pos only
// through the index of the first outgoing edge at or after it, which is
// what the cache keys on. The returned slice must not be modified.
func (g *Graph) frontier(seg SegID, pos int, useCache bool) []int {
	edges := g.out[seg]
	idx := sort.Search(len(edges), func(i int) bool { return edges[i].From >= pos })
	if !useCache {
		return g.computeFrontier(seg, pos)
	}
	e := g.reach.entry(reachKey{seg, idx})
	computed := false
	e.once.Do(func() {
		e.f = g.computeFrontier(seg, pos)
		computed = true
	})
	// Cache accounting: the goroutine that ran the traversal records a
	// miss, every other caller a hit. The counters are nil (and Inc a
	// no-op) when observability is disabled.
	if computed {
		g.reachMisses.Inc()
	} else {
		g.reachHits.Inc()
	}
	return e.f
}

// computeFrontier performs the worklist traversal. Unreachable segments
// map to math.MaxInt. It only reads graph state that is immutable after
// Build, so concurrent calls are safe.
func (g *Graph) computeFrontier(seg SegID, pos int) []int {
	f := make([]int, len(g.Segs))
	for i := range f {
		f[i] = math.MaxInt
	}
	// Work from (seg, pos): an outgoing edge (from → to) is usable when
	// from is at or after the minimum reached position in its segment.
	min := map[SegID]int{seg: pos}
	f[seg] = math.MaxInt // x does not happen before earlier nodes of its own segment here
	wl := []SegID{seg}
	for len(wl) > 0 {
		s := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		p := min[s]
		es := g.out[s]
		i := sort.Search(len(es), func(i int) bool { return es[i].From >= p })
		for ; i < len(es); i++ {
			to := es[i].To
			if to < 0 {
				continue
			}
			ts := g.Nodes[to].Seg
			if to < f[ts] {
				f[ts] = to
			}
			if cur, ok := min[ts]; !ok || to < cur {
				min[ts] = to
				wl = append(wl, ts)
			}
		}
	}
	return f
}
