package obs

import (
	"encoding/json"
	"io"
	"os"
)

// This file exports the span tree in the Chrome trace_event JSON array
// format, loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
// Driver-side phase spans share one timeline (tid 1); every concurrent
// child span — a detection worker shard — gets its own tid so shards
// render as overlapping tracks. Each span becomes a balanced B/E
// ("duration begin/end") event pair; tids are announced with thread_name
// metadata events.

// TraceEvent is one Chrome trace_event entry.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds from the registry start
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	tracePID   = 1
	driverTID  = 1
	phaseBegin = "B"
	phaseEnd   = "E"
	phaseMeta  = "M"
)

// TraceEvents flattens the report's span tree into trace events. The
// result is deterministic for a fixed report: spans are emitted in tree
// order and tids are assigned in encounter order.
func (rs *RunStats) TraceEvents() []TraceEvent {
	if rs == nil {
		return nil
	}
	events := []TraceEvent{{
		Name: "process_name", Ph: phaseMeta, PID: tracePID, TID: driverTID,
		Args: map[string]any{"name": "o2"},
	}, {
		Name: "thread_name", Ph: phaseMeta, PID: tracePID, TID: driverTID,
		Args: map[string]any{"name": "driver"},
	}}
	nextTID := driverTID + 1
	var walk func(p PhaseStats, tid int)
	walk = func(p PhaseStats, tid int) {
		if p.Concurrent {
			tid = nextTID
			nextTID++
			events = append(events, TraceEvent{
				Name: "thread_name", Ph: phaseMeta, PID: tracePID, TID: tid,
				Args: map[string]any{"name": p.Name},
			})
		}
		startUS := float64(p.StartNS) / 1e3
		events = append(events, TraceEvent{
			Name: p.Name, Ph: phaseBegin, TS: startUS, PID: tracePID, TID: tid,
			Args: map[string]any{"cpu_ns": p.CPUNS},
		})
		for _, c := range p.Children {
			walk(c, tid)
		}
		events = append(events, TraceEvent{
			Name: p.Name, Ph: phaseEnd, TS: float64(p.StartNS+p.WallNS) / 1e3,
			PID: tracePID, TID: tid,
		})
	}
	for _, p := range rs.Phases {
		walk(p, driverTID)
	}
	return events
}

// WriteTrace writes the trace_event JSON array to w.
func (rs *RunStats) WriteTrace(w io.Writer) error {
	data, err := json.MarshalIndent(rs.TraceEvents(), "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteTraceFile writes the trace_event JSON array to path — the
// -trace-out artifact of o2 and o2bench.
func (rs *RunStats) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rs.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
