package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// buildShardedRegistry runs a miniature pipeline shape through a live
// registry: one root with two sequential phases, the second phase fanning
// out into three concurrent worker-shard children.
func buildShardedRegistry() *Registry {
	r := New()
	root := r.StartSpan("analyze")
	p := r.StartSpan("pta")
	p.End()
	d := r.StartSpan("detect")
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ws := d.Child([]string{"worker-00", "worker-01", "worker-02"}[i])
			ws.End()
		}(i)
	}
	wg.Wait()
	d.End()
	root.End()
	return r
}

// TestTraceEventSchema validates the trace_event contract: the export is
// a valid JSON array, every B has a matching E on the same tid with
// end ≥ begin, and concurrent shard spans carry distinct non-driver tids.
func TestTraceEventSchema(t *testing.T) {
	rs := buildShardedRegistry().Snapshot()
	var buf bytes.Buffer
	if err := rs.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []TraceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, buf.String())
	}

	type open struct {
		name string
		ts   float64
	}
	stacks := map[int][]open{}
	shardTIDs := map[int]bool{}
	begins, ends := 0, 0
	for _, e := range events {
		switch e.Ph {
		case "M":
			continue
		case "B":
			begins++
			stacks[e.TID] = append(stacks[e.TID], open{e.Name, e.TS})
		case "E":
			ends++
			st := stacks[e.TID]
			if len(st) == 0 {
				t.Fatalf("E without open B on tid %d: %+v", e.TID, e)
			}
			top := st[len(st)-1]
			if top.name != e.Name {
				t.Fatalf("unbalanced B/E on tid %d: open %q, closing %q", e.TID, top.name, e.Name)
			}
			if e.TS < top.ts {
				t.Fatalf("span %q ends (%v) before it begins (%v)", e.Name, e.TS, top.ts)
			}
			stacks[e.TID] = st[:len(st)-1]
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
		if e.PID != tracePID {
			t.Fatalf("event on pid %d, want %d", e.PID, tracePID)
		}
		if len(e.Name) >= 7 && e.Name[:7] == "worker-" && e.Ph == "B" {
			shardTIDs[e.TID] = true
			if e.TID == driverTID {
				t.Fatalf("shard span %q on the driver tid", e.Name)
			}
		}
	}
	if begins != ends || begins != 6 { // analyze, pta, detect + 3 worker shards
		t.Fatalf("B/E pairs unbalanced: %d begins, %d ends (want 6 each)", begins, ends)
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("tid %d left %d spans open", tid, len(st))
		}
	}
	if len(shardTIDs) != 3 {
		t.Fatalf("shard tids = %v, want 3 distinct", shardTIDs)
	}

	// Metadata names the process and every thread track.
	var procNamed bool
	threadNames := map[int]bool{}
	for _, e := range events {
		if e.Ph != "M" {
			continue
		}
		switch e.Name {
		case "process_name":
			procNamed = true
		case "thread_name":
			threadNames[e.TID] = true
		}
	}
	if !procNamed {
		t.Error("missing process_name metadata")
	}
	for tid := range shardTIDs {
		if !threadNames[tid] {
			t.Errorf("shard tid %d has no thread_name metadata", tid)
		}
	}
	if (*RunStats)(nil).TraceEvents() != nil {
		t.Error("nil RunStats produced events")
	}
}

// TestSnapshotStartOffsets checks the new PhaseStats fields the trace
// export depends on: children start at or after their parent, concurrent
// shards are flagged, and the deterministic projection drops both.
func TestSnapshotStartOffsets(t *testing.T) {
	rs := buildShardedRegistry().Snapshot()
	if len(rs.Phases) != 1 {
		t.Fatalf("roots = %d", len(rs.Phases))
	}
	root := rs.Phases[0]
	if root.Concurrent {
		t.Error("root span flagged concurrent")
	}
	for _, c := range root.Children {
		if c.StartNS < root.StartNS {
			t.Errorf("child %q starts (%d) before parent (%d)", c.Name, c.StartNS, root.StartNS)
		}
		if c.Name == "detect" {
			if len(c.Children) != 3 {
				t.Fatalf("detect children = %d", len(c.Children))
			}
			for _, ws := range c.Children {
				if !ws.Concurrent {
					t.Errorf("shard %q not flagged concurrent", ws.Name)
				}
			}
		}
	}
	det := rs.Deterministic()
	var check func(p PhaseStats)
	check = func(p PhaseStats) {
		if p.StartNS != 0 || p.Concurrent {
			t.Errorf("deterministic projection kept timing fields on %q", p.Name)
		}
		for _, c := range p.Children {
			check(c)
		}
	}
	for _, p := range det.Phases {
		check(p)
	}
}
