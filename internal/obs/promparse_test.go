package obs

import (
	"bytes"
	"math"
	"testing"
)

// TestParsePromTextRoundTrip feeds the registry's own exposition back
// through the parser — the exact path `o2 submit -metrics` drives.
func TestParsePromTextRoundTrip(t *testing.T) {
	reg := New()
	reg.Counter("race.pairs_checked").Add(42)
	reg.SetGauge("shb.nodes", 7)
	h := reg.Histogram("server.request_seconds", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	fams, err := ParsePromText(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*PromFamily{}
	for i := range fams {
		byName[fams[i].Name] = &fams[i]
	}

	c, ok := byName["o2_race_pairs_checked"]
	if !ok || c.Type != "counter" || len(c.Samples) != 1 || c.Samples[0].Value != 42 {
		t.Fatalf("counter family = %+v", c)
	}
	g, ok := byName["o2_shb_nodes"]
	if !ok || g.Type != "gauge" || g.Samples[0].Value != 7 {
		t.Fatalf("gauge family = %+v", g)
	}

	f, ok := byName["o2_server_request_seconds"]
	if !ok || f.Type != "histogram" {
		t.Fatalf("histogram family = %+v", f)
	}
	hs, ok := f.Histogram()
	if !ok {
		t.Fatal("family did not summarize as a histogram")
	}
	if hs.Count != 4 {
		t.Fatalf("count = %v, want 4", hs.Count)
	}
	if want := 0.05 + 0.5 + 5 + 50; math.Abs(hs.Sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", hs.Sum, want)
	}
	if len(hs.Buckets) != 4 || !math.IsInf(hs.Buckets[3].LE, 1) {
		t.Fatalf("buckets = %+v", hs.Buckets)
	}
}

func TestHistSummaryQuantile(t *testing.T) {
	hs := HistSummary{
		Count: 10,
		Buckets: []PromBucket{
			{LE: 1, Count: 4},
			{LE: 2, Count: 8},
			{LE: 4, Count: 10},
			{LE: math.Inf(1), Count: 10},
		},
	}
	// p50 lands in the (1,2] bucket: rank 5 of 10, one of four
	// observations into the bucket -> 1 + (5-4)/4 * (2-1).
	if q := hs.Quantile(0.5); math.Abs(q-1.25) > 1e-9 {
		t.Fatalf("p50 = %v, want 1.25", q)
	}
	// p100 clamps to the highest finite bound even though the rank falls
	// in the +Inf bucket.
	if q := hs.Quantile(1); q != 4 {
		t.Fatalf("p100 = %v, want 4", q)
	}
	// Empty summaries have no quantiles.
	if q := (HistSummary{}).Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty p50 = %v, want NaN", q)
	}
}

func TestParsePromTextMalformed(t *testing.T) {
	if _, err := ParsePromText([]byte("o2_x not_a_number\n")); err == nil {
		t.Fatal("bad sample value parsed")
	}
}
