//go:build linux || darwin

package obs

import (
	"syscall"
	"time"
)

// processCPU returns the process-wide user+system CPU time. Spans record
// rusage deltas, so a phase's CPU column reflects everything the process
// burned while the phase ran (including all worker goroutines).
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano()) + time.Duration(ru.Stime.Nano())
}
