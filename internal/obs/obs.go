// Package obs is the pipeline's observability layer: named counters and
// gauges with atomic updates, hierarchical wall+CPU spans wrapping each
// pipeline phase (and each detection worker shard), and a stable,
// versioned JSON run report (RunStats) that the CLI, the bench harness and
// CI's bench gate consume.
//
// The whole API is nil-safe: a nil *Registry, *Counter or *Span turns
// every method into a no-op, so instrumentation stays inline on hot paths
// and compiles down to a predictable nil-check when observability is
// disabled. Benchmarked on the pairwise-check hot path the disabled
// registry costs under 2% (see BenchmarkParallelDetectObs).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically updated atomic int64. The zero value is
// ready to use; a nil Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter not attached to any registry
// (used where stats must stay cheap and always-on, e.g. lockset tables,
// and may later be bound into a registry snapshot).
func NewCounter() *Counter { return &Counter{} }

// Add atomically adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds 1. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Load atomically reads the value; 0 on a nil counter.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Set atomically replaces the value (gauge semantics). No-op on nil.
func (c *Counter) Set(n int64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// DefBuckets are the default histogram bucket bounds in seconds, tuned
// for request/analysis latencies (sub-millisecond cache hits through
// multi-second cold analyses).
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket histogram with atomic per-bucket counters,
// following the package's nil-safe design: a nil Histogram discards
// observations, so callers hold and observe unconditionally. Bounds are
// inclusive upper bounds in ascending order; values above the last bound
// land in an implicit +Inf bucket. The exposition (Prometheus text,
// RunStats snapshot) reports cumulative bucket counts.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram returns a standalone histogram over the given ascending
// bounds (DefBuckets when nil).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on a nil histogram; the disabled path
// is a single nil check, like Counter.Add.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, i.e. the le bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the common
// latency-instrumentation call. No-op on nil.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values; 0 on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the finite upper bounds (not a copy; do not modify).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Cumulative returns the cumulative count at or below each finite bound,
// aligned with Bounds. The total (the +Inf bucket) is Count.
func (h *Histogram) Cumulative() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.bounds))
	var acc int64
	for i := range h.bounds {
		acc += h.counts[i].Load()
		out[i] = acc
	}
	return out
}

// Registry interns counters, gauges and histograms by name and owns the
// span tree. All methods are safe for concurrent use and no-ops on a nil
// receiver.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Counter
	hists    map[string]*Histogram

	start time.Time
	roots []*Span
	cur   *Span // innermost open span started by StartSpan
}

// New returns an enabled registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Counter{},
		hists:    map[string]*Histogram{},
		start:    time.Now(),
	}
}

// Start returns the registry creation time (the zero time on nil) — the
// origin of span start offsets in RunStats and trace exports.
func (r *Registry) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// Enabled reports whether the registry collects anything.
func (r *Registry) Enabled() bool { return r != nil }

// Counter interns the named counter. Returns nil on a nil registry, so
// the result can be held and updated unconditionally.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram interns the named histogram over the given bounds (DefBuckets
// when nil). The bounds of the first interning win; later calls with
// different bounds return the existing histogram. Returns nil on a nil
// registry, so the result can be held and observed unconditionally.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// SetGauge records a point-in-time value (sizes, configuration). Gauges
// are reported separately from counters in RunStats.
func (r *Registry) SetGauge(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	g := r.gauges[name]
	if g == nil {
		g = &Counter{}
		r.gauges[name] = g
	}
	r.mu.Unlock()
	g.Set(v)
}

// Span is one timed region of the pipeline. Spans form a tree: phases
// started from the driver goroutine nest via Registry.StartSpan /
// Span.End, and concurrent shards (detection workers) hang off an open
// phase via Span.Child. Wall time is the span's own clock; CPU time is
// the process-wide rusage delta over the span, so concurrent children
// overlap (their CPU sums can exceed the parent's wall time by design).
type Span struct {
	Name string

	reg    *Registry
	parent *Span

	// concurrent marks spans opened via Child: they run on their own
	// goroutine (worker shards) and are exported on distinct trace tids.
	concurrent bool

	start    time.Time
	startCPU time.Duration

	mu       sync.Mutex
	children []*Span
	wall     time.Duration
	cpu      time.Duration
	ended    bool
}

// StartSpan opens a span as a child of the innermost open span (or as a
// root). Ends must be properly nested; concurrent regions use Child.
// Returns nil (a no-op span) on a nil registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{Name: name, reg: r, start: time.Now(), startCPU: processCPU()}
	r.mu.Lock()
	s.parent = r.cur
	if r.cur != nil {
		r.cur.addChild(s)
	} else {
		r.roots = append(r.roots, s)
	}
	r.cur = s
	r.mu.Unlock()
	return s
}

// Child opens a concurrent child span. Unlike StartSpan it does not
// become the registry's innermost span, so any number of children may be
// open at once (one per worker shard). No-op on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, reg: s.reg, parent: s, concurrent: true, start: time.Now(), startCPU: processCPU()}
	s.addChild(c)
	return c
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// End closes the span, recording wall and CPU time. If the span is the
// registry's innermost open span the cursor pops back to its parent.
// No-op on a nil or already-ended span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.wall = time.Since(s.start)
	s.cpu = processCPU() - s.startCPU
	s.mu.Unlock()
	if s.reg != nil {
		s.reg.mu.Lock()
		if s.reg.cur == s {
			s.reg.cur = s.parent
		}
		s.reg.mu.Unlock()
	}
}

// Wall returns the recorded wall time (the running time if not ended).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.wall
}
