package obs

import "runtime/metrics"

// HeapCounters is a snapshot of the runtime's cumulative heap-allocation
// totals. Both values are monotonically increasing over the life of the
// process, so the difference of two snapshots is the number of objects and
// bytes allocated between them — the same quantities testing.B reports as
// allocs/op and B/op, but readable around an arbitrary code region.
type HeapCounters struct {
	Objects uint64
	Bytes   uint64
}

// ReadHeapCounters samples the cumulative heap allocation totals via
// runtime/metrics, which reads the already-maintained counters without a
// stop-the-world (unlike runtime.ReadMemStats). Cheap enough to call at
// phase boundaries inside a benchmark.
func ReadHeapCounters() HeapCounters {
	samples := [2]metrics.Sample{
		{Name: "/gc/heap/allocs:objects"},
		{Name: "/gc/heap/allocs:bytes"},
	}
	metrics.Read(samples[:])
	return HeapCounters{
		Objects: samples[0].Value.Uint64(),
		Bytes:   samples[1].Value.Uint64(),
	}
}

// HeapGauges publishes the allocation delta since the given baseline as
// two gauges, "<phase>.heap_allocs" and "<phase>.heap_bytes". The
// "_allocs"/"_bytes" suffixes mark them as non-deterministic (GC assists
// and timer goroutines allocate too), so RunStats.Deterministic strips
// them alongside the "_ns" times; CI gates them through explicit budgets
// instead of byte comparison. No-op on a nil registry.
func (r *Registry) HeapGauges(phase string, base HeapCounters) {
	if !r.Enabled() {
		return
	}
	now := ReadHeapCounters()
	r.SetGauge(phase+".heap_allocs", int64(now.Objects-base.Objects))
	r.SetGauge(phase+".heap_bytes", int64(now.Bytes-base.Bytes))
}
