package obs

import (
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety exercises every entry point on nil receivers: the
// disabled-registry path used throughout the pipeline's hot loops.
func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x")
	if c != nil {
		t.Fatal("nil registry interned a counter")
	}
	c.Add(5)
	c.Inc()
	c.Set(7)
	if c.Load() != 0 {
		t.Fatal("nil counter holds a value")
	}
	r.SetGauge("g", 1)
	s := r.StartSpan("phase")
	s2 := s.Child("shard")
	s2.End()
	s.End()
	if s.Wall() != 0 {
		t.Fatal("nil span has wall time")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
	r.WriteSpans(&strings.Builder{})
	var rs *RunStats
	if rs.Deterministic() != nil {
		t.Fatal("nil RunStats produced a deterministic view")
	}
}

func TestCountersAndGauges(t *testing.T) {
	r := New()
	c := r.Counter("race.pairs_checked")
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("race.pairs_checked") != c {
		t.Fatal("counter not interned")
	}
	r.SetGauge("shb.nodes", 42)
	r.SetGauge("shb.nodes", 43)
	r.Counter("zero.counter") // stays 0: must be omitted from the report
	rs := r.Snapshot()
	if rs.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", rs.Schema, SchemaVersion)
	}
	if rs.Counters["race.pairs_checked"] != 4 {
		t.Fatalf("snapshot counters = %v", rs.Counters)
	}
	if rs.Gauges["shb.nodes"] != 43 {
		t.Fatalf("snapshot gauges = %v", rs.Gauges)
	}
	if _, ok := rs.Counters["zero.counter"]; ok {
		t.Fatal("zero-valued counter not omitted")
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := New()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
}

func TestSpanTree(t *testing.T) {
	r := New()
	a := r.StartSpan("analyze")
	p := r.StartSpan("pta")
	time.Sleep(time.Millisecond)
	p.End()
	d := r.StartSpan("detect")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := d.Child("worker")
			time.Sleep(time.Millisecond)
			w.End()
		}(i)
	}
	wg.Wait()
	d.End()
	a.End()

	rs := r.Snapshot()
	if len(rs.Phases) != 1 || rs.Phases[0].Name != "analyze" {
		t.Fatalf("roots = %+v", rs.Phases)
	}
	kids := rs.Phases[0].Children
	if len(kids) != 2 || kids[0].Name != "pta" || kids[1].Name != "detect" {
		t.Fatalf("children = %+v", kids)
	}
	if kids[0].WallNS <= 0 {
		t.Fatal("pta span has no wall time")
	}
	if len(kids[1].Children) != 4 {
		t.Fatalf("detect has %d worker shards, want 4", len(kids[1].Children))
	}

	var sb strings.Builder
	r.WriteSpans(&sb)
	out := sb.String()
	for _, want := range []string{"analyze", "pta", "detect", "worker"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteSpans output missing %q:\n%s", want, out)
		}
	}
}

func TestSpanDoubleEndAndCursor(t *testing.T) {
	r := New()
	a := r.StartSpan("a")
	b := r.StartSpan("b")
	b.End()
	b.End() // idempotent
	c := r.StartSpan("c")
	c.End()
	a.End()
	rs := r.Snapshot()
	if len(rs.Phases) != 1 || len(rs.Phases[0].Children) != 2 {
		t.Fatalf("tree = %+v", rs.Phases)
	}
}

func TestDerivedRates(t *testing.T) {
	r := New()
	r.Counter("lockset.inter_hits").Add(30)
	r.Counter("lockset.inter_misses").Add(10)
	r.Counter("shb.reach_hits").Add(9)
	r.Counter("shb.reach_misses").Add(1)
	r.SetGauge("race.workers", 2)
	r.SetGauge("race.worker_busy_ns", 150)
	r.SetGauge("race.detect_wall_ns", 100)
	rs := r.Snapshot()
	if got := rs.Rates["lockset.inter_hit_rate"]; got != 0.75 {
		t.Fatalf("lockset hit rate = %v, want 0.75", got)
	}
	if got := rs.Rates["shb.reach_hit_rate"]; got != 0.9 {
		t.Fatalf("reach hit rate = %v, want 0.9", got)
	}
	if got := rs.Rates["race.worker_utilization"]; got != 0.75 {
		t.Fatalf("utilization = %v, want 0.75", got)
	}
}

func TestDeterministicStripsTimes(t *testing.T) {
	r := New()
	s := r.StartSpan("pta")
	time.Sleep(time.Millisecond)
	s.End()
	r.Counter("race.pairs_checked").Add(10)
	r.SetGauge("race.detect_wall_ns", 12345)
	r.SetGauge("race.worker_busy_ns", 12000)
	r.SetGauge("race.workers", 8)
	r.SetGauge("shb.nodes", 7)
	r.HeapGauges("detect", HeapCounters{})
	r.Counter("lockset.inter_hits").Add(1)
	r.Counter("lockset.inter_misses").Add(1)
	det := r.Snapshot().Deterministic()
	if det.Phases[0].WallNS != 0 || det.Phases[0].CPUNS != 0 {
		t.Fatalf("deterministic phases keep times: %+v", det.Phases)
	}
	if _, ok := det.Gauges["race.detect_wall_ns"]; ok {
		t.Fatal("deterministic view keeps _ns gauge")
	}
	if _, ok := det.Gauges["race.workers"]; ok {
		t.Fatal("deterministic view keeps machine-dependent worker count")
	}
	if _, ok := det.Gauges["detect.heap_allocs"]; ok {
		t.Fatal("deterministic view keeps heap-alloc gauge (budget-gated, not byte-compared)")
	}
	if _, ok := det.Gauges["detect.heap_bytes"]; ok {
		t.Fatal("deterministic view keeps heap-bytes gauge")
	}
	if det.Gauges["shb.nodes"] != 7 || det.Counters["race.pairs_checked"] != 10 {
		t.Fatalf("deterministic view dropped data: %+v", det)
	}
	if _, ok := det.Rates["race.worker_utilization"]; ok {
		t.Fatal("deterministic view keeps utilization")
	}
	if det.Rates["lockset.inter_hit_rate"] != 0.5 {
		t.Fatalf("deterministic view lost hit rate: %+v", det.Rates)
	}
}

// TestJSONStableRoundTrip pins the top-level JSON field names: changing
// them requires a SchemaVersion bump (and a golden update).
func TestJSONStableRoundTrip(t *testing.T) {
	r := New()
	s := r.StartSpan("pta")
	s.End()
	r.Counter("race.pairs_checked").Add(1)
	r.SetGauge("shb.nodes", 2)
	r.Counter("lockset.inter_hits").Add(1)
	data, err := r.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "phases", "counters", "gauges", "rates"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("report missing %q:\n%s", key, data)
		}
	}
	var back RunStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || back.Counters["race.pairs_checked"] != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestWriteFile(t *testing.T) {
	r := New()
	r.Counter("x").Inc()
	path := t.TempDir() + "/stats.json"
	if err := r.Snapshot().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var back RunStats
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["x"] != 1 {
		t.Fatalf("written report = %+v", back)
	}
}
