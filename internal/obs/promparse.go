package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of prom.go: a small parser for the
// Prometheus text exposition format (version 0.0.4), used by the
// `o2 submit -metrics` scraper to render histogram families as
// count/sum/quantile summaries instead of raw bucket series. It parses
// the subset the exposition side emits — `# TYPE` comments, scalar
// samples, and `{le="..."}`-labeled histogram buckets — and tolerates
// arbitrary label sets on samples (labels beyond `le` are kept verbatim
// as part of the sample name).

// PromSample is one sample line: the metric name including any label
// block except a parsed-out `le`, and the value.
type PromSample struct {
	Name  string  // name plus labels, e.g. `o2_sched_jobs{state="done"}`
	LE    float64 // histogram bucket bound; NaN when the sample has no le label
	Value float64
}

// PromFamily is one metric family in appearance order: its `# TYPE`
// declaration and the samples that follow it.
type PromFamily struct {
	Name    string // base metric name from the TYPE line
	Type    string // "counter", "gauge", "histogram", or "untyped"
	Samples []PromSample
}

// ParsePromText parses a text exposition into families, preserving the
// order of `# TYPE` declarations. Samples preceding any TYPE line, or
// belonging to a different base name, are attached to an "untyped"
// family. Malformed sample lines return an error.
func ParsePromText(data []byte) ([]PromFamily, error) {
	var fams []PromFamily
	byName := map[string]int{} // base name → index in fams
	family := func(base, typ string) *PromFamily {
		if i, ok := byName[base]; ok {
			return &fams[i]
		}
		fams = append(fams, PromFamily{Name: base, Type: typ})
		byName[base] = len(fams) - 1
		return &fams[len(fams)-1]
	}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				family(fields[2], fields[3])
			}
			continue // HELP and other comments are ignored
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("prom parse: line %d: no value: %q", ln+1, line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("prom parse: line %d: bad value %q", ln+1, line[sp+1:])
		}
		name := strings.TrimSpace(line[:sp])
		s := PromSample{Name: name, LE: math.NaN(), Value: val}
		base := name
		if br := strings.IndexByte(name, '{'); br >= 0 {
			base = name[:br]
			if le, rest, ok := extractLE(name[br:]); ok {
				s.LE = le
				s.Name = base + rest
			}
		}
		// Histogram samples carry the family's base name plus a suffix.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(base, suf)
			if trimmed != base {
				if _, ok := byName[trimmed]; ok {
					base = trimmed
					break
				}
			}
		}
		fam := family(base, "untyped")
		fam.Samples = append(fam.Samples, s)
	}
	return fams, nil
}

// extractLE pulls the le label out of a label block like
// `{le="0.05"}` or `{le="+Inf"}`, returning the bound, the label block
// with le removed (empty when le was the only label), and whether an le
// label was present.
func extractLE(labels string) (float64, string, bool) {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	le, found := math.NaN(), false
	for _, part := range strings.Split(inner, ",") {
		k, v, ok := strings.Cut(part, "=")
		if ok && strings.TrimSpace(k) == "le" {
			raw := strings.Trim(strings.TrimSpace(v), `"`)
			if raw == "+Inf" {
				le, found = math.Inf(1), true
				continue
			}
			if f, err := strconv.ParseFloat(raw, 64); err == nil {
				le, found = f, true
				continue
			}
		}
		if strings.TrimSpace(part) != "" {
			kept = append(kept, part)
		}
	}
	if !found {
		return math.NaN(), labels, false
	}
	if len(kept) == 0 {
		return le, "", true
	}
	return le, "{" + strings.Join(kept, ",") + "}", true
}

// PromBucket is one cumulative histogram bucket.
type PromBucket struct {
	LE    float64 // upper bound; +Inf for the last bucket
	Count float64 // cumulative count at or below LE
}

// HistSummary is a parsed histogram family reduced to its summary
// statistics.
type HistSummary struct {
	Count   float64
	Sum     float64
	Buckets []PromBucket // sorted by LE ascending, cumulative
}

// Histogram reduces a histogram family's samples into a HistSummary.
// Returns false when the family is not a histogram or has no buckets.
func (f *PromFamily) Histogram() (HistSummary, bool) {
	if f.Type != "histogram" {
		return HistSummary{}, false
	}
	var hs HistSummary
	for _, s := range f.Samples {
		switch {
		case !math.IsNaN(s.LE):
			hs.Buckets = append(hs.Buckets, PromBucket{LE: s.LE, Count: s.Value})
		case strings.HasSuffix(s.Name, "_sum"):
			hs.Sum = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			hs.Count = s.Value
		}
	}
	if len(hs.Buckets) == 0 {
		return HistSummary{}, false
	}
	sort.Slice(hs.Buckets, func(i, j int) bool { return hs.Buckets[i].LE < hs.Buckets[j].LE })
	return hs, true
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the cumulative
// buckets by linear interpolation inside the bounding bucket — the same
// estimate Prometheus's histogram_quantile produces. Values in the +Inf
// bucket clamp to the highest finite bound. Returns NaN on an empty
// histogram.
func (hs HistSummary) Quantile(q float64) float64 {
	n := len(hs.Buckets)
	if n == 0 || hs.Buckets[n-1].Count == 0 {
		return math.NaN()
	}
	total := hs.Buckets[n-1].Count
	target := q * total
	i := sort.Search(n, func(i int) bool { return hs.Buckets[i].Count >= target })
	if i == n {
		i = n - 1
	}
	b := hs.Buckets[i]
	if math.IsInf(b.LE, 1) {
		if i == 0 {
			return math.NaN() // all mass in +Inf with no finite bound
		}
		return hs.Buckets[i-1].LE
	}
	lo, cumLo := 0.0, 0.0
	if i > 0 {
		lo, cumLo = hs.Buckets[i-1].LE, hs.Buckets[i-1].Count
	}
	inBucket := b.Count - cumLo
	if inBucket <= 0 {
		return b.LE
	}
	return lo + (b.LE-lo)*(target-cumLo)/inBucket
}
