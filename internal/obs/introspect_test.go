package obs

import (
	"encoding/json"
	"testing"
)

func TestRankOrigins(t *testing.T) {
	costs := []OriginCost{
		{ID: 0, Origin: "O0(main)", Pairs: 10, SHBNodes: 5},
		{ID: 1, Origin: "O1", Pairs: 100, SHBNodes: 50, SHBEdges: 20},
		{ID: 2, Origin: "O2", CGNodes: 170},
		{ID: 3, Origin: "O3", Accesses: 170},
	}
	ranked := RankOrigins(costs)
	if len(ranked) != 4 {
		t.Fatalf("len = %d", len(ranked))
	}
	// O1 dominates; O2 and O3 tie at 170 and must break on the smaller ID.
	if ranked[0].ID != 1 || ranked[0].Score != 170 {
		t.Fatalf("ranked[0] = %+v", ranked[0])
	}
	if ranked[1].ID != 2 || ranked[2].ID != 3 {
		t.Fatalf("tie broke wrong: %d then %d", ranked[1].ID, ranked[2].ID)
	}
	if ranked[3].ID != 0 || ranked[3].Score != 15 {
		t.Fatalf("ranked[3] = %+v", ranked[3])
	}
}

func TestRankOriginsTruncatesToTopK(t *testing.T) {
	costs := make([]OriginCost, IntrospectionTopK+7)
	for i := range costs {
		costs[i] = OriginCost{ID: i, Pairs: int64(i)}
	}
	ranked := RankOrigins(costs)
	if len(ranked) != IntrospectionTopK {
		t.Fatalf("len = %d, want %d", len(ranked), IntrospectionTopK)
	}
	if ranked[0].ID != IntrospectionTopK+6 {
		t.Fatalf("top = %+v", ranked[0])
	}
}

func TestIntrospectionDeterministic(t *testing.T) {
	var nilIn *Introspection
	if nilIn.Deterministic() != nil {
		t.Fatal("nil projection not nil")
	}

	in := &Introspection{
		Schema:  IntrospectionSchema,
		Origins: 3,
		TopK: []OriginCost{{
			ID: 1, Origin: "O1", Pairs: 7, Score: 7,
			PTAShareNS: 100, SHBShareNS: 200, DetectShareNS: 300, ArenaBytes: 400,
		}},
		TotalPairs:  7,
		ReachHits:   5,
		ReachMisses: 2,
		PTAWallNS:   1000, SHBWallNS: 2000, DetectWallNS: 3000, ArenaBytes: 4000,
	}
	det := in.Deterministic()

	// The projection zeroes every run-dependent field but leaves the
	// original untouched.
	if in.PTAWallNS != 1000 || in.TopK[0].PTAShareNS != 100 || in.ReachHits != 5 {
		t.Fatalf("projection mutated the source: %+v", in)
	}
	raw, err := json.Marshal(det)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"pta_wall_ns", "shb_wall_ns", "detect_wall_ns", "arena_bytes", "reach_hits", "reach_misses"} {
		if _, ok := top[key]; ok {
			t.Errorf("run-dependent key %q survived the projection", key)
		}
	}
	if det.TopK[0].Pairs != 7 || det.TopK[0].Score != 7 {
		t.Fatalf("counts lost: %+v", det.TopK[0])
	}
	if det.TopK[0].PTAShareNS != 0 || det.TopK[0].ArenaBytes != 0 {
		t.Fatalf("per-origin shares survived: %+v", det.TopK[0])
	}
}
