//go:build !linux && !darwin

package obs

import "time"

// processCPU is unavailable on this platform; CPU columns read 0.
func processCPU() time.Duration { return 0 }
