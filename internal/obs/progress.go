package obs

import (
	"math"
	"sync/atomic"
)

// Progress is a live, lock-free snapshot of a running analysis: the
// current phase, a coarse completion percentage, the number of candidate
// pairs examined so far and the number of races found. It follows the
// package's nil-safe design — a nil *Progress discards every update, so
// the detection hot loop holds one unconditionally and pays a single nil
// check when progress reporting is disabled.
//
// Writers are the pipeline phases (SetPhase) and the detection workers,
// which batch pair counts locally and flush on the cancel-poll stride
// (AddPairs); readers are progress streams (the /jobs/{id}/events
// handler, `o2 analyze -progress`, batch progress records) calling
// Snapshot concurrently. All fields are independent atomics: a snapshot
// is not a consistent cut, which is fine for a monotonically advancing
// progress display.
type Progress struct {
	phase    atomic.Pointer[string]
	phasePct atomic.Uint64 // float64 bits: completion floor of the current phase
	pairs    atomic.Int64
	total    atomic.Int64 // estimated candidate pairs; 0 while unknown
	races    atomic.Int64
}

// NewProgress returns an enabled progress tracker.
func NewProgress() *Progress { return &Progress{} }

// Enabled reports whether updates are recorded.
func (p *Progress) Enabled() bool { return p != nil }

// SetPhase records entry into a pipeline phase together with the
// completion floor (percent, 0–100) that reaching this phase represents.
// Within the phase, pair progress interpolates from the floor toward 100.
// No-op on nil.
func (p *Progress) SetPhase(name string, floorPct float64) {
	if p == nil {
		return
	}
	p.phase.Store(&name)
	p.phasePct.Store(math.Float64bits(floorPct))
}

// SetPairsTotal records the estimated total number of candidate pairs
// (the denominator of the detect-phase percentage). No-op on nil.
func (p *Progress) SetPairsTotal(n int64) {
	if p == nil {
		return
	}
	p.total.Store(n)
}

// AddPairs adds a batch of examined candidate pairs. Workers accumulate
// locally and flush here on the cancel-poll stride, so the hot loop
// touches no shared cache line per pair. No-op on nil.
func (p *Progress) AddPairs(n int64) {
	if p == nil {
		return
	}
	p.pairs.Add(n)
}

// AddRaces adds newly found races. No-op on nil.
func (p *Progress) AddRaces(n int64) {
	if p == nil {
		return
	}
	p.races.Add(n)
}

// ProgressSnapshot is one frozen observation of a Progress, the payload
// of a progress event (see docs/observability.md for the NDJSON schema
// it is embedded in).
type ProgressSnapshot struct {
	Phase      string  `json:"phase"`
	Percent    float64 `json:"percent"`
	PairsDone  int64   `json:"pairs_done"`
	PairsTotal int64   `json:"pairs_total,omitempty"`
	Races      int64   `json:"races"`
}

// Snapshot freezes the current progress. On a nil Progress it returns a
// zero snapshot (empty phase, 0%). The percentage is the phase floor,
// advanced toward 100 by the examined-pairs fraction once a total
// estimate is known, and clamped to [floor, 100].
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	var s ProgressSnapshot
	if ph := p.phase.Load(); ph != nil {
		s.Phase = *ph
	}
	s.PairsDone = p.pairs.Load()
	s.PairsTotal = p.total.Load()
	s.Races = p.races.Load()
	floor := math.Float64frombits(p.phasePct.Load())
	s.Percent = floor
	if s.PairsTotal > 0 {
		frac := float64(s.PairsDone) / float64(s.PairsTotal)
		if frac > 1 {
			frac = 1
		}
		s.Percent = floor + (100-floor)*frac
	}
	if s.Percent > 100 {
		s.Percent = 100
	}
	return s
}
