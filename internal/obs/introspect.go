package obs

import "sort"

// IntrospectionSchema versions the Introspection JSON layout. Bump it on
// any field rename or semantic change; consumers (CI, the bench gate,
// dashboards) key on it independently of the enclosing RunStats schema.
const IntrospectionSchema = 1

// IntrospectionTopK is the number of costliest origins reported in the
// Introspection section.
const IntrospectionTopK = 10

// SizeBuckets are power-of-two histogram bounds for size distributions
// (points-to set sizes, lockset sizes, segment fan-out, pairs per field)
// — quantities whose interesting variation is multiplicative, not
// additive.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// OriginCost attributes pipeline cost to one origin. The count fields
// are exact and deterministic (identical across runs and worker counts);
// the *ShareNS and ArenaBytes fields are proportional wall-time/memory
// attributions derived from the counts and the measured phase times, and
// are stripped by Deterministic like every other timing.
type OriginCost struct {
	ID     int    `json:"id"`
	Origin string `json:"origin"` // deterministic label, e.g. "O2(go entry@site1)"

	CGNodes   int64            `json:"cg_nodes,omitempty"`  // pta call-graph contexts rooted in this origin
	Accesses  int64            `json:"accesses,omitempty"`  // shared accesses executed by this origin
	Writes    int64            `json:"writes,omitempty"`
	Segments  int64            `json:"segments,omitempty"`  // SHB segments owned by this origin
	SHBNodes  int64            `json:"shb_nodes,omitempty"`
	SHBEdges  int64            `json:"shb_edges,omitempty"` // out-edges from this origin's segments
	NodeKinds map[string]int64 `json:"shb_nodes_by_kind,omitempty"`
	Pairs     int64            `json:"pairs,omitempty"`      // candidate pairs involving this origin
	HBQueries int64            `json:"hb_queries,omitempty"` // happens-before queries for those pairs
	Races     int64            `json:"races,omitempty"`

	// Score is the deterministic cost rank used to pick the top K:
	// pairs + SHB nodes + SHB edges + CG nodes + accesses, so origins
	// that dominate either the graph or the pairwise phase float to the
	// top. Ties break on the smaller ID.
	Score int64 `json:"score"`

	// Proportional wall/byte attributions (run-dependent, stripped by
	// Deterministic): each phase's measured cost scaled by this origin's
	// share of that phase's driving count.
	PTAShareNS    int64 `json:"pta_share_ns,omitempty"`
	SHBShareNS    int64 `json:"shb_share_ns,omitempty"`
	DetectShareNS int64 `json:"detect_share_ns,omitempty"`
	ArenaBytes    int64 `json:"arena_bytes,omitempty"`
}

// Introspection is the versioned per-origin cost-attribution section of
// RunStats: the top-K costliest origins plus the pipeline-wide totals
// their shares are computed against.
type Introspection struct {
	Schema  int          `json:"schema"`
	Origins int          `json:"origins"` // total origins in the program
	TopK    []OriginCost `json:"top_k,omitempty"`

	TotalPairs int64 `json:"total_pairs,omitempty"`
	// Reach-cache totals are scheduling-dependent above one worker
	// (single-flight frontier traversals), so Deterministic strips them.
	ReachHits   int64 `json:"reach_hits,omitempty"`
	ReachMisses int64 `json:"reach_misses,omitempty"`

	// Run-dependent totals, stripped by Deterministic.
	PTAWallNS    int64 `json:"pta_wall_ns,omitempty"`
	SHBWallNS    int64 `json:"shb_wall_ns,omitempty"`
	DetectWallNS int64 `json:"detect_wall_ns,omitempty"`
	ArenaBytes   int64 `json:"arena_bytes,omitempty"`
}

// RankOrigins sorts costs by Score descending (ties on ascending ID) and
// truncates to IntrospectionTopK. The input slice is sorted in place and
// the truncated prefix returned.
func RankOrigins(costs []OriginCost) []OriginCost {
	for i := range costs {
		c := &costs[i]
		c.Score = c.Pairs + c.SHBNodes + c.SHBEdges + c.CGNodes + c.Accesses
	}
	sort.SliceStable(costs, func(i, j int) bool {
		if costs[i].Score != costs[j].Score {
			return costs[i].Score > costs[j].Score
		}
		return costs[i].ID < costs[j].ID
	})
	if len(costs) > IntrospectionTopK {
		costs = costs[:IntrospectionTopK]
	}
	return costs
}

// Deterministic returns a copy with every run-dependent value stripped:
// the wall-time totals and shares and the byte attributions are zeroed
// (and, being omitempty, vanish from the JSON), leaving only exact
// counts. Two runs of the same workload produce byte-identical
// deterministic projections at any worker count.
func (in *Introspection) Deterministic() *Introspection {
	if in == nil {
		return nil
	}
	out := *in
	out.PTAWallNS, out.SHBWallNS, out.DetectWallNS, out.ArenaBytes = 0, 0, 0, 0
	out.ReachHits, out.ReachMisses = 0, 0
	out.TopK = append([]OriginCost(nil), in.TopK...)
	for i := range out.TopK {
		c := &out.TopK[i]
		c.PTAShareNS, c.SHBShareNS, c.DetectShareNS, c.ArenaBytes = 0, 0, 0, 0
	}
	return &out
}
