package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4) without any client-library dependency. Metric names are
// the registry's dotted names mapped onto the Prometheus charset with an
// "o2_" namespace prefix ("sched.cache_hits" → "o2_sched_cache_hits"),
// counters and gauges become their exposition types verbatim, and
// histograms expand into the cumulative _bucket/_sum/_count series with
// an explicit +Inf bucket. Output is sorted by metric name so scrapes are
// byte-stable for a settled registry.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName maps a dotted registry name onto the Prometheus metric-name
// charset: every character outside [a-zA-Z0-9_] becomes '_', and the
// "o2_" namespace prefix is prepended.
func PromName(name string) string {
	var sb strings.Builder
	sb.WriteString("o2_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			sb.WriteRune(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promFloat renders a float the way Prometheus expects (no exponent for
// the common cases, "+Inf" for the unbounded bucket).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every counter, gauge and histogram in the
// registry as Prometheus text exposition. No-op on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Counter, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	writeScalars(w, counters, "counter")
	writeScalars(w, gauges, "gauge")

	names := make([]string, 0, len(hists))
	for k := range hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		writeHistogram(w, PromName(k), hists[k])
	}
}

func writeScalars(w io.Writer, m map[string]*Counter, typ string) {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		name := PromName(k)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		fmt.Fprintf(w, "%s %d\n", name, m[k].Load())
	}
}

func writeHistogram(w io.Writer, name string, h *Histogram) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := h.Cumulative()
	for i, b := range h.Bounds() {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}
