package obs

import (
	"sync"
	"testing"
)

func TestProgressNilSafety(t *testing.T) {
	var p *Progress
	p.SetPhase("pta", 5)
	p.SetPairsTotal(100)
	p.AddPairs(10)
	p.AddRaces(1)
	if p.Enabled() {
		t.Fatal("nil Progress reports enabled")
	}
	if snap := p.Snapshot(); snap != (ProgressSnapshot{}) {
		t.Fatalf("nil snapshot = %+v, want zero", snap)
	}
}

func TestProgressPercentModel(t *testing.T) {
	p := NewProgress()
	if !p.Enabled() {
		t.Fatal("fresh Progress not enabled")
	}
	if snap := p.Snapshot(); snap.Phase != "" || snap.Percent != 0 {
		t.Fatalf("fresh snapshot = %+v", snap)
	}

	p.SetPhase("detect", 65)
	snap := p.Snapshot()
	if snap.Phase != "detect" || snap.Percent != 65 {
		t.Fatalf("phase floor snapshot = %+v", snap)
	}

	// With a known total, percent interpolates from the floor to 100.
	p.SetPairsTotal(200)
	p.AddPairs(100)
	snap = p.Snapshot()
	if snap.PairsDone != 100 || snap.PairsTotal != 200 {
		t.Fatalf("pair counts = %+v", snap)
	}
	if want := 65 + (100-65)*0.5; snap.Percent != want {
		t.Fatalf("percent = %v, want %v", snap.Percent, want)
	}

	// Overshooting the total clamps at 100, never beyond.
	p.AddPairs(500)
	if snap = p.Snapshot(); snap.Percent != 100 {
		t.Fatalf("overshoot percent = %v, want 100", snap.Percent)
	}

	p.SetPhase("done", 100)
	p.AddRaces(3)
	snap = p.Snapshot()
	if snap.Phase != "done" || snap.Percent != 100 || snap.Races != 3 {
		t.Fatalf("final snapshot = %+v", snap)
	}
}

// TestProgressConcurrent hammers one Progress from writer goroutines
// (phase changes, pair and race increments) while readers take
// snapshots — the lock-free update path must be clean under -race and
// every observed snapshot internally consistent.
func TestProgressConcurrent(t *testing.T) {
	p := NewProgress()
	p.SetPairsTotal(64 * 1000)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.AddPairs(1)
				if i%100 == 0 {
					p.SetPhase("detect", 65)
					p.AddRaces(1)
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				snap := p.Snapshot()
				if snap.Percent < 0 || snap.Percent > 100 {
					t.Errorf("percent out of range: %v", snap.Percent)
					return
				}
				if snap.PairsDone > snap.PairsTotal {
					t.Errorf("pairs done %d > total %d", snap.PairsDone, snap.PairsTotal)
					return
				}
			}
		}()
	}
	wg.Wait()

	snap := p.Snapshot()
	if snap.PairsDone != 4000 {
		t.Fatalf("pairs done = %d, want 4000", snap.PairsDone)
	}
	if snap.Races != 40 {
		t.Fatalf("races = %d, want 40", snap.Races)
	}
}

// TestHistogramObserveWithSnapshotReads interleaves concurrent Observe
// calls with registry snapshots and progress reads — the combination the
// live /metrics and /jobs/{id}/events endpoints exercise against an
// in-flight analysis.
func TestHistogramObserveWithSnapshotReads(t *testing.T) {
	reg := New()
	h := reg.Histogram("test.sizes", SizeBuckets)
	p := NewProgress()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(i % 100))
				p.AddPairs(1)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = reg.Snapshot()
				_ = p.Snapshot()
			}
		}()
	}
	wg.Wait()

	hs, ok := reg.Snapshot().Hists["test.sizes"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 2000 {
		t.Fatalf("count = %d, want 2000", hs.Count)
	}
}
