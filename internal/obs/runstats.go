package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// SchemaVersion identifies the RunStats JSON layout. Bump it on any
// field rename or semantic change; CI's bench gate and downstream
// consumers key on it.
const SchemaVersion = 1

// RunStats is the machine-readable run report: per-phase wall/CPU spans,
// the counter and gauge maps, and derived rates (cache hit rates, worker
// utilization). Zero-valued counters and gauges are omitted so reports
// stay small and the golden schema is insensitive to unexercised paths.
type RunStats struct {
	Schema   int                       `json:"schema"`
	Phases   []PhaseStats              `json:"phases,omitempty"`
	Counters map[string]int64          `json:"counters,omitempty"`
	Gauges   map[string]int64          `json:"gauges,omitempty"`
	Rates    map[string]float64        `json:"rates,omitempty"`
	Hists    map[string]HistogramStats `json:"histograms,omitempty"`
	// Introspection is the per-origin cost-attribution section (its own
	// schema, see introspect.go), attached by the driver after the
	// pipeline settles rather than collected through the registry.
	Introspection *Introspection `json:"introspection,omitempty"`
}

// PhaseStats is one span in the report tree.
type PhaseStats struct {
	Name string `json:"name"`
	// StartNS is the span's start offset from the registry's creation, so
	// the tree can be replayed on an absolute timeline (trace export).
	StartNS int64 `json:"start_ns,omitempty"`
	WallNS  int64 `json:"wall_ns,omitempty"`
	CPUNS   int64 `json:"cpu_ns,omitempty"`
	// Concurrent marks worker-shard spans (opened via Span.Child); they
	// overlap their siblings and are exported on distinct trace tids.
	Concurrent bool         `json:"concurrent,omitempty"`
	Children   []PhaseStats `json:"children,omitempty"`
}

// HistogramStats is a histogram frozen into the report: cumulative counts
// at each finite upper bound (the +Inf bucket equals Count). Bounds stay
// finite so the report marshals as plain JSON numbers.
type HistogramStats struct {
	Bounds     []float64 `json:"bounds"`
	Cumulative []int64   `json:"cumulative"`
	Count      int64     `json:"count"`
	Sum        float64   `json:"sum"`
}

// Snapshot freezes the registry into a RunStats report. Open spans are
// reported with their running wall time. Safe to call while counters are
// still being updated (values are read atomically), though a settled
// pipeline gives a consistent report.
func (r *Registry) Snapshot() *RunStats {
	if r == nil {
		return nil
	}
	rs := &RunStats{Schema: SchemaVersion}
	r.mu.Lock()
	roots := append([]*Span(nil), r.roots...)
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Counter, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for _, s := range roots {
		rs.Phases = append(rs.Phases, s.stats())
	}
	rs.Counters = loadNonZero(counters)
	rs.Gauges = loadNonZero(gauges)
	rs.Rates = deriveRates(rs.Counters, rs.Gauges)
	for k, h := range hists {
		if h.Count() == 0 {
			continue // like zero-valued counters, unexercised histograms are omitted
		}
		if rs.Hists == nil {
			rs.Hists = map[string]HistogramStats{}
		}
		rs.Hists[k] = HistogramStats{
			Bounds:     h.Bounds(),
			Cumulative: h.Cumulative(),
			Count:      h.Count(),
			Sum:        h.Sum(),
		}
	}
	return rs
}

func loadNonZero(m map[string]*Counter) map[string]int64 {
	out := map[string]int64{}
	for k, c := range m {
		if v := c.Load(); v != 0 {
			out[k] = v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func (s *Span) stats() PhaseStats {
	s.mu.Lock()
	ps := PhaseStats{Name: s.Name, WallNS: int64(s.wall), CPUNS: int64(s.cpu), Concurrent: s.concurrent}
	if s.reg != nil {
		ps.StartNS = int64(s.start.Sub(s.reg.start))
	}
	if !s.ended {
		ps.WallNS = int64(time.Since(s.start))
		ps.CPUNS = int64(processCPU() - s.startCPU)
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		ps.Children = append(ps.Children, c.stats())
	}
	return ps
}

// deriveRates computes the well-known derived metrics from the raw
// counter families, where present:
//
//	lockset.inter_hit_rate  = lockset.inter_hits / (hits + misses)
//	shb.reach_hit_rate      = shb.reach_hits / (hits + misses)
//	race.worker_utilization = race.worker_busy_ns / (workers × detect wall)
func deriveRates(counters, gauges map[string]int64) map[string]float64 {
	rates := map[string]float64{}
	ratio := func(name string, num, den int64) {
		if den > 0 {
			rates[name] = float64(num) / float64(den)
		}
	}
	ratio("lockset.inter_hit_rate",
		counters["lockset.inter_hits"],
		counters["lockset.inter_hits"]+counters["lockset.inter_misses"])
	ratio("shb.reach_hit_rate",
		counters["shb.reach_hits"],
		counters["shb.reach_hits"]+counters["shb.reach_misses"])
	if w := gauges["race.workers"]; w > 0 {
		ratio("race.worker_utilization",
			gauges["race.worker_busy_ns"],
			w*gauges["race.detect_wall_ns"])
	}
	if len(rates) == 0 {
		return nil
	}
	return rates
}

// Deterministic returns a copy of the report with every run-dependent
// value stripped: span wall/CPU times zeroed, counters and gauges whose
// name ends in "_ns", "_allocs" or "_bytes" dropped, time-derived rates
// dropped, and span
// children sorted by name (concurrent worker shards finish in arbitrary
// order). Two runs of the same workload at Workers=1 produce identical
// Deterministic reports, which is what the golden schema test and CI's
// bench gate compare; times are reported but never gated.
func (rs *RunStats) Deterministic() *RunStats {
	if rs == nil {
		return nil
	}
	out := &RunStats{Schema: rs.Schema}
	for _, p := range rs.Phases {
		out.Phases = append(out.Phases, detPhase(p))
	}
	out.Counters = dropTimes(rs.Counters)
	out.Gauges = dropTimes(rs.Gauges)
	delete(out.Gauges, "race.workers") // resolved from GOMAXPROCS
	if len(out.Gauges) == 0 {
		out.Gauges = nil
	}
	for k, v := range rs.Rates {
		if k == "race.worker_utilization" {
			continue
		}
		if out.Rates == nil {
			out.Rates = map[string]float64{}
		}
		out.Rates[k] = v
	}
	out.Introspection = rs.Introspection.Deterministic()
	return out
}

func detPhase(p PhaseStats) PhaseStats {
	out := PhaseStats{Name: p.Name}
	for _, c := range p.Children {
		out.Children = append(out.Children, detPhase(c))
	}
	sort.SliceStable(out.Children, func(i, j int) bool {
		return out.Children[i].Name < out.Children[j].Name
	})
	return out
}

func dropTimes(m map[string]int64) map[string]int64 {
	var out map[string]int64
	for k, v := range m {
		// "_allocs"/"_bytes" are the heap-allocation gauges (see
		// Registry.HeapGauges): background allocation makes them jitter
		// like times, so they are budget-gated rather than byte-compared.
		if strings.HasSuffix(k, "_ns") || strings.HasSuffix(k, "_allocs") || strings.HasSuffix(k, "_bytes") {
			continue
		}
		if out == nil {
			out = map[string]int64{}
		}
		out[k] = v
	}
	return out
}

// MarshalIndent renders the report as stable, human-diffable JSON (map
// keys sort lexicographically).
func (rs *RunStats) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(rs, "", "  ")
}

// WriteFile writes the indented JSON report to path.
func (rs *RunStats) WriteFile(path string) error {
	data, err := rs.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteSpans prints the span tree with wall and CPU times, one line per
// span, indented by depth — the -trace-spans output.
func (r *Registry) WriteSpans(w io.Writer) {
	if r == nil {
		return
	}
	rs := r.Snapshot()
	for _, p := range rs.Phases {
		writePhase(w, p, 0)
	}
}

func writePhase(w io.Writer, p PhaseStats, depth int) {
	fmt.Fprintf(w, "%s%-*s wall=%-12v cpu=%v\n",
		strings.Repeat("  ", depth), 24-2*depth, p.Name,
		durNS(p.WallNS), durNS(p.CPUNS))
	for _, c := range p.Children {
		writePhase(w, c, depth+1)
	}
}

func durNS(ns int64) string {
	if ns == 0 {
		return "0"
	}
	return time.Duration(ns).String()
}
