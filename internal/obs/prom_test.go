package obs

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-55.65) > 1e-9 {
		t.Fatalf("sum = %v, want 55.65", got)
	}
	// le semantics: 0.1 lands in the 0.1 bucket, 50 in +Inf.
	want := []int64{2, 3, 4}
	got := h.Cumulative()
	if len(got) != len(want) {
		t.Fatalf("cumulative = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", got, want)
		}
	}
}

func TestHistogramNilAndDefaults(t *testing.T) {
	var h *Histogram
	h.Observe(1)               // no-op
	h.ObserveSince(time.Now()) // no-op
	if h.Count() != 0 || h.Sum() != 0 || h.Cumulative() != nil || h.Bounds() != nil {
		t.Fatal("nil histogram leaked state")
	}
	var r *Registry
	if r.Histogram("x", nil) != nil {
		t.Fatal("nil registry returned a histogram")
	}
	d := NewHistogram(nil)
	if len(d.Bounds()) != len(DefBuckets) {
		t.Fatalf("default bounds = %v", d.Bounds())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || h.Cumulative()[0] != 8000 {
		t.Fatalf("count = %d, cum = %v", h.Count(), h.Cumulative())
	}
	if math.Abs(h.Sum()-4000) > 1e-6 {
		t.Fatalf("sum = %v, want 4000", h.Sum())
	}
}

func TestRegistryHistogramInterning(t *testing.T) {
	r := New()
	a := r.Histogram("lat", []float64{1, 2})
	b := r.Histogram("lat", []float64{5}) // later bounds ignored
	if a != b {
		t.Fatal("same name returned distinct histograms")
	}
	if len(a.Bounds()) != 2 {
		t.Fatalf("bounds = %v", a.Bounds())
	}
}

// TestPrometheusExposition validates the text format line by line: every
// sample line is `name[{le="v"}] value`, every metric has a TYPE header,
// histogram buckets are cumulative-monotone and end at +Inf == count.
func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("sched.cache_hits").Add(3)
	r.SetGauge("sched.queue-depth", 64) // '-' must be sanitized
	h := r.Histogram("server.request_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	types := map[string]string{}
	var bucketCum []int64
	var lastName string
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition:\n%s", out)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			types[parts[2]] = parts[3]
			lastName = parts[2]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("non-numeric value %q in line %q", val, line)
		}
		base := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			base = name[:i]
			if !strings.HasSuffix(name, "\"}") || !strings.Contains(name, "le=\"") {
				t.Fatalf("bad label syntax in %q", line)
			}
		}
		for _, c := range base {
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
				t.Fatalf("invalid metric-name char %q in %q", c, line)
			}
		}
		if !strings.HasPrefix(base, lastName) {
			t.Fatalf("sample %q not under its TYPE header %q", base, lastName)
		}
		if strings.HasSuffix(base, "_bucket") {
			n, _ := strconv.ParseInt(val, 10, 64)
			bucketCum = append(bucketCum, n)
		}
	}

	for name, typ := range map[string]string{
		"o2_sched_cache_hits":       "counter",
		"o2_sched_queue_depth":      "gauge",
		"o2_server_request_seconds": "histogram",
	} {
		if types[name] != typ {
			t.Errorf("metric %s: type %q, want %q\n%s", name, types[name], typ, out)
		}
	}
	if len(bucketCum) != 4 {
		t.Fatalf("bucket lines = %d, want 4 (3 bounds + +Inf)", len(bucketCum))
	}
	for i := 1; i < len(bucketCum); i++ {
		if bucketCum[i] < bucketCum[i-1] {
			t.Fatalf("bucket counts not monotone: %v", bucketCum)
		}
	}
	if want := fmt.Sprintf("o2_server_request_seconds_bucket{le=\"+Inf\"} %d", h.Count()); !strings.Contains(out, want) {
		t.Errorf("missing +Inf bucket %q in:\n%s", want, out)
	}
	if !strings.Contains(out, "o2_server_request_seconds_count 3") {
		t.Errorf("missing _count in:\n%s", out)
	}

	// Nil registry writes nothing.
	var nilBuf bytes.Buffer
	(*Registry)(nil).WritePrometheus(&nilBuf)
	if nilBuf.Len() != 0 {
		t.Fatal("nil registry produced output")
	}
}

// TestPrometheusDeterministic pins scrape stability: two scrapes of a
// settled registry are byte-identical.
func TestPrometheusDeterministic(t *testing.T) {
	r := New()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.SetGauge("z", 9)
	r.Histogram("lat", []float64{1}).Observe(0.5)
	var one, two bytes.Buffer
	r.WritePrometheus(&one)
	r.WritePrometheus(&two)
	if one.String() != two.String() {
		t.Fatalf("scrapes differ:\n%s\nvs\n%s", one.String(), two.String())
	}
}
