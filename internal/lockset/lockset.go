// Package lockset implements the paper's compact lockset representation
// (§4.1, "Check Lockset"): every distinct combination of mutexes is
// assigned a canonical integer ID, access nodes carry only the ID, and
// intersection results between IDs are cached.
package lockset

import (
	"encoding/binary"
	"sort"
	"sync"

	"o2/internal/obs"
)

// ID is a canonical lockset identifier. Empty is the empty lockset.
type ID int32

// Empty is the canonical ID of the empty lockset.
const Empty ID = 0

// GlobalEventLock is the sentinel lock element modeling the Android main
// thread's event serialization (§4.2): all event handlers of one loop hold
// it, so no event–event pair is reported while thread–event pairs remain.
const GlobalEventLock uint32 = 0

// Table interns locksets and caches intersection queries. Canon is called
// while the SHB graph is built (single goroutine); Intersects is called
// from the race-detection workers and is safe for concurrent use: the
// read-mostly intersection cache is guarded by an RWMutex and the query
// stats live in atomic obs counters. (They used to be exported plain
// int64 fields, which invited torn reads: any caller polling them while
// detection workers ran raced with the writers. Stats returns atomic
// snapshots instead; TestStatsConcurrentReads pins this under -race.)
type Table struct {
	mu    sync.RWMutex
	sets  [][]uint32
	index map[string]ID
	inter map[uint64]bool
	// stats: standalone counters by default, rebound into the pipeline's
	// registry by Bind. Always non-nil, so the counting cost on the
	// concurrent query path is one atomic add — same as the seed code.
	canonCalls *obs.Counter
	interHits  *obs.Counter
	interMiss  *obs.Counter
}

// NewTable returns an empty table containing only the empty lockset.
func NewTable() *Table {
	t := &Table{
		index:      map[string]ID{},
		inter:      map[uint64]bool{},
		canonCalls: obs.NewCounter(),
		interHits:  obs.NewCounter(),
		interMiss:  obs.NewCounter(),
	}
	t.sets = append(t.sets, nil)
	t.index[""] = Empty
	return t
}

// Bind redirects the table's stats into a registry under the
// lockset.canon_calls / lockset.inter_hits / lockset.inter_misses names.
// Must be called before the table is used concurrently; a nil registry
// leaves the standalone counters in place.
func (t *Table) Bind(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.canonCalls = reg.Counter("lockset.canon_calls")
	t.interHits = reg.Counter("lockset.inter_hits")
	t.interMiss = reg.Counter("lockset.inter_misses")
}

// Stats is an atomic snapshot of the table's query counters.
type Stats struct {
	CanonCalls int64
	InterHits  int64
	InterMiss  int64
}

// Stats returns the current query counters. Safe to call concurrently
// with Intersects (the reads are atomic).
func (t *Table) Stats() Stats {
	return Stats{
		CanonCalls: t.canonCalls.Load(),
		InterHits:  t.interHits.Load(),
		InterMiss:  t.interMiss.Load(),
	}
}

// Canon returns the canonical ID for the given lock objects (duplicates
// allowed; order irrelevant).
func (t *Table) Canon(objs []uint32) ID {
	t.canonCalls.Inc()
	if len(objs) == 0 {
		return Empty
	}
	s := append([]uint32(nil), objs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// dedupe
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	key := setKey(out)
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.index[key]; ok {
		return id
	}
	id := ID(len(t.sets))
	t.sets = append(t.sets, out)
	t.index[key] = id
	return id
}

// Set returns the sorted elements of a canonical lockset. The returned
// slice must not be modified.
func (t *Table) Set(id ID) []uint32 {
	t.mu.RLock()
	s := t.sets[id]
	t.mu.RUnlock()
	return s
}

// Len returns the number of distinct locksets interned (including empty).
func (t *Table) Len() int {
	t.mu.RLock()
	n := len(t.sets)
	t.mu.RUnlock()
	return n
}

// Intersects reports whether two locksets share a lock, caching results.
// Safe for concurrent use.
func (t *Table) Intersects(a, b ID) bool {
	if a == Empty || b == Empty {
		return false
	}
	if a == b {
		return true
	}
	if a > b {
		a, b = b, a
	}
	key := uint64(a)<<32 | uint64(uint32(b))
	t.mu.RLock()
	r, ok := t.inter[key]
	var sa, sb []uint32
	if !ok {
		sa, sb = t.sets[a], t.sets[b]
	}
	t.mu.RUnlock()
	if ok {
		t.interHits.Inc()
		return r
	}
	t.interMiss.Inc()
	r = IntersectSorted(sa, sb)
	t.mu.Lock()
	t.inter[key] = r
	t.mu.Unlock()
	return r
}

// IntersectSorted reports whether two sorted slices share an element. It is
// the uncached primitive used by the naive (D4-style) baseline detector.
func IntersectSorted(x, y []uint32) bool {
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] == y[j]:
			return true
		case x[i] < y[j]:
			i++
		default:
			j++
		}
	}
	return false
}

func setKey(s []uint32) string {
	buf := make([]byte, 4*len(s))
	for i, x := range s {
		binary.LittleEndian.PutUint32(buf[i*4:], x)
	}
	return string(buf)
}
