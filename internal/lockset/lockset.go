// Package lockset implements the paper's compact lockset representation
// (§4.1, "Check Lockset"): every distinct combination of mutexes is
// assigned a canonical integer ID and access nodes carry only the ID.
//
// Intersection queries are the race detector's per-pair hot path, so the
// representation is built for them: each canonical set is a bitset over
// *dense* lock indices (lock objects are interned into 0,1,2,… in first-
// seen order), and Intersects is a handful of word ANDs — no map lookups,
// no locks, no allocation. Programs with at most 64 distinct locks (all of
// them, in practice) fit in the one inline word; larger programs spill
// into extra words transparently. The previous implementation cached
// map-backed intersection results behind an RWMutex; the bitset AND is
// cheaper than the cache lookup was, so the cache (and its hit/miss
// counters) is gone.
package lockset

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"o2/internal/obs"
)

// ID is a canonical lockset identifier. Empty is the empty lockset.
type ID int32

// Empty is the canonical ID of the empty lockset.
const Empty ID = 0

// GlobalEventLock is the sentinel lock element modeling the Android main
// thread's event serialization (§4.2): all event handlers of one loop hold
// it, so no event–event pair is reported while thread–event pairs remain.
const GlobalEventLock uint32 = 0

// bitset is one canonical set over dense lock indices: lo holds indices
// 0–63 inline, hi spills indices 64+ (hi[i] covers 64*(i+1)…64*(i+2)-1).
// hi is nil for every program with ≤64 distinct locks.
type bitset struct {
	lo uint64
	hi []uint64
}

func (b *bitset) set(idx uint32) {
	if idx < 64 {
		b.lo |= 1 << idx
		return
	}
	w := int(idx-64) >> 6
	for w >= len(b.hi) {
		b.hi = append(b.hi, 0)
	}
	b.hi[w] |= 1 << ((idx - 64) & 63)
}

func (b *bitset) intersects(c *bitset) bool {
	if b.lo&c.lo != 0 {
		return true
	}
	n := len(b.hi)
	if len(c.hi) < n {
		n = len(c.hi)
	}
	for i := 0; i < n; i++ {
		if b.hi[i]&c.hi[i] != 0 {
			return true
		}
	}
	return false
}

// view is an immutable snapshot of the interned sets, republished after
// every intern. Readers (Intersects, Set, Len) load it atomically, so the
// query path takes no lock even while Canon is still interning: appends
// under the table mutex only ever write past the published length, and the
// atomic pointer store/load orders those writes before any read.
type view struct {
	sets [][]uint32 // ID → sorted lock objects
	bits []bitset   // ID → bitset over dense lock indices
}

// Table interns locksets into canonical IDs. Canon is called while the SHB
// graph is built and is guarded by a mutex; Intersects/Set/Len are called
// from the race-detection workers and are lock-free (they read the
// atomically published view). Stats are atomic obs counters, so polling
// them concurrently is safe (TestStatsConcurrentReads pins this under
// -race).
type Table struct {
	mu      sync.Mutex
	index   map[string]ID
	dense   map[uint32]uint32 // lock object → dense bit index
	locks   []uint32          // dense bit index → lock object
	scratch []uint32          // Canon's sort/dedupe buffer, reused across calls
	view    atomic.Pointer[view]

	// canonCalls: standalone counter by default, rebound into the
	// pipeline's registry by Bind.
	canonCalls *obs.Counter
}

// NewTable returns an empty table containing only the empty lockset.
func NewTable() *Table {
	t := &Table{
		index:      map[string]ID{"": Empty},
		dense:      map[uint32]uint32{},
		canonCalls: obs.NewCounter(),
	}
	t.view.Store(&view{sets: [][]uint32{nil}, bits: []bitset{{}}})
	return t
}

// Bind redirects the table's stats into a registry under the
// lockset.canon_calls name. A nil registry leaves the standalone counter
// in place.
func (t *Table) Bind(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.canonCalls = reg.Counter("lockset.canon_calls")
}

// Stats is an atomic snapshot of the table's counters.
type Stats struct {
	CanonCalls int64
	// Locks is the number of distinct lock objects interned (the bitset
	// width); Sets the number of distinct locksets including empty.
	Locks int
	Sets  int
}

// Stats returns the current counters. Safe to call concurrently with
// Intersects.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	locks := len(t.locks)
	t.mu.Unlock()
	return Stats{
		CanonCalls: t.canonCalls.Load(),
		Locks:      locks,
		Sets:       t.Len(),
	}
}

// Canon returns the canonical ID for the given lock objects (duplicates
// allowed; order irrelevant). Safe for concurrent use, though the builder
// calls it from one goroutine; dense bit indices are assigned in
// first-seen order, so a deterministic build yields deterministic IDs.
func (t *Table) Canon(objs []uint32) ID {
	t.canonCalls.Inc()
	if len(objs) == 0 {
		return Empty
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := append(t.scratch[:0], objs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// dedupe in place
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	t.scratch = s[:0]
	key := setKey(out)
	if id, ok := t.index[key]; ok {
		return id
	}
	var bs bitset
	for _, obj := range out {
		idx, ok := t.dense[obj]
		if !ok {
			idx = uint32(len(t.locks))
			t.dense[obj] = idx
			t.locks = append(t.locks, obj)
		}
		bs.set(idx)
	}
	old := t.view.Load()
	id := ID(len(old.sets))
	t.index[key] = id
	next := &view{
		sets: append(old.sets, append([]uint32(nil), out...)),
		bits: append(old.bits, bs),
	}
	t.view.Store(next)
	return id
}

// Set returns the sorted elements of a canonical lockset. The returned
// slice must not be modified. Lock-free.
func (t *Table) Set(id ID) []uint32 {
	return t.view.Load().sets[id]
}

// Len returns the number of distinct locksets interned (including empty).
func (t *Table) Len() int {
	return len(t.view.Load().sets)
}

// Intersects reports whether two locksets share a lock: word-wise AND over
// the canonical bitsets. Lock-free, allocation-free, safe for any number
// of concurrent callers.
func (t *Table) Intersects(a, b ID) bool {
	if a == Empty || b == Empty {
		return false
	}
	if a == b {
		return true
	}
	v := t.view.Load()
	return v.bits[a].intersects(&v.bits[b])
}

// IntersectSorted reports whether two sorted slices share an element. It is
// the uncached primitive used by the naive (D4-style) baseline detector.
func IntersectSorted(x, y []uint32) bool {
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] == y[j]:
			return true
		case x[i] < y[j]:
			i++
		default:
			j++
		}
	}
	return false
}

func setKey(s []uint32) string {
	buf := make([]byte, 4*len(s))
	for i, x := range s {
		binary.LittleEndian.PutUint32(buf[i*4:], x)
	}
	return string(buf)
}
