package lockset

import (
	"sync"
	"testing"

	"o2/internal/obs"
)

// TestStatsConcurrentReads hammers Intersects from many goroutines —
// including one still interning new sets through Canon — while another
// goroutine continuously polls Stats, the pattern the bench harness and
// obs snapshots use while detection workers run. The lock-free query path
// reads the atomically published view, so `go test -race` must stay
// silent even with Canon appending concurrently.
func TestStatsConcurrentReads(t *testing.T) {
	tb := NewTable()
	ids := make([]ID, 0, 16)
	for i := 0; i < 16; i++ {
		ids = append(ids, tb.Canon([]uint32{uint32(i), uint32(i + 1), uint32(2 * i)}))
	}

	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := tb.Stats()
				if s.CanonCalls < 16 || s.Sets < 16 {
					t.Error("lost counter snapshot")
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // keep interning while queries run
		defer wg.Done()
		for i := 100; i < 300; i++ {
			tb.Canon([]uint32{uint32(i), uint32(i + 1)})
		}
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				a := ids[(i+w)%len(ids)]
				b := ids[(i*7+w*3)%len(ids)]
				tb.Intersects(a, b)
				tb.Set(a)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pollWG.Wait()

	s := tb.Stats()
	if s.CanonCalls != 16+200 {
		t.Fatalf("canon calls = %d, want 216", s.CanonCalls)
	}
}

// TestBindRegistry checks that a bound table reports through the
// registry under the stable counter name.
func TestBindRegistry(t *testing.T) {
	reg := obs.New()
	tb := NewTable()
	tb.Bind(reg)
	a := tb.Canon([]uint32{1, 2})
	b := tb.Canon([]uint32{2, 3})
	tb.Intersects(a, b)
	tb.Intersects(a, b)
	rs := reg.Snapshot()
	if rs.Counters["lockset.canon_calls"] != 2 {
		t.Fatalf("canon_calls = %d, want 2", rs.Counters["lockset.canon_calls"])
	}
	if got := tb.Stats(); got.CanonCalls != 2 || got.Sets != 3 || got.Locks != 3 {
		t.Fatalf("Stats() disagrees with registry: %+v", got)
	}
	// Binding nil keeps the current counter.
	tb.Bind(nil)
	tb.Canon([]uint32{1})
	if tb.Stats().CanonCalls != 3 {
		t.Fatal("nil Bind dropped counters")
	}
}
