package lockset

import (
	"sync"
	"testing"

	"o2/internal/obs"
)

// TestStatsConcurrentReads hammers the intersection cache from many
// goroutines while another goroutine continuously polls Stats — the
// pattern the bench harness and obs snapshots use while detection
// workers run. With the stats as exported plain int64 fields (the old
// layout) the polling reads were torn/racy and `go test -race` flagged
// them; the atomic obs counters make the snapshot safe.
func TestStatsConcurrentReads(t *testing.T) {
	tb := NewTable()
	ids := make([]ID, 0, 16)
	for i := 0; i < 16; i++ {
		ids = append(ids, tb.Canon([]uint32{uint32(i), uint32(i + 1), uint32(2 * i)}))
	}

	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := tb.Stats()
				if s.InterHits < 0 || s.InterMiss < 0 {
					t.Error("negative counter snapshot")
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				a := ids[(i+w)%len(ids)]
				b := ids[(i*7+w*3)%len(ids)]
				tb.Intersects(a, b)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pollWG.Wait()

	s := tb.Stats()
	if s.InterHits+s.InterMiss == 0 {
		t.Fatal("no intersection queries recorded")
	}
}

// TestBindRegistry checks that a bound table reports through the
// registry under the stable counter names.
func TestBindRegistry(t *testing.T) {
	reg := obs.New()
	tb := NewTable()
	tb.Bind(reg)
	a := tb.Canon([]uint32{1, 2})
	b := tb.Canon([]uint32{2, 3})
	tb.Intersects(a, b)
	tb.Intersects(a, b)
	rs := reg.Snapshot()
	if rs.Counters["lockset.canon_calls"] != 2 {
		t.Fatalf("canon_calls = %d, want 2", rs.Counters["lockset.canon_calls"])
	}
	if rs.Counters["lockset.inter_misses"] != 1 || rs.Counters["lockset.inter_hits"] != 1 {
		t.Fatalf("inter hit/miss = %d/%d, want 1/1",
			rs.Counters["lockset.inter_hits"], rs.Counters["lockset.inter_misses"])
	}
	if got := tb.Stats(); got.InterHits != 1 || got.InterMiss != 1 || got.CanonCalls != 2 {
		t.Fatalf("Stats() disagrees with registry: %+v", got)
	}
	if rs.Rates["lockset.inter_hit_rate"] != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", rs.Rates["lockset.inter_hit_rate"])
	}
	// Binding nil keeps the current counters.
	tb.Bind(nil)
	tb.Intersects(a, b)
	if tb.Stats().InterHits != 2 {
		t.Fatal("nil Bind dropped counters")
	}
}
