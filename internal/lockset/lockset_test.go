package lockset

import (
	"testing"
	"testing/quick"
)

func TestCanonBasics(t *testing.T) {
	tb := NewTable()
	if tb.Canon(nil) != Empty {
		t.Fatalf("empty lockset must be Empty")
	}
	a := tb.Canon([]uint32{3, 1, 2})
	b := tb.Canon([]uint32{2, 3, 1})
	c := tb.Canon([]uint32{1, 2})
	if a != b {
		t.Errorf("order must not matter")
	}
	if a == c {
		t.Errorf("different sets must intern differently")
	}
	d := tb.Canon([]uint32{1, 1, 2, 2})
	if d != c {
		t.Errorf("duplicates must be removed: %v vs %v", tb.Set(d), tb.Set(c))
	}
}

func TestIntersects(t *testing.T) {
	tb := NewTable()
	a := tb.Canon([]uint32{1, 2})
	b := tb.Canon([]uint32{2, 3})
	c := tb.Canon([]uint32{4})
	if !tb.Intersects(a, b) {
		t.Errorf("{1,2} ∩ {2,3} should be nonempty")
	}
	if tb.Intersects(a, c) || tb.Intersects(c, a) {
		t.Errorf("{1,2} ∩ {4} should be empty")
	}
	if tb.Intersects(a, Empty) || tb.Intersects(Empty, a) {
		t.Errorf("empty lockset intersects nothing")
	}
	if !tb.Intersects(a, a) {
		t.Errorf("a set intersects itself")
	}
}

func TestIntersectsCache(t *testing.T) {
	tb := NewTable()
	a := tb.Canon([]uint32{1})
	b := tb.Canon([]uint32{1, 2})
	tb.Intersects(a, b)
	misses := tb.Stats().InterMiss
	tb.Intersects(a, b)
	tb.Intersects(b, a) // symmetric query hits the same entry
	if tb.Stats().InterMiss != misses {
		t.Errorf("repeated queries should hit the cache")
	}
	if tb.Stats().InterHits < 2 {
		t.Errorf("cache hits not recorded: %d", tb.Stats().InterHits)
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct {
		x, y []uint32
		want bool
	}{
		{nil, nil, false},
		{[]uint32{1}, nil, false},
		{[]uint32{1, 5, 9}, []uint32{2, 5}, true},
		{[]uint32{1, 3}, []uint32{2, 4}, false},
	}
	for _, c := range cases {
		if got := IntersectSorted(c.x, c.y); got != c.want {
			t.Errorf("IntersectSorted(%v,%v) = %v", c.x, c.y, got)
		}
	}
}

// Property: canonical IDs are bijective with the set contents, and the
// cached Intersects agrees with the primitive on every pair.
func TestQuickCanonicalAgreesWithPrimitive(t *testing.T) {
	tb := NewTable()
	f := func(xs, ys []uint8) bool {
		xv := make([]uint32, len(xs))
		for i, x := range xs {
			xv[i] = uint32(x % 32)
		}
		yv := make([]uint32, len(ys))
		for i, y := range ys {
			yv[i] = uint32(y % 32)
		}
		a, b := tb.Canon(xv), tb.Canon(yv)
		want := IntersectSorted(tb.Set(a), tb.Set(b))
		if tb.Intersects(a, b) != want {
			return false
		}
		// Same contents → same ID.
		if tb.Canon(append([]uint32{}, xv...)) != a {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
