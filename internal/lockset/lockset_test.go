package lockset

import (
	"testing"
	"testing/quick"
)

func TestCanonBasics(t *testing.T) {
	tb := NewTable()
	if tb.Canon(nil) != Empty {
		t.Fatalf("empty lockset must be Empty")
	}
	a := tb.Canon([]uint32{3, 1, 2})
	b := tb.Canon([]uint32{2, 3, 1})
	c := tb.Canon([]uint32{1, 2})
	if a != b {
		t.Errorf("order must not matter")
	}
	if a == c {
		t.Errorf("different sets must intern differently")
	}
	d := tb.Canon([]uint32{1, 1, 2, 2})
	if d != c {
		t.Errorf("duplicates must be removed: %v vs %v", tb.Set(d), tb.Set(c))
	}
}

func TestIntersects(t *testing.T) {
	tb := NewTable()
	a := tb.Canon([]uint32{1, 2})
	b := tb.Canon([]uint32{2, 3})
	c := tb.Canon([]uint32{4})
	if !tb.Intersects(a, b) {
		t.Errorf("{1,2} ∩ {2,3} should be nonempty")
	}
	if tb.Intersects(a, c) || tb.Intersects(c, a) {
		t.Errorf("{1,2} ∩ {4} should be empty")
	}
	if tb.Intersects(a, Empty) || tb.Intersects(Empty, a) {
		t.Errorf("empty lockset intersects nothing")
	}
	if !tb.Intersects(a, a) {
		t.Errorf("a set intersects itself")
	}
}

// TestIntersectsSpill exercises the bitset spill path: more than 64
// distinct lock objects forces dense indices past the inline word, so
// intersection must compare the hi words too.
func TestIntersectsSpill(t *testing.T) {
	tb := NewTable()
	// 100 distinct locks interned one set at a time: each singleton lands
	// on its own dense bit, the last 36 of them in spill words.
	singles := make([]ID, 100)
	for i := range singles {
		singles[i] = tb.Canon([]uint32{uint32(1000 + i)})
	}
	if st := tb.Stats(); st.Locks != 100 {
		t.Fatalf("distinct locks = %d, want 100", st.Locks)
	}
	for i, a := range singles {
		for j, b := range singles {
			if got, want := tb.Intersects(a, b), i == j; got != want {
				t.Fatalf("singleton %d ∩ %d = %v, want %v", i, j, got, want)
			}
		}
	}
	// A set straddling the word boundary intersects sets on either side.
	wide := tb.Canon([]uint32{1000 + 63, 1000 + 64})
	if !tb.Intersects(wide, singles[63]) || !tb.Intersects(singles[64], wide) {
		t.Fatal("straddling set must intersect both halves")
	}
	if tb.Intersects(wide, singles[62]) || tb.Intersects(wide, singles[65]) {
		t.Fatal("straddling set must not intersect its neighbors")
	}
	// Sets sharing only a spill-word element.
	hiA := tb.Canon([]uint32{1000 + 70, 1000 + 90})
	hiB := tb.Canon([]uint32{1000 + 80, 1000 + 90})
	hiC := tb.Canon([]uint32{1000 + 71, 1000 + 81})
	if !tb.Intersects(hiA, hiB) {
		t.Fatal("{70,90} ∩ {80,90} shares 90 in the spill words")
	}
	if tb.Intersects(hiA, hiC) || tb.Intersects(hiB, hiC) {
		t.Fatal("disjoint spill sets must not intersect")
	}
}

// TestCanonReusesIDs pins that re-interning identical contents (in any
// order, with duplicates) returns the same ID and allocates no new set.
func TestCanonReusesIDs(t *testing.T) {
	tb := NewTable()
	a := tb.Canon([]uint32{9, 5, 7})
	n := tb.Len()
	if tb.Canon([]uint32{7, 9, 5, 5, 7}) != a || tb.Len() != n {
		t.Fatal("identical contents must reuse the interned ID")
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct {
		x, y []uint32
		want bool
	}{
		{nil, nil, false},
		{[]uint32{1}, nil, false},
		{[]uint32{1, 5, 9}, []uint32{2, 5}, true},
		{[]uint32{1, 3}, []uint32{2, 4}, false},
	}
	for _, c := range cases {
		if got := IntersectSorted(c.x, c.y); got != c.want {
			t.Errorf("IntersectSorted(%v,%v) = %v", c.x, c.y, got)
		}
	}
}

// Property: canonical IDs are bijective with the set contents, and the
// bitset Intersects agrees with the sorted-slice primitive on every pair.
// Elements span well past 64 distinct locks, so the property also covers
// the spill words.
func TestQuickCanonicalAgreesWithPrimitive(t *testing.T) {
	tb := NewTable()
	f := func(xs, ys []uint8) bool {
		xv := make([]uint32, len(xs))
		for i, x := range xs {
			xv[i] = uint32(x % 200)
		}
		yv := make([]uint32, len(ys))
		for i, y := range ys {
			yv[i] = uint32(y % 200)
		}
		a, b := tb.Canon(xv), tb.Canon(yv)
		want := IntersectSorted(tb.Set(a), tb.Set(b))
		if tb.Intersects(a, b) != want {
			return false
		}
		// Same contents → same ID.
		if tb.Canon(append([]uint32{}, xv...)) != a {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
