package ir

import (
	"fmt"
	"strings"
)

// Instr is a single IR instruction.
type Instr interface {
	Pos() Pos
	String() string
}

type base struct{ P Pos }

func (b base) Pos() Pos { return b.P }

// Alloc is "x = new C(a1,...,an)". If the allocated class is a thread or
// event-handler class, the allocation is an origin allocation (rule ⑧ of
// Table 2) and the arguments become the new origin's attributes.
type Alloc struct {
	base
	Dst   *Var
	Class *Class
	Args  []*Var
	Site  int // program-wide allocation-site ID, set by Finalize
	// InLoop marks allocations lexically inside a loop; origin allocations
	// in loops are replicated per the paper (§3.2, Wrapper Functions and
	// Loops).
	InLoop bool
}

func (a *Alloc) String() string {
	return fmt.Sprintf("%s = new %s(%s)", a.Dst, a.Class.Name, vars(a.Args))
}

// Copy is "x = y".
type Copy struct {
	base
	Dst, Src *Var
}

func (c *Copy) String() string { return fmt.Sprintf("%s = %s", c.Dst, c.Src) }

// LoadField is "x = y.f".
type LoadField struct {
	base
	Dst, Obj *Var
	Field    string
}

func (l *LoadField) String() string { return fmt.Sprintf("%s = %s.%s", l.Dst, l.Obj, l.Field) }

// StoreField is "x.f = y".
type StoreField struct {
	base
	Obj   *Var
	Field string
	Src   *Var
}

func (s *StoreField) String() string { return fmt.Sprintf("%s.%s = %s", s.Obj, s.Field, s.Src) }

// ArrayField is the synthetic field name modeling all array elements.
const ArrayField = "*"

// LoadIndex is "x = y[i]"; indices are not distinguished (field "*").
type LoadIndex struct {
	base
	Dst, Arr *Var
}

func (l *LoadIndex) String() string { return fmt.Sprintf("%s = %s[*]", l.Dst, l.Arr) }

// StoreIndex is "x[i] = y".
type StoreIndex struct {
	base
	Arr, Src *Var
}

func (s *StoreIndex) String() string { return fmt.Sprintf("%s[*] = %s", s.Arr, s.Src) }

// LoadStatic is "x = C.f" for a static field.
type LoadStatic struct {
	base
	Dst   *Var
	Class *Class
	Field string
}

func (l *LoadStatic) String() string { return fmt.Sprintf("%s = %s.%s", l.Dst, l.Class.Name, l.Field) }

// StoreStatic is "C.f = y" for a static field.
type StoreStatic struct {
	base
	Class *Class
	Field string
	Src   *Var
}

func (s *StoreStatic) String() string {
	return fmt.Sprintf("%s.%s = %s", s.Class.Name, s.Field, s.Src)
}

// Call is "x = y.m(a1,...,an)" (virtual, Recv != nil), "x = f(a1,...,an)"
// (static, Static != nil), an indirect call through a function pointer
// (Indirect != nil), or a recognized builtin (Builtin != ""). Origin-entry
// dispatch (thread start, event dispatch) and joins are ordinary Calls
// classified by EntryConfig against the resolved target's simple name.
type Call struct {
	base
	Dst    *Var // may be nil
	Recv   *Var // receiver for virtual calls; nil for static calls
	Method string
	Args   []*Var
	Static *Func // resolved target for static calls
	// Indirect is the function-pointer variable of an indirect call
	// "x = (*fp)(args)" — the paper's C-side "indirect function targets".
	Indirect *Var
	// Builtin names a recognized C-style concurrency primitive:
	// "pthread_create", "pthread_join", "event_register".
	Builtin string
	// InLoop marks builtin spawn calls lexically inside a loop; like loop
	// origin allocations, they replicate the spawned origin.
	InLoop bool
	Site   int // program-wide call-site ID, set by Finalize
}

func (c *Call) String() string {
	var b strings.Builder
	if c.Dst != nil {
		fmt.Fprintf(&b, "%s = ", c.Dst)
	}
	switch {
	case c.Recv != nil:
		fmt.Fprintf(&b, "%s.%s(%s)", c.Recv, c.Method, vars(c.Args))
	case c.Indirect != nil:
		fmt.Fprintf(&b, "(*%s)(%s)", c.Indirect, vars(c.Args))
	case c.Builtin != "":
		fmt.Fprintf(&b, "%s(%s)", c.Builtin, vars(c.Args))
	default:
		fmt.Fprintf(&b, "%s(%s)", c.Method, vars(c.Args))
	}
	return b.String()
}

// ChanMake is "c = chan(cap)": it allocates a channel object with element
// capacity Cap (0 = unbuffered/rendezvous). Channels are modeled as heap
// objects of the pseudo-class "$chan" whose element slot is the synthetic
// field "$elem"; Site shares the allocation-site namespace with Alloc.
type ChanMake struct {
	base
	Dst  *Var
	Cap  int
	Site int // program-wide allocation-site ID, set by Finalize
}

func (c *ChanMake) String() string { return fmt.Sprintf("%s = chan(%d)", c.Dst, c.Cap) }

// ChanSend is "send(c, v)": the value flows into the channel's "$elem"
// slot, and the send happens-before every matching receive (Fava/Steffen
// rule send_i → recv_i).
type ChanSend struct {
	base
	Ch, Val *Var
}

func (s *ChanSend) String() string { return fmt.Sprintf("send(%s, %s)", s.Ch, s.Val) }

// ChanRecv is "x = recv(c)" (Dst may be nil when the received value is
// discarded): the value flows out of the channel's "$elem" slot.
type ChanRecv struct {
	base
	Dst *Var // may be nil
	Ch  *Var
}

func (r *ChanRecv) String() string {
	if r.Dst == nil {
		return fmt.Sprintf("recv(%s)", r.Ch)
	}
	return fmt.Sprintf("%s = recv(%s)", r.Dst, r.Ch)
}

// ChanClose is "close(c)": the close happens-before every receive that can
// observe the closed channel (broadcast ordering).
type ChanClose struct {
	base
	Ch *Var
}

func (c *ChanClose) String() string { return fmt.Sprintf("close(%s)", c.Ch) }

// FuncAddr is "x = &f": x points to the function object of f.
type FuncAddr struct {
	base
	Dst    *Var
	Target *Func
}

func (f *FuncAddr) String() string { return fmt.Sprintf("%s = &%s", f.Dst, f.Target.Name) }

// MonitorEnter acquires the monitor of the object x points to
// (synchronized(x) {).
type MonitorEnter struct {
	base
	Obj *Var
}

func (m *MonitorEnter) String() string { return fmt.Sprintf("monitorenter %s", m.Obj) }

// MonitorExit releases the monitor of the object x points to.
type MonitorExit struct {
	base
	Obj *Var
}

func (m *MonitorExit) String() string { return fmt.Sprintf("monitorexit %s", m.Obj) }

// Return is "return x" (Val may be nil for void returns).
type Return struct {
	base
	Val *Var
}

func (r *Return) String() string {
	if r.Val == nil {
		return "return"
	}
	return "return " + r.Val.String()
}

func vars(vs []*Var) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}
