package ir

// B is a fluent builder for a function body. It is used by tests and the
// synthetic workload generator; the minilang frontend lowers through it too.
type B struct {
	F    *Func
	pos  Pos
	loop int // >0 while inside a lexical loop
}

// NewB returns a builder appending to f's body.
func NewB(f *Func) *B { return &B{F: f} }

// At sets the source position attached to subsequently emitted instructions.
func (b *B) At(p Pos) *B { b.pos = p; return b }

// Line sets only the line of the current position.
func (b *B) Line(n int) *B { b.pos.Line = n; return b }

func (b *B) emit(i Instr) {
	b.F.Body = append(b.F.Body, i)
}

// V returns (creating if needed) the named variable in the function.
func (b *B) V(name string) *Var { return b.F.Var(name) }

// New emits x = new C(args) and returns the Alloc for further inspection.
func (b *B) New(dst string, c *Class, args ...string) *Alloc {
	a := &Alloc{base: base{b.pos}, Dst: b.V(dst), Class: c, Args: b.vs(args), InLoop: b.loop > 0}
	b.emit(a)
	return a
}

// Copy emits dst = src.
func (b *B) Copy(dst, src string) *B {
	b.emit(&Copy{base{b.pos}, b.V(dst), b.V(src)})
	return b
}

// Load emits dst = obj.field.
func (b *B) Load(dst, obj, field string) *B {
	b.emit(&LoadField{base{b.pos}, b.V(dst), b.V(obj), field})
	return b
}

// Store emits obj.field = src.
func (b *B) Store(obj, field, src string) *B {
	b.emit(&StoreField{base{b.pos}, b.V(obj), field, b.V(src)})
	return b
}

// LoadIdx emits dst = arr[*].
func (b *B) LoadIdx(dst, arr string) *B {
	b.emit(&LoadIndex{base{b.pos}, b.V(dst), b.V(arr)})
	return b
}

// StoreIdx emits arr[*] = src.
func (b *B) StoreIdx(arr, src string) *B {
	b.emit(&StoreIndex{base{b.pos}, b.V(arr), b.V(src)})
	return b
}

// LoadStatic emits dst = C.field.
func (b *B) LoadStatic(dst string, c *Class, field string) *B {
	b.emit(&LoadStatic{base{b.pos}, b.V(dst), c, field})
	return b
}

// StoreStatic emits C.field = src.
func (b *B) StoreStatic(c *Class, field, src string) *B {
	b.emit(&StoreStatic{base{b.pos}, c, field, b.V(src)})
	return b
}

// Call emits dst = recv.method(args); pass dst == "" for no result.
func (b *B) Call(dst, recv, method string, args ...string) *B {
	var d *Var
	if dst != "" {
		d = b.V(dst)
	}
	b.emit(&Call{base: base{b.pos}, Dst: d, Recv: b.V(recv), Method: method, Args: b.vs(args)})
	return b
}

// SuperCall emits a statically-dispatched constructor call
// this.Super.init(args): the target is fixed but the receiver binds
// through this's points-to set, so the superclass constructor is analyzed
// under each receiver's context (Figure 3 of the paper).
func (b *B) SuperCall(init *Func, args ...string) *B {
	b.emit(&Call{base: base{b.pos}, Recv: b.V("this"), Method: "$super", Args: b.vs(args), Static: init})
	return b
}

// CallStatic emits dst = f(args) for a direct call to f.
func (b *B) CallStatic(dst string, f *Func, args ...string) *B {
	var d *Var
	if dst != "" {
		d = b.V(dst)
	}
	b.emit(&Call{base: base{b.pos}, Dst: d, Method: f.Name, Args: b.vs(args), Static: f})
	return b
}

// AddrOf emits dst = &fn (a function-pointer value).
func (b *B) AddrOf(dst string, fn *Func) *B {
	b.emit(&FuncAddr{base{b.pos}, b.V(dst), fn})
	return b
}

// CallIndirect emits dst = (*fp)(args), an indirect call through the
// function pointer fp.
func (b *B) CallIndirect(dst, fp string, args ...string) *B {
	var d *Var
	if dst != "" {
		d = b.V(dst)
	}
	b.emit(&Call{base: base{b.pos}, Dst: d, Indirect: b.V(fp), Args: b.vs(args)})
	return b
}

// PthreadCreate emits handle = pthread_create(fp, arg): a thread origin per
// function fp may point to, with arg as the origin attribute.
func (b *B) PthreadCreate(handle, fp, arg string) *B {
	b.emit(&Call{base: base{b.pos}, Dst: b.V(handle), Builtin: "pthread_create",
		Args: []*Var{b.V(fp), b.V(arg)}, InLoop: b.loop > 0})
	return b
}

// PthreadJoin emits pthread_join(handle).
func (b *B) PthreadJoin(handle string) *B {
	b.emit(&Call{base: base{b.pos}, Builtin: "pthread_join", Args: []*Var{b.V(handle)}})
	return b
}

// EventRegister emits event_register(fp, arg): an event-handler origin per
// function fp may point to.
func (b *B) EventRegister(fp, arg string) *B {
	b.emit(&Call{base: base{b.pos}, Builtin: "event_register",
		Args: []*Var{b.V(fp), b.V(arg)}, InLoop: b.loop > 0})
	return b
}

// ChanMake emits dst = chan(cap).
func (b *B) ChanMake(dst string, cap int) *B {
	b.emit(&ChanMake{base: base{b.pos}, Dst: b.V(dst), Cap: cap})
	return b
}

// Send emits send(ch, val).
func (b *B) Send(ch, val string) *B {
	b.emit(&ChanSend{base{b.pos}, b.V(ch), b.V(val)})
	return b
}

// Recv emits dst = recv(ch); pass dst == "" to discard the value.
func (b *B) Recv(dst, ch string) *B {
	var d *Var
	if dst != "" {
		d = b.V(dst)
	}
	b.emit(&ChanRecv{base{b.pos}, d, b.V(ch)})
	return b
}

// CloseChan emits close(ch).
func (b *B) CloseChan(ch string) *B {
	b.emit(&ChanClose{base{b.pos}, b.V(ch)})
	return b
}

// Lock emits monitorenter obj.
func (b *B) Lock(obj string) *B {
	b.emit(&MonitorEnter{base{b.pos}, b.V(obj)})
	return b
}

// Unlock emits monitorexit obj.
func (b *B) Unlock(obj string) *B {
	b.emit(&MonitorExit{base{b.pos}, b.V(obj)})
	return b
}

// Ret emits return v (v == "" for void).
func (b *B) Ret(v string) *B {
	var rv *Var
	if v != "" {
		rv = b.V(v)
		if b.F.Ret == nil {
			b.F.Ret = b.F.Var("$ret")
		}
		b.emit(&Copy{base{b.pos}, b.F.Ret, rv})
	}
	b.emit(&Return{base{b.pos}, rv})
	return b
}

// InLoop runs fn with the loop flag set, marking allocations as loop
// allocations (which replicate origins).
func (b *B) InLoop(fn func()) *B {
	b.loop++
	fn()
	b.loop--
	return b
}

func (b *B) vs(names []string) []*Var {
	out := make([]*Var, len(names))
	for i, n := range names {
		out[i] = b.V(n)
	}
	return out
}
