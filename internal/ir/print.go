package ir

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Print writes a readable dump of the whole program: classes with their
// fields and flags, then every function body with numbered instructions.
// The output is deterministic and is what `o2 -dump-ir` shows.
func (p *Program) Print(w io.Writer) {
	names := make([]string, 0, len(p.Classes))
	for n := range p.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := p.Classes[n]
		var flags []string
		if c.IsThread {
			flags = append(flags, "thread")
		}
		if c.IsEvent {
			flags = append(flags, "event")
		}
		fl := ""
		if len(flags) > 0 {
			fl = " // " + strings.Join(flags, ", ")
		}
		ext := ""
		if c.Super != nil {
			ext = " extends " + c.Super.Name
		}
		fmt.Fprintf(w, "class %s%s {%s\n", c.Name, ext, fl)
		for _, f := range c.Fields {
			mod := ""
			if c.Volatiles[f] {
				mod = "volatile "
			}
			fmt.Fprintf(w, "  %sfield %s\n", mod, f)
		}
		fmt.Fprintln(w, "}")
	}
	if len(p.Statics) > 0 {
		fmt.Fprintf(w, "statics: %s\n", strings.Join(p.Statics, ", "))
	}
	fmt.Fprintln(w)

	for _, f := range p.Funcs {
		f.Print(w)
		fmt.Fprintln(w)
	}
}

// Print writes the function signature and numbered body.
func (f *Func) Print(w io.Writer) {
	params := make([]string, len(f.Params))
	for i, pv := range f.Params {
		params[i] = pv.Name
	}
	ann := ""
	if f.OriginEntry {
		ann = "origin "
	}
	fmt.Fprintf(w, "%sfunc %s(%s) {\n", ann, f.Name, strings.Join(params, ", "))
	for i, in := range f.Body {
		fmt.Fprintf(w, "  %3d  %-40s ; %s\n", i, in.String(), in.Pos())
	}
	fmt.Fprintln(w, "}")
}

// String renders the whole program via Print.
func (p *Program) String() string {
	var sb strings.Builder
	p.Print(&sb)
	return sb.String()
}
