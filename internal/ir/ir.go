// Package ir defines the intermediate representation analyzed by O2.
//
// The IR mirrors the statement universe of the paper's Table 2 and Table 4:
// object allocation, pointer copy, field load/store, array load/store
// (arrays are modeled with a single "*" field), static field load/store,
// virtual and static calls, origin-entry invocations (thread start / event
// dispatch), joins, and monitor enter/exit. Functions are linear sequences
// of instructions; structured control flow in the frontend is lowered to
// straight-line code with both branches retained, which is a sound
// over-approximation for the flow-insensitive analyses built on top.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a source position used in race reports.
type Pos struct {
	File string
	Line int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("<builtin>:%d", p.Line)
	}
	return fmt.Sprintf("%s:%d", p.File, p.Line)
}

// Var is a local variable or parameter of a function. Vars are compared by
// identity; each belongs to exactly one Func.
type Var struct {
	Name string
	Func *Func
	ID   int // index within Func, assigned by the builder
}

func (v *Var) String() string {
	if v == nil {
		return "_"
	}
	if v.Func != nil {
		return v.Func.Name + "." + v.Name
	}
	return v.Name
}

// Class is a reference type with fields, methods and single inheritance.
type Class struct {
	Name    string
	Super   *Class
	Fields  []string
	Methods map[string]*Func
	// Volatiles marks fields with atomic access semantics: concurrent
	// accesses to a volatile field are synchronization, not data races.
	Volatiles map[string]bool

	// IsThread marks classes whose instances are thread origins (the class
	// declares or inherits the configured thread entry method, e.g. "run").
	IsThread bool
	// IsEvent marks event-handler classes (declare or inherit a configured
	// event entry method, e.g. "handleEvent" or "onReceive").
	IsEvent bool
}

// IsVolatile reports whether field f is declared volatile on c or an
// ancestor.
func (c *Class) IsVolatile(f string) bool {
	for k := c; k != nil; k = k.Super {
		if k.Volatiles[f] {
			return true
		}
	}
	return false
}

// HasField reports whether the class or one of its ancestors declares f.
func (c *Class) HasField(f string) bool {
	for k := c; k != nil; k = k.Super {
		for _, g := range k.Fields {
			if g == f {
				return true
			}
		}
	}
	return false
}

// Lookup resolves a virtual method name against the class hierarchy.
func (c *Class) Lookup(name string) *Func {
	for k := c; k != nil; k = k.Super {
		if m, ok := k.Methods[name]; ok {
			return m
		}
	}
	return nil
}

// IsSubclassOf reports whether c is super or a descendant of super.
func (c *Class) IsSubclassOf(super *Class) bool {
	for k := c; k != nil; k = k.Super {
		if k == super {
			return true
		}
	}
	return false
}

func (c *Class) String() string { return c.Name }

// Func is a function or method. Params[0] is the receiver for methods.
type Func struct {
	Name   string // qualified name, e.g. "Worker.run" or "main"
	Class  *Class // nil for free functions
	Params []*Var
	Locals []*Var
	Body   []Instr
	Ret    *Var // synthetic variable carrying the return value; nil if void
	// OriginEntry marks a developer-annotated origin entry point (§3.1:
	// customized user-level threads may be annotated rather than matched
	// by name).
	OriginEntry bool

	vars map[string]*Var
}

// Simple returns the unqualified method name ("run" for "Worker.run").
func (f *Func) Simple() string {
	if i := strings.LastIndexByte(f.Name, '.'); i >= 0 {
		return f.Name[i+1:]
	}
	return f.Name
}

func (f *Func) String() string { return f.Name }

// Var returns the variable named name, creating it as a local if absent.
func (f *Func) Var(name string) *Var {
	if v, ok := f.vars[name]; ok {
		return v
	}
	v := &Var{Name: name, Func: f, ID: len(f.vars)}
	if f.vars == nil {
		f.vars = map[string]*Var{}
	}
	f.vars[name] = v
	f.Locals = append(f.Locals, v)
	return v
}

// ResetBody clears the function's body, locals and return variable,
// keeping only the declared parameters (with their original IDs). A
// failed fragment replay resets the shell with it before falling back
// to re-lowering the body from source.
func (f *Func) ResetBody() {
	f.Body = nil
	f.Ret = nil
	params := f.Params
	f.Params = nil
	f.Locals = nil
	f.vars = map[string]*Var{}
	for _, p := range params {
		f.Params = append(f.Params, f.Var(p.Name))
	}
}

// Program is a whole analyzable program.
type Program struct {
	Classes map[string]*Class
	Funcs   []*Func // all functions, including methods; Funcs[0] is not special
	Main    *Func
	// Statics is the set of static fields, as "Class.field" signatures.
	Statics []string
	// VolatileStatics marks static fields with atomic access semantics.
	VolatileStatics map[string]bool

	// Numbering assigned by Finalize.
	NumAllocSites int
	NumCallSites  int
	NumInstrs     int

	finalized bool
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{Classes: map[string]*Class{}, VolatileStatics: map[string]bool{}}
}

// Class returns the class named name, creating it if absent.
func (p *Program) Class(name string) *Class {
	if c, ok := p.Classes[name]; ok {
		return c
	}
	c := &Class{Name: name, Methods: map[string]*Func{}, Volatiles: map[string]bool{}}
	p.Classes[name] = c
	return c
}

// NewFunc creates and registers a function. For methods, pass the class and
// the unqualified name; the receiver parameter "this" is added automatically.
func (p *Program) NewFunc(class *Class, name string, params ...string) *Func {
	qname := name
	if class != nil {
		qname = class.Name + "." + name
	}
	f := &Func{Name: qname, Class: class, vars: map[string]*Var{}}
	if class != nil {
		f.Params = append(f.Params, f.Var("this"))
		class.Methods[name] = f
	}
	for _, pn := range params {
		f.Params = append(f.Params, f.Var(pn))
	}
	p.Funcs = append(p.Funcs, f)
	if qname == "main" {
		p.Main = f
	}
	return f
}

// LookupFunc finds a function by qualified name, or nil.
func (p *Program) LookupFunc(qname string) *Func {
	for _, f := range p.Funcs {
		if f.Name == qname {
			return f
		}
	}
	return nil
}

// Finalize assigns program-wide identifiers to allocation sites, call sites
// and instructions, and computes class concurrency flags. It must be called
// once after construction, before analysis.
func (p *Program) Finalize(entryCfg EntryConfig) error {
	if p.finalized {
		return nil
	}
	if p.Main == nil {
		return fmt.Errorf("ir: program has no main function")
	}
	alloc, call, n := 0, 0, 0
	for _, f := range p.Funcs {
		for _, in := range f.Body {
			n++
			switch in := in.(type) {
			case *Alloc:
				in.Site = alloc
				alloc++
			case *ChanMake:
				in.Site = alloc
				alloc++
			case *Call:
				in.Site = call
				call++
			}
		}
	}
	p.NumAllocSites = alloc
	p.NumCallSites = call
	p.NumInstrs = n
	for _, c := range p.Classes {
		for _, m := range entryCfg.ThreadEntries {
			if c.Lookup(m) != nil {
				c.IsThread = true
			}
		}
		for _, m := range entryCfg.EventEntries {
			if c.Lookup(m) != nil {
				c.IsEvent = true
			}
		}
		for k := c; k != nil; k = k.Super {
			for _, m := range k.Methods {
				if m.OriginEntry {
					c.IsThread = true
				}
			}
		}
	}
	p.finalized = true
	return nil
}

// Subclasses returns all classes (including c itself) that are subclasses of
// c, in deterministic order.
func (p *Program) Subclasses(c *Class) []*Class {
	var out []*Class
	for _, k := range p.Classes {
		if k.IsSubclassOf(c) {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// EntryConfig configures which method names are origin entry points,
// mirroring the paper's Table 1. StartMethods are parent-side invocations
// (e.g. Thread.start) that transfer control to the corresponding thread
// entry; JoinMethods end an origin from the parent side.
type EntryConfig struct {
	ThreadEntries []string // e.g. run, call
	EventEntries  []string // e.g. handleEvent, onReceive, onMessageEvent, actionPerformed
	StartMethods  []string // e.g. start (dispatches to "run" on the receiver)
	JoinMethods   []string // e.g. join
	// WaitMethods / NotifyMethods are condition-variable operations: a
	// notify on an object happens-before the resumption of a wait on the
	// same object (the "new happens-before rules ... to the semaphore
	// operations" the paper lists as future work).
	WaitMethods   []string // e.g. wait
	NotifyMethods []string // e.g. notify, notifyAll, signal
	// LockFuncs / UnlockFuncs name free functions that acquire/release the
	// monitor of their first argument — pthread mutexes and the paper's
	// "customized locks through configurations".
	LockFuncs   []string // e.g. pthread_mutex_lock, spin_lock
	UnlockFuncs []string // e.g. pthread_mutex_unlock, spin_unlock
	// WgAddMethods / WgDoneMethods / WgWaitMethods are WaitGroup-style
	// barrier operations (Go's sync.WaitGroup): every Done on an object
	// happens-before the resumption of a Wait on the same object. A call
	// is classified as a WaitGroup operation only when virtual dispatch
	// resolves no user-defined target, so classes with real Add/Done/Wait
	// methods keep ordinary call semantics.
	WgAddMethods  []string // e.g. Add
	WgDoneMethods []string // e.g. Done
	WgWaitMethods []string // e.g. Wait
}

// DefaultEntryConfig matches the paper's Table 1 defaults.
func DefaultEntryConfig() EntryConfig {
	return EntryConfig{
		ThreadEntries: []string{"run", "call"},
		EventEntries:  []string{"handleEvent", "onReceive", "onMessageEvent", "actionPerformed", "onEvent"},
		StartMethods:  []string{"start"},
		JoinMethods:   []string{"join"},
		WaitMethods:   []string{"wait"},
		NotifyMethods: []string{"notify", "notifyAll", "signal"},
		LockFuncs:     []string{"pthread_mutex_lock", "spin_lock"},
		UnlockFuncs:   []string{"pthread_mutex_unlock", "spin_unlock"},
		WgAddMethods:  []string{"Add"},
		WgDoneMethods: []string{"Done"},
		WgWaitMethods: []string{"Wait"},
	}
}

// IsThreadEntry reports whether simple method name m is a thread entry.
func (c EntryConfig) IsThreadEntry(m string) bool { return contains(c.ThreadEntries, m) }

// IsEventEntry reports whether simple method name m is an event entry.
func (c EntryConfig) IsEventEntry(m string) bool { return contains(c.EventEntries, m) }

// IsEntry reports whether simple method name m is any origin entry.
func (c EntryConfig) IsEntry(m string) bool { return c.IsThreadEntry(m) || c.IsEventEntry(m) }

// IsStart reports whether simple method name m is a start-style dispatcher.
func (c EntryConfig) IsStart(m string) bool { return contains(c.StartMethods, m) }

// IsJoin reports whether simple method name m is a join.
func (c EntryConfig) IsJoin(m string) bool { return contains(c.JoinMethods, m) }

// IsWait reports whether simple method name m is a condition wait.
func (c EntryConfig) IsWait(m string) bool { return contains(c.WaitMethods, m) }

// IsLockFunc reports whether free-function name m acquires a lock.
func (c EntryConfig) IsLockFunc(m string) bool { return contains(c.LockFuncs, m) }

// IsUnlockFunc reports whether free-function name m releases a lock.
func (c EntryConfig) IsUnlockFunc(m string) bool { return contains(c.UnlockFuncs, m) }

// IsNotify reports whether simple method name m is a condition notify.
func (c EntryConfig) IsNotify(m string) bool { return contains(c.NotifyMethods, m) }

// IsWgAdd reports whether simple method name m is a WaitGroup Add.
func (c EntryConfig) IsWgAdd(m string) bool { return contains(c.WgAddMethods, m) }

// IsWgDone reports whether simple method name m is a WaitGroup Done.
func (c EntryConfig) IsWgDone(m string) bool { return contains(c.WgDoneMethods, m) }

// IsWgWait reports whether simple method name m is a WaitGroup Wait.
func (c EntryConfig) IsWgWait(m string) bool { return contains(c.WgWaitMethods, m) }

func contains(xs []string, x string) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}
