package ir

import (
	"strings"
	"testing"
)

func TestClassHierarchy(t *testing.T) {
	p := NewProgram()
	animal := p.Class("Animal")
	animal.Fields = []string{"name"}
	dog := p.Class("Dog")
	dog.Super = animal
	pup := p.Class("Puppy")
	pup.Super = dog

	speak := p.NewFunc(animal, "speak")
	bark := p.NewFunc(dog, "speak") // override

	if got := pup.Lookup("speak"); got != bark {
		t.Errorf("Puppy.speak resolved to %v, want Dog override", got)
	}
	if got := animal.Lookup("speak"); got != speak {
		t.Errorf("Animal.speak resolved to %v", got)
	}
	if pup.Lookup("missing") != nil {
		t.Errorf("missing method should resolve to nil")
	}
	if !pup.HasField("name") {
		t.Errorf("Puppy should inherit field name")
	}
	if animal.HasField("tail") {
		t.Errorf("Animal has no tail field")
	}
	if !pup.IsSubclassOf(animal) || animal.IsSubclassOf(pup) {
		t.Errorf("subclass relation wrong")
	}
}

func TestSubclassesDeterministic(t *testing.T) {
	p := NewProgram()
	base := p.Class("Base")
	for _, n := range []string{"C", "A", "B"} {
		c := p.Class(n)
		c.Super = base
	}
	subs := p.Subclasses(base)
	if len(subs) != 4 {
		t.Fatalf("want 4 subclasses incl. Base, got %d", len(subs))
	}
	for i := 1; i < len(subs); i++ {
		if subs[i-1].Name >= subs[i].Name {
			t.Errorf("subclasses not sorted: %v", subs)
		}
	}
}

func TestFuncVarsAndParams(t *testing.T) {
	p := NewProgram()
	c := p.Class("C")
	m := p.NewFunc(c, "m", "a", "b")
	if len(m.Params) != 3 || m.Params[0].Name != "this" {
		t.Fatalf("method params should start with this: %v", m.Params)
	}
	v1 := m.Var("x")
	v2 := m.Var("x")
	if v1 != v2 {
		t.Errorf("Var should intern by name")
	}
	if m.Simple() != "m" {
		t.Errorf("Simple() = %q", m.Simple())
	}
	free := p.NewFunc(nil, "f")
	if len(free.Params) != 0 || free.Simple() != "f" {
		t.Errorf("free function shape wrong")
	}
}

func TestFinalizeNumbersSites(t *testing.T) {
	p := NewProgram()
	c := p.Class("C")
	mainFn := p.NewFunc(nil, "main")
	b := NewB(mainFn)
	b.New("x", c)
	b.New("y", c)
	b.Call("", "x", "m")
	b.Call("", "y", "m")
	p.NewFunc(c, "m")
	if err := p.Finalize(DefaultEntryConfig()); err != nil {
		t.Fatal(err)
	}
	if p.NumAllocSites != 2 || p.NumCallSites != 2 {
		t.Errorf("site numbering: %d allocs, %d calls", p.NumAllocSites, p.NumCallSites)
	}
	allocs := 0
	for _, in := range mainFn.Body {
		if a, ok := in.(*Alloc); ok {
			if a.Site != allocs {
				t.Errorf("alloc site %d, want %d", a.Site, allocs)
			}
			allocs++
		}
	}
	// Finalize is idempotent.
	if err := p.Finalize(DefaultEntryConfig()); err != nil {
		t.Fatal(err)
	}
	if p.NumAllocSites != 2 {
		t.Errorf("second Finalize renumbered sites")
	}
}

func TestFinalizeRequiresMain(t *testing.T) {
	p := NewProgram()
	if err := p.Finalize(DefaultEntryConfig()); err == nil {
		t.Fatal("Finalize should fail without main")
	}
}

func TestFinalizeFlagsOriginClasses(t *testing.T) {
	p := NewProgram()
	w := p.Class("Worker")
	p.NewFunc(w, "run")
	h := p.Class("Handler")
	p.NewFunc(h, "handleEvent", "ev")
	sub := p.Class("SubWorker")
	sub.Super = w
	plain := p.Class("Plain")
	p.NewFunc(plain, "work")
	p.NewFunc(nil, "main")
	if err := p.Finalize(DefaultEntryConfig()); err != nil {
		t.Fatal(err)
	}
	if !w.IsThread || w.IsEvent {
		t.Errorf("Worker flags: thread=%v event=%v", w.IsThread, w.IsEvent)
	}
	if !h.IsEvent || h.IsThread {
		t.Errorf("Handler flags: thread=%v event=%v", h.IsThread, h.IsEvent)
	}
	if !sub.IsThread {
		t.Errorf("SubWorker should inherit thread entry")
	}
	if plain.IsThread || plain.IsEvent {
		t.Errorf("Plain should not be an origin class")
	}
}

func TestEntryConfigClassification(t *testing.T) {
	e := DefaultEntryConfig()
	cases := []struct {
		m                          string
		thread, event, start, join bool
	}{
		{"run", true, false, false, false},
		{"call", true, false, false, false},
		{"handleEvent", false, true, false, false},
		{"onReceive", false, true, false, false},
		{"actionPerformed", false, true, false, false},
		{"start", false, false, true, false},
		{"join", false, false, false, true},
		{"random", false, false, false, false},
	}
	for _, c := range cases {
		if e.IsThreadEntry(c.m) != c.thread || e.IsEventEntry(c.m) != c.event ||
			e.IsStart(c.m) != c.start || e.IsJoin(c.m) != c.join {
			t.Errorf("classification of %q wrong", c.m)
		}
		if e.IsEntry(c.m) != (c.thread || c.event) {
			t.Errorf("IsEntry(%q) wrong", c.m)
		}
	}
}

func TestBuilderEmitsAllForms(t *testing.T) {
	p := NewProgram()
	c := p.Class("C")
	p.Statics = append(p.Statics, "C.g")
	f := p.NewFunc(nil, "main")
	b := NewB(f).At(Pos{File: "t.mini", Line: 10})
	b.New("x", c, "y")
	b.Copy("z", "x")
	b.Load("v", "x", "f")
	b.Store("x", "f", "v")
	b.LoadIdx("e", "x")
	b.StoreIdx("x", "e")
	b.LoadStatic("s", c, "g")
	b.StoreStatic(c, "g", "s")
	b.Call("r", "x", "m", "z")
	b.Lock("x")
	b.Unlock("x")
	b.Ret("r")

	wantTypes := []string{"*ir.Alloc", "*ir.Copy", "*ir.LoadField", "*ir.StoreField",
		"*ir.LoadIndex", "*ir.StoreIndex", "*ir.LoadStatic", "*ir.StoreStatic",
		"*ir.Call", "*ir.MonitorEnter", "*ir.MonitorExit", "*ir.Copy", "*ir.Return"}
	if len(f.Body) != len(wantTypes) {
		t.Fatalf("body has %d instrs, want %d", len(f.Body), len(wantTypes))
	}
	for i, in := range f.Body {
		got := typeName(in)
		if got != wantTypes[i] {
			t.Errorf("instr %d is %s, want %s", i, got, wantTypes[i])
		}
		if in.Pos().Line != 10 {
			t.Errorf("instr %d lost position", i)
		}
		if in.String() == "" {
			t.Errorf("instr %d has empty String()", i)
		}
	}
	if f.Ret == nil {
		t.Errorf("Ret(...) should create the $ret variable")
	}
}

func TestBuilderLoopMarksAllocs(t *testing.T) {
	p := NewProgram()
	c := p.Class("C")
	f := p.NewFunc(nil, "main")
	b := NewB(f)
	outside := b.New("a", c)
	var inside *Alloc
	b.InLoop(func() { inside = b.New("b", c) })
	after := b.New("c", c)
	if outside.InLoop || after.InLoop {
		t.Errorf("allocations outside loops must not be loop-marked")
	}
	if !inside.InLoop {
		t.Errorf("allocation inside InLoop must be loop-marked")
	}
}

func TestPosString(t *testing.T) {
	if got := (Pos{File: "a.mini", Line: 3}).String(); got != "a.mini:3" {
		t.Errorf("Pos.String() = %q", got)
	}
	if got := (Pos{Line: 7}).String(); !strings.Contains(got, "builtin") {
		t.Errorf("builtin Pos.String() = %q", got)
	}
}

func TestInstrStrings(t *testing.T) {
	p := NewProgram()
	c := p.Class("C")
	f := p.NewFunc(nil, "main")
	b := NewB(f)
	b.New("x", c, "a", "b")
	b.Call("r", "x", "m", "a")
	if s := f.Body[0].String(); !strings.Contains(s, "new C") {
		t.Errorf("Alloc.String() = %q", s)
	}
	if s := f.Body[1].String(); !strings.Contains(s, ".m(") || !strings.Contains(s, "r = ") {
		t.Errorf("Call.String() = %q", s)
	}
}

func typeName(v interface{}) string {
	switch v.(type) {
	case *Alloc:
		return "*ir.Alloc"
	case *Copy:
		return "*ir.Copy"
	case *LoadField:
		return "*ir.LoadField"
	case *StoreField:
		return "*ir.StoreField"
	case *LoadIndex:
		return "*ir.LoadIndex"
	case *StoreIndex:
		return "*ir.StoreIndex"
	case *LoadStatic:
		return "*ir.LoadStatic"
	case *StoreStatic:
		return "*ir.StoreStatic"
	case *Call:
		return "*ir.Call"
	case *MonitorEnter:
		return "*ir.MonitorEnter"
	case *MonitorExit:
		return "*ir.MonitorExit"
	case *Return:
		return "*ir.Return"
	}
	return "?"
}

func TestEntryConfigWaitNotify(t *testing.T) {
	e := DefaultEntryConfig()
	if !e.IsWait("wait") || e.IsWait("notify") {
		t.Errorf("wait classification wrong")
	}
	for _, m := range []string{"notify", "notifyAll", "signal"} {
		if !e.IsNotify(m) {
			t.Errorf("%q should be a notify method", m)
		}
	}
	if e.IsNotify("wait") || e.IsNotify("run") {
		t.Errorf("notify classification too broad")
	}
}

func TestClassVolatileDeclaration(t *testing.T) {
	p := NewProgram()
	c := p.Class("C")
	c.Volatiles["f"] = true
	sub := p.Class("Sub")
	sub.Super = c
	if !sub.IsVolatile("f") || sub.IsVolatile("g") {
		t.Errorf("IsVolatile wrong")
	}
}

func TestProgramPrint(t *testing.T) {
	p := NewProgram()
	c := p.Class("Worker")
	c.Fields = []string{"s"}
	c.Volatiles["flag"] = true
	c.Fields = append(c.Fields, "flag")
	run := p.NewFunc(c, "run")
	NewB(run).At(Pos{File: "x.mini", Line: 3}).Load("v", "this", "s")
	mainFn := p.NewFunc(nil, "main")
	b := NewB(mainFn)
	b.New("w", c)
	b.Call("", "w", "start")
	if err := p.Finalize(DefaultEntryConfig()); err != nil {
		t.Fatal(err)
	}
	out := p.String()
	for _, want := range []string{
		"class Worker", "// thread", "volatile field flag", "field s",
		"func Worker.run(this)", "func main()", "x.mini:3", "new Worker",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestFuncAddrAndBuiltins(t *testing.T) {
	p := NewProgram()
	worker := p.NewFunc(nil, "worker", "arg")
	mainFn := p.NewFunc(nil, "main")
	b := NewB(mainFn)
	b.AddrOf("fp", worker)
	b.PthreadCreate("h", "fp", "arg")
	b.PthreadJoin("h")
	b.EventRegister("fp", "arg")
	b.CallIndirect("r", "fp", "arg")
	if err := p.Finalize(DefaultEntryConfig()); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, in := range mainFn.Body {
		kinds = append(kinds, in.String())
	}
	joined := strings.Join(kinds, "\n")
	for _, want := range []string{"&worker", "pthread_create", "pthread_join", "event_register", "(*main.fp)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("builtin forms missing %q in:\n%s", want, joined)
		}
	}
}
