// Package racerd reimplements the skeleton of RacerD (Blackshear et al.,
// OOPSLA 2018), the comparator of the paper's evaluation. RacerD is a
// compositional, syntactic analysis: it tracks a lock domain (are any
// locks held?), a threading domain (can this code run concurrently?), and
// a simple ownership domain (was the base object allocated locally?) — but
// performs no pointer analysis. Accesses are keyed by the syntactic field
// signature, so races on aliased objects reached through differently-named
// fields are missed, while accesses to unrelated instances of the same
// class are conflated — exactly the trade-off the paper discusses.
//
// Following §5.2, warnings are translated to potential race pair counts:
// read/write race pairs plus pairs of conflicting accesses behind
// unprotected writes.
package racerd

import (
	"fmt"
	"sort"
	"time"

	"o2/internal/ir"
)

// Warning is one reported potential race pair.
type Warning struct {
	Kind  string // "read_write_race" or "unprotected_write"
	Field string // syntactic signature Class.field
	A, B  Site
}

// Site is one access location.
type Site struct {
	Pos    ir.Pos
	Fn     string
	Write  bool
	Locked bool
}

func (w Warning) String() string {
	return fmt.Sprintf("%s on %s: %s:%d <-> %s:%d", w.Kind, w.Field,
		w.A.Pos.File, w.A.Pos.Line, w.B.Pos.File, w.B.Pos.Line)
}

// Report is the analysis result.
type Report struct {
	Warnings []Warning
	// Accesses counts field accesses considered.
	Accesses int
	Elapsed  time.Duration
}

// access is an abstract access record in RacerD's summary domain.
type access struct {
	field    string // Class.field syntactic signature
	write    bool
	locked   bool
	threaded bool
	owned    bool // base allocated locally (ownership domain)
	pos      ir.Pos
	fn       string
}

// Analyze runs the RacerD-style analysis over a finalized program.
func Analyze(prog *ir.Program, entries ir.EntryConfig) *Report {
	start := time.Now()
	a := &analyzer{
		prog:    prog,
		entries: entries,
		cha:     buildCHA(prog),
		visited: map[visitKey]bool{},
	}
	// Roots: main (threaded once any thread may run) and every origin
	// entry method of every thread/event class.
	a.walk(prog.Main, true, false, 0)
	for _, cls := range sortedClasses(prog) {
		if !cls.IsThread && !cls.IsEvent {
			continue
		}
		for _, m := range entryMethods(cls, entries) {
			a.walk(m, true, false, 0)
		}
	}
	rep := &Report{Accesses: len(a.accesses), Elapsed: 0}
	rep.Warnings = pair(a.accesses)
	rep.Elapsed = time.Since(start)
	return rep
}

type visitKey struct {
	fn     *ir.Func
	locked bool
}

type analyzer struct {
	prog     *ir.Program
	entries  ir.EntryConfig
	cha      map[string][]*ir.Func // simple-name -> overriding methods
	visited  map[visitKey]bool
	accesses []access
}

// walk traverses a method summary-style: locked tracks whether any lock is
// held, threaded whether the code may run concurrently. depth bounds CHA
// blowup on pathological hierarchies.
func (a *analyzer) walk(fn *ir.Func, threaded, locked bool, depth int) {
	if fn == nil || depth > 64 {
		return
	}
	k := visitKey{fn, locked}
	if a.visited[k] {
		return
	}
	a.visited[k] = true

	owned := map[*ir.Var]bool{}
	lockDepth := 0
	if locked {
		lockDepth = 1
	}
	for _, in := range fn.Body {
		switch in := in.(type) {
		case *ir.Alloc:
			owned[in.Dst] = true
		case *ir.Copy:
			owned[in.Dst] = owned[in.Src]
		case *ir.MonitorEnter:
			lockDepth++
		case *ir.MonitorExit:
			if lockDepth > 0 {
				lockDepth--
			}
		case *ir.LoadField:
			a.record(fn, in, in.Obj, in.Field, false, lockDepth > 0, threaded, owned)
		case *ir.StoreField:
			a.record(fn, in, in.Obj, in.Field, true, lockDepth > 0, threaded, owned)
		case *ir.LoadIndex:
			a.record(fn, in, in.Arr, ir.ArrayField, false, lockDepth > 0, threaded, owned)
		case *ir.StoreIndex:
			a.record(fn, in, in.Arr, ir.ArrayField, true, lockDepth > 0, threaded, owned)
		case *ir.LoadStatic:
			a.recordStatic(fn, in, in.Class.Name+"."+in.Field, false, lockDepth > 0, threaded)
		case *ir.StoreStatic:
			a.recordStatic(fn, in, in.Class.Name+"."+in.Field, true, lockDepth > 0, threaded)
		case *ir.Call:
			a.walkCall(fn, in, threaded, lockDepth > 0, depth)
		}
	}
}

func (a *analyzer) walkCall(fn *ir.Func, in *ir.Call, threaded, locked bool, depth int) {
	if in.Static != nil {
		a.walk(in.Static, threaded, locked, depth+1)
		return
	}
	if a.entries.IsJoin(in.Method) {
		return
	}
	method := in.Method
	if a.entries.IsStart(method) {
		// start(): entry methods are roots already; nothing to inline.
		return
	}
	for _, m := range a.cha[method] {
		a.walk(m, threaded, locked, depth+1)
	}
}

func (a *analyzer) record(fn *ir.Func, in ir.Instr, base *ir.Var, field string, write, locked, threaded bool, owned map[*ir.Var]bool) {
	// RacerD keys accesses by the static class of the base when known;
	// minilang is untyped at use sites, so the declaring class is
	// recovered from the receiver's class when base is "this", otherwise
	// the bare field name is used — the same syntactic coarseness.
	sig := field
	if base.Name == "this" && fn.Class != nil {
		sig = declaringClass(fn.Class, field) + "." + field
	}
	a.accesses = append(a.accesses, access{
		field: sig, write: write, locked: locked, threaded: threaded,
		owned: owned[base], pos: in.Pos(), fn: fn.Name,
	})
}

func (a *analyzer) recordStatic(fn *ir.Func, in ir.Instr, sig string, write, locked, threaded bool) {
	a.accesses = append(a.accesses, access{
		field: sig, write: write, locked: locked, threaded: threaded,
		pos: in.Pos(), fn: fn.Name,
	})
}

// pair produces warnings per the paper's translation: for each field,
// read/write race pairs (two threaded accesses, at least one write, not
// both locked, neither owned) plus unprotected-write conflict pairs.
func pair(accs []access) []Warning {
	byField := map[string][]access{}
	for _, ac := range accs {
		if ac.owned || !ac.threaded {
			continue
		}
		byField[ac.field] = append(byField[ac.field], ac)
	}
	fields := make([]string, 0, len(byField))
	for f := range byField {
		fields = append(fields, f)
	}
	sort.Strings(fields)

	var out []Warning
	seen := map[string]bool{}
	for _, f := range fields {
		as := byField[f]
		for i := 0; i < len(as); i++ {
			for j := i + 1; j < len(as); j++ {
				x, y := as[i], as[j]
				if !x.write && !y.write {
					continue
				}
				if x.locked && y.locked {
					continue // both protected: assumed same lock (RacerD's coarse lock domain)
				}
				kind := "read_write_race"
				if (x.write && !x.locked) || (y.write && !y.locked) {
					kind = "unprotected_write"
				}
				w := Warning{Kind: kind, Field: f,
					A: Site{x.pos, x.fn, x.write, x.locked},
					B: Site{y.pos, y.fn, y.write, y.locked}}
				// RacerD groups conflicting accesses per report; dedupe at
				// (field, kind, method-pair) granularity accordingly.
				fa, fb := x.fn, y.fn
				if fa > fb {
					fa, fb = fb, fa
				}
				key := kind + "|" + f + "|" + fa + "|" + fb
				if !seen[key] {
					seen[key] = true
					out = append(out, w)
				}
			}
		}
	}
	return out
}

func buildCHA(prog *ir.Program) map[string][]*ir.Func {
	cha := map[string][]*ir.Func{}
	for _, cls := range sortedClasses(prog) {
		for name, m := range cls.Methods {
			cha[name] = append(cha[name], m)
		}
	}
	for _, ms := range cha {
		sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	}
	return cha
}

func sortedClasses(prog *ir.Program) []*ir.Class {
	out := make([]*ir.Class, 0, len(prog.Classes))
	for _, c := range prog.Classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func entryMethods(cls *ir.Class, entries ir.EntryConfig) []*ir.Func {
	var out []*ir.Func
	for name, m := range cls.Methods {
		if entries.IsEntry(name) {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func declaringClass(cls *ir.Class, field string) string {
	for k := cls; k != nil; k = k.Super {
		for _, f := range k.Fields {
			if f == field {
				return k.Name
			}
		}
	}
	return cls.Name
}
