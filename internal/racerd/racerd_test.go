package racerd_test

import (
	"testing"

	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/racerd"
)

func analyze(t *testing.T, src string) *racerd.Report {
	t.Helper()
	prog, err := lang.Compile("t.mini", src, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatal(err)
	}
	return racerd.Analyze(prog, ir.DefaultEntryConfig())
}

func TestUnprotectedWriteWarning(t *testing.T) {
	rep := analyze(t, `
class S { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; x.v = this; }
}
class L {
  field s; field k;
  L(s, k) { this.s = s; this.k = k; }
  run() {
    x = this.s;
    m = this.k;
    sync (m) { x.v = this; }
  }
}
main {
  s = new S();
  k = new K();
  w = new W(s);
  l = new L(s, k);
  w.start();
  l.start();
}
`)
	if len(rep.Warnings) == 0 {
		t.Fatalf("unprotected write should warn")
	}
	found := false
	for _, w := range rep.Warnings {
		if w.Kind == "unprotected_write" && w.Field == "v" {
			found = true
		}
	}
	if !found {
		t.Errorf("no unprotected_write on v: %v", rep.Warnings)
	}
}

func TestBothLockedAssumedSafe(t *testing.T) {
	// RacerD's coarse lock domain: two locked accesses are assumed
	// protected even when the locks differ — a known false-negative class.
	rep := analyze(t, `
class S { field v; }
class W {
  field s; field k;
  W(s, k) { this.s = s; this.k = k; }
  run() {
    x = this.s;
    m = this.k;
    sync (m) { x.v = this; }
  }
}
main {
  s = new S();
  k1 = new K();
  k2 = new K();
  w1 = new W(s, k1);
  w2 = new W(s, k2);
  w1.start();
  w2.start();
}
`)
	for _, w := range rep.Warnings {
		if w.Field == "v" {
			t.Errorf("both-locked accesses should not warn (coarse lock domain): %v", w)
		}
	}
}

func TestOwnershipSuppressesLocalAllocations(t *testing.T) {
	rep := analyze(t, `
class D { field v; }
class W {
  run() {
    d = new D();
    d.v = this;   // owned: allocated in this method
  }
}
main {
  w1 = new W();
  w2 = new W();
  w1.start();
  w2.start();
}
`)
	for _, w := range rep.Warnings {
		if w.Field == "v" || w.Field == "D.v" {
			t.Errorf("owned access should not warn: %v", w)
		}
	}
}

// The paper's key point: RacerD misses alias races because it keys
// accesses syntactically. The same object reached through differently-
// declared fields does not produce a warning, while O2 finds it.
func TestAliasBlindness(t *testing.T) {
	rep := analyze(t, `
class Holder1 { field slot1; }
class Holder2 { field slot2; }
class Obj { field data; }
class W1 {
  field h;
  W1(h) { this.h = h; }
  run() { o = this.h; x = o.slot1; x.data = this; }
}
class W2 {
  field h;
  W2(h) { this.h = h; }
  run() { o = this.h; x = o.slot2; x.data = this; }
}
main {
  obj = new Obj();
  h1 = new Holder1();
  h2 = new Holder2();
  h1.slot1 = obj;
  h2.slot2 = obj;   // alias: both holders reference the same Obj
  w1 = new W1(h1);
  w2 = new W2(h2);
  w1.start();
  w2.start();
}
`)
	// RacerD still sees both "data" accesses under the same syntactic
	// field name here (minilang is untyped), so to expose blindness we
	// check the holder slots: the two slotN reads never conflict for
	// RacerD, and "data" warnings conflate unrelated instances. The
	// structural point tested: RacerD produces its verdict without any
	// aliasing evidence, i.e. the report is identical if the aliasing
	// store is removed.
	rep2 := analyze(t, `
class Holder1 { field slot1; }
class Holder2 { field slot2; }
class Obj { field data; }
class W1 {
  field h;
  W1(h) { this.h = h; }
  run() { o = this.h; x = o.slot1; x.data = this; }
}
class W2 {
  field h;
  W2(h) { this.h = h; }
  run() { o = this.h; x = o.slot2; x.data = this; }
}
main {
  obj = new Obj();
  obj2 = new Obj();
  h1 = new Holder1();
  h2 = new Holder2();
  h1.slot1 = obj;
  h2.slot2 = obj2;  // no alias: two distinct objects
  w1 = new W1(h1);
  w2 = new W2(h2);
  w1.start();
  w2.start();
}
`)
	if len(rep.Warnings) != len(rep2.Warnings) {
		t.Errorf("RacerD should be blind to aliasing: %d vs %d warnings",
			len(rep.Warnings), len(rep2.Warnings))
	}
}

func TestStaticsWarn(t *testing.T) {
	rep := analyze(t, `
class G { static field flag; }
class W {
  run() { G.flag = this; }
}
main {
  w = new W();
  w.start();
  x = G.flag;
}
`)
	found := false
	for _, w := range rep.Warnings {
		if w.Field == "G.flag" {
			found = true
		}
	}
	if !found {
		t.Errorf("static field conflict should warn: %v", rep.Warnings)
	}
}

func TestDeterministicOrder(t *testing.T) {
	src := `
class S { field a; field b; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; x.a = this; x.b = this; }
}
main {
  s = new S();
  w1 = new W(s);
  w2 = new W(s);
  w1.start();
  w2.start();
}
`
	r1 := analyze(t, src)
	r2 := analyze(t, src)
	if len(r1.Warnings) != len(r2.Warnings) {
		t.Fatalf("nondeterministic warning count")
	}
	for i := range r1.Warnings {
		if r1.Warnings[i].String() != r2.Warnings[i].String() {
			t.Fatalf("warning order differs at %d", i)
		}
	}
}

// RacerD has no pointer analysis, so function-pointer dispatch is opaque:
// races reachable only through pthread workers and dispatch tables are
// invisible — mirroring the paper's observation that RacerD could not
// analyze Memcached/Redis.
func TestCStyleBlindness(t *testing.T) {
	rep := analyze(t, `
class S { field hits; }
func handler(s) { s.hits = s; }
func worker(s) { s.hits = null; }
main {
  s = new S();
  h = &handler;
  event_register(h, s);
  w = &worker;
  t1 = pthread_create(w, s);
}
`)
	for _, w := range rep.Warnings {
		if w.Field == "hits" {
			t.Fatalf("RacerD-style analysis should miss the function-pointer race: %v", w)
		}
	}
}
