package unit

import (
	"fmt"

	"o2/internal/ir"
)

// The fragment codec: a lowered function body serialized as portable
// instruction records. Records reference variables, classes and
// functions by *name* (never by pointer) and carry line numbers
// *relative to the unit's declaration line*, so a fragment cached from
// one program replays into a fresh shell of another program — with the
// current file name and declaration line — and reproduces the exact
// instructions, variable tables and source positions whole-program
// lowering would have produced. Replay drives the same ir.B builder
// the lowerer uses, so variable creation order (and thus Var IDs) is
// preserved by construction.

// Op enumerates fragment instruction kinds.
type Op uint8

const (
	OpAlloc Op = iota + 1
	OpCopy
	OpLoadField
	OpStoreField
	OpLoadIndex
	OpStoreIndex
	OpLoadStatic
	OpStoreStatic
	OpCallVirt
	OpCallStatic
	OpSuper
	OpCallIndirect
	OpBuiltin
	OpFuncAddr
	OpMonEnter
	OpMonExit
	OpRet
	OpChanMake
	OpChanSend
	OpChanRecv
	OpChanClose
)

// FragInstr is one serialized instruction. Field use by op:
//
//	OpAlloc        Dst = new Name(Args)            [InLoop]
//	OpCopy         Dst = A
//	OpLoadField    Dst = A.Name
//	OpStoreField   A.Name = B
//	OpLoadIndex    Dst = A[*]
//	OpStoreIndex   A[*] = B
//	OpLoadStatic   Dst = Name.B  (Name = class, B = field)
//	OpStoreStatic  Name.B = A
//	OpCallVirt     [Dst =] A.Name(Args)
//	OpCallStatic   [Dst =] Name(Args)              (qualified func name)
//	OpSuper        super→Name(Args)                (qualified init name)
//	OpCallIndirect [Dst =] (*A)(Args)
//	OpBuiltin      [Dst =] Name(Args)              [InLoop]
//	OpFuncAddr     Dst = &Name
//	OpMonEnter     monitorenter A
//	OpMonExit      monitorexit A
//	OpRet          return A ("" = void; folds the $ret copy)
//	OpChanMake     Dst = chan(Cap)
//	OpChanSend     send(A, B)
//	OpChanRecv     [Dst =] recv(A)
//	OpChanClose    close(A)
type FragInstr struct {
	Op     Op       `json:"op"`
	Dst    string   `json:"dst,omitempty"`
	A      string   `json:"a,omitempty"`
	B      string   `json:"b,omitempty"`
	Name   string   `json:"name,omitempty"`
	Args   []string `json:"args,omitempty"`
	Rel    int      `json:"rel"` // line offset from the declaration line
	InLoop bool     `json:"in_loop,omitempty"`
	Cap    int      `json:"cap,omitempty"` // OpChanMake capacity
}

// Frag is a serialized function body.
type Frag struct {
	Instrs []FragInstr `json:"instrs"`
}

// EncodeBody serializes fn's lowered body with positions relative to
// baseLine. An error means the body contains a shape the codec cannot
// round-trip; callers simply skip caching that unit.
func EncodeBody(fn *ir.Func, baseLine int) (*Frag, error) {
	fr := &Frag{}
	body := fn.Body
	for i := 0; i < len(body); i++ {
		rel := body[i].Pos().Line - baseLine
		switch in := body[i].(type) {
		case *ir.Alloc:
			fr.add(FragInstr{Op: OpAlloc, Dst: in.Dst.Name, Name: in.Class.Name,
				Args: varNames(in.Args), Rel: rel, InLoop: in.InLoop})
		case *ir.Copy:
			// b.Ret(v) emits Copy($ret, v) + Return(v) as a pair; fold it
			// back into the single OpRet that replays through b.Ret.
			if i+1 < len(body) {
				if ret, ok := body[i+1].(*ir.Return); ok && ret.Val == in.Src && in.Dst.Name == "$ret" {
					fr.add(FragInstr{Op: OpRet, A: in.Src.Name, Rel: rel})
					i++
					continue
				}
			}
			fr.add(FragInstr{Op: OpCopy, Dst: in.Dst.Name, A: in.Src.Name, Rel: rel})
		case *ir.LoadField:
			fr.add(FragInstr{Op: OpLoadField, Dst: in.Dst.Name, A: in.Obj.Name, Name: in.Field, Rel: rel})
		case *ir.StoreField:
			fr.add(FragInstr{Op: OpStoreField, A: in.Obj.Name, Name: in.Field, B: in.Src.Name, Rel: rel})
		case *ir.LoadIndex:
			fr.add(FragInstr{Op: OpLoadIndex, Dst: in.Dst.Name, A: in.Arr.Name, Rel: rel})
		case *ir.StoreIndex:
			fr.add(FragInstr{Op: OpStoreIndex, A: in.Arr.Name, B: in.Src.Name, Rel: rel})
		case *ir.LoadStatic:
			fr.add(FragInstr{Op: OpLoadStatic, Dst: in.Dst.Name, Name: in.Class.Name, B: in.Field, Rel: rel})
		case *ir.StoreStatic:
			fr.add(FragInstr{Op: OpStoreStatic, Name: in.Class.Name, B: in.Field, A: in.Src.Name, Rel: rel})
		case *ir.FuncAddr:
			fr.add(FragInstr{Op: OpFuncAddr, Dst: in.Dst.Name, Name: in.Target.Name, Rel: rel})
		case *ir.MonitorEnter:
			fr.add(FragInstr{Op: OpMonEnter, A: in.Obj.Name, Rel: rel})
		case *ir.MonitorExit:
			fr.add(FragInstr{Op: OpMonExit, A: in.Obj.Name, Rel: rel})
		case *ir.ChanMake:
			fr.add(FragInstr{Op: OpChanMake, Dst: in.Dst.Name, Cap: in.Cap, Rel: rel})
		case *ir.ChanSend:
			fr.add(FragInstr{Op: OpChanSend, A: in.Ch.Name, B: in.Val.Name, Rel: rel})
		case *ir.ChanRecv:
			fi := FragInstr{Op: OpChanRecv, A: in.Ch.Name, Rel: rel}
			if in.Dst != nil {
				fi.Dst = in.Dst.Name
			}
			fr.add(fi)
		case *ir.ChanClose:
			fr.add(FragInstr{Op: OpChanClose, A: in.Ch.Name, Rel: rel})
		case *ir.Return:
			if in.Val != nil {
				// A bare Return with a value (no preceding $ret copy)
				// cannot come out of the builder; refuse to cache it.
				return nil, fmt.Errorf("unit: unpaired valued return in %s", fn.Name)
			}
			fr.add(FragInstr{Op: OpRet, Rel: rel})
		case *ir.Call:
			fi := FragInstr{Args: varNames(in.Args), Rel: rel, InLoop: in.InLoop}
			if in.Dst != nil {
				fi.Dst = in.Dst.Name
			}
			switch {
			case in.Builtin != "":
				fi.Op, fi.Name = OpBuiltin, in.Builtin
			case in.Method == "$super":
				fi.Op, fi.Name = OpSuper, in.Static.Name
			case in.Static != nil:
				fi.Op, fi.Name = OpCallStatic, in.Static.Name
			case in.Indirect != nil:
				fi.Op, fi.A = OpCallIndirect, in.Indirect.Name
			case in.Recv != nil:
				fi.Op, fi.A, fi.Name = OpCallVirt, in.Recv.Name, in.Method
			default:
				return nil, fmt.Errorf("unit: unclassifiable call in %s", fn.Name)
			}
			fr.add(fi)
		default:
			return nil, fmt.Errorf("unit: unencodable instruction %T in %s", body[i], fn.Name)
		}
	}
	return fr, nil
}

func (f *Frag) add(fi FragInstr) { f.Instrs = append(f.Instrs, fi) }

// DecodeBody replays a fragment into the empty shell fn, rebasing
// positions onto file/baseLine. Class references resolve through prog
// (auto-declaring library classes exactly like the lowerer), function
// references through lookup. On error the shell is left partially
// built; the caller must ResetBody it and re-lower from source.
func DecodeBody(prog *ir.Program, lookup func(string) *ir.Func, fn *ir.Func, file string, baseLine int, fr *Frag) error {
	b := ir.NewB(fn)
	for _, fi := range fr.Instrs {
		b.At(ir.Pos{File: file, Line: baseLine + fi.Rel})
		emit := func() error { return decodeInstr(prog, lookup, b, fi) }
		var err error
		if fi.InLoop {
			b.InLoop(func() { err = emit() })
		} else {
			err = emit()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func decodeInstr(prog *ir.Program, lookup func(string) *ir.Func, b *ir.B, fi FragInstr) error {
	fnRef := func(name string) (*ir.Func, error) {
		if f := lookup(name); f != nil {
			return f, nil
		}
		return nil, fmt.Errorf("unit: fragment references unknown function %s", name)
	}
	classRef := func(name string) (*ir.Class, error) {
		if c := prog.Classes[name]; c != nil {
			return c, nil
		}
		return nil, fmt.Errorf("unit: fragment references unknown class %s", name)
	}
	switch fi.Op {
	case OpAlloc:
		b.New(fi.Dst, prog.Class(fi.Name), fi.Args...)
	case OpCopy:
		b.Copy(fi.Dst, fi.A)
	case OpLoadField:
		b.Load(fi.Dst, fi.A, fi.Name)
	case OpStoreField:
		b.Store(fi.A, fi.Name, fi.B)
	case OpLoadIndex:
		b.LoadIdx(fi.Dst, fi.A)
	case OpStoreIndex:
		b.StoreIdx(fi.A, fi.B)
	case OpLoadStatic:
		c, err := classRef(fi.Name)
		if err != nil {
			return err
		}
		b.LoadStatic(fi.Dst, c, fi.B)
	case OpStoreStatic:
		c, err := classRef(fi.Name)
		if err != nil {
			return err
		}
		b.StoreStatic(c, fi.B, fi.A)
	case OpCallVirt:
		b.Call(fi.Dst, fi.A, fi.Name, fi.Args...)
	case OpCallStatic:
		f, err := fnRef(fi.Name)
		if err != nil {
			return err
		}
		b.CallStatic(fi.Dst, f, fi.Args...)
	case OpSuper:
		f, err := fnRef(fi.Name)
		if err != nil {
			return err
		}
		b.SuperCall(f, fi.Args...)
	case OpCallIndirect:
		b.CallIndirect(fi.Dst, fi.A, fi.Args...)
	case OpFuncAddr:
		f, err := fnRef(fi.Name)
		if err != nil {
			return err
		}
		b.AddrOf(fi.Dst, f)
	case OpMonEnter:
		b.Lock(fi.A)
	case OpMonExit:
		b.Unlock(fi.A)
	case OpRet:
		b.Ret(fi.A)
	case OpChanMake:
		b.ChanMake(fi.Dst, fi.Cap)
	case OpChanSend:
		b.Send(fi.A, fi.B)
	case OpChanRecv:
		b.Recv(fi.Dst, fi.A)
	case OpChanClose:
		b.CloseChan(fi.A)
	case OpBuiltin:
		switch fi.Name {
		case "pthread_create":
			if len(fi.Args) != 2 || fi.Dst == "" {
				return fmt.Errorf("unit: malformed pthread_create fragment")
			}
			b.PthreadCreate(fi.Dst, fi.Args[0], fi.Args[1])
		case "pthread_join":
			if len(fi.Args) != 1 {
				return fmt.Errorf("unit: malformed pthread_join fragment")
			}
			b.PthreadJoin(fi.Args[0])
		case "event_register":
			if len(fi.Args) != 2 {
				return fmt.Errorf("unit: malformed event_register fragment")
			}
			b.EventRegister(fi.Args[0], fi.Args[1])
		default:
			return fmt.Errorf("unit: unknown builtin %q in fragment", fi.Name)
		}
	default:
		return fmt.Errorf("unit: unknown fragment op %d", fi.Op)
	}
	return nil
}

func varNames(vs []*ir.Var) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}
