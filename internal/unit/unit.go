// Package unit splits a parsed minilang program into incremental
// analysis units — one per class shell, method body and free-function
// body — and computes content digests over the canonical printed form
// of each unit plus the digests of the units it depends on. A unit
// whose closure digest is unchanged between two programs lowers to
// byte-identical IR in both, so its cached summary (instruction
// fragment plus fact tables) can be replayed instead of recomputed.
//
// Digests deliberately hash the *canonical printed text*, not raw
// source bytes or absolute positions: reformatting, comment edits and
// line shifts elsewhere in the file leave a unit's digest unchanged.
// Instruction positions are stored relative to the declaration line and
// rebased on replay, so cached fragments reproduce exact source
// positions even after the declaration moves.
package unit

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"o2/internal/ir"
	"o2/internal/lang"
)

// FormatVersion is baked into every digest: bump it whenever the
// canonical unit rendering, the dependency rules or the fragment
// encoding change shape, so stale summaries can never be replayed
// across format revisions.
//
// v2: channel/select constructs (chan/send/recv/close builtins, select
// statements) joined the canonical rendering and the fragment codec.
const FormatVersion = 2

// Kind classifies a unit.
type Kind uint8

const (
	// KindClass is a class shell: header, fields, method signatures.
	KindClass Kind = iota + 1
	// KindMethod is one method body.
	KindMethod
	// KindFunc is one free-function body (including main).
	KindFunc
)

func (k Kind) String() string {
	switch k {
	case KindClass:
		return "class"
	case KindMethod:
		return "method"
	case KindFunc:
		return "func"
	}
	return "?"
}

// Unit is one incremental analysis unit.
type Unit struct {
	// ID is "class:C", "method:C.m" or "func:f".
	ID   string
	Kind Kind
	// File and BaseLine locate the declaration in the current program;
	// they are *not* part of the digest (fragments store positions
	// relative to BaseLine), so a unit survives moving between lines
	// and files.
	File     string
	BaseLine int
	// Class is the declaring class for method units and the class name
	// itself for class units; empty for free functions.
	Class string
	// Name is the simple name (class name, method name, function name).
	Name string
	// ContentDigest hashes the unit's canonical text plus its intra-unit
	// line offsets.
	ContentDigest string
	// Deps are the direct dependency unit IDs, sorted and deduplicated:
	// the units whose content can change what this unit lowers to.
	Deps []string
	// Closure is the transitive dependency closure including the unit
	// itself, sorted; ClosureDigest hashes the (ID, ContentDigest) pairs
	// of every member and is the cache-key ingredient for the unit.
	Closure       []string
	ClosureDigest string

	// Decl is the method/function declaration (nil for class units);
	// ClassDecl the class declaration (nil for method/func units).
	Decl      *lang.FuncDecl
	ClassDecl *lang.ClassDecl
}

// Manifest is the unit decomposition of one program.
type Manifest struct {
	Units map[string]*Unit
	// Order lists unit IDs in declaration order (per file: class shells
	// and their methods, then free functions). Lowering and replay must
	// follow it so that library-class auto-declaration evolves exactly
	// as in whole-program compilation.
	Order []string
	// FullReason is non-empty when per-unit reuse is unsound for this
	// program (a change class the summaries cannot express); the caller
	// must fall back to whole-program compilation.
	FullReason string
}

// ExtractASTs decomposes parsed files into units. An error means the
// program's shape defeats unit identity (e.g. duplicate declarations);
// callers fall back to whole-program compilation, which reproduces the
// legacy behavior or error for such programs.
func ExtractASTs(asts []*lang.File, entries ir.EntryConfig) (*Manifest, error) {
	x := &extractor{
		entries:   entries,
		man:       &Manifest{Units: map[string]*Unit{}},
		classes:   map[string]*lang.ClassDecl{},
		freeFns:   map[string]*lang.FuncDecl{},
		methodsBy: map[string][]string{},
	}
	if err := x.collect(asts); err != nil {
		return nil, err
	}
	x.scanAmbient(asts)
	x.digestContents()
	x.resolveDeps()
	x.closeOver()
	return x.man, nil
}

type extractor struct {
	entries   ir.EntryConfig
	man       *Manifest
	classes   map[string]*lang.ClassDecl
	freeFns   map[string]*lang.FuncDecl
	methodsBy map[string][]string // simple method name -> unit IDs
	ambient   map[string]bool     // `new C` names with no class declaration
}

func (x *extractor) add(u *Unit) error {
	if x.man.Units[u.ID] != nil {
		return fmt.Errorf("unit: duplicate declaration %s", u.ID)
	}
	x.man.Units[u.ID] = u
	x.man.Order = append(x.man.Order, u.ID)
	return nil
}

func (x *extractor) collect(asts []*lang.File) error {
	for _, f := range asts {
		for _, cd := range f.Classes {
			if err := x.add(&Unit{
				ID: "class:" + cd.Name, Kind: KindClass, File: f.Name,
				BaseLine: cd.Line, Class: cd.Name, Name: cd.Name, ClassDecl: cd,
			}); err != nil {
				return err
			}
			x.classes[cd.Name] = cd
			for _, md := range cd.Methods {
				id := "method:" + cd.Name + "." + md.Name
				if err := x.add(&Unit{
					ID: id, Kind: KindMethod, File: f.Name,
					BaseLine: md.Line, Class: cd.Name, Name: md.Name, Decl: md,
				}); err != nil {
					return err
				}
				x.methodsBy[md.Name] = append(x.methodsBy[md.Name], id)
			}
		}
		for _, fd := range f.Funcs {
			if err := x.add(&Unit{
				ID: "func:" + fd.Name, Kind: KindFunc, File: f.Name,
				BaseLine: fd.Line, Name: fd.Name, Decl: fd,
			}); err != nil {
				return err
			}
			x.freeFns[fd.Name] = fd
		}
	}
	return nil
}

// scanAmbient finds the resolution hazard that per-unit keys cannot
// express: `new C` of an undeclared C auto-declares a library class
// mid-lowering, and a *later* unit that uses the same name as a field
// base, call receiver or static class then resolves differently
// depending on lowering order across units. Programs that both allocate
// an undeclared class and reference its name in a resolution-sensitive
// position fall back to whole-program compilation.
func (x *extractor) scanAmbient(asts []*lang.File) {
	x.ambient = map[string]bool{}
	eachBody(asts, func(fd *lang.FuncDecl) {
		walkStmts(fd.Body, func(s lang.Stmt) {
			if a, ok := s.(*lang.AssignStmt); ok {
				if n, ok := a.Rhs.(*lang.NewExpr); ok && x.classes[n.Class] == nil {
					x.ambient[n.Class] = true
				}
			}
		})
	})
	if len(x.ambient) == 0 {
		return
	}
	hazard := ""
	check := func(name, what string) {
		if hazard == "" && x.ambient[name] {
			hazard = fmt.Sprintf("ambient class %s used as %s", name, what)
		}
	}
	eachBody(asts, func(fd *lang.FuncDecl) {
		walkStmts(fd.Body, func(s lang.Stmt) {
			switch st := s.(type) {
			case *lang.AssignStmt:
				if lv, ok := st.Lhs.(lang.FieldRef); ok {
					check(lv.Base, "field base")
				}
				if lv, ok := st.Lhs.(lang.StaticRef); ok {
					check(lv.Class, "static class")
				}
				switch r := st.Rhs.(type) {
				case lang.FieldRef:
					check(r.Base, "field base")
				case lang.StaticRef:
					check(r.Class, "static class")
				case *lang.CallExpr:
					check(r.Recv, "call receiver")
				}
			case *lang.CallStmt:
				check(st.Call.Recv, "call receiver")
			}
		})
	})
	x.man.FullReason = hazard
}

func (x *extractor) digestContents() {
	for _, id := range x.man.Order {
		u := x.man.Units[id]
		var text string
		var lines map[int]int
		switch u.Kind {
		case KindClass:
			text, lines = lang.FormatClassShell(u.ClassDecl)
		case KindMethod:
			text, lines = lang.FormatMethodDecl(u.Decl)
		case KindFunc:
			text, lines = lang.FormatFuncDecl(u.Decl)
		}
		h := sha256.New()
		fmt.Fprintf(h, "o2-unit-v%d|%s|%s|", FormatVersion, u.Kind, u.ID)
		h.Write([]byte(text))
		// Intra-unit line offsets are part of a body unit's content: two
		// bodies with identical text but different statement spacing
		// replay to different source positions. Class shells produce no
		// instructions, so their offsets (and line shifts inside them)
		// are irrelevant.
		if u.Kind != KindClass {
			printed := make([]int, 0, len(lines))
			for ln := range lines {
				printed = append(printed, ln)
			}
			sort.Ints(printed)
			for _, ln := range printed {
				fmt.Fprintf(h, "%d:%d;", ln, lines[ln]-u.BaseLine)
			}
		}
		u.ContentDigest = hex.EncodeToString(h.Sum(nil))
	}
}

// resolveDeps mirrors the lowering's name resolution: a unit depends on
// exactly the units whose content feeds a resolution decision or a
// statically-linked target inside it. Builtin and configured lock/unlock
// names are excluded — they are covered by the config fingerprint in
// the cache key.
func (x *extractor) resolveDeps() {
	for _, id := range x.man.Order {
		u := x.man.Units[id]
		seen := map[string]bool{}
		add := func(dep string) {
			if dep != "" && dep != u.ID && !seen[dep] && x.man.Units[dep] != nil {
				seen[dep] = true
				u.Deps = append(u.Deps, dep)
			}
		}
		switch u.Kind {
		case KindClass:
			if u.ClassDecl.Super != "" {
				add("class:" + u.ClassDecl.Super)
			}
			continue
		case KindMethod:
			add("class:" + u.Class)
		}
		x.bodyDeps(u, add)
		sort.Strings(u.Deps)
	}
}

func (x *extractor) bodyDeps(u *Unit, add func(string)) {
	classDep := func(name string) {
		if x.classes[name] != nil {
			add("class:" + name)
		}
	}
	callDeps := func(c *lang.CallExpr) {
		if c.Method == "$super" {
			// Statically linked to the nearest super constructor.
			add(x.superInit(u.Class))
			return
		}
		if c.Recv == "" {
			switch c.Method {
			case "pthread_create", "pthread_join", "event_register",
				"chan", "send", "recv", "close":
				return // builtins shadow declarations
			}
			if (x.entries.IsLockFunc(c.Method) || x.entries.IsUnlockFunc(c.Method)) && len(c.Args) == 1 {
				return // lowers to a monitor op; covered by config fingerprint
			}
			if x.freeFns[c.Method] != nil {
				add("func:" + c.Method)
			}
			return // indirect call through a variable: resolved globally
		}
		// Virtual dispatch: any same-named method body is a potential
		// target; start methods additionally dispatch to thread entries.
		classDep(c.Recv) // a class-named receiver is a lowering error; keep it keyed
		for _, m := range x.methodsBy[c.Method] {
			add(m)
		}
		if x.entries.IsStart(c.Method) {
			for _, entry := range x.entries.ThreadEntries {
				for _, m := range x.methodsBy[entry] {
					add(m)
				}
			}
		}
	}
	walkStmts(u.Decl.Body, func(s lang.Stmt) {
		switch st := s.(type) {
		case *lang.AssignStmt:
			switch r := st.Rhs.(type) {
			case lang.FieldRef:
				classDep(r.Base)
			case lang.StaticRef:
				classDep(r.Class)
			case *lang.NewExpr:
				classDep(r.Class)
				add(x.classInit(r.Class))
			case *lang.CallExpr:
				callDeps(r)
			case lang.FuncAddrExpr:
				if x.freeFns[r.Name] != nil {
					add("func:" + r.Name)
				}
			}
			switch l := st.Lhs.(type) {
			case lang.FieldRef:
				classDep(l.Base)
			case lang.StaticRef:
				classDep(l.Class)
			}
		case *lang.CallStmt:
			callDeps(st.Call)
		}
	})
}

// classInit resolves the constructor a `new C` allocation binds: the
// nearest "init" walking C's declared super chain. Empty if none.
func (x *extractor) classInit(class string) string {
	for cd := x.classes[class]; cd != nil; cd = x.classes[cd.Super] {
		for _, md := range cd.Methods {
			if md.Name == "init" {
				return "method:" + cd.Name + ".init"
			}
		}
		if cd.Super == "" {
			return ""
		}
	}
	return ""
}

// superInit resolves the target of super(...) inside class's methods.
func (x *extractor) superInit(class string) string {
	cd := x.classes[class]
	if cd == nil {
		return ""
	}
	return x.classInit(cd.Super)
}

// closeOver computes each unit's transitive dependency closure and its
// digest. A unit is reusable iff every (ID, content) pair in its
// closure is unchanged — so an edit anywhere in the closure cascades
// into a different key for every dependent unit.
func (x *extractor) closeOver() {
	for _, id := range x.man.Order {
		u := x.man.Units[id]
		seen := map[string]bool{id: true}
		queue := append([]string(nil), u.Deps...)
		for len(queue) > 0 {
			d := queue[0]
			queue = queue[1:]
			if seen[d] {
				continue
			}
			seen[d] = true
			queue = append(queue, x.man.Units[d].Deps...)
		}
		u.Closure = make([]string, 0, len(seen))
		for d := range seen {
			u.Closure = append(u.Closure, d)
		}
		sort.Strings(u.Closure)
		h := sha256.New()
		fmt.Fprintf(h, "o2-closure-v%d|", FormatVersion)
		for _, d := range u.Closure {
			fmt.Fprintf(h, "%s=%s|", d, x.man.Units[d].ContentDigest)
		}
		u.ClosureDigest = hex.EncodeToString(h.Sum(nil))
	}
}

// ---- AST walking ----

func eachBody(asts []*lang.File, fn func(*lang.FuncDecl)) {
	for _, f := range asts {
		for _, cd := range f.Classes {
			for _, md := range cd.Methods {
				fn(md)
			}
		}
		for _, fd := range f.Funcs {
			fn(fd)
		}
	}
}

// walkStmts visits every statement in body, recursing into blocks.
func walkStmts(body []lang.Stmt, fn func(lang.Stmt)) {
	for _, s := range body {
		fn(s)
		switch st := s.(type) {
		case *lang.SyncStmt:
			walkStmts(st.Body, fn)
		case *lang.IfStmt:
			walkStmts(st.Then, fn)
			walkStmts(st.Else, fn)
		case *lang.WhileStmt:
			walkStmts(st.Body, fn)
		case *lang.SelectStmt:
			for _, arm := range st.Arms {
				walkStmts(arm.Body, fn)
			}
			walkStmts(st.Default, fn)
		}
	}
}

// Digest is a convenience helper hashing arbitrary strings into the
// same hex format the unit digests use.
func Digest(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}
