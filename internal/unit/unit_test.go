package unit

import (
	"strings"
	"testing"

	"o2/internal/ir"
	"o2/internal/lang"
)

func parseOne(t *testing.T, src string) []*lang.File {
	t.Helper()
	f, err := lang.Parse("test.mini", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return []*lang.File{f}
}

func extract(t *testing.T, src string) *Manifest {
	t.Helper()
	man, err := ExtractASTs(parseOne(t, src), ir.DefaultEntryConfig())
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	return man
}

const depSrc = `class T {
	field x;
	run() {
		this.x = g();
	}
}
func g(p) {
	return p;
}
func h(p) {
	p.f = null;
}
main {
	t = new T();
	t.start();
	h(t);
}
`

func TestUnitDecomposition(t *testing.T) {
	man := extract(t, depSrc)
	want := []string{"class:T", "method:T.run", "func:g", "func:h", "func:main"}
	if got := strings.Join(man.Order, " "); got != strings.Join(want, " ") {
		t.Fatalf("unit order = %q, want %q", got, strings.Join(want, " "))
	}
	if man.FullReason != "" {
		t.Fatalf("unexpected fallback: %s", man.FullReason)
	}
	// Direct deps mirror name resolution: run() depends on its class
	// shell and on the free function it calls; main on the class it
	// allocates, the start dispatch targets and the functions it calls.
	if got := strings.Join(man.Units["method:T.run"].Deps, " "); got != "class:T func:g" {
		t.Errorf("T.run deps = %q", got)
	}
	mainDeps := strings.Join(man.Units["func:main"].Deps, " ")
	for _, want := range []string{"class:T", "method:T.run", "func:h"} {
		if !strings.Contains(mainDeps, want) {
			t.Errorf("main deps %q missing %s", mainDeps, want)
		}
	}
	if strings.Contains(mainDeps, "func:g") {
		t.Errorf("main deps %q should not include transitive func:g", mainDeps)
	}
	// ...but the closure digest covers the transitive chain.
	if cl := strings.Join(man.Units["func:main"].Closure, " "); !strings.Contains(cl, "func:g") {
		t.Errorf("main closure %q missing transitive func:g", cl)
	}
}

// TestDigestStableAcrossMoves pins position independence: shifting whole
// declarations down the file (blank lines between decls) and reordering
// them must not change any content or closure digest, because digests
// hash canonical text with intra-unit offsets only.
func TestDigestStableAcrossMoves(t *testing.T) {
	base := extract(t, depSrc)
	shifted := extract(t, "\n\n"+strings.ReplaceAll(depSrc, "}\nfunc", "}\n\n\n\nfunc"))
	reordered := extract(t, `func h(p) {
	p.f = null;
}
func g(p) {
	return p;
}
main {
	t = new T();
	t.start();
	h(t);
}
class T {
	field x;
	run() {
		this.x = g();
	}
}
`)
	for _, tc := range []struct {
		name string
		man  *Manifest
	}{{"shifted", shifted}, {"reordered", reordered}} {
		if len(tc.man.Units) != len(base.Units) {
			t.Fatalf("%s: unit count %d != %d", tc.name, len(tc.man.Units), len(base.Units))
		}
		for id, u := range base.Units {
			v := tc.man.Units[id]
			if v == nil {
				t.Fatalf("%s: unit %s missing", tc.name, id)
			}
			if v.ContentDigest != u.ContentDigest {
				t.Errorf("%s: %s content digest changed", tc.name, id)
			}
			if v.ClosureDigest != u.ClosureDigest {
				t.Errorf("%s: %s closure digest changed", tc.name, id)
			}
		}
	}
}

// TestDigestSensitivity pins the other direction: an intra-body line
// shift changes that unit's digest (positions are content), and a body
// edit cascades through closure digests of its dependents — and only
// its dependents.
func TestDigestSensitivity(t *testing.T) {
	base := extract(t, depSrc)

	// Blank line inside g's body: same canonical text, different
	// relative offsets. Content digest must change.
	spaced := extract(t, strings.Replace(depSrc, "func g(p) {\n\treturn p;", "func g(p) {\n\n\treturn p;", 1))
	if spaced.Units["func:g"].ContentDigest == base.Units["func:g"].ContentDigest {
		t.Error("intra-body line shift did not change func:g content digest")
	}

	// Edit g's body: g, its transitive dependents (T.run via the call,
	// main via T.run) get new closure digests; h is untouched.
	edited := extract(t, strings.Replace(depSrc, "return p;", "p.f = null;\n\treturn p;", 1))
	for _, id := range []string{"func:g", "method:T.run", "func:main"} {
		if edited.Units[id].ClosureDigest == base.Units[id].ClosureDigest {
			t.Errorf("editing func:g did not cascade into %s closure digest", id)
		}
	}
	for _, id := range []string{"func:h", "class:T"} {
		if edited.Units[id].ClosureDigest != base.Units[id].ClosureDigest {
			t.Errorf("editing func:g dirtied unrelated %s", id)
		}
	}
}

// TestClassShellOrderInsensitive: method resolution is by name, so
// reordering methods inside a class must keep the shell digest — and
// with it every dependent closure — unchanged.
func TestClassShellOrderInsensitive(t *testing.T) {
	a := extract(t, `class C {
	field x;
	foo() {
		this.x = null;
	}
	bar() {
		this.x = this;
	}
}
main {
	c = new C();
}
`)
	b := extract(t, `class C {
	field x;
	bar() {
		this.x = this;
	}
	foo() {
		this.x = null;
	}
}
main {
	c = new C();
}
`)
	if a.Units["class:C"].ContentDigest != b.Units["class:C"].ContentDigest {
		t.Error("method reordering changed the class shell digest")
	}
	if a.Units["func:main"].ClosureDigest != b.Units["func:main"].ClosureDigest {
		t.Error("method reordering dirtied main's closure")
	}
}

// TestAmbientHazard: allocating an undeclared (library) class is fine on
// its own, but also using its name in a resolution-sensitive position is
// the change class summaries cannot express — the manifest must demand
// whole-program fallback.
func TestAmbientHazard(t *testing.T) {
	ok := extract(t, "main {\n\tx = new Lib();\n}\n")
	if ok.FullReason != "" {
		t.Errorf("plain ambient allocation should not fall back: %s", ok.FullReason)
	}
	bad := extract(t, "main {\n\tx = new Lib();\n\tLib.f = null;\n}\n")
	if bad.FullReason == "" {
		t.Error("ambient class used as static base must force whole-program fallback")
	}
	if !strings.Contains(bad.FullReason, "Lib") {
		t.Errorf("fallback reason should name the class: %q", bad.FullReason)
	}
}

func TestDuplicateUnitError(t *testing.T) {
	_, err := ExtractASTs(parseOne(t, "func f(p) {\n}\nfunc f(p) {\n}\n"), ir.DefaultEntryConfig())
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate declaration should error, got %v", err)
	}
}

const fragSrc = `class Obj {
	field next;
}
class Node extends Obj {
	static field pool;
	field v;
	init(v) {
		this.v = v;
	}
}
class W {
	field n;
	init(n) {
		this.n = n;
	}
	run() {
		sync (this) {
			x = this.n;
			x.v = this;
		}
		while (0) {
			y = new Node(x);
			Node.pool = y;
		}
		r = helper(x);
		f = &helper;
		g = f(r);
		return g;
	}
}
func helper(p) {
	if (0) {
		return p;
	}
	return null;
}
func pump(c, p) {
	send(c, p);
	v = recv(c);
	select {
	recv(c) {
		v = recv(c);
	}
	send(c, p) {
		recv(c);
	}
	default {
		close(c);
	}
	}
	return v;
}
main {
	n = new Node(null);
	w = new W(n);
	w.start();
	c = chan(2);
	d = chan();
	q = pump(c, n);
	close(d);
	pthread_join(w);
}
`

// TestFragRoundTrip is the codec's ground truth: every body lowered in
// isolation must encode to a fragment that decodes into a fresh shell
// as byte-identical IR — same instructions, same variable tables, same
// source positions — as the directly-lowered program.
func TestFragRoundTrip(t *testing.T) {
	entries := ir.DefaultEntryConfig()
	asts := parseOne(t, fragSrc)
	man, err := ExtractASTs(asts, entries)
	if err != nil {
		t.Fatal(err)
	}
	if man.FullReason != "" {
		t.Fatalf("unexpected fallback: %s", man.FullReason)
	}

	// Reference: lower everything directly.
	direct, err := lang.Declare(asts, entries)
	if err != nil {
		t.Fatal(err)
	}
	lowerAll(t, direct, man)

	// Replayed: lower each body in a scratch shell, encode, decode into
	// the target shell. Declaration order matters (library classes), so
	// walk man.Order like the incremental driver does.
	replayed, err := lang.Declare(asts, entries)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range man.Order {
		u := man.Units[id]
		if u.Kind == KindClass {
			continue
		}
		scratch, err := lang.Declare(asts, entries)
		if err != nil {
			t.Fatal(err)
		}
		lowerUnit(t, scratch, u)
		fr, err := EncodeBody(unitFunc(t, scratch, u), u.BaseLine)
		if err != nil {
			t.Fatalf("%s: encode: %v", id, err)
		}
		fn := unitFunc(t, replayed, u)
		if err := DecodeBody(replayed.Prog(), replayed.FuncByName, fn, u.File, u.BaseLine, fr); err != nil {
			t.Fatalf("%s: decode: %v", id, err)
		}
	}

	want := direct.Prog().String()
	got := replayed.Prog().String()
	if want != got {
		t.Errorf("replayed program differs from directly-lowered:\n--- direct ---\n%s\n--- replayed ---\n%s", want, got)
	}
}

// TestFragRebase: decoding the same fragment at a different BaseLine
// must shift every instruction position by exactly the delta.
func TestFragRebase(t *testing.T) {
	entries := ir.DefaultEntryConfig()
	asts := parseOne(t, "func f(p) {\n\tp.x = null;\n\tq = p.x;\n}\nmain {\n}\n")
	sh, err := lang.Declare(asts, entries)
	if err != nil {
		t.Fatal(err)
	}
	fd := asts[0].Funcs[0]
	if err := sh.LowerFunc("test.mini", fd); err != nil {
		t.Fatal(err)
	}
	fn := sh.FreeFunc("f")
	fr, err := EncodeBody(fn, fd.Line)
	if err != nil {
		t.Fatal(err)
	}
	sh2, err := lang.Declare(asts, entries)
	if err != nil {
		t.Fatal(err)
	}
	fn2 := sh2.FreeFunc("f")
	const delta = 40
	if err := DecodeBody(sh2.Prog(), sh2.FuncByName, fn2, "moved.mini", fd.Line+delta, fr); err != nil {
		t.Fatal(err)
	}
	if len(fn2.Body) != len(fn.Body) {
		t.Fatalf("body length %d != %d", len(fn2.Body), len(fn.Body))
	}
	for i := range fn.Body {
		p1, p2 := fn.Body[i].Pos(), fn2.Body[i].Pos()
		if p2.Line != p1.Line+delta {
			t.Errorf("instr %d: line %d, want %d", i, p2.Line, p1.Line+delta)
		}
		if p2.File != "moved.mini" {
			t.Errorf("instr %d: file %q not rebased", i, p2.File)
		}
	}
}

func lowerAll(t *testing.T, sh *lang.Shell, man *Manifest) {
	t.Helper()
	for _, id := range man.Order {
		u := man.Units[id]
		if u.Kind != KindClass {
			lowerUnit(t, sh, u)
		}
	}
}

func lowerUnit(t *testing.T, sh *lang.Shell, u *Unit) {
	t.Helper()
	var err error
	if u.Kind == KindMethod {
		err = sh.LowerMethod(u.File, u.Class, u.Decl)
	} else {
		err = sh.LowerFunc(u.File, u.Decl)
	}
	if err != nil {
		t.Fatalf("%s: lower: %v", u.ID, err)
	}
}

func unitFunc(t *testing.T, sh *lang.Shell, u *Unit) *ir.Func {
	t.Helper()
	var fn *ir.Func
	if u.Kind == KindMethod {
		fn = sh.Method(u.Class, u.Name)
	} else {
		fn = sh.FreeFunc(u.Name)
	}
	if fn == nil {
		t.Fatalf("%s: shell function missing", u.ID)
	}
	return fn
}
