package osa_test

import (
	"testing"

	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/osa"
	"o2/internal/pta"
)

func analyze(t *testing.T, src string) (*pta.Analysis, *osa.Result) {
	t.Helper()
	prog, err := lang.Compile("t.mini", src, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := pta.New(prog, pta.Config{Policy: pta.Policy{Kind: pta.KOrigin, K: 1}, Entries: ir.DefaultEntryConfig()})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	return a, osa.Analyze(a)
}

func sharedFields(r *osa.Result) map[string]bool {
	out := map[string]bool{}
	for _, k := range r.Shared {
		if k.Static != "" {
			out[k.Static] = true
		} else {
			out[k.Field] = true
		}
	}
	return out
}

func TestSharedVsLocal(t *testing.T) {
	_, r := analyze(t, `
class S { field shared_rw; field shared_ro; field local; }
class W {
  field s;
  W(s) { this.s = s; }
  run() {
    x = this.s;
    x.shared_rw = this;      // written by both workers: shared
    v = x.shared_ro;         // only read by workers: written by main only
    d = new Data();
    d.local = x;             // per-origin object: local
  }
}
class Data { field local; }
main {
  s = new S();
  s.shared_ro = s;
  w1 = new W(s);
  w2 = new W(s);
  w1.start();
  w2.start();
}
`)
	sf := sharedFields(r)
	if !sf["shared_rw"] {
		t.Errorf("shared_rw must be origin-shared")
	}
	if !sf["shared_ro"] {
		t.Errorf("shared_ro is written by main and read by workers: shared")
	}
	if sf["local"] {
		t.Errorf("per-origin Data.local must not be shared")
	}
}

func TestReadOnlyNotShared(t *testing.T) {
	_, r := analyze(t, `
class S { field cfg; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; v = x.cfg; }
}
main {
  s = new S();
  w1 = new W(s);
  w2 = new W(s);
  w1.start();
  w2.start();
}
`)
	if sharedFields(r)["cfg"] {
		t.Errorf("a field nobody writes is not shared")
	}
}

func TestStaticSingleOriginNotShared(t *testing.T) {
	// The paper's precision point over escape analysis: a static used by
	// one origin only stays local.
	_, r := analyze(t, `
class G { static field onlyMain; static field crossed; }
class W {
  run() { x = G.crossed; }
}
main {
  a = new Obj();
  G.onlyMain = a;
  b = G.onlyMain;
  G.crossed = a;
  w = new W();
  w.start();
}
`)
	sf := sharedFields(r)
	if sf["G.onlyMain"] {
		t.Errorf("static used by main only must not be shared")
	}
	if !sf["G.crossed"] {
		t.Errorf("static written by main and read by a thread is shared")
	}
}

func TestArraySharing(t *testing.T) {
	_, r := analyze(t, `
class W {
  field a;
  W(a) { this.a = a; }
  run() { x = this.a; x[0] = this; }
}
main {
  arr = new Arr();
  w1 = new W(arr);
  w2 = new W(arr);
  w1.start();
  w2.start();
}
`)
	found := false
	for _, k := range r.Shared {
		if k.Field == ir.ArrayField {
			found = true
		}
	}
	if !found {
		t.Errorf("array written by two origins must be shared via its * field")
	}
}

func TestReplicatedOriginSelfSharing(t *testing.T) {
	// Under a non-origin policy, a loop-spawned origin keeps the
	// replication flag, so its lone write is self-shared.
	prog, err := lang.Compile("t.mini", `
class S { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; x.v = this; }
}
main {
  s = new S();
  while (i) {
    w = new W(s);
    w.start();
  }
}
`, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := pta.New(prog, pta.Config{Policy: pta.Policy{Kind: pta.Insensitive}, Entries: ir.DefaultEntryConfig()})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	r := osa.Analyze(a)
	if !sharedFields(r)["v"] {
		t.Errorf("replicated origin's write must be self-shared")
	}
}

func TestOriginsOfAndCounts(t *testing.T) {
	_, r := analyze(t, `
class S { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; x.v = this; }
}
main {
  s = new S();
  w1 = new W(s);
  w2 = new W(s);
  w1.start();
  w2.start();
}
`)
	var key osa.Key
	for _, k := range r.Shared {
		if k.Field == "v" {
			key = k
		}
	}
	origins := r.OriginsOf(key)
	if len(origins) != 2 {
		t.Fatalf("v shared by %d origins, want 2", len(origins))
	}
	if !r.IsShared(key) {
		t.Errorf("IsShared inconsistent with Shared list")
	}
	if r.SharedAccesses == 0 || r.SharedObjects == 0 || r.Visited == 0 {
		t.Errorf("counters not populated: %+v", r)
	}
}

func TestConstructorRunsInParentOrigin(t *testing.T) {
	// The constructor executes in the allocating origin even though OPA
	// analyzes it under the new origin's context: a ctor-write plus a
	// handler-read is main-vs-event sharing.
	a, r := analyze(t, `
class H {
  field cfg;
  H(c) { this.cfg = c; }
  handleEvent(ev) { x = this.cfg; }
}
main {
  c = new Cfg();
  h = new H(c);
  ev = new Ev();
  h.handleEvent(ev);
}
`)
	foundMainWrite := false
	for _, k := range r.Shared {
		if k.Field == "cfg" {
			for _, o := range r.OriginsOf(k) {
				if a.Origins.Get(o).Kind == pta.KindMain {
					foundMainWrite = true
				}
			}
		}
	}
	if !foundMainWrite {
		t.Errorf("constructor write should be attributed to the main origin")
	}
}
