// Package osa implements the paper's origin-sharing analysis (Algorithm 1,
// §3.3): a linear traversal of the reachable program that computes, for
// every abstract heap location ⟨object, field⟩ (and every static field),
// the set of origins that read it and the set that write it. A location is
// origin-shared when at least two origins access it with at least one
// write, or when a replicated origin (two or more concurrent instances)
// writes it.
package osa

import (
	"context"
	"fmt"
	"sort"

	"o2/internal/ir"
	"o2/internal/obs"
	"o2/internal/pta"
)

// Key identifies an abstract memory location: either ⟨Obj⟩.Field
// (Static == "") or a static field signature.
type Key struct {
	Obj    pta.ObjID
	Field  string
	Static string
}

func (k Key) String() string {
	if k.Static != "" {
		return k.Static
	}
	return fmt.Sprintf("o%d.%s", k.Obj, k.Field)
}

// Access records one access statement discovered during the traversal.
type Access struct {
	Key    Key
	Origin pta.OriginID
	Write  bool
	Instr  ir.Instr
	Fn     *ir.Func
}

// Result is the output of the analysis.
type Result struct {
	A *pta.Analysis
	// Readers and Writers map each location to the set of origins reading
	// or writing it (bitset over OriginID).
	Readers map[Key]*pta.Bits
	Writers map[Key]*pta.Bits
	// Shared lists the origin-shared locations in deterministic order.
	Shared    []Key
	sharedSet map[Key]bool
	// Accesses are all recorded access statements (per contexted function
	// per origin, deduplicated by memoization).
	Accesses []Access
	// SharedAccesses counts access statements on shared locations (the
	// #S-access column of Table 7).
	SharedAccesses int
	// SharedObjects counts distinct abstract objects with at least one
	// shared field (the #S-obj column of Table 9).
	SharedObjects int
	// Visited counts visited ⟨function, context, origin⟩ triples.
	Visited int
}

// IsShared reports whether the location is origin-shared.
func (r *Result) IsShared(k Key) bool { return r.sharedSet[k] }

// OriginsOf returns the sorted origins accessing the location.
func (r *Result) OriginsOf(k Key) []pta.OriginID {
	set := &pta.Bits{}
	if b := r.Readers[k]; b != nil {
		set.UnionWith(b)
	}
	if b := r.Writers[k]; b != nil {
		set.UnionWith(b)
	}
	out := make([]pta.OriginID, 0, set.Len())
	set.ForEach(func(o uint32) { out = append(out, pta.OriginID(o)) })
	return out
}

type visitKey struct {
	fn     pta.FnCtxID
	origin pta.OriginID
}

// Analyze runs the origin-sharing analysis over a solved pointer analysis.
func Analyze(a *pta.Analysis) *Result { return AnalyzeWith(a, nil) }

// AnalyzeWith is Analyze with an observability registry: the traversal
// runs under an "osa" span and the sharing sizes are published as gauges.
func AnalyzeWith(a *pta.Analysis, reg *obs.Registry) *Result {
	r, _ := AnalyzeCtx(context.Background(), a, reg)
	return r
}

// AnalyzeCtx is AnalyzeWith under a context: the traversal polls the
// context every few hundred visited functions and aborts promptly when it
// ends, returning the partial result and pta.ErrCanceled (or pta.ErrBudget
// when the context deadline expired).
func AnalyzeCtx(ctx context.Context, a *pta.Analysis, reg *obs.Registry) (*Result, error) {
	sp := reg.StartSpan("osa")
	defer sp.End()
	r := &Result{
		A:         a,
		Readers:   map[Key]*pta.Bits{},
		Writers:   map[Key]*pta.Bits{},
		sharedSet: map[Key]bool{},
	}
	latch, stopWatch := pta.WatchCancel(ctx)
	defer stopWatch()
	v := &visitor{a: a, r: r, seen: map[visitKey]bool{}, ctx: ctx, latch: latch}
	v.visit(a.MainNode(), pta.MainOrigin)
	if v.err != nil {
		return r, v.err
	}
	r.finish()
	if reg != nil {
		locs := map[Key]bool{}
		for k := range r.Readers {
			locs[k] = true
		}
		for k := range r.Writers {
			locs[k] = true
		}
		reg.SetGauge("osa.locations", int64(len(locs)))
		reg.SetGauge("osa.shared_locations", int64(len(r.Shared)))
		reg.SetGauge("osa.shared_objects", int64(r.SharedObjects))
		reg.SetGauge("osa.shared_accesses", int64(r.SharedAccesses))
		reg.SetGauge("osa.accesses", int64(len(r.Accesses)))
		reg.SetGauge("osa.visited", int64(r.Visited))
	}
	return r, nil
}

type visitor struct {
	a     *pta.Analysis
	r     *Result
	seen  map[visitKey]bool
	ctx   context.Context
	latch *pta.Latch // trips when ctx ends; nil when not cancellable
	tick  int
	err   error
}

func (v *visitor) visit(fn pta.FnCtxID, origin pta.OriginID) {
	if v.err != nil {
		return
	}
	v.tick++
	if v.tick&255 == 0 && v.latch.Tripped() {
		v.err = pta.CtxErr(v.ctx.Err())
		return
	}
	k := visitKey{fn, origin}
	if v.seen[k] {
		return
	}
	v.seen[k] = true
	v.r.Visited++
	fc := v.a.CG.Get(fn)
	for idx, in := range fc.Fn.Body {
		switch in := in.(type) {
		case *ir.LoadField:
			v.access(fc, origin, in, in.Obj, in.Field, false)
		case *ir.StoreField:
			v.access(fc, origin, in, in.Obj, in.Field, true)
		case *ir.LoadIndex:
			v.access(fc, origin, in, in.Arr, ir.ArrayField, false)
		case *ir.StoreIndex:
			v.access(fc, origin, in, in.Arr, ir.ArrayField, true)
		case *ir.LoadStatic:
			v.static(fc, origin, in, in.Class.Name+"."+in.Field, false)
		case *ir.StoreStatic:
			v.static(fc, origin, in, in.Class.Name+"."+in.Field, true)
		case *ir.Call:
			for _, e := range v.a.CG.EdgesAt(fn, idx) {
				switch e.Kind {
				case pta.EdgeCall, pta.EdgeInit:
					// Constructors of origin allocations execute in the
					// allocating (parent) origin, even though OPA analyzes
					// their pointers under the new origin's context.
					v.visit(e.Callee, origin)
				case pta.EdgeSpawn:
					v.visit(e.Callee, e.Origin)
				}
			}
		case *ir.Alloc:
			for _, e := range v.a.CG.EdgesAt(fn, idx) {
				if e.Kind == pta.EdgeCall || e.Kind == pta.EdgeInit {
					v.visit(e.Callee, origin)
				}
			}
		}
	}
}

func (v *visitor) access(fc pta.FnCtx, origin pta.OriginID, in ir.Instr, base *ir.Var, field string, write bool) {
	pts := v.a.PointsTo(base, fc.Ctx)
	pts.ForEach(func(o uint32) {
		key := Key{Obj: pta.ObjID(o), Field: field}
		v.record(key, origin, write, in, fc.Fn)
	})
}

func (v *visitor) static(fc pta.FnCtx, origin pta.OriginID, in ir.Instr, sig string, write bool) {
	v.record(Key{Static: sig}, origin, write, in, fc.Fn)
}

func (v *visitor) record(key Key, origin pta.OriginID, write bool, in ir.Instr, fn *ir.Func) {
	m := v.r.Readers
	if write {
		m = v.r.Writers
	}
	b := m[key]
	if b == nil {
		b = &pta.Bits{}
		m[key] = b
	}
	b.Add(uint32(origin))
	v.r.Accesses = append(v.r.Accesses, Access{Key: key, Origin: origin, Write: write, Instr: in, Fn: fn})
}

func (r *Result) finish() {
	keys := map[Key]bool{}
	for k := range r.Readers {
		keys[k] = true
	}
	for k := range r.Writers {
		keys[k] = true
	}
	sharedObjs := map[pta.ObjID]bool{}
	for k := range keys {
		w := r.Writers[k]
		if w == nil || w.IsEmpty() {
			continue
		}
		all := &pta.Bits{}
		if rd := r.Readers[k]; rd != nil {
			all.UnionWith(rd)
		}
		all.UnionWith(w)
		shared := all.Len() >= 2
		if !shared {
			// A replicated origin has concurrent instances: a write from it
			// is shared with its sibling instance.
			w.ForEach(func(o uint32) {
				if r.A.Origins.Get(pta.OriginID(o)).Replicated {
					shared = true
				}
			})
		}
		if shared {
			r.sharedSet[k] = true
			r.Shared = append(r.Shared, k)
			if k.Static == "" {
				sharedObjs[k.Obj] = true
			}
		}
	}
	sort.Slice(r.Shared, func(i, j int) bool {
		a, b := r.Shared[i], r.Shared[j]
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		if a.Field != b.Field {
			return a.Field < b.Field
		}
		return a.Static < b.Static
	})
	r.SharedObjects = len(sharedObjs)
	// Count distinct access statements touching a shared location (one
	// statement may be visited under several origins or contexts).
	sharedInstrs := map[ir.Instr]bool{}
	for _, acc := range r.Accesses {
		if r.sharedSet[acc.Key] {
			sharedInstrs[acc.Instr] = true
		}
	}
	r.SharedAccesses = len(sharedInstrs)
}
