package workload

import (
	"testing"
	"time"

	"o2/internal/ir"
	"o2/internal/osa"
	"o2/internal/pta"
	"o2/internal/race"
	"o2/internal/shb"
)

// TestCalibration prints per-policy cost/precision for a few presets when
// run with -v. It asserts only the coarse shape the paper's tables depend
// on: origin analysis stays within a small factor of 0-ctx while deeper
// k-CFA/k-obj cost strictly more, and O2 reports fewer races than 0-ctx.
func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow")
	}
	entries := ir.DefaultEntryConfig()
	policies := []pta.Policy{
		{Kind: pta.Insensitive},
		{Kind: pta.KOrigin, K: 1},
		{Kind: pta.KCFA, K: 1},
		{Kind: pta.KCFA, K: 2},
		{Kind: pta.KObj, K: 1},
		{Kind: pta.KObj, K: 2},
	}
	for _, preset := range []string{"avrora", "tomcat", "zookeeper", "telegram", "redis"} {
		p, ok := ByName(preset)
		if !ok {
			t.Fatalf("preset %s missing", preset)
		}
		prog := Build(p, entries)
		t.Logf("%s: %d instrs, %d allocs, %d calls", p.Name, prog.NumInstrs, prog.NumAllocSites, prog.NumCallSites)
		races := map[string]int{}
		timedOut := map[string]bool{}
		for _, pol := range policies {
			a := pta.New(prog, pta.Config{Policy: pol, Entries: entries, StepBudget: 50_000_000})
			t0 := time.Now()
			err := a.Solve()
			dt := time.Since(t0)
			st := a.Stats()
			if err != nil {
				t.Logf("  %-10s TIMEOUT after %v (%d steps, %d ptrs, %d objs)", pol.Name(), dt, st.Steps, st.Pointers, st.Objects)
				continue
			}
			sh := osa.Analyze(a)
			g := shb.Build(a, shb.Config{})
			opts := race.O2Options()
			opts.PairBudget = 5_000_000
			rep := race.Detect(a, sh, g, opts)
			races[pol.Name()] = len(rep.Races)
			timedOut[pol.Name()] = rep.TimedOut
			t.Logf("  %-10s %8v steps=%-10d ptrs=%-7d objs=%-6d edges=%-8d shared=%-5d races=%-6d pairs=%-9d to=%v detect=%v",
				pol.Name(), dt, st.Steps, st.Pointers, st.Objects, st.Edges, len(sh.Shared), len(rep.Races), rep.PairsChecked, rep.TimedOut, rep.Elapsed)
		}
		if r0, rO := races["0-ctx"], races["1-origin"]; r0 > 0 && rO >= r0 {
			// Only meaningful when the 0-ctx run completed (a timed-out
			// count is a lower bound).
			if !timedOut["0-ctx"] {
				t.Errorf("%s: origins should reduce races vs 0-ctx: %d vs %d", p.Name, rO, r0)
			}
		}
	}
}
