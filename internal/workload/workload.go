// Package workload generates deterministic synthetic minilang/IR programs
// whose structure mirrors the benchmark corpus of the paper's evaluation
// (§5): Dacapo-style multithreaded JVM applications, event-heavy Android
// apps, thread+event distributed systems, and C-style servers.
//
// Each generated program combines the code patterns that drive the
// paper's performance and precision comparisons:
//
//   - per-origin local allocations at graded call-chain depths, so k-CFA
//     distinguishes only those shallower than k while origins always do
//     (the Figure 2 pattern);
//   - constructor-allocated state behind a shared superclass constructor
//     (the Figure 3 pattern);
//   - a call-site "dispatcher mesh" of utility functions whose context
//     count grows as fanout^k under k-CFA — the source of 2-CFA blowups;
//   - factory/product chains whose receiver-object contexts grow as
//     sites^k under k-obj — the source of 1-obj/2-obj blowups;
//   - allocations inside methods of a shared singleton, which no
//     receiver-object context can separate but origins can;
//   - genuinely shared objects with a configurable fraction of locked
//     accesses (real races), join-ordered epilogues, static fields,
//     arrays, wrapper-function spawns, loop spawns and nested spawns.
//
// Programs are built directly as IR for speed; a fixed seed makes every
// preset reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"o2/internal/ir"
)

// Preset parameterizes one generated program.
type Preset struct {
	Name string
	Seed int64

	// Origins.
	Workers     int  // thread origin classes
	Events      int  // event-handler origin classes
	NestedSpawn bool // workers spawn sub-workers (k-origin nesting)
	WrapperFrac int  // every n-th worker is spawned through a wrapper function (0 = none)
	LoopFrac    int  // every n-th worker is spawned in a loop (0 = none)
	EventLoop   bool // events dispatched in a loop (replicated instances)

	// Shared state.
	SharedObjs   int     // shared data objects handed to every origin
	SharedFields int     // fields per shared object
	LockFrac     float64 // fraction of shared writes under a lock
	JoinFrac     float64 // fraction of workers joined before main's epilogue
	Statics      int     // static fields on the Stats class
	Arrays       int     // shared array objects

	// Local-allocation ladder: LocalDepths[d] = number of per-origin local
	// allocations reached through a call chain of depth d in shared code.
	// k-CFA separates depth ≤ k; origins separate all of them.
	LocalDepths []int

	// SingletonLocals counts per-origin allocations made inside methods of
	// a shared singleton helper (receiver contexts cannot separate these).
	SingletonLocals int

	// Dispatcher mesh (k-CFA cost): UtilDepth levels × UtilWidth functions,
	// each calling UtilFanout functions of the next level.
	UtilDepth, UtilWidth, UtilFanout int

	// Factory chain (k-obj cost): FactorySites allocation sites per level
	// across FactoryDepth levels of product classes.
	FactoryDepth, FactorySites int

	// Reps repeats access blocks inside run() bodies to scale statement
	// counts.
	Reps int

	// Synchronization-extension patterns (volatile fields, condition
	// variables, lock-order inversions) exercising the deadlock and
	// over-synchronization analyses and the wait/notify HB rules.
	VolatileFields int // volatile fields on Shared, written by every origin (never races)
	CondPairs      int // producer/consumer thread pairs ordered by notify→wait
	LockInversions int // worker pairs acquiring two locks in opposite order

	// Go-style message passing: ChanPairs producer/consumer thread pairs
	// hand a payload over an unbuffered channel (send→recv HB, never a
	// race); WgWorkers threads each write a private box before Done() and
	// main reads every box after Wait() (Done→Wait barrier, never a race).
	ChanPairs int
	WgWorkers int
}

// KLOC estimates the source size the preset stands in for (display only).
func (p Preset) KLOC() float64 {
	return float64(p.approxInstrs()) / 45.0
}

func (p Preset) approxInstrs() int {
	n := 200 + p.Workers*60 + p.Events*40 + p.UtilDepth*p.UtilWidth*12 +
		p.FactoryDepth*p.FactorySites*10 + p.SharedObjs*p.SharedFields*4
	return n * max(1, p.Reps)
}

// Build generates the preset's program, finalized against entries.
func Build(p Preset, entries ir.EntryConfig) *ir.Program {
	prog := BuildRaw(p)
	if err := prog.Finalize(entries); err != nil {
		panic("workload: " + err.Error()) // generator bug: always has main
	}
	return prog
}

// BuildRaw generates the preset's program without finalizing it, for
// callers that rewrite the IR before analysis (the metamorphic suite
// permutes declarations and spawn blocks to assert report invariance).
// The result must be finalized before use; Build is BuildRaw + Finalize.
func BuildRaw(p Preset) *ir.Program {
	g := &gen{
		p:    p,
		rng:  rand.New(rand.NewSource(p.Seed)),
		prog: ir.NewProgram(),
		file: p.Name + ".gen",
		line: 1,
	}
	g.build()
	return g.prog
}

type gen struct {
	p    Preset
	rng  *rand.Rand
	prog *ir.Program
	file string
	line int

	data      *ir.Class // payload class
	shared    *ir.Class
	stats     *ir.Class // static fields holder
	singleton *ir.Class // shared helper with per-origin allocations
	base      *ir.Class // worker superclass (Figure 3 pattern)

	utils     [][]*ir.Func // [depth][width]
	factories []*ir.Class  // product chain classes
}

func (g *gen) pos() ir.Pos {
	g.line++
	return ir.Pos{File: g.file, Line: g.line}
}

func (g *gen) nb(f *ir.Func) *ir.B { return ir.NewB(f).At(g.pos()) }

func (g *gen) build() {
	p := g.p
	g.data = g.prog.Class("Data")
	g.data.Fields = []string{"v", "w"}
	g.shared = g.prog.Class("Shared")
	for i := 0; i < max(1, p.SharedFields); i++ {
		g.shared.Fields = append(g.shared.Fields, fmt.Sprintf("f%d", i))
	}
	g.stats = g.prog.Class("Stats")
	for i := 0; i < p.Statics; i++ {
		g.prog.Statics = append(g.prog.Statics, fmt.Sprintf("Stats.s%d", i))
	}
	g.prog.Class("LockObj")
	g.buildSingleton()
	g.buildLadderMethods()
	g.buildUtils()
	g.buildFactories()
	g.buildLocalChain()
	g.buildWorkerBase()
	g.buildWorkVariants()

	for i := 0; i < p.VolatileFields; i++ {
		vf := fmt.Sprintf("vf%d", i)
		g.shared.Fields = append(g.shared.Fields, vf)
		g.shared.Volatiles[vf] = true
	}
	g.buildSyncExtras()

	workers := g.buildWorkers()
	events := g.buildEvents()
	g.buildMain(workers, events)
}

// buildSyncExtras creates the condition-variable producer/consumer classes
// and the lock-inversion worker pairs; buildMain spawns them.
func (g *gen) buildSyncExtras() {
	p := g.p
	if p.CondPairs > 0 {
		box := g.prog.Class("CondBox")
		box.Fields = []string{"payload"}
		prod := g.prog.Class("CondProducer")
		prod.Fields = []string{"box", "cond"}
		pi := g.prog.NewFunc(prod, "init", "b", "c")
		pb := g.nb(pi)
		pb.Store("this", "box", "b")
		pb.Store("this", "cond", "c")
		pr := g.prog.NewFunc(prod, "run")
		prb := g.nb(pr)
		prb.Load("x", "this", "box")
		prb.Store("x", "payload", "this") // before notify: ordered
		prb.Load("c", "this", "cond")
		prb.Call("", "c", "notify")

		cons := g.prog.Class("CondConsumer")
		cons.Fields = []string{"box", "cond"}
		ci := g.prog.NewFunc(cons, "init", "b", "c")
		cb := g.nb(ci)
		cb.Store("this", "box", "b")
		cb.Store("this", "cond", "c")
		cr := g.prog.NewFunc(cons, "run")
		crb := g.nb(cr)
		crb.Load("c", "this", "cond")
		crb.Call("", "c", "wait")
		crb.Load("x", "this", "box")
		crb.Load("r", "x", "payload") // after wait: no race
	}
	if p.ChanPairs > 0 {
		box := g.prog.Class("ChanBox")
		box.Fields = []string{"payload"}
		prod := g.prog.Class("ChanProducer")
		prod.Fields = []string{"box", "ch"}
		pi := g.prog.NewFunc(prod, "init", "b", "c")
		pb := g.nb(pi)
		pb.Store("this", "box", "b")
		pb.Store("this", "ch", "c")
		pr := g.prog.NewFunc(prod, "run")
		prb := g.nb(pr)
		prb.Load("x", "this", "box")
		prb.Store("x", "payload", "this") // before send: ordered
		prb.Load("c", "this", "ch")
		prb.Send("c", "x")

		cons := g.prog.Class("ChanConsumer")
		cons.Fields = []string{"box", "ch"}
		ci := g.prog.NewFunc(cons, "init", "b", "c")
		cb := g.nb(ci)
		cb.Store("this", "box", "b")
		cb.Store("this", "ch", "c")
		cr := g.prog.NewFunc(cons, "run")
		crb := g.nb(cr)
		crb.Load("c", "this", "ch")
		crb.Recv("r", "c")
		crb.Load("x", "this", "box")
		crb.Load("q", "x", "payload") // after recv: no race
	}
	if p.WgWorkers > 0 {
		g.prog.Class("WaitGroup") // no methods: calls classify as wg ops
		wbox := g.prog.Class("WgBox")
		wbox.Fields = []string{"wv"}
		ww := g.prog.Class("WgWorker")
		ww.Fields = []string{"box", "wg"}
		wi := g.prog.NewFunc(ww, "init", "b", "w")
		wb := g.nb(wi)
		wb.Store("this", "box", "b")
		wb.Store("this", "wg", "w")
		wr := g.prog.NewFunc(ww, "run")
		wrb := g.nb(wr)
		wrb.Load("x", "this", "box")
		wrb.Store("x", "wv", "this") // private box: workers never collide
		wrb.Load("w", "this", "wg")
		wrb.Call("", "w", "Done")
	}
	if p.LockInversions > 0 {
		g.prog.Class("InvData").Fields = []string{"guarded"}
		for _, name := range []string{"InvertA", "InvertB"} {
			cls := g.prog.Class(name)
			cls.Fields = []string{"l1", "l2", "sh"}
			ii := g.prog.NewFunc(cls, "init", "a", "b", "s")
			ib := g.nb(ii)
			ib.Store("this", "l1", "a")
			ib.Store("this", "l2", "b")
			ib.Store("this", "sh", "s")
			run := g.prog.NewFunc(cls, "run")
			rb := g.nb(run)
			rb.Load("a", "this", "l1")
			rb.Load("b", "this", "l2")
			rb.Load("x", "this", "sh")
			rb.Lock("a")
			rb.Lock("b")
			rb.Store("x", "guarded", "this")
			rb.Unlock("b")
			rb.Unlock("a")
		}
	}
}

// buildSingleton creates the shared helper whose methods allocate
// per-origin data: receiver-object sensitivity cannot separate these
// allocations (one receiver), origins can.
func (g *gen) buildSingleton() {
	g.singleton = g.prog.Class("Helper")
	g.singleton.Fields = []string{"cache"}
	mk := g.prog.NewFunc(g.singleton, "mk")
	b := g.nb(mk)
	b.New("d", g.data)
	b.Ret("d")
	for i := 0; i < g.p.SingletonLocals; i++ {
		f := g.prog.NewFunc(g.singleton, fmt.Sprintf("mk%d", i))
		b := g.nb(f)
		b.Call("d", "this", "mk")
		b.Store("d", "v", "this") // write: conflation ⇒ false shared write
		b.Ret("d")
	}
}

// buildUtils creates the dispatcher mesh. Each util allocates a Data,
// writes it, and accumulates its callees' results into that Data's
// fields. Under k-CFA the contexts of level d multiply by fanout per
// level, and because results flow back up, the points-to sets of each
// context carry the whole call subtree below it — the multiplicative cost
// that makes 2-CFA blow up in Tables 5 and 6. The allocation is separated
// per caller path only when the path fits the k window (precision
// ladder); origins separate it always.
func (g *gen) buildUtils() {
	p := g.p
	g.utils = make([][]*ir.Func, p.UtilDepth)
	for d := p.UtilDepth - 1; d >= 0; d-- {
		g.utils[d] = make([]*ir.Func, p.UtilWidth)
		for w := 0; w < p.UtilWidth; w++ {
			f := g.prog.NewFunc(nil, fmt.Sprintf("util_%d_%d", d, w), "a")
			g.utils[d][w] = f
			b := g.nb(f)
			b.New("d", g.data)
			b.Store("d", "v", "a")
			if d+1 < p.UtilDepth {
				for k := 0; k < p.UtilFanout; k++ {
					callee := g.utils[d+1][(w*7+k*3+1)%p.UtilWidth]
					r := fmt.Sprintf("r%d", k)
					b.At(g.pos()).CallStatic(r, callee, "a")
					b.Store("d", "w", r)
				}
			}
			b.Ret("d")
		}
	}
}

// buildFactories creates the product chain. Product constructors allocate
// the next level at several sites, so k-obj receiver chains multiply by
// FactorySites per level.
func (g *gen) buildFactories() {
	p := g.p
	if p.FactoryDepth == 0 {
		return
	}
	// All make() invocations go through one helper, so k-CFA sees a single
	// call site (cheap) while k-obj still splits on the receiver chain
	// (expensive) — factories drive the k-obj columns independently of the
	// mesh that drives k-CFA.
	callmake := g.prog.NewFunc(nil, "callmake", "q")
	cb := g.nb(callmake)
	cb.Call("", "q", "make")
	g.factories = make([]*ir.Class, p.FactoryDepth)
	for d := p.FactoryDepth - 1; d >= 0; d-- {
		cls := g.prog.Class(fmt.Sprintf("Product%d", d))
		cls.Fields = []string{"part", "tag"}
		g.factories[d] = cls
		mk := g.prog.NewFunc(cls, "make")
		b := g.nb(mk)
		b.New("t", g.data)
		b.Store("this", "tag", "t")
		if d+1 < p.FactoryDepth {
			next := g.factories[d+1]
			prev := ""
			for s := 0; s < p.FactorySites; s++ {
				v := fmt.Sprintf("q%d", s)
				b.At(g.pos()).New(v, next)
				b.Store("this", "part", v)
				b.CallStatic("", g.prog.LookupFunc("callmake"), v)
				// Pull the sub-product's tag up and cross-link siblings:
				// each receiver context carries its subtree, multiplying
				// k-obj work (containers-of-containers, the classic k-obj
				// cost in Java code).
				b.Load("st", v, "tag")
				b.Store("t", "w", "st")
				if prev != "" {
					b.Store(prev, "part", v)
					b.Load("pp", v, "part")
					b.Store("st", "w", "pp")
				}
				prev = v
			}
		}
		use := g.prog.NewFunc(cls, "use")
		ub := g.nb(use)
		ub.Load("t", "this", "tag")
		ub.Store("t", "w", "this")
	}
}

// buildLocalChain creates shared free functions local_1 … local_D where
// local_d returns a Data allocated after d further calls; the allocation
// at depth d is separated by k-CFA only when k ≥ d.
func (g *gen) buildLocalChain() {
	depths := len(g.p.LocalDepths)
	var next *ir.Func
	for d := depths; d >= 1; d-- {
		f := g.prog.NewFunc(nil, fmt.Sprintf("local_%d", d), "a")
		b := g.nb(f)
		if d == depths || next == nil {
			b.New("d", g.data)
			b.Ret("d")
		} else {
			b.CallStatic("d", next, "a")
			b.Ret("d")
		}
		next = f
	}
}

// localEntry returns the chain function whose allocation sits at depth d
// (1-based). Chain local_1 → local_2 → … → local_D allocates in local_D,
// so an allocation "at depth d" is reached by calling local_{D-d+1}.
func (g *gen) localEntry(d int) *ir.Func {
	depths := len(g.p.LocalDepths)
	idx := depths - d + 1
	if idx < 1 {
		idx = 1
	}
	return g.prog.LookupFunc(fmt.Sprintf("local_%d", idx))
}

// buildWorkerBase creates the worker superclass whose constructor
// allocates per-worker state (the Figure 3 pattern).
func (g *gen) buildWorkerBase() {
	g.base = g.prog.Class("WorkerBase")
	g.base.Fields = []string{"buf", "shared", "lock", "helper"}
	if g.p.Arrays > 0 {
		g.base.Fields = append(g.base.Fields, "arr")
	}
	init := g.prog.NewFunc(g.base, "init", "s", "l", "h")
	b := g.nb(init)
	b.New("bf", g.data)
	b.Store("this", "buf", "bf")
	b.Store("this", "shared", "s")
	b.Store("this", "lock", "l")
	b.Store("this", "helper", "h")
}
