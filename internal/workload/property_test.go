package workload

import (
	"testing"
	"testing/quick"

	"o2/internal/ir"
	"o2/internal/osa"
	"o2/internal/pta"
	"o2/internal/race"
	"o2/internal/shb"
)

// randomPreset maps raw fuzz bytes onto a small, always-terminating preset.
func randomPreset(raw [12]byte) Preset {
	b := func(i int, lo, hi int) int {
		if hi <= lo {
			return lo
		}
		return lo + int(raw[i])%(hi-lo+1)
	}
	p := Preset{
		Name:            "fuzz",
		Seed:            int64(raw[0])<<8 | int64(raw[1]),
		Workers:         b(0, 1, 6),
		Events:          b(1, 0, 4),
		NestedSpawn:     raw[2]%2 == 0,
		WrapperFrac:     b(3, 0, 3),
		LoopFrac:        b(4, 0, 3),
		EventLoop:       raw[5]%2 == 0,
		SharedObjs:      b(6, 1, 3),
		SharedFields:    b(7, 1, 6),
		LockFrac:        float64(raw[8]%100) / 100,
		JoinFrac:        float64(raw[9]%100) / 100,
		Statics:         b(10, 0, 4),
		Arrays:          b(11, 0, 1),
		LocalDepths:     []int{1, 1},
		SingletonLocals: b(2, 0, 2),
		UtilDepth:       2,
		UtilWidth:       3,
		UtilFanout:      2,
		FactoryDepth:    2,
		FactorySites:    2,
		Reps:            b(5, 1, 2),
		VolatileFields:  b(6, 0, 2),
		CondPairs:       b(7, 0, 1),
		LockInversions:  b(8, 0, 1),
	}
	return p
}

// TestQuickPipelineInvariants fuzzes preset knobs and checks the
// invariants the reproduction's claims rest on:
//
//  1. the full pipeline terminates and is deterministic;
//  2. every detector optimization configuration reports the same races
//     (the §4.1 soundness claim);
//  3. OPA never reports more races than 0-ctx (origin contexts only
//     remove false sharing, the program's real races stay).
func TestQuickPipelineInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing is slow")
	}
	entries := ir.DefaultEntryConfig()
	run := func(prog *ir.Program, pol pta.Policy, opts race.Options) (int, bool) {
		a := pta.New(prog, pta.Config{Policy: pol, Entries: entries, StepBudget: 5_000_000})
		if err := a.Solve(); err != nil {
			return 0, false
		}
		sh := osa.Analyze(a)
		g := shb.Build(a, shb.Config{})
		opts.PairBudget = 2_000_000
		rep := race.Detect(a, sh, g, opts)
		return len(rep.Races), !rep.TimedOut
	}

	f := func(raw [12]byte) bool {
		p := randomPreset(raw)
		prog1 := Build(p, entries)
		prog2 := Build(p, entries)
		if prog1.NumInstrs != prog2.NumInstrs {
			t.Logf("nondeterministic build for %+v", p)
			return false
		}

		opa := pta.Policy{Kind: pta.KOrigin, K: 1}
		full, ok1 := run(prog1, opa, race.O2Options())
		naive, ok2 := run(prog1, opa, race.NaiveOptions())
		if ok1 && ok2 && full != naive {
			t.Logf("optimizations unsound on %+v: %d vs %d", p, full, naive)
			return false
		}

		again, ok3 := run(Build(p, entries), opa, race.O2Options())
		if ok1 && ok3 && full != again {
			t.Logf("nondeterministic detection on %+v: %d vs %d", p, full, again)
			return false
		}

		base, ok4 := run(prog1, pta.Policy{Kind: pta.Insensitive}, race.O2Options())
		if ok1 && ok4 && full > base {
			t.Logf("OPA reported more races than 0-ctx on %+v: %d vs %d", p, full, base)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
