package workload

import (
	"testing"

	"o2/internal/ir"
	"o2/internal/pta"
)

func TestBuildDeterministic(t *testing.T) {
	entries := ir.DefaultEntryConfig()
	p1 := Build(Table5[0], entries)
	p2 := Build(Table5[0], entries)
	if p1.NumInstrs != p2.NumInstrs || p1.NumAllocSites != p2.NumAllocSites ||
		p1.NumCallSites != p2.NumCallSites || len(p1.Funcs) != len(p2.Funcs) {
		t.Fatalf("generator is not deterministic: %d/%d instrs, %d/%d allocs",
			p1.NumInstrs, p2.NumInstrs, p1.NumAllocSites, p2.NumAllocSites)
	}
	for i := range p1.Funcs {
		if p1.Funcs[i].Name != p2.Funcs[i].Name || len(p1.Funcs[i].Body) != len(p2.Funcs[i].Body) {
			t.Fatalf("function %d differs: %s vs %s", i, p1.Funcs[i].Name, p2.Funcs[i].Name)
		}
	}
}

func TestAllPresetsBuild(t *testing.T) {
	entries := ir.DefaultEntryConfig()
	all := append(append([]Preset{}, Table5...), Table6...)
	all = append(all, Linux())
	for _, p := range all {
		prog := Build(p, entries)
		if prog.Main == nil {
			t.Fatalf("%s: no main", p.Name)
		}
		if prog.NumInstrs < 100 {
			t.Errorf("%s: suspiciously small program (%d instrs)", p.Name, prog.NumInstrs)
		}
		// Every preset needs at least one thread or event class to have
		// origins at all.
		origins := 0
		for _, c := range prog.Classes {
			if c.IsThread || c.IsEvent {
				origins++
			}
		}
		if origins == 0 {
			t.Errorf("%s: no origin classes", p.Name)
		}
	}
}

func TestWorkerEventCounts(t *testing.T) {
	entries := ir.DefaultEntryConfig()
	p := Table5[0] // avrora: 3 workers, 1 event
	prog := Build(p, entries)
	workers, events := 0, 0
	for name, c := range prog.Classes {
		if c.IsThread && name != "SubWorker" && name != "WorkerBase" {
			workers++
		}
		if c.IsEvent {
			events++
		}
	}
	if workers < p.Workers {
		t.Errorf("want >= %d worker classes, got %d", p.Workers, workers)
	}
	if events < p.Events {
		t.Errorf("want >= %d event classes, got %d", p.Events, events)
	}
}

// TestOriginAccounting checks that spawn variants (plain, wrapper, loop)
// produce the expected origin structure under OPA.
func TestOriginAccounting(t *testing.T) {
	entries := ir.DefaultEntryConfig()
	p := Preset{
		Name: "acct", Seed: 7,
		Workers: 6, SharedFields: 2, LocalDepths: []int{1},
		WrapperFrac: 3, LoopFrac: 3, // workers 0,3 via wrapper; 1,4 in loops
		Reps: 1,
	}
	prog := Build(p, entries)
	a := pta.New(prog, pta.Config{Policy: pta.Policy{Kind: pta.KOrigin, K: 1}, Entries: entries})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	threads := 0
	for _, org := range a.Origins.Origins {
		if org.Kind == pta.KindThread {
			threads++
		}
	}
	// 6 workers, two of them loop-spawned → +2 twins.
	if threads != 8 {
		t.Errorf("want 8 thread origins (6 workers + 2 twins), got %d", threads)
	}
}

// TestSyncExtrasShapes checks the extension patterns land in the program.
func TestSyncExtrasShapes(t *testing.T) {
	entries := ir.DefaultEntryConfig()
	p := Preset{
		Name: "extras", Seed: 9,
		Workers: 2, SharedFields: 2, LocalDepths: []int{1},
		VolatileFields: 2, CondPairs: 1, LockInversions: 1, Reps: 1,
	}
	prog := Build(p, entries)
	shared := prog.Classes["Shared"]
	if !shared.IsVolatile("vf0") || !shared.IsVolatile("vf1") {
		t.Errorf("volatile fields missing on Shared")
	}
	for _, cls := range []string{"CondProducer", "CondConsumer", "InvertA", "InvertB"} {
		if prog.Classes[cls] == nil {
			t.Errorf("extension class %s missing", cls)
		}
	}
}
