package workload

import (
	"fmt"

	"o2/internal/ir"
)

// buildLadder attaches the local-allocation ladder to the Helper
// singleton: ladder1 → … → ladderD with the Data allocation in the last
// link. Reaching the allocation through d links is separated by k-CFA only
// when k ≥ d (plus the entry hop), and never by receiver-object
// sensitivity (single Helper receiver) — only origins separate every
// depth.
func (g *gen) buildLadderMethods() {
	depths := len(g.p.LocalDepths)
	for d := depths; d >= 1; d-- {
		f := g.prog.NewFunc(g.singleton, fmt.Sprintf("ladder%d", d))
		b := g.nb(f)
		if d == depths {
			b.New("d", g.data)
			b.Ret("d")
		} else {
			b.Call("d", "this", fmt.Sprintf("ladder%d", d+1))
			b.Ret("d")
		}
	}
}

// ladderEntry returns the Helper method whose Data allocation is d calls
// away.
func (g *gen) ladderEntry(d int) string {
	depths := len(g.p.LocalDepths)
	idx := depths - d + 1
	if idx < 1 {
		idx = 1
	}
	return fmt.Sprintf("ladder%d", idx)
}

// protectedField reports whether shared field index fi is lock-protected
// in this program (a per-field, whole-program decision, so unprotected
// fields are true races).
func (g *gen) protectedField(fi int) bool {
	return mix(uint64(g.p.Seed), uint64(fi)+1) < g.p.LockFrac
}

func (g *gen) protectedStatic(i int) bool {
	return mix(uint64(g.p.Seed), uint64(i)+0x9e00) < g.p.LockFrac
}

// mix is a splitmix64-style hash mapped to [0,1): unlike a modular product
// it has no arithmetic progressions that could make every field of a
// preset fall on one side of the lock fraction.
func mix(seed, x uint64) float64 {
	z := seed*0x9e3779b97f4a7c15 + x*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(uint64(1)<<53)
}

// buildWorkVariants creates the shared traffic methods work0..work2 on the
// worker superclass. All origins funnel their genuinely-shared accesses
// through these three textual bodies — as real thread classes share run()
// code — so real races collapse to a handful of source-position pairs
// instead of growing quadratically with the origin count.
func (g *gen) buildWorkVariants() {
	p := g.p
	for v := 0; v < 3; v++ {
		f := g.prog.NewFunc(g.base, fmt.Sprintf("work%d", v))
		b := g.nb(f)
		b.Load("sh", "this", "shared")
		b.Load("lk", "this", "lock")
		for rep := 0; rep < max(1, p.Reps); rep++ {
			for fi := 0; fi < max(1, p.SharedFields); fi++ {
				if (fi+v+rep)%3 == 0 {
					continue // this variant skips some fields
				}
				field := fmt.Sprintf("f%d", fi)
				switch {
				case g.protectedField(fi):
					// A lock region guards a burst of accesses to the same
					// location (read-modify-write sequences): the target of
					// the paper's lock-region merging optimization.
					b.At(g.pos()).Lock("lk")
					for burst := 0; burst < 4; burst++ {
						b.Store("sh", field, "this")
						b.Load("tmp", "sh", field)
					}
					b.Unlock("lk")
				case (v+rep)%2 == 0:
					b.At(g.pos()).Store("sh", field, "this")
				default:
					b.At(g.pos()).Load("tmp", "sh", field)
				}
			}
			for si := 0; si < p.Statics; si++ {
				if (si+v)%4 == 3 {
					continue
				}
				field := fmt.Sprintf("s%d", si)
				switch {
				case g.protectedStatic(si):
					b.At(g.pos()).Lock("lk")
					b.StoreStatic(g.stats, field, "this")
					b.Unlock("lk")
				case (si+v+rep)%2 == 0:
					b.At(g.pos()).StoreStatic(g.stats, field, "this")
				default:
					b.At(g.pos()).LoadStatic("tmp", g.stats, field)
				}
			}
			if p.Arrays > 0 {
				b.At(g.pos()).Load("ar", "this", "arr")
				b.Load("bf", "this", "buf")
				if (v+rep)%2 == 0 {
					b.StoreIdx("ar", "bf")
				} else {
					b.LoadIdx("tmp", "ar")
				}
			}
			// Volatile traffic: written by every origin, never a race.
			for vf := 0; vf < p.VolatileFields; vf++ {
				if (vf+v)%2 == 0 {
					b.At(g.pos()).Store("sh", fmt.Sprintf("vf%d", vf), "this")
				} else {
					b.At(g.pos()).Load("tmp", "sh", fmt.Sprintf("vf%d", vf))
				}
			}
		}
	}
}

// emitPrivateBody writes the per-origin portion of run()/handleEvent at
// origin-specific source positions and call sites: the Figure-3 buffer
// write, the ladder and singleton locals, and the mesh/factory entries.
// These are origin-local — precise policies report nothing here, while
// imprecise ones conflate the allocations across origins and accumulate
// false races quadratically in the origin count.
func (g *gen) emitPrivateBody(b *ir.B, id int) {
	p := g.p
	b.Load("hp", "this", "helper")

	// Figure-3 pattern: buffer allocated by the shared super constructor.
	b.At(g.pos()).Load("bf", "this", "buf")
	b.Store("bf", "v", "this")

	// Ladder pattern: per-origin Data at graded call depths through the
	// shared singleton.
	for d := 1; d <= len(p.LocalDepths); d++ {
		for j := 0; j < p.LocalDepths[d-1]; j++ {
			v := fmt.Sprintf("ld_%d_%d", d, j)
			b.At(g.pos()).Call(v, "hp", g.ladderEntry(d))
			b.Store(v, "v", "this")
		}
	}
	// Free-function chain variant: receiver-object sensitivity separates
	// these (the caller's context rides along static calls), 0-ctx does
	// not.
	if len(p.LocalDepths) > 0 {
		b.At(g.pos()).CallStatic("fl", g.localEntry(2), "this")
		b.Store("fl", "v", "this")
	}
	// Singleton-made locals: separated only by origins (and 2-CFA through
	// the two-deep call window).
	for i := 0; i < p.SingletonLocals; i++ {
		v := fmt.Sprintf("sl_%d", i)
		b.At(g.pos()).Call(v, "hp", fmt.Sprintf("mk%d", i))
		b.Store(v, "w", "this")
	}
	// A guarded write to the per-origin buffer: under OPA the buffer is
	// origin-local, so the over-synchronization analysis flags this region;
	// imprecise policies conflate the buffer and consider the lock useful.
	b.At(g.pos()).Load("lk2", "this", "lock")
	b.Lock("lk2")
	b.Store("bf", "w", "this")
	b.Unlock("lk2")
}

func (g *gen) buildWorkers() []*ir.Class {
	p := g.p
	var out []*ir.Class
	var sub *ir.Class
	if p.NestedSpawn {
		sub = g.prog.Class("SubWorker")
		sub.Super = g.base
		run := g.prog.NewFunc(sub, "run")
		b := g.nb(run)
		b.Call("", "this", "work0") // nested-origin shared traffic
	}
	for i := 0; i < p.Workers; i++ {
		cls := g.prog.Class(fmt.Sprintf("Worker%d", i))
		cls.Super = g.base
		init := g.prog.NewFunc(cls, "init", "s", "l", "h", "a")
		ib := g.nb(init)
		ib.SuperCall(g.base.Lookup("init"), "s", "l", "h")
		if p.Arrays > 0 {
			ib.Store("this", "arr", "a")
		}

		run := g.prog.NewFunc(cls, "run")
		b := g.nb(run)
		b.At(g.pos()).Call("", "this", fmt.Sprintf("work%d", i%3))
		g.emitPrivateBody(b, i)
		if p.NestedSpawn && i%3 == 0 {
			b.At(g.pos()).Load("sh", "this", "shared")
			b.Load("lk", "this", "lock")
			b.Load("hp", "this", "helper")
			b.New("sw", sub, "sh", "lk", "hp")
			b.Call("", "sw", "start")
		}
		out = append(out, cls)
	}
	return out
}

func (g *gen) buildEvents() []*ir.Class {
	p := g.p
	var out []*ir.Class
	for i := 0; i < p.Events; i++ {
		cls := g.prog.Class(fmt.Sprintf("Handler%d", i))
		cls.Super = g.base
		init := g.prog.NewFunc(cls, "init", "s", "l", "h")
		ib := g.nb(init)
		ib.SuperCall(g.base.Lookup("init"), "s", "l", "h")

		h := g.prog.NewFunc(cls, "handleEvent", "ev")
		b := g.nb(h)
		b.At(g.pos()).Call("", "this", fmt.Sprintf("work%d", (p.Workers+i)%3))
		g.emitPrivateBody(b, p.Workers+i)
		out = append(out, cls)
	}
	return out
}

func (g *gen) buildMain(workers, events []*ir.Class) {
	p := g.p
	mainFn := g.prog.NewFunc(nil, "main")
	b := g.nb(mainFn)

	nShared := max(1, p.SharedObjs)
	for j := 0; j < nShared; j++ {
		b.At(g.pos()).New(fmt.Sprintf("sh%d", j), g.shared)
	}
	b.Copy("sh", "sh0")
	b.New("lk", g.prog.Class("LockObj"))
	b.New("hp", g.singleton)
	if p.Arrays > 0 {
		b.New("arr", g.prog.Class("ArrayBuf"))
	} else {
		b.Copy("arr", "$null")
	}

	// Cold section: the dispatcher mesh and factory chains run on the main
	// origin only, like an application's startup/library mass. This keeps
	// the per-origin statement ratio small (the paper's O% < 10%), so OPA
	// stays close to 0-ctx while deep-context policies pay the blowup.
	if p.UtilDepth > 0 {
		for w := 0; w < p.UtilWidth; w++ {
			b.At(g.pos()).CallStatic("um", g.utils[0][w], "hp")
			b.Store("um", "w", "hp")
		}
	}
	if p.FactoryDepth > 0 {
		for s := 0; s < max(1, p.FactorySites/2); s++ {
			v := fmt.Sprintf("facroot%d", s)
			b.At(g.pos()).New(v, g.factories[0])
			b.Call("", v, "make")
			b.Call("", v, "use")
		}
	}

	// Wrapper function used by every n-th worker spawn: the origin
	// allocation moves into shared code, exercising the paper's
	// 1-call-site wrapper extension.
	wrappers := map[*ir.Class]*ir.Func{}
	if p.WrapperFrac > 0 {
		for i, cls := range workers {
			if i%p.WrapperFrac == 0 {
				w := g.prog.NewFunc(nil, "spawn"+cls.Name, "s", "l", "h", "a")
				wb := g.nb(w)
				wb.New("w", cls, "s", "l", "h", "a")
				wb.Call("", "w", "start")
				wb.Ret("w")
				wrappers[cls] = w
			}
		}
	}

	var joined []string
	for i, cls := range workers {
		v := fmt.Sprintf("w%d", i)
		sh := fmt.Sprintf("sh%d", i%nShared)
		switch {
		case p.WrapperFrac > 0 && i%p.WrapperFrac == 0:
			b.At(g.pos()).CallStatic(v, wrappers[cls], sh, "lk", "hp", "arr")
		case p.LoopFrac > 0 && i%p.LoopFrac == 1:
			b.At(g.pos()).InLoop(func() {
				b.New(v, cls, sh, "lk", "hp", "arr")
				b.Call("", v, "start")
			})
		default:
			b.At(g.pos()).New(v, cls, sh, "lk", "hp", "arr")
			b.Call("", v, "start")
		}
		if float64(i) < p.JoinFrac*float64(len(workers)) {
			joined = append(joined, v)
		}
	}

	for i, cls := range events {
		hv := fmt.Sprintf("h%d", i)
		ev := fmt.Sprintf("e%d", i)
		sh := fmt.Sprintf("sh%d", i%nShared)
		b.At(g.pos()).New(ev, g.prog.Class("Event"))
		if p.EventLoop {
			// Allocating the handler inside the dispatch loop replicates
			// its origin: concurrent instances of the same event.
			b.InLoop(func() {
				b.New(hv, cls, sh, "lk", "hp")
				b.Call("", hv, "handleEvent", ev)
			})
		} else {
			b.New(hv, cls, sh, "lk", "hp")
			b.Call("", hv, "handleEvent", ev)
		}
	}

	if p.CondPairs > 0 {
		for i := 0; i < p.CondPairs; i++ {
			bx := fmt.Sprintf("cbox%d", i)
			cd := fmt.Sprintf("cvar%d", i)
			b.At(g.pos()).New(bx, g.prog.Class("CondBox"))
			b.New(cd, g.prog.Class("CondVar"))
			b.New("cp"+bx, g.prog.Class("CondProducer"), bx, cd)
			b.Call("", "cp"+bx, "start")
			b.New("cc"+bx, g.prog.Class("CondConsumer"), bx, cd)
			b.Call("", "cc"+bx, "start")
		}
	}
	if p.ChanPairs > 0 {
		for i := 0; i < p.ChanPairs; i++ {
			bx := fmt.Sprintf("gbox%d", i)
			ch := fmt.Sprintf("gch%d", i)
			b.At(g.pos()).New(bx, g.prog.Class("ChanBox"))
			b.ChanMake(ch, 0)
			b.New("gp"+bx, g.prog.Class("ChanProducer"), bx, ch)
			b.Call("", "gp"+bx, "start")
			b.New("gc"+bx, g.prog.Class("ChanConsumer"), bx, ch)
			b.Call("", "gc"+bx, "start")
		}
	}
	if p.WgWorkers > 0 {
		b.At(g.pos()).New("wgrp", g.prog.Class("WaitGroup"))
		b.Call("", "wgrp", "Add")
		var wboxes []string
		for i := 0; i < p.WgWorkers; i++ {
			wx := fmt.Sprintf("wbox%d", i)
			b.At(g.pos()).New(wx, g.prog.Class("WgBox"))
			b.New("ww"+wx, g.prog.Class("WgWorker"), wx, "wgrp")
			b.Call("", "ww"+wx, "start")
			wboxes = append(wboxes, wx)
		}
		b.At(g.pos()).Call("", "wgrp", "Wait")
		for _, wx := range wboxes {
			// After the barrier: ordered with every worker's write.
			b.Load("tmp", wx, "wv")
		}
	}
	if p.LockInversions > 0 {
		for i := 0; i < p.LockInversions; i++ {
			la := fmt.Sprintf("ila%d", i)
			lb := fmt.Sprintf("ilb%d", i)
			iv := fmt.Sprintf("ivd%d", i)
			b.At(g.pos()).New(la, g.prog.Class("ILockA"))
			b.New(lb, g.prog.Class("ILockB"))
			b.New(iv, g.prog.Class("InvData"))
			// Both workers hold both locks around the shared write, so the
			// pair deadlocks (inverted order) but never races.
			b.New("iva"+la, g.prog.Class("InvertA"), la, lb, iv)
			b.Call("", "iva"+la, "start")
			b.New("ivb"+la, g.prog.Class("InvertB"), lb, la, iv)
			b.Call("", "ivb"+la, "start")
		}
	}

	for _, v := range joined {
		b.At(g.pos()).Call("", v, "join")
	}
	// Epilogue: main touches shared state after the joins — ordered with
	// joined workers, racy with the rest.
	b.At(g.pos()).Store("sh", "f0", "hp")
	if p.SharedFields > 1 {
		b.Load("tmp", "sh", "f1")
	}
	if p.Statics > 0 {
		b.StoreStatic(g.stats, "s0", "hp")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
