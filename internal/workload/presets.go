package workload

import "fmt"

// Presets modeling the paper's benchmark corpus. Worker/event counts track
// each application's origin count from Table 5 (#O column); size knobs
// (Reps, mesh, factories) scale with the application's relative size so
// the cost orderings of Tables 5 and 6 emerge. Seeds are fixed: every
// preset is fully deterministic.

// base returns the shared default knobs.
func base(name string, seed int64) Preset {
	return Preset{
		Name:            name,
		Seed:            seed,
		SharedObjs:      2,
		SharedFields:    6,
		LockFrac:        0.5,
		JoinFrac:        0.25,
		Statics:         4,
		Arrays:          1,
		LocalDepths:     []int{2, 2, 1, 1},
		SingletonLocals: 2,
		UtilDepth:       4,
		UtilWidth:       8,
		UtilFanout:      6,
		FactoryDepth:    7,
		FactorySites:    12,
		WrapperFrac:     4,
		LoopFrac:        5,
		Reps:            2,
	}
}

// withMesh overrides the dispatcher-mesh knobs (k-CFA cost driver).
func (p Preset) withMesh(width, fanout, depth int) Preset {
	p.UtilWidth, p.UtilFanout, p.UtilDepth = width, fanout, depth
	return p
}

// withFactory overrides the factory-chain knobs (k-obj cost driver).
func (p Preset) withFactory(sites, depth int) Preset {
	p.FactorySites, p.FactoryDepth = sites, depth
	return p
}

// dacapo models a Dacapo-style multithreaded JVM application.
func dacapo(name string, seed int64, workers, scale int) Preset {
	p := base(name, seed)
	p.Workers = workers
	p.Events = 1
	p.Reps = scale
	return p
}

// android models an event-heavy mobile app: few threads, many handlers.
// Events are dispatched once (the Android main thread serializes them;
// replication is a server-side concern), so no twin origins arise.
func android(name string, seed int64, events, scale int) Preset {
	p := base(name, seed)
	p.Workers = 2 + events/8
	p.Events = events
	p.JoinFrac = 0
	p.Reps = scale
	return p
}

// distributed models a thread+event distributed system: many origins of
// both kinds, heavy shared state, nested spawns.
func distributed(name string, seed int64, workers, events, scale int) Preset {
	p := base(name, seed)
	p.Workers = workers
	p.Events = events
	p.NestedSpawn = true
	p.SharedObjs = 4
	p.SharedFields = 10
	p.Statics = 8
	p.UtilWidth = 8
	p.UtilFanout = 4
	p.UtilDepth = 5
	p.FactorySites = 4
	p.Reps = scale
	p.VolatileFields = 2
	p.CondPairs = 1
	p.LockInversions = 1
	return p
}

// cstyle models a C server (Memcached/Redis/Sqlite3): free-function heavy,
// event loop plus worker threads.
func cstyle(name string, seed int64, workers, events, scale int) Preset {
	p := base(name, seed)
	p.Workers = workers
	p.Events = events
	p.EventLoop = true
	p.SharedObjs = 3
	p.Statics = 10
	p.LockFrac = 0.6
	p.Reps = scale
	p.VolatileFields = 3
	p.CondPairs = 1
	return p
}

// Table5 lists the JVM benchmark presets of the paper's Table 5, in paper
// order: 13 Dacapo applications, 10 Android apps, 4 distributed systems.
// Worker/event counts follow each row's #O.
var Table5 = []Preset{
	// Dacapo. Mesh/factory boosts mirror where the paper's Table 5 shows
	// deep-context blowups: Batik and Lusearch explode under 2-CFA; most
	// rows time out under k-obj.
	dacapo("avrora", 101, 3, 2).withFactory(12, 7),
	dacapo("batik", 102, 3, 3).withMesh(14, 12, 5).withFactory(16, 7),
	dacapo("eclipse", 103, 3, 1).withFactory(16, 7),
	dacapo("h2", 104, 2, 6).withMesh(12, 10, 5).withFactory(16, 7),
	dacapo("jython", 105, 3, 5).withFactory(16, 7),
	dacapo("luindex", 106, 2, 3).withMesh(10, 8, 5).withFactory(16, 7),
	dacapo("lusearch", 107, 2, 1).withMesh(16, 16, 5).withFactory(8, 5),
	dacapo("pmd", 108, 2, 1).withFactory(16, 7),
	dacapo("sunflow", 109, 8, 2).withFactory(12, 7),
	dacapo("tomcat", 110, 5, 2).withMesh(14, 12, 5).withFactory(10, 6),
	dacapo("tradebeans", 111, 2, 1).withFactory(16, 7),
	dacapo("tradesoap", 112, 2, 2).withFactory(16, 7),
	dacapo("xalan", 113, 2, 4).withMesh(12, 10, 5).withFactory(13, 7),

	// Android apps: heavy 2-CFA blowups across the board in the paper.
	android("connectbot", 201, 9, 1).withMesh(16, 16, 5).withFactory(14, 7),
	android("sipdroid", 202, 13, 3).withMesh(14, 14, 5).withFactory(14, 7),
	android("k9mail", 203, 20, 2).withMesh(14, 14, 5).withFactory(14, 7),
	android("tasks", 204, 5, 2).withMesh(18, 18, 5).withFactory(14, 7),
	android("fbreader", 205, 13, 2).withMesh(16, 16, 5).withFactory(14, 7),
	android("vlc", 206, 3, 4).withMesh(16, 14, 5).withFactory(14, 7),
	android("firefox-focus", 207, 6, 2).withMesh(14, 12, 5).withFactory(14, 7),
	android("telegram", 208, 120, 2).withMesh(12, 10, 5).withFactory(14, 7),
	android("zoom", 209, 12, 4).withMesh(14, 12, 5).withFactory(14, 7),
	android("chrome", 210, 30, 3).withMesh(14, 12, 5).withFactory(14, 7),

	distributed("hbase", 301, 10, 5, 5).withMesh(14, 12, 5).withFactory(16, 7),
	distributed("hdfs", 302, 8, 3, 4).withMesh(12, 10, 5).withFactory(14, 7),
	distributed("yarn", 303, 9, 4, 6).withMesh(14, 12, 5).withFactory(16, 7),
	distributed("zookeeper", 304, 30, 9, 3).withMesh(12, 10, 5).withFactory(14, 7),
}

// Table6 lists the C/C++ presets of Table 6 (#O from the paper: 12/15/3).
// Sqlite3's mesh models the paper's 2-CFA out-of-memory kill.
var Table6 = []Preset{
	cstyle("memcached", 401, 4, 7, 2).withFactory(8, 5),
	cstyle("redis", 402, 6, 8, 5).withMesh(14, 12, 5).withFactory(10, 6),
	cstyle("sqlite3", 403, 2, 1, 12).withMesh(20, 20, 5).withFactory(10, 6),
}

// Dacapo returns the 13 Dacapo presets (Tables 7 and 8 subset).
func Dacapo() []Preset { return Table5[:13] }

// DistributedSystems returns the 4 distributed-system presets (Table 9).
func DistributedSystems() []Preset { return Table5[23:] }

// ByName returns the preset with the given name from all preset tables.
func ByName(name string) (Preset, bool) {
	for _, p := range Table5 {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range Table6 {
		if p.Name == name {
			return p, true
		}
	}
	if p := Linux(); p.Name == name {
		return p, true
	}
	if p := GoSync(); p.Name == name {
		return p, true
	}
	return Preset{}, false
}

// GoSync models a Go-style message-passing server: channel handoff pairs
// and a WaitGroup fan-in barrier dominate the synchronization, with only a
// modest mutex-protected core. It drives the channel/WaitGroup HB rules at
// workload scale — every handoff is race-free only because of a
// send→recv or Done→Wait edge.
func GoSync() Preset {
	p := base("gosync", 601)
	p.Workers = 6
	p.Events = 2
	p.ChanPairs = 10
	p.WgWorkers = 12
	p.CondPairs = 1
	p.LockFrac = 0.7
	p.UtilDepth = 3
	p.FactoryDepth = 4
	p.Reps = 2
	return p
}

// Linux models the paper's Linux-kernel configuration (§5.4): hundreds of
// system-call origins (event handlers dispatched twice to model concurrent
// invocations), driver functions, kernel threads and interrupt handlers.
func Linux() Preset {
	p := base("linux", 501)
	p.Workers = 24 // kernel threads + threaded IRQs
	p.Events = 180 // system calls + file-operation driver entries
	p.EventLoop = true
	p.SharedObjs = 6
	p.SharedFields = 12
	p.Statics = 16
	p.LockFrac = 0.8
	p.JoinFrac = 0
	p.UtilDepth = 5
	p.UtilWidth = 10
	p.UtilFanout = 3
	p.Reps = 1
	return p
}

// Scale grows a preset along every complexity-relevant axis for the
// Table 3 sweep: more origins and statements (linear axes) and wider
// call/allocation fanout (the axes k-CFA and k-obj are superlinear in).
func Scale(p Preset, factor int) Preset {
	p.Name = fmt.Sprintf("%s-x%d", p.Name, factor)
	p.Workers *= factor
	p.Reps *= factor
	p.UtilFanout += 2 * (factor - 1)
	p.UtilWidth += factor - 1
	p.FactorySites += 2 * (factor - 1)
	return p
}
