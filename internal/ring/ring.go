// Package ring implements a bounded lock-free multi-producer queue
// (Vyukov's array-based design: every slot carries a sequence number that
// encodes both its state and the round it belongs to). The race detector's
// worker pool uses it as the completion feed: workers push finished group
// indices, the caller pops them and merges the contiguous prefix in order,
// so the deterministic merge streams alongside detection instead of
// waiting behind a barrier — with no per-item allocation and no mutex
// (a channel feed costs a lock acquisition plus a potential goroutine
// park per item; a ring push is one CAS).
//
// Producers: any number, lock-free (a CAS claims a slot). Consumer: ONE
// goroutine at a time; Pop performs plain loads/stores on the head cursor.
// Publication is ordered by the slot's atomic sequence number, so a popped
// value — and anything the producer wrote before pushing it — is safely
// visible to the consumer (pinned under -race by TestRingMPSCStress).
package ring

import "sync/atomic"

// slot holds one element. seq encodes the slot's state relative to the
// cursors: seq == pos (slot free for the producer whose tail position is
// pos), seq == pos+1 (value published, ready for the consumer at head
// position pos), seq == pos+capacity (consumed, free for the next round).
type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// Queue is a bounded MPSC queue. The zero value is not usable; call New.
type Queue[T any] struct {
	mask  uint64
	slots []slot[T]
	head  atomic.Uint64 // next position to pop (single consumer)
	tail  atomic.Uint64 // next position to push (CAS-claimed by producers)
}

// New returns a queue holding at least capacity elements (rounded up to a
// power of two, minimum 2, so index masking is one AND).
func New[T any](capacity int) *Queue[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	q := &Queue[T]{mask: uint64(n - 1), slots: make([]slot[T], n)}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// Cap returns the queue's capacity.
func (q *Queue[T]) Cap() int { return len(q.slots) }

// Push publishes v. It returns false when the queue is full — it never
// blocks and never allocates. Safe for any number of concurrent producers.
func (q *Queue[T]) Push(v T) bool {
	for {
		pos := q.tail.Load()
		s := &q.slots[pos&q.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			// Slot free this round: claim it. On CAS failure another
			// producer claimed it first — reload and retry.
			if q.tail.CompareAndSwap(pos, pos+1) {
				s.val = v
				s.seq.Store(pos + 1) // publish: orders the val write above
				return true
			}
		case seq < pos:
			// Slot still holds an element from capacity positions ago that
			// the consumer has not drained: the queue is full.
			return false
		default:
			// seq > pos: a concurrent producer advanced tail past our
			// stale read; reload.
		}
	}
}

// Pop removes the oldest element. It returns false when the queue is
// empty. Must be called from a single consumer goroutine.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	pos := q.head.Load()
	s := &q.slots[pos&q.mask]
	if s.seq.Load() != pos+1 {
		// The slot at head is not published yet: empty (producers that
		// claimed it are still writing, or no producer reached it).
		return zero, false
	}
	v := s.val
	s.val = zero // release references held by the slot
	s.seq.Store(pos + q.mask + 1)
	q.head.Store(pos + 1)
	return v, true
}
