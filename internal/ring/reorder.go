package ring

import "context"

// Reorder is a bounded reorder window: a single dispatcher reserves slots
// in input order, any number of workers complete them in whatever order
// they finish, and a single consumer receives the results strictly in the
// order the slots were reserved. It is the ordering backbone of the
// streaming corpus frontend (o2.AnalyzeCorpus), shaped after the
// osmpbf-style decoder: fan work out to NumCPU workers, emit in input
// order, and never buffer more than the window.
//
// The window bound doubles as backpressure: at most `window` slots can be
// reserved beyond the consumed prefix, so a slow head-of-line item blocks
// the dispatcher (and therefore admission of new work) instead of growing
// an unbounded pending buffer. Memory is O(window), independent of the
// input length.
//
// Concurrency contract: Open is called by one dispatcher goroutine (the
// call order defines the output order), Next by one consumer goroutine;
// each Cell is completed exactly once, from any goroutine. Completing a
// cell never blocks.
type Reorder[T any] struct {
	cells chan Cell[T]
}

// Cell is one reserved slot of the window. Complete publishes its value;
// the buffered channel makes completion non-blocking and order-free.
type Cell[T any] chan T

// Complete publishes the slot's result. Must be called exactly once.
func (c Cell[T]) Complete(v T) { c <- v }

// NewReorder returns a window admitting at most `window` open slots
// (minimum 1).
func NewReorder[T any](window int) *Reorder[T] {
	if window < 1 {
		window = 1
	}
	return &Reorder[T]{cells: make(chan Cell[T], window)}
}

// Open reserves the next slot in input order, blocking while the window
// is full until the consumer frees one or ctx ends (then ctx's error is
// returned). Single-dispatcher only: the Open order is the Next order.
func (r *Reorder[T]) Open(ctx context.Context) (Cell[T], error) {
	c := make(Cell[T], 1)
	select {
	case r.cells <- c:
		return c, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close marks the input as exhausted: after the already-open slots drain,
// Next reports ok=false. Only the dispatcher may call Close, once.
func (r *Reorder[T]) Close() { close(r.cells) }

// Next returns the next result in input order, blocking until the head
// slot completes. ok=false means Close was called and every slot has been
// consumed. A ctx error aborts the wait; outstanding cells are abandoned
// to the garbage collector (workers completing them never block).
func (r *Reorder[T]) Next(ctx context.Context) (v T, ok bool, err error) {
	var zero T
	select {
	case c, open := <-r.cells:
		if !open {
			return zero, false, nil
		}
		select {
		case v = <-c:
			return v, true, nil
		case <-ctx.Done():
			return zero, false, ctx.Err()
		}
	case <-ctx.Done():
		return zero, false, ctx.Err()
	}
}
