package ring

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestReorderOrdered pins the core contract: results come out in Open
// order no matter how workers shuffle completion.
func TestReorderOrdered(t *testing.T) {
	const n = 500
	r := NewReorder[int](8)
	tasks := make(chan struct {
		idx  int
		cell Cell[int]
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(42)))
			for tk := range tasks {
				if rnd.Intn(4) == 0 {
					time.Sleep(time.Duration(rnd.Intn(100)) * time.Microsecond)
				}
				tk.cell.Complete(tk.idx)
			}
		}()
	}
	go func() {
		defer r.Close()
		defer close(tasks)
		for i := 0; i < n; i++ {
			c, err := r.Open(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			tasks <- struct {
				idx  int
				cell Cell[int]
			}{i, c}
		}
	}()
	for want := 0; ; want++ {
		v, ok, err := r.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if want != n {
				t.Fatalf("drained after %d items, want %d", want, n)
			}
			break
		}
		if v != want {
			t.Fatalf("out of order: got %d, want %d", v, want)
		}
	}
	wg.Wait()
}

// TestReorderBackpressure pins the window bound: with no consumer, the
// dispatcher blocks after exactly `window` Opens.
func TestReorderBackpressure(t *testing.T) {
	const window = 4
	r := NewReorder[int](window)
	for i := 0; i < window; i++ {
		if _, err := r.Open(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := r.Open(ctx); err == nil {
		t.Fatalf("Open %d succeeded past a full window of %d", window+1, window)
	}
}

// TestReorderCancel pins that both sides unblock on context cancellation.
func TestReorderCancel(t *testing.T) {
	r := NewReorder[int](1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.Next(ctx); err == nil {
		t.Fatal("Next ignored a canceled context")
	}
	// A consumer stuck on an incomplete head cell must also unblock.
	c, err := r.Open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := r.Next(ctx2)
		done <- err
	}()
	cancel2()
	if err := <-done; err == nil {
		t.Fatal("Next ignored cancellation while waiting on the head cell")
	}
	c.Complete(0) // abandoned cell: completion must not block
}

// TestReorderStress is the -race workout: many items, parallel workers
// with jittered completion order, window much smaller than the stream.
func TestReorderStress(t *testing.T) {
	const (
		n       = 5000
		window  = 3
		workers = 8
	)
	r := NewReorder[int](window)
	tasks := make(chan struct {
		idx  int
		cell Cell[int]
	}, workers)
	var inFlight, maxInFlight atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for tk := range tasks {
				cur := inFlight.Add(1)
				for {
					old := maxInFlight.Load()
					if cur <= old || maxInFlight.CompareAndSwap(old, cur) {
						break
					}
				}
				if rnd.Intn(8) == 0 {
					time.Sleep(time.Duration(rnd.Intn(50)) * time.Microsecond)
				}
				tk.cell.Complete(tk.idx)
				inFlight.Add(-1)
			}
		}(int64(w))
	}
	go func() {
		defer r.Close()
		defer close(tasks)
		for i := 0; i < n; i++ {
			c, err := r.Open(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			tasks <- struct {
				idx  int
				cell Cell[int]
			}{i, c}
		}
	}()
	want := 0
	for {
		v, ok, err := r.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if v != want {
			t.Fatalf("out of order: got %d, want %d", v, want)
		}
		want++
	}
	wg.Wait()
	if want != n {
		t.Fatalf("consumed %d, want %d", want, n)
	}
	// The window plus the task channel and workers bound concurrency; the
	// dispatcher can never run more than window+cap(tasks)+workers ahead.
	if max := maxInFlight.Load(); max > window+workers+int64(cap(tasks)) {
		t.Fatalf("in-flight peaked at %d, want <= %d", max, window+workers+cap(tasks))
	}
}
