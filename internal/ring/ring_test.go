package ring

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestRingBasics(t *testing.T) {
	q := New[int](3)
	if q.Cap() != 4 {
		t.Fatalf("capacity rounds up to a power of two: got %d", q.Cap())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("empty queue must not pop")
	}
	for i := 0; i < 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d into empty queue failed", i)
		}
	}
	if q.Push(99) {
		t.Fatal("push into full queue must fail")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d, %v (FIFO violated)", i, v, ok)
		}
	}
	// Wraparound: interleave pushes and pops past the capacity boundary.
	for i := 0; i < 20; i++ {
		if !q.Push(i) {
			t.Fatalf("wrap push %d failed", i)
		}
		if v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("wrap pop %d: got %d, %v", i, v, ok)
		}
	}
}

// TestRingMPSCStress hammers the queue with many producers and one
// consumer under -race: every pushed item must be received exactly once
// (no lost or duplicated work items) and each producer's items must
// arrive in that producer's push order (per-producer FIFO).
func TestRingMPSCStress(t *testing.T) {
	const (
		producers = 8
		perProd   = 10000
		capacity  = 64 // far smaller than the item count: exercises full-queue retries and wraparound
	)
	q := New[uint64](capacity)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p uint64) {
			defer wg.Done()
			for i := uint64(0); i < perProd; i++ {
				v := p<<32 | i
				for !q.Push(v) {
					runtime.Gosched()
				}
			}
		}(uint64(p))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	seen := make(map[uint64]bool, producers*perProd)
	lastPerProd := make([]int64, producers)
	for i := range lastPerProd {
		lastPerProd[i] = -1
	}
	received := 0
	drained := false
	for received < producers*perProd {
		v, ok := q.Pop()
		if !ok {
			// Once producers are done, every pushed item is poppable; an
			// empty queue after that means items were lost.
			if drained {
				t.Fatalf("producers done, queue drained, but only %d/%d items received (lost items)",
					received, producers*perProd)
			}
			select {
			case <-done:
				drained = true
			default:
				runtime.Gosched()
			}
			continue
		}
		if seen[v] {
			t.Fatalf("item %x received twice", v)
		}
		seen[v] = true
		p, i := v>>32, int64(v&0xffffffff)
		if i <= lastPerProd[p] {
			t.Fatalf("producer %d: item %d arrived after %d (per-producer FIFO violated)", p, i, lastPerProd[p])
		}
		lastPerProd[p] = i
		received++
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue must be empty after all items received")
	}
}

// TestRingStreamingMerge models the race detector's completion feed:
// workers finish group indices in arbitrary order and push them; the
// consumer merges the contiguous done-prefix as indices arrive. The merged
// sequence must be exactly 0..n-1 regardless of completion order — the
// property that makes the parallel detector's report byte-identical to the
// sequential one.
func TestRingStreamingMerge(t *testing.T) {
	const n = 5000
	rng := rand.New(rand.NewSource(1))
	order := rng.Perm(n)
	q := New[int32](n)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				if !q.Push(int32(order[i])) {
					t.Errorf("push failed with capacity >= item count")
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	completed := make([]bool, n)
	merged := make([]int, 0, n)
	next := 0
	drained := false
	for next < n {
		if idx, ok := q.Pop(); ok {
			completed[idx] = true
			for next < n && completed[next] {
				merged = append(merged, next)
				next++
			}
			continue
		}
		if drained {
			t.Fatalf("feed drained with merge stuck at %d/%d", next, n)
		}
		select {
		case <-done:
			drained = true
		default:
			runtime.Gosched()
		}
	}
	for i, v := range merged {
		if v != i {
			t.Fatalf("merged[%d] = %d: streaming merge broke deterministic order", i, v)
		}
	}
}
