package pta

import (
	"fmt"

	"o2/internal/ir"
)

// OriginID identifies an origin. Origin 0 is always the main origin.
type OriginID uint32

// MainOrigin is the origin of the program entry point.
const MainOrigin OriginID = 0

// OriginKind classifies origins per the paper's Figure 1.
type OriginKind uint8

const (
	// KindMain is the default origin starting at the program entry point.
	KindMain OriginKind = iota
	// KindThread is a thread origin (Runnable.run, pthread-style).
	KindThread
	// KindEvent is an event-handler origin (handleEvent, onReceive, ...).
	KindEvent
)

func (k OriginKind) String() string {
	switch k {
	case KindMain:
		return "main"
	case KindThread:
		return "thread"
	case KindEvent:
		return "event"
	}
	return "?"
}

// Origin is the paper's core abstraction: an entry point attributed with
// data pointers. Each origin corresponds 1:1 to an abstract origin object
// (the receiver of the entry point); the main origin has no object.
type Origin struct {
	ID   OriginID
	Kind OriginKind
	// Obj is the origin object (receiver of the entry point); 0 for main.
	Obj ObjID
	// Ctx is the analysis context the origin's code runs under. For the
	// origin policy this is the origin context itself; for other policies
	// it is whatever the policy assigns to the entry method.
	Ctx CtxID
	// Entry is the entry method (run/handleEvent/...); nil for main until
	// dispatch resolves it.
	Entry *ir.Func
	// Parent is the origin that allocated this origin's object.
	Parent OriginID
	// AttrVars are the attribute pointers (origin-allocation arguments or
	// entry-point parameters); their points-to sets are the origin
	// attributes of §3.1. AttrCtx is the context to evaluate them under.
	AttrVars []*ir.Var
	AttrCtx  CtxID
	// Replicated marks origins with at least two concurrent instances:
	// origin allocations in loops, event handlers that can be dispatched
	// concurrently, and explicitly replicated entry points (e.g. the two
	// concurrent invocations modeled per Linux system call).
	Replicated bool
	// Site is the allocation site of the origin object (-1 for main).
	Site int
	Pos  ir.Pos
}

func (o *Origin) String() string {
	if o.ID == MainOrigin {
		return "O0(main)"
	}
	name := "?"
	if o.Entry != nil {
		name = o.Entry.Name
	}
	return fmt.Sprintf("O%d(%s %s@site%d)", o.ID, o.Kind, name, o.Site)
}

// OriginTable records every origin discovered during the analysis,
// independent of the context policy in use.
type OriginTable struct {
	Origins []*Origin
	byObj   map[ObjID]OriginID
}

func newOriginTable() *OriginTable {
	t := &OriginTable{byObj: map[ObjID]OriginID{}}
	t.Origins = append(t.Origins, &Origin{ID: MainOrigin, Kind: KindMain, Site: -1})
	return t
}

// Get returns the origin with the given ID.
func (t *OriginTable) Get(id OriginID) *Origin { return t.Origins[id] }

// ByObj returns the origin whose origin object is obj, or (0, false).
func (t *OriginTable) ByObj(obj ObjID) (OriginID, bool) {
	id, ok := t.byObj[obj]
	return id, ok
}

// Len returns the number of origins including main.
func (t *OriginTable) Len() int { return len(t.Origins) }

func (t *OriginTable) add(o *Origin) OriginID {
	o.ID = OriginID(len(t.Origins))
	t.Origins = append(t.Origins, o)
	if o.Obj != 0 {
		t.byObj[o.Obj] = o.ID
	}
	return o.ID
}
