package pta_test

import (
	"testing"

	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/pta"
)

func solve(t *testing.T, src string, pol pta.Policy) *pta.Analysis {
	t.Helper()
	prog, err := lang.Compile("t.mini", src, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	a := pta.New(prog, pta.Config{Policy: pol, Entries: ir.DefaultEntryConfig()})
	if err := a.Solve(); err != nil {
		t.Fatalf("solve: %v", err)
	}
	return a
}

func origin1() pta.Policy { return pta.Policy{Kind: pta.KOrigin, K: 1} }

// ptsOf returns the points-to set of a variable in a function, under the
// single context the function is reachable in (test programs arrange one).
func ptsOf(t *testing.T, a *pta.Analysis, fnName, varName string) []uint32 {
	t.Helper()
	fn := a.Prog.LookupFunc(fnName)
	if fn == nil {
		t.Fatalf("no function %s", fnName)
	}
	var out []uint32
	found := false
	for id := 0; id < a.CG.NumNodes(); id++ {
		fc := a.CG.Get(pta.FnCtxID(id))
		if fc.Fn == fn {
			pts := a.PointsTo(fn.Var(varName), fc.Ctx)
			out = append(out, pts.Slice()...)
			found = true
		}
	}
	if !found {
		t.Fatalf("%s not reachable", fnName)
	}
	return out
}

// Rule ①②: allocation and copy.
func TestRuleAllocCopy(t *testing.T) {
	a := solve(t, `
class C { }
main {
  x = new C();
  y = x;
  z = y;
}
`, origin1())
	if got := ptsOf(t, a, "main", "z"); len(got) != 1 {
		t.Fatalf("pts(z) = %v, want one object", got)
	}
	if a.NumObjs() != 1 {
		t.Errorf("one allocation should intern one object, got %d", a.NumObjs())
	}
}

// Rule ③④: field store and load flow through the heap.
func TestRuleFieldStoreLoad(t *testing.T) {
	a := solve(t, `
class Box { field v; }
class C { }
main {
  b = new Box();
  c = new C();
  b.v = c;
  out = b.v;
}
`, origin1())
	got := ptsOf(t, a, "main", "out")
	want := ptsOf(t, a, "main", "c")
	if len(got) != 1 || len(want) != 1 || got[0] != want[0] {
		t.Errorf("field round-trip: pts(out)=%v pts(c)=%v", got, want)
	}
}

// Rule ⑤⑥: arrays are a single * field — all elements conflate.
func TestRuleArrays(t *testing.T) {
	a := solve(t, `
class C { }
class D { }
main {
  arr = new Arr();
  c = new C();
  d = new D();
  arr[0] = c;
  arr[1] = d;
  out = arr[99];
}
`, origin1())
	if got := ptsOf(t, a, "main", "out"); len(got) != 2 {
		t.Errorf("array load should see both stores: %v", got)
	}
}

// Rule ⑦: virtual dispatch by receiver type.
func TestRuleVirtualDispatch(t *testing.T) {
	a := solve(t, `
class Animal { speak() { r = new AnimalSound(); return r; } }
class Dog extends Animal { speak() { r = new DogSound(); return r; } }
main {
  d = new Dog();
  s = d.speak();
}
`, origin1())
	dog := a.Prog.Classes["Dog"]
	got := ptsOf(t, a, "main", "s")
	if len(got) != 1 {
		t.Fatalf("pts(s) = %v", got)
	}
	if cls := a.Obj(pta.ObjID(got[0])).Class().Name; cls != "DogSound" {
		t.Errorf("dispatch reached %s, want DogSound (receiver %s)", cls, dog)
	}
	if a.Prog.LookupFunc("Animal.speak") == nil {
		t.Fatal("setup broken")
	}
	// Animal.speak must NOT be reachable: only Dog instances exist.
	for id := 0; id < a.CG.NumNodes(); id++ {
		if a.CG.Get(pta.FnCtxID(id)).Fn.Name == "Animal.speak" {
			t.Errorf("Animal.speak should be unreachable")
		}
	}
}

// Static (free-function) calls bind parameters and returns.
func TestStaticCallBinding(t *testing.T) {
	a := solve(t, `
class C { }
func id(p) { return p; }
main {
  c = new C();
  r = id(c);
}
`, origin1())
	got := ptsOf(t, a, "main", "r")
	if len(got) != 1 {
		t.Errorf("return flow broken: %v", got)
	}
}

// Rule ⑧: origin allocations switch context — the Figure 3 scenario.
func TestOriginAllocContextSwitch(t *testing.T) {
	src := `
class T { field f; T() { this.f = new Box(); } run() { } }
class TA extends T { TA() { super(); } }
class TB extends T { TB() { super(); } }
main {
  a = new TA();
  b = new TB();
  a.start();
  b.start();
}
`
	// Under origins: two Box objects (one per origin).
	a := solve(t, src, origin1())
	boxes := 0
	for o := 1; o <= a.NumObjs(); o++ {
		if a.Obj(pta.ObjID(o)).Class().Name == "Box" {
			boxes++
		}
	}
	if boxes != 2 {
		t.Errorf("OPA should split the super-constructor allocation per origin: %d Boxes", boxes)
	}

	// Under 0-ctx: a single conflated Box.
	a0 := solve(t, src, pta.Policy{Kind: pta.Insensitive})
	boxes = 0
	for o := 1; o <= a0.NumObjs(); o++ {
		if a0.Obj(pta.ObjID(o)).Class().Name == "Box" {
			boxes++
		}
	}
	if boxes != 1 {
		t.Errorf("0-ctx should conflate the Box: %d", boxes)
	}
}

// Rule ⑨: origin entries spawn new origins; attributes flow in.
func TestOriginEntrySpawn(t *testing.T) {
	a := solve(t, `
class S { }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; }
}
main {
  s = new S();
  w1 = new W(s);
  w2 = new W(s);
  w1.start();
  w2.start();
}
`, origin1())
	if a.Origins.Len() != 3 {
		t.Fatalf("want main + 2 origins, got %d", a.Origins.Len())
	}
	spawns := 0
	for id := 0; id < a.CG.NumNodes(); id++ {
		for _, e := range a.CG.Out(pta.FnCtxID(id)) {
			if e.Kind == pta.EdgeSpawn {
				spawns++
			}
		}
	}
	if spawns != 2 {
		t.Errorf("want 2 spawn edges, got %d", spawns)
	}
	// Both origins' runs see the same shared S but have distinct contexts.
	got := ptsOf(t, a, "W.run", "x")
	if len(got) != 2 { // visited under two contexts, same object twice
		t.Errorf("run contexts = %v", got)
	}
	if got[0] != got[1] {
		t.Errorf("both origins should see the same shared S")
	}
}

// Join statements create join edges.
func TestJoinEdges(t *testing.T) {
	a := solve(t, `
class W { run() { } }
main {
  w = new W();
  w.start();
  w.join();
}
`, origin1())
	joins := 0
	for id := 0; id < a.CG.NumNodes(); id++ {
		for _, e := range a.CG.Out(pta.FnCtxID(id)) {
			if e.Kind == pta.EdgeJoin && e.Origin != pta.MainOrigin {
				joins++
			}
		}
	}
	if joins != 1 {
		t.Errorf("want 1 join edge, got %d", joins)
	}
}

// The wrapper k=1 extension: origins created through the same wrapper from
// different call sites stay distinct under OPA.
func TestWrapperCallSiteExtension(t *testing.T) {
	src := `
class S { }
class W {
  field s;
  W(s) { this.s = s; }
  run() { d = new Local(); d.v = this; }
}
class Local { field v; }
func spawn(s) {
  w = new W(s);
  w.start();
  return w;
}
main {
  s1 = new S();
  s2 = new S();
  a = spawn(s1);
  b = spawn(s2);
}
`
	a := solve(t, src, origin1())
	workerOrigins := 0
	for _, org := range a.Origins.Origins {
		if org.Kind == pta.KindThread {
			workerOrigins++
		}
	}
	if workerOrigins != 2 {
		t.Errorf("wrapper extension should create 2 origins, got %d", workerOrigins)
	}
	// Per-origin Local objects must not conflate.
	locals := 0
	for o := 1; o <= a.NumObjs(); o++ {
		if a.Obj(pta.ObjID(o)).Class().Name == "Local" {
			locals++
		}
	}
	if locals != 2 {
		t.Errorf("per-origin locals conflated through the wrapper: %d", locals)
	}
}

// Loop-allocated origins become twin origins under OPA (§3.2).
func TestLoopOriginTwins(t *testing.T) {
	a := solve(t, `
class W { run() { } }
main {
  while (i) {
    w = new W();
    w.start();
  }
}
`, origin1())
	threads := 0
	for _, org := range a.Origins.Origins {
		if org.Kind == pta.KindThread {
			threads++
			if org.Replicated {
				t.Errorf("OPA twins should not use the replication flag")
			}
		}
	}
	if threads != 2 {
		t.Errorf("loop origin should have a twin: %d thread origins", threads)
	}

	// Under 0-ctx the same program keeps one origin with the flag.
	a0 := solve(t, `
class W { run() { } }
main {
  while (i) {
    w = new W();
    w.start();
  }
}
`, pta.Policy{Kind: pta.Insensitive})
	threads = 0
	for _, org := range a0.Origins.Origins {
		if org.Kind == pta.KindThread {
			threads++
			if !org.Replicated {
				t.Errorf("0-ctx loop origin must carry the replication flag")
			}
		}
	}
	if threads != 1 {
		t.Errorf("0-ctx should keep one flagged origin, got %d", threads)
	}
}

// k-CFA separates allocations per call path only up to depth k.
func TestKCFADepthWindow(t *testing.T) {
	src := `
class Box { }
func l1(a) { r = l2(a); return r; }
func l2(a) { r = new Box(); return r; }
main {
  x1 = l1(null);   // path A
  x2 = l1(null);   // path B
  y1 = l2(null);   // direct
}
`
	// 1-CFA: l2 contexts = {site in l1, direct site} → 2 Boxes;
	a1 := solve(t, src, pta.Policy{Kind: pta.KCFA, K: 1})
	if n := countClass(a1, "Box"); n != 2 {
		t.Errorf("1-CFA Boxes = %d, want 2", n)
	}
	// 2-CFA: paths (mainA,l1), (mainB,l1), (main,direct) → 3 Boxes.
	a2 := solve(t, src, pta.Policy{Kind: pta.KCFA, K: 2})
	if n := countClass(a2, "Box"); n != 3 {
		t.Errorf("2-CFA Boxes = %d, want 3", n)
	}
	// 0-ctx: 1 Box.
	a0 := solve(t, src, pta.Policy{Kind: pta.Insensitive})
	if n := countClass(a0, "Box"); n != 1 {
		t.Errorf("0-ctx Boxes = %d, want 1", n)
	}
}

// k-obj separates allocations by receiver chain.
func TestKObjReceiverSeparation(t *testing.T) {
	src := `
class H { mk() { b = new Box(); return b; } }
main {
  h1 = new H();
  h2 = new H();
  x = h1.mk();
  y = h2.mk();
}
`
	a1 := solve(t, src, pta.Policy{Kind: pta.KObj, K: 1})
	if n := countClass(a1, "Box"); n != 2 {
		t.Errorf("1-obj Boxes = %d, want 2 (per-receiver)", n)
	}
	a0 := solve(t, src, pta.Policy{Kind: pta.Insensitive})
	if n := countClass(a0, "Box"); n != 1 {
		t.Errorf("0-ctx Boxes = %d, want 1", n)
	}
	// A single receiver conflates under k-obj regardless of k: the
	// singleton pattern origins can separate but receivers cannot.
	single := `
class H { mk() { b = new Box(); return b; } }
class W {
  field h;
  W(h) { this.h = h; }
  run() { x = this.h; b = x.mk(); b.v = this; }
}
class Box { field v; }
main {
  h = new H();
  w1 = new W(h);
  w2 = new W(h);
  w1.start();
  w2.start();
}
`
	aObj := solve(t, single, pta.Policy{Kind: pta.KObj, K: 2})
	if n := countClass(aObj, "Box"); n != 1 {
		t.Errorf("2-obj should conflate singleton-made Boxes: %d", n)
	}
	aOri := solve(t, single, origin1())
	if n := countClass(aOri, "Box"); n != 2 {
		t.Errorf("origins should separate singleton-made Boxes per origin: %d", n)
	}
}

// K-origin: nested spawns distinguish grandchildren when k ≥ 2.
func TestKOriginNesting(t *testing.T) {
	src := `
class Inner {
  run() { d = new Deep(); d.v = this; }
}
class Outer {
  run() {
    i = new Inner();
    i.start();
  }
}
class Deep { field v; }
main {
  o1 = new Outer();
  o2 = new Outer();
  o1.start();
  o2.start();
}
`
	// With k=1, the Inner origins of both Outers share the allocation-site
	// identity and conflate their Deep objects... they are distinguished by
	// wrapper site only if allocation sites differ. Here Inner is allocated
	// at ONE site inside Outer.run, so 1-origin merges both inners.
	a1 := solve(t, src, pta.Policy{Kind: pta.KOrigin, K: 1})
	n1 := countClass(a1, "Deep")
	// k=2 keeps the parent origin in the chain: two Inner origins.
	a2 := solve(t, src, pta.Policy{Kind: pta.KOrigin, K: 2})
	n2 := countClass(a2, "Deep")
	if !(n2 > n1) {
		t.Errorf("2-origin should split nested origins: k=1 %d Deep, k=2 %d Deep", n1, n2)
	}
}

// Budget enforcement.
func TestStepBudget(t *testing.T) {
	prog, err := lang.Compile("t.mini", `
class C { field f; }
main {
  a = new C();
  b = new C();
  a.f = b;
  x = a.f;
}
`, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := pta.New(prog, pta.Config{Policy: origin1(), Entries: ir.DefaultEntryConfig(), StepBudget: 1})
	if err := a.Solve(); err != pta.ErrBudget {
		t.Errorf("want ErrBudget, got %v", err)
	}
	if !a.Stats().TimedOut {
		t.Errorf("stats should record the timeout")
	}
}

// Null flows nowhere; calls on null receivers are no-ops.
func TestNullReceiver(t *testing.T) {
	a := solve(t, `
class C { m() { } }
main {
  x = null;
  x.m();
}
`, origin1())
	if a.CG.NumNodes() != 1 {
		t.Errorf("call on null should resolve no targets: %d nodes", a.CG.NumNodes())
	}
}

// Static fields flow across origins.
func TestStaticFieldFlow(t *testing.T) {
	a := solve(t, `
class G { static field shared; }
class C { }
class W {
  run() { x = G.shared; }
}
main {
  c = new C();
  G.shared = c;
  w = new W();
  w.start();
}
`, origin1())
	got := ptsOf(t, a, "W.run", "x")
	if len(got) != 1 {
		t.Errorf("static flow broken: %v", got)
	}
}

func countClass(a *pta.Analysis, cls string) int {
	n := 0
	for o := 1; o <= a.NumObjs(); o++ {
		if a.Obj(pta.ObjID(o)).Class().Name == cls {
			n++
		}
	}
	return n
}

// TimeBudget aborts long analyses like StepBudget does.
func TestTimeBudget(t *testing.T) {
	prog, err := lang.Compile("t.mini", `
class C { field f; }
func touch(a, d) {
  a.f = d;
  r = a.f;
  return r;
}
main {
  a = new C();
  d = new C();
  x = touch(a, d);
  y = touch(a, x);
}
`, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := pta.New(prog, pta.Config{
		Policy:     pta.Policy{Kind: pta.KOrigin, K: 1},
		Entries:    ir.DefaultEntryConfig(),
		TimeBudget: 1, // nanosecond: expires before the first deadline check passes
	})
	err = a.Solve()
	// The deadline is only polled every 4096 steps; tiny programs may
	// finish first. Either a clean finish or ErrBudget is acceptable, any
	// other error is not.
	if err != nil && err != pta.ErrBudget {
		t.Fatalf("unexpected error: %v", err)
	}
}

// Indirect calls respect the context policy: a function pointer invoked
// from two origins analyzes its target per origin under OPA.
func TestIndirectCallPerOriginContexts(t *testing.T) {
	src := `
class Box { field v; }
func mk(a) {
  b = new Box();
  b.v = a;
  return b;
}
class W {
  field fp;
  W(fp) { this.fp = fp; }
  run() {
    f = this.fp;
    b = f(this);
  }
}
main {
  fp = &mk;
  w1 = new W(fp);
  w2 = new W(fp);
  w1.start();
  w2.start();
}
`
	a := solve(t, src, origin1())
	if n := countClass(a, "Box"); n != 2 {
		t.Errorf("indirect target should analyze per origin: %d Boxes", n)
	}
	a0 := solve(t, src, pta.Policy{Kind: pta.Insensitive})
	if n := countClass(a0, "Box"); n != 1 {
		t.Errorf("0-ctx should conflate: %d Boxes", n)
	}
}
