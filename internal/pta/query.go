package pta

import (
	"fmt"
	"sort"
	"strings"

	"o2/internal/ir"
)

// Stats summarizes an analysis run (the #Pointer / #Object / #Edge columns
// of the paper's Table 6).
type Stats struct {
	Policy   string
	Pointers int // variable nodes created (contexted pointers)
	Objects  int // abstract heap objects
	Edges    int // PAG edges
	Contexts int // interned contexts
	CGNodes  int // reachable contexted functions
	CGEdges  int
	Origins  int
	Steps    int64
	// Iterations counts worklist pops; Constraints counts registered
	// load/store/call constraints and distinct PAG edges.
	Iterations  int64
	Constraints int64
	TimedOut    bool
	Replicated  int
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: %d pointers, %d objects, %d edges, %d ctxs, cg %d/%d, %d origins",
		s.Policy, s.Pointers, s.Objects, s.Edges, s.Contexts, s.CGNodes, s.CGEdges, s.Origins)
}

// Stats returns run statistics.
func (a *Analysis) Stats() Stats {
	vars := 0
	for _, n := range a.heap.nodes {
		if n.kind == nodeVar {
			vars++
		}
	}
	repl := 0
	for _, o := range a.Origins.Origins {
		if o.Replicated {
			repl++
		}
	}
	return Stats{
		Policy:      a.Cfg.Policy.Name(),
		Pointers:    vars,
		Objects:     a.heap.NumObjs(),
		Edges:       a.numEdges,
		Contexts:    len(a.ctxs.elems),
		CGNodes:     a.CG.NumNodes(),
		CGEdges:     a.CG.Edges,
		Origins:     a.Origins.Len(),
		Steps:       a.steps,
		Iterations:  a.iterations,
		Constraints: a.constraints,
		TimedOut:    a.err == ErrBudget,
		Replicated:  repl,
	}
}

var emptyBits Bits

// PointsTo returns the points-to set of variable v under context ctx. The
// returned set must not be modified. Returns an empty set if the node does
// not exist.
func (a *Analysis) PointsTo(v *ir.Var, ctx CtxID) *Bits {
	if id, ok := a.heap.varIdx[varKey{v, ctx}]; ok {
		return &a.pts[id]
	}
	return &emptyBits
}

// FieldPointsTo returns the points-to set of ⟨obj⟩.field.
func (a *Analysis) FieldPointsTo(obj ObjID, field string) *Bits {
	if id, ok := a.heap.fldIdx[fieldKey{obj, field}]; ok {
		return &a.pts[id]
	}
	return &emptyBits
}

// StaticPointsTo returns the points-to set of static field "Class.field".
func (a *Analysis) StaticPointsTo(sig string) *Bits {
	if id, ok := a.heap.statIdx[sig]; ok {
		return &a.pts[id]
	}
	return &emptyBits
}

// Obj returns the descriptor of an abstract object.
func (a *Analysis) Obj(id ObjID) *ObjInfo { return a.heap.obj(id) }

// NumObjs returns the number of abstract objects.
func (a *Analysis) NumObjs() int { return a.heap.NumObjs() }

// CtxString renders a context for diagnostics.
func (a *Analysis) CtxString(ctx CtxID) string { return a.ctxs.String(ctx) }

// ObjString renders an abstract object as ⟨site@pos, ctx⟩.
func (a *Analysis) ObjString(id ObjID) string {
	o := a.heap.obj(id)
	return fmt.Sprintf("o%d(%s@%s)", id, o.Class().Name, o.Pos())
}

// OriginOfCtx maps an analysis context back to the origin whose code runs
// under it. For the KOrigin policy the mapping is direct; for other
// policies it returns false (callers must track origins during call-graph
// traversal instead).
func (a *Analysis) OriginOfCtx(ctx CtxID) (OriginID, bool) {
	if a.Cfg.Policy.Kind != KOrigin {
		return 0, false
	}
	chain, _ := a.originChain(ctx)
	if chain == EmptyCtx {
		return MainOrigin, true
	}
	for _, o := range a.Origins.Origins {
		if o.Ctx == chain {
			return o.ID, true
		}
	}
	return 0, false
}

// OriginAttrs renders the attribute pointers of an origin: each attribute
// variable with the allocation sites it may point to. This is the
// user-facing part of the origin abstraction (§3.1). The rendered object
// set is sorted so the string is byte-stable across runs — race witnesses
// embed it and are golden-tested.
func (a *Analysis) OriginAttrs(id OriginID) string {
	o := a.Origins.Get(id)
	if len(o.AttrVars) == 0 {
		return "()"
	}
	parts := make([]string, 0, len(o.AttrVars))
	for _, v := range o.AttrVars {
		pts := a.PointsTo(v, o.AttrCtx)
		objs := make([]string, 0, pts.Len())
		pts.ForEach(func(ob uint32) { objs = append(objs, a.ObjString(ObjID(ob))) })
		sort.Strings(objs)
		parts = append(parts, fmt.Sprintf("%s→{%s}", v.Name, strings.Join(objs, ",")))
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ReachableFuncs returns the distinct functions reachable in the call
// graph, sorted by name.
func (a *Analysis) ReachableFuncs() []*ir.Func {
	seen := map[*ir.Func]bool{}
	var out []*ir.Func
	for _, fc := range a.CG.nodes {
		if !seen[fc.Fn] {
			seen[fc.Fn] = true
			out = append(out, fc.Fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// OriginCGNodes returns, indexed by OriginID, the number of call-graph
// nodes (contexted functions) running under each origin's context — the
// per-origin measure of pointer-analysis and call-graph work. Contexts
// that cannot be attributed (non-KOrigin policies, unresolved chains)
// land on MainOrigin, so the counts always sum to the call-graph size.
func (a *Analysis) OriginCGNodes() []int64 {
	out := make([]int64, a.Origins.Len())
	if len(out) == 0 {
		return out
	}
	cache := map[CtxID]OriginID{}
	for _, fc := range a.CG.nodes {
		id, ok := cache[fc.Ctx]
		if !ok {
			id = MainOrigin
			if o, attributed := a.OriginOfCtx(fc.Ctx); attributed {
				id = o
			}
			cache[fc.Ctx] = id
		}
		out[id]++
	}
	return out
}

// MainNode returns the call-graph node of the program entry.
func (a *Analysis) MainNode() FnCtxID {
	id, _ := a.CG.Lookup(a.Prog.Main, EmptyCtx)
	return id
}

// ForEachFieldNode invokes fn for every object-field node in the PAG with
// its points-to set, in unspecified order.
func (a *Analysis) ForEachFieldNode(fn func(obj ObjID, field string, pts *Bits)) {
	for k, id := range a.heap.fldIdx {
		fn(k.obj, k.field, &a.pts[id])
	}
}

// ForEachStaticNode invokes fn for every static-field node in the PAG.
func (a *Analysis) ForEachStaticNode(fn func(sig string, pts *Bits)) {
	for sig, id := range a.heap.statIdx {
		fn(sig, &a.pts[id])
	}
}

// MayAlias reports whether two contexted variables may point to a common
// object.
func (a *Analysis) MayAlias(v1 *ir.Var, c1 CtxID, v2 *ir.Var, c2 CtxID) bool {
	return a.PointsTo(v1, c1).Intersects(a.PointsTo(v2, c2))
}
