package pta

import (
	"fmt"

	"o2/internal/ir"
)

// ObjID identifies an interned abstract heap object ⟨allocSite, heapCtx⟩.
// ObjID 0 is reserved (no object).
type ObjID uint32

// NodeID identifies a node in the pointer assignment graph (PAG): a
// contexted variable, an object field, or a static field.
type NodeID uint32

// ObjKind classifies abstract objects.
type ObjKind uint8

const (
	// ObjHeap is an ordinary heap allocation.
	ObjHeap ObjKind = iota
	// ObjFunc is a function object created by &f (C-style function
	// pointers — the paper's "indirect function targets").
	ObjFunc
	// ObjHandle is a pthread_create/event_register handle; it doubles as
	// the origin object of the spawned origin.
	ObjHandle
	// ObjChan is a channel created by "c = chan(cap)". Its element slot is
	// the synthetic field ChanElemField; Cap records the declared capacity
	// (0 = unbuffered rendezvous).
	ObjChan
)

// ChanElemField is the synthetic field name modeling a channel's element
// slot: send stores through it, recv loads from it.
const ChanElemField = "$elem"

// ObjInfo describes an abstract object: a heap allocation, a function
// object, or a thread/event handle.
type ObjInfo struct {
	Kind  ObjKind
	Site  int       // allocation-site ID (heap) or builtin-call pseudo-site
	Ctx   CtxID     // heap context
	Alloc *ir.Alloc // heap objects only
	Fn    *ir.Func  // ObjFunc: the function; ObjHandle: the entry function
	Cap   int       // ObjChan: declared capacity (0 = unbuffered)
	pos   ir.Pos
}

var (
	funcClass   = &ir.Class{Name: "$func"}
	handleClass = &ir.Class{Name: "$pthread"}
	chanClass   = &ir.Class{Name: "$chan"}
)

// Class returns the allocated class (pseudo-classes for function, handle
// and channel objects).
func (o *ObjInfo) Class() *ir.Class {
	switch o.Kind {
	case ObjFunc:
		return funcClass
	case ObjHandle:
		return handleClass
	case ObjChan:
		return chanClass
	}
	return o.Alloc.Class
}

// Pos returns the source position of the object's creation site.
func (o *ObjInfo) Pos() ir.Pos { return o.pos }

type objKey struct {
	site int
	ctx  CtxID
}

type varKey struct {
	v   *ir.Var
	ctx CtxID
}

type fieldKey struct {
	obj   ObjID
	field string
}

// heap interns abstract objects and PAG nodes.
type heap struct {
	objs      []ObjInfo // ObjID -> info; index 0 unused
	objIdx    map[objKey]ObjID
	funcIdx   map[*ir.Func]ObjID
	handleIdx map[objKey]ObjID
	varIdx    map[varKey]NodeID
	fldIdx    map[fieldKey]NodeID
	statIdx   map[string]NodeID
	nodes     []nodeInfo // NodeID -> info
}

type nodeKind uint8

const (
	nodeVar nodeKind = iota
	nodeField
	nodeStatic
)

type nodeInfo struct {
	kind  nodeKind
	v     *ir.Var // nodeVar
	ctx   CtxID   // nodeVar
	obj   ObjID   // nodeField
	field string  // nodeField / nodeStatic signature
}

func newHeap() *heap {
	return &heap{
		objs:      make([]ObjInfo, 1),
		objIdx:    map[objKey]ObjID{},
		funcIdx:   map[*ir.Func]ObjID{},
		handleIdx: map[objKey]ObjID{},
		varIdx:    map[varKey]NodeID{},
		fldIdx:    map[fieldKey]NodeID{},
		statIdx:   map[string]NodeID{},
	}
}

// internObj returns the ObjID for ⟨site, ctx⟩, creating it if new. The
// second result reports whether the object is new.
func (h *heap) internObj(a *ir.Alloc, ctx CtxID) (ObjID, bool) {
	k := objKey{a.Site, ctx}
	if id, ok := h.objIdx[k]; ok {
		return id, false
	}
	id := ObjID(len(h.objs))
	h.objs = append(h.objs, ObjInfo{Kind: ObjHeap, Site: a.Site, Ctx: ctx, Alloc: a, pos: a.Pos()})
	h.objIdx[k] = id
	return id, true
}

// internFuncObj returns the (context-free) function object for fn.
func (h *heap) internFuncObj(fn *ir.Func, pos ir.Pos) ObjID {
	if id, ok := h.funcIdx[fn]; ok {
		return id
	}
	id := ObjID(len(h.objs))
	h.objs = append(h.objs, ObjInfo{Kind: ObjFunc, Site: -1, Fn: fn, pos: pos})
	h.funcIdx[fn] = id
	return id
}

// internHandleObj returns the handle/origin object for a
// pthread_create/event_register pseudo-site under ctx.
func (h *heap) internHandleObj(site int, ctx CtxID, entry *ir.Func, pos ir.Pos) (ObjID, bool) {
	k := objKey{site, ctx}
	if id, ok := h.handleIdx[k]; ok {
		return id, false
	}
	id := ObjID(len(h.objs))
	h.objs = append(h.objs, ObjInfo{Kind: ObjHandle, Site: site, Ctx: ctx, Fn: entry, pos: pos})
	h.handleIdx[k] = id
	return id, true
}

// internChanObj returns the channel object for a ChanMake site under ctx.
// ChanMake shares the allocation-site namespace with Alloc, so objIdx keys
// never collide with heap objects.
func (h *heap) internChanObj(in *ir.ChanMake, ctx CtxID) (ObjID, bool) {
	k := objKey{in.Site, ctx}
	if id, ok := h.objIdx[k]; ok {
		return id, false
	}
	id := ObjID(len(h.objs))
	h.objs = append(h.objs, ObjInfo{Kind: ObjChan, Site: in.Site, Ctx: ctx, Cap: in.Cap, pos: in.Pos()})
	h.objIdx[k] = id
	return id, true
}

func (h *heap) obj(id ObjID) *ObjInfo { return &h.objs[id] }

// NumObjs returns the number of abstract objects created.
func (h *heap) NumObjs() int { return len(h.objs) - 1 }

func (h *heap) varNode(v *ir.Var, ctx CtxID) NodeID {
	k := varKey{v, ctx}
	if id, ok := h.varIdx[k]; ok {
		return id
	}
	id := h.newNode(nodeInfo{kind: nodeVar, v: v, ctx: ctx})
	h.varIdx[k] = id
	return id
}

func (h *heap) fieldNode(obj ObjID, field string) NodeID {
	k := fieldKey{obj, field}
	if id, ok := h.fldIdx[k]; ok {
		return id
	}
	id := h.newNode(nodeInfo{kind: nodeField, obj: obj, field: field})
	h.fldIdx[k] = id
	return id
}

func (h *heap) staticNode(sig string) NodeID {
	if id, ok := h.statIdx[sig]; ok {
		return id
	}
	id := h.newNode(nodeInfo{kind: nodeStatic, field: sig})
	h.statIdx[sig] = id
	return id
}

func (h *heap) newNode(ni nodeInfo) NodeID {
	id := NodeID(len(h.nodes))
	h.nodes = append(h.nodes, ni)
	return id
}

// NumNodes returns the number of PAG nodes created.
func (h *heap) NumNodes() int { return len(h.nodes) }

func (h *heap) nodeString(id NodeID, ctxs *ctxTable) string {
	n := h.nodes[id]
	switch n.kind {
	case nodeVar:
		return fmt.Sprintf("⟨%s,%s⟩", n.v, ctxs.String(n.ctx))
	case nodeField:
		o := h.obj(n.obj)
		return fmt.Sprintf("⟨o%d@%d,%s⟩.%s", n.obj, o.Site, ctxs.String(o.Ctx), n.field)
	default:
		return n.field
	}
}
