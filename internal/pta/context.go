package pta

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// CtxID identifies an interned analysis context. Context 0 is always the
// empty context.
type CtxID uint32

// EmptyCtx is the empty (context-insensitive / main-origin) context.
const EmptyCtx CtxID = 0

// ctxTable interns context element strings. A context is a sequence of
// uint64 elements whose meaning depends on the policy:
//   - k-CFA: call-site IDs;
//   - k-obj: allocation-site IDs of the receiver chain;
//   - origin: origin elements, each (allocSite<<20 | wrapperCallSite+1),
//     so origins allocated through the same wrapper from different call
//     sites stay distinct (the paper's k=1 call-site extension).
type ctxTable struct {
	elems [][]uint64
	index map[string]CtxID
}

func newCtxTable() *ctxTable {
	t := &ctxTable{index: map[string]CtxID{}}
	t.elems = append(t.elems, nil) // CtxID 0 = empty
	t.index[""] = 0
	return t
}

func ctxKey(elems []uint64) string {
	if len(elems) == 0 {
		return ""
	}
	buf := make([]byte, 8*len(elems))
	for i, e := range elems {
		binary.LittleEndian.PutUint64(buf[i*8:], e)
	}
	return string(buf)
}

// Intern returns the CtxID for the element sequence, creating it if new.
func (t *ctxTable) Intern(elems []uint64) CtxID {
	k := ctxKey(elems)
	if id, ok := t.index[k]; ok {
		return id
	}
	id := CtxID(len(t.elems))
	cp := make([]uint64, len(elems))
	copy(cp, elems)
	t.elems = append(t.elems, cp)
	t.index[k] = id
	return id
}

// Elems returns the element sequence of ctx. The returned slice must not be
// modified.
func (t *ctxTable) Elems(ctx CtxID) []uint64 { return t.elems[ctx] }

// Append returns the context ctx extended with elem, truncated to the most
// recent k elements (k <= 0 means unbounded).
func (t *ctxTable) Append(ctx CtxID, elem uint64, k int) CtxID {
	old := t.elems[ctx]
	elems := make([]uint64, 0, len(old)+1)
	elems = append(elems, old...)
	elems = append(elems, elem)
	if k > 0 && len(elems) > k {
		elems = elems[len(elems)-k:]
	}
	return t.Intern(elems)
}

// Truncate returns ctx limited to its most recent k elements.
func (t *ctxTable) Truncate(ctx CtxID, k int) CtxID {
	elems := t.elems[ctx]
	if k <= 0 {
		return t.Intern(nil)
	}
	if len(elems) <= k {
		return ctx
	}
	return t.Intern(elems[len(elems)-k:])
}

func (t *ctxTable) String(ctx CtxID) string {
	elems := t.elems[ctx]
	if len(elems) == 0 {
		return "[]"
	}
	parts := make([]string, len(elems))
	for i, e := range elems {
		parts[i] = fmt.Sprintf("%d", e)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// PolicyKind selects the context abstraction of the analysis.
type PolicyKind int

const (
	// Insensitive is the context-insensitive baseline (0-ctx in the paper).
	Insensitive PolicyKind = iota
	// KCFA is k-call-site sensitivity with heap context.
	KCFA
	// KObj is k-object sensitivity with heap context.
	KObj
	// KOrigin is the paper's origin-sensitivity (OPA); k is the origin
	// nesting depth (k=1 in the paper's main configuration).
	KOrigin
)

func (k PolicyKind) String() string {
	switch k {
	case Insensitive:
		return "0-ctx"
	case KCFA:
		return "k-CFA"
	case KObj:
		return "k-obj"
	case KOrigin:
		return "k-origin"
	}
	return "unknown"
}

// Policy configures the context abstraction: the kind and its depth k.
type Policy struct {
	Kind PolicyKind
	K    int
}

// Name returns a short display name such as "2-CFA" or "1-origin".
func (p Policy) Name() string {
	switch p.Kind {
	case Insensitive:
		return "0-ctx"
	case KCFA:
		return fmt.Sprintf("%d-CFA", p.K)
	case KObj:
		return fmt.Sprintf("%d-obj", p.K)
	case KOrigin:
		return fmt.Sprintf("%d-origin", p.K)
	}
	return "unknown"
}

// originElem packs an origin allocation site and the 1-call-site wrapper
// extension into a context element.
func originElem(allocSite, wrapperSite int) uint64 {
	return uint64(allocSite)<<20 | uint64(wrapperSite+1)
}
