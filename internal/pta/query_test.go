package pta_test

import (
	"strings"
	"testing"

	"o2/internal/pta"
)

const queryProgram = `
class S { field data; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { x = this.s; x.data = this; }
}
main {
  s = new S();
  w1 = new W(s);
  w2 = new W(s);
  w1.start();
  w2.start();
}
`

func TestStatsPopulated(t *testing.T) {
	a := solve(t, queryProgram, origin1())
	st := a.Stats()
	if st.Policy != "1-origin" {
		t.Errorf("policy name %q", st.Policy)
	}
	if st.Pointers == 0 || st.Objects != 3 || st.Edges == 0 || st.Origins != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.CGNodes == 0 || st.CGEdges == 0 || st.Steps == 0 {
		t.Errorf("call-graph stats empty: %+v", st)
	}
	if st.TimedOut {
		t.Errorf("run did not time out")
	}
	if s := st.String(); !strings.Contains(s, "1-origin") {
		t.Errorf("Stats.String() = %q", s)
	}
}

func TestOriginAttrsRendering(t *testing.T) {
	a := solve(t, queryProgram, origin1())
	for _, org := range a.Origins.Origins {
		if org.Kind != pta.KindThread {
			continue
		}
		attrs := a.OriginAttrs(org.ID)
		if !strings.Contains(attrs, "s→") || !strings.Contains(attrs, "S@") {
			t.Errorf("origin attrs should show the shared S pointer: %q", attrs)
		}
	}
	if got := a.OriginAttrs(pta.MainOrigin); got != "()" {
		t.Errorf("main origin attrs = %q", got)
	}
}

func TestMayAlias(t *testing.T) {
	a := solve(t, `
class C { }
main {
  x = new C();
  y = x;
  z = new C();
}
`, origin1())
	main := a.Prog.Main
	if !a.MayAlias(main.Var("x"), pta.EmptyCtx, main.Var("y"), pta.EmptyCtx) {
		t.Errorf("x and y must alias")
	}
	if a.MayAlias(main.Var("x"), pta.EmptyCtx, main.Var("z"), pta.EmptyCtx) {
		t.Errorf("x and z must not alias")
	}
}

func TestReachableFuncs(t *testing.T) {
	a := solve(t, `
class C { used() { } unused() { } }
main {
  c = new C();
  c.used();
}
`, origin1())
	names := map[string]bool{}
	for _, f := range a.ReachableFuncs() {
		names[f.Name] = true
	}
	if !names["main"] || !names["C.used"] {
		t.Errorf("reachable funcs missing: %v", names)
	}
	if names["C.unused"] {
		t.Errorf("unused method should be unreachable")
	}
}

func TestOriginOfCtx(t *testing.T) {
	a := solve(t, queryProgram, origin1())
	if org, ok := a.OriginOfCtx(pta.EmptyCtx); !ok || org != pta.MainOrigin {
		t.Errorf("empty context must map to the main origin")
	}
	for _, org := range a.Origins.Origins {
		if org.Kind == pta.KindThread {
			got, ok := a.OriginOfCtx(org.Ctx)
			if !ok || got != org.ID {
				t.Errorf("OriginOfCtx(%v) = %v/%v, want %v", org.Ctx, got, ok, org.ID)
			}
		}
	}

	// Non-origin policies do not support the mapping.
	a0 := solve(t, queryProgram, pta.Policy{Kind: pta.Insensitive})
	if _, ok := a0.OriginOfCtx(pta.EmptyCtx); ok {
		t.Errorf("OriginOfCtx should refuse under 0-ctx")
	}
}

func TestObjAndCtxStrings(t *testing.T) {
	a := solve(t, queryProgram, origin1())
	if s := a.ObjString(1); !strings.Contains(s, "@") {
		t.Errorf("ObjString = %q", s)
	}
	if s := a.CtxString(pta.EmptyCtx); s != "[]" {
		t.Errorf("CtxString(empty) = %q", s)
	}
}

func TestFieldAndStaticPointsTo(t *testing.T) {
	a := solve(t, `
class G { static field root; }
class S { field child; }
main {
  s = new S();
  c = new S();
  s.child = c;
  G.root = s;
}
`, origin1())
	rootPts := a.StaticPointsTo("G.root")
	if rootPts.Len() != 1 {
		t.Fatalf("G.root pts = %d", rootPts.Len())
	}
	var sObj pta.ObjID
	rootPts.ForEach(func(o uint32) { sObj = pta.ObjID(o) })
	if a.FieldPointsTo(sObj, "child").Len() != 1 {
		t.Errorf("s.child pts = %d", a.FieldPointsTo(sObj, "child").Len())
	}
	if a.StaticPointsTo("G.unknown").Len() != 0 {
		t.Errorf("unknown static should have empty pts")
	}
	count := 0
	a.ForEachFieldNode(func(obj pta.ObjID, field string, pts *pta.Bits) { count++ })
	if count == 0 {
		t.Errorf("ForEachFieldNode visited nothing")
	}
	statics := 0
	a.ForEachStaticNode(func(sig string, pts *pta.Bits) {
		statics++
		if sig != "G.root" {
			t.Errorf("unexpected static %q", sig)
		}
	})
	if statics != 1 {
		t.Errorf("ForEachStaticNode visited %d", statics)
	}
}
