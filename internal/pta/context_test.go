package pta

import (
	"testing"
	"testing/quick"
)

func TestCtxTableInterning(t *testing.T) {
	tb := newCtxTable()
	if tb.Intern(nil) != EmptyCtx {
		t.Fatalf("empty context must intern to 0")
	}
	a := tb.Intern([]uint64{1, 2})
	b := tb.Intern([]uint64{1, 2})
	c := tb.Intern([]uint64{2, 1})
	if a != b {
		t.Errorf("equal contexts interned differently")
	}
	if a == c {
		t.Errorf("different contexts interned the same")
	}
	if got := tb.Elems(a); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Elems = %v", got)
	}
}

func TestCtxAppendTruncates(t *testing.T) {
	tb := newCtxTable()
	ctx := EmptyCtx
	for i := uint64(1); i <= 5; i++ {
		ctx = tb.Append(ctx, i, 2)
	}
	if got := tb.Elems(ctx); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("k=2 window = %v, want [4 5]", got)
	}
	// Unbounded append.
	ctx = EmptyCtx
	for i := uint64(1); i <= 5; i++ {
		ctx = tb.Append(ctx, i, 0)
	}
	if got := tb.Elems(ctx); len(got) != 5 {
		t.Errorf("unbounded append truncated: %v", got)
	}
}

func TestCtxTruncate(t *testing.T) {
	tb := newCtxTable()
	ctx := tb.Intern([]uint64{1, 2, 3})
	if got := tb.Elems(tb.Truncate(ctx, 2)); len(got) != 2 || got[0] != 2 {
		t.Errorf("Truncate(2) = %v", got)
	}
	if tb.Truncate(ctx, 5) != ctx {
		t.Errorf("Truncate beyond length must be identity")
	}
	if tb.Truncate(ctx, 0) != EmptyCtx {
		t.Errorf("Truncate(0) must be empty")
	}
}

// TestCtxQuickInterningBijective: interning the same element sequence twice
// yields the same ID, and distinct sequences yield distinct IDs.
func TestCtxQuickInterningBijective(t *testing.T) {
	tb := newCtxTable()
	seen := map[CtxID][]uint64{}
	f := func(elems []uint64) bool {
		if len(elems) > 8 {
			elems = elems[:8]
		}
		id := tb.Intern(elems)
		if id != tb.Intern(elems) {
			return false
		}
		if prev, ok := seen[id]; ok {
			if len(prev) != len(elems) {
				return false
			}
			for i := range prev {
				if prev[i] != elems[i] {
					return false
				}
			}
		}
		seen[id] = append([]uint64{}, elems...)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]Policy{
		"0-ctx":    {Kind: Insensitive},
		"2-CFA":    {Kind: KCFA, K: 2},
		"1-obj":    {Kind: KObj, K: 1},
		"1-origin": {Kind: KOrigin, K: 1},
	}
	for want, pol := range cases {
		if pol.Name() != want {
			t.Errorf("Name() = %q, want %q", pol.Name(), want)
		}
	}
}

func TestOriginElemDistinguishesWrapperSites(t *testing.T) {
	a := originElem(3, 10)
	b := originElem(3, 11)
	c := originElem(3, -1) // no wrapper
	if a == b || a == c || b == c {
		t.Errorf("origin elements must distinguish wrapper call sites")
	}
}
