package pta

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBitsBasics(t *testing.T) {
	var b Bits
	if !b.IsEmpty() || b.Len() != 0 || b.Has(0) {
		t.Fatalf("zero value should be empty")
	}
	if !b.Add(5) || b.Add(5) {
		t.Errorf("Add should report change exactly once")
	}
	if !b.Has(5) || b.Has(4) || b.Len() != 1 {
		t.Errorf("membership wrong after Add")
	}
	b.Add(64) // crosses a word boundary
	b.Add(1000)
	if got := b.Slice(); len(got) != 3 || got[0] != 5 || got[1] != 64 || got[2] != 1000 {
		t.Errorf("Slice = %v", got)
	}
}

func TestBitsUnionWith(t *testing.T) {
	var a, b Bits
	a.Add(1)
	a.Add(70)
	b.Add(70)
	b.Add(200)
	if !a.UnionWith(&b) {
		t.Errorf("union should change a")
	}
	if a.UnionWith(&b) {
		t.Errorf("second union should be a no-op")
	}
	want := []uint32{1, 70, 200}
	if got := a.Slice(); len(got) != len(want) {
		t.Errorf("union result = %v", got)
	}
}

func TestBitsIntersects(t *testing.T) {
	var a, b Bits
	a.Add(3)
	b.Add(900)
	if a.Intersects(&b) {
		t.Errorf("disjoint sets intersect")
	}
	b.Add(3)
	if !a.Intersects(&b) {
		t.Errorf("sets sharing 3 do not intersect")
	}
	var empty Bits
	if a.Intersects(&empty) || empty.Intersects(&a) {
		t.Errorf("empty set intersects")
	}
}

func TestBitsCopyIsDeep(t *testing.T) {
	var a Bits
	a.Add(10)
	c := a.Copy()
	c.Add(11)
	if a.Has(11) {
		t.Errorf("Copy shares storage")
	}
}

// TestBitsQuickSetSemantics checks Bits against a map-based model with
// random operation sequences.
func TestBitsQuickSetSemantics(t *testing.T) {
	f := func(ops []uint16) bool {
		var b Bits
		model := map[uint32]bool{}
		for _, op := range ops {
			v := uint32(op % 2048)
			switch op % 3 {
			case 0, 1:
				changed := b.Add(v)
				if changed == model[v] {
					return false // Add must report change iff absent
				}
				model[v] = true
			case 2:
				if b.Has(v) != model[v] {
					return false
				}
			}
		}
		if b.Len() != len(model) {
			return false
		}
		var keys []uint32
		for k := range model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		got := b.Slice()
		if len(got) != len(keys) {
			return false
		}
		for i := range keys {
			if got[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBitsQuickUnionIntersect checks the algebra of union and
// intersection against the model.
func TestBitsQuickUnionIntersect(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var a, b Bits
		ma, mb := map[uint32]bool{}, map[uint32]bool{}
		for _, x := range xs {
			a.Add(uint32(x % 4096))
			ma[uint32(x%4096)] = true
		}
		for _, y := range ys {
			b.Add(uint32(y % 4096))
			mb[uint32(y%4096)] = true
		}
		inter := false
		for k := range ma {
			if mb[k] {
				inter = true
			}
		}
		if a.Intersects(&b) != inter || b.Intersects(&a) != inter {
			return false
		}
		u := a.Copy()
		u.UnionWith(&b)
		if u.Len() != len(union(ma, mb)) {
			return false
		}
		// union is monotone: contains both operands
		ok := true
		a.ForEach(func(v uint32) {
			if !u.Has(v) {
				ok = false
			}
		})
		b.ForEach(func(v uint32) {
			if !u.Has(v) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func union(a, b map[uint32]bool) map[uint32]bool {
	u := map[uint32]bool{}
	for k := range a {
		u[k] = true
	}
	for k := range b {
		u[k] = true
	}
	return u
}

func TestBitsForEachOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var b Bits
	for i := 0; i < 500; i++ {
		b.Add(uint32(rng.Intn(10000)))
	}
	last := -1
	b.ForEach(func(v uint32) {
		if int(v) <= last {
			t.Fatalf("ForEach out of order: %d after %d", v, last)
		}
		last = int(v)
	})
}
