package pta

import (
	"fmt"

	"o2/internal/ir"
)

// FnCtxID identifies an interned ⟨function, context⟩ pair — a node of the
// context-sensitive call graph.
type FnCtxID uint32

// FnCtx is a contexted function.
type FnCtx struct {
	Fn  *ir.Func
	Ctx CtxID
}

type fnCtxKey struct {
	fn  *ir.Func
	ctx CtxID
}

// EdgeKind classifies call-graph edges.
type EdgeKind uint8

const (
	// EdgeCall is an ordinary (same-origin) call, rule ⑦ of Table 2.
	EdgeCall EdgeKind = iota
	// EdgeSpawn is an origin-entry invocation (thread start or event
	// dispatch), rule ⑨; Origin identifies the spawned origin.
	EdgeSpawn
	// EdgeInit is the constructor call of an origin allocation, rule ⑧.
	EdgeInit
	// EdgeJoin marks a join statement; Origin identifies the joined origin
	// and Callee is unset.
	EdgeJoin
)

// Edge is a resolved call-graph edge from one instruction of a contexted
// caller to a contexted callee (or to an origin for spawn/join edges).
type Edge struct {
	Kind   EdgeKind
	Caller FnCtxID
	// InstrIdx is the index of the call instruction within the caller's
	// body; SHB construction replays instructions in order and consumes
	// edges by index.
	InstrIdx int
	Callee   FnCtxID  // valid unless Kind == EdgeJoin
	Origin   OriginID // valid for EdgeSpawn and EdgeJoin
}

// CallGraph is the on-the-fly context-sensitive call graph built by the
// solver.
type CallGraph struct {
	nodes []FnCtx
	index map[fnCtxKey]FnCtxID
	// out maps a caller node to its outgoing edges, grouped by InstrIdx at
	// query time.
	out [][]Edge
	// edgeSet dedups edges.
	edgeSet map[Edge]struct{}
	Edges   int
}

func newCallGraph() *CallGraph {
	return &CallGraph{index: map[fnCtxKey]FnCtxID{}, edgeSet: map[Edge]struct{}{}}
}

// Node interns ⟨fn, ctx⟩ and returns its ID.
func (g *CallGraph) Node(fn *ir.Func, ctx CtxID) FnCtxID {
	k := fnCtxKey{fn, ctx}
	if id, ok := g.index[k]; ok {
		return id
	}
	id := FnCtxID(len(g.nodes))
	g.nodes = append(g.nodes, FnCtx{fn, ctx})
	g.out = append(g.out, nil)
	g.index[k] = id
	return id
}

// Lookup returns the node for ⟨fn, ctx⟩ if it exists.
func (g *CallGraph) Lookup(fn *ir.Func, ctx CtxID) (FnCtxID, bool) {
	id, ok := g.index[fnCtxKey{fn, ctx}]
	return id, ok
}

// Get returns the contexted function for a node ID.
func (g *CallGraph) Get(id FnCtxID) FnCtx { return g.nodes[id] }

// NumNodes returns the number of reachable contexted functions.
func (g *CallGraph) NumNodes() int { return len(g.nodes) }

func (g *CallGraph) addEdge(e Edge) bool {
	if _, dup := g.edgeSet[e]; dup {
		return false
	}
	g.edgeSet[e] = struct{}{}
	g.out[e.Caller] = append(g.out[e.Caller], e)
	g.Edges++
	return true
}

// Out returns all outgoing edges of node (every instruction).
func (g *CallGraph) Out(node FnCtxID) []Edge { return g.out[node] }

// EdgesAt returns the edges leaving the instruction at index idx of node.
func (g *CallGraph) EdgesAt(node FnCtxID, idx int) []Edge {
	var out []Edge
	for _, e := range g.out[node] {
		if e.InstrIdx == idx {
			out = append(out, e)
		}
	}
	return out
}

func (g *CallGraph) String() string {
	return fmt.Sprintf("callgraph{%d nodes, %d edges}", len(g.nodes), g.Edges)
}
