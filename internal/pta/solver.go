// Package pta implements the paper's pointer-analysis framework: an
// Andersen-style inclusion analysis with an on-the-fly call graph and
// pluggable context policies — context-insensitive (0-ctx), k-CFA, k-obj,
// and the paper's origin-sensitive analysis (OPA, §3.2, Table 2).
//
// Origins (threads and event handlers) are discovered during constraint
// generation for every policy, because the downstream SHB graph and race
// detector need them regardless of the pointer-analysis context; only the
// KOrigin policy additionally uses them as the analysis context.
package pta

import (
	"context"
	"errors"
	"fmt"
	"time"

	"o2/internal/ir"
	"o2/internal/obs"
)

// ErrBudget is returned when the analysis exceeds its configured step or
// time budget (the analogue of the paper's ">4h" timeouts). A context
// deadline expiring mid-analysis reports the same error, so one mechanism
// serves both explicit budgets and service-level job deadlines.
var ErrBudget = errors.New("pta: analysis budget exceeded")

// ErrCanceled is returned when the context passed to SolveCtx (or any
// downstream pipeline stage) is canceled mid-analysis. It wraps
// context.Canceled, so errors.Is(err, context.Canceled) holds.
var ErrCanceled = fmt.Errorf("pta: analysis canceled: %w", context.Canceled)

// CtxErr maps a non-nil context error onto the pipeline's sentinel
// errors: an expired deadline is a budget exhaustion (ErrBudget),
// everything else is a cancellation (ErrCanceled). Shared by every stage
// that honors a context (pta, osa, shb, race).
func CtxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrBudget
	}
	return ErrCanceled
}

// Config configures an analysis run.
type Config struct {
	Policy  Policy
	Entries ir.EntryConfig
	// ReplicateEvents marks event-handler origins as replicated (two or
	// more concurrent instances), matching the paper's treatment of Linux
	// system calls and server event handlers. Android mode instead
	// serializes events with a global lock (handled in the race engine).
	ReplicateEvents bool
	// StepBudget bounds the number of propagation steps (0 = unlimited);
	// exceeding it aborts with ErrBudget.
	StepBudget int64
	// TimeBudget bounds wall-clock time (0 = unlimited).
	TimeBudget time.Duration
	// Obs receives the solver's span and counters (nil = disabled).
	Obs *obs.Registry
}

const (
	wrapperTag = uint64(1) << 63
	twinTag    = uint64(1) << 62
)

type loadC struct {
	dst   NodeID
	field string
}

type storeC struct {
	src   NodeID
	field string
}

type callC struct {
	caller FnCtxID
	instr  *ir.Call
	idx    int // instruction index in caller body
}

type edgeKey struct{ from, to NodeID }

// Analysis holds all state of one pointer-analysis run and is the query
// interface used by OSA, SHB construction and the race detector.
type Analysis struct {
	Prog    *ir.Program
	Cfg     Config
	CG      *CallGraph
	Origins *OriginTable

	ctxs *ctxTable
	heap *heap

	pts   []Bits
	delta []Bits
	succ  [][]NodeID
	edges map[edgeKey]struct{}

	loads  map[NodeID][]loadC
	stores map[NodeID][]storeC
	calls  map[NodeID][]callC

	processed []bool // per FnCtxID: body constraints generated
	fnWL      []FnCtxID
	wl        []NodeID
	inWL      []bool

	// hasOriginAlloc marks functions that directly contain an origin
	// allocation; under the KOrigin policy such functions are analyzed with
	// one extra call-site context element, implementing the paper's
	// "wrapper functions" k=1 call-site extension of origin entry points.
	hasOriginAlloc map[*ir.Func]bool

	steps       int64
	iterations  int64 // worklist pops (constraint generations + node processings)
	constraints int64 // load/store/call/edge constraints registered
	numEdges    int
	ctx         context.Context
	latch       *Latch // trips when ctx ends; nil when ctx is not cancellable
	err         error

	replayScratch Bits // replayObjs' reusable points-to snapshot
}

// New creates an analysis for the (finalized) program.
func New(prog *ir.Program, cfg Config) *Analysis {
	a := &Analysis{
		Prog:           prog,
		Cfg:            cfg,
		CG:             newCallGraph(),
		Origins:        newOriginTable(),
		ctxs:           newCtxTable(),
		heap:           newHeap(),
		edges:          map[edgeKey]struct{}{},
		loads:          map[NodeID][]loadC{},
		stores:         map[NodeID][]storeC{},
		calls:          map[NodeID][]callC{},
		hasOriginAlloc: map[*ir.Func]bool{},
	}
	for _, f := range prog.Funcs {
		for _, in := range f.Body {
			if al, ok := in.(*ir.Alloc); ok && a.isOriginClass(al.Class) {
				a.hasOriginAlloc[f] = true
				break
			}
		}
	}
	return a
}

// Solve runs the analysis to fixpoint. It may return ErrBudget.
func (a *Analysis) Solve() error { return a.SolveCtx(context.Background()) }

// SolveCtx runs the analysis to fixpoint under a context. Cancellation is
// observed in the step loop (every few thousand propagation steps), so
// SolveCtx returns promptly after the context ends: ErrCanceled on
// cancellation, ErrBudget when the context deadline (or Config.TimeBudget,
// which derives one) expires.
func (a *Analysis) SolveCtx(ctx context.Context) error {
	sp := a.Cfg.Obs.StartSpan("pta")
	defer func() {
		a.recordObs()
		sp.End()
	}()
	if a.Cfg.TimeBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, a.Cfg.TimeBudget)
		defer cancel()
	}
	a.ctx = ctx
	latch, stopWatch := WatchCancel(ctx)
	a.latch = latch
	defer stopWatch()
	if err := ctx.Err(); err != nil {
		a.err = CtxErr(err)
		return a.err
	}
	if a.Prog.Main == nil {
		return fmt.Errorf("pta: program has no main")
	}
	a.markReachable(a.Prog.Main, EmptyCtx)
	for a.err == nil {
		if n := len(a.fnWL); n > 0 {
			id := a.fnWL[n-1]
			a.fnWL = a.fnWL[:n-1]
			a.iterations++
			a.genConstraints(id)
			continue
		}
		if n := len(a.wl); n > 0 {
			id := a.wl[n-1]
			a.wl = a.wl[:n-1]
			a.inWL[id] = false
			a.iterations++
			a.processNode(id)
			continue
		}
		break
	}
	return a.err
}

// recordObs publishes the solved sizes into the registry (no-op when
// observability is disabled). Called even on budget aborts, so partial
// runs still report how far they got.
func (a *Analysis) recordObs() {
	reg := a.Cfg.Obs
	if reg == nil {
		return
	}
	st := a.Stats()
	reg.Counter("pta.steps").Set(st.Steps)
	reg.Counter("pta.iterations").Set(st.Iterations)
	reg.Counter("pta.constraints").Set(st.Constraints)
	reg.SetGauge("pta.pointers", int64(st.Pointers))
	reg.SetGauge("pta.objects", int64(st.Objects))
	reg.SetGauge("pta.pag_edges", int64(st.Edges))
	reg.SetGauge("pta.contexts", int64(st.Contexts))
	reg.SetGauge("pta.cg_nodes", int64(st.CGNodes))
	reg.SetGauge("pta.cg_edges", int64(st.CGEdges))
	reg.SetGauge("pta.origins", int64(st.Origins))
	// Distribution of non-empty points-to set sizes: the quantity that
	// governs both precision (aliasing resolution) and propagation cost.
	h := reg.Histogram("pta.points_to_size", obs.SizeBuckets)
	for i := range a.pts {
		if n := a.pts[i].Len(); n > 0 {
			h.Observe(float64(n))
		}
	}
}

func (a *Analysis) budget() bool {
	a.steps++
	if a.Cfg.StepBudget > 0 && a.steps > a.Cfg.StepBudget {
		a.err = ErrBudget
		return false
	}
	// Cancellation is one atomic load (a nil compare when the context is
	// not cancellable) instead of the former every-4096-steps ctx.Err()
	// poll, so it is checked on every step: latency to abort is one step.
	if a.latch.Tripped() {
		a.err = CtxErr(a.ctx.Err())
		return false
	}
	return true
}

func (a *Analysis) isOriginClass(c *ir.Class) bool { return c.IsThread || c.IsEvent }

// ---- node/pts management ----

func (a *Analysis) ensureNode(id NodeID) {
	for int(id) >= len(a.pts) {
		a.pts = append(a.pts, Bits{})
		a.delta = append(a.delta, Bits{})
		a.succ = append(a.succ, nil)
		a.inWL = append(a.inWL, false)
	}
}

func (a *Analysis) varNode(v *ir.Var, ctx CtxID) NodeID {
	id := a.heap.varNode(v, ctx)
	a.ensureNode(id)
	return id
}

func (a *Analysis) fieldNode(obj ObjID, field string) NodeID {
	id := a.heap.fieldNode(obj, field)
	a.ensureNode(id)
	return id
}

func (a *Analysis) staticNode(c *ir.Class, field string) NodeID {
	id := a.heap.staticNode(c.Name + "." + field)
	a.ensureNode(id)
	return id
}

func (a *Analysis) enqueue(n NodeID) {
	if !a.inWL[n] {
		a.inWL[n] = true
		a.wl = append(a.wl, n)
	}
}

func (a *Analysis) addObj(n NodeID, o ObjID) {
	if a.pts[n].Add(uint32(o)) {
		a.delta[n].Add(uint32(o))
		a.enqueue(n)
	}
}

func (a *Analysis) addSet(n NodeID, s *Bits) {
	changed := false
	s.ForEach(func(o uint32) {
		a.steps++ // propagation work: one unit per candidate object
		if a.pts[n].Add(o) {
			a.delta[n].Add(o)
			changed = true
		}
	})
	if changed {
		a.enqueue(n)
	}
}

func (a *Analysis) addEdge(from, to NodeID) {
	if from == to {
		return
	}
	k := edgeKey{from, to}
	if _, dup := a.edges[k]; dup {
		return
	}
	a.edges[k] = struct{}{}
	a.succ[from] = append(a.succ[from], to)
	a.numEdges++
	a.constraints++
	if !a.pts[from].IsEmpty() {
		a.addSet(to, &a.pts[from])
	}
}

func (a *Analysis) processNode(n NodeID) {
	d := a.delta[n]
	a.delta[n] = Bits{}
	if d.IsEmpty() {
		return
	}
	for _, m := range a.succ[n] {
		if !a.budget() {
			return
		}
		a.addSet(m, &d)
	}
	for _, lc := range a.loads[n] {
		d.ForEach(func(o uint32) {
			a.addEdge(a.fieldNode(ObjID(o), lc.field), lc.dst)
		})
	}
	for _, sc := range a.stores[n] {
		d.ForEach(func(o uint32) {
			a.addEdge(sc.src, a.fieldNode(ObjID(o), sc.field))
		})
	}
	for _, cc := range a.calls[n] {
		d.ForEach(func(o uint32) {
			if !a.budget() {
				return
			}
			a.resolveCall(cc, ObjID(o))
		})
	}
	// Recycle d's word storage into the (now empty, unless a callback
	// above re-populated it) delta slot, so the next delta for this node
	// grows into existing capacity instead of reallocating from nil —
	// deltas churn once per worklist pop, the solver's hottest allocation
	// site.
	if len(a.delta[n].w) == 0 {
		for i := range d.w {
			d.w[i] = 0
		}
		a.delta[n] = d
	}
}

// ---- context policies ----

// originChain strips a trailing wrapper element, returning the pure origin
// context and the wrapper call site (-1 if none).
func (a *Analysis) originChain(ctx CtxID) (CtxID, int) {
	elems := a.ctxs.Elems(ctx)
	if n := len(elems); n > 0 && elems[n-1]&wrapperTag != 0 {
		return a.ctxs.Intern(elems[:n-1]), int(elems[n-1] &^ wrapperTag)
	}
	return ctx, -1
}

// calleeCtx computes the callee context for an ordinary (non-origin) call,
// rule ⑦ of Table 2 for KOrigin and the classic rules otherwise.
func (a *Analysis) calleeCtx(callerCtx CtxID, site int, recv ObjID, callee *ir.Func) CtxID {
	switch a.Cfg.Policy.Kind {
	case Insensitive:
		return EmptyCtx
	case KCFA:
		return a.ctxs.Append(callerCtx, uint64(site+1), a.Cfg.Policy.K)
	case KObj:
		if recv == 0 { // static call: keep caller context
			return callerCtx
		}
		o := a.heap.obj(recv)
		return a.ctxs.Append(o.Ctx, uint64(o.Site+1), a.Cfg.Policy.K)
	case KOrigin:
		// Functions within the same origin share the same context. Functions
		// directly containing an origin allocation get a 1-call-site
		// extension so origins created through wrappers stay distinct.
		chain, _ := a.originChain(callerCtx)
		if callee != nil && a.hasOriginAlloc[callee] {
			elems := append(append([]uint64{}, a.ctxs.Elems(chain)...), wrapperTag|uint64(site))
			return a.ctxs.Intern(elems)
		}
		if chain != callerCtx && callee != nil && !a.hasOriginAlloc[callee] {
			// Leaving a wrapper: drop the wrapper marker.
			return chain
		}
		return callerCtx
	}
	return EmptyCtx
}

// heapCtx computes the heap context for a non-origin allocation.
func (a *Analysis) heapCtx(ctx CtxID) CtxID {
	switch a.Cfg.Policy.Kind {
	case Insensitive:
		return EmptyCtx
	case KCFA, KObj:
		return a.ctxs.Truncate(ctx, a.Cfg.Policy.K)
	case KOrigin:
		chain, _ := a.originChain(ctx)
		return chain
	}
	return EmptyCtx
}

// originCtx computes the context of a new origin allocated at site within
// allocCtx (rule ⑧). For KOrigin this creates the new origin context; other
// policies use their regular heap context, so origin identity still follows
// the abstract object.
func (a *Analysis) originCtx(allocCtx CtxID, site int) CtxID {
	if a.Cfg.Policy.Kind != KOrigin {
		return a.heapCtx(allocCtx)
	}
	chain, wrapperSite := a.originChain(allocCtx)
	elems := append(append([]uint64{}, a.ctxs.Elems(chain)...), originElem(site, wrapperSite))
	k := a.Cfg.Policy.K
	if k > 0 && len(elems) > k {
		elems = elems[len(elems)-k:]
	}
	return a.ctxs.Intern(elems)
}

// ---- constraint generation ----

func (a *Analysis) markReachable(fn *ir.Func, ctx CtxID) FnCtxID {
	id := a.CG.Node(fn, ctx)
	for int(id) >= len(a.processed) {
		a.processed = append(a.processed, false)
	}
	if !a.processed[id] {
		a.processed[id] = true
		a.fnWL = append(a.fnWL, id)
	}
	return id
}

func (a *Analysis) genConstraints(id FnCtxID) {
	fc := a.CG.Get(id)
	fn, ctx := fc.Fn, fc.Ctx
	for idx, in := range fn.Body {
		if !a.budget() {
			return
		}
		switch in := in.(type) {
		case *ir.Alloc:
			a.genAlloc(id, fn, ctx, in, idx)
		case *ir.Copy:
			a.addEdge(a.varNode(in.Src, ctx), a.varNode(in.Dst, ctx))
		case *ir.LoadField:
			base := a.varNode(in.Obj, ctx)
			dst := a.varNode(in.Dst, ctx)
			a.loads[base] = append(a.loads[base], loadC{dst, in.Field})
			a.constraints++
			a.replayObjs(base, func(o ObjID) { a.addEdge(a.fieldNode(o, in.Field), dst) })
		case *ir.StoreField:
			base := a.varNode(in.Obj, ctx)
			src := a.varNode(in.Src, ctx)
			a.stores[base] = append(a.stores[base], storeC{src, in.Field})
			a.constraints++
			a.replayObjs(base, func(o ObjID) { a.addEdge(src, a.fieldNode(o, in.Field)) })
		case *ir.LoadIndex:
			base := a.varNode(in.Arr, ctx)
			dst := a.varNode(in.Dst, ctx)
			a.loads[base] = append(a.loads[base], loadC{dst, ir.ArrayField})
			a.constraints++
			a.replayObjs(base, func(o ObjID) { a.addEdge(a.fieldNode(o, ir.ArrayField), dst) })
		case *ir.StoreIndex:
			base := a.varNode(in.Arr, ctx)
			src := a.varNode(in.Src, ctx)
			a.stores[base] = append(a.stores[base], storeC{src, ir.ArrayField})
			a.constraints++
			a.replayObjs(base, func(o ObjID) { a.addEdge(src, a.fieldNode(o, ir.ArrayField)) })
		case *ir.LoadStatic:
			a.addEdge(a.staticNode(in.Class, in.Field), a.varNode(in.Dst, ctx))
		case *ir.StoreStatic:
			a.addEdge(a.varNode(in.Src, ctx), a.staticNode(in.Class, in.Field))
		case *ir.FuncAddr:
			a.addObj(a.varNode(in.Dst, ctx), a.heap.internFuncObj(in.Target, in.Pos()))
		case *ir.ChanMake:
			obj, _ := a.heap.internChanObj(in, a.heapCtx(ctx))
			a.addObj(a.varNode(in.Dst, ctx), obj)
		case *ir.ChanSend:
			// Value flow through the channel: send stores into the channel
			// object's synthetic "$elem" slot, recv loads from it, so a
			// pointer sent over a channel reaches every receiver that may
			// share the channel (Fava/Steffen's communication semantics,
			// flow-insensitively).
			base := a.varNode(in.Ch, ctx)
			src := a.varNode(in.Val, ctx)
			a.stores[base] = append(a.stores[base], storeC{src, ChanElemField})
			a.constraints++
			a.replayObjs(base, func(o ObjID) { a.addEdge(src, a.fieldNode(o, ChanElemField)) })
		case *ir.ChanRecv:
			if in.Dst != nil {
				base := a.varNode(in.Ch, ctx)
				dst := a.varNode(in.Dst, ctx)
				a.loads[base] = append(a.loads[base], loadC{dst, ChanElemField})
				a.constraints++
				a.replayObjs(base, func(o ObjID) { a.addEdge(a.fieldNode(o, ChanElemField), dst) })
			}
		case *ir.Call:
			if in.Static != nil && in.Recv == nil {
				calleeCtx := a.calleeCtx(ctx, in.Site, 0, in.Static)
				a.bindCall(id, ctx, in, idx, in.Static, calleeCtx, 0, EdgeCall)
				continue
			}
			// The points-to set of the dispatch variable drives binding:
			// the receiver for virtual calls and super constructor
			// chaining, the function pointer for indirect calls, the
			// function or handle argument for pthread-style builtins.
			var driver *ir.Var
			switch {
			case in.Builtin == "pthread_create" || in.Builtin == "event_register" ||
				in.Builtin == "pthread_join":
				if len(in.Args) == 0 {
					continue
				}
				driver = in.Args[0]
			case in.Indirect != nil:
				driver = in.Indirect
			default:
				driver = in.Recv
			}
			recv := a.varNode(driver, ctx)
			cc := callC{caller: id, instr: in, idx: idx}
			a.calls[recv] = append(a.calls[recv], cc)
			a.constraints++
			a.replayObjs(recv, func(o ObjID) { a.resolveCall(cc, o) })
		}
	}
}

// replayObjs invokes fn for objects already in pts(base) when a constraint
// is registered late (the node may have been populated by earlier callers).
// The snapshot lands in a reused scratch buffer: fn may grow a.pts
// (ensureNode) or mutate pts(base) itself, but never re-enters replayObjs
// (its callbacks only enqueue work), so one scratch per Analysis is safe.
func (a *Analysis) replayObjs(base NodeID, fn func(ObjID)) {
	if a.pts[base].IsEmpty() {
		return
	}
	a.replayScratch.w = append(a.replayScratch.w[:0], a.pts[base].w...)
	a.replayScratch.ForEach(func(o uint32) { fn(ObjID(o)) })
}

func (a *Analysis) genAlloc(caller FnCtxID, fn *ir.Func, ctx CtxID, al *ir.Alloc, idx int) {
	isOrigin := a.isOriginClass(al.Class)
	replicate := al.InLoop || (al.Class.IsEvent && !al.Class.IsThread && a.Cfg.ReplicateEvents)

	// At most two heap contexts (origin + twin): a fixed-size buffer keeps
	// the slice on the stack — genAlloc runs once per reachable allocation
	// per context and was a top allocation site.
	var hctxBuf [2]CtxID
	hctxs := hctxBuf[:0]
	if isOrigin {
		h := a.originCtx(ctx, al.Site)
		hctxs = append(hctxs, h)
		if replicate && a.Cfg.Policy.Kind == KOrigin {
			// §3.2: an origin allocated in a loop (or a concurrently
			// re-entrant event) becomes two origins with identical
			// attributes but different IDs. Each twin gets its own context,
			// so instance-local allocations stay separate while races
			// between the concurrent instances are found as ordinary
			// cross-origin pairs.
			hctxs = append(hctxs, a.twinCtx(h))
		}
	} else {
		hctxs = append(hctxs, a.heapCtx(ctx))
	}

	for _, hctx := range hctxs {
		obj, isNew := a.heap.internObj(al, hctx)
		a.addObj(a.varNode(al.Dst, ctx), obj)

		if isOrigin && isNew {
			kind := KindThread
			if !al.Class.IsThread {
				kind = KindEvent
			}
			a.Origins.add(&Origin{
				Kind:     kind,
				Obj:      obj,
				Ctx:      hctx,
				AttrVars: al.Args,
				AttrCtx:  ctx,
				// Under the origin policy twins model concurrent instances
				// explicitly; other policies fall back to the replication
				// flag, which the race engine interprets as self-parallel.
				Replicated: replicate && a.Cfg.Policy.Kind != KOrigin,
				Site:       al.Site,
				Pos:        al.Pos(),
			})
		}

		// Constructor call (rule ⑧ for origin allocations: the constructor
		// is analyzed in the new origin's context to avoid false aliasing
		// across sibling origins, cf. Figure 3).
		if init := al.Class.Lookup("init"); init != nil {
			var initCtx CtxID
			if isOrigin && a.Cfg.Policy.Kind == KOrigin {
				initCtx = hctx
			} else {
				initCtx = a.calleeCtx(ctx, al.Site, obj, init)
				if a.Cfg.Policy.Kind == KObj {
					initCtx = a.ctxs.Append(hctx, uint64(al.Site+1), a.Cfg.Policy.K)
				}
			}
			callee := a.markReachable(init, initCtx)
			a.addObj(a.varNode(init.Params[0], initCtx), obj)
			for i, arg := range al.Args {
				if i+1 < len(init.Params) {
					a.addEdge(a.varNode(arg, ctx), a.varNode(init.Params[i+1], initCtx))
				}
			}
			kind := EdgeCall
			if isOrigin {
				kind = EdgeInit
			}
			a.CG.addEdge(Edge{Kind: kind, Caller: caller, InstrIdx: idx, Callee: callee})
		}
	}
}

// twinCtx derives the sibling origin context of an origin allocated in a
// loop: identical chain, with the twin bit set on the last element.
func (a *Analysis) twinCtx(ctx CtxID) CtxID {
	elems := append([]uint64{}, a.ctxs.Elems(ctx)...)
	if len(elems) > 0 {
		elems[len(elems)-1] |= twinTag
	}
	return a.ctxs.Intern(elems)
}

func (a *Analysis) resolveCall(cc callC, recv ObjID) {
	in := cc.instr
	callerCtx := a.CG.Get(cc.caller).Ctx
	info := a.heap.obj(recv)
	ent := a.Cfg.Entries

	switch {
	case in.Builtin == "pthread_create":
		if info.Kind == ObjFunc {
			a.spawnPthread(cc, info.Fn, KindThread, callerCtx)
		}
		return
	case in.Builtin == "event_register":
		if info.Kind == ObjFunc {
			a.spawnPthread(cc, info.Fn, KindEvent, callerCtx)
		}
		return
	case in.Builtin == "pthread_join":
		if oid, ok := a.Origins.ByObj(recv); ok {
			a.CG.addEdge(Edge{Kind: EdgeJoin, Caller: cc.caller, InstrIdx: cc.idx, Origin: oid})
		}
		return
	case in.Indirect != nil:
		// Indirect call through a function pointer (the paper's C-side
		// "indirect function targets"): dispatch on the function object.
		if info.Kind != ObjFunc {
			return
		}
		target := info.Fn
		calleeCtx := a.calleeCtx(callerCtx, in.Site, 0, target)
		a.bindCall(cc.caller, callerCtx, in, cc.idx, target, calleeCtx, 0, EdgeCall)
		return
	}

	if info.Kind != ObjHeap {
		return
	}
	cls := info.Class()

	if ent.IsJoin(in.Method) {
		if oid, ok := a.Origins.ByObj(recv); ok {
			a.CG.addEdge(Edge{Kind: EdgeJoin, Caller: cc.caller, InstrIdx: cc.idx, Origin: oid})
		}
		return
	}

	var target *ir.Func
	if in.Static != nil {
		// Statically-resolved call with a receiver: super constructor
		// chaining. The target is fixed; only the receiver binding and the
		// context depend on the object.
		target = in.Static
	} else {
		method := in.Method
		if ent.IsStart(method) {
			// x.start() transfers control to the thread entry (run) of the
			// receiver's class, rule ⑨.
			for _, e := range ent.ThreadEntries {
				if cls.Lookup(e) != nil {
					method = e
					break
				}
			}
		}
		target = cls.Lookup(method)
		if target == nil {
			return
		}
	}

	if oid, isOriginObj := a.Origins.ByObj(recv); isOriginObj && (ent.IsEntry(target.Simple()) || target.OriginEntry) {
		a.spawn(cc, recv, oid, target, callerCtx)
		return
	}

	calleeCtx := a.calleeCtx(callerCtx, in.Site, recv, target)
	a.bindCall(cc.caller, callerCtx, in, cc.idx, target, calleeCtx, recv, EdgeCall)
}

// spawn handles an origin-entry invocation (rule ⑨ of Table 2): thread
// start or event dispatch. The entry runs in the origin's context; actual
// parameters keep the caller's context while formals get the origin's.
func (a *Analysis) spawn(cc callC, recv ObjID, oid OriginID, entry *ir.Func, callerCtx CtxID) {
	org := a.Origins.Get(oid)
	var calleeCtx CtxID
	switch a.Cfg.Policy.Kind {
	case KOrigin:
		calleeCtx = org.Ctx
	default:
		calleeCtx = a.calleeCtx(callerCtx, cc.instr.Site, recv, entry)
	}
	if org.Entry == nil {
		org.Entry = entry
		if a.Cfg.Policy.Kind != KOrigin {
			org.Ctx = calleeCtx
		}
		// Entry-point parameters contribute origin attributes (§3.1).
		if len(cc.instr.Args) > 0 {
			org.AttrVars = append(org.AttrVars, cc.instr.Args...)
		}
	}
	callee := a.markReachable(entry, calleeCtx)
	a.addObj(a.varNode(entry.Params[0], calleeCtx), recv)
	for i, arg := range cc.instr.Args {
		if i+1 < len(entry.Params) {
			a.addEdge(a.varNode(arg, callerCtx), a.varNode(entry.Params[i+1], calleeCtx))
		}
	}
	if cc.instr.Dst != nil && entry.Ret != nil {
		a.addEdge(a.varNode(entry.Ret, calleeCtx), a.varNode(cc.instr.Dst, callerCtx))
	}
	a.CG.addEdge(Edge{Kind: EdgeSpawn, Caller: cc.caller, InstrIdx: cc.idx, Callee: callee, Origin: oid})
}

// spawnPthread creates (or finds) the origin spawned by a
// pthread_create/event_register call resolving to entry, and wires the
// spawn edge, the attribute binding and the handle value. Pseudo-sites for
// handles live above the allocation-site namespace. Calls inside loops get
// twin origins under OPA, mirroring origin allocations (§3.2).
func (a *Analysis) spawnPthread(cc callC, entry *ir.Func, kind OriginKind, callerCtx CtxID) {
	in := cc.instr
	pseudoSite := a.Prog.NumAllocSites + in.Site
	replicate := in.InLoop || (kind == KindEvent && a.Cfg.ReplicateEvents)

	var hctxBuf [2]CtxID
	hctxs := hctxBuf[:0]
	if a.Cfg.Policy.Kind == KOrigin {
		h := a.originCtx(callerCtx, pseudoSite)
		hctxs = append(hctxs, h)
		if replicate {
			hctxs = append(hctxs, a.twinCtx(h))
		}
	} else {
		hctxs = append(hctxs, a.heapCtx(callerCtx))
	}

	for _, hctx := range hctxs {
		handle, isNew := a.heap.internHandleObj(pseudoSite, hctx, entry, in.Pos())
		var attrs []*ir.Var
		if len(in.Args) > 1 {
			attrs = in.Args[1:]
		}
		var calleeCtx CtxID
		if a.Cfg.Policy.Kind == KOrigin {
			calleeCtx = hctx
		} else {
			calleeCtx = a.calleeCtx(callerCtx, in.Site, 0, entry)
		}
		if isNew {
			a.Origins.add(&Origin{
				Kind:       kind,
				Obj:        handle,
				Ctx:        calleeCtx,
				Entry:      entry,
				AttrVars:   attrs,
				AttrCtx:    callerCtx,
				Replicated: replicate && a.Cfg.Policy.Kind != KOrigin,
				Site:       pseudoSite,
				Pos:        in.Pos(),
			})
		}
		oid, _ := a.Origins.ByObj(handle)
		callee := a.markReachable(entry, calleeCtx)
		// Bind the start argument to the entry's first parameter: the
		// origin attribute.
		if len(in.Args) > 1 && len(entry.Params) > 0 {
			a.addEdge(a.varNode(in.Args[1], callerCtx), a.varNode(entry.Params[0], calleeCtx))
		}
		if in.Dst != nil {
			a.addObj(a.varNode(in.Dst, callerCtx), handle)
		}
		a.CG.addEdge(Edge{Kind: EdgeSpawn, Caller: cc.caller, InstrIdx: cc.idx, Callee: callee, Origin: oid})
	}
}

func (a *Analysis) bindCall(caller FnCtxID, callerCtx CtxID, in *ir.Call, idx int, target *ir.Func, calleeCtx CtxID, recv ObjID, kind EdgeKind) {
	callee := a.markReachable(target, calleeCtx)
	params := target.Params
	args := in.Args
	if recv != 0 && len(params) > 0 {
		a.addObj(a.varNode(params[0], calleeCtx), recv)
		params = params[1:]
	} else if in.Recv == nil && target.Class != nil && len(params) > 0 {
		params = params[1:] // static call to a method: no receiver bound
	}
	for i, arg := range args {
		if i < len(params) {
			a.addEdge(a.varNode(arg, callerCtx), a.varNode(params[i], calleeCtx))
		}
	}
	if in.Dst != nil && target.Ret != nil {
		a.addEdge(a.varNode(target.Ret, calleeCtx), a.varNode(in.Dst, callerCtx))
	}
	a.CG.addEdge(Edge{Kind: kind, Caller: caller, InstrIdx: idx, Callee: callee})
}
