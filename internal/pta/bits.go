package pta

import "math/bits"

// Bits is a growable bitset over uint32 element IDs. The zero value is an
// empty set.
type Bits struct {
	w []uint64
}

// Add inserts i, reporting whether the set changed.
func (b *Bits) Add(i uint32) bool {
	word, bit := int(i>>6), i&63
	for word >= len(b.w) {
		b.w = append(b.w, 0)
	}
	m := uint64(1) << bit
	if b.w[word]&m != 0 {
		return false
	}
	b.w[word] |= m
	return true
}

// Has reports whether i is in the set.
func (b *Bits) Has(i uint32) bool {
	word := int(i >> 6)
	return word < len(b.w) && b.w[word]&(1<<(i&63)) != 0
}

// UnionWith ors c into b, reporting whether b changed.
func (b *Bits) UnionWith(c *Bits) bool {
	changed := false
	for len(b.w) < len(c.w) {
		b.w = append(b.w, 0)
	}
	for i, w := range c.w {
		if w&^b.w[i] != 0 {
			b.w[i] |= w
			changed = true
		}
	}
	return changed
}

// DiffFrom sets b to c minus b's current contents... (unused placeholder removed)

// Intersects reports whether b and c share an element.
func (b *Bits) Intersects(c *Bits) bool {
	n := len(b.w)
	if len(c.w) < n {
		n = len(c.w)
	}
	for i := 0; i < n; i++ {
		if b.w[i]&c.w[i] != 0 {
			return true
		}
	}
	return false
}

// Len returns the number of elements.
func (b *Bits) Len() int {
	n := 0
	for _, w := range b.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no elements.
func (b *Bits) IsEmpty() bool {
	for _, w := range b.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in ascending order.
func (b *Bits) ForEach(fn func(uint32)) {
	for wi, w := range b.w {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(uint32(wi*64 + bit))
			w &= w - 1
		}
	}
}

// Slice returns the elements in ascending order.
func (b *Bits) Slice() []uint32 {
	out := make([]uint32, 0, b.Len())
	b.ForEach(func(i uint32) { out = append(out, i) })
	return out
}

// Copy returns a deep copy of b.
func (b *Bits) Copy() *Bits {
	c := &Bits{w: make([]uint64, len(b.w))}
	copy(c.w, b.w)
	return c
}
