// Cancellation latch: the pipeline phases (pta solve, osa traversal, shb
// build, race detect) all abort promptly when their context ends, but the
// hot loops run millions of iterations and context.Context.Err() takes a
// mutex on every call (~8ns, plus cache contention across detection
// workers). A Latch converts the context's Done channel into one atomic
// bool via a watcher goroutine; the hot loops poll the bool on a stride
// (a relaxed atomic load, ~0.4ns, and a plain nil compare when the
// context is not cancellable at all).

package pta

import (
	"context"
	"sync"
	"sync/atomic"
)

// Latch is a one-way cancellation flag. The zero value is armed and not
// tripped. A nil *Latch is valid and never trips, so phases running under
// context.Background() pay only a nil check.
type Latch struct {
	flag atomic.Bool
}

// Trip sets the latch. Idempotent, safe from any goroutine.
func (l *Latch) Trip() { l.flag.Store(true) }

// Tripped reports whether the latch has been set. Nil-safe.
func (l *Latch) Tripped() bool { return l != nil && l.flag.Load() }

// WatchCancel bridges a context into a Latch: a watcher goroutine trips
// the latch when the context ends. The returned stop function releases the
// watcher and must be called (defer it) when the phase finishes; it is
// idempotent. When the context can never be canceled (nil, Background,
// TODO) both the latch and the watcher are elided — the nil latch's
// Tripped is a nil compare.
func WatchCancel(ctx context.Context) (*Latch, func()) {
	if ctx == nil || ctx.Done() == nil {
		return nil, func() {}
	}
	l := &Latch{}
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			l.Trip()
		case <-stop:
		}
	}()
	var once sync.Once
	return l, func() { once.Do(func() { close(stop) }) }
}
