package corpus

import (
	"archive/zip"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"o2"
)

const racySrc = `
class S { field data; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { sh = this.s; sh.data = this; }
}
main {
  s = new S();
  t1 = new W(s);
  t2 = new W(s);
  t1.start();
  t2.start();
}
`

// drain exhausts an iterator, returning the sources in emission order.
func drain(t *testing.T, it Iterator) []o2.Source {
	t.Helper()
	defer it.Close()
	var out []o2.Source
	for {
		src, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, src)
	}
}

func names(srcs []o2.Source) []string {
	out := make([]string, len(srcs))
	for i, s := range srcs {
		out[i] = s.Name
	}
	return out
}

func TestDirDiscovery(t *testing.T) {
	root := t.TempDir()
	sub := filepath.Join(root, "nested")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{
		filepath.Join(root, "b.mini"),
		filepath.Join(root, "a.mini"),
		filepath.Join(sub, "c.mini"),
		filepath.Join(root, "ignored.txt"),
	} {
		if err := os.WriteFile(p, []byte(racySrc), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	it, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	want := []string{
		filepath.Join(root, "a.mini"),
		filepath.Join(root, "b.mini"),
		filepath.Join(sub, "c.mini"),
	}
	if strings.Join(names(got), ",") != strings.Join(want, ",") {
		t.Fatalf("dir discovery = %v, want %v", names(got), want)
	}
	if string(got[0].Bytes) != racySrc {
		t.Fatal("dir discovery did not read contents")
	}
}

func TestZipDiscovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.zip")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := zip.NewWriter(f)
	for _, name := range []string{"z.mini", "a.mini", "skip.txt", "dir/m.mini"} {
		w, err := zw.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte(racySrc)); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	it, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got := names(drain(t, it))
	want := "a.mini,dir/m.mini,z.mini"
	if strings.Join(got, ",") != want {
		t.Fatalf("zip discovery = %v, want %s", got, want)
	}
}

func TestManifestDiscovery(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "disk.mini"), []byte(racySrc), 0o644); err != nil {
		t.Fatal(err)
	}
	manifest := `{"name":"inline.mini","source":"main { x = 1; }"}

{"path":"disk.mini"}
{"source":"main { y = 2; }"}
`
	path := filepath.Join(dir, "corpus.ndjson")
	if err := os.WriteFile(path, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}

	it, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	want := []string{"inline.mini", "disk.mini", "manifest-4.mini"}
	if strings.Join(names(got), ",") != strings.Join(want, ",") {
		t.Fatalf("manifest discovery = %v, want %v", names(got), want)
	}
	if string(got[1].Bytes) != racySrc {
		t.Fatal("path entry did not read the referenced file")
	}
}

func TestManifestBadLine(t *testing.T) {
	it := Manifest(strings.NewReader("{\"source\":\"ok\"}\nnot json\n"), "")
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("first entry: ok=%v err=%v", ok, err)
	}
	_, _, err := it.Next()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want a line-2 parse error", err)
	}
}

func TestInlineManifestRejectsPaths(t *testing.T) {
	it := InlineManifest(strings.NewReader(`{"path":"/etc/passwd"}` + "\n"))
	_, _, err := it.Next()
	if err == nil || !strings.Contains(err.Error(), "not allowed") {
		t.Fatalf("err = %v, want a path-rejection error", err)
	}
}

func TestChain(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.mini"), filepath.Join(dir, "b.mini")
	for _, p := range []string{a, b} {
		if err := os.WriteFile(p, []byte(racySrc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got := names(drain(t, Chain(Files(a), Files(b), Files(a))))
	want := a + "," + b + "," + a
	if strings.Join(got, ",") != want {
		t.Fatalf("chain = %v, want %s", got, want)
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		err   error
		races int
		want  string
	}{
		{nil, 0, ClassOK},
		{nil, 3, ClassRaces},
		{o2.ErrCompile, 0, ClassParse},
		{o2.ErrBudget, 0, ClassBudget},
		{o2.ErrCanceled, 0, ClassCanceled},
		{context.Canceled, 0, ClassCanceled},
		{errors.New("boom"), 0, ClassInternal},
	}
	for _, c := range cases {
		if got := ClassOf(c.err, c.races); got != c.want {
			t.Errorf("ClassOf(%v, %d) = %s, want %s", c.err, c.races, got, c.want)
		}
	}
}

func TestNewRecordProjection(t *testing.T) {
	res, err := o2.AnalyzeSources(context.Background(),
		[]o2.Source{{Name: "racy.mini", Bytes: []byte(racySrc)}}, o2.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecord(o2.CorpusResult{Index: 7, Name: "racy.mini", Result: res})
	if rec.Schema != RecordSchema || rec.Index != 7 || rec.Program != "racy.mini" {
		t.Fatalf("record envelope = %+v", rec)
	}
	if rec.ExitClass != ClassRaces || rec.RaceCount != 1 || len(rec.Races) != 1 {
		t.Fatalf("record races = %+v", rec)
	}
	r := rec.Races[0]
	if r.Location == "" || r.A.Op != "write" || r.B.Op != "write" || r.A.Origin == "" {
		t.Fatalf("race projection = %+v", r)
	}
	if rec.Stats == nil || rec.Stats.TotalNS <= 0 {
		t.Fatalf("record stats = %+v", rec.Stats)
	}

	erec := NewRecord(o2.CorpusResult{Index: 1, Name: "bad.mini", Err: o2.ErrCompile})
	if erec.ExitClass != ClassParse || erec.Error == "" || erec.Stats != nil {
		t.Fatalf("error record = %+v", erec)
	}
}
