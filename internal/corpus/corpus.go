// Package corpus is the repository-scale input frontend: it discovers
// minilang programs from a directory tree, a zip archive or an NDJSON
// manifest and streams them as o2.Source values — one program at a time,
// never materializing the corpus — into the streaming analysis pipeline
// (o2.AnalyzeCorpus). It also owns the wire format of streamed results:
// the schema-versioned NDJSON Record that `o2 batch -stream` and the
// server's POST /batch emit, one line per program, in input order.
package corpus

import (
	"archive/zip"
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"o2"
)

// Ext is the minilang source extension discovery looks for.
const Ext = ".mini"

// Iterator is a closeable source stream. Every discovery constructor
// returns one; Close releases the underlying file handles (idempotent,
// and a no-op for purely in-memory iterators).
type Iterator interface {
	o2.SourceIter
	Close() error
}

// Open discovers sources at path by shape:
//
//   - a directory streams every *.mini file under it, sorted by path;
//   - a *.zip archive streams its *.mini entries, sorted by name;
//   - a *.ndjson / *.jsonl file streams manifest records (see Manifest);
//   - any other file is a single .mini source.
//
// Contents are always read lazily, one program per Next call.
func Open(path string) (Iterator, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	switch {
	case info.IsDir():
		return Dir(path)
	case strings.HasSuffix(path, ".zip"):
		return Zip(path)
	case strings.HasSuffix(path, ".ndjson"), strings.HasSuffix(path, ".jsonl"):
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		return ManifestCloser(f, filepath.Dir(path)), nil
	default:
		return Files(path), nil
	}
}

// Files streams the named files as sources, in argument order, reading
// each lazily.
func Files(paths ...string) Iterator { return &fileIter{paths: paths} }

type fileIter struct {
	paths []string
	i     int
}

func (it *fileIter) Next() (o2.Source, bool, error) {
	if it.i >= len(it.paths) {
		return o2.Source{}, false, nil
	}
	p := it.paths[it.i]
	it.i++
	b, err := os.ReadFile(p)
	if err != nil {
		return o2.Source{}, false, err
	}
	return o2.Source{Name: p, Bytes: b}, true, nil
}

func (it *fileIter) Close() error { return nil }

// Dir streams every *.mini file under root in sorted path order. The
// walk collects names up front (paths are cheap); file contents are read
// one program at a time.
func Dir(root string) (Iterator, error) {
	var paths []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(p, Ext) {
			paths = append(paths, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return Files(paths...), nil
}

// Zip streams the archive's *.mini entries in sorted name order, opening
// one entry at a time.
func Zip(path string) (Iterator, error) {
	rc, err := zip.OpenReader(path)
	if err != nil {
		return nil, err
	}
	var entries []*zip.File
	for _, f := range rc.File {
		if strings.HasSuffix(f.Name, Ext) && !strings.HasSuffix(f.Name, "/") {
			entries = append(entries, f)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return &zipIter{rc: rc, entries: entries}, nil
}

type zipIter struct {
	rc      *zip.ReadCloser
	entries []*zip.File
	i       int
}

func (it *zipIter) Next() (o2.Source, bool, error) {
	if it.i >= len(it.entries) {
		return o2.Source{}, false, nil
	}
	e := it.entries[it.i]
	it.i++
	f, err := e.Open()
	if err != nil {
		return o2.Source{}, false, fmt.Errorf("zip entry %s: %w", e.Name, err)
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		return o2.Source{}, false, fmt.Errorf("zip entry %s: %w", e.Name, err)
	}
	return o2.Source{Name: e.Name, Bytes: b}, true, nil
}

func (it *zipIter) Close() error {
	if it.rc == nil {
		return nil
	}
	err := it.rc.Close()
	it.rc = nil
	return err
}

// ManifestEntry is one line of an NDJSON corpus manifest: either inline
// source text or a path to read it from (resolved against the manifest's
// directory when relative). Name defaults to the path.
type ManifestEntry struct {
	Name   string `json:"name,omitempty"`
	Source string `json:"source,omitempty"`
	Path   string `json:"path,omitempty"`
}

// Manifest streams an NDJSON manifest from r: one JSON object per line
// (see ManifestEntry), blank lines ignored. dir anchors relative Path
// entries ("" = process working directory). The reader is consumed
// lazily, line by line, so manifests of any length stream in constant
// memory.
func Manifest(r io.Reader, dir string) Iterator {
	return &manifestIter{br: bufio.NewReader(r), dir: dir}
}

// ManifestCloser is Manifest over a ReadCloser, closing it with the
// iterator.
func ManifestCloser(rc io.ReadCloser, dir string) Iterator {
	return &manifestIter{br: bufio.NewReader(rc), dir: dir, c: rc}
}

// InlineManifest is Manifest restricted to inline source entries: path
// entries are rejected. It is the form network frontends consume (the
// server's POST /batch), so a remote manifest can never read files off
// the serving host.
func InlineManifest(r io.Reader) Iterator {
	return &manifestIter{br: bufio.NewReader(r), inline: true}
}

type manifestIter struct {
	br     *bufio.Reader
	dir    string
	c      io.Closer
	line   int
	inline bool
}

func (it *manifestIter) Next() (o2.Source, bool, error) {
	for {
		line, err := it.br.ReadString('\n')
		if err != nil && err != io.EOF {
			return o2.Source{}, false, err
		}
		eof := err == io.EOF
		it.line++
		trimmed := strings.TrimSpace(line)
		if trimmed != "" {
			src, perr := it.parse(trimmed)
			if perr != nil {
				return o2.Source{}, false, fmt.Errorf("manifest line %d: %w", it.line, perr)
			}
			return src, true, nil
		}
		if eof {
			return o2.Source{}, false, nil
		}
	}
}

func (it *manifestIter) parse(line string) (o2.Source, error) {
	var e ManifestEntry
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		return o2.Source{}, err
	}
	switch {
	case e.Source != "":
		name := e.Name
		if name == "" {
			name = fmt.Sprintf("manifest-%d%s", it.line, Ext)
		}
		return o2.Source{Name: name, Bytes: []byte(e.Source)}, nil
	case e.Path != "":
		if it.inline {
			return o2.Source{}, fmt.Errorf("path entry %q not allowed here (inline sources only)", e.Path)
		}
		p := e.Path
		if !filepath.IsAbs(p) && it.dir != "" {
			p = filepath.Join(it.dir, p)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return o2.Source{}, err
		}
		name := e.Name
		if name == "" {
			name = e.Path
		}
		return o2.Source{Name: name, Bytes: b}, nil
	}
	return o2.Source{}, fmt.Errorf("entry has neither source nor path")
}

func (it *manifestIter) Close() error {
	if it.c == nil {
		return nil
	}
	err := it.c.Close()
	it.c = nil
	return err
}

// Chain concatenates iterators into one stream (the multi-argument CLI
// case: `o2 batch dir1 corpus.zip prog.mini`). Close closes every part.
func Chain(parts ...Iterator) Iterator { return &chainIter{parts: parts} }

type chainIter struct {
	parts []Iterator
	i     int
}

func (it *chainIter) Next() (o2.Source, bool, error) {
	for it.i < len(it.parts) {
		src, ok, err := it.parts[it.i].Next()
		if err != nil || ok {
			return src, ok, err
		}
		it.i++
	}
	return o2.Source{}, false, nil
}

func (it *chainIter) Close() error {
	var first error
	for _, p := range it.parts {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
