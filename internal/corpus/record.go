package corpus

import (
	"context"
	"encoding/json"
	"errors"
	"io"

	"o2"
	"o2/internal/obs"
)

// RecordSchema versions the streamed result record. Bump it whenever a
// field changes meaning or shape; consumers must reject records from a
// schema they do not know. (The race witness carries its own schema
// version — see race.WitnessSchema — this one covers the per-program
// envelope around it.)
const RecordSchema = 1

// Exit classes of a streamed program, mirroring the CLI exit-code
// contract (`o2 help`): the per-program analogue of the process exit
// code, so a corpus consumer can fold records into the same 0–6 space.
const (
	ClassOK       = "ok"       // exit 0: analyzed, no races
	ClassRaces    = "races"    // exit 1: analyzed, races found
	ClassParse    = "parse"    // exit 3: compile error (isolated to this program)
	ClassBudget   = "budget"   // exit 4: per-program budget or deadline
	ClassCanceled = "canceled" // exit 5: canceled mid-analysis
	ClassInternal = "internal" // exit 6: anything else
)

// ClassOf maps one program's outcome onto its exit class.
func ClassOf(err error, races int) string {
	switch {
	case err == nil && races > 0:
		return ClassRaces
	case err == nil:
		return ClassOK
	case errors.Is(err, o2.ErrCompile):
		return ClassParse
	case errors.Is(err, o2.ErrBudget):
		return ClassBudget
	case errors.Is(err, o2.ErrCanceled), errors.Is(err, context.Canceled):
		return ClassCanceled
	}
	return ClassInternal
}

// Access is one side of a streamed race record.
type Access struct {
	Op     string `json:"op"`
	Pos    string `json:"pos"`
	Fn     string `json:"fn"`
	Origin string `json:"origin"`
}

// RaceEntry is one reported race in a streamed record — the same
// projection the batch scheduler serves, minus the witness (stream
// consumers re-request witnesses per race via `o2 analyze -explain-json`
// or the job API when they need derivations).
type RaceEntry struct {
	Location string `json:"location"`
	A        Access `json:"a"`
	B        Access `json:"b"`
}

// PhaseStats is the per-program RunStats summary every record carries:
// phase wall times plus incremental-reuse counters when the stream runs
// with summary sharing.
type PhaseStats struct {
	PTANS    int64        `json:"pta_ns"`
	OSANS    int64        `json:"osa_ns"`
	SHBNS    int64        `json:"shb_ns"`
	DetectNS int64        `json:"detect_ns"`
	TotalNS  int64        `json:"total_ns"`
	Inc      *o2.IncStats `json:"incremental,omitempty"`
}

// Record is one program's result in the streamed NDJSON output: exactly
// one line per input program, emitted in input order. Schema-versioned;
// see RecordSchema.
type Record struct {
	Schema    int           `json:"schema"`
	Index     int           `json:"index"`
	Program   string        `json:"program"`
	ExitClass string        `json:"exit_class"`
	RaceCount int           `json:"race_count"`
	Races     []RaceEntry   `json:"races,omitempty"`
	TimedOut  bool          `json:"timed_out,omitempty"` // pair budget tripped: races are a lower bound
	Error     string        `json:"error,omitempty"`
	WallNS    int64         `json:"wall_ns"`
	Stats     *PhaseStats   `json:"stats,omitempty"`
	RunStats  *obs.RunStats `json:"run_stats,omitempty"` // full observability report (opt-in)
	// RequestID correlates server-streamed records with the originating
	// HTTP request (honored or minted X-Request-ID); empty for local
	// streams.
	RequestID string `json:"request_id,omitempty"`
}

// NewRecord projects one streamed program outcome onto its wire record.
func NewRecord(cr o2.CorpusResult) *Record {
	rec := &Record{
		Schema:  RecordSchema,
		Index:   cr.Index,
		Program: cr.Name,
		WallNS:  int64(cr.Wall),
	}
	if cr.Err != nil {
		rec.Error = cr.Err.Error()
		rec.ExitClass = ClassOf(cr.Err, 0)
		return rec
	}
	res := cr.Result
	races := res.Races()
	rec.RaceCount = len(races)
	rec.ExitClass = ClassOf(nil, len(races))
	rec.TimedOut = res.Report.TimedOut
	rec.Stats = &PhaseStats{
		PTANS:    int64(res.PTATime),
		OSANS:    int64(res.OSATime),
		SHBNS:    int64(res.SHBTime),
		DetectNS: int64(res.DetectTime),
		TotalNS:  int64(res.TotalTime()),
		Inc:      res.Inc,
	}
	rec.RunStats = res.RunStats
	for i := range races {
		r := &races[i]
		mk := func(write bool, pos, fn string, origin string) Access {
			op := "read"
			if write {
				op = "write"
			}
			return Access{Op: op, Pos: pos, Fn: fn, Origin: origin}
		}
		rec.Races = append(rec.Races, RaceEntry{
			Location: r.Key.String(),
			A:        mk(r.A.Write, r.A.Pos.String(), r.A.Fn, res.Analysis.Origins.Get(r.A.Origin).String()),
			B:        mk(r.B.Write, r.B.Pos.String(), r.B.Fn, res.Analysis.Origins.Get(r.B.Origin).String()),
		})
	}
	return rec
}

// Summary is the optional terminal NDJSON line of a stream (the HTTP
// /batch endpoint always appends one, since an HTTP response has no exit
// code): totals plus the stream-level error, distinguished from per-
// program records by the summary flag.
type Summary struct {
	Schema    int    `json:"schema"`
	IsSummary bool   `json:"summary"`
	Programs  int    `json:"programs"`
	Failed    int    `json:"failed"`
	Races     int    `json:"races"`
	WallNS    int64  `json:"wall_ns"`
	Error     string `json:"error,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// ProgressRecord is a periodic progress line interleaved into a streamed
// batch (schema-tagged with "progress": true so consumers filtering for
// result records can skip it). Index/Program identify the most recently
// completed input; Done counts completed programs so far. For job-level
// event streams (GET /jobs/{id}/events) the same shape carries the
// per-job phase snapshot instead, with Total == 0.
type ProgressRecord struct {
	Schema     int     `json:"schema"`
	IsProgress bool    `json:"progress"`
	Done       int     `json:"done"`
	Total      int     `json:"total,omitempty"`
	Index      int     `json:"index,omitempty"`
	Program    string  `json:"program,omitempty"`
	Phase      string  `json:"phase,omitempty"`
	Percent    float64 `json:"percent"`
	PairsDone  int64   `json:"pairs_done,omitempty"`
	PairsTotal int64   `json:"pairs_total,omitempty"`
	Races      int64   `json:"races"`
	WallNS     int64   `json:"wall_ns"`
	RequestID  string  `json:"request_id,omitempty"`
}

// NewProgress projects a live progress snapshot onto the wire record.
func NewProgress(snap obs.ProgressSnapshot) *ProgressRecord {
	return &ProgressRecord{
		Schema:     RecordSchema,
		IsProgress: true,
		Phase:      snap.Phase,
		Percent:    snap.Percent,
		PairsDone:  snap.PairsDone,
		PairsTotal: snap.PairsTotal,
		Races:      snap.Races,
	}
}

// NewSummary folds corpus stats (and a stream-level error, if any) into
// the terminal summary line.
func NewSummary(st *o2.CorpusStats, streamErr error) *Summary {
	s := &Summary{Schema: RecordSchema, IsSummary: true}
	if st != nil {
		s.Programs = st.Programs
		s.Failed = st.Failed
		s.Races = st.Races
		s.WallNS = int64(st.Wall)
	}
	if streamErr != nil {
		s.Error = streamErr.Error()
	}
	return s
}

// Writer emits NDJSON: one compact JSON value per line. It is not safe
// for concurrent use — the corpus pipeline emits from one goroutine by
// construction.
type Writer struct {
	enc *json.Encoder
}

// NewWriter wraps w. Each Write lands as exactly one line; pair with an
// http.Flusher (or a line-buffered writer) for live streaming.
func NewWriter(w io.Writer) *Writer { return &Writer{enc: json.NewEncoder(w)} }

// Write emits one value (a *Record or *Summary) as one NDJSON line.
func (w *Writer) Write(v any) error { return w.enc.Encode(v) }
