package bench

import (
	"context"
	"time"

	"o2"
	"o2/internal/cases"
	"o2/internal/sched"
)

// BatchStats is the bench artifact's report-only batch-scheduler section:
// the Table 10 case-study corpus pushed through the job scheduler twice
// (the second wave exercises the result cache), plus the warm-hit latency
// of one final duplicate submission. Throughput and latency are tracked
// in BENCH_ci.json for trends; Deterministic() strips the whole section,
// so none of it is gated — timings vary run to run, and on CI the numbers
// only feed EXPERIMENTS.md.
type BatchStats struct {
	Jobs        int     `json:"jobs"`
	Workers     int     `json:"workers"`
	WallNS      int64   `json:"wall_ns"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	WarmHitNS   int64   `json:"warm_hit_ns"`
}

// RunBatchGate measures the scheduler over the Table 10 corpus.
func RunBatchGate(workers int) (*BatchStats, error) {
	s := sched.New(sched.Options{Workers: workers, QueueDepth: 2*len(cases.Table10) + 1})

	submit := func() ([]*sched.Job, error) {
		var jobs []*sched.Job
		for _, c := range cases.Table10 {
			cfg := o2.DefaultConfig()
			cfg.Android = c.Android
			j, err := s.Submit(sched.Request{
				Files:  map[string]string{c.Name + ".mini": c.Source},
				Config: cfg,
				Label:  c.Name,
			})
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, j)
		}
		return jobs, nil
	}

	start := time.Now()
	var all []*sched.Job
	for wave := 0; wave < 2; wave++ {
		jobs, err := submit()
		if err != nil {
			return nil, err
		}
		for _, j := range jobs {
			<-j.Done()
		}
		all = append(all, jobs...)
	}
	wall := time.Since(start)

	// One more duplicate of the first case times the warm-hit path.
	warmStart := time.Now()
	cfg := o2.DefaultConfig()
	cfg.Android = cases.Table10[0].Android
	j, err := s.Submit(sched.Request{
		Files:  map[string]string{cases.Table10[0].Name + ".mini": cases.Table10[0].Source},
		Config: cfg,
	})
	if err != nil {
		return nil, err
	}
	<-j.Done()
	warm := time.Since(warmStart)

	if err := s.Shutdown(context.Background()); err != nil {
		return nil, err
	}
	st := s.Stats()
	return &BatchStats{
		Jobs:        len(all),
		Workers:     st.Workers,
		WallNS:      int64(wall),
		JobsPerSec:  float64(len(all)) / wall.Seconds(),
		CacheHits:   st.CacheHits,
		CacheMisses: st.CacheMisses,
		WarmHitNS:   int64(warm),
	}, nil
}
