package bench

import (
	"fmt"
	"strings"

	"o2/internal/shb"
)

// GoSyncGateStats is the report-only channel-heavy workload section of the
// bench gate: the gosync preset (channel handoff pairs plus a WaitGroup
// fan-in barrier, see workload.GoSync) run through the full pipeline.
// Latency-dependent, so never golden-gated — but computing it hard-fails
// if any channel- or WaitGroup-ordered handoff field races, i.e. if the
// message-passing HB edges go missing at workload scale.
type GoSyncGateStats struct {
	Preset   string `json:"preset"`
	Races    int    `json:"races"`
	Pairs    int64  `json:"pairs_checked"`
	SHBNodes int64  `json:"shb_nodes"`
	SHBEdges int64  `json:"shb_edges"`
	WallNS   int64  `json:"wall_ns"`
}

// goSyncOrderedFields are the workload fields whose accesses are race-free
// only because of a send→recv or Done→Wait edge (see workload.Preset
// ChanPairs/WgWorkers). A race on any of them is an HB soundness bug, not
// a drift.
var goSyncOrderedFields = []string{"payload", "wv"}

// RunGoSyncGate checks the channel-heavy pipeline run and extracts its
// report-only stats, enforcing the message-passing HB invariant.
func RunGoSyncGate(p Pipeline, name string) (*GoSyncGateStats, error) {
	if p.TimedOut || p.Detect.Report == nil {
		return nil, fmt.Errorf("gosync gate: preset %s timed out", name)
	}
	rep := p.Detect.Report
	st := &GoSyncGateStats{
		Preset: name,
		Races:  len(rep.Races),
		Pairs:  rep.PairsChecked,
		WallNS: int64(p.Total),
	}
	if g := p.Detect.Graph; g != nil {
		st.SHBNodes = int64(len(g.Nodes))
		for i := range g.Segs {
			st.SHBEdges += int64(len(g.OutEdges(shb.SegID(i))))
		}
	}
	for i := range rep.Races {
		k := rep.Races[i].Key.String()
		for _, f := range goSyncOrderedFields {
			if strings.Contains(k, f) {
				return nil, fmt.Errorf("gosync gate: race on channel/WaitGroup-ordered location %s (missing HB edge)", k)
			}
		}
	}
	return st, nil
}
