package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"o2/internal/obs"
	"o2/internal/truth"
	"o2/internal/workload"
)

// The bench gate is CI's drift detector: it runs three fixed workload
// presets (one Dacapo-style, one distributed-system, one C-server) through
// the full pipeline at Workers=1, freezes each run's observability report,
// and compares the deterministic projection — pairs checked, per-phase
// size counters, cache hit rates, races — against a checked-in golden
// file. Wall/CPU times are carried in the emitted artifact (BENCH_ci.json)
// for trend tracking but are never gated. Heap allocations sit in between:
// too jittery for byte comparison, too important to leave ungated, so the
// golden carries explicit per-phase ceilings (see AllocBudgets).

// GatePresetNames are the fixed gate workloads, chosen to cover the three
// benchmark families while keeping the gate fast.
var GatePresetNames = []string{"avrora", "zookeeper", "memcached"}

// GateReport is the bench gate's machine-readable artifact.
type GateReport struct {
	Schema  int          `json:"schema"`
	Presets []GatePreset `json:"presets"`
	// Batch is the report-only scheduler-throughput section (see
	// BatchStats); it never participates in the golden comparison.
	Batch *BatchStats `json:"batch,omitempty"`
	// Eval is the ground-truth precision/recall report over the oracle
	// corpus (internal/truth). It is gated against the checked-in
	// internal/truth/baseline.json — recall must stay 1.0 and precision
	// must not drop — rather than against the golden file, so it is
	// stripped from the deterministic projection like Batch.
	Eval *truth.EvalReport `json:"eval,omitempty"`
	// Inc is the report-only warm-incremental section: cold/warm latency,
	// dirty-unit ratio and speedup after a one-unit edit on three corpus
	// programs. Latency-dependent, so never golden-gated.
	Inc *IncGateStats `json:"incremental,omitempty"`
	// Corpus is the report-only streamed-vs-eager throughput section over
	// the truth corpus (see CorpusGateStats). All timing, never gated —
	// but computing it hard-fails if the streaming pipeline's race counts
	// diverge from the eager path's.
	Corpus *CorpusGateStats `json:"corpus,omitempty"`
	// GoSync is the report-only channel-heavy workload section (see
	// GoSyncGateStats). Timing-dependent, never golden-gated — but
	// computing it hard-fails if a channel/WaitGroup-ordered handoff
	// field races.
	GoSync *GoSyncGateStats `json:"gosync,omitempty"`
	// AllocBudgets are the hard per-preset per-phase heap-allocation
	// ceilings, keyed "preset/phase" (phases: pta, detect). Unlike the
	// byte-compared counters, allocation counts jitter slightly (GC
	// assists, timer goroutines), so -update-golden records measured×1.10
	// plus a small noise floor (see budgetFromMeasured) and every gate run
	// fails if a phase allocates more than its ceiling
	// — i.e. regresses by more than 10% over the recorded baseline. Times
	// are never gated; allocations are.
	AllocBudgets map[string]AllocBudget `json:"alloc_budgets,omitempty"`
}

// AllocBudget is one phase's allocation ceiling (objects and bytes).
type AllocBudget struct {
	Allocs int64 `json:"allocs"`
	Bytes  int64 `json:"bytes"`
}

// allocBudgetPhases are the phases with hard allocation budgets: the two
// hot paths the detector optimizes for. OSA/SHB gauges are still emitted
// in the artifact for trend tracking but not gated.
var allocBudgetPhases = []string{"pta", "detect"}

// measuredAllocs extracts the per-preset per-phase heap-allocation gauges
// from the report, keyed like AllocBudgets.
func (r *GateReport) measuredAllocs() map[string]AllocBudget {
	out := map[string]AllocBudget{}
	for _, p := range r.Presets {
		if p.Stats == nil {
			continue
		}
		for _, ph := range allocBudgetPhases {
			out[p.Name+"/"+ph] = AllocBudget{
				Allocs: p.Stats.Gauges[ph+".heap_allocs"],
				Bytes:  p.Stats.Gauges[ph+".heap_bytes"],
			}
		}
	}
	return out
}

// budgetFromMeasured converts measured allocation counts into ceilings:
// 10% relative headroom plus a small absolute noise floor. The floor
// matters for phases the optimization drove to near-zero (avrora's
// detect measures single-digit allocs): the heap counters are
// process-global, so a stray timer or GC-assist allocation from another
// goroutine must not fail CI on a phase whose 10% headroom rounds to
// nothing.
func budgetFromMeasured(m map[string]AllocBudget) map[string]AllocBudget {
	const (
		allocSlack = 32
		byteSlack  = 8192
	)
	out := make(map[string]AllocBudget, len(m))
	for k, v := range m {
		out[k] = AllocBudget{
			Allocs: v.Allocs + v.Allocs/10 + allocSlack,
			Bytes:  v.Bytes + v.Bytes/10 + byteSlack,
		}
	}
	return out
}

// checkAllocBudgets fails if any measured phase exceeds its recorded
// ceiling. Budgets absent from the golden (older golden files) gate
// nothing, so the check is backward-compatible.
func checkAllocBudgets(measured, budgets map[string]AllocBudget) error {
	var over []string
	for k, b := range budgets {
		m, ok := measured[k]
		if !ok {
			continue
		}
		if m.Allocs > b.Allocs {
			over = append(over, fmt.Sprintf("%s: %d allocs > budget %d", k, m.Allocs, b.Allocs))
		}
		if m.Bytes > b.Bytes {
			over = append(over, fmt.Sprintf("%s: %d heap bytes > budget %d", k, m.Bytes, b.Bytes))
		}
	}
	if len(over) == 0 {
		return nil
	}
	sort.Strings(over)
	return fmt.Errorf("bench gate: allocation budget exceeded (>10%% regression; re-baseline with -update-golden if intended):\n  %s",
		strings.Join(over, "\n  "))
}

// GatePreset is one workload's gate entry.
type GatePreset struct {
	Name     string        `json:"name"`
	Policy   string        `json:"policy"`
	Races    int           `json:"races"`
	TimedOut bool          `json:"timed_out,omitempty"`
	Stats    *obs.RunStats `json:"stats"`
}

// RunGate executes the gate workloads. Worker count is pinned to 1 so
// every counter in the report — including the cache hit/miss splits,
// which depend on query order — is deterministic.
func RunGate(o Opts) (*GateReport, error) {
	rep := &GateReport{Schema: obs.SchemaVersion}
	for _, name := range GatePresetNames {
		p, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench gate: unknown preset %q", name)
		}
		run := o
		run.Workers = 1
		run.Obs = obs.New()
		// Park the collector for the measured pipeline: the heap-alloc
		// gauges otherwise jitter ±25% with GC pacer timing (a collection
		// landing mid-phase perturbs growth reallocation counts), far too
		// noisy for the 10% budget gate. With GC off they repeat to ±0.5%.
		// Each preset's pipeline peaks at a few MB, so running it
		// uncollected is safe.
		runtime.GC()
		oldGC := debug.SetGCPercent(-1)
		pl := RunPipeline(p, POPA, run)
		debug.SetGCPercent(oldGC)
		gp := GatePreset{
			Name:     name,
			Policy:   POPA.Name(),
			TimedOut: pl.TimedOut,
			Stats:    run.Obs.Snapshot(),
		}
		if pl.Detect.Report != nil {
			gp.Races = len(pl.Detect.Report.Races)
		}
		rep.Presets = append(rep.Presets, gp)
	}
	batch, err := RunBatchGate(1)
	if err != nil {
		return nil, err
	}
	rep.Batch = batch
	ev, err := truth.Evaluate()
	if err != nil {
		return nil, fmt.Errorf("bench gate: eval: %w", err)
	}
	rep.Eval = ev
	inc, err := RunIncGate()
	if err != nil {
		return nil, fmt.Errorf("bench gate: incremental: %w", err)
	}
	rep.Inc = inc
	corpus, err := RunCorpusGate(0)
	if err != nil {
		return nil, fmt.Errorf("bench gate: corpus: %w", err)
	}
	rep.Corpus = corpus
	gsPreset, ok := workload.ByName("gosync")
	if !ok {
		return nil, fmt.Errorf("bench gate: unknown preset %q", "gosync")
	}
	gsRun := o
	gsRun.Workers = 1
	gs, err := RunGoSyncGate(RunPipeline(gsPreset, POPA, gsRun), gsPreset.Name)
	if err != nil {
		return nil, fmt.Errorf("bench gate: %w", err)
	}
	rep.GoSync = gs
	return rep, nil
}

// Deterministic projects the report onto its gated fields: times are
// stripped from every preset's stats (see obs.RunStats.Deterministic) and
// the batch-throughput section is dropped entirely (all of it is timing).
func (r *GateReport) Deterministic() *GateReport {
	out := &GateReport{Schema: r.Schema}
	for _, p := range r.Presets {
		p.Stats = p.Stats.Deterministic()
		out.Presets = append(out.Presets, p)
	}
	return out
}

// MarshalIndent renders the report as stable, diffable JSON.
func (r *GateReport) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// CompareGolden checks the report's deterministic projection against the
// golden bytes and returns a drift error listing the differing lines.
func (r *GateReport) CompareGolden(golden []byte) error {
	var gr GateReport
	if err := json.Unmarshal(golden, &gr); err != nil {
		return fmt.Errorf("bench gate: bad golden file: %w", err)
	}
	want, err := gr.Deterministic().MarshalIndent()
	if err != nil {
		return err
	}
	got, err := r.Deterministic().MarshalIndent()
	if err != nil {
		return err
	}
	if bytes.Equal(got, want) {
		return nil
	}
	return fmt.Errorf("bench gate: stats drifted from golden:\n%s", diffLines(string(want), string(got)))
}

// diffLines is a minimal line diff: it reports lines present in only one
// of the two renderings (enough to localize a counter drift).
func diffLines(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	count := func(ls []string) map[string]int {
		m := map[string]int{}
		for _, l := range ls {
			m[l]++
		}
		return m
	}
	wc, gc := count(wl), count(gl)
	var sb strings.Builder
	for _, l := range wl {
		if gc[l] < wc[l] {
			fmt.Fprintf(&sb, "  -%s\n", l)
			wc[l]--
		}
	}
	for _, l := range gl {
		if wc[l] < gc[l] {
			fmt.Fprintf(&sb, "  +%s\n", l)
			gc[l]--
		}
	}
	out := sb.String()
	if out == "" {
		out = "  (line ordering changed)"
	}
	return strings.TrimRight(out, "\n")
}

// Gate runs the gate workloads, writes the full (timed) report to
// statsPath if non-empty, and fails on any deterministic drift from the
// golden file. With update=true it rewrites the golden's deterministic
// projection instead of comparing.
func Gate(w io.Writer, o Opts, goldenPath, statsPath string, update bool) error {
	rep, err := RunGate(o)
	if err != nil {
		return err
	}
	if statsPath != "" {
		data, err := rep.MarshalIndent()
		if err != nil {
			return err
		}
		if err := os.WriteFile(statsPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "bench gate: wrote %s\n", statsPath)
	}
	for _, p := range rep.Presets {
		pairs := int64(0)
		if p.Stats != nil {
			pairs = p.Stats.Counters["race.pairs_checked"]
		}
		fmt.Fprintf(w, "bench gate: %-12s races=%-3d pairs=%d\n", p.Name, p.Races, pairs)
	}
	if rep.Batch != nil {
		fmt.Fprintf(w, "bench gate: batch %d jobs @ %.1f jobs/s (cache %d/%d, warm hit %s) [report-only]\n",
			rep.Batch.Jobs, rep.Batch.JobsPerSec, rep.Batch.CacheHits,
			rep.Batch.CacheHits+rep.Batch.CacheMisses, time.Duration(rep.Batch.WarmHitNS))
	}
	if rep.Inc != nil {
		for _, p := range rep.Inc.Presets {
			fmt.Fprintf(w, "bench gate: incremental %-20s warm=%-10v dirty=%.2f (%d/%d units) speedup=%.1fx [report-only]\n",
				p.Name, time.Duration(p.WarmNS), p.DirtyRatio, p.UnitsRecomputed, p.UnitsTotal, p.Speedup)
		}
	}
	if rep.Corpus != nil {
		fmt.Fprintf(w, "bench gate: corpus %d programs eager %.1f/s stream %.1f/s (workers=%d, races=%d) [report-only]\n",
			rep.Corpus.Programs, rep.Corpus.EagerPerSec, rep.Corpus.StreamPerSec,
			rep.Corpus.Workers, rep.Corpus.Races)
	}
	if rep.GoSync != nil {
		fmt.Fprintf(w, "bench gate: gosync %-10s races=%-3d pairs=%d shb=%d nodes/%d edges wall=%v [report-only]\n",
			rep.GoSync.Preset, rep.GoSync.Races, rep.GoSync.Pairs,
			rep.GoSync.SHBNodes, rep.GoSync.SHBEdges, time.Duration(rep.GoSync.WallNS))
	}
	if rep.Eval != nil {
		t := rep.Eval.Total
		fmt.Fprintf(w, "bench gate: eval precision=%.4f recall=%.4f f1=%.4f (tp=%d fp=%d fn=%d)\n",
			t.Precision, t.Recall, t.F1, t.TP, t.FP, t.FN)
		base, err := truth.Baseline()
		if err != nil {
			return fmt.Errorf("bench gate: baseline: %w", err)
		}
		if err := rep.Eval.CheckAgainstBaseline(base); err != nil {
			return fmt.Errorf("bench gate: %w", err)
		}
	}
	if update {
		det := rep.Deterministic()
		det.AllocBudgets = budgetFromMeasured(rep.measuredAllocs())
		data, err := det.MarshalIndent()
		if err != nil {
			return err
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "bench gate: updated golden %s (%d alloc budgets)\n", goldenPath, len(det.AllocBudgets))
		return nil
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		return fmt.Errorf("bench gate: missing golden (run with -update-golden): %w", err)
	}
	if err := rep.CompareGolden(golden); err != nil {
		return err
	}
	var gr GateReport
	if err := json.Unmarshal(golden, &gr); err != nil {
		return fmt.Errorf("bench gate: bad golden file: %w", err)
	}
	if err := checkAllocBudgets(rep.measuredAllocs(), gr.AllocBudgets); err != nil {
		return err
	}
	fmt.Fprintf(w, "bench gate: ok (matches %s, %d alloc budgets honored)\n", goldenPath, len(gr.AllocBudgets))
	return nil
}
