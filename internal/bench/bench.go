// Package bench regenerates every table of the paper's evaluation (§5)
// over the synthetic workload presets and case studies. Absolute numbers
// differ from the paper (the substrate is minilang, not LLVM/WALA over the
// real corpus); the comparisons each table makes — who is faster, who
// reports fewer warnings, where timeouts appear — reproduce the paper's
// shapes. Budgets stand in for the paper's 4-hour timeout.
package bench

import (
	"time"

	"o2/internal/escape"
	"o2/internal/ir"
	"o2/internal/obs"
	"o2/internal/osa"
	"o2/internal/pta"
	"o2/internal/race"
	"o2/internal/racerd"
	"o2/internal/shb"
	"o2/internal/workload"
)

// Opts configures a harness run.
type Opts struct {
	// StepBudget bounds each pointer analysis (0 = default 30M steps).
	StepBudget int64
	// PairBudget bounds each detection (0 = default 3M pairs).
	PairBudget int64
	// Quick restricts sweeps to a representative subset of presets.
	Quick bool
	// Workers sets the detection worker-pool size (0 = GOMAXPROCS,
	// 1 = sequential).
	Workers int
	// Obs receives phase spans and counters from every pipeline the
	// harness runs (nil = disabled). Sweeps over many presets accumulate
	// spans per phase; the CI gate uses one registry per preset instead.
	Obs *obs.Registry
}

// The default step budget plays the role of the paper's 4-hour timeout:
// calibrated so that 0-ctx, OPA and 1-CFA always fit while the deep-context
// blowups exceed it where the paper reports ">4h".
func (o Opts) steps() int64 {
	if o.StepBudget == 0 {
		return 500_000
	}
	return o.StepBudget
}

func (o Opts) pairs() int64 {
	if o.PairBudget == 0 {
		return 3_000_000
	}
	return o.PairBudget
}

// detectOpts is race.O2Options carrying the harness worker-pool and
// observability settings, so every table honors -workers and -stats-json.
func (o Opts) detectOpts() race.Options {
	opts := race.O2Options()
	opts.Workers = o.Workers
	opts.Obs = o.Obs
	return opts
}

// Policies compared throughout the evaluation, in paper column order.
var (
	P0    = pta.Policy{Kind: pta.Insensitive}
	POPA  = pta.Policy{Kind: pta.KOrigin, K: 1}
	P1CFA = pta.Policy{Kind: pta.KCFA, K: 1}
	P2CFA = pta.Policy{Kind: pta.KCFA, K: 2}
	P1Obj = pta.Policy{Kind: pta.KObj, K: 1}
	P2Obj = pta.Policy{Kind: pta.KObj, K: 2}
)

// AllPolicies is the Table 5/8 policy column order.
var AllPolicies = []pta.Policy{P0, POPA, P1CFA, P2CFA, P1Obj, P2Obj}

// PTARun is the result of one pointer-analysis execution.
type PTARun struct {
	A        *pta.Analysis
	Stats    pta.Stats
	Time     time.Duration
	TimedOut bool
}

// RunPTA executes one pointer analysis under a budget.
func RunPTA(prog *ir.Program, pol pta.Policy, entries ir.EntryConfig, stepBudget int64) PTARun {
	return RunPTAObs(prog, pol, entries, stepBudget, nil)
}

// RunPTAObs is RunPTA reporting into an observability registry.
func RunPTAObs(prog *ir.Program, pol pta.Policy, entries ir.EntryConfig, stepBudget int64, reg *obs.Registry) PTARun {
	a := pta.New(prog, pta.Config{Policy: pol, Entries: entries, StepBudget: stepBudget, Obs: reg})
	h0 := obs.ReadHeapCounters()
	t0 := time.Now()
	err := a.Solve()
	dt := time.Since(t0)
	reg.HeapGauges("pta", h0)
	return PTARun{A: a, Stats: a.Stats(), Time: dt, TimedOut: err != nil}
}

// DetectRun is the result of one full detection pipeline stage (OSA + SHB
// + race engine) on top of a solved pointer analysis.
type DetectRun struct {
	Sharing  *osa.Result
	Graph    *shb.Graph
	Report   *race.Report
	OSATime  time.Duration
	SHBTime  time.Duration
	Time     time.Duration // detection only
	TimedOut bool
}

// RunDetect executes OSA, SHB construction and race detection. The
// registry in opts.Obs (if any) also observes the OSA and SHB phases.
func RunDetect(a *pta.Analysis, opts race.Options, android bool, pairBudget int64) DetectRun {
	opts.PairBudget = pairBudget
	h0 := obs.ReadHeapCounters()
	t0 := time.Now()
	sharing := osa.AnalyzeWith(a, opts.Obs)
	opts.Obs.HeapGauges("osa", h0)
	h1 := obs.ReadHeapCounters()
	t1 := time.Now()
	g := shb.Build(a, shb.Config{AndroidEvents: android, Obs: opts.Obs})
	opts.Obs.HeapGauges("shb", h1)
	h2 := obs.ReadHeapCounters()
	t2 := time.Now()
	rep := race.Detect(a, sharing, g, opts)
	t3 := time.Now()
	opts.Obs.HeapGauges("detect", h2)
	return DetectRun{
		Sharing: sharing, Graph: g, Report: rep,
		OSATime: t1.Sub(t0), SHBTime: t2.Sub(t1), Time: t3.Sub(t2),
		TimedOut: rep.TimedOut,
	}
}

// Pipeline runs PTA + detection for one preset and policy.
type Pipeline struct {
	PTA    PTARun
	Detect DetectRun
	// Total is PTA + OSA + SHB + detection (the paper's race-detection
	// columns include the pointer analysis).
	Total    time.Duration
	TimedOut bool
}

// RunPipeline runs the full O2 pipeline on a generated preset program.
func RunPipeline(p workload.Preset, pol pta.Policy, o Opts) Pipeline {
	entries := ir.DefaultEntryConfig()
	prog := workload.Build(p, entries)
	return RunPipelineProg(prog, pol, entries, o, false)
}

// RunPipelineProg runs the full pipeline on an existing program.
func RunPipelineProg(prog *ir.Program, pol pta.Policy, entries ir.EntryConfig, o Opts, android bool) Pipeline {
	pr := RunPTAObs(prog, pol, entries, o.steps(), o.Obs)
	if pr.TimedOut {
		return Pipeline{PTA: pr, Total: pr.Time, TimedOut: true}
	}
	dr := RunDetect(pr.A, o.detectOpts(), android, o.pairs())
	return Pipeline{
		PTA: pr, Detect: dr,
		Total:    pr.Time + dr.OSATime + dr.SHBTime + dr.Time,
		TimedOut: dr.TimedOut,
	}
}

// RunRacerD runs the RacerD-style comparator on a preset.
func RunRacerD(p workload.Preset) *racerd.Report {
	entries := ir.DefaultEntryConfig()
	prog := workload.Build(p, entries)
	return racerd.Analyze(prog, entries)
}

// RunEscape runs the TLOA-style escape analysis (over 2-CFA, per §5.1.2)
// on a preset. The bool reports whether the underlying pointer analysis
// timed out (TLOA inherits the timeout).
func RunEscape(p workload.Preset, o Opts) (*escape.Report, time.Duration, bool) {
	entries := ir.DefaultEntryConfig()
	prog := workload.Build(p, entries)
	pr := RunPTA(prog, P2CFA, entries, o.steps())
	if pr.TimedOut {
		return nil, pr.Time, true
	}
	rep := escape.Analyze(pr.A)
	return rep, pr.Time + rep.Elapsed, false
}
