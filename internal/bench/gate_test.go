package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGateMatchesCheckedInGolden runs the gate workloads once and checks
// them against the committed golden — the same comparison `ci.sh
// bench-gate` performs — then injects drift into the golden and asserts
// the comparison fails with a diff naming the drifted field.
func TestGateMatchesCheckedInGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("gate runs three full pipelines")
	}
	rep, err := RunGate(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "bench_gate_golden.json"))
	if err != nil {
		t.Fatalf("missing golden (regenerate with `go run ./cmd/o2bench -table gate -update-golden`): %v", err)
	}
	if err := rep.CompareGolden(golden); err != nil {
		t.Fatalf("gate drifted from checked-in golden: %v", err)
	}

	// Injected drift: a changed pairs-checked count must fail the gate.
	tampered := bytes.Replace(golden, []byte(`"race.pairs_checked": 245`), []byte(`"race.pairs_checked": 999`), 1)
	if bytes.Equal(tampered, golden) {
		t.Fatal("tamper target not found in golden; update the test")
	}
	err = rep.CompareGolden(tampered)
	if err == nil {
		t.Fatal("gate accepted tampered pairs-checked golden")
	}
	if !strings.Contains(err.Error(), "race.pairs_checked") {
		t.Fatalf("drift error does not name the drifted counter: %v", err)
	}

	// Times must NOT be gated: scaling every span time in the golden
	// changes nothing deterministic, so the comparison still passes.
	var full GateReport
	if err := json.Unmarshal(golden, &full); err != nil {
		t.Fatal(err)
	}
	for _, p := range full.Presets {
		if p.Stats == nil {
			continue
		}
		for i := range p.Stats.Phases {
			p.Stats.Phases[i].WallNS += 1_000_000_000
			p.Stats.Phases[i].CPUNS += 1_000_000_000
		}
	}
	timed, err := full.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CompareGolden(timed); err != nil {
		t.Fatalf("gate rejected a time-only change (times must not be gated): %v", err)
	}
}

// TestGateDeterministicAcrossRuns pins the gate's premise: two runs of
// the same workloads produce byte-identical deterministic projections.
func TestGateDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("gate runs three full pipelines twice")
	}
	a, err := RunGate(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGate(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	da, err := a.Deterministic().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Deterministic().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatalf("gate report not deterministic:\n%s", diffLines(string(da), string(db)))
	}
}

// TestAllocBudgets pins the allocation-budget arithmetic: ceilings carry
// 10% headroom plus the noise floor, a measurement within its ceiling
// passes, one beyond it fails naming the phase, and goldens without
// budgets gate nothing.
func TestAllocBudgets(t *testing.T) {
	measured := map[string]AllocBudget{
		"zookeeper/pta":    {Allocs: 1000, Bytes: 500_000},
		"zookeeper/detect": {Allocs: 5, Bytes: 16_000},
	}
	budgets := budgetFromMeasured(measured)
	if b := budgets["zookeeper/pta"]; b.Allocs != 1000+100+32 || b.Bytes != 500_000+50_000+8192 {
		t.Fatalf("budget headroom wrong: %+v", b)
	}
	// The noise floor keeps near-zero phases gateable: a stray background
	// allocation on a 5-alloc phase must not trip the ceiling.
	if b := budgets["zookeeper/detect"]; b.Allocs < 5+32 {
		t.Fatalf("near-zero phase lacks noise floor: %+v", b)
	}
	if err := checkAllocBudgets(measured, budgets); err != nil {
		t.Fatalf("measurement exceeded its own budget: %v", err)
	}
	over := map[string]AllocBudget{
		"zookeeper/pta": {Allocs: budgets["zookeeper/pta"].Allocs + 1, Bytes: 0},
	}
	err := checkAllocBudgets(over, budgets)
	if err == nil {
		t.Fatal("regression beyond budget accepted")
	}
	if !strings.Contains(err.Error(), "zookeeper/pta") {
		t.Fatalf("budget error does not name the regressed phase: %v", err)
	}
	if err := checkAllocBudgets(measured, nil); err != nil {
		t.Fatalf("golden without budgets must gate nothing: %v", err)
	}
	// A phase present in the golden but not measured (e.g. renamed) is
	// skipped rather than failed — CompareGolden catches schema drift.
	if err := checkAllocBudgets(nil, budgets); err != nil {
		t.Fatalf("unmeasured budget key must not fail: %v", err)
	}
}

func TestGateUnknownPreset(t *testing.T) {
	old := GatePresetNames
	GatePresetNames = []string{"no-such-preset"}
	defer func() { GatePresetNames = old }()
	if _, err := RunGate(Opts{}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}
