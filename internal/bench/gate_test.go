package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGateMatchesCheckedInGolden runs the gate workloads once and checks
// them against the committed golden — the same comparison `ci.sh
// bench-gate` performs — then injects drift into the golden and asserts
// the comparison fails with a diff naming the drifted field.
func TestGateMatchesCheckedInGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("gate runs three full pipelines")
	}
	rep, err := RunGate(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "bench_gate_golden.json"))
	if err != nil {
		t.Fatalf("missing golden (regenerate with `go run ./cmd/o2bench -table gate -update-golden`): %v", err)
	}
	if err := rep.CompareGolden(golden); err != nil {
		t.Fatalf("gate drifted from checked-in golden: %v", err)
	}

	// Injected drift: a changed pairs-checked count must fail the gate.
	tampered := bytes.Replace(golden, []byte(`"race.pairs_checked": 245`), []byte(`"race.pairs_checked": 999`), 1)
	if bytes.Equal(tampered, golden) {
		t.Fatal("tamper target not found in golden; update the test")
	}
	err = rep.CompareGolden(tampered)
	if err == nil {
		t.Fatal("gate accepted tampered pairs-checked golden")
	}
	if !strings.Contains(err.Error(), "race.pairs_checked") {
		t.Fatalf("drift error does not name the drifted counter: %v", err)
	}

	// Times must NOT be gated: scaling every span time in the golden
	// changes nothing deterministic, so the comparison still passes.
	var full GateReport
	if err := json.Unmarshal(golden, &full); err != nil {
		t.Fatal(err)
	}
	for _, p := range full.Presets {
		if p.Stats == nil {
			continue
		}
		for i := range p.Stats.Phases {
			p.Stats.Phases[i].WallNS += 1_000_000_000
			p.Stats.Phases[i].CPUNS += 1_000_000_000
		}
	}
	timed, err := full.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CompareGolden(timed); err != nil {
		t.Fatalf("gate rejected a time-only change (times must not be gated): %v", err)
	}
}

// TestGateDeterministicAcrossRuns pins the gate's premise: two runs of
// the same workloads produce byte-identical deterministic projections.
func TestGateDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("gate runs three full pipelines twice")
	}
	a, err := RunGate(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGate(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	da, err := a.Deterministic().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Deterministic().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatalf("gate report not deterministic:\n%s", diffLines(string(da), string(db)))
	}
}

func TestGateUnknownPreset(t *testing.T) {
	old := GatePresetNames
	GatePresetNames = []string{"no-such-preset"}
	defer func() { GatePresetNames = old }()
	if _, err := RunGate(Opts{}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}
