package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"o2/internal/obs"
	"o2/internal/workload"
)

// The variance harness answers the question the byte-compared gate
// cannot: are the timings CI records stable enough to trend? It reruns
// every gate preset's full pipeline several times, discards warmup
// iterations (cold caches, first-GC effects), and reports per-phase
// wall-time dispersion as mean, stddev and the coefficient of variation
// (stddev/mean). CI fails when any gated phase's CV exceeds MaxCV —
// noisy timings mean the perf numbers in EXPERIMENTS.md and the artifact
// trend lines cannot be trusted, which is itself a CI-environment
// regression worth surfacing.

// Variance harness defaults: 10 measured runs after 2 warmup discards,
// gate at CV > 15%. Phases faster than varianceFloorNS are reported but
// not gated — scheduler jitter dominates sub-millisecond phases and says
// nothing about the benchmark environment.
const (
	VarianceRuns   = 10
	VarianceWarmup = 2
	VarianceMaxCV  = 0.15

	varianceFloorNS = 1e6 // 1ms
)

// PhaseVariance is one phase's timing dispersion across the measured runs.
type PhaseVariance struct {
	Phase    string  `json:"phase"`
	MeanNS   float64 `json:"mean_ns"`
	StddevNS float64 `json:"stddev_ns"`
	// CV is the coefficient of variation, stddev/mean.
	CV float64 `json:"cv"`
	// Gated reports whether this phase participates in the CV check
	// (mean wall time at or above the 1ms floor).
	Gated bool `json:"gated"`
	// SamplesNS are the raw measured wall times, for offline inspection
	// of outliers in the uploaded artifact.
	SamplesNS []int64 `json:"samples_ns"`
}

// VariancePreset is one workload's variance entry.
type VariancePreset struct {
	Name   string          `json:"name"`
	Races  int             `json:"races"`
	Phases []PhaseVariance `json:"phases"`
}

// VarianceReport is the bench-variance artifact (VARIANCE_ci.json).
type VarianceReport struct {
	Schema  int              `json:"schema"`
	Runs    int              `json:"runs"`
	Warmup  int              `json:"warmup"`
	MaxCV   float64          `json:"max_cv"`
	Presets []VariancePreset `json:"presets"`
}

// variancePhases are the pipeline stages timed per run, in execution
// order.
var variancePhases = []string{"pta", "osa", "shb", "detect"}

// RunVariance executes each gate preset warmup+runs times and collects
// per-phase wall times. Worker count is pinned to 1 and the collector is
// parked during each measured pipeline (same protocol as the alloc
// budgets) so the dispersion measures the environment, not GC pacing.
// Every repeat must report the identical race count — a mismatch means
// the detector itself is nondeterministic and fails immediately.
func RunVariance(o Opts, runs, warmup int) (*VarianceReport, error) {
	if runs < 2 {
		return nil, fmt.Errorf("bench variance: need at least 2 measured runs, got %d", runs)
	}
	rep := &VarianceReport{Schema: obs.SchemaVersion, Runs: runs, Warmup: warmup, MaxCV: VarianceMaxCV}
	for _, name := range GatePresetNames {
		p, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench variance: unknown preset %q", name)
		}
		samples := make(map[string][]int64, len(variancePhases))
		races := -1
		for i := 0; i < warmup+runs; i++ {
			run := o
			run.Workers = 1
			runtime.GC()
			oldGC := debug.SetGCPercent(-1)
			pl := RunPipeline(p, POPA, run)
			debug.SetGCPercent(oldGC)
			if pl.TimedOut {
				return nil, fmt.Errorf("bench variance: preset %q timed out", name)
			}
			got := 0
			if pl.Detect.Report != nil {
				got = len(pl.Detect.Report.Races)
			}
			if races == -1 {
				races = got
			} else if got != races {
				return nil, fmt.Errorf("bench variance: preset %q nondeterministic: run %d found %d races, earlier runs %d",
					name, i, got, races)
			}
			if i < warmup {
				continue
			}
			for ph, d := range map[string]time.Duration{
				"pta":    pl.PTA.Time,
				"osa":    pl.Detect.OSATime,
				"shb":    pl.Detect.SHBTime,
				"detect": pl.Detect.Time,
			} {
				samples[ph] = append(samples[ph], int64(d))
			}
		}
		vp := VariancePreset{Name: name, Races: races}
		for _, ph := range variancePhases {
			vp.Phases = append(vp.Phases, phaseVariance(ph, samples[ph]))
		}
		rep.Presets = append(rep.Presets, vp)
	}
	return rep, nil
}

func phaseVariance(name string, ns []int64) PhaseVariance {
	// Trim the single fastest and slowest sample (when enough remain)
	// before computing the dispersion: one scheduler hiccup in ten runs
	// is an outlier, not environment noise, and must not flake the gate.
	// Systemic noise spreads across samples and survives the trim. The
	// raw untrimmed samples stay in the artifact.
	trimmed := append([]int64(nil), ns...)
	if len(trimmed) >= 4 {
		sort.Slice(trimmed, func(i, j int) bool { return trimmed[i] < trimmed[j] })
		trimmed = trimmed[1 : len(trimmed)-1]
	}
	var sum float64
	for _, v := range trimmed {
		sum += float64(v)
	}
	mean := sum / float64(len(trimmed))
	var sq float64
	for _, v := range trimmed {
		d := float64(v) - mean
		sq += d * d
	}
	// Sample stddev (n-1): the runs are a sample of the environment's
	// timing distribution, not the whole population.
	std := math.Sqrt(sq / float64(len(trimmed)-1))
	cv := 0.0
	if mean > 0 {
		cv = std / mean
	}
	return PhaseVariance{
		Phase:     name,
		MeanNS:    mean,
		StddevNS:  std,
		CV:        cv,
		Gated:     mean >= varianceFloorNS,
		SamplesNS: ns,
	}
}

// Check fails if any gated phase's coefficient of variation exceeds the
// report's MaxCV.
func (r *VarianceReport) Check() error {
	var over []string
	for _, p := range r.Presets {
		for _, ph := range p.Phases {
			if ph.Gated && ph.CV > r.MaxCV {
				over = append(over, fmt.Sprintf("%s/%s: cv=%.1f%% (mean %v, stddev %v)",
					p.Name, ph.Phase, 100*ph.CV,
					time.Duration(int64(ph.MeanNS)), time.Duration(int64(ph.StddevNS))))
			}
		}
	}
	if len(over) == 0 {
		return nil
	}
	out := ""
	for _, l := range over {
		out += "\n  " + l
	}
	return fmt.Errorf("bench variance: timing noise above %.0f%% — benchmark numbers from this environment are untrustworthy:%s",
		100*r.MaxCV, out)
}

// MarshalIndent renders the report as stable, diffable JSON.
func (r *VarianceReport) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Variance runs the variance harness, writes the artifact to statsPath
// if non-empty, prints the per-phase table, and fails on excessive CV.
func Variance(w io.Writer, o Opts, statsPath string) error {
	rep, err := RunVariance(o, VarianceRuns, VarianceWarmup)
	if err != nil {
		return err
	}
	if statsPath != "" {
		data, err := rep.MarshalIndent()
		if err != nil {
			return err
		}
		if err := os.WriteFile(statsPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "bench variance: wrote %s\n", statsPath)
	}
	for _, p := range rep.Presets {
		for _, ph := range p.Phases {
			gate := "gated"
			if !ph.Gated {
				gate = "report-only (<1ms)"
			}
			fmt.Fprintf(w, "bench variance: %-12s %-7s mean=%-12v stddev=%-12v cv=%5.1f%% [%s]\n",
				p.Name, ph.Phase, time.Duration(int64(ph.MeanNS)), time.Duration(int64(ph.StddevNS)),
				100*ph.CV, gate)
		}
	}
	if err := rep.Check(); err != nil {
		return err
	}
	fmt.Fprintf(w, "bench variance: ok (%d presets x %d runs, all gated phases cv <= %.0f%%)\n",
		len(rep.Presets), rep.Runs, 100*rep.MaxCV)
	return nil
}
