package bench

import "testing"

func TestRunIncGate(t *testing.T) {
	st, err := RunIncGate()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Presets) != len(IncGatePrograms) {
		t.Fatalf("got %d presets, want %d", len(st.Presets), len(IncGatePrograms))
	}
	for _, p := range st.Presets {
		if p.Fallback {
			t.Errorf("%s: fell back to whole-program compilation", p.Name)
			continue
		}
		if p.UnitsReused == 0 || p.UnitsRecomputed >= p.UnitsTotal {
			t.Errorf("%s: one-unit edit did not reuse units: %+v", p.Name, p)
		}
		if p.DirtyRatio <= 0 || p.DirtyRatio >= 1 {
			t.Errorf("%s: dirty ratio %v outside (0,1)", p.Name, p.DirtyRatio)
		}
		if p.ColdNS <= 0 || p.WarmNS <= 0 {
			t.Errorf("%s: missing timings: %+v", p.Name, p)
		}
	}
}
