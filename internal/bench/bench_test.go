package bench

import (
	"bytes"
	"strings"
	"testing"

	"o2/internal/ir"
	"o2/internal/workload"
)

var quick = Opts{Quick: true}

func TestTable5Shapes(t *testing.T) {
	var buf bytes.Buffer
	left, right := Table5(&buf, quick)
	if len(left.Rows) == 0 || len(right.Rows) != len(left.Rows) {
		t.Fatalf("row counts: left %d right %d", len(left.Rows), len(right.Rows))
	}
	out := buf.String()
	if !strings.Contains(out, "Table 5") {
		t.Errorf("missing title")
	}
	// OPA must never hit the budget (column 3 of the left table).
	for _, row := range left.Rows {
		if row[3] == timeoutCell {
			t.Errorf("%s: OPA must stay under budget", row[0])
		}
	}
	// At least one deep-context cell must time out, mirroring the paper's
	// >4h entries.
	timeouts := 0
	for _, row := range left.Rows {
		for _, cell := range row[4:] {
			if cell == timeoutCell {
				timeouts++
			}
		}
	}
	if timeouts == 0 {
		t.Errorf("expected deep-context timeouts in the quick subset")
	}
}

func TestTable6Shapes(t *testing.T) {
	var buf bytes.Buffer
	tb := Table6(&buf, quick)
	if len(tb.Rows) != 4*len(workload.Table6) {
		t.Fatalf("want 4 metric rows per app, got %d", len(tb.Rows))
	}
	// O2's pointer count exceeds 0-ctx (contexted pointers) on every app.
	for i := 1; i < len(tb.Rows); i += 4 {
		row := tb.Rows[i]
		if row[2] != "#Pointer" {
			t.Fatalf("row layout changed: %v", row)
		}
	}
}

func TestTable7Shapes(t *testing.T) {
	var buf bytes.Buffer
	tb := Table7(&buf, quick)
	if len(tb.Rows) != 4 {
		t.Fatalf("quick Table 7 should cover 4 presets, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] == timeoutCell {
			t.Errorf("%s: OSA must complete", row[0])
		}
	}
}

func TestTable8Reductions(t *testing.T) {
	var buf bytes.Buffer
	tb := Table8(&buf, quick)
	for _, row := range tb.Rows {
		if row[3] == "-" {
			continue
		}
		if !strings.HasSuffix(row[3], "%") {
			t.Errorf("%s: reduction cell %q", row[0], row[3])
		}
	}
}

func TestTable9Shapes(t *testing.T) {
	var buf bytes.Buffer
	tb := Table9(&buf, quick)
	if len(tb.Rows) != 4 {
		t.Fatalf("want 4 distributed systems, got %d", len(tb.Rows))
	}
}

func TestTable10AllMatch(t *testing.T) {
	var buf bytes.Buffer
	results, tb := Table10(&buf)
	if len(results) != 11 {
		t.Fatalf("want 11 case studies, got %d", len(results))
	}
	for _, r := range results {
		if r.Detected != r.Expected {
			t.Errorf("%s: detected %d, want %d", r.Name, r.Detected, r.Expected)
		}
	}
	if strings.Contains(buf.String(), "✗") {
		t.Errorf("table contains mismatches:\n%s", buf.String())
	}
	_ = tb
}

func TestAblationSound(t *testing.T) {
	var buf bytes.Buffer
	tb := Ablation(&buf, quick)
	// All variants of one app report the same race count.
	counts := map[string]string{}
	for _, row := range tb.Rows {
		app, races := row[0], row[len(row)-1]
		if strings.HasPrefix(races, "≥") {
			continue // budget-limited counts are lower bounds
		}
		if prev, ok := counts[app]; ok && prev != races {
			t.Errorf("%s: race counts differ across variants: %s vs %s", app, prev, races)
		}
		counts[app] = races
	}
}

func TestTable3Monotone(t *testing.T) {
	var buf bytes.Buffer
	tb := Table3(&buf, quick)
	if len(tb.Rows) < 2 {
		t.Fatalf("need at least two scales")
	}
}

func TestLinuxModel(t *testing.T) {
	var buf bytes.Buffer
	tb := Linux(&buf, Opts{})
	if tb == nil {
		t.Fatalf("linux model exceeded budget")
	}
	if !strings.Contains(buf.String(), "races reported") {
		t.Errorf("missing races row")
	}
}

func TestRunPipeline(t *testing.T) {
	p, _ := workload.ByName("avrora")
	pl := RunPipeline(p, POPA, Opts{})
	if pl.TimedOut {
		t.Fatalf("avrora should complete")
	}
	if pl.Total <= 0 || len(pl.Detect.Report.Races) == 0 {
		t.Errorf("pipeline produced no output")
	}
	_ = ir.DefaultEntryConfig()
}

func TestExtensionsTable(t *testing.T) {
	var buf bytes.Buffer
	tb := Extensions(&buf, quick)
	if len(tb.Rows) == 0 {
		t.Fatalf("no rows")
	}
	for _, row := range tb.Rows {
		if row[2] == "0" {
			t.Errorf("%s: expected the inverted-lock deadlock", row[0])
		}
		if row[5] == "0" {
			t.Errorf("%s: expected unnecessary regions", row[0])
		}
	}
}

func TestAndroidTable(t *testing.T) {
	var buf bytes.Buffer
	tb := Android(&buf, quick)
	for _, row := range tb.Rows {
		if row[3] != "0" {
			t.Errorf("%s: android mode left event-event races: %s", row[0], row[3])
		}
		if row[4] == "0" {
			t.Errorf("%s: thread-event races should survive android mode", row[0])
		}
	}
}
