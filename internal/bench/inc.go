package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"o2"
	"o2/internal/summary"
	"o2/internal/truth"
)

// The warm-incremental section of the bench gate: for three multi-unit
// corpus programs, analyze cold into a fresh unit store, apply a
// one-statement edit to main, and re-analyze warm. Reported are the
// cold and warm latencies, the dirty-unit counts and the speedup — all
// timing-dependent, so the section is report-only (BENCH_ci.json
// carries it for trend tracking; the golden comparison never sees it).

// IncGatePrograms are the corpus programs the incremental gate measures.
// Workload presets build IR directly and never pass through the
// front end, so the gate uses source-form corpus programs instead.
var IncGatePrograms = []string{"thread_counter", "figure2_origins", "android_two_handlers"}

// IncPreset is one program's warm-incremental measurement.
type IncPreset struct {
	Name   string `json:"name"`
	ColdNS int64  `json:"cold_ns"`
	WarmNS int64  `json:"warm_ns"`
	// Unit accounting of the warm (edited) run.
	UnitsTotal      int     `json:"units_total"`
	UnitsReused     int     `json:"units_reused"`
	UnitsRecomputed int     `json:"units_recomputed"`
	DirtyRatio      float64 `json:"dirty_ratio"`
	Speedup         float64 `json:"speedup"`
	Fallback        bool    `json:"fallback,omitempty"`
}

// IncGateStats is the report-only incremental section of the gate.
type IncGateStats struct {
	Presets []IncPreset `json:"presets"`
}

// RunIncGate measures warm incremental re-analysis after a one-unit
// edit on each gate program.
func RunIncGate() (*IncGateStats, error) {
	corpus, err := truth.Corpus()
	if err != nil {
		return nil, err
	}
	byName := map[string]*truth.Program{}
	for i := range corpus {
		byName[corpus[i].Name] = &corpus[i]
	}
	out := &IncGateStats{}
	for _, name := range IncGatePrograms {
		p := byName[name]
		if p == nil {
			return nil, fmt.Errorf("bench inc gate: corpus program %q missing", name)
		}
		// Seed from the canonical form so the edited text differs from
		// the seeded text by exactly the inserted statement.
		canonical, err := truth.FormattedSource(p, truth.Transforms()[0])
		if err != nil {
			return nil, fmt.Errorf("bench inc gate: %s: %w", name, err)
		}
		cfg := p.Config()
		cfg.Workers = 1
		store := summary.NewStore(0)
		t0 := time.Now()
		if _, err := o2.AnalyzeSourceIncremental(context.Background(), p.File, canonical, cfg, store); err != nil {
			return nil, fmt.Errorf("bench inc gate: %s: cold: %w", name, err)
		}
		cold := time.Since(t0)

		edited, err := editMain(canonical)
		if err != nil {
			return nil, fmt.Errorf("bench inc gate: %s: %w", name, err)
		}
		t1 := time.Now()
		res, err := o2.AnalyzeSourceIncremental(context.Background(), p.File, edited, cfg, store)
		if err != nil {
			return nil, fmt.Errorf("bench inc gate: %s: warm: %w", name, err)
		}
		warm := time.Since(t1)

		ip := IncPreset{
			Name:   name,
			ColdNS: int64(cold),
			WarmNS: int64(warm),
		}
		if st := res.Inc; st != nil {
			ip.UnitsTotal = st.UnitsTotal
			ip.UnitsReused = st.UnitsReused
			ip.UnitsRecomputed = st.UnitsRecomputed
			ip.DirtyRatio = st.DirtyRatio()
			ip.Fallback = st.Fallback
		}
		if warm > 0 {
			ip.Speedup = float64(cold) / float64(warm)
		}
		out.Presets = append(out.Presets, ip)
	}
	return out, nil
}

// editMain inserts an inert statement at the top of main's body — the
// canonical one-unit edit.
func editMain(src string) (string, error) {
	lines := strings.Split(src, "\n")
	for i, ln := range lines {
		if strings.HasPrefix(ln, "main {") {
			edited := append([]string{}, lines[:i+1]...)
			edited = append(edited, "\tzq_bench_edit = null;")
			edited = append(edited, lines[i+1:]...)
			return strings.Join(edited, "\n"), nil
		}
	}
	return "", fmt.Errorf("no main body found")
}
