package bench

import (
	"fmt"
	"io"
	"time"

	"o2/internal/cases"
	"o2/internal/deadlock"
	"o2/internal/escape"
	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/osa"
	"o2/internal/oversync"
	"o2/internal/pta"
	"o2/internal/race"
	"o2/internal/racerd"
	"o2/internal/report"
	"o2/internal/shb"
	"o2/internal/workload"
)

const timeoutCell = ">budget"

// Table5 regenerates the paper's Table 5: pointer-analysis and race-
// detection time per policy on the JVM-style presets, plus the
// RacerD-style comparator. Returns the two sub-tables (left: PTA, right:
// detection).
func Table5(w io.Writer, o Opts) (*report.Table, *report.Table) {
	presets := workload.Table5
	if o.Quick {
		presets = []workload.Preset{presets[0], presets[9], presets[21], presets[26]}
	}
	entries := ir.DefaultEntryConfig()

	left := &report.Table{
		Title: "Table 5 (left): pointer analysis time",
		Cols:  []string{"App", "#O", "0-ctx", "OPA", "1-CFA", "2-CFA", "1-obj", "2-obj"},
		Note:  timeoutCell + ": exceeded the step budget (the paper's >4h).",
	}
	right := &report.Table{
		Title: "Table 5 (right): race detection time (incl. pointer analysis)",
		Cols:  []string{"App", "0-ctx", "O2", "O2-vs-0ctx", "1-CFA", "2-CFA", "1-obj", "2-obj", "RacerD"},
		Note:  timeoutCell + ": pointer analysis or pair budget exhausted.",
	}

	for _, p := range presets {
		prog := workload.Build(p, entries)
		var ptaCells, detCells []interface{}
		numOrigins := 0
		var t0ctx, tO2 time.Duration
		for _, pol := range AllPolicies {
			pr := RunPTA(prog, pol, entries, o.steps())
			if pol == POPA {
				numOrigins = pr.Stats.Origins
			}
			if pr.TimedOut {
				ptaCells = append(ptaCells, timeoutCell)
				detCells = append(detCells, timeoutCell)
				continue
			}
			ptaCells = append(ptaCells, report.Dur(pr.Time))
			dr := RunDetect(pr.A, o.detectOpts(), false, o.pairs())
			total := pr.Time + dr.OSATime + dr.SHBTime + dr.Time
			switch {
			case dr.TimedOut:
				detCells = append(detCells, timeoutCell)
			default:
				detCells = append(detCells, report.Dur(total))
			}
			if pol == P0 && !dr.TimedOut {
				t0ctx = total
			}
			if pol == POPA && !dr.TimedOut {
				tO2 = total
			}
		}
		rd := racerd.Analyze(prog, entries)

		leftRow := append([]interface{}{p.Name, numOrigins}, ptaCells...)
		left.Add(leftRow...)
		rightRow := []interface{}{p.Name, detCells[0], detCells[1], report.Speedup(t0ctx, tO2)}
		rightRow = append(rightRow, detCells[2], detCells[3], detCells[4], detCells[5], report.Dur(rd.Elapsed))
		right.Add(rightRow...)
	}
	left.Render(w)
	right.Render(w)
	return left, right
}

// Table6 regenerates the paper's Table 6: C/C++-style presets with
// time/#Pointer/#Object/#Edge for 0-ctx, O2 (OPA) and 2-CFA.
func Table6(w io.Writer, o Opts) *report.Table {
	entries := ir.DefaultEntryConfig()
	t := &report.Table{
		Title: "Table 6: C/C++-style benchmarks",
		Cols:  []string{"App", "#Instr", "Metric", "0-ctx", "O2", "2-CFA"},
		Note:  timeoutCell + " models the paper's OOM/timeout cells.",
	}
	for _, p := range workload.Table6 {
		prog := workload.Build(p, entries)
		runs := make([]PTARun, 3)
		for i, pol := range []pta.Policy{P0, POPA, P2CFA} {
			runs[i] = RunPTA(prog, pol, entries, o.steps())
		}
		cell := func(i int, f func(PTARun) interface{}) interface{} {
			if runs[i].TimedOut {
				return timeoutCell
			}
			return f(runs[i])
		}
		kloc := fmt.Sprintf("%d", prog.NumInstrs)
		t.Add(p.Name, kloc, "Time",
			cell(0, func(r PTARun) interface{} { return report.Dur(r.Time) }),
			cell(1, func(r PTARun) interface{} { return report.Dur(r.Time) }),
			cell(2, func(r PTARun) interface{} { return report.Dur(r.Time) }))
		t.Add("", "", "#Pointer",
			cell(0, func(r PTARun) interface{} { return r.Stats.Pointers }),
			cell(1, func(r PTARun) interface{} { return r.Stats.Pointers }),
			cell(2, func(r PTARun) interface{} { return r.Stats.Pointers }))
		t.Add("", "", "#Object",
			cell(0, func(r PTARun) interface{} { return r.Stats.Objects }),
			cell(1, func(r PTARun) interface{} { return r.Stats.Objects }),
			cell(2, func(r PTARun) interface{} { return r.Stats.Objects }))
		t.Add("", "", "#Edge",
			cell(0, func(r PTARun) interface{} { return r.Stats.Edges }),
			cell(1, func(r PTARun) interface{} { return r.Stats.Edges }),
			cell(2, func(r PTARun) interface{} { return r.Stats.Edges }))
	}
	t.Render(w)
	return t
}

// Table7 regenerates the paper's Table 7: OSA's origin-shared access count
// and time versus the TLOA-style escape analysis (run over 2-CFA, which is
// why it is slow or times out).
func Table7(w io.Writer, o Opts) *report.Table {
	entries := ir.DefaultEntryConfig()
	t := &report.Table{
		Title: "Table 7: OSA vs thread-escape analysis (TLOA-style)",
		Cols:  []string{"App", "#S-access(OSA)", "OSA time(incl OPA)", "#S-access(TLOA)", "TLOA time(incl 2-CFA)"},
		Note:  "TLOA counts every access to an escaped object; OSA computes per-origin sharing.",
	}
	presets := workload.Dacapo()
	if o.Quick {
		presets = presets[:4]
	}
	for _, p := range presets {
		prog := workload.Build(p, entries)
		pr := RunPTA(prog, POPA, entries, o.steps())
		var osaCellA, osaCellT interface{} = timeoutCell, timeoutCell
		if !pr.TimedOut {
			t0 := time.Now()
			sh := osa.Analyze(pr.A)
			osaCellA = sh.SharedAccesses
			osaCellT = report.Dur(pr.Time + time.Since(t0))
		}
		var escA, escT interface{} = timeoutCell, timeoutCell
		pr2 := RunPTA(prog, P2CFA, entries, o.steps())
		if !pr2.TimedOut {
			rep := escape.Analyze(pr2.A)
			escA = rep.SharedAccesses
			escT = report.Dur(pr2.Time + rep.Elapsed)
		}
		t.Add(p.Name, osaCellA, osaCellT, escA, escT)
	}
	t.Render(w)
	return t
}

// Table8 regenerates the paper's Table 8: reported races per policy on the
// Dacapo presets, with reductions normalized to 0-ctx, plus RacerD.
func Table8(w io.Writer, o Opts) *report.Table {
	entries := ir.DefaultEntryConfig()
	t := &report.Table{
		Title: "Table 8: #Races per pointer analysis (reduction vs 0-ctx)",
		Cols:  []string{"App", "0-ctx", "O2", "red%", "1-CFA", "2-CFA", "1-obj", "2-obj", "RacerD"},
		Note:  "≥N: detection hit the pair budget (count is a lower bound).",
	}
	presets := workload.Dacapo()
	if o.Quick {
		presets = presets[:4]
	}
	for _, p := range presets {
		prog := workload.Build(p, entries)
		counts := make([]interface{}, len(AllPolicies))
		base, o2races := -1, -1
		for i, pol := range AllPolicies {
			pr := RunPTA(prog, pol, entries, o.steps())
			if pr.TimedOut {
				counts[i] = timeoutCell
				continue
			}
			dr := RunDetect(pr.A, o.detectOpts(), false, o.pairs())
			n := len(dr.Report.Races)
			if dr.TimedOut {
				counts[i] = fmt.Sprintf("≥%d", n)
				continue
			}
			counts[i] = n
			if pol == P0 {
				base = n
			}
			if pol == POPA {
				o2races = n
			}
		}
		red := "-"
		if base > 0 && o2races >= 0 {
			red = report.Reduction(base, o2races)
		}
		rd := racerd.Analyze(prog, entries)
		t.Add(p.Name, counts[0], counts[1], red, counts[2], counts[3], counts[4], counts[5], len(rd.Warnings))
	}
	t.Render(w)
	return t
}

// Table9 regenerates the paper's Table 9: races (O2 vs RacerD) and
// origin-shared object counts per policy on the distributed-system
// presets.
func Table9(w io.Writer, o Opts) *report.Table {
	entries := ir.DefaultEntryConfig()
	t := &report.Table{
		Title: "Table 9: distributed systems — #Races and #Shared objects",
		Cols:  []string{"App", "O2 races", "RacerD", "#S-obj 0-ctx", "#S-obj 1-CFA", "#S-obj 2-CFA", "#S-obj O2"},
	}
	for _, p := range workload.DistributedSystems() {
		prog := workload.Build(p, entries)
		var o2Races interface{} = timeoutCell
		sobj := make([]interface{}, 4)
		for i, pol := range []pta.Policy{P0, P1CFA, P2CFA, POPA} {
			pr := RunPTA(prog, pol, entries, o.steps())
			if pr.TimedOut {
				sobj[i] = timeoutCell
				continue
			}
			sh := osa.Analyze(pr.A)
			sobj[i] = sh.SharedObjects
			if pol == POPA {
				dr := RunDetect(pr.A, o.detectOpts(), false, o.pairs())
				if dr.TimedOut {
					o2Races = fmt.Sprintf("≥%d", len(dr.Report.Races))
				} else {
					o2Races = len(dr.Report.Races)
				}
			}
		}
		rd := racerd.Analyze(prog, entries)
		t.Add(p.Name, o2Races, len(rd.Warnings), sobj[0], sobj[1], sobj[2], sobj[3])
	}
	t.Render(w)
	return t
}

// CaseResult is one Table 10 case-study outcome.
type CaseResult struct {
	Name     string
	Expected int
	Detected int
	Time     time.Duration
}

// Table10 regenerates the paper's Table 10 over the case-study models:
// O2 must report exactly the confirmed race count of each real-world bug.
func Table10(w io.Writer) ([]CaseResult, *report.Table) {
	cs := cases.Table10
	t := &report.Table{
		Title: "Table 10: new races detected by O2 (confirmed by developers)",
		Cols:  []string{"Case", "Paper", "Detected", "Match", "Thread×Event", "Time"},
	}
	var out []CaseResult
	for _, c := range cs {
		entries := ir.DefaultEntryConfig()
		prog, err := lang.Compile(c.Name+".mini", c.Source, entries)
		if err != nil {
			t.Add(c.Name, c.Races, "compile error", "✗", "", "-")
			continue
		}
		start := time.Now()
		pr := RunPTA(prog, POPA, entries, 0)
		dr := RunDetect(pr.A, race.O2Options(), c.Android, 0)
		dt := time.Since(start)
		n := len(dr.Report.Races)
		match := "✓"
		if n != c.Races {
			match = "✗"
		}
		te := ""
		if c.ThreadEvent {
			te = "yes"
		}
		t.Add(c.Name, c.Races, n, match, te, dt)
		out = append(out, CaseResult{c.Name, c.Races, n, dt})
	}
	t.Render(w)
	return out, t
}

// Ablation regenerates the §4.1 optimization ablation: detection cost with
// each of the three sound optimizations (and the OSA filter) disabled.
func Ablation(w io.Writer, o Opts) *report.Table {
	entries := ir.DefaultEntryConfig()
	t := &report.Table{
		Title: "Ablation: the three sound optimizations (§4.1)",
		Cols:  []string{"App", "Config", "Detect", "Accesses", "Reps", "Pairs", "HB queries", "Lock checks", "Races"},
		Note:  "naive = D4-style pairwise detection (all optimizations off); Reps = representatives after lock-region merging.",
	}
	variants := []struct {
		name string
		opts race.Options
	}{
		{"O2 (full)", race.O2Options()},
		{"no region merge", func() race.Options { x := race.O2Options(); x.RegionMerge = false; return x }()},
		{"no canonical locksets", func() race.Options { x := race.O2Options(); x.CanonicalLocksets = false; return x }()},
		{"no HB cache", func() race.Options { x := race.O2Options(); x.HBCache = false; return x }()},
		{"no OSA filter", func() race.Options { x := race.O2Options(); x.OSAFilter = false; return x }()},
		{"naive (D4-style)", race.NaiveOptions()},
	}
	presets := []string{"avrora", "tomcat", "zookeeper"}
	if o.Quick {
		presets = presets[:1]
	}
	for _, name := range presets {
		p, _ := workload.ByName(name)
		prog := workload.Build(p, entries)
		pr := RunPTA(prog, POPA, entries, o.steps())
		if pr.TimedOut {
			continue
		}
		for _, v := range variants {
			opts := v.opts
			opts.Workers = o.Workers
			opts.PairBudget = o.pairs()
			dr := RunDetect(pr.A, opts, false, o.pairs())
			races := fmt.Sprintf("%d", len(dr.Report.Races))
			if dr.TimedOut {
				races = fmt.Sprintf("≥%d (budget)", len(dr.Report.Races))
			}
			t.Add(p.Name, v.name, dr.Time, dr.Report.AccessNodes, dr.Report.Representatives,
				dr.Report.PairsChecked, dr.Report.HBQueries, dr.Report.LockChecks, races)
		}
	}
	t.Render(w)
	return t
}

// Table3 regenerates the paper's Table 3 empirically: analysis cost growth
// as the program scales, per context policy. The paper states worst-case
// complexity; the reproduction reports measured steps across a size sweep
// so the relative growth rates are visible.
func Table3(w io.Writer, o Opts) *report.Table {
	entries := ir.DefaultEntryConfig()
	t := &report.Table{
		Title: "Table 3 (empirical): propagation steps vs program scale",
		Cols:  []string{"Scale", "#Instr", "0-ctx", "OPA", "1-CFA", "2-CFA", "1-obj", "2-obj"},
		Note:  "OPA grows like 0-ctx times the origin factor; deep contexts grow superlinearly.",
	}
	baseP, _ := workload.ByName("avrora")
	scales := []int{1, 2, 3, 4}
	if o.Quick {
		scales = scales[:2]
	}
	for _, s := range scales {
		p := workload.Scale(baseP, s)
		prog := workload.Build(p, entries)
		row := []interface{}{s, prog.NumInstrs}
		for _, pol := range AllPolicies {
			pr := RunPTA(prog, pol, entries, o.steps())
			if pr.TimedOut {
				row = append(row, timeoutCell)
			} else {
				row = append(row, pr.Stats.Steps)
			}
		}
		t.Add(row...)
	}
	t.Render(w)
	return t
}

// Android regenerates the §4.2 comparison: race counts on the Android-app
// presets with and without the global event-lock treatment. Android mode
// must remove every event–event pair while keeping thread–event races.
func Android(w io.Writer, o Opts) *report.Table {
	entries := ir.DefaultEntryConfig()
	t := &report.Table{
		Title: "§4.2: Android event serialization",
		Cols:  []string{"App", "Races (plain)", "Races (android)", "Event-event left", "Thread-event left"},
		Note:  "Android mode serializes handlers on the main thread: event-event pairs vanish by construction.",
	}
	names := []string{"connectbot", "sipdroid", "k9mail", "tasks", "fbreader", "vlc", "firefox-focus", "zoom", "chrome"}
	if o.Quick {
		names = names[:3]
	}
	for _, name := range names {
		p, _ := workload.ByName(name)
		prog := workload.Build(p, entries)
		pr := RunPTA(prog, POPA, entries, o.steps())
		if pr.TimedOut {
			t.Add(p.Name, timeoutCell, timeoutCell, "-", "-")
			continue
		}
		plain := RunDetect(pr.A, o.detectOpts(), false, o.pairs())
		android := RunDetect(pr.A, o.detectOpts(), true, o.pairs())
		ee, te := 0, 0
		for _, r := range android.Report.Races {
			ka := pr.A.Origins.Get(r.A.Origin).Kind
			kb := pr.A.Origins.Get(r.B.Origin).Kind
			switch {
			case ka == pta.KindEvent && kb == pta.KindEvent:
				ee++
			case ka != kb:
				te++
			}
		}
		t.Add(p.Name, len(plain.Report.Races), len(android.Report.Races), ee, te)
	}
	t.Render(w)
	return t
}

// Extensions reports the beyond-race-detection analyses (deadlock,
// over-synchronization) over the presets that embed their target patterns.
func Extensions(w io.Writer, o Opts) *report.Table {
	entries := ir.DefaultEntryConfig()
	t := &report.Table{
		Title: "Extensions: deadlock and over-synchronization analyses",
		Cols:  []string{"App", "Lock edges", "Deadlocks", "Regions", "Useful", "Unnecessary", "Time"},
		Note:  "Deadlock cycles come from the presets' inverted lock pairs; unnecessary regions guard only origin-local data.",
	}
	names := []string{"hbase", "hdfs", "yarn", "zookeeper", "memcached", "redis"}
	if o.Quick {
		names = names[:2]
	}
	for _, name := range names {
		p, _ := workload.ByName(name)
		prog := workload.Build(p, entries)
		pr := RunPTA(prog, POPA, entries, o.steps())
		if pr.TimedOut {
			continue
		}
		start := time.Now()
		sh := osa.Analyze(pr.A)
		g := shb.Build(pr.A, shb.Config{})
		dl := deadlock.Analyze(pr.A, g)
		ov := oversync.Analyze(pr.A, sh, g)
		t.Add(p.Name, dl.Edges, len(dl.Warnings), ov.Regions, ov.UsefulRegions, len(ov.Warnings), time.Since(start))
	}
	t.Render(w)
	return t
}

// Linux regenerates the §5.4 Linux-kernel statistics: origin counts by
// kind, object and access sharing ratios, and detected races.
func Linux(w io.Writer, o Opts) *report.Table {
	entries := ir.DefaultEntryConfig()
	p := workload.Linux()
	prog := workload.Build(p, entries)
	a := pta.New(prog, pta.Config{
		Policy: POPA, Entries: entries,
		ReplicateEvents: true, // concurrent invocations of each system call
		StepBudget:      o.steps() * 4,
	})
	start := time.Now()
	if err := a.Solve(); err != nil {
		fmt.Fprintf(w, "linux: pointer analysis exceeded budget\n")
		return nil
	}
	sh := osa.Analyze(a)
	g := shb.Build(a, shb.Config{})
	opts := o.detectOpts()
	opts.PairBudget = o.pairs() * 4
	rep := race.Detect(a, sh, g, opts)
	elapsed := time.Since(start)

	threads, events := 0, 0
	for _, org := range a.Origins.Origins {
		switch org.Kind {
		case pta.KindThread:
			threads++
		case pta.KindEvent:
			events++
		}
	}
	accesses := len(sh.Accesses)
	t := &report.Table{
		Title: "Linux kernel model (§5.4)",
		Cols:  []string{"Metric", "Value"},
		Note:  "Paper: 1090 origins, 329/71459 origin-shared objects, 1051/36321 shared accesses, 26 races in <8min.",
	}
	t.Add("origins (total)", a.Origins.Len())
	t.Add("origins (syscall/driver events)", events)
	t.Add("origins (kthreads/irq threads)", threads)
	t.Add("abstract objects", a.NumObjs())
	t.Add("origin-shared locations", len(sh.Shared))
	t.Add("origin-shared objects", sh.SharedObjects)
	t.Add("access statements visited", accesses)
	t.Add("shared access statements", sh.SharedAccesses)
	t.Add("races reported", len(rep.Races))
	t.Add("analysis time", elapsed)
	t.Render(w)
	return t
}
