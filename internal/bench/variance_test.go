package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPhaseVarianceMath(t *testing.T) {
	// Samples 2ms, 4ms, 6ms: mean 4ms, sample stddev 2ms, cv 0.5.
	pv := phaseVariance("pta", []int64{2e6, 4e6, 6e6})
	if pv.MeanNS != 4e6 {
		t.Fatalf("mean = %v, want 4e6", pv.MeanNS)
	}
	if math.Abs(pv.StddevNS-2e6) > 1 {
		t.Fatalf("stddev = %v, want 2e6", pv.StddevNS)
	}
	if math.Abs(pv.CV-0.5) > 1e-9 {
		t.Fatalf("cv = %v, want 0.5", pv.CV)
	}
	if !pv.Gated {
		t.Fatal("4ms phase must be gated")
	}
	// Sub-millisecond phases are report-only: scheduler jitter dominates.
	if phaseVariance("osa", []int64{100, 200, 300}).Gated {
		t.Fatal("sub-1ms phase must not be gated")
	}
	// One scheduler hiccup among stable samples is trimmed away: nine
	// ~2ms runs plus a single 10ms outlier must stay well under 15% CV,
	// while the raw samples are preserved for the artifact.
	spiky := phaseVariance("pta", []int64{2e6, 2.1e6, 1.9e6, 2e6, 2.05e6, 1.95e6, 2e6, 2.1e6, 1.9e6, 10e6})
	if spiky.CV > 0.15 {
		t.Fatalf("single outlier not trimmed: cv = %v", spiky.CV)
	}
	if len(spiky.SamplesNS) != 10 {
		t.Fatalf("raw samples not preserved: %d", len(spiky.SamplesNS))
	}
}

func TestVarianceCheck(t *testing.T) {
	rep := &VarianceReport{
		MaxCV: 0.15,
		Presets: []VariancePreset{{
			Name: "zookeeper",
			Phases: []PhaseVariance{
				{Phase: "pta", MeanNS: 5e6, StddevNS: 5e5, CV: 0.10, Gated: true},
				{Phase: "detect", MeanNS: 9e6, StddevNS: 2.7e6, CV: 0.30, Gated: true},
				// Over-threshold but under the gating floor: must not fail.
				{Phase: "shb", MeanNS: 2e5, StddevNS: 1e5, CV: 0.50, Gated: false},
			},
		}},
	}
	err := rep.Check()
	if err == nil {
		t.Fatal("cv 30% on a gated phase accepted")
	}
	if !strings.Contains(err.Error(), "zookeeper/detect") {
		t.Fatalf("check error does not name the noisy phase: %v", err)
	}
	if strings.Contains(err.Error(), "zookeeper/shb") {
		t.Fatalf("check failed a report-only phase: %v", err)
	}
	rep.Presets[0].Phases[1].CV = 0.12
	if err := rep.Check(); err != nil {
		t.Fatalf("all gated phases under threshold, yet: %v", err)
	}
}

func TestRunVarianceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every gate preset's pipeline repeatedly")
	}
	if _, err := RunVariance(Opts{}, 1, 0); err == nil {
		t.Fatal("a single run has no dispersion; must be rejected")
	}
	rep, err := RunVariance(Opts{}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Presets) != len(GatePresetNames) {
		t.Fatalf("presets = %d, want %d", len(rep.Presets), len(GatePresetNames))
	}
	for _, p := range rep.Presets {
		if p.Races == 0 {
			t.Fatalf("preset %s found no races (pipeline broken?)", p.Name)
		}
		if len(p.Phases) != len(variancePhases) {
			t.Fatalf("preset %s phases = %d, want %d", p.Name, len(p.Phases), len(variancePhases))
		}
		for _, ph := range p.Phases {
			if len(ph.SamplesNS) != 2 {
				t.Fatalf("%s/%s samples = %d, want 2", p.Name, ph.Phase, len(ph.SamplesNS))
			}
			if ph.MeanNS <= 0 {
				t.Fatalf("%s/%s non-positive mean %v", p.Name, ph.Phase, ph.MeanNS)
			}
		}
	}
	var buf bytes.Buffer
	if err := Variance(&buf, Opts{}, ""); err != nil {
		// A noisy CI machine can legitimately fail the cv gate here; only
		// hard errors (timeouts, nondeterminism) are test failures.
		if !strings.Contains(err.Error(), "timing noise") {
			t.Fatal(err)
		}
		t.Logf("variance gate tripped on this machine (tolerated in tests): %v", err)
	}
	if !strings.Contains(buf.String(), "bench variance:") {
		t.Fatal("variance printed no table")
	}
}
