package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"o2"
	"o2/internal/truth"
)

// CorpusGateStats is the bench artifact's report-only corpus-throughput
// section: the truth corpus pushed once through the eager sequential
// path and once through the streaming pipeline (o2.AnalyzeCorpus), with
// programs/sec for each. Like BatchStats it is timing, so Deterministic()
// strips it and nothing here is golden-gated — but the run does hard-fail
// if the two paths disagree on any program's race count, which is the
// cheap always-on version of the stream-equals-eager equivalence the
// root tests check key by key.
type CorpusGateStats struct {
	Programs     int     `json:"programs"`
	Workers      int     `json:"workers"`
	EagerNS      int64   `json:"eager_ns"`
	StreamNS     int64   `json:"stream_ns"`
	EagerPerSec  float64 `json:"eager_per_sec"`
	StreamPerSec float64 `json:"stream_per_sec"`
	Races        int     `json:"races"`
	Failed       int     `json:"failed"`
}

// RunCorpusGate measures streamed vs eager throughput over the truth
// corpus (workers = 0 means GOMAXPROCS for the streamed pass; the eager
// pass is sequential by definition).
func RunCorpusGate(workers int) (*CorpusGateStats, error) {
	programs, err := truth.Corpus()
	if err != nil {
		return nil, err
	}
	cfg := o2.DefaultConfig()
	cfg.Workers = 1

	srcs := make([]o2.Source, len(programs))
	eagerRaces := make([]int, len(programs))
	eagerStart := time.Now()
	for i, p := range programs {
		srcs[i] = p.AsSource()
		res, err := o2.AnalyzeSources(context.Background(), []o2.Source{srcs[i]}, cfg)
		if err != nil {
			return nil, fmt.Errorf("corpus gate: eager %s: %w", p.Name, err)
		}
		eagerRaces[i] = len(res.Races())
	}
	eager := time.Since(eagerStart)

	ccfg := o2.CorpusConfig{Config: cfg, Workers: workers}
	streamStart := time.Now()
	stats, err := o2.AnalyzeCorpus(context.Background(), o2.SliceSources(srcs), ccfg, func(cr o2.CorpusResult) error {
		if cr.Err != nil {
			return fmt.Errorf("corpus gate: streamed %s: %w", cr.Name, cr.Err)
		}
		if got := len(cr.Result.Races()); got != eagerRaces[cr.Index] {
			return fmt.Errorf("corpus gate: %s: streamed %d races, eager %d — stream diverged from eager path",
				cr.Name, got, eagerRaces[cr.Index])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	stream := time.Since(streamStart)

	out := &CorpusGateStats{
		Programs:     stats.Programs,
		Workers:      ccfg.Workers,
		EagerNS:      int64(eager),
		StreamNS:     int64(stream),
		EagerPerSec:  float64(stats.Programs) / eager.Seconds(),
		StreamPerSec: float64(stats.Programs) / stream.Seconds(),
		Races:        stats.Races,
		Failed:       stats.Failed,
	}
	if out.Workers == 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	return out, nil
}
