// Package deadlock implements a static deadlock detector on top of OPA and
// the SHB graph — one of the "beyond race detection" clients the paper
// names for origin-sensitive analysis (§3: "OPA and OSA can benefit any
// analysis that requires analyzing pointers or ownership of memory
// accesses, e.g., deadlock, over-synchronization...").
//
// The analysis builds a lock-order graph: an edge a → b is recorded when
// some origin acquires lock object b while already holding lock object a.
// A cycle among locks acquired by at least two different origins that can
// run in parallel is reported as a potential deadlock. Alias reasoning
// comes from the pointer analysis: two syntactically different lock
// expressions pointing to the same abstract object are the same lock.
package deadlock

import (
	"fmt"
	"sort"

	"o2/internal/ir"
	"o2/internal/pta"
	"o2/internal/shb"
)

// Acquire records one nested acquisition: the origin acquired Inner while
// holding Outer.
type Acquire struct {
	Outer, Inner pta.ObjID
	Origin       pta.OriginID
	Pos          ir.Pos
	Fn           string
}

// Warning is a potential deadlock: a cycle in the lock-order graph whose
// edges come from at least two concurrently-runnable origins.
type Warning struct {
	// Cycle lists the lock objects in order (cycle[0] is held while
	// acquiring cycle[1], and so on, wrapping around).
	Cycle []pta.ObjID
	// Sites are representative acquisition sites, one per cycle edge.
	Sites []Acquire
}

func (w *Warning) String() string {
	s := "potential deadlock: lock cycle"
	for i, site := range w.Sites {
		s += fmt.Sprintf("\n  o%d -> o%d acquired at %s in %s [origin O%d]",
			w.Cycle[i], w.Cycle[(i+1)%len(w.Cycle)], site.Pos, site.Fn, site.Origin)
	}
	return s
}

// Report is the analysis result.
type Report struct {
	Warnings []Warning
	// Edges is the number of distinct lock-order edges observed.
	Edges int
}

type edgeKey struct{ outer, inner pta.ObjID }

// Analyze scans the SHB traces for nested lock acquisitions and reports
// lock-order cycles.
func Analyze(a *pta.Analysis, g *shb.Graph) *Report {
	// Collect nested acquisitions by replaying each segment's lock/unlock
	// node sequence.
	edges := map[edgeKey][]Acquire{}

	for _, seg := range g.Segs {
		if seg.First < 0 {
			continue
		}
		var held []pta.ObjID
		for id := seg.First; id <= seg.Last; id++ {
			n := &g.Nodes[id]
			switch n.Kind {
			case shb.NLock:
				objs := lockObjsAt(a, n)
				for _, inner := range objs {
					for _, outer := range held {
						if outer == inner {
							continue // reentrant
						}
						k := edgeKey{outer, inner}
						edges[k] = append(edges[k], Acquire{
							Outer: outer, Inner: inner,
							Origin: seg.Origin, Pos: n.Instr.Pos(), Fn: n.Fn.Name,
						})
					}
				}
				if len(objs) > 0 {
					held = append(held, objs[0])
				} else {
					held = append(held, 0) // unknown lock: placeholder
				}
			case shb.NUnlock:
				if len(held) > 0 {
					held = held[:len(held)-1]
				}
			}
		}
	}

	rep := &Report{Edges: len(edges)}

	// Build adjacency and find simple cycles of length 2 (the common
	// AB/BA inversion) and self-contained longer cycles via DFS.
	adj := map[pta.ObjID][]pta.ObjID{}
	for k := range edges {
		adj[k.outer] = append(adj[k.outer], k.inner)
	}
	for o := range adj {
		sort.Slice(adj[o], func(i, j int) bool { return adj[o][i] < adj[o][j] })
	}

	seen := map[string]bool{}
	var nodes []pta.ObjID
	for o := range adj {
		nodes = append(nodes, o)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	for _, start := range nodes {
		// Bounded DFS for cycles through start (cycle length ≤ 4 keeps the
		// report readable; longer chains decompose into shorter inversions
		// in practice).
		var path []pta.ObjID
		var dfs func(cur pta.ObjID, depth int)
		dfs = func(cur pta.ObjID, depth int) {
			path = append(path, cur)
			defer func() { path = path[:len(path)-1] }()
			for _, next := range adj[cur] {
				if next == start && len(path) >= 2 {
					cyc := append([]pta.ObjID{}, path...)
					if w, ok := makeWarning(a, g, cyc, edges); ok {
						sig := cycleSig(cyc)
						if !seen[sig] {
							seen[sig] = true
							rep.Warnings = append(rep.Warnings, w)
						}
					}
					continue
				}
				if next > start && depth < 4 && !contains(path, next) {
					dfs(next, depth+1)
				}
			}
		}
		dfs(start, 1)
	}
	return rep
}

// makeWarning validates that the cycle's edges involve at least two
// origins that may run concurrently, and picks representative sites.
func makeWarning(a *pta.Analysis, g *shb.Graph, cyc []pta.ObjID,
	edges map[edgeKey][]Acquire) (Warning, bool) {
	var sites []Acquire
	origins := map[pta.OriginID]bool{}
	replicated := false
	for i := range cyc {
		k := edgeKey{cyc[i], cyc[(i+1)%len(cyc)]}
		as := edges[k]
		if len(as) == 0 {
			return Warning{}, false
		}
		sites = append(sites, as[0])
		for _, acq := range as {
			origins[acq.Origin] = true
			if a.Origins.Get(acq.Origin).Replicated {
				replicated = true
			}
		}
	}
	if len(origins) < 2 && !replicated {
		// A single (non-replicated) origin cannot deadlock with itself.
		return Warning{}, false
	}
	return Warning{Cycle: cyc, Sites: sites}, true
}

func lockObjsAt(a *pta.Analysis, n *shb.Node) []pta.ObjID {
	me, ok := n.Instr.(*ir.MonitorEnter)
	if !ok {
		return nil
	}
	// The SHB node does not record its analysis context, so union the
	// monitor variable's points-to sets across every context the enclosing
	// function is reachable in — a sound over-approximation of the locks
	// this acquisition may take.
	var out []pta.ObjID
	seen := map[pta.ObjID]bool{}
	for id := 0; id < a.CG.NumNodes(); id++ {
		fc := a.CG.Get(pta.FnCtxID(id))
		if fc.Fn != n.Fn {
			continue
		}
		a.PointsTo(me.Obj, fc.Ctx).ForEach(func(o uint32) {
			if !seen[pta.ObjID(o)] {
				seen[pta.ObjID(o)] = true
				out = append(out, pta.ObjID(o))
			}
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func contains(xs []pta.ObjID, x pta.ObjID) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

func cycleSig(cyc []pta.ObjID) string {
	// Normalize rotation: start at the minimum element.
	min := 0
	for i := range cyc {
		if cyc[i] < cyc[min] {
			min = i
		}
	}
	sig := ""
	for i := range cyc {
		sig += fmt.Sprintf("%d,", cyc[(min+i)%len(cyc)])
	}
	return sig
}
