package deadlock_test

import (
	"testing"

	"o2/internal/deadlock"
	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/pta"
	"o2/internal/shb"
)

func analyze(t *testing.T, src string) *deadlock.Report {
	t.Helper()
	prog, err := lang.Compile("t.mini", src, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := pta.New(prog, pta.Config{Policy: pta.Policy{Kind: pta.KOrigin, K: 1}, Entries: ir.DefaultEntryConfig()})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	g := shb.Build(a, shb.Config{})
	return deadlock.Analyze(a, g)
}

func TestABBADeadlock(t *testing.T) {
	rep := analyze(t, `
class W1 {
  field a; field b;
  W1(a, b) { this.a = a; this.b = b; }
  run() {
    x = this.a;
    y = this.b;
    sync (x) { sync (y) { x.v = this; } }
  }
}
class W2 {
  field a; field b;
  W2(a, b) { this.a = a; this.b = b; }
  run() {
    x = this.a;
    y = this.b;
    sync (y) { sync (x) { x.v = this; } }
  }
}
main {
  a = new LockA();
  b = new LockB();
  w1 = new W1(a, b);
  w2 = new W2(a, b);
  w1.start();
  w2.start();
}
`)
	if len(rep.Warnings) != 1 {
		for _, w := range rep.Warnings {
			t.Logf("%s", w.String())
		}
		t.Fatalf("want 1 AB/BA deadlock, got %d", len(rep.Warnings))
	}
	if len(rep.Warnings[0].Cycle) != 2 {
		t.Errorf("cycle length = %d", len(rep.Warnings[0].Cycle))
	}
}

func TestConsistentOrderNoDeadlock(t *testing.T) {
	rep := analyze(t, `
class W {
  field a; field b;
  W(a, b) { this.a = a; this.b = b; }
  run() {
    x = this.a;
    y = this.b;
    sync (x) { sync (y) { x.v = this; } }
  }
}
main {
  a = new LockA();
  b = new LockB();
  w1 = new W(a, b);
  w2 = new W(a, b);
  w1.start();
  w2.start();
}
`)
	if len(rep.Warnings) != 0 {
		t.Fatalf("consistent lock order must not warn: got %d", len(rep.Warnings))
	}
	if rep.Edges == 0 {
		t.Errorf("the a→b edge should still be recorded")
	}
}

func TestSingleOriginNoDeadlock(t *testing.T) {
	// Inverted orders within one (non-replicated) origin cannot deadlock.
	rep := analyze(t, `
main {
  a = new LockA();
  b = new LockB();
  sync (a) { sync (b) { x = a; } }
  sync (b) { sync (a) { x = b; } }
}
`)
	if len(rep.Warnings) != 0 {
		t.Fatalf("single-origin inversion must not warn: got %d", len(rep.Warnings))
	}
}

func TestAliasedLocksDetected(t *testing.T) {
	// The two workers name their locks through different fields; only
	// pointer analysis reveals the same objects underneath — the aliasing
	// reasoning RacerD-style syntactic tools lack.
	rep := analyze(t, `
class W1 {
  field first; field second;
  W1(f, s) { this.first = f; this.second = s; }
  run() {
    x = this.first;
    y = this.second;
    sync (x) { sync (y) { x.v = this; } }
  }
}
class W2 {
  field lo; field hi;
  W2(l, h) { this.lo = l; this.hi = h; }
  run() {
    x = this.lo;
    y = this.hi;
    sync (x) { sync (y) { x.v = this; } }
  }
}
main {
  a = new LockA();
  b = new LockB();
  w1 = new W1(a, b);
  w2 = new W2(b, a);   // reversed: lo=b, hi=a
  w1.start();
  w2.start();
}
`)
	if len(rep.Warnings) != 1 {
		t.Fatalf("aliased AB/BA inversion should warn: got %d", len(rep.Warnings))
	}
}

func TestThreeLockCycle(t *testing.T) {
	rep := analyze(t, `
class W1 {
  field a; field b;
  W1(a, b) { this.a = a; this.b = b; }
  run() { x = this.a; y = this.b; sync (x) { sync (y) { x.v = this; } } }
}
class W2 {
  field a; field b;
  W2(a, b) { this.a = a; this.b = b; }
  run() { x = this.a; y = this.b; sync (x) { sync (y) { x.v = this; } } }
}
class W3 {
  field a; field b;
  W3(a, b) { this.a = a; this.b = b; }
  run() { x = this.a; y = this.b; sync (x) { sync (y) { x.v = this; } } }
}
main {
  a = new LockA();
  b = new LockB();
  c = new LockC();
  w1 = new W1(a, b);
  w2 = new W2(b, c);
  w3 = new W3(c, a);
  w1.start();
  w2.start();
  w3.start();
}
`)
	if len(rep.Warnings) != 1 {
		for _, w := range rep.Warnings {
			t.Logf("%s", w.String())
		}
		t.Fatalf("want the 3-cycle, got %d warnings", len(rep.Warnings))
	}
	if len(rep.Warnings[0].Cycle) != 3 {
		t.Errorf("cycle length = %d, want 3", len(rep.Warnings[0].Cycle))
	}
}
