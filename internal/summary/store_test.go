package summary

import (
	"fmt"
	"sync"
	"testing"
)

func TestStoreHitMissEviction(t *testing.T) {
	s := NewStore(3)
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store returned a hit")
	}
	for _, k := range []string{"a", "b", "c"} {
		s.Put(k, &Summary{UnitID: k})
	}
	if got, ok := s.Get("a"); !ok || got.UnitID != "a" {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	// "b" is now LRU (a was promoted by the Get); inserting "d" must
	// evict it and only it.
	s.Put("d", &Summary{UnitID: "d"})
	if _, ok := s.Get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("%s should have survived eviction", k)
		}
	}
	st := s.Stats()
	if st.Entries != 3 {
		t.Errorf("entries = %d, want 3", st.Entries)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// 1 cold miss + 1 evicted-b miss; 1 + 3 hits.
	if st.Misses != 2 || st.Hits != 4 {
		t.Errorf("hits/misses = %d/%d, want 4/2", st.Hits, st.Misses)
	}
}

func TestStorePutRefreshes(t *testing.T) {
	s := NewStore(2)
	s.Put("a", &Summary{UnitID: "a"})
	s.Put("a", &Summary{UnitID: "a2"})
	if st := s.Stats(); st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("refresh changed entry count: %+v", st)
	}
	if got, _ := s.Get("a"); got.UnitID != "a2" {
		t.Errorf("refresh did not replace value: %q", got.UnitID)
	}
	// Refreshing promotes: a is MRU, so adding c evicts b.
	s.Put("b", &Summary{UnitID: "b"})
	s.Put("a", &Summary{UnitID: "a3"})
	s.Put("c", &Summary{UnitID: "c"})
	if _, ok := s.Get("b"); ok {
		t.Error("b should have been evicted after a's refresh promoted it")
	}
}

func TestStoreDefaultCapacity(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < DefaultStoreEntries+10; i++ {
		s.Put(fmt.Sprintf("k%d", i), &Summary{})
	}
	st := s.Stats()
	if st.Entries != DefaultStoreEntries {
		t.Errorf("entries = %d, want %d", st.Entries, DefaultStoreEntries)
	}
	if st.Evictions != 10 {
		t.Errorf("evictions = %d, want 10", st.Evictions)
	}
}

// TestKeySchemaAndDigest pins the cache-key contract: the key must
// change with the summary schema, the config fingerprint and the unit's
// closure digest — all three are invalidation axes.
func TestKeySchemaAndDigest(t *testing.T) {
	base := Key("cfg1", "digest1")
	if base == "" || base == Key("cfg2", "digest1") {
		t.Error("key must depend on the config fingerprint")
	}
	if base == Key("cfg1", "digest2") {
		t.Error("key must depend on the closure digest")
	}
	if Key("cfg1", "digest1") != base {
		t.Error("key must be deterministic")
	}
	// A dependency edit reaches the key through the closure digest: two
	// units whose closures differ in one member digest get distinct keys.
	if Key("cfg", "a=1|b=2") == Key("cfg", "a=1|b=3") {
		t.Error("closure digest change must change the key")
	}
}

// TestStoreConcurrent hammers one store from many goroutines under
// -race: concurrent warm re-analyses share a store, so Get/Put/Stats
// must be safe together.
func TestStoreConcurrent(t *testing.T) {
	s := NewStore(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%100)
				if _, ok := s.Get(k); !ok {
					s.Put(k, &Summary{UnitID: k})
				}
				if i%50 == 0 {
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Entries > 64 {
		t.Errorf("store exceeded capacity: %d entries", st.Entries)
	}
	if st.Hits+st.Misses != 8*500 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*500)
	}
}
