// Package summary is the per-unit summary store behind incremental
// analysis. A Summary captures everything the pipeline derives from one
// unit in isolation: the lowered instruction fragment (replayable into
// a fresh program) and the unit-local fact tables the global phases
// consume — points-to deltas (allocations, copy/load/store constraint
// counts), the access set (field/static/array reads and writes with
// relative positions), and lockset/HB fragments (monitor operations,
// spawn and join sites). Global resolution (points-to solving, origin
// sharing, SHB construction, race detection) always reruns over the
// stitched program, so replaying a summary is sound whenever its key
// matches: the key covers the unit's content, its dependency closure,
// the analysis config fingerprint and the summary schema version.
package summary

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"o2/internal/ir"
	"o2/internal/unit"
)

// Schema versions the summary format. It participates in every store
// key and in the scheduler's whole-program cache key, so a build with a
// different summary shape can never replay (or serve) stale results.
//
// v2: fragments carry channel ops (OpChanMake/Send/Recv/Close) and the
// fact tables count channel allocations and constraints.
const Schema = 2

// Key derives the store key of a unit under one analysis config. The
// closure digest already folds together the unit's own canonical
// content, the contents of everything it depends on, and the unit
// format version.
func Key(cfgFingerprint, closureDigest string) string {
	h := sha256.New()
	fmt.Fprintf(h, "o2-summary-v%d|%s|%s", Schema, cfgFingerprint, closureDigest)
	return hex.EncodeToString(h.Sum(nil))
}

// Access is one unit-local memory access: Kind is "read" or "write",
// Loc the canonical location (field, "Class.field" or "*"), Rel the
// line offset from the unit's declaration.
type Access struct {
	Kind string `json:"kind"`
	Loc  string `json:"loc"`
	Rel  int    `json:"rel"`
}

// Summary is the cacheable per-unit analysis product.
type Summary struct {
	UnitID string     `json:"unit_id"`
	Kind   string     `json:"kind"`
	Frag   *unit.Frag `json:"frag,omitempty"` // nil for class shells

	// Fact tables (informational: the global phases consume them via
	// the replayed IR; they are exposed for inspection and tests).
	Accesses    []Access `json:"accesses,omitempty"`
	Locks       int      `json:"locks,omitempty"`   // monitorenter count
	Unlocks     int      `json:"unlocks,omitempty"` // monitorexit count
	Allocs      int      `json:"allocs,omitempty"`
	Calls       int      `json:"calls,omitempty"`
	Spawns      int      `json:"spawns,omitempty"` // origin-creating sites
	Constraints int      `json:"constraints,omitempty"`
}

// Derive builds the summary of a lowered body unit from its fragment
// and IR. baseLine rebases access positions to relative offsets.
func Derive(u *unit.Unit, fn *ir.Func, frag *unit.Frag) *Summary {
	s := &Summary{UnitID: u.ID, Kind: u.Kind.String(), Frag: frag}
	for _, in := range fn.Body {
		rel := in.Pos().Line - u.BaseLine
		switch in := in.(type) {
		case *ir.Alloc:
			s.Allocs++
			s.Constraints++
		case *ir.Copy:
			s.Constraints++
		case *ir.LoadField:
			s.Accesses = append(s.Accesses, Access{Kind: "read", Loc: in.Field, Rel: rel})
			s.Constraints++
		case *ir.StoreField:
			s.Accesses = append(s.Accesses, Access{Kind: "write", Loc: in.Field, Rel: rel})
			s.Constraints++
		case *ir.LoadIndex:
			s.Accesses = append(s.Accesses, Access{Kind: "read", Loc: ir.ArrayField, Rel: rel})
			s.Constraints++
		case *ir.StoreIndex:
			s.Accesses = append(s.Accesses, Access{Kind: "write", Loc: ir.ArrayField, Rel: rel})
			s.Constraints++
		case *ir.LoadStatic:
			s.Accesses = append(s.Accesses, Access{Kind: "read", Loc: in.Class.Name + "." + in.Field, Rel: rel})
			s.Constraints++
		case *ir.StoreStatic:
			s.Accesses = append(s.Accesses, Access{Kind: "write", Loc: in.Class.Name + "." + in.Field, Rel: rel})
			s.Constraints++
		case *ir.FuncAddr:
			s.Constraints++
		case *ir.ChanMake:
			// A channel is an abstract heap object with one synthetic
			// element-slot constraint source, mirroring the solver.
			s.Allocs++
			s.Constraints++
		case *ir.ChanSend:
			s.Constraints++
		case *ir.ChanRecv:
			if in.Dst != nil {
				s.Constraints++
			}
		case *ir.MonitorEnter:
			s.Locks++
		case *ir.MonitorExit:
			s.Unlocks++
		case *ir.Call:
			s.Calls++
			s.Constraints++
			if in.Builtin == "pthread_create" || in.Builtin == "event_register" {
				s.Spawns++
			}
		}
	}
	return s
}

// DeriveClass builds the (fragment-free) summary of a class shell.
func DeriveClass(u *unit.Unit) *Summary {
	return &Summary{UnitID: u.ID, Kind: u.Kind.String()}
}
