package summary

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Store is the bounded per-unit summary cache: a map + intrusive-list
// LRU guarded by one mutex, safe for concurrent warm re-analyses. It
// sits *behind* the scheduler's whole-program result cache — a
// whole-program hit never touches it; a whole-program miss replays
// every clean unit out of it and pays lowering only for dirty ones.
type Store struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type storeEntry struct {
	key string
	sum *Summary
}

// DefaultStoreEntries bounds a store when the caller does not choose a
// capacity. Summaries are a few hundred bytes each, so the default is
// generous enough to hold many programs' worth of units.
const DefaultStoreEntries = 4096

// NewStore returns a store bounded to capacity entries (<=0 selects
// DefaultStoreEntries).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreEntries
	}
	return &Store{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the summary cached under key and promotes the entry.
// Every lookup counts: a miss here is exactly a dirty (or never-seen)
// unit, which is what the dirty-ratio metric reports.
func (s *Store) Get(key string) (*Summary, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	s.hits.Add(1)
	return el.Value.(*storeEntry).sum, true
}

// Put inserts or refreshes an entry, evicting the least recently used
// entries when over capacity.
func (s *Store) Put(key string, sum *Summary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*storeEntry).sum = sum
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&storeEntry{key: key, sum: sum})
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		if oldest == nil {
			break
		}
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*storeEntry).key)
		s.evictions.Add(1)
	}
}

// StoreStats is a point-in-time view of the store's counters.
type StoreStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// Stats snapshots the counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	entries := s.ll.Len()
	s.mu.Unlock()
	return StoreStats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Evictions: s.evictions.Load(),
		Entries:   entries,
	}
}
