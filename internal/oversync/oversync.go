// Package oversync implements an over-synchronization analysis — the
// second "beyond race detection" client the paper names for OPA/OSA. A
// lock region is unnecessary when every memory access it guards touches
// only origin-local data: no other origin can conflict, so the
// synchronization costs time without protecting anything. This is exactly
// the question OSA answers (which origins share which locations) that
// classical escape analysis answers too coarsely.
package oversync

import (
	"fmt"
	"sort"

	"o2/internal/ir"
	"o2/internal/osa"
	"o2/internal/pta"
	"o2/internal/shb"
)

// Warning reports one unnecessary lock region.
type Warning struct {
	Pos    ir.Pos
	Fn     string
	Origin pta.OriginID
	// Accesses counts the guarded accesses, all origin-local.
	Accesses int
}

func (w Warning) String() string {
	return fmt.Sprintf("unnecessary synchronization at %s in %s [origin O%d]: %d guarded accesses are origin-local",
		w.Pos, w.Fn, w.Origin, w.Accesses)
}

// Report is the analysis result.
type Report struct {
	Warnings []Warning
	// Regions is the number of lock-region instances examined.
	Regions int
	// UsefulRegions guard at least one origin-shared access.
	UsefulRegions int
}

// Analyze inspects every lock region in the SHB graph and reports regions
// guarding only origin-local accesses.
func Analyze(a *pta.Analysis, sharing *osa.Result, g *shb.Graph) *Report {
	type regionInfo struct {
		pos      ir.Pos
		fn       string
		origin   pta.OriginID
		accesses int
		shared   bool
		empty    bool
	}
	regions := map[int32]*regionInfo{}

	for _, seg := range g.Segs {
		if seg.First < 0 {
			continue
		}
		// Replay the segment's lock structure: an access inside nested
		// regions counts for every enclosing region (the outer lock is
		// useful if anything under it is shared).
		var stack []int32
		for id := seg.First; id <= seg.Last; id++ {
			n := &g.Nodes[id]
			switch n.Kind {
			case shb.NLock:
				// The lock node's Region field is the region it opens.
				regions[n.Region] = &regionInfo{
					pos: n.Instr.Pos(), fn: n.Fn.Name, origin: seg.Origin, empty: true,
				}
				stack = append(stack, n.Region)
			case shb.NUnlock:
				if len(stack) > 0 {
					stack = stack[:len(stack)-1]
				}
			case shb.NRead, shb.NWrite:
				for _, rid := range stack {
					ri := regions[rid]
					if ri == nil {
						continue
					}
					ri.empty = false
					ri.accesses++
					if sharing.IsShared(n.Key) {
						ri.shared = true
					}
				}
			}
		}
	}

	rep := &Report{}
	ids := make([]int32, 0, len(regions))
	for id := range regions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ri := regions[id]
		rep.Regions++
		if ri.shared {
			rep.UsefulRegions++
			continue
		}
		if ri.empty {
			continue // no accesses at all: trivially flagged elsewhere
		}
		rep.Warnings = append(rep.Warnings, Warning{
			Pos: ri.pos, Fn: ri.fn, Origin: ri.origin, Accesses: ri.accesses,
		})
	}
	return rep
}
