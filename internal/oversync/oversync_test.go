package oversync_test

import (
	"testing"

	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/osa"
	"o2/internal/oversync"
	"o2/internal/pta"
	"o2/internal/shb"
)

func analyze(t *testing.T, src string) *oversync.Report {
	t.Helper()
	prog, err := lang.Compile("t.mini", src, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := pta.New(prog, pta.Config{Policy: pta.Policy{Kind: pta.KOrigin, K: 1}, Entries: ir.DefaultEntryConfig()})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	sharing := osa.Analyze(a)
	g := shb.Build(a, shb.Config{})
	return oversync.Analyze(a, sharing, g)
}

func TestLocalOnlyRegionFlagged(t *testing.T) {
	rep := analyze(t, `
class Data { field v; }
class W {
  field l;
  W(l) { this.l = l; }
  run() {
    k = this.l;
    d = new Data();          // origin-local
    sync (k) { d.v = this; } // guards only local data: unnecessary
  }
}
main {
  l = new Lock();
  w1 = new W(l);
  w2 = new W(l);
  w1.start();
  w2.start();
}
`)
	if len(rep.Warnings) == 0 {
		t.Fatalf("local-only region should be flagged (regions=%d useful=%d)",
			rep.Regions, rep.UsefulRegions)
	}
	for _, w := range rep.Warnings {
		if w.Accesses == 0 {
			t.Errorf("flagged region with no accesses: %s", w)
		}
	}
}

func TestSharedRegionNotFlagged(t *testing.T) {
	rep := analyze(t, `
class S { field v; }
class W {
  field s; field l;
  W(s, l) { this.s = s; this.l = l; }
  run() {
    x = this.s;
    k = this.l;
    sync (k) { x.v = this; }   // guards genuinely shared data
  }
}
main {
  s = new S();
  l = new Lock();
  w1 = new W(s, l);
  w2 = new W(s, l);
  w1.start();
  w2.start();
}
`)
	if len(rep.Warnings) != 0 {
		t.Fatalf("useful region flagged: %v", rep.Warnings)
	}
	if rep.UsefulRegions != 2 {
		t.Errorf("want 2 useful region instances (one per origin), got %d", rep.UsefulRegions)
	}
}

func TestNestedSharedProtectsOuter(t *testing.T) {
	rep := analyze(t, `
class S { field v; }
class W {
  field s; field l1; field l2;
  W(s, a, b) { this.s = s; this.l1 = a; this.l2 = b; }
  run() {
    x = this.s;
    a = this.l1;
    b = this.l2;
    sync (a) {
      sync (b) { x.v = this; }   // shared access inside the inner region
    }
  }
}
main {
  s = new S();
  a = new LockA();
  b = new LockB();
  w1 = new W(s, a, b);
  w2 = new W(s, a, b);
  w1.start();
  w2.start();
}
`)
	if len(rep.Warnings) != 0 {
		t.Fatalf("outer region is useful through its nested shared access: %v", rep.Warnings)
	}
}

func TestMixedRegionNotFlagged(t *testing.T) {
	rep := analyze(t, `
class S { field v; }
class Data { field w; }
class W {
  field s; field l;
  W(s, l) { this.s = s; this.l = l; }
  run() {
    x = this.s;
    k = this.l;
    d = new Data();
    sync (k) {
      d.w = this;   // local...
      x.v = this;   // ...but also shared: region is useful
    }
  }
}
main {
  s = new S();
  l = new Lock();
  w1 = new W(s, l);
  w2 = new W(s, l);
  w1.start();
  w2.start();
}
`)
	if len(rep.Warnings) != 0 {
		t.Fatalf("mixed region flagged: %v", rep.Warnings)
	}
}
