// Package server exposes the batch scheduler as an HTTP JSON API — the
// `o2 serve` surface. Endpoints:
//
//	POST /analyze    submit minilang sources for analysis (optionally wait)
//	GET  /jobs/{id}  poll a job
//	GET  /jobs       list all jobs
//	GET  /healthz    liveness
//	GET  /statsz     scheduler + cache counters
//
// The handler is plain net/http over sched.Scheduler; it owns no state of
// its own, so it is safe to serve from multiple listeners.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"o2"
	"o2/internal/sched"
)

// AnalyzeRequest is the POST /analyze body.
type AnalyzeRequest struct {
	// Files maps filename to minilang source. A single unnamed source can
	// be passed via Source instead.
	Files  map[string]string `json:"files,omitempty"`
	Source string            `json:"source,omitempty"`
	Config ConfigRequest     `json:"config"`
	// TimeoutMS is the per-job deadline in milliseconds (0 = server
	// default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Wait blocks the request until the job finishes and returns the full
	// result; otherwise the job ID is returned immediately (202).
	Wait  bool   `json:"wait,omitempty"`
	Label string `json:"label,omitempty"`
}

// ConfigRequest is the wire form of the analysis configuration. The zero
// value means the paper's default configuration.
type ConfigRequest struct {
	// Context selects the pointer-analysis policy: "origin" (default),
	// "0ctx", "kcfa", "kobj".
	Context string `json:"context,omitempty"`
	K       int    `json:"k,omitempty"`
	Android bool   `json:"android,omitempty"`
	// ReplicateEvents treats event origins as concurrently re-entrant.
	ReplicateEvents bool  `json:"replicate_events,omitempty"`
	Workers         int   `json:"workers,omitempty"`
	StepBudget      int64 `json:"step_budget,omitempty"`
	TimeBudgetMS    int64 `json:"time_budget_ms,omitempty"`
	MaxSHBNodes     int   `json:"max_shb_nodes,omitempty"`
}

func (cr ConfigRequest) toConfig() (o2.Config, error) {
	cfg := o2.DefaultConfig()
	pol, err := o2.PolicyByName(cr.Context, cr.K)
	if err != nil {
		return cfg, err
	}
	cfg.Policy = pol
	cfg.Android = cr.Android
	cfg.ReplicateEvents = cr.ReplicateEvents
	cfg.Workers = cr.Workers
	cfg.StepBudget = cr.StepBudget
	cfg.TimeBudget = time.Duration(cr.TimeBudgetMS) * time.Millisecond
	cfg.MaxSHBNodes = cr.MaxSHBNodes
	return cfg, nil
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string        `json:"error"`
	Kind  sched.ErrKind `json:"kind,omitempty"`
}

// Server is the HTTP front end over a scheduler.
type Server struct {
	sched *sched.Scheduler
	mux   *http.ServeMux
}

// New builds the handler over s.
func New(s *sched.Scheduler) *Server {
	srv := &Server{sched: s, mux: http.NewServeMux()}
	srv.mux.HandleFunc("POST /analyze", srv.handleAnalyze)
	srv.mux.HandleFunc("GET /jobs/{id}", srv.handleJob)
	srv.mux.HandleFunc("GET /jobs", srv.handleJobs)
	srv.mux.HandleFunc("GET /healthz", srv.handleHealthz)
	srv.mux.HandleFunc("GET /statsz", srv.handleStatsz)
	return srv
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, kind sched.ErrKind, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...), Kind: kind})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, sched.KindParse, "bad request body: %s", err)
		return
	}
	files := req.Files
	if files == nil {
		files = map[string]string{}
	}
	if req.Source != "" {
		files["input.mini"] = req.Source
	}
	if len(files) == 0 {
		writeError(w, http.StatusBadRequest, sched.KindParse, "no source files in request")
		return
	}
	cfg, err := req.Config.toConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, sched.KindParse, "%s", err)
		return
	}
	job, err := s.sched.Submit(sched.Request{
		Files:   files,
		Config:  cfg,
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		Label:   req.Label,
	})
	switch {
	case err == nil:
	case errors.Is(err, sched.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "", "queue full, retry later")
		return
	case errors.Is(err, sched.ErrShutdown):
		writeError(w, http.StatusServiceUnavailable, "", "server is shutting down")
		return
	case errors.Is(err, sched.ErrParse):
		writeError(w, http.StatusBadRequest, sched.KindParse, "%s", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, sched.KindInternal, "%s", err)
		return
	}
	if req.Wait {
		if _, err := s.sched.Wait(r.Context(), job.ID); err != nil {
			// Client went away; the job keeps running server-side.
			writeError(w, http.StatusRequestTimeout, sched.KindCanceled, "wait interrupted: %s", err)
			return
		}
		writeJSON(w, http.StatusOK, job.View())
		return
	}
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.sched.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "", "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Jobs())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Stats())
}

// Shutdown gracefully drains the scheduler (admission already stopped by
// the caller closing the listener).
func (s *Server) Shutdown(ctx context.Context) error { return s.sched.Shutdown(ctx) }
