// Package server exposes the batch scheduler as an HTTP JSON API — the
// `o2 serve` surface. Endpoints:
//
//	POST /analyze           submit minilang sources for analysis (optionally wait)
//	POST /batch             stream an NDJSON corpus manifest; one NDJSON record per program
//	GET  /jobs/{id}         poll a job (?trace=1 returns the Chrome trace of its run)
//	GET  /jobs/{id}/events  stream live progress heartbeats as NDJSON (chunked)
//	GET  /jobs              list all jobs
//	GET  /healthz           liveness
//	GET  /statsz            scheduler + cache counters, uptime, build info, obs snapshot
//	GET  /metrics           Prometheus text exposition (dependency-free)
//	GET  /debug/pprof/...   runtime profiles (only with WithPprof / `o2 serve -pprof`)
//
// Every request is wrapped by a thin middleware: a request ID is honored
// from X-Request-ID or generated, echoed back in the response header,
// threaded into job contexts (sched.RequestIDFrom) and attached to the
// structured access log; latency lands in the server.request_seconds
// histogram that /metrics exports.
//
// The handler is plain net/http over sched.Scheduler; it owns no state
// beyond its metrics registry, so it is safe to serve from multiple
// listeners.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"time"

	"o2"
	"o2/internal/corpus"
	"o2/internal/obs"
	"o2/internal/sched"
)

// AnalyzeRequest is the POST /analyze body.
type AnalyzeRequest struct {
	// Files maps filename to minilang source. A single unnamed source can
	// be passed via Source instead.
	Files  map[string]string `json:"files,omitempty"`
	Source string            `json:"source,omitempty"`
	Config ConfigRequest     `json:"config"`
	// TimeoutMS is the per-job deadline in milliseconds (0 = server
	// default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Wait blocks the request until the job finishes and returns the full
	// result; otherwise the job ID is returned immediately (202).
	Wait  bool   `json:"wait,omitempty"`
	Label string `json:"label,omitempty"`
}

// ConfigRequest is the wire form of the analysis configuration. The zero
// value means the paper's default configuration.
type ConfigRequest struct {
	// Context selects the pointer-analysis policy: "origin" (default),
	// "0ctx", "kcfa", "kobj".
	Context string `json:"context,omitempty"`
	K       int    `json:"k,omitempty"`
	Android bool   `json:"android,omitempty"`
	// ReplicateEvents treats event origins as concurrently re-entrant.
	ReplicateEvents bool  `json:"replicate_events,omitempty"`
	Workers         int   `json:"workers,omitempty"`
	StepBudget      int64 `json:"step_budget,omitempty"`
	TimeBudgetMS    int64 `json:"time_budget_ms,omitempty"`
	MaxSHBNodes     int   `json:"max_shb_nodes,omitempty"`
}

func (cr ConfigRequest) toConfig() (o2.Config, error) {
	cfg := o2.DefaultConfig()
	pol, err := o2.PolicyByName(cr.Context, cr.K)
	if err != nil {
		return cfg, err
	}
	cfg.Policy = pol
	cfg.Android = cr.Android
	cfg.ReplicateEvents = cr.ReplicateEvents
	cfg.Workers = cr.Workers
	cfg.StepBudget = cr.StepBudget
	cfg.TimeBudget = time.Duration(cr.TimeBudgetMS) * time.Millisecond
	cfg.MaxSHBNodes = cr.MaxSHBNodes
	return cfg, nil
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string        `json:"error"`
	Kind  sched.ErrKind `json:"kind,omitempty"`
}

// Server is the HTTP front end over a scheduler.
type Server struct {
	sched *sched.Scheduler
	mux   *http.ServeMux
	log   *slog.Logger
	reg   *obs.Registry
	start time.Time

	reqSeconds *obs.Histogram
	reqTotal   *obs.Counter
	errTotal   *obs.Counter

	pprof bool
}

// Option configures optional server behavior; see WithLogger and
// WithRegistry.
type Option func(*Server)

// WithLogger installs a structured access/error logger. Nil (the
// default) disables request logging.
func WithLogger(l *slog.Logger) Option { return func(s *Server) { s.log = l } }

// WithRegistry shares an existing obs registry for the server's request
// metrics instead of the private one New creates — useful when embedding
// the handler into a process that already owns a registry.
func WithRegistry(r *obs.Registry) Option { return func(s *Server) { s.reg = r } }

// WithPprof mounts net/http/pprof's profile handlers under /debug/pprof/.
// Off by default: profiles expose process internals, so the surface is
// opt-in (`o2 serve -pprof`).
func WithPprof() Option { return func(s *Server) { s.pprof = true } }

// New builds the handler over s.
func New(s *sched.Scheduler, opts ...Option) *Server {
	srv := &Server{sched: s, mux: http.NewServeMux(), start: time.Now()}
	for _, o := range opts {
		o(srv)
	}
	if srv.reg == nil {
		srv.reg = obs.New()
	}
	srv.reqSeconds = srv.reg.Histogram("server.request_seconds", obs.DefBuckets)
	srv.reqTotal = srv.reg.Counter("server.requests")
	srv.errTotal = srv.reg.Counter("server.errors")
	srv.mux.HandleFunc("POST /analyze", srv.handleAnalyze)
	srv.mux.HandleFunc("POST /batch", srv.handleBatch)
	srv.mux.HandleFunc("GET /jobs/{id}", srv.handleJob)
	srv.mux.HandleFunc("GET /jobs/{id}/events", srv.handleJobEvents)
	srv.mux.HandleFunc("GET /jobs", srv.handleJobs)
	srv.mux.HandleFunc("GET /healthz", srv.handleHealthz)
	srv.mux.HandleFunc("GET /statsz", srv.handleStatsz)
	srv.mux.HandleFunc("GET /metrics", srv.handleMetrics)
	if srv.pprof {
		srv.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		srv.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		srv.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		srv.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		srv.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return srv
}

// statusWriter captures the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush passes through so streaming handlers (POST /batch) can push each
// NDJSON record to the client as it lands.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// newRequestID returns a fresh opaque request ID (12 hex chars).
func newRequestID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-unknown"
	}
	return hex.EncodeToString(b[:])
}

// ServeHTTP is the request middleware: request-ID assignment and echo,
// latency/error accounting, structured access logging, then dispatch.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = newRequestID()
	}
	w.Header().Set("X-Request-ID", id)
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	r = r.WithContext(sched.WithRequestID(r.Context(), id))
	s.mux.ServeHTTP(sw, r)
	s.reqTotal.Inc()
	if sw.status >= 400 {
		s.errTotal.Inc()
	}
	s.reqSeconds.ObserveSince(start)
	if s.log != nil {
		s.log.Info("request",
			"method", r.Method, "path", r.URL.Path, "status", sw.status,
			"request_id", id, "duration", time.Since(start))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, kind sched.ErrKind, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...), Kind: kind})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, sched.KindParse, "bad request body: %s", err)
		return
	}
	files := req.Files
	if files == nil {
		files = map[string]string{}
	}
	if req.Source != "" {
		files["input.mini"] = req.Source
	}
	if len(files) == 0 {
		writeError(w, http.StatusBadRequest, sched.KindParse, "no source files in request")
		return
	}
	cfg, err := req.Config.toConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, sched.KindParse, "%s", err)
		return
	}
	job, err := s.sched.Submit(sched.Request{
		Files:     files,
		Config:    cfg,
		Timeout:   time.Duration(req.TimeoutMS) * time.Millisecond,
		Label:     req.Label,
		RequestID: sched.RequestIDFrom(r.Context()),
	})
	switch {
	case err == nil:
	case errors.Is(err, sched.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "", "queue full, retry later")
		return
	case errors.Is(err, sched.ErrShutdown):
		writeError(w, http.StatusServiceUnavailable, "", "server is shutting down")
		return
	case errors.Is(err, sched.ErrParse):
		writeError(w, http.StatusBadRequest, sched.KindParse, "%s", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, sched.KindInternal, "%s", err)
		return
	}
	if req.Wait {
		if _, err := s.sched.Wait(r.Context(), job.ID); err != nil {
			// Client went away; the job keeps running server-side.
			writeError(w, http.StatusRequestTimeout, sched.KindCanceled, "wait interrupted: %s", err)
			return
		}
		writeJSON(w, http.StatusOK, job.View())
		return
	}
	writeJSON(w, http.StatusAccepted, job.View())
}

// handleBatch streams a corpus through the analysis pipeline: the
// request body is an NDJSON manifest of inline sources (one
// {"name":..., "source":...} object per line; path entries are rejected
// — a remote manifest must not read files off the serving host), the
// response is NDJSON too — one schema-versioned record per program, in
// input order, flushed as results land, with a terminal summary line
// carrying totals and the stream-level error (an HTTP response has no
// exit code). Configuration rides in query parameters, mirroring the
// ConfigRequest fields: context, k, android, replicate_events, workers,
// step_budget, time_budget_ms, max_shb_nodes — plus the pipeline shape:
// jobs (parallel programs), window (reorder window), timeout_ms
// (per-program deadline), run_stats=1 (attach RunStats per record).
//
// The endpoint bypasses the job scheduler and its result cache: a
// corpus run is a bulk scan, and letting it flood the job table or
// evict the interactive cache would hurt the /analyze path it shares
// the process with.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cr := ConfigRequest{
		Context:         q.Get("context"),
		K:               qInt(q.Get("k")),
		Android:         qBool(q.Get("android")),
		ReplicateEvents: qBool(q.Get("replicate_events")),
		Workers:         qInt(q.Get("workers")),
		StepBudget:      int64(qInt(q.Get("step_budget"))),
		TimeBudgetMS:    int64(qInt(q.Get("time_budget_ms"))),
		MaxSHBNodes:     qInt(q.Get("max_shb_nodes")),
	}
	cfg, err := cr.toConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, sched.KindParse, "%s", err)
		return
	}
	ccfg := o2.CorpusConfig{
		Config:         cfg,
		Workers:        qInt(q.Get("jobs")),
		Window:         qInt(q.Get("window")),
		ProgramTimeout: time.Duration(qInt(q.Get("timeout_ms"))) * time.Millisecond,
		CollectStats:   qBool(q.Get("run_stats")),
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	cw := corpus.NewWriter(w)
	// Every record of the stream carries the request ID the middleware
	// honored or minted, so multiplexed consumers can attribute lines to
	// the originating upload.
	reqID := sched.RequestIDFrom(r.Context())
	stats, serr := o2.AnalyzeCorpus(r.Context(), corpus.InlineManifest(r.Body), ccfg, func(res o2.CorpusResult) error {
		rec := corpus.NewRecord(res)
		rec.RequestID = reqID
		if err := cw.Write(rec); err != nil {
			return err
		}
		if fl != nil {
			fl.Flush()
		}
		return nil
	})
	// Headers are long gone; the summary line is the stream's verdict.
	sum := corpus.NewSummary(stats, serr)
	sum.RequestID = reqID
	_ = cw.Write(sum)
	if fl != nil {
		fl.Flush()
	}
}

func qInt(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

func qBool(s string) bool { return s == "1" || s == "true" }

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.sched.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "", "unknown job %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("trace") == "1" {
		sum := job.Summary()
		if sum == nil || sum.Stats == nil {
			writeError(w, http.StatusNotFound, "",
				"no trace for job %q (job unfinished, or server started without stats collection)", job.ID)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = sum.Stats.WriteTrace(w)
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

// handleJobEvents streams a job's live progress as chunked NDJSON: one
// schema-tagged progress heartbeat (corpus.ProgressRecord, "progress":
// true) per interval — immediately on connect, then every interval_ms
// query-param milliseconds (default 500, floor 10) — terminated by the
// job's final view as the last line once it reaches a terminal state.
// Consumers filter on the "progress" tag; the terminal line is the same
// object GET /jobs/{id} returns. The stream also ends when the client
// disconnects; the job keeps running server-side.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, err := s.sched.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "", "unknown job %q", r.PathValue("id"))
		return
	}
	interval := time.Duration(qInt(r.URL.Query().Get("interval_ms"))) * time.Millisecond
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	cw := corpus.NewWriter(w)
	reqID := sched.RequestIDFrom(r.Context())
	emit := func() error {
		rec := corpus.NewProgress(job.Progress().Snapshot())
		rec.WallNS = int64(job.Wall())
		rec.RequestID = reqID
		if err := cw.Write(rec); err != nil {
			return err
		}
		if fl != nil {
			fl.Flush()
		}
		return nil
	}
	if err := emit(); err != nil {
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-job.Done():
			_ = cw.Write(job.View())
			if fl != nil {
				fl.Flush()
			}
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
			if err := emit(); err != nil {
				return
			}
		}
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Jobs())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// mirrorSchedStats copies the scheduler's counters into the server
// registry under sched.* names, so /metrics and /statsz expose one
// consistent view. The registry has no label support; jobs-by-state is
// rendered as hand-written labeled gauge lines by handleMetrics.
func (s *Server) mirrorSchedStats() sched.Stats {
	st := s.sched.Stats()
	s.reg.Counter("sched.submitted").Set(st.Submitted)
	s.reg.Counter("sched.completed").Set(st.Completed)
	s.reg.Counter("sched.failed").Set(st.Failed)
	s.reg.Counter("sched.canceled").Set(st.Canceled)
	s.reg.Counter("sched.rejected").Set(st.Rejected)
	s.reg.Counter("sched.cache_hits").Set(st.CacheHits)
	s.reg.Counter("sched.cache_misses").Set(st.CacheMisses)
	s.reg.Counter("sched.cache_evictions").Set(st.CacheEvictions)
	s.reg.Counter("sched.unit_hits").Set(st.UnitHits)
	s.reg.Counter("sched.unit_misses").Set(st.UnitMisses)
	s.reg.Counter("sched.unit_evictions").Set(st.UnitEvictions)
	s.reg.SetGauge("sched.unit_entries", int64(st.UnitEntries))
	s.reg.SetGauge("sched.workers", int64(st.Workers))
	s.reg.SetGauge("sched.queue_depth", int64(st.QueueLen))
	s.reg.SetGauge("sched.queue_capacity", int64(st.QueueDepth))
	s.reg.SetGauge("sched.in_flight", st.InFlight)
	s.reg.SetGauge("sched.cache_entries", int64(st.CacheEntries))
	s.reg.SetGauge("server.uptime_seconds", int64(time.Since(s.start).Seconds()))
	return st
}

// buildInfo is the statsz build-identification block.
type buildInfo struct {
	GoVersion string `json:"go_version,omitempty"`
	Path      string `json:"path,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

func readBuildInfo() buildInfo {
	var b buildInfo
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.GoVersion = bi.GoVersion
	b.Path = bi.Main.Path
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// statszBody extends the scheduler counters (flattened, so existing
// clients keep working) with uptime, build identification and the
// server's obs registry snapshot — the same data /metrics exposes, in
// JSON form.
type statszBody struct {
	sched.Stats
	UptimeNS int64         `json:"uptime_ns"`
	Build    buildInfo     `json:"build"`
	Obs      *obs.RunStats `json:"obs,omitempty"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	st := s.mirrorSchedStats()
	writeJSON(w, http.StatusOK, statszBody{
		Stats:    st,
		UptimeNS: int64(time.Since(s.start)),
		Build:    readBuildInfo(),
		Obs:      s.reg.Snapshot(),
	})
}

// jobStates is the fixed exposition order of the o2_sched_jobs gauge.
var jobStates = []sched.State{sched.Queued, sched.Running, sched.Done, sched.Failed, sched.Canceled}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mirrorSchedStats()
	w.Header().Set("Content-Type", obs.PromContentType)
	s.reg.WritePrometheus(w)
	counts := s.sched.StateCounts()
	fmt.Fprintf(w, "# TYPE o2_sched_jobs gauge\n")
	for _, state := range jobStates {
		fmt.Fprintf(w, "o2_sched_jobs{state=%q} %d\n", state, counts[state])
	}
}

// Shutdown gracefully drains the scheduler (admission already stopped by
// the caller closing the listener).
func (s *Server) Shutdown(ctx context.Context) error { return s.sched.Shutdown(ctx) }
