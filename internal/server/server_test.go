package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"o2/internal/sched"
)

const racySrc = `
class S { field data; }
class W {
  field s;
  W(s) { this.s = s; }
  run() { sh = this.s; sh.data = this; }
}
main {
  s = new S();
  t1 = new W(s);
  t2 = new W(s);
  t1.start();
  t2.start();
}
`

const cleanSrc = `
class S { field data; }
class M { }
class W {
  field s; field m;
  W(s, m) { this.s = s; this.m = m; }
  run() { l = this.m; sync (l) { sh = this.s; sh.data = this; } }
}
main {
  s = new S();
  m = new M();
  t1 = new W(s, m);
  t2 = new W(s, m);
  t1.start();
  t2.start();
}
`

func newTestServer(t *testing.T, opts sched.Options) (*httptest.Server, *sched.Scheduler) {
	t.Helper()
	s := sched.New(opts)
	ts := httptest.NewServer(New(s))
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return ts, s
}

func postAnalyze(t *testing.T, url string, req AnalyzeRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestAnalyzeWaitEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1, CollectStats: true})

	resp, raw := postAnalyze(t, ts.URL, AnalyzeRequest{Source: racySrc, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, raw)
	}
	var view sched.View
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, raw)
	}
	if view.State != sched.Done || view.RaceCnt != 1 {
		t.Fatalf("state=%s races=%d", view.State, view.RaceCnt)
	}
	if view.Summary == nil || view.Summary.Stats == nil {
		t.Fatal("missing summary / RunStats in response")
	}

	// Second identical submission must be cache-served.
	resp, raw = postAnalyze(t, ts.URL, AnalyzeRequest{Source: racySrc, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	if view.Summary == nil || !view.Summary.Cached {
		t.Fatal("identical resubmission not cache-served")
	}
}

func TestAnalyzeAsyncAndPoll(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1})

	resp, raw := postAnalyze(t, ts.URL, AnalyzeRequest{Source: cleanSrc})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %s, want 202", resp.Status)
	}
	var view sched.View
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	if view.ID == "" {
		t.Fatal("no job ID in 202 response")
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status %s", r.Status)
		}
		if err := json.Unmarshal(raw, &view); err != nil {
			t.Fatal(err)
		}
		if view.Finished {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if view.State != sched.Done || view.RaceCnt != 0 {
		t.Fatalf("state=%s races=%d err=%s", view.State, view.RaceCnt, view.Error)
	}
}

func TestUnknownJob404(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %s, want 404", resp.Status)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1})

	for name, req := range map[string]AnalyzeRequest{
		"no files":   {Wait: true},
		"bad policy": {Source: racySrc, Config: ConfigRequest{Context: "psychic"}},
	} {
		resp, _ := postAnalyze(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", name, resp.Status)
		}
	}

	resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %s, want 400", resp.Status)
	}

	// Parse errors in the source surface as a failed job, not a 400.
	resp, raw := postAnalyze(t, ts.URL, AnalyzeRequest{Source: "class {", Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parse-error submission: status %s", resp.Status)
	}
	var view sched.View
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	if view.State != sched.Failed || view.ErrKind != sched.KindParse {
		t.Fatalf("state=%s kind=%s", view.State, view.ErrKind)
	}
}

func TestQueueFull429(t *testing.T) {
	// Big program + tiny queue: concurrent async submissions must
	// eventually see 429 with a Retry-After header.
	ts, _ := newTestServer(t, sched.Options{Workers: 1, QueueDepth: 1, CacheEntries: -1})

	big := genSource(200)
	saw429 := false
	for i := 0; i < 20 && !saw429; i++ {
		resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: big})
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			saw429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("status %s", resp.Status)
		}
	}
	if !saw429 {
		t.Fatal("queue never returned 429")
	}
}

func TestHealthzStatsz(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}

	postAnalyze(t, ts.URL, AnalyzeRequest{Source: racySrc, Wait: true})
	r, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	var st sched.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("statsz JSON: %v\n%s", err, raw)
	}
	if st.Submitted == 0 || st.Completed == 0 {
		t.Fatalf("statsz counters empty: %+v", st)
	}
}

// TestConcurrentSubmissions drives many parallel waiting clients through
// the full HTTP stack.
func TestConcurrentSubmissions(t *testing.T) {
	ts, s := newTestServer(t, sched.Options{Workers: 2, QueueDepth: 64})

	sources := []string{racySrc, cleanSrc, genSource(3), genSource(4)}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				src := sources[(c+i)%len(sources)]
				resp, raw := postAnalyze(t, ts.URL, AnalyzeRequest{Source: src, Wait: true})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %s: %s", c, resp.Status, raw)
					return
				}
				var view sched.View
				if err := json.Unmarshal(raw, &view); err != nil {
					t.Error(err)
					return
				}
				if view.State != sched.Done {
					t.Errorf("client %d: state=%s err=%s", c, view.State, view.Error)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	st := s.Stats()
	if st.Completed != 40 {
		t.Fatalf("completed=%d, want 40", st.Completed)
	}
	if st.CacheHits == 0 {
		t.Fatal("repeated sources produced no cache hits")
	}
}

// TestGracefulShutdownDrains: jobs admitted before Shutdown complete even
// though admission stops.
func TestGracefulShutdownDrains(t *testing.T) {
	s := sched.New(sched.Options{Workers: 1, QueueDepth: 16, CacheEntries: -1})
	srv := New(s)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		resp, raw := postAnalyze(t, ts.URL, AnalyzeRequest{Source: genSource(20)})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("status %s", resp.Status)
		}
		var view sched.View
		if err := json.Unmarshal(raw, &view); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, view.ID)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		j, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State() != sched.Done {
			t.Fatalf("job %s state=%s after drain", id, j.State())
		}
	}

	resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: racySrc})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status %s, want 503", resp.Status)
	}
}

func genSource(n int) string {
	var b strings.Builder
	b.WriteString("class S { field data; }\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "class W%d { field s; W%d(s) { this.s = s; } run() { sh = this.s; sh.data = this; } }\n", i, i)
	}
	b.WriteString("main {\n  s = new S();\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  t%d = new W%d(s);\n  t%d.start();\n", i, i, i)
	}
	b.WriteString("}\n")
	return b.String()
}

// TestMetricsExposition scrapes /metrics after real traffic and checks
// the Prometheus text format: content type, # TYPE lines for the
// scheduler mirror, the request-latency histogram, and the labeled
// jobs-by-state gauge.
func TestMetricsExposition(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1, CollectStats: true})
	postAnalyze(t, ts.URL, AnalyzeRequest{Source: racySrc, Wait: true})
	postAnalyze(t, ts.URL, AnalyzeRequest{Source: racySrc, Wait: true}) // cache hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q is not the Prometheus text exposition", ct)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE o2_sched_submitted counter",
		"# TYPE o2_sched_cache_hits counter",
		"# TYPE o2_sched_queue_depth gauge",
		"# TYPE o2_server_request_seconds histogram",
		`o2_server_request_seconds_bucket{le="+Inf"}`,
		"o2_server_request_seconds_count",
		"# TYPE o2_sched_jobs gauge",
		`o2_sched_jobs{state="done"} 2`,
		"o2_server_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	// The cache hit mirrored from the scheduler must be non-zero.
	if strings.Contains(body, "\no2_sched_cache_hits 0\n") {
		t.Error("cache_hits not mirrored from scheduler stats")
	}
}

// TestStatszExtended checks the uptime / build / obs additions while the
// flat scheduler counters stay where existing clients expect them.
func TestStatszExtended(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1})
	postAnalyze(t, ts.URL, AnalyzeRequest{Source: racySrc, Wait: true})

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("statsz JSON: %v\n%s", err, raw)
	}
	for _, key := range []string{"submitted", "completed", "uptime_ns", "build", "obs"} {
		if _, ok := body[key]; !ok {
			t.Errorf("statsz missing %q:\n%s", key, raw)
		}
	}
	if up, _ := body["uptime_ns"].(float64); up <= 0 {
		t.Errorf("uptime_ns = %v, want > 0", body["uptime_ns"])
	}
	if b, _ := body["build"].(map[string]any); b["go_version"] == "" {
		t.Errorf("build info missing go_version: %v", body["build"])
	}
}

// TestJobTrace fetches ?trace=1 for a finished job and validates the
// Chrome trace_event shape end to end over HTTP.
func TestJobTrace(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1, CollectStats: true})
	resp, raw := postAnalyze(t, ts.URL, AnalyzeRequest{Source: racySrc, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var view sched.View
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}

	r, err := http.Get(ts.URL + "/jobs/" + view.ID + "?trace=1")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("trace: %s: %s", r.Status, raw)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, raw)
	}
	var b, e int
	for _, ev := range events {
		switch ev["ph"] {
		case "B":
			b++
		case "E":
			e++
		}
	}
	if b == 0 || b != e {
		t.Fatalf("trace has %d B and %d E events", b, e)
	}
}

// TestJobTraceUnavailable: a server without stats collection has no span
// data to trace, and says so rather than emitting an empty file.
func TestJobTraceUnavailable(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1})
	_, raw := postAnalyze(t, ts.URL, AnalyzeRequest{Source: racySrc, Wait: true})
	var view sched.View
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	r, err := http.Get(ts.URL + "/jobs/" + view.ID + "?trace=1")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("trace without stats: %s, want 404", r.Status)
	}
}

// TestRequestIDPropagation: a caller-provided X-Request-ID is echoed on
// the response and lands on the job view; absent one, the server mints
// an ID.
func TestRequestIDPropagation(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1})

	body, _ := json.Marshal(AnalyzeRequest{Source: racySrc, Wait: true})
	req, err := http.NewRequest("POST", ts.URL+"/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "test-req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "test-req-42" {
		t.Errorf("response X-Request-ID = %q, want the caller's", got)
	}
	var view sched.View
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	if view.RequestID != "test-req-42" {
		t.Errorf("job view request_id = %q, want test-req-42", view.RequestID)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("server did not mint a request ID")
	}
}

// TestWitnessInJobResult: job summaries carry the full machine-readable
// witness per race.
func TestWitnessInJobResult(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1})
	_, raw := postAnalyze(t, ts.URL, AnalyzeRequest{Source: racySrc, Wait: true})
	var view sched.View
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	if view.RaceCnt != 1 || view.Summary == nil {
		t.Fatalf("races=%d summary=%v", view.RaceCnt, view.Summary)
	}
	w := view.Summary.Races[0].Witness
	if w == nil {
		t.Fatal("race has no witness")
	}
	if w.Schema == 0 || w.Locks.Verdict == "" || w.Ordering.Verdict == "" {
		t.Fatalf("witness incomplete: %+v", w)
	}
	if len(w.A.Origin.SpawnChain) == 0 {
		t.Fatal("witness has no spawn chain")
	}
}

func TestBatchStreaming(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 2})

	// Three manifest lines: a racy program, a corrupt one, a clean one.
	// The response must carry one record per line, in manifest order,
	// with the corrupt program isolated as an error record, plus the
	// terminal summary line.
	manifest := `{"name":"racy.mini","source":` + string(mustJSON(t, racySrc)) + `}
{"name":"broken.mini","source":"class { nope"}
{"name":"clean.mini","source":` + string(mustJSON(t, cleanSrc)) + `}
`
	resp, err := http.Post(ts.URL+"/batch?jobs=2&window=2", "application/x-ndjson", strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d NDJSON lines, want 3 records + summary:\n%s", len(lines), body)
	}

	type rec struct {
		Schema    int    `json:"schema"`
		Index     int    `json:"index"`
		Program   string `json:"program"`
		ExitClass string `json:"exit_class"`
		RaceCount int    `json:"race_count"`
		Error     string `json:"error"`
		Summary   bool   `json:"summary"`
		Programs  int    `json:"programs"`
		Failed    int    `json:"failed"`
	}
	var recs [4]rec
	for i, l := range lines {
		if err := json.Unmarshal([]byte(l), &recs[i]); err != nil {
			t.Fatalf("line %d: %v\n%s", i, err, l)
		}
		if recs[i].Schema != 1 {
			t.Fatalf("line %d: schema = %d", i, recs[i].Schema)
		}
	}
	wants := []struct {
		program, class string
		races          int
	}{
		{"racy.mini", "races", 1},
		{"broken.mini", "parse", 0},
		{"clean.mini", "ok", 0},
	}
	for i, w := range wants {
		r := recs[i]
		if r.Index != i || r.Program != w.program || r.ExitClass != w.class || r.RaceCount != w.races {
			t.Fatalf("record %d = %+v, want %+v", i, r, w)
		}
	}
	if recs[1].Error == "" {
		t.Fatal("parse record carries no error message")
	}
	sum := recs[3]
	if !sum.Summary || sum.Programs != 3 || sum.Failed != 1 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestBatchRejectsPathEntries(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1})
	resp, err := http.Post(ts.URL+"/batch", "application/x-ndjson",
		strings.NewReader(`{"path":"/etc/passwd"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	last := lines[len(lines)-1]
	var sum struct {
		Summary bool   `json:"summary"`
		Error   string `json:"error"`
	}
	if err := json.Unmarshal([]byte(last), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Summary || !strings.Contains(sum.Error, "not allowed") {
		t.Fatalf("summary = %+v, want a path-rejection error", sum)
	}
}

func TestBatchBadConfig(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1})
	resp, err := http.Post(ts.URL+"/batch?context=bogus", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestJobEventsStream: GET /jobs/{id}/events must deliver at least two
// well-formed progress heartbeats for an in-flight job before the
// terminal job-view record, each carrying the request ID.
func TestJobEventsStream(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1, CacheEntries: -1})

	resp, raw := postAnalyze(t, ts.URL, AnalyzeRequest{Source: genSource(250)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %s: %s", resp.Status, raw)
	}
	var view sched.View
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest("GET", ts.URL+"/jobs/"+view.ID+"/events?interval_ms=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "evt-req-7")
	er, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer er.Body.Close()
	if er.StatusCode != http.StatusOK {
		t.Fatalf("events status %s", er.Status)
	}
	if ct := er.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}

	body, err := io.ReadAll(er.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) < 3 {
		t.Fatalf("got %d NDJSON lines, want >=2 heartbeats + terminal view:\n%s", len(lines), body)
	}

	type event struct {
		Schema     int     `json:"schema"`
		IsProgress bool    `json:"progress"`
		Phase      string  `json:"phase"`
		Percent    float64 `json:"percent"`
		RequestID  string  `json:"request_id"`
		State      string  `json:"state"`
	}
	heartbeats := 0
	for i, l := range lines[:len(lines)-1] {
		var ev event
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("line %d: %v\n%s", i, err, l)
		}
		if !ev.IsProgress {
			t.Fatalf("line %d is not a progress heartbeat:\n%s", i, l)
		}
		if ev.Schema != 1 {
			t.Fatalf("heartbeat schema = %d", ev.Schema)
		}
		if ev.Percent < 0 || ev.Percent > 100 {
			t.Fatalf("heartbeat percent = %v", ev.Percent)
		}
		if ev.RequestID != "evt-req-7" {
			t.Fatalf("heartbeat request_id = %q", ev.RequestID)
		}
		heartbeats++
	}
	if heartbeats < 2 {
		t.Fatalf("only %d heartbeats before the terminal record", heartbeats)
	}
	var term event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &term); err != nil {
		t.Fatal(err)
	}
	if term.IsProgress || term.State != string(sched.Done) {
		t.Fatalf("terminal line = %s", lines[len(lines)-1])
	}
}

func TestJobEventsUnknownJob(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestBatchStreamRequestID: every record of a streamed batch (and the
// terminal summary) must carry the originating request's ID.
func TestBatchStreamRequestID(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1})
	manifest := `{"name":"racy.mini","source":` + string(mustJSON(t, racySrc)) + `}` + "\n"
	req, err := http.NewRequest("POST", ts.URL+"/batch", strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("X-Request-ID", "batch-req-9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), body)
	}
	for i, l := range lines {
		var rec struct {
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.RequestID != "batch-req-9" {
			t.Fatalf("line %d request_id = %q, want batch-req-9\n%s", i, rec.RequestID, l)
		}
	}
}

// TestPprofGated: the pprof handlers exist only behind WithPprof.
func TestPprofGated(t *testing.T) {
	ts, _ := newTestServer(t, sched.Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ungated pprof status = %d, want 404", resp.StatusCode)
	}

	s := sched.New(sched.Options{Workers: 1})
	pts := httptest.NewServer(New(s, WithPprof()))
	t.Cleanup(func() {
		pts.Close()
		s.Shutdown(context.Background())
	})
	resp, err = http.Get(pts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gated pprof status = %d, want 200", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("profile")) {
		t.Fatalf("pprof index body unexpected:\n%.200s", body)
	}
}
