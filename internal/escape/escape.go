// Package escape implements a classical thread-escape analysis in the
// style of TLOA (Halpert et al., PACT 2007), the comparator of the paper's
// Table 7. An object escapes its allocating thread when it is reachable —
// through any chain of field loads — from a static field, from a thread or
// event-handler object, or from the attribute pointers handed to one. All
// accesses to escaped objects are conservatively thread-shared.
//
// TLOA's characteristic costs and imprecision relative to OSA are
// faithfully reproduced:
//
//   - it is run over a context-sensitive points-to result (the Table 7
//     harness uses 2-CFA, the "context-sensitive information flow" that
//     makes TLOA slow), and the escape closure itself iterates to fixpoint
//     over every field edge of the heap;
//   - static fields escape unconditionally, even when a single origin
//     touches them — OSA distinguishes those (§3.3);
//   - the answer is a boolean per object: no per-origin read/write sets.
package escape

import (
	"time"

	"o2/internal/ir"
	"o2/internal/pta"
)

// Report is the escape-analysis result.
type Report struct {
	// Escaped holds the escaped abstract objects.
	Escaped *pta.Bits
	// Objects is the total number of abstract objects.
	Objects int
	// SharedAccesses counts access statements whose base may point to an
	// escaped object (the analogue of OSA's #S-access).
	SharedAccesses int
	// Rounds counts closure iterations until fixpoint.
	Rounds  int
	Elapsed time.Duration
}

// Analyze computes thread-escape information over a solved points-to
// analysis.
func Analyze(a *pta.Analysis) *Report {
	start := time.Now()
	esc := &pta.Bits{}

	// Seed 1: anything a static field may point to escapes.
	a.ForEachStaticNode(func(sig string, pts *pta.Bits) {
		esc.UnionWith(pts)
	})
	// Seed 2: origin objects (thread/event receivers) and everything their
	// attribute pointers may point to escape to the new origin.
	for _, org := range a.Origins.Origins {
		if org.Obj != 0 {
			esc.Add(uint32(org.Obj))
		}
		for _, v := range org.AttrVars {
			esc.UnionWith(a.PointsTo(v, org.AttrCtx))
		}
	}

	// Transitive closure over heap field edges: a full sweep per round, as
	// in information-flow formulations.
	rounds := 0
	for {
		rounds++
		changed := false
		a.ForEachFieldNode(func(obj pta.ObjID, field string, pts *pta.Bits) {
			if esc.Has(uint32(obj)) {
				if esc.UnionWith(pts) {
					changed = true
				}
			}
		})
		if !changed {
			break
		}
	}

	rep := &Report{Escaped: esc, Objects: a.NumObjs(), Rounds: rounds}
	rep.SharedAccesses = countSharedAccesses(a, esc)
	rep.Elapsed = time.Since(start)
	return rep
}

// countSharedAccesses walks every reachable contexted function once and
// counts access statements that may touch an escaped object. Static field
// accesses always count (statics escape by definition here).
func countSharedAccesses(a *pta.Analysis, esc *pta.Bits) int {
	shared := map[ir.Instr]bool{}
	for id := 0; id < a.CG.NumNodes(); id++ {
		fc := a.CG.Get(pta.FnCtxID(id))
		for _, in := range fc.Fn.Body {
			switch in := in.(type) {
			case *ir.LoadField:
				markIfEscaped(a, esc, shared, in, in.Obj, fc.Ctx)
			case *ir.StoreField:
				markIfEscaped(a, esc, shared, in, in.Obj, fc.Ctx)
			case *ir.LoadIndex:
				markIfEscaped(a, esc, shared, in, in.Arr, fc.Ctx)
			case *ir.StoreIndex:
				markIfEscaped(a, esc, shared, in, in.Arr, fc.Ctx)
			case *ir.LoadStatic, *ir.StoreStatic:
				shared[in.(ir.Instr)] = true
			}
		}
	}
	return len(shared)
}

func markIfEscaped(a *pta.Analysis, esc *pta.Bits, shared map[ir.Instr]bool, in ir.Instr, base *ir.Var, ctx pta.CtxID) {
	if a.PointsTo(base, ctx).Intersects(esc) {
		shared[in] = true
	}
}
