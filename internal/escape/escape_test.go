package escape_test

import (
	"testing"

	"o2/internal/escape"
	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/osa"
	"o2/internal/pta"
)

func run(t *testing.T, src string, pol pta.Policy) (*pta.Analysis, *escape.Report) {
	t.Helper()
	prog, err := lang.Compile("t.mini", src, ir.DefaultEntryConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := pta.New(prog, pta.Config{Policy: pol, Entries: ir.DefaultEntryConfig()})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	return a, escape.Analyze(a)
}

func countEscaped(a *pta.Analysis, rep *escape.Report, cls string) int {
	n := 0
	rep.Escaped.ForEach(func(o uint32) {
		if a.Obj(pta.ObjID(o)).Class().Name == cls {
			n++
		}
	})
	return n
}

const program = `
class G { static field root; }
class S { field child; }
class Local { field v; }
class W {
  field s;
  W(s) { this.s = s; }
  run() {
    d = new Local();
    d.v = this;
    x = this.s;
  }
}
main {
  s = new S();
  c = new S();
  s.child = c;           // reachable from escaped s: escapes transitively
  G.root = s;            // static: escapes
  stay = new Local();    // never leaves main
  w = new W(s);
  w.start();
}
`

func TestEscapeClassification(t *testing.T) {
	a, rep := run(t, program, pta.Policy{Kind: pta.KOrigin, K: 1})
	if n := countEscaped(a, rep, "S"); n != 2 {
		t.Errorf("both S objects escape (static + field closure): %d", n)
	}
	if n := countEscaped(a, rep, "W"); n != 1 {
		t.Errorf("the origin object escapes: %d", n)
	}
	// The per-thread Local escapes? It is allocated inside the thread and
	// never stored anywhere shared: it must stay local. Main's Local also
	// stays local.
	if n := countEscaped(a, rep, "Local"); n != 0 {
		t.Errorf("Locals should not escape: %d", n)
	}
	if rep.SharedAccesses == 0 {
		t.Errorf("accesses to escaped objects should be counted")
	}
	if rep.Rounds == 0 || rep.Objects == 0 {
		t.Errorf("report counters empty: %+v", rep)
	}
}

// The paper's Table 7 precision point: statics always escape for TLOA even
// when one origin uses them, while OSA keeps them local.
func TestEscapeCoarserThanOSAOnStatics(t *testing.T) {
	src := `
class G { static field onlyMain; }
class W { run() { } }
main {
  a = new Obj();
  G.onlyMain = a;
  b = G.onlyMain;
  w = new W();
  w.start();
}
`
	a, rep := run(t, src, pta.Policy{Kind: pta.KOrigin, K: 1})
	if n := countEscaped(a, rep, "Obj"); n != 1 {
		t.Fatalf("TLOA must mark the static-reachable Obj escaped: %d", n)
	}
	sh := osa.Analyze(a)
	for _, k := range sh.Shared {
		if k.Static == "G.onlyMain" {
			t.Errorf("OSA should keep the single-origin static local")
		}
	}
}

// Soundness cross-check: every object OSA considers shared must be escaped
// (escape analysis is the coarser abstraction).
func TestOSASharedImpliesEscaped(t *testing.T) {
	a, rep := run(t, program, pta.Policy{Kind: pta.KOrigin, K: 1})
	sh := osa.Analyze(a)
	for _, k := range sh.Shared {
		if k.Static != "" {
			continue
		}
		if !rep.Escaped.Has(uint32(k.Obj)) {
			t.Errorf("OSA-shared object %v not escaped", k)
		}
	}
}
