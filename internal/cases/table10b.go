package cases

// TDengineCase models the six TDengine races: the vnode write path
// (event-driven RPC handlers) against the background commit and sync
// threads on cache, WAL and version state.
var TDengineCase = Case{
	Name:        "tdengine",
	Races:       6,
	ThreadEvent: true,
	About:       "vnode cache/WAL/version fields shared between RPC events and commit/sync threads",
	Source: `
class Vnode {
  field cache_size; field wal_level; field version;
  field applied; field committing; field dropped;
}

// RPC write-message handler (event).
class WriteMsgHandler {
  field v;
  WriteMsgHandler(v) { this.v = v; }
  handleEvent(msg) {
    n = this.v;
    n.cache_size = msg;     // RACE 1
    n.version = msg;        // RACE 2
    x = n.committing;       // RACE 3 (read side)
  }
}

// Background commit thread.
class CommitThread {
  field v;
  CommitThread(v) { this.v = v; }
  run() {
    n = this.v;
    x = n.cache_size;       // RACE 1 counterpart
    n.committing = this;    // RACE 3 counterpart
    n.applied = this;       // RACE 4
  }
}

// Replica sync thread.
class SyncThread {
  field v;
  SyncThread(v) { this.v = v; }
  run() {
    n = this.v;
    x = n.version;          // RACE 2 counterpart
    y = n.applied;          // RACE 4 counterpart
    n.wal_level = this;     // RACE 5
    n.dropped = this;       // RACE 6
  }
}

// Drop-vnode handler (event).
class DropHandler {
  field v;
  DropHandler(v) { this.v = v; }
  handleEvent(msg) {
    n = this.v;
    x = n.wal_level;        // RACE 5 counterpart
    y = n.dropped;          // RACE 6 counterpart
  }
}

main {
  v = new Vnode();
  w = new WriteMsgHandler(v);
  m = new Msg();
  w.handleEvent(m);
  c = new CommitThread(v);
  c.start();
  s = new SyncThread(v);
  s.start();
  d = new DropHandler(v);
  d.handleEvent(m);
}
`,
}

// RedisCase models the five Redis/RedisGraph races between the event loop
// (command handlers) and background threads (bio/AOF) on server state.
var RedisCase = Case{
	Name:        "redis",
	Races:       5,
	ThreadEvent: true,
	About:       "server.dirty/aof_buf/clients/expires/repl_offset between event loop and bio threads",
	Source: `
class Server {
  field dirty; field aof_buf; field clients; field expires; field repl_offset;
}

// Command handler on the event loop.
class CommandHandler {
  field srv;
  CommandHandler(s) { this.srv = s; }
  handleEvent(cmd) {
    s = this.srv;
    s.dirty = cmd;          // RACE 1
    s.aof_buf = cmd;        // RACE 2
    s.clients = cmd;        // RACE 3
  }
}

// Background AOF fsync thread.
class BioAofThread {
  field srv;
  BioAofThread(s) { this.srv = s; }
  run() {
    s = this.srv;
    x = s.dirty;            // RACE 1 counterpart
    y = s.aof_buf;          // RACE 2 counterpart
    s.repl_offset = this;   // RACE 5
  }
}

// Background lazy-free thread. Note the nested spawn: Redis creates its
// bio threads from a starter thread (the paper observed nested thread
// creations in Redis motivating k-origin).
class LazyFreeThread {
  field srv;
  LazyFreeThread(s) { this.srv = s; }
  run() {
    s = this.srv;
    x = s.clients;          // RACE 3 counterpart
    s.expires = this;       // RACE 4
  }
}

// Replication cron handler (event).
class ReplCronHandler {
  field srv;
  ReplCronHandler(s) { this.srv = s; }
  handleEvent(t) {
    s = this.srv;
    x = s.expires;          // RACE 4 counterpart
    y = s.repl_offset;      // RACE 5 counterpart
  }
}

// Starter thread spawning the bio threads (nested origins).
class BioStarter {
  field srv;
  BioStarter(s) { this.srv = s; }
  run() {
    s = this.srv;
    a = new BioAofThread(s);
    a.start();
    l = new LazyFreeThread(s);
    l.start();
  }
}

main {
  s = new Server();
  st = new BioStarter(s);
  st.start();
  h = new CommandHandler(s);
  cmd = new Cmd();
  h.handleEvent(cmd);
  r = new ReplCronHandler(s);
  r.handleEvent(cmd);
}
`,
}

// OVSCase models the three Open vSwitch races between the netlink upcall
// handler and the revalidator thread.
var OVSCase = Case{
	Name:        "ovs",
	Races:       3,
	ThreadEvent: true,
	About:       "flow table size / stats / config between upcall events and revalidator thread",
	Source: `
class Udpif { field n_flows; field stats; field conf; }

class UpcallHandler {
  field u;
  UpcallHandler(u) { this.u = u; }
  handleEvent(pkt) {
    d = this.u;
    d.n_flows = pkt;        // RACE 1
    x = d.stats;            // RACE 2 (read side)
    y = d.conf;             // RACE 3 (read side)
  }
}

class RevalidatorThread {
  field u;
  RevalidatorThread(u) { this.u = u; }
  run() {
    d = this.u;
    x = d.n_flows;          // RACE 1 counterpart
    d.stats = this;         // RACE 2 counterpart
    d.conf = this;          // RACE 3 counterpart
  }
}

main {
  u = new Udpif();
  h = new UpcallHandler(u);
  p = new Pkt();
  h.handleEvent(p);
  r = new RevalidatorThread(u);
  r.start();
}
`,
}

// CPQueueCase models the seven races in the cpqueue lock-free concurrent
// priority queue: two symmetric worker threads mutate queue bookkeeping
// without synchronization (lock-free code is racy by design at the memory
// level; the paper counts the seven confirmed harmful ones).
var CPQueueCase = Case{
	Name:  "cpqueue",
	Races: 7,
	About: "head/tail/size/top/bottom/version/active of the lock-free queue across two workers",
	Source: `
class Queue {
  field head; field tail; field size; field top;
  field bottom; field version; field active;
}

class QueueWorker {
  field q;
  QueueWorker(q) { this.q = q; }
  run() {
    x = this.q;
    x.head = this;          // RACE 1 (both instances write)
    x.tail = this;          // RACE 2
    x.size = this;          // RACE 3
    x.top = this;           // RACE 4
    x.bottom = this;        // RACE 5
    x.version = this;       // RACE 6
    x.active = this;        // RACE 7
  }
}

main {
  q = new Queue();
  w1 = new QueueWorker(q);
  w2 = new QueueWorker(q);
  w1.start();
  w2.start();
}
`,
}

// MRLockCase models the five races found in the mrlock multi-resource
// lock implementation itself: the lock's own bookkeeping fields are
// accessed by acquirer and releaser threads without protection.
var MRLockCase = Case{
	Name:  "mrlock",
	Races: 5,
	About: "flag/owner/depth/waiters/ticket of the lock structure across acquire/release threads",
	Source: `
class MRLock {
  field flag; field owner; field depth; field waiters; field ticket;
}

class Acquirer {
  field l;
  Acquirer(l) { this.l = l; }
  run() {
    k = this.l;
    k.flag = this;          // RACE 1
    k.owner = this;         // RACE 2
    x = k.depth;            // RACE 3 (read side)
    k.ticket = this;        // RACE 5
  }
}

class Releaser {
  field l;
  Releaser(l) { this.l = l; }
  run() {
    k = this.l;
    x = k.flag;             // RACE 1 counterpart
    y = k.owner;            // RACE 2 counterpart
    k.depth = this;         // RACE 3 counterpart
    k.waiters = this;       // RACE 4
  }
}

class Spinner {
  field l;
  Spinner(l) { this.l = l; }
  run() {
    k = this.l;
    x = k.waiters;          // RACE 4 counterpart
    y = k.ticket;           // RACE 5 counterpart
  }
}

main {
  l = new MRLock();
  a = new Acquirer(l);
  r = new Releaser(l);
  s = new Spinner(l);
  a.start();
  r.start();
  s.start();
}
`,
}
