// Package cases contains minilang transcriptions of the programs that
// appear in the paper: the running examples of Figures 2 and 3, and the
// real-world races of §5.4 / Table 10 (Linux, Memcached, ZooKeeper,
// Firefox Focus, and the other confirmed bugs). Each case records where
// the paper's races are and is used by both the test suite and the
// Table 10 benchmark harness.
package cases

// Figure2 is the paper's running example (Figure 2a): two threads share s
// but carry different op objects, so the virtual call op.util() →
// act() manages each thread's own data. Origin-sensitive analysis
// proves the Data allocation in sub3 and the op objects thread-local;
// context-insensitive analysis conflates them.
const Figure2 = `
// Figure 2(a) of the paper, in minilang.
class S { field data; }

class Op1 {
  field y;
  Op1() { this.y = new Box(); }
  util() { this.act(); }
  act() { t = this.y; t.v = this; }   // writes its own Box
}

class Op2 {
  field y;
  Op2() { this.y = new Box(); }
  util() { this.act(); }
  act() { t = this.y; u = t.v; }      // reads its own Box
}

class T {
  field s;
  field op;
  T(s, op) { this.s = s; this.op = op; }
  run() {
    d = this.sub1();          // per-origin local Data (line 13 in paper)
    d.payload = this;
    sh = this.s;
    sh.data = this;           // genuinely shared: racy write on s.data
    o = this.op;
    o.util();                 // dispatches to Op1.act or Op2.act per origin
  }
  sub1() { x = this.sub2(); return x; }
  sub2() { x = this.sub3(); return x; }
  sub3() { x = new Data(); return x; }
}

main {
  s = new S();
  op1 = new Op1();
  op2 = new Op2();
  t1 = new T(s, op1);
  t2 = new T(s, op2);
  t1.start();
  t2.start();
}
`

// Figure3 is the paper's Figure 3: two thread classes share the super
// constructor T(), which allocates field f. Without switching context at
// the origin allocation, a single abstract object is created for f and
// the two threads' f fields falsely alias (and the per-thread writes
// falsely race).
const Figure3 = `
// Figure 3 of the paper, in minilang.
class T {
  field f;
  T() { this.f = new Box(); }
  run() {
    x = this.f;
    x.v = this;     // each thread writes only its own Box
  }
}
class TA extends T { TA() { super(); } }
class TB extends T { TB() { super(); } }

main {
  a = new TA();
  b = new TB();
  a.start();
  b.start();
}
`
