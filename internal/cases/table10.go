package cases

// Case is one real-world race case study from §5.4 / Table 10. Source
// transcribes the paper's described racing code into minilang, keeping the
// original thread/event structure, locking and aliasing; Races is the
// paper's confirmed race count, which O2 must report exactly.
type Case struct {
	Name string
	// Races is Table 10's confirmed-race count.
	Races int
	// ThreadEvent marks races caused by thread×event interaction — the
	// ones the paper attributes to origin unification (missed when events
	// and threads are analyzed separately).
	ThreadEvent bool
	// Android runs the case in Android mode (§4.2).
	Android bool
	Source  string
	About   string
}

// Table10 lists the case studies in paper order.
var Table10 = []Case{LinuxCase, TDengineCase, RedisCase, OVSCase, CPQueueCase,
	MRLockCase, MemcachedCase, FirefoxCase, ZooKeeperCase, HBaseCase, TomcatCase}

// ByName returns the named case study.
func ByName(name string) (Case, bool) {
	for _, c := range Table10 {
		if c.Name == name {
			return c, true
		}
	}
	return Case{}, false
}

// LinuxCase models the kernel races of §5.4: the vsyscall timezone race
// (concurrent update_vsyscall_tz writes to vdata[CS_HRES_COARSE] from two
// invocations of the settimeofday system call) plus races between system
// calls, a kernel thread and an interrupt handler on timekeeper state.
// System calls are modeled as event handlers allocated in a loop, which
// replicates their origins — the paper's "two origins representing
// concurrent calls of the same system call".
var LinuxCase = Case{
	Name:        "linux",
	Races:       6,
	ThreadEvent: true,
	About:       "vsyscall tz array race + timekeeper/driver/irq races (kernel bugzilla, confirmed)",
	Source: `
// Kernel state.
class VdsoData { field tz_minuteswest; field tz_dsttime; }
class Timekeeper { field offs_boot; field coarse_nsec; field mult; }
class GpioChip { field irq_state; field events; }

// __x64_sys_settimeofday: writes the vdso data without a lock. Two
// concurrent invocations of the call race on vdata[CS_HRES_COARSE].
class SysSettimeofday {
  field vdata; field tk;
  SysSettimeofday(v, t) { this.vdata = v; this.tk = t; }
  handleEvent(req) {
    v = this.vdata;
    v[0] = req;            // RACE 1: concurrent writes to vdata element
    t = this.tk;
    x = t.coarse_nsec;     // RACE 2: vs timekeeping kthread write
  }
}

// __x64_sys_adjtimex: reads timekeeper state without a lock.
class SysAdjtimex {
  field tk;
  SysAdjtimex(t) { this.tk = t; }
  handleEvent(req) {
    t = this.tk;
    x = t.mult;            // RACE 3: vs kthread write of mult
    y = t.offs_boot;       // RACE 4: vs kthread write of offs_boot
  }
}

// Timekeeping kernel thread: periodic unlocked updates.
class TimekeepingThread {
  field tk;
  TimekeepingThread(t) { this.tk = t; }
  run() {
    t = this.tk;
    t.coarse_nsec = this;  // RACE 2 counterpart (missing lock)
    t.mult = this;         // RACE 3 counterpart
    t.offs_boot = this;    // RACE 4 counterpart
  }
}

// GPIO driver file-operation entry (read): races with its IRQ handler.
class GpioRead {
  field chip;
  GpioRead(c) { this.chip = c; }
  handleEvent(req) {
    c = this.chip;
    x = c.irq_state;       // RACE 5: vs irq handler write
    c.events = req;        // RACE 6: vs irq handler write of events
  }
}

// request_threaded_irq handler.
class GpioIrq {
  field chip;
  GpioIrq(c) { this.chip = c; }
  run() {
    c = this.chip;
    c.irq_state = this;    // RACE 5 counterpart
    c.events = this;       // RACE 6 counterpart
  }
}

main {
  vdata = new VArray();
  tk = new Timekeeper();
  chip = new GpioChip();

  // Concurrent invocations of each system call: allocate the handler in a
  // loop so its origin is replicated.
  while (pending) {
    s1 = new SysSettimeofday(vdata, tk);
    r1 = new Req();
    s1.handleEvent(r1);
  }
  while (pending) {
    s2 = new SysAdjtimex(tk);
    r2 = new Req();
    s2.handleEvent(r2);
  }

  kt = new TimekeepingThread(tk);
  kt.start();

  rd = new GpioRead(chip);
  rq = new Req();
  rd.handleEvent(rq);
  irq = new GpioIrq(chip);
  irq.start();
}
`,
}

// MemcachedCase models the slab-rebalancing race of §5.4: the
// do_slabs_reassign event handler reads slabclass state without the lock
// that do_slabs_newslab's worker threads hold, plus the stats/settings and
// stop_main_loop flag races the paper reports.
var MemcachedCase = Case{
	Name:        "memcached",
	Races:       3,
	ThreadEvent: true,
	About:       "slab reassign vs newslab (missing lock), stats flag, stop_main_loop (confirmed by developers)",
	Source: `
class SlabClass { field slabs; field list; }
class Settings { field maxbytes; field stop_main_loop; }

// Event: do_slabs_reassign — reads slabs count with NO lock.
class ReassignEvent {
  field sc;
  ReassignEvent(sc) { this.sc = sc; }
  handleEvent(ev) {
    s = this.sc;
    x = s.slabs;           // RACE 1: unlocked read vs locked write
  }
}

// Thread: do_slabs_newslab — updates slab list under the slabs lock.
class NewSlabThread {
  field sc; field lock;
  NewSlabThread(sc, l) { this.sc = sc; this.lock = l; }
  run() {
    s = this.sc;
    l = this.lock;
    sync (l) {
      s.slabs = this;      // RACE 1 counterpart
      lst = s.list;
      lst[0] = this;
    }
  }
}

// Thread: worker updating settings without synchronization.
class WorkerThread {
  field st;
  WorkerThread(st) { this.st = st; }
  run() {
    s = this.st;
    s.maxbytes = this;     // RACE 2: settings written by thread...
  }
}

// Event: main-loop event reading settings and the stop flag.
class LoopEvent {
  field st;
  LoopEvent(st) { this.st = st; }
  handleEvent(ev) {
    s = this.st;
    x = s.maxbytes;        // RACE 2 counterpart: ...read by event
    s.stop_main_loop = ev; // RACE 3: flag write vs signal thread
  }
}

// Thread: signal handler thread flipping the stop flag.
class SignalThread {
  field st;
  SignalThread(st) { this.st = st; }
  run() {
    s = this.st;
    s.stop_main_loop = this; // RACE 3 counterpart
  }
}

main {
  sc = new SlabClass();
  lk = new SlabsLock();
  st = new Settings();

  re = new ReassignEvent(sc);
  ev = new Ev();
  re.handleEvent(ev);

  ns = new NewSlabThread(sc, lk);
  ns.start();

  w = new WorkerThread(st);
  w.start();

  le = new LoopEvent(st);
  le.handleEvent(ev);

  sg = new SignalThread(st);
  sg.start();
}
`,
}

// FirefoxCase models the Firefox Focus GeckoAppShell application-context
// race (Bug-1581940): the Gecko background thread reads the static app
// context while the UI thread's onCreate handler checks and sets it.
var FirefoxCase = Case{
	Name:        "firefox",
	Races:       2,
	ThreadEvent: true,
	Android:     true,
	About:       "GeckoAppShell.getAppCtx/setAppCtx unsynchronized between UI event and Gecko thread",
	Source: `
class GeckoAppShell { static field appCtx; }

// Gecko background thread: bind() reads the app context.
class GeckoBinder {
  GeckoBinder() { }
  run() {
    c = GeckoAppShell.appCtx;    // RACE: read without synchronization
    d = this.probe();
  }
  probe() {
    e = GeckoAppShell.appCtx;    // RACE: second read site (second bug)
    return e;
  }
}

// UI thread: MainActivity.onCreate -> attachTo(context).
class CreateHandler {
  field ctx;
  CreateHandler(c) { this.ctx = c; }
  onReceive(ev) {
    a = this.ctx;
    GeckoAppShell.appCtx = a;    // RACE counterpart: unsynchronized write
  }
}

main {
  appCtx = new Context();
  g = new GeckoBinder();
  g.start();
  h = new CreateHandler(appCtx);
  ev = new Ev();
  h.onReceive(ev);
}
`,
}

// ZooKeeperCase models ZOOKEEPER-3819: DataTree.createNode adds paths to
// an ephemerals list under sync(list) while deserialize adds without the
// lock; both run on different server threads.
var ZooKeeperCase = Case{
	Name:        "zookeeper",
	Races:       1,
	ThreadEvent: true,
	About:       "DataTree ephemerals list.add with missing lock in deserialize (ZOOKEEPER-3819)",
	Source: `
class DataTree { field ephemerals; }
class PathList { field paths; }

// Create-node request: arrives as an event, adds the path under
// sync(list).
class CreateNodeRequest {
  field dt;
  CreateNodeRequest(dt) { this.dt = dt; }
  handleEvent(req) {
    t = this.dt;
    lst = t.ephemerals;
    sync (lst) {
      lst.paths = req;     // locked add
    }
  }
}

// Server thread deserializing the same session concurrently.
class DeserializeThread {
  field dt;
  DeserializeThread(dt) { this.dt = dt; }
  run() {
    t = this.dt;
    lst = t.ephemerals;
    lst.paths = this;      // RACE: missing lock
  }
}

main {
  dt = new DataTree();
  lst = new PathList();
  dt.ephemerals = lst;
  c = new CreateNodeRequest(dt);
  req = new Req();
  d = new DeserializeThread(dt);
  d.start();
  c.handleEvent(req);
}
`,
}

// HBaseCase models HBASE-24374: Encryption.getKeyProvider reads and
// populates keyProviderCache without locks from concurrent handlers.
var HBaseCase = Case{
	Name:        "hbase",
	Races:       1,
	ThreadEvent: true,
	About:       "Encryption.keyProviderCache concurrent get/put without locks (HBASE-24374)",
	Source: `
class Encryption { static field keyProviderCache; }

class RpcHandler {
  RpcHandler() { }
  handleEvent(req) {
    Encryption.keyProviderCache = req; // RACE: unlocked put
  }
}
class CompactionThread {
  CompactionThread() { }
  run() {
    c = Encryption.keyProviderCache;   // RACE counterpart: unlocked get
  }
}
main {
  cache = new Cache();
  Encryption.keyProviderCache = cache;
  h = new RpcHandler();
  req = new Req();
  h.handleEvent(req);
  t = new CompactionThread();
  t.start();
}
`,
}

// TomcatCase models the Tomcat connector-counter race.
var TomcatCase = Case{
	Name:        "tomcat",
	Races:       1,
	ThreadEvent: true,
	About:       "connector state flag read by acceptor event vs written by lifecycle thread",
	Source: `
class Connector { field state; field lock; }

class AcceptorEvent {
  field c;
  AcceptorEvent(c) { this.c = c; }
  handleEvent(ev) {
    k = this.c;
    x = k.state;          // RACE: unlocked read in the accept path
  }
}
class LifecycleThread {
  field c;
  LifecycleThread(c) { this.c = c; }
  run() {
    k = this.c;
    k.state = this;               // RACE counterpart: unlocked write
  }
}
main {
  c = new Connector();
  l = new StateLock();
  c.lock = l;
  a = new AcceptorEvent(c);
  ev = new Ev();
  a.handleEvent(ev);
  t = new LifecycleThread(c);
  t.start();
}
`,
}
