package cases

// Known false-positive modes. The paper is explicit that O2 is not free of
// false positives: on the Linux kernel "a majority of them are due to
// mis-recognition of spinlocks (such as arch_local_irq_save.38) or
// infeasible branch conditions which O2 does not handle", and §5.2 notes
// "the majority of false positives reported by O2 are due to infeasible
// paths, which is inherent to static analysis tools". These cases pin the
// reproduction to the same behaviour: each program is race-free at run
// time, yet O2 reports the listed number of races. Tests assert the counts
// so a change in either direction (a fix or a regression) is noticed.

// FPCase is a documented false-positive scenario.
type FPCase struct {
	Name string
	// Races is the number of false races O2 reports.
	Races  int
	About  string
	Source string
}

// FalsePositives lists the documented false-positive scenarios.
var FalsePositives = []FPCase{InfeasiblePathFP, UnknownLockFP, FlagProtocolFP}

// InfeasiblePathFP: the two writes sit in branches whose conditions are
// mutually exclusive at run time (each worker tests its own id), but the
// analysis ignores branch conditions and keeps both paths.
var InfeasiblePathFP = FPCase{
	Name: "infeasible-path",
	// Two reported pairs: write-vs-write and write-vs-read, because both
	// branches of both workers are retained.
	Races: 2,
	About: "mutually exclusive branch conditions are not tracked (§5.2)",
	Source: `
class S { field slot; }
class W {
  field s; field id;
  W(s, id) { this.s = s; this.id = id; }
  run() {
    x = this.s;
    // At run time exactly one worker takes the write branch (the ids
    // differ); statically both branches of both workers are kept.
    if (this.id == 0) {
      x.slot = this;
    } else {
      y = x.slot;
    }
  }
}
main {
  s = new S();
  id0 = new Zero();
  id1 = new One();
  w1 = new W(s, id0);
  w2 = new W(s, id1);
  w1.start();
  w2.start();
}
`,
}

// UnknownLockFP: the protection comes through a lock API the configuration
// does not know (the Linux arch_local_irq_save case). The calls lower to
// indirect calls with no targets, so the accesses look unprotected.
var UnknownLockFP = FPCase{
	Name:  "unknown-lock",
	Races: 1,
	About: "mis-recognized lock primitives (the paper's arch_local_irq_save.38)",
	Source: `
class S { field v; field mu; }
func worker(arg) {
  m = arg.mu;
  arch_local_irq_save(m);     // unknown primitive: not in LockFuncs
  arg.v = arg;
  arch_local_irq_restore(m);
}
main {
  s = new S();
  mu = new Mutex();
  s.mu = mu;
  fp = &worker;
  t1 = pthread_create(fp, s);
  t2 = pthread_create(fp, s);
}
`,
}

// FlagProtocolFP: the threads coordinate through a hand-rolled flag
// protocol (busy-wait on a plain field) that the static happens-before
// graph has no edge for — the Firefox Focus case in reverse: there the
// creation order kept the race from happening, here a flag does.
var FlagProtocolFP = FPCase{
	Name:  "flag-protocol",
	Races: 2,
	About: "ad-hoc flag synchronization creates no static HB edge",
	Source: `
class S { field data; field ready; }
class Producer {
  field s;
  Producer(s) { this.s = s; }
  run() {
    x = this.s;
    x.data = this;        // happens first at run time...
    x.ready = this;       // ...then the flag is set
  }
}
class Consumer {
  field s;
  Consumer(s) { this.s = s; }
  run() {
    x = this.s;
    while (r == null) {
      r = x.ready;        // busy-wait on the flag
    }
    d = x.data;           // only read after ready is set
  }
}
main {
  s = new S();
  p = new Producer(s);
  c = new Consumer(s);
  p.start();
  c.start();
}
`,
}
