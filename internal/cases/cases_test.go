package cases

import (
	"testing"

	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/osa"
	"o2/internal/pta"
	"o2/internal/race"
	"o2/internal/shb"
)

func run(t *testing.T, c Case, policy pta.Policy) *race.Report {
	t.Helper()
	entries := ir.DefaultEntryConfig()
	prog, err := lang.Compile(c.Name+".mini", c.Source, entries)
	if err != nil {
		t.Fatalf("%s: compile: %v", c.Name, err)
	}
	a := pta.New(prog, pta.Config{Policy: policy, Entries: entries})
	if err := a.Solve(); err != nil {
		t.Fatalf("%s: solve: %v", c.Name, err)
	}
	sharing := osa.Analyze(a)
	g := shb.Build(a, shb.Config{AndroidEvents: c.Android})
	return race.Detect(a, sharing, g, race.O2Options())
}

// TestTable10Counts verifies that O2 reports exactly the confirmed race
// count of the paper's Table 10 on each case-study model.
func TestTable10Counts(t *testing.T) {
	for _, c := range Table10 {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			rep := run(t, c, pta.Policy{Kind: pta.KOrigin, K: 1})
			if len(rep.Races) != c.Races {
				for _, r := range rep.Races {
					t.Logf("%s", r.String())
				}
				t.Fatalf("%s: want %d races, got %d", c.Name, c.Races, len(rep.Races))
			}
		})
	}
}

// TestTable10ThreadEventInteraction verifies the paper's central claim for
// §5.4: the marked races arise from thread×event interaction, so at least
// one reported race in those cases spans a thread origin and an event
// origin (or a replicated event pair standing for concurrent calls).
func TestTable10ThreadEventInteraction(t *testing.T) {
	entries := ir.DefaultEntryConfig()
	for _, c := range Table10 {
		if !c.ThreadEvent {
			continue
		}
		c := c
		t.Run(c.Name, func(t *testing.T) {
			prog, err := lang.Compile(c.Name+".mini", c.Source, entries)
			if err != nil {
				t.Fatal(err)
			}
			a := pta.New(prog, pta.Config{Policy: pta.Policy{Kind: pta.KOrigin, K: 1}, Entries: entries})
			if err := a.Solve(); err != nil {
				t.Fatal(err)
			}
			sharing := osa.Analyze(a)
			g := shb.Build(a, shb.Config{AndroidEvents: c.Android})
			rep := race.Detect(a, sharing, g, race.O2Options())
			cross := false
			for _, r := range rep.Races {
				ka := a.Origins.Get(r.A.Origin).Kind
				kb := a.Origins.Get(r.B.Origin).Kind
				if ka != kb {
					cross = true
				}
			}
			if !cross {
				t.Errorf("%s: expected at least one thread-vs-event race", c.Name)
			}
		})
	}
}

// TestFalsePositiveModes pins the documented false-positive behaviour
// (§5.2/§5.4): these programs are race-free at run time, yet the analysis
// reports the listed counts. A change in either direction should be
// deliberate.
func TestFalsePositiveModes(t *testing.T) {
	for _, c := range FalsePositives {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			rep := runSrc(t, c.Name, c.Source, pta.Policy{Kind: pta.KOrigin, K: 1}, false)
			if len(rep.Races) != c.Races {
				for _, r := range rep.Races {
					t.Logf("%s", r.String())
				}
				t.Fatalf("%s: want %d documented false positives, got %d", c.Name, c.Races, len(rep.Races))
			}
		})
	}
}

// The unknown-lock false positive disappears once the primitive is
// configured — the paper's "customized locks through configurations".
func TestUnknownLockFPFixedByConfiguration(t *testing.T) {
	entries := ir.DefaultEntryConfig()
	entries.LockFuncs = append(entries.LockFuncs, "arch_local_irq_save")
	entries.UnlockFuncs = append(entries.UnlockFuncs, "arch_local_irq_restore")
	prog, err := lang.Compile("t.mini", UnknownLockFP.Source, entries)
	if err != nil {
		t.Fatal(err)
	}
	a := pta.New(prog, pta.Config{Policy: pta.Policy{Kind: pta.KOrigin, K: 1}, Entries: entries})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	sharing := osa.Analyze(a)
	g := shb.Build(a, shb.Config{})
	rep := race.Detect(a, sharing, g, race.O2Options())
	if len(rep.Races) != 0 {
		t.Fatalf("configuring the primitive should remove the false positive: %d races", len(rep.Races))
	}
}

func runSrc(t *testing.T, name, src string, policy pta.Policy, android bool) *race.Report {
	t.Helper()
	entries := ir.DefaultEntryConfig()
	prog, err := lang.Compile(name+".mini", src, entries)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	a := pta.New(prog, pta.Config{Policy: policy, Entries: entries})
	if err := a.Solve(); err != nil {
		t.Fatalf("%s: solve: %v", name, err)
	}
	sharing := osa.Analyze(a)
	g := shb.Build(a, shb.Config{AndroidEvents: android})
	return race.Detect(a, sharing, g, race.O2Options())
}

// The case-study races are real: imprecise baselines must also find them
// (possibly plus false positives), never fewer.
func TestTable10BaselinesFindAtLeastAsMany(t *testing.T) {
	for _, c := range Table10 {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for _, pol := range []pta.Policy{
				{Kind: pta.Insensitive},
				{Kind: pta.KCFA, K: 1},
				{Kind: pta.KObj, K: 1},
			} {
				rep := run(t, c, pol)
				if len(rep.Races) < c.Races {
					t.Errorf("%s under %s: %d races, want >= %d",
						c.Name, pol.Name(), len(rep.Races), c.Races)
				}
			}
		})
	}
}
