package o2

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"o2/internal/ir"
	"o2/internal/obs"
	"o2/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the RunStats golden file")

// TestRunStatsGolden pins the RunStats JSON schema: field names, map keys,
// the span-tree shape, and zero-value omission. It analyzes a fixed
// workload at Workers=1 (so every counter, including the cache hit/miss
// splits, is reproducible) and compares the report's deterministic
// projection byte-for-byte against testdata/runstats_golden.json.
//
// A deliberate schema change (renamed counter, new phase, bumped
// SchemaVersion) regenerates the golden with:
//
//	go test -run RunStatsGolden -args -update
func TestRunStatsGolden(t *testing.T) {
	rs := analyzeAvrora(t, obs.New())
	got, err := rs.Deterministic().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "runstats_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with `go test -run RunStatsGolden -args -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("RunStats schema drifted from %s\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestRunStatsShape checks the schema properties the golden cannot express
// on its own: the version stamp, the exact top-level key set, and that
// zero-valued counters are omitted rather than serialized.
func TestRunStatsShape(t *testing.T) {
	rs := analyzeAvrora(t, obs.New())
	if rs.Schema != obs.SchemaVersion {
		t.Errorf("schema = %d, want %d", rs.Schema, obs.SchemaVersion)
	}
	data, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "phases", "counters", "gauges", "rates", "introspection"} {
		if _, ok := top[key]; !ok {
			t.Errorf("report missing top-level key %q", key)
		}
		delete(top, key)
	}
	delete(top, "histograms") // optional: present only when histograms recorded
	for key := range top {
		t.Errorf("report has unexpected top-level key %q", key)
	}
	for name, v := range rs.Counters {
		if v == 0 {
			t.Errorf("zero-valued counter %q serialized (zero values must be omitted)", name)
		}
	}
	for name, v := range rs.Gauges {
		if v == 0 {
			t.Errorf("zero-valued gauge %q serialized (zero values must be omitted)", name)
		}
	}
	if len(rs.Phases) != 1 || rs.Phases[0].Name != "analyze" {
		t.Fatalf("root span tree = %+v, want single root %q", rs.Phases, "analyze")
	}
	var names []string
	for _, c := range rs.Phases[0].Children {
		names = append(names, c.Name)
	}
	want := []string{"pta", "osa", "shb", "detect"}
	if len(names) != len(want) {
		t.Fatalf("pipeline phases = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("pipeline phases = %v, want %v", names, want)
		}
	}
}

func analyzeAvrora(t *testing.T, reg *obs.Registry) *obs.RunStats {
	t.Helper()
	p, ok := workload.ByName("avrora")
	if !ok {
		t.Fatal("avrora preset missing")
	}
	prog := workload.Build(p, ir.DefaultEntryConfig())
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Obs = reg
	res, err := AnalyzeProgram(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RunStats == nil {
		t.Fatal("RunStats nil with Obs configured")
	}
	return res.RunStats
}
