package o2

import (
	"context"
	"fmt"

	"o2/internal/lang"
)

// Source is one named minilang input: the typed unit of work every
// frontend — `o2 analyze`, the batch scheduler, the HTTP service and the
// streaming corpus pipeline — consumes. Name doubles as the position
// filename in reports; Bytes is the program text.
type Source struct {
	// Name identifies the source (a path, zip entry or manifest name) and
	// is the filename reported in race positions.
	Name string
	// Bytes is the minilang source text.
	Bytes []byte
}

// String returns the source name.
func (s Source) String() string { return s.Name }

// SourceIter is a pull iterator over a stream of sources. Next returns
// the next source, ok=false at end of stream, or an error (which
// terminates the stream). Implementations need not be safe for concurrent
// use: AnalyzeCorpus pulls from a single dispatcher goroutine.
type SourceIter interface {
	Next() (src Source, ok bool, err error)
}

// sliceIter iterates over an in-memory slice of sources.
type sliceIter struct {
	srcs []Source
	i    int
}

func (it *sliceIter) Next() (Source, bool, error) {
	if it.i >= len(it.srcs) {
		return Source{}, false, nil
	}
	s := it.srcs[it.i]
	it.i++
	return s, true, nil
}

// SliceSources returns an iterator over an in-memory slice — the
// convenience adapter for small corpora and tests. Large corpora should
// stream from internal/corpus discovery instead of materializing.
func SliceSources(srcs []Source) SourceIter { return &sliceIter{srcs: srcs} }

// AnalyzeSources compiles one program from the given sources (every
// source is one file of the same program) and analyzes it under ctx; it
// is the canonical multi-file entry point that AnalyzeSourceCtx, the
// batch scheduler and the corpus pipeline all route through. Compile
// failures are tagged ErrCompile so callers can classify them without
// string matching; duplicate source names are a compile failure.
func AnalyzeSources(ctx context.Context, sources []Source, cfg Config) (*Result, error) {
	cfg = cfg.normalize()
	files := make(map[string]string, len(sources))
	for _, s := range sources {
		if _, dup := files[s.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate source %q", ErrCompile, s.Name)
		}
		files[s.Name] = string(s.Bytes)
	}
	prog, err := lang.CompileFiles(files, cfg.Entries)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCompile, err)
	}
	return Analyze(ctx, prog, cfg)
}
