// Memcached reproduces the paper's Memcached case study (§5.4): the
// slab-rebalancing race between the do_slabs_reassign event handler
// (reads slabclass state without the slabs lock) and do_slabs_newslab
// worker threads (write it with the lock), plus the settings and
// stop_main_loop flag races. It then shows why unifying threads and
// events matters: restricting analysis to threads only (dropping event
// entry points) misses every one of these races.
//
//	go run ./examples/memcached
package main

import (
	"fmt"
	"log"

	"o2"
	"o2/internal/cases"
	"o2/internal/ir"
)

func main() {
	c := cases.MemcachedCase
	fmt.Printf("Memcached case study: %s\n\n", c.About)

	res, err := o2.AnalyzeSource("memcached.mini", c.Source, o2.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("O2 (threads ∪ events): %d races (paper: %d confirmed)\n", len(res.Races()), c.Races)
	for _, r := range res.Races() {
		fmt.Printf("  %s: %s <-> %s\n", r.Key, r.A, r.B)
	}

	// Ablation: events only or threads only (the paper's §2 point — these
	// races need the union).
	threadsOnly := o2.DefaultConfig()
	threadsOnly.Entries = ir.EntryConfig{
		ThreadEntries: []string{"run", "call"},
		StartMethods:  []string{"start"},
		JoinMethods:   []string{"join"},
		// no event entries: handleEvent is just a method call on main
	}
	resT, err := o2.AnalyzeSource("memcached.mini", c.Source, threadsOnly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthreads-only analysis: %d races", len(resT.Races()))
	fmt.Println(" — the event side runs on main, so the event-vs-thread pairs survive")
	fmt.Println("  only if main itself conflicts; the handler-specific races degrade:")
	for _, r := range resT.Races() {
		fmt.Printf("  %s: %s <-> %s\n", r.Key, r.A, r.B)
	}

	eventsOnly := o2.DefaultConfig()
	eventsOnly.Entries = ir.EntryConfig{
		ThreadEntries: []string{},
		EventEntries:  []string{"handleEvent", "onReceive"},
		JoinMethods:   []string{"join"},
	}
	resE, err := o2.AnalyzeSource("memcached.mini", c.Source, eventsOnly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevents-only analysis: %d races — thread entry points ignored, so the\n", len(resE.Races()))
	fmt.Println("  locked writer side disappears entirely.")
}
