// Kernelmodel reproduces the paper's Linux-kernel configuration (§5.4) on
// a small scale: system calls are event-handler origins whose handlers are
// allocated in a loop — modeling two concurrent invocations of the same
// call — alongside a kernel thread and an interrupt handler. The vsyscall
// timezone race (concurrent writes to vdata[CS_HRES_COARSE]) is the
// headline bug O2 found in the kernel.
//
//	go run ./examples/kernelmodel
package main

import (
	"fmt"
	"log"

	"o2"
	"o2/internal/cases"
	"o2/internal/pta"
)

func main() {
	res, err := o2.AnalyzeSource("linux.mini", cases.LinuxCase.Source, o2.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	threads, events := 0, 0
	for _, org := range res.Analysis.Origins.Origins {
		switch org.Kind {
		case pta.KindThread:
			threads++
		case pta.KindEvent:
			events++
		}
	}
	fmt.Println("Linux kernel model (§5.4)")
	fmt.Printf("  origins: %d total (%d syscall/driver events incl. concurrent twins, %d kthreads/irqs)\n",
		res.Analysis.Origins.Len(), events, threads)
	fmt.Printf("  abstract objects: %d, origin-shared locations: %d\n",
		res.Analysis.NumObjs(), len(res.Sharing.Shared))
	fmt.Printf("  races found: %d (paper: %d confirmed)\n\n", len(res.Races()), cases.LinuxCase.Races)

	for i, r := range res.Races() {
		fmt.Printf("race #%d on %s\n  %s\n  %s\n", i+1, r.Key, r.A, r.B)
	}

	// The headline bug: the vdata array element written by two concurrent
	// settimeofday invocations.
	for _, r := range res.Races() {
		if r.Key.Field == "*" {
			fmt.Println("\n^ the vsyscall timezone race: both sides are concurrent instances")
			fmt.Println("  of __x64_sys_settimeofday writing vdata[CS_HRES_COARSE].")
		}
	}
}
