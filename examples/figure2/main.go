// Figure2 reproduces the paper's running examples: Figure 2's
// origin-sharing output (which objects are shared by which origins, and
// which stay origin-local) and Figure 3's context switch at origin
// allocations. It runs both OPA and the 0-ctx baseline to show the
// precision difference that motivates origins.
//
//	go run ./examples/figure2
package main

import (
	"fmt"
	"log"
	"strings"

	"o2"
	"o2/internal/cases"
)

func main() {
	fmt.Println("=== Figure 2: origin-sharing analysis output ===")
	run("figure2.mini", cases.Figure2)

	fmt.Println("=== Figure 3: context switch at origin allocations ===")
	run("figure3.mini", cases.Figure3)
}

func run(name, src string) {
	for _, cfg := range []struct {
		label string
		conf  o2.Config
	}{
		{"O2 (1-origin OPA)", o2.DefaultConfig()},
		{"0-ctx baseline", func() o2.Config { c := o2.DefaultConfig(); c.Policy = o2.Insensitive; return c }()},
	} {
		res, err := o2.AnalyzeSource(name, src, cfg.conf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", cfg.label)
		fmt.Printf("origins: %d, abstract objects: %d\n",
			res.Analysis.Origins.Len(), res.Analysis.NumObjs())

		fmt.Println("origin-sharing (the paper's Figure 2(d) report):")
		for _, key := range res.Sharing.Shared {
			var who []string
			for _, org := range res.Sharing.OriginsOf(key) {
				who = append(who, res.Analysis.Origins.Get(org).String())
			}
			fmt.Printf("  %-12s SHARED by %s\n", key, strings.Join(who, ", "))
		}

		fmt.Printf("races: %d\n", len(res.Races()))
		for _, r := range res.Races() {
			fmt.Printf("  %s\n", strings.ReplaceAll(r.String(), "\n", "\n  "))
		}
		fmt.Println()
	}
}
