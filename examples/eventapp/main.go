// Eventapp demonstrates the thread×event unification at the heart of the
// paper on an Android-style application: UI event handlers and a
// background sync thread share an app state object. Run once in plain
// mode (handlers may interleave freely) and once in Android mode (§4.2:
// handlers are serialized by the main thread's event loop) to see
// event–event false positives disappear while the genuine thread–event
// race remains.
//
//	go run ./examples/eventapp
package main

import (
	"fmt"
	"log"

	"o2"
)

const app = `
class AppState { field session; field badge; field draft; }

// UI callback: tapping the compose button edits the draft.
class ComposeHandler {
  field st;
  ComposeHandler(s) { this.st = s; }
  onReceive(ev) {
    a = this.st;
    a.draft = ev;          // event-event conflict with SendHandler
    a.badge = ev;          // conflicts with the sync thread
  }
}

// UI callback: tapping send clears the draft.
class SendHandler {
  field st;
  SendHandler(s) { this.st = s; }
  onReceive(ev) {
    a = this.st;
    a.draft = null;        // event-event conflict with ComposeHandler
  }
}

// Background sync thread: updates the badge concurrently with the UI.
class SyncThread {
  field st;
  SyncThread(s) { this.st = s; }
  run() {
    a = this.st;
    a.badge = this;        // RACE with ComposeHandler (thread vs event)
    a.session = this;      // thread-only: no race
  }
}

main {
  st = new AppState();
  compose = new ComposeHandler(st);
  send = new SendHandler(st);
  bg = new SyncThread(st);
  bg.start();
  ev = new Event();
  compose.onReceive(ev);
  send.onReceive(ev);
}
`

func main() {
	for _, mode := range []struct {
		label   string
		android bool
	}{
		{"plain (handlers unordered)", false},
		{"Android mode (handlers serialized, §4.2)", true},
	} {
		cfg := o2.DefaultConfig()
		cfg.Android = mode.android
		res, err := o2.AnalyzeSource("eventapp.mini", app, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", mode.label)
		fmt.Printf("races: %d\n", len(res.Races()))
		for _, r := range res.Races() {
			ka := res.Analysis.Origins.Get(r.A.Origin).Kind
			kb := res.Analysis.Origins.Get(r.B.Origin).Kind
			fmt.Printf("  [%s vs %s] %s @ %s <-> %s\n", ka, kb, r.Key, r.A.Pos, r.B.Pos)
		}
		fmt.Println()
	}
	fmt.Println("Android mode suppressed the event-event pair (both handlers run on the")
	fmt.Println("main thread) while keeping the thread-vs-event race on badge.")
}
