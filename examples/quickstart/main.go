// Quickstart: analyze a small multithreaded program for data races with
// O2's default configuration (1-origin OPA, all detector optimizations).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"o2"
)

const program = `
// A counter shared by two worker threads. The increment in run() is not
// synchronized, so the two workers race; the reset in main happens after
// both joins, so it does not.
class Counter { field value; }

class Worker {
  field c;
  Worker(c) { this.c = c; }
  run() {
    x = this.c;
    x.value = this;        // RACE: unsynchronized write
  }
}

class SafeWorker {
  field c; field lock;
  SafeWorker(c, l) { this.c = c; this.lock = l; }
  run() {
    x = this.c;
    l = this.lock;
    sync (l) { x.guarded = this; }   // protected: no race
  }
}

main {
  c = new Counter();
  l = new Lock();
  w1 = new Worker(c);
  w2 = new Worker(c);
  s1 = new SafeWorker(c, l);
  s2 = new SafeWorker(c, l);
  w1.start();
  w2.start();
  s1.start();
  s2.start();
  w1.join();
  w2.join();
  s1.join();
  s2.join();
  c.value = null;          // after all joins: ordered, no race
}
`

func main() {
	res, err := o2.AnalyzeSource("quickstart.mini", program, o2.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("origins discovered: %d\n", res.Analysis.Origins.Len())
	for _, org := range res.Analysis.Origins.Origins {
		fmt.Printf("  %s\n", org)
	}

	fmt.Printf("\norigin-shared locations: %d\n", len(res.Sharing.Shared))
	fmt.Printf("races: %d\n\n", len(res.Races()))
	for _, r := range res.Races() {
		fmt.Println(r.String())
		fmt.Println()
	}
	fmt.Printf("analysis took %v (pta %v, osa %v, shb %v, detect %v)\n",
		res.TotalTime(), res.PTATime, res.OSATime, res.SHBTime, res.DetectTime)
}
