// Cserver models a C event-driven server (the Memcached/Redis shape of
// the paper's Table 6) using the C-side language features: function
// pointers, a dispatch table, pthread_create/pthread_join with attribute
// pointers, and libevent-style handler registration. O2's pointer analysis
// resolves the indirect call targets — the reasoning the paper contrasts
// with RacerD's syntactic approach.
//
//	go run ./examples/cserver
package main

import (
	"fmt"
	"log"

	"o2"
)

const server = `
class Server { field conns; field stats; volatile field running; }
class Stats  { field gets, sets, evictions; }

// Command handlers, dispatched through a function-pointer table.
func cmd_get(srv) {
  st = srv.stats;
  st.gets = srv;            // RACE: event handler vs maintenance thread
}
func cmd_set(srv) {
  st = srv.stats;
  st.sets = srv;            // RACE
}

// Connection handler: registered with the event loop, dispatches commands.
func on_readable(srv) {
  t = srv.conns;            // the dispatch table rides on the server
  h = t[0];
  h(srv);
}

// Background maintenance thread (LRU crawler).
func crawler(srv) {
  st = srv.stats;
  x = st.gets;              // RACE counterpart (read)
  y = st.sets;              // RACE counterpart (read)
  st.evictions = srv;       // thread-only: no race
  srv.running = srv;        // volatile flag: no race
}

main {
  srv = new Server();
  st = new Stats();
  srv.stats = st;

  tbl = new Table();
  g = &cmd_get;
  s = &cmd_set;
  tbl[0] = g;
  tbl[1] = s;
  srv.conns = tbl;

  h = &on_readable;
  event_register(h, srv);   // the event loop

  c = &crawler;
  t1 = pthread_create(c, srv);

  v = srv.running;          // main reads the volatile flag
  pthread_join(t1);
  st.evictions = null;      // after join: ordered with the crawler
}
`

func main() {
	res, err := o2.AnalyzeSource("cserver.mini", server, o2.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("C-style server model (function pointers + pthreads + event loop)")
	fmt.Println("origins:")
	for _, org := range res.Analysis.Origins.Origins {
		fmt.Printf("  %s attrs=%s\n", org, res.Analysis.OriginAttrs(org.ID))
	}

	fmt.Printf("\nraces: %d\n", len(res.Races()))
	for _, r := range res.Races() {
		ka := res.Analysis.Origins.Get(r.A.Origin).Kind
		kb := res.Analysis.Origins.Get(r.B.Origin).Kind
		fmt.Printf("  [%s vs %s] %s: %s <-> %s\n", ka, kb, r.Key, r.A.Pos, r.B.Pos)
	}
	fmt.Println("\nNote: the racing command handlers are reached only through the")
	fmt.Println("function-pointer table — a syntactic tool cannot resolve them.")
}
