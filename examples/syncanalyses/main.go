// Syncanalyses demonstrates the analyses built on top of OPA/OSA beyond
// race detection (§3 of the paper names deadlock and over-synchronization
// as clients), plus the synchronization extensions from the paper's future
// work (§4: atomics and condition variables):
//
//   - an AB/BA lock-order cycle between two workers (potential deadlock),
//     discovered through pointer aliasing of the lock objects;
//
//   - a lock region guarding only origin-local data (unnecessary
//     synchronization);
//
//   - a volatile flag whose concurrent accesses are synchronization, not
//     races;
//
//   - a producer/consumer pair ordered by a notify→wait happens-before
//     edge.
//
//     go run ./examples/syncanalyses
package main

import (
	"fmt"
	"log"

	"o2"
)

const program = `
class Shared { field items; volatile field stop; }
class Scratch { field tmp; }

class Producer {
  field s; field lockA; field lockB; field cond;
  Producer(s, a, b, c) { this.s = s; this.lockA = a; this.lockB = b; this.cond = c; }
  run() {
    x = this.s;
    a = this.lockA;
    b = this.lockB;
    sync (a) { sync (b) { x.items = this; } }   // order: A then B
    x.stop = this;                              // volatile: no race
    c = this.cond;
    c.notify();                                 // publishes items
    scratch = new Scratch();
    sync (a) { scratch.tmp = this; }            // guards only local data
  }
}

class Consumer {
  field s; field lockA; field lockB; field cond;
  Consumer(s, a, b, c) { this.s = s; this.lockA = a; this.lockB = b; this.cond = c; }
  run() {
    x = this.s;
    a = this.lockA;
    b = this.lockB;
    c = this.cond;
    c.wait();
    r = x.items;                                // ordered after the notify
    v = x.stop;                                 // volatile read
    sync (b) { sync (a) { x.items = this; } }   // order: B then A — inversion!
  }
}

main {
  s = new Shared();
  a = new LockA();
  b = new LockB();
  c = new Cond();
  p = new Producer(s, a, b, c);
  q = new Consumer(s, a, b, c);
  p.start();
  q.start();
}
`

func main() {
	res, err := o2.AnalyzeSource("syncanalyses.mini", program, o2.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("data races: %d\n", len(res.Races()))
	for _, r := range res.Races() {
		fmt.Printf("  %s @ %s <-> %s\n", r.Key, r.A.Pos, r.B.Pos)
	}
	fmt.Println("  (items is lock-protected and notify-ordered; stop is volatile)")

	dl := res.Deadlocks()
	fmt.Printf("\ndeadlock analysis: %d lock-order edges, %d warnings\n", dl.Edges, len(dl.Warnings))
	for _, w := range dl.Warnings {
		fmt.Println(w.String())
	}

	ov := res.OverSync()
	fmt.Printf("\nover-synchronization: %d regions, %d useful, %d unnecessary\n",
		ov.Regions, ov.UsefulRegions, len(ov.Warnings))
	for _, w := range ov.Warnings {
		fmt.Println("  " + w.String())
	}
}
