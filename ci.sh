#!/bin/sh
# CI pipeline for environments without make: vet, build, full test suite
# (which replays the checked-in fuzz corpus), the race-detector pass over
# the packages shared across detection workers, per-package coverage
# floors, and the bench gate (deterministic pipeline stats vs the
# checked-in golden; see internal/bench/gate.go).
#
#   ./ci.sh                 run everything
#   ./ci.sh bench-gate      run only the bench gate (emits BENCH_ci.json)
#   ./ci.sh bench-variance  run only the timing-noise gate (emits VARIANCE_ci.json)
#   ./ci.sh cover           run only the coverage floors
#   ./ci.sh eval            run only the precision gate + metamorphic smoke
set -eux

bench_gate() {
	go run ./cmd/o2bench -table gate \
		-stats-json BENCH_ci.json \
		-golden internal/bench/testdata/bench_gate_golden.json
}

# Timing-noise gate: rerun the gate presets and fail when any >=1ms
# phase's wall time varies by more than 15% (stddev/mean) — noisy
# timings mean the recorded perf numbers cannot be trended. Runs as its
# own CI job so bench-affecting noise is attributed separately from
# correctness failures.
bench_variance() {
	go run ./cmd/o2bench -table variance -stats-json VARIANCE_ci.json
}

# Precision gate over the ground-truth oracle corpus (internal/truth):
# recall must be 1.0 and precision at or above the checked-in baseline,
# then the metamorphic suite must leave every canonical race-report set
# invariant (all source transforms x the corpus, all IR transforms x
# three workload presets), and the same recall-1.0 gate must hold for
# the corpus scored through warm incremental summary replay. See
# `o2 eval -h`.
eval_gate() {
	go run ./cmd/o2 eval -metamorphic
	go run ./cmd/o2 eval -incremental
}

# End-to-end smoke of the batch-analysis service: build the CLI, start
# `o2 serve` on an ephemeral port, wait for /healthz via the pure-Go
# `o2 submit` client (no curl dependency), submit a racy and a clean
# program asserting exit codes 1 and 0 and JSON race output, then stop
# the server with SIGTERM and require a clean graceful-drain exit.
smoke() {
	dir=$(mktemp -d)
	go build -o "$dir/o2" ./cmd/o2
	"$dir/o2" serve -addr 127.0.0.1:0 -addr-file "$dir/addr" 2>"$dir/serve.log" &
	pid=$!
	trap 'kill "$pid" 2>/dev/null || true; rm -rf "$dir"' EXIT
	"$dir/o2" submit -addr "@$dir/addr" -retry 10 -healthz

	rc=0
	"$dir/o2" submit -addr "@$dir/addr" testdata/smoke_racy.mini >"$dir/racy.json" || rc=$?
	[ "$rc" -eq 1 ] || { echo "smoke: racy exit=$rc, want 1" >&2; exit 1; }
	grep -q '"races"' "$dir/racy.json" || { echo "smoke: no races array in response" >&2; exit 1; }
	grep -q '"race_count": 1' "$dir/racy.json" || { echo "smoke: wrong race count" >&2; exit 1; }

	"$dir/o2" submit -addr "@$dir/addr" testdata/smoke_clean.mini >"$dir/clean.json"
	grep -q '"race_count": 0' "$dir/clean.json" || { echo "smoke: clean program reported races" >&2; exit 1; }

	# The Prometheus exposition must be non-empty and reflect the traffic
	# above (o2 submit -metrics fails on empty/TYPE-less output itself).
	"$dir/o2" submit -addr "@$dir/addr" -metrics >"$dir/metrics.txt"
	grep -q '^o2_sched_completed [1-9]' "$dir/metrics.txt" || { echo "smoke: /metrics shows no completed jobs" >&2; exit 1; }
	grep -q '^# TYPE o2_server_request_seconds histogram' "$dir/metrics.txt" || { echo "smoke: /metrics missing latency histogram" >&2; exit 1; }

	kill -TERM "$pid"
	wait "$pid" || { echo "smoke: serve did not drain cleanly" >&2; cat "$dir/serve.log" >&2; exit 1; }

	# Corpus streaming end to end: zip the smoke programs, pipe the
	# archive through `o2 batch -stream`, and require input-ordered
	# NDJSON — one well-formed record per program with the right exit
	# class — and the worst-per-program exit code (1: races found).
	(cd testdata && python3 -c "
import zipfile
z = zipfile.ZipFile('$dir/corpus.zip', 'w')
z.write('smoke_clean.mini')
z.write('smoke_racy.mini')
z.close()
")
	rc=0
	"$dir/o2" batch -stream "$dir/corpus.zip" >"$dir/stream.ndjson" 2>"$dir/stream.log" || rc=$?
	[ "$rc" -eq 1 ] || { echo "smoke: batch -stream exit=$rc, want 1" >&2; exit 1; }
	[ "$(wc -l <"$dir/stream.ndjson")" -eq 2 ] || { echo "smoke: want 2 NDJSON records" >&2; cat "$dir/stream.ndjson" >&2; exit 1; }
	while IFS= read -r line; do
		printf '%s\n' "$line" | python3 -m json.tool >/dev/null || { echo "smoke: bad NDJSON record" >&2; exit 1; }
	done <"$dir/stream.ndjson"
	head -1 "$dir/stream.ndjson" | grep -q '"exit_class":"ok"' || { echo "smoke: first record should be the clean program" >&2; exit 1; }
	tail -1 "$dir/stream.ndjson" | grep -q '"exit_class":"races"' || { echo "smoke: second record should carry races" >&2; exit 1; }

	trap - EXIT
	rm -rf "$dir"
	echo "smoke: ok"
}

# Telemetry artifacts end to end: run the CLI with -explain-json and
# -trace-out on the smoke example and validate both artifacts are
# well-formed JSON (python3 json.tool; schema details are covered by the
# Go tests in internal/obs and internal/race).
telemetry() {
	dir=$(mktemp -d)
	trap 'rm -rf "$dir"' EXIT
	rc=0
	go run ./cmd/o2 analyze -explain-json -trace-out "$dir/trace.json" \
		testdata/smoke_racy.mini >"$dir/witness.json" || rc=$?
	[ "$rc" -eq 1 ] || { echo "telemetry: racy exit=$rc, want 1" >&2; exit 1; }
	python3 -m json.tool "$dir/witness.json" >/dev/null || { echo "telemetry: witness JSON invalid" >&2; exit 1; }
	python3 -m json.tool "$dir/trace.json" >/dev/null || { echo "telemetry: trace JSON invalid" >&2; exit 1; }
	grep -q '"schema"' "$dir/witness.json" || { echo "telemetry: witness missing schema stamp" >&2; exit 1; }
	grep -q '"ph"' "$dir/trace.json" || { echo "telemetry: trace has no events" >&2; exit 1; }

	# Progress-event stream: every interleaved line must be well-formed
	# JSON and at least one must be a schema-tagged progress record.
	rc=0
	go run ./cmd/o2 batch -stream -progress-interval 1ns \
		testdata/smoke_racy.mini testdata/smoke_clean.mini \
		>"$dir/progress.ndjson" 2>/dev/null || rc=$?
	[ "$rc" -eq 1 ] || { echo "telemetry: progress stream exit=$rc, want 1" >&2; exit 1; }
	while IFS= read -r line; do
		printf '%s\n' "$line" | python3 -m json.tool >/dev/null || { echo "telemetry: bad progress-stream record" >&2; exit 1; }
	done <"$dir/progress.ndjson"
	grep -q '"progress":true' "$dir/progress.ndjson" || { echo "telemetry: stream has no progress records" >&2; exit 1; }

	# Introspection report on the zookeeper preset: well-formed, carries
	# the per-origin top-K, and its deterministic projection (run-dependent
	# wall/byte/cache fields stripped) is byte-identical across two runs.
	rc=0
	go run ./cmd/o2 analyze -preset zookeeper -stats-json "$dir/zk1.json" >/dev/null || rc=$?
	[ "$rc" -eq 1 ] || { echo "telemetry: zookeeper exit=$rc, want 1" >&2; exit 1; }
	go run ./cmd/o2 analyze -preset zookeeper -stats-json "$dir/zk2.json" >/dev/null || true
	python3 -m json.tool "$dir/zk1.json" >/dev/null || { echo "telemetry: stats JSON invalid" >&2; exit 1; }
	grep -q '"introspection"' "$dir/zk1.json" || { echo "telemetry: stats missing introspection section" >&2; exit 1; }
	grep -q '"top_k"' "$dir/zk1.json" || { echo "telemetry: introspection missing top-K attribution" >&2; exit 1; }
	python3 -c "
import json, sys
def det(path):
    i = json.load(open(path))['introspection']
    for k in ('pta_wall_ns','shb_wall_ns','detect_wall_ns','arena_bytes','reach_hits','reach_misses'):
        i.pop(k, None)
    for c in i.get('top_k', []):
        for k in ('pta_share_ns','shb_share_ns','detect_share_ns','arena_bytes'):
            c.pop(k, None)
    return json.dumps(i, sort_keys=True)
sys.exit(0 if det('$dir/zk1.json') == det('$dir/zk2.json') else 1)
" || { echo "telemetry: introspection projection differs across runs" >&2; exit 1; }

	trap - EXIT
	rm -rf "$dir"
	echo "telemetry: ok"
}

# Minimum statement coverage per observability-critical package. Floors
# sit ~15 points under current coverage (obs 91%, race 84%, lockset 94%)
# so they catch untested growth without flaking on minor refactors. The
# obs floor covers the flight-recorder additions (progress snapshots,
# introspection ranking, exposition parsing) alongside the registry.
cover() {
	for spec in internal/obs:75 internal/race:70 internal/lockset:80; do
		pkg=${spec%:*}
		floor=${spec#*:}
		go test -coverprofile=cover.out "./$pkg/" >/dev/null
		pct=$(go tool cover -func=cover.out | awk '/^total:/ {sub("%","",$3); print $3}')
		echo "coverage $pkg: $pct% (floor $floor%)"
		awk -v p="$pct" -v f="$floor" 'BEGIN { exit (p+0 >= f+0) ? 0 : 1 }' || {
			echo "coverage below floor for $pkg" >&2
			exit 1
		}
	done
	rm -f cover.out
}

case "${1:-all}" in
bench-gate)
	bench_gate
	exit 0
	;;
bench-variance)
	bench_variance
	exit 0
	;;
cover)
	cover
	exit 0
	;;
smoke)
	smoke
	exit 0
	;;
telemetry)
	telemetry
	exit 0
	;;
eval)
	eval_gate
	exit 0
	;;
all) ;;
*)
	echo "usage: ./ci.sh [bench-gate|bench-variance|cover|smoke|telemetry|eval]" >&2
	exit 2
	;;
esac

go vet ./...
go build ./...
go test ./...
go test -race ./internal/race/ ./internal/shb/ ./internal/lockset/ ./internal/ring/ ./internal/obs/ ./internal/sched/ ./internal/server/ ./internal/summary/ ./internal/corpus/
go test -race -run 'TestIncrementalConcurrentStore' ./internal/truth/
go test -race -run 'TestAnalyzeCorpus' .
cover
smoke
telemetry
eval_gate
bench_gate
bench_variance
