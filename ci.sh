#!/bin/sh
# CI pipeline for environments without make: vet, build, full test suite
# (which replays the checked-in fuzz corpus), and the race-detector pass
# over the packages shared across detection workers.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/race/ ./internal/shb/ ./internal/lockset/
