#!/bin/sh
# CI pipeline for environments without make: vet, build, full test suite
# (which replays the checked-in fuzz corpus), the race-detector pass over
# the packages shared across detection workers, per-package coverage
# floors, and the bench gate (deterministic pipeline stats vs the
# checked-in golden; see internal/bench/gate.go).
#
#   ./ci.sh             run everything
#   ./ci.sh bench-gate  run only the bench gate (emits BENCH_ci.json)
#   ./ci.sh cover       run only the coverage floors
set -eux

bench_gate() {
	go run ./cmd/o2bench -table gate \
		-stats-json BENCH_ci.json \
		-golden internal/bench/testdata/bench_gate_golden.json
}

# Minimum statement coverage per observability-critical package. Floors
# sit ~15 points under current coverage (obs 91%, race 84%, lockset 94%)
# so they catch untested growth without flaking on minor refactors.
cover() {
	for spec in internal/obs:75 internal/race:70 internal/lockset:80; do
		pkg=${spec%:*}
		floor=${spec#*:}
		go test -coverprofile=cover.out "./$pkg/" >/dev/null
		pct=$(go tool cover -func=cover.out | awk '/^total:/ {sub("%","",$3); print $3}')
		echo "coverage $pkg: $pct% (floor $floor%)"
		awk -v p="$pct" -v f="$floor" 'BEGIN { exit (p+0 >= f+0) ? 0 : 1 }' || {
			echo "coverage below floor for $pkg" >&2
			exit 1
		}
	done
	rm -f cover.out
}

case "${1:-all}" in
bench-gate)
	bench_gate
	exit 0
	;;
cover)
	cover
	exit 0
	;;
all) ;;
*)
	echo "usage: ./ci.sh [bench-gate|cover]" >&2
	exit 2
	;;
esac

go vet ./...
go build ./...
go test ./...
go test -race ./internal/race/ ./internal/shb/ ./internal/lockset/ ./internal/obs/
cover
bench_gate
