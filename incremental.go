package o2

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/summary"
	"o2/internal/unit"
)

// ErrCompile tags front-end failures (parse or lowering errors) on the
// incremental entry points, so schedulers and CLIs can classify them as
// input errors without string matching (errors.Is(err, o2.ErrCompile)).
var ErrCompile = errors.New("compile error")

// IncStats reports what the incremental front end did for one run. It
// is attached to Result.Inc by AnalyzeIncremental; the same numbers are
// published as obs counters (inc.units_total, inc.units_reused,
// inc.units_recomputed, inc.replay_errors, inc.fallbacks) so they show
// up in RunStats and /metrics without extra wiring.
type IncStats struct {
	// UnitsTotal is the number of units the program decomposed into.
	UnitsTotal int `json:"units_total"`
	// UnitsReused is how many units replayed a cached summary.
	UnitsReused int `json:"units_reused"`
	// UnitsRecomputed is how many units were lowered from source (the
	// "dirty" units: content, dependency, config or schema changed — or
	// simply never seen).
	UnitsRecomputed int `json:"units_recomputed"`
	// ReplayErrors counts cached fragments that failed to replay and
	// fell back to re-lowering that unit (sound: never wrong, only
	// slower).
	ReplayErrors int `json:"replay_errors,omitempty"`
	// Fallback is set when the whole program bypassed per-unit reuse
	// (nil store, extraction failure, or a change class the summaries
	// cannot express); FallbackReason says why.
	Fallback       bool   `json:"fallback,omitempty"`
	FallbackReason string `json:"fallback_reason,omitempty"`
}

// DirtyRatio is recomputed units over total (1.0 for a fallback or an
// empty program: nothing was reused).
func (s *IncStats) DirtyRatio() float64 {
	if s.UnitsTotal == 0 || s.Fallback {
		return 1
	}
	return float64(s.UnitsRecomputed) / float64(s.UnitsTotal)
}

// AnalyzeSourceIncremental is AnalyzeIncremental for one source file.
func AnalyzeSourceIncremental(ctx context.Context, filename, src string, cfg Config, store *summary.Store) (*Result, error) {
	return AnalyzeIncremental(ctx, map[string]string{filename: src}, cfg, store)
}

// AnalyzeIncremental compiles and analyzes files with per-unit summary
// reuse: the program is split into class/method/function units, each
// keyed by the digest of its canonical content, its transitive
// dependency closure, the config fingerprint and the summary schema
// version. Units whose key hits the store replay their cached
// instruction fragment; only dirty units are lowered from source. The
// global phases (pointer analysis, OSA, SHB, detection) always run on
// the stitched program, so the report is identical to a from-scratch
// Analyze by construction — reuse only skips front-end work. Change
// classes the summaries cannot express (and programs that defeat unit
// identity) fall back to whole-program compilation, never to wrong
// results. Result.Inc reports what happened.
func AnalyzeIncremental(ctx context.Context, files map[string]string, cfg Config, store *summary.Store) (*Result, error) {
	cfg = cfg.normalize()
	st := &IncStats{}
	if store == nil {
		return incrementalFull(ctx, files, cfg, "no summary store", st)
	}
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	var asts []*lang.File
	for _, n := range names {
		f, err := lang.Parse(n, files[n])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCompile, err)
		}
		asts = append(asts, f)
	}
	man, err := unit.ExtractASTs(asts, cfg.Entries)
	if err != nil {
		return incrementalFull(ctx, files, cfg, "unit extraction: "+err.Error(), st)
	}
	if man.FullReason != "" {
		return incrementalFull(ctx, files, cfg, man.FullReason, st)
	}
	sh, err := lang.Declare(asts, cfg.Entries)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCompile, err)
	}
	fp := cfg.Fingerprint()
	// Units are processed in declaration order — library-class
	// auto-declaration must evolve exactly as in whole-program lowering.
	for _, id := range man.Order {
		u := man.Units[id]
		st.UnitsTotal++
		key := summary.Key(fp, u.ClosureDigest)
		if cached, ok := store.Get(key); ok && replayUnit(sh, u, cached, st) {
			st.UnitsReused++
			continue
		}
		if err := recomputeUnit(sh, u, key, store); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCompile, err)
		}
		st.UnitsRecomputed++
	}
	publishIncStats(cfg, st)
	res, err := Analyze(ctx, sh.Prog(), cfg)
	if err != nil {
		return nil, err
	}
	res.Inc = st
	return res, nil
}

// replayUnit replays a cached summary into the unit's shell. A replay
// failure resets the shell and reports false, sending the unit down the
// recompute path.
func replayUnit(sh *lang.Shell, u *unit.Unit, s *summary.Summary, st *IncStats) bool {
	if u.Kind == unit.KindClass {
		return true // the shell is fully declared already
	}
	fn := shellFunc(sh, u)
	if fn == nil || s.Frag == nil {
		return false
	}
	if err := unit.DecodeBody(sh.Prog(), sh.FuncByName, fn, u.File, u.BaseLine, s.Frag); err != nil {
		st.ReplayErrors++
		fn.ResetBody()
		return false
	}
	return true
}

// recomputeUnit lowers a dirty unit from source and refreshes its store
// entry. Bodies the fragment codec cannot round-trip stay uncached (they
// are recomputed every run) rather than failing the analysis.
func recomputeUnit(sh *lang.Shell, u *unit.Unit, key string, store *summary.Store) error {
	if u.Kind == unit.KindClass {
		store.Put(key, summary.DeriveClass(u))
		return nil
	}
	var err error
	if u.Kind == unit.KindMethod {
		err = sh.LowerMethod(u.File, u.Class, u.Decl)
	} else {
		err = sh.LowerFunc(u.File, u.Decl)
	}
	if err != nil {
		return err
	}
	fn := shellFunc(sh, u)
	if frag, ferr := unit.EncodeBody(fn, u.BaseLine); ferr == nil {
		store.Put(key, summary.Derive(u, fn, frag))
	}
	return nil
}

// shellFunc resolves a body unit to its declared shell function.
func shellFunc(sh *lang.Shell, u *unit.Unit) *ir.Func {
	if u.Kind == unit.KindMethod {
		return sh.Method(u.Class, u.Name)
	}
	return sh.FreeFunc(u.Name)
}

// incrementalFull is the sound whole-program fallback: compile and
// analyze exactly like AnalyzeSourceCtx, carrying the fallback reason
// in Result.Inc.
func incrementalFull(ctx context.Context, files map[string]string, cfg Config, reason string, st *IncStats) (*Result, error) {
	st.Fallback = true
	st.FallbackReason = reason
	cfg.Obs.Counter("inc.fallbacks").Inc()
	prog, err := lang.CompileFiles(files, cfg.Entries)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCompile, err)
	}
	res, err := Analyze(ctx, prog, cfg)
	if err != nil {
		return nil, err
	}
	res.Inc = st
	return res, nil
}

func publishIncStats(cfg Config, st *IncStats) {
	if cfg.Obs == nil {
		return
	}
	cfg.Obs.Counter("inc.units_total").Add(int64(st.UnitsTotal))
	cfg.Obs.Counter("inc.units_reused").Add(int64(st.UnitsReused))
	cfg.Obs.Counter("inc.units_recomputed").Add(int64(st.UnitsRecomputed))
	cfg.Obs.Counter("inc.replay_errors").Add(int64(st.ReplayErrors))
}
