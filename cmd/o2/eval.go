package main

import (
	"flag"
	"fmt"
	"os"

	"o2"
	"o2/internal/report"
	"o2/internal/truth"
	"o2/internal/workload"
)

// runEval implements `o2 eval`: score the analysis against the embedded
// ground-truth oracle corpus and check the result against the checked-in
// precision baseline.
//
//	o2 eval              print per-category precision/recall and gate
//	o2 eval -json        print the versioned EvalReport JSON (the exact
//	                     bytes to check in as internal/truth/baseline.json)
//	o2 eval -metamorphic also run the metamorphic invariance suite (all
//	                     source transforms over the corpus, all IR
//	                     transforms over three workload presets)
//	o2 eval -incremental score the corpus through the incremental path
//	                     (cold seed + warm summary replay) under the same
//	                     recall-1.0 / baseline-precision hard gate
//
// Exit codes follow the shared contract: 0 when the gate passes, 1 when
// evaluation completed but the gate fails (recall below 1.0, precision
// below baseline, or a metamorphic invariance violation), and the usual
// 2-6 for usage, parse, budget, cancel and internal errors.
func runEval(args []string) int {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the EvalReport JSON (baseline format) instead of the table")
	metamorphic := fs.Bool("metamorphic", false, "also check metamorphic race-set invariance")
	incremental := fs.Bool("incremental", false, "score the corpus through warm incremental summary replay")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: o2 eval [-json] [-metamorphic] [-incremental]")
		return exitUsage
	}
	evaluate := truth.Evaluate
	if *incremental {
		// Same labels, same gate — but each program is analyzed cold into
		// a fresh unit store and the *warm replayed* run is scored, so a
		// divergent summary fails the recall gate, not just a unit test.
		evaluate = truth.EvaluateIncremental
	}
	rep, err := evaluate()
	if err != nil {
		return fail(exitCode(err), err)
	}
	if *jsonOut {
		data, err := rep.MarshalIndent()
		if err != nil {
			return fail(exitInternal, err)
		}
		fmt.Println(string(data))
		return exitOK
	}
	fmt.Printf("%-18s %8s %4s %4s %4s %10s %8s %8s\n",
		"category", "programs", "tp", "fp", "fn", "precision", "recall", "f1")
	for _, c := range rep.Categories {
		fmt.Printf("%-18s %8d %4d %4d %4d %10.4f %8.4f %8.4f\n",
			c.Category, c.Programs, c.TP, c.FP, c.FN, c.Precision, c.Recall, c.F1)
	}
	t := rep.Total
	fmt.Printf("%-18s %8d %4d %4d %4d %10.4f %8.4f %8.4f\n",
		"total", len(rep.Programs), t.TP, t.FP, t.FN, t.Precision, t.Recall, t.F1)

	code := exitOK
	base, err := truth.Baseline()
	if err != nil {
		return fail(exitInternal, err)
	}
	if err := rep.CheckAgainstBaseline(base); err != nil {
		fmt.Fprintln(os.Stderr, "o2 eval: FAIL:", err)
		code = exitRaces
	} else {
		fmt.Println("o2 eval: ok (recall 1.0, precision at or above baseline)")
	}
	if *metamorphic {
		if mc := runMetamorphic(); mc != exitOK {
			return mc
		}
	}
	return code
}

// metamorphicPresets are the workloads the CLI invariance smoke covers,
// mirroring the bench gate's family spread.
var metamorphicPresets = []string{"avrora", "zookeeper", "memcached"}

// runMetamorphic checks that every source transform preserves each corpus
// program's canonical race-key set, and every IR transform each preset's.
func runMetamorphic() int {
	corpus, err := truth.Corpus()
	if err != nil {
		return fail(exitCode(err), err)
	}
	checks, bad := 0, 0
	for i := range corpus {
		p := &corpus[i]
		base, err := p.ActualKeys()
		if err != nil {
			return fail(exitCode(err), err)
		}
		for _, tr := range truth.Transforms() {
			got, err := truth.TransformedKeys(p, tr)
			if err != nil {
				return fail(exitCode(err), err)
			}
			checks++
			if !report.SameKeys(base, got) {
				bad++
				fmt.Fprintf(os.Stderr, "o2 eval: metamorphic: %s/%s changed the race set\n", p.Name, tr.Name)
			}
		}
	}
	for _, name := range metamorphicPresets {
		preset, ok := workload.ByName(name)
		if !ok {
			return fail(exitInternal, fmt.Errorf("unknown preset %q", name))
		}
		cfg := o2.DefaultConfig()
		cfg.Workers = 1
		trs := truth.IRTransforms()
		base, err := truth.PresetKeys(preset, trs[0], cfg)
		if err != nil {
			return fail(exitCode(err), err)
		}
		for _, tr := range trs[1:] {
			got, err := truth.PresetKeys(preset, tr, cfg)
			if err != nil {
				return fail(exitCode(err), err)
			}
			checks++
			if !report.SameKeys(base, got) {
				bad++
				fmt.Fprintf(os.Stderr, "o2 eval: metamorphic: %s/%s changed the race set\n", name, tr.Name)
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "o2 eval: metamorphic: %d/%d checks failed\n", bad, checks)
		return exitRaces
	}
	fmt.Printf("o2 eval: metamorphic ok (%d invariance checks)\n", checks)
	return exitOK
}
