package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"o2/internal/obs"
	"o2/internal/sched"
	"o2/internal/server"
)

// runSubmit is a small pure-Go client for a running `o2 serve` — it keeps
// the CI smoke test free of curl/jq dependencies. With -healthz it just
// polls the health endpoint; otherwise it POSTs the named files to
// /analyze with wait=true and prints the job view JSON.
func runSubmit(args []string) int {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8347", "server address (host:port, or @file to read it from a file)")
	ctxKind := fs.String("context", "origin", "context policy: origin, 0ctx, kcfa, kobj")
	k := fs.Int("k", 1, "context depth")
	timeoutMS := fs.Int64("timeout-ms", 0, "per-job deadline in milliseconds (0 = server default)")
	retry := fs.Int("retry", 0, "retry connection errors this many times (1s apart)")
	healthz := fs.Bool("healthz", false, "just check GET /healthz and exit")
	metrics := fs.Bool("metrics", false, "scrape GET /metrics, print the exposition and exit (fails if empty)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	if *metrics {
		var body []byte
		if err := withRetry(*retry, func() error {
			base, err := resolveAddr(*addr)
			if err != nil {
				return err
			}
			resp, err := http.Get(base + "/metrics")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("metrics: status %s", resp.Status)
			}
			body, err = io.ReadAll(resp.Body)
			return err
		}); err != nil {
			return fail(exitInternal, err)
		}
		if !bytes.Contains(body, []byte("# TYPE ")) {
			return fail(exitInternal, fmt.Errorf("metrics: exposition has no # TYPE lines:\n%s", body))
		}
		fams, err := obs.ParsePromText(body)
		if err != nil {
			return fail(exitInternal, fmt.Errorf("metrics: %w", err))
		}
		os.Stdout.Write(body)
		// Histogram families are bucket dumps in the raw exposition; append
		// one rendered summary line each (count, sum, quantile estimates
		// interpolated from the buckets). Emitted as comments so the output
		// stays a valid exposition for downstream scrapers.
		for i := range fams {
			f := &fams[i]
			hs, ok := f.Histogram()
			if !ok {
				continue
			}
			fmt.Printf("# hist %s count=%g sum=%g p50=%g p90=%g p99=%g\n",
				f.Name, hs.Count, hs.Sum, hs.Quantile(0.5), hs.Quantile(0.9), hs.Quantile(0.99))
		}
		return exitOK
	}

	if *healthz {
		if err := withRetry(*retry, func() error {
			// Resolve inside the retry so an -addr-file the server has not
			// written yet counts as a retryable failure.
			base, err := resolveAddr(*addr)
			if err != nil {
				return err
			}
			resp, err := http.Get(base + "/healthz")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("healthz: status %s", resp.Status)
			}
			return nil
		}); err != nil {
			return fail(exitInternal, err)
		}
		fmt.Println("ok")
		return exitOK
	}

	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: o2 submit [flags] file.mini ...")
		fs.PrintDefaults()
		return exitUsage
	}
	files, err := readFiles(fs.Args())
	if err != nil {
		return fail(exitUsage, err)
	}
	body, err := json.Marshal(server.AnalyzeRequest{
		Files:     files,
		Config:    server.ConfigRequest{Context: *ctxKind, K: *k},
		TimeoutMS: *timeoutMS,
		Wait:      true,
	})
	if err != nil {
		return fail(exitInternal, err)
	}

	var view sched.View
	err = withRetry(*retry, func() error {
		base, err := resolveAddr(*addr)
		if err != nil {
			return err
		}
		resp, err := http.Post(base+"/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("analyze: status %s: %s", resp.Status, strings.TrimSpace(string(raw)))
		}
		return json.Unmarshal(raw, &view)
	})
	if err != nil {
		return fail(exitInternal, err)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(view); err != nil {
		return fail(exitInternal, err)
	}
	if view.State != sched.Done {
		return kindExit(view.ErrKind)
	}
	if view.RaceCnt > 0 {
		return exitRaces
	}
	return exitOK
}

// resolveAddr turns the -addr flag into a base URL; "@path" reads the
// address a serve process wrote via -addr-file.
func resolveAddr(addr string) (string, error) {
	if strings.HasPrefix(addr, "@") {
		raw, err := os.ReadFile(addr[1:])
		if err != nil {
			return "", err
		}
		addr = strings.TrimSpace(string(raw))
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimSuffix(addr, "/"), nil
}

func withRetry(retries int, f func() error) error {
	var err error
	for i := 0; ; i++ {
		if err = f(); err == nil || i >= retries {
			return err
		}
		time.Sleep(time.Second)
	}
}
