package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"o2"
	"o2/internal/corpus"
	"o2/internal/sched"
	"o2/internal/summary"
)

// runBatch analyzes a corpus of minilang programs (each file is one
// program). Inputs are discovered by shape — directories, zip archives,
// NDJSON manifests or plain .mini files — and streamed: the corpus is
// never materialized in memory.
//
// Two modes share that frontend:
//
//   - the default (eager) mode streams submissions into the job
//     scheduler through a bounded admission queue (-queue) and prints an
//     aggregate table once every job finished;
//   - -stream pipes the corpus through the streaming pipeline
//     (o2.AnalyzeCorpus) and emits one NDJSON record per program on
//     stdout, in input order, as results arrive.
//
// Either way the exit code is the worst per-program outcome: a corpus
// with one parse failure and ten clean programs exits 3, records/rows
// for the other ten are still produced (partial-failure contract).
func runBatch(args []string) int {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	ctxKind := fs.String("context", "origin", "context policy: origin, 0ctx, kcfa, kobj")
	k := fs.Int("k", 1, "context depth")
	jobs := fs.Int("jobs", 0, "concurrent analysis jobs (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth; submission blocks when full (0 = 64)")
	window := fs.Int("window", 0, "-stream reorder window in programs (0 = 2x jobs)")
	repeat := fs.Int("repeat", 1, "submit each program N times (exercises the result cache)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-program deadline (0 = none)")
	incremental := fs.Bool("incremental", false, "reuse per-unit summaries across programs (two-level cache)")
	stream := fs.Bool("stream", false, "emit one NDJSON record per program, in input order")
	runStats := fs.Bool("run-stats", false, "with -stream: attach the full RunStats report to every record")
	progressEvery := fs.Duration("progress-interval", 0, "with -stream: interleave a schema-tagged progress record at most this often (0 = off)")
	asJSON := fs.Bool("json", false, "emit the aggregate report as JSON (eager mode)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: o2 batch [flags] dir|corpus.zip|manifest.ndjson|file.mini ...")
		fs.PrintDefaults()
		return exitUsage
	}

	cfg := o2.DefaultConfig()
	pol, err := o2.PolicyByName(*ctxKind, *k)
	if err != nil {
		return fail(exitUsage, err)
	}
	cfg.Policy = pol

	// openCorpus builds a fresh input stream over all arguments; -repeat
	// chains N passes so repeated programs re-enter the pipeline (and hit
	// the result cache) without holding anything in memory.
	openCorpus := func() (corpus.Iterator, error) {
		var parts []corpus.Iterator
		for rep := 0; rep < *repeat; rep++ {
			for _, arg := range fs.Args() {
				it, err := corpus.Open(arg)
				if err != nil {
					for _, p := range parts {
						p.Close()
					}
					return nil, err
				}
				parts = append(parts, it)
			}
		}
		return corpus.Chain(parts...), nil
	}

	it, err := openCorpus()
	if err != nil {
		return fail(exitUsage, err)
	}
	defer it.Close()

	if *stream {
		return runBatchStream(it, cfg, batchStreamOpts{
			jobs:          *jobs,
			window:        *window,
			timeout:       *jobTimeout,
			incremental:   *incremental,
			runStats:      *runStats,
			progressEvery: *progressEvery,
		})
	}
	return runBatchEager(it, cfg, batchEagerOpts{
		jobs:        *jobs,
		queue:       *queue,
		timeout:     *jobTimeout,
		incremental: *incremental,
		asJSON:      *asJSON,
	})
}

type batchEagerOpts struct {
	jobs, queue int
	timeout     time.Duration
	incremental bool
	asJSON      bool
}

// runBatchEager streams discovery into the scheduler: SubmitWait blocks
// on the bounded admission queue, so a corpus of any length is throttled
// to the workers' pace instead of sized into the queue up front.
func runBatchEager(it corpus.Iterator, cfg o2.Config, opts batchEagerOpts) int {
	s := sched.New(sched.Options{
		Workers:        opts.jobs,
		QueueDepth:     opts.queue,
		DefaultTimeout: opts.timeout,
		Incremental:    opts.incremental,
	})

	type item struct {
		path string
		job  *sched.Job
	}
	var items []item
	start := time.Now()
	for {
		src, ok, err := it.Next()
		if err != nil {
			s.Shutdown(context.Background())
			return fail(exitUsage, err)
		}
		if !ok {
			break
		}
		j, err := s.SubmitWait(context.Background(), sched.Request{
			Sources: []o2.Source{src},
			Config:  cfg,
			Label:   src.Name,
		})
		if err != nil {
			s.Shutdown(context.Background())
			return fail(exitInternal, err)
		}
		items = append(items, item{src.Name, j})
	}
	if len(items) == 0 {
		s.Shutdown(context.Background())
		return fail(exitUsage, fmt.Errorf("no %s programs found", corpus.Ext))
	}
	if err := s.Shutdown(context.Background()); err != nil {
		return fail(exitInternal, err)
	}
	wall := time.Since(start)

	worst := exitOK
	bump := func(code int) {
		if code > worst {
			worst = code
		}
	}
	views := make([]sched.View, len(items))
	for i, it := range items {
		views[i] = it.job.View()
		if views[i].State == sched.Done {
			if views[i].RaceCnt > 0 {
				bump(exitRaces)
			}
		} else {
			bump(kindExit(views[i].ErrKind))
		}
	}

	st := s.Stats()
	if opts.asJSON {
		out := struct {
			Jobs    []sched.View `json:"jobs"`
			WallNS  int64        `json:"wall_ns"`
			JobsSec float64      `json:"jobs_per_sec"`
			Stats   sched.Stats  `json:"scheduler"`
		}{views, int64(wall), float64(len(items)) / wall.Seconds(), st}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return fail(exitInternal, err)
		}
		return worst
	}

	fmt.Printf("%-40s %-9s %6s %12s %s\n", "PROGRAM", "STATE", "RACES", "WALL", "NOTE")
	for _, v := range views {
		note := ""
		if v.Error != "" {
			note = string(v.ErrKind) + ": " + firstLine(v.Error)
		} else if v.Summary != nil && v.Summary.Cached {
			note = "cached"
		}
		fmt.Printf("%-40s %-9s %6d %12s %s\n",
			trunc(v.Label, 40), v.State, v.RaceCnt, time.Duration(v.WallNS).Round(time.Microsecond), note)
	}
	fmt.Printf("\n%d jobs in %s (%.1f jobs/s, workers=%d, cache hits=%d/%d)\n",
		len(items), wall.Round(time.Millisecond), float64(len(items))/wall.Seconds(),
		st.Workers, st.CacheHits, st.CacheHits+st.CacheMisses)
	return worst
}

type batchStreamOpts struct {
	jobs, window  int
	timeout       time.Duration
	incremental   bool
	runStats      bool
	progressEvery time.Duration
}

// runBatchStream pipes the corpus through the streaming pipeline and
// emits one NDJSON record per program on stdout, strictly in input
// order, as results complete. Per-program failures become error records
// (exit_class parse/budget/...) and the stream continues; only iterator
// or stream-level failures abort it. A short human summary goes to
// stderr so stdout stays pure NDJSON.
func runBatchStream(it corpus.Iterator, cfg o2.Config, opts batchStreamOpts) int {
	ccfg := o2.CorpusConfig{
		Config:         cfg,
		Workers:        opts.jobs,
		Window:         opts.window,
		ProgramTimeout: opts.timeout,
		CollectStats:   opts.runStats,
	}
	if opts.incremental {
		ccfg.Store = summary.NewStore(0)
	}

	worst := exitOK
	w := corpus.NewWriter(os.Stdout)
	// Progress records interleave with result records on the same single
	// emit goroutine, so the NDJSON stream stays strictly ordered; the
	// interval throttles them to at most one per completed program.
	start := time.Now()
	lastProg := start
	done, racesSoFar := 0, int64(0)
	stats, err := o2.AnalyzeCorpus(context.Background(), it, ccfg, func(cr o2.CorpusResult) error {
		rec := corpus.NewRecord(cr)
		if !opts.runStats {
			rec.RunStats = nil
		}
		if code := classExit(rec.ExitClass); code > worst {
			worst = code
		}
		if err := w.Write(rec); err != nil {
			return err
		}
		done++
		racesSoFar += int64(rec.RaceCount)
		if opts.progressEvery > 0 && time.Since(lastProg) >= opts.progressEvery {
			lastProg = time.Now()
			pr := &corpus.ProgressRecord{
				Schema:     corpus.RecordSchema,
				IsProgress: true,
				Done:       done,
				Index:      cr.Index,
				Program:    cr.Name,
				Races:      racesSoFar,
				WallNS:     int64(time.Since(start)),
			}
			return w.Write(pr)
		}
		return nil
	})
	if err != nil {
		return fail(exitCode(err), err)
	}
	if stats.Programs == 0 {
		return fail(exitUsage, fmt.Errorf("no %s programs found", corpus.Ext))
	}
	fmt.Fprintf(os.Stderr, "o2 batch: %d programs, %d failed, %d races in %s (%.1f programs/s)\n",
		stats.Programs, stats.Failed, stats.Races, stats.Wall.Round(time.Millisecond),
		float64(stats.Programs)/stats.Wall.Seconds())
	return worst
}

// classExit maps a streamed record's exit class onto the exit code —
// the per-program half of the partial-failure contract.
func classExit(class string) int {
	switch class {
	case corpus.ClassOK:
		return exitOK
	case corpus.ClassRaces:
		return exitRaces
	case corpus.ClassParse:
		return exitParse
	case corpus.ClassBudget:
		return exitBudget
	case corpus.ClassCanceled:
		return exitCanceled
	}
	return exitInternal
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "..." + s[len(s)-n+3:]
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
