package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"o2"
	"o2/internal/sched"
)

// runBatch fans a set of minilang programs (each file is one program)
// across the job scheduler and prints an aggregate table. The exit code
// is the worst per-program outcome.
func runBatch(args []string) int {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	ctxKind := fs.String("context", "origin", "context policy: origin, 0ctx, kcfa, kobj")
	k := fs.Int("k", 1, "context depth")
	jobs := fs.Int("jobs", 0, "concurrent analysis jobs (0 = GOMAXPROCS)")
	repeat := fs.Int("repeat", 1, "submit each program N times (exercises the result cache)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job deadline (0 = none)")
	incremental := fs.Bool("incremental", false, "reuse per-unit summaries across jobs (two-level cache)")
	asJSON := fs.Bool("json", false, "emit the aggregate report as JSON")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: o2 batch [flags] dir|file.mini ...")
		fs.PrintDefaults()
		return exitUsage
	}

	paths, err := collectPrograms(fs.Args())
	if err != nil {
		return fail(exitUsage, err)
	}
	if len(paths) == 0 {
		return fail(exitUsage, fmt.Errorf("no .mini files found under %s", strings.Join(fs.Args(), " ")))
	}

	cfg := o2.DefaultConfig()
	pol, err := o2.PolicyByName(*ctxKind, *k)
	if err != nil {
		return fail(exitUsage, err)
	}
	cfg.Policy = pol

	s := sched.New(sched.Options{
		Workers: *jobs,
		// Size the queue to the whole batch so submission never sees
		// backpressure; serve-mode uses a bounded queue instead.
		QueueDepth:     len(paths)**repeat + 1,
		DefaultTimeout: *jobTimeout,
		Incremental:    *incremental,
	})

	type item struct {
		path string
		job  *sched.Job
	}
	var items []item
	start := time.Now()
	for rep := 0; rep < *repeat; rep++ {
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				return fail(exitUsage, err)
			}
			j, err := s.Submit(sched.Request{
				Files:  map[string]string{p: string(src)},
				Config: cfg,
				Label:  p,
			})
			if err != nil {
				return fail(exitInternal, err)
			}
			items = append(items, item{p, j})
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		return fail(exitInternal, err)
	}
	wall := time.Since(start)

	worst := exitOK
	bump := func(code int) {
		if code > worst {
			worst = code
		}
	}
	views := make([]sched.View, len(items))
	for i, it := range items {
		views[i] = it.job.View()
		if views[i].State == sched.Done {
			if views[i].RaceCnt > 0 {
				bump(exitRaces)
			}
		} else {
			bump(kindExit(views[i].ErrKind))
		}
	}

	st := s.Stats()
	if *asJSON {
		out := struct {
			Jobs    []sched.View `json:"jobs"`
			WallNS  int64        `json:"wall_ns"`
			JobsSec float64      `json:"jobs_per_sec"`
			Stats   sched.Stats  `json:"scheduler"`
		}{views, int64(wall), float64(len(items)) / wall.Seconds(), st}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return fail(exitInternal, err)
		}
		return worst
	}

	fmt.Printf("%-40s %-9s %6s %12s %s\n", "PROGRAM", "STATE", "RACES", "WALL", "NOTE")
	for _, v := range views {
		note := ""
		if v.Error != "" {
			note = string(v.ErrKind) + ": " + firstLine(v.Error)
		} else if v.Summary != nil && v.Summary.Cached {
			note = "cached"
		}
		fmt.Printf("%-40s %-9s %6d %12s %s\n",
			trunc(v.Label, 40), v.State, v.RaceCnt, time.Duration(v.WallNS).Round(time.Microsecond), note)
	}
	fmt.Printf("\n%d jobs in %s (%.1f jobs/s, workers=%d, cache hits=%d/%d)\n",
		len(items), wall.Round(time.Millisecond), float64(len(items))/wall.Seconds(),
		st.Workers, st.CacheHits, st.CacheHits+st.CacheMisses)
	return worst
}

// collectPrograms expands directories into their .mini files (sorted);
// explicit file arguments are taken as-is.
func collectPrograms(args []string) ([]string, error) {
	var paths []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			paths = append(paths, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".mini") {
				paths = append(paths, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(paths)
	return paths, nil
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "..." + s[len(s)-n+3:]
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
